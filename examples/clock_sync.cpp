// Fault-tolerant clock synchronization over IHC (the paper's first
// motivating application, Section I; cf. Lamport-Melliar-Smith [19]).
//
// Every node keeps a local clock with a random initial skew and its own
// drift rate; node 11 is Byzantine and broadcasts garbage readings.  Each
// round, the library's ClockSynchronizer IHC-broadcasts every clock value
// (as packet payloads), votes per origin over the gamma copies, and
// applies the fault-tolerant midpoint rule (trim t extremes, average the
// rest).  The healthy skew collapses each round and regrows only by
// drift - a bounded sawtooth - while the liar is simply trimmed away.
#include <cstdio>
#include <vector>

#include "core/clock_sync.hpp"
#include "topology/hypercube.hpp"
#include "util/rng.hpp"

using namespace ihc;

int main() {
  const Hypercube cube(4);  // 16 nodes, gamma = 4
  const NodeId byzantine = 11;
  SplitMix64 rng(2026);

  std::vector<double> clocks(cube.node_count());
  for (auto& c : clocks) c = 50.0 + 20.0 * rng.uniform();
  std::vector<double> drift(cube.node_count());
  for (auto& d : drift) d = 200.0 * (rng.uniform() - 0.5);  // +-100 ppm

  ClockSynchronizer sync(cube, clocks,
                         ClockSyncConfig{.fault_tolerance = 1});

  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  FaultPlan faults(1);
  faults.add(byzantine, FaultMode::kEquivocate);
  opt.faults = &faults;

  std::printf(
      "fault-tolerant clock sync on %s, Byzantine clock at node %u\n\n",
      cube.name().c_str(), byzantine);
  std::printf("%-6s %-16s %-16s %s\n", "round", "spread before",
              "spread after", "broadcast time");
  for (int round = 1; round <= 6; ++round) {
    sync.advance(10'000.0, drift);  // 10 ms of free-running drift
    const ClockSyncRound r = sync.run_round(opt);
    std::printf("%-6d %12.4f us  %12.6f us  %.1f us\n", round,
                r.spread_before_us, r.spread_after_us,
                static_cast<double>(r.network_time) / 1e6);
  }

  std::printf(
      "\nEach round costs one IHC all-to-all broadcast (contention-free:\n"
      "eta (tau_S + N alpha) of network time) and resynchronizes the\n"
      "healthy clocks exactly; between rounds they drift apart by at most\n"
      "(drift range) x (interval).  The Byzantine node's readings are\n"
      "trimmed by the midpoint rule and cannot steer the cluster.\n");
  return 0;
}
