// Distributed diagnosis of an intermittently faulty processor (the
// paper's third motivating application; cf. Yang & Masson [25]).
//
// Node 7 of a 19-node hexagonal mesh relays most packets correctly but
// randomly drops or corrupts some - the hardest kind of fault to pin
// down.  The library's diagnosis module runs rounds of IHC heartbeats;
// every receiver compares the gamma copies of each origin's message and
// charges every interior relay of a missing/divergent route.  Innocent
// nodes collect stray suspicion; the culprit collects it in every
// offending route and separates decisively.
#include <cstdio>

#include "core/diagnosis.hpp"
#include "topology/hex_mesh.hpp"

using namespace ihc;

int main() {
  const HexMesh mesh(3);  // 19 nodes, gamma = 6
  const NodeId culprit = 7;

  FaultPlan faults(0x5EED);
  faults.add(culprit, FaultMode::kRandom);

  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;

  DiagnosisConfig config;
  config.rounds = 12;

  std::printf(
      "distributed diagnosis on %s (N = %u): node %u is intermittently\n"
      "faulty (random drop/corrupt/faithful per relay)\n\n",
      mesh.name().c_str(), mesh.node_count(), culprit);

  const DiagnosisResult result =
      run_distributed_diagnosis(mesh, faults, opt, config);

  std::printf("suspicion scores after %u rounds (%.1f us of network "
              "time):\n",
              result.rounds_run,
              static_cast<double>(result.network_time) / 1e6);
  for (NodeId w = 0; w < mesh.node_count(); ++w) {
    if (result.suspicion[w] == 0) continue;
    std::printf("  node %2u : %8llu%s\n", w,
                static_cast<unsigned long long>(result.suspicion[w]),
                w == culprit ? "   <- the actual intermittent node" : "");
  }
  std::printf("\nvotes: node %u convicted by %u of %u healthy nodes "
              "(%s)\n",
              result.convicted, result.votes[result.convicted],
              mesh.node_count() - 1,
              result.convicted == culprit ? "CORRECT" : "incorrect");
  return result.convicted == culprit ? 0 : 1;
}
