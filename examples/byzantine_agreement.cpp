// Byzantine agreement with signed messages over the broadcast primitives
// (the paper's second motivating application; cf. Lamport-Shostak-Pease
// [18] and the signed-message scheme of Rivest et al. [22], Section I).
//
// The library's SM(t) implementation: the commander reliably broadcasts
// its signed order over the gamma Hamiltonian cycles; for t+1 rounds
// every node re-broadcasts commander-signed values it has learned via IHC
// all-to-all rounds; relays cannot forge the commander's MAC, so a node
// that ends up with exactly one validly-signed value adopts it, and
// conflicting values convict the commander.  Three acts:
//   1. everyone loyal;
//   2. honest commander + two traitorous relays (tamper and drop);
//   3. traitorous commander equivocating with a colluding relay.
#include <cstdio>

#include "core/agreement.hpp"
#include "core/runner.hpp"
#include "topology/square_mesh.hpp"

using namespace ihc;

namespace {

AtaOptions base_options() {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  return opt;
}

void act(const char* title, const SquareMesh& mesh, const KeyRing& keys,
         FaultPlan& faults) {
  const AgreementConfig config{.commander = 0};
  const AgreementResult r =
      run_signed_agreement(mesh, keys, faults, base_options(), config);
  int adopted = 0, convicted = 0;
  for (NodeId v = 1; v < mesh.node_count(); ++v) {
    if (faults.is_faulty(v)) continue;
    if (r.decision[v] == config.default_order)
      ++convicted;
    else
      ++adopted;
  }
  std::printf("%s\n", title);
  std::printf(
      "  rounds: %u (t+1), network time %.1f us\n"
      "  loyal lieutenants: %d adopt the commander's order, %d fall back\n"
      "  agreement: %s, validity: %s\n\n",
      r.rounds_used, static_cast<double>(r.network_time) / 1e6, adopted,
      convicted, r.agreement ? "REACHED" : "BROKEN",
      r.validity ? "holds" : "n/a (commander faulty)");
}

}  // namespace

int main() {
  const SquareMesh mesh(5);  // 25 nodes, gamma = 4
  const KeyRing keys(0xA9E2);
  std::printf(
      "signed Byzantine agreement (SM(t)) on %s, commander = node 0\n\n",
      mesh.name().c_str());

  {
    FaultPlan faults(1);
    act("Act 1: everyone loyal", mesh, keys, faults);
  }
  {
    FaultPlan faults(2);
    faults.add(12, FaultMode::kCorrupt);
    faults.add(7, FaultMode::kSilent);
    act("Act 2: honest commander, traitorous relays at nodes 12 and 7",
        mesh, keys, faults);
  }
  {
    FaultPlan faults(3);
    faults.add(0, FaultMode::kEquivocate);
    faults.add(9, FaultMode::kCorrupt);
    act("Act 3: equivocating commander with a colluding relay at node 9",
        mesh, keys, faults);
  }

  std::printf(
      "With signatures the tolerance reaches t <= gamma - 1 (Section I):\n"
      "a relay cannot forge the commander's MAC, and an equivocating\n"
      "commander convicts itself by shipping two validly-signed orders.\n");
  return 0;
}
