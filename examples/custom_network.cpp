// Bring your own network: the downstream-user path end to end.
//
// Suppose your machine's interconnect is none of the paper's topologies -
// here, a twisted 6 x 6 torus (each row wraps with a +3 column shift, a
// "twisted torus" in the vein of the ILLIAC IV network).  To run the IHC
// algorithm on it you need its class-Lambda credentials:
//
//   1. build the Graph,
//   2. feed a seed 2-factorization (rows + columns work here too) to the
//      Hamiltonian-decomposition engine,
//   3. wrap graph + verified cycles in a CustomTopology,
//   4. check Lambda membership, persist the decomposition, broadcast.
#include <cstdio>

#include "ihc.hpp"

using namespace ihc;

namespace {

constexpr NodeId kSide = 6;

NodeId node_at(NodeId row, NodeId col) { return row * kSide + col; }

/// The twisted torus: columns wrap normally; each row wraps from column
/// side-1 back to column 0 of the row + no twist horizontally, but the
/// vertical wrap from the last row shifts 3 columns - one connected
/// "spiral" of columns.
Graph make_twisted_torus() {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId r = 0; r < kSide; ++r) {
    for (NodeId c = 0; c < kSide; ++c) {
      edges.emplace_back(node_at(r, c), node_at(r, (c + 1) % kSide));
      const NodeId down_row = (r + 1) % kSide;
      const NodeId down_col = r + 1 == kSide ? (c + 3) % kSide : c;
      edges.emplace_back(node_at(r, c), node_at(down_row, down_col));
    }
  }
  return Graph(kSide * kSide, std::move(edges));
}

}  // namespace

int main() {
  Graph graph = make_twisted_torus();
  std::printf("network    : twisted %ux%u torus, N = %u, degree %u\n",
              kSide, kSide, graph.node_count(), graph.regular_degree());

  // 2. Seed: rows (6 cycles) + twisted columns (gcd(3,6)=3 spirals).
  std::vector<std::uint8_t> assignment(graph.edge_count());
  for (EdgeId e = 0; e < graph.edge_count(); ++e)
    assignment[e] = static_cast<std::uint8_t>(e % 2);  // row, column, ...
  DecomposeStats stats;
  const auto cycles = merge_to_hamiltonian(
      FactorSet(graph, 2, std::move(assignment)), {}, &stats);
  std::printf("decompose  : 2 Hamiltonian cycles in %zu swaps "
              "(%zu plateau moves)\n",
              stats.swaps, stats.plateau_moves);

  // 3. + 4. Wrap, verify, persist.
  const CustomTopology topo("twisted-torus", std::move(graph), cycles);
  const auto lambda = check_lambda(topo, /*exact_connectivity_limit=*/40);
  std::printf("class      : in Lambda = %s, connectivity == gamma = %s\n",
              lambda.in_lambda() ? "yes" : "NO",
              lambda.connectivity ? "yes" : "NO");
  save_cycles_file("twisted_torus.hc", topo.node_count(),
                   topo.hamiltonian_cycles());
  std::printf("persisted  : twisted_torus.hc (reload with "
              "load_cycles_file / ihc_cli verify)\n");

  // Broadcast.
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  const auto result = run_ihc(topo, IhcOptions{.eta = 2}, opt);
  std::printf("IHC        : finished in %s, %llu buffered relays "
              "(model: %s)\n",
              fmt_time_ps(result.finish).c_str(),
              static_cast<unsigned long long>(result.stats.buffered_relays),
              fmt_time_ps(static_cast<SimTime>(model::ihc_dedicated(
                  topo.node_count(), 2, opt.net))).c_str());
  std::printf("deliveries : gamma copies for every ordered pair: %s\n",
              result.ledger.all_pairs_have(topo.gamma()) ? "yes" : "NO");

  // Tidy up the artifact we wrote.
  std::remove("twisted_torus.hc");
  return result.ledger.all_pairs_have(topo.gamma()) ? 0 : 1;
}
