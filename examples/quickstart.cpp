// Quickstart: the 60-second tour of the library.
//
//   1. build a topology in class Lambda (here a 6-dimensional hypercube),
//   2. look at its Hamiltonian-cycle decomposition,
//   3. run the IHC all-to-all reliable broadcast on the cut-through
//      simulator,
//   4. check the paper's claims: zero contention, gamma copies delivered
//      everywhere, finish time equal to the closed form.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/analysis.hpp"
#include "core/ihc.hpp"
#include "topology/hypercube.hpp"
#include "topology/lambda.hpp"
#include "util/table.hpp"

int main() {
  using namespace ihc;

  // 1. A 64-node hypercube.  Any Topology subclass works the same way:
  //    SquareMesh, HexMesh, Circulant, or your own.
  const Hypercube cube(6);
  std::printf("topology   : %s, N = %u nodes, gamma = %u\n",
              cube.name().c_str(), cube.node_count(), cube.gamma());

  // 2. Condition LC2: gamma/2 edge-disjoint Hamiltonian cycles.  They are
  //    constructed on first access and machine-verified.
  std::printf("HC set     : %zu undirected edge-disjoint Hamiltonian "
              "cycles -> %zu directed\n",
              cube.hamiltonian_cycles().size(),
              cube.directed_cycles().size());
  const LambdaReport lambda = check_lambda(cube);
  std::printf("class      : in Lambda = %s, connectivity == gamma = %s\n",
              lambda.in_lambda() ? "yes" : "no",
              lambda.connectivity ? "yes" : "no");

  // 3. Run IHC.  eta is the interleaving distance; eta = mu is the
  //    fastest contention-free setting.
  AtaOptions options;
  options.net.alpha = sim_ns(20);  // cut-through latency (TORUS chip)
  options.net.tau_s = sim_us(5);   // store-and-forward startup
  options.net.mu = 2;              // packet = 2 FIFO units
  const AtaResult result = run_ihc(cube, IhcOptions{.eta = 2}, options);

  // 4. The paper's claims, checked live.
  std::printf("\nIHC run    : finished in %s\n",
              fmt_time_ps(result.finish).c_str());
  std::printf("model      : %s (Table II row - must match exactly)\n",
              fmt_time_ps(static_cast<SimTime>(model::ihc_dedicated(
                  cube.node_count(), 2, options.net))).c_str());
  std::printf("contention : %llu buffered relays (claim: 0), %llu "
              "cut-throughs\n",
              static_cast<unsigned long long>(result.stats.buffered_relays),
              static_cast<unsigned long long>(result.stats.cut_throughs));
  std::printf("deliveries : %llu packet copies - gamma copies for every "
              "ordered pair: %s\n",
              static_cast<unsigned long long>(result.stats.deliveries),
              result.ledger.all_pairs_have(cube.gamma()) ? "yes" : "NO");
  std::printf("bandwidth  : %.1f%% of link capacity used by the broadcast; "
              "the rest stays\n             available for normal traffic "
              "(raise eta to lower this)\n",
              100.0 * result.mean_link_utilization);
  return 0;
}
