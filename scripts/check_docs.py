#!/usr/bin/env python3
"""Documentation-drift checks, runnable without a build.

Two families of checks, mirroring tests/test_cli_help.cpp (which runs
them as part of tier-1 when a build is available):

1. Intra-repo Markdown links: every relative `[text](target)` link in a
   tracked/untracked-but-not-ignored .md file must resolve to a file in
   the repository (URL fragments are stripped first).
2. CLI surface drift: the subcommand table in src/util/cli_spec.hpp is
   the single source of truth for `ihc_cli --help`; every subcommand in
   it must be dispatched by tools/ihc_cli.cpp and mentioned in
   README.md, the campaign/trace workflow must be documented where the
   docs promise it, and docs/TRACING.md must cover every event of the
   ihc-trace-v1 schema.

3. Metric naming drift: every metric key the simulators emit into an
   obs::MetricsRegistry (count/observe/maximum call sites under src/)
   must appear in docs/TRACING.md's metrics table, and vice versa — a
   documented key nothing emits is equally a bug.
4. Analysis schema drift: every field of the ihc-analysis-v1 schema
   (obs/analyze/analysis.cpp to_json) must be documented in
   docs/ANALYSIS.md.

5. Workload schema drift: docs/WORKLOADS.md must document every field
   of the ihc-workload-v1 schema (workload/sweep.cpp workload_report),
   and every WORKLOAD_*.json under the repo (e.g. the workload-smoke CI
   artifact) must be a valid ihc-workload-v1 document.
6. Fault-schedule drift: docs/FAULTS.md must document the
   ihc-fault-schedule-v1 schema exactly as sim/fault_schedule.cpp
   parses it (every event kind, field and fault mode), and README.md
   must surface the `--fault-schedule` / `--recover` run flags.

7. Parallel-engine drift: the `--shards` flag must appear in the
   cli_spec.hpp synopses of run/campaign/bench-perf/workload, be
   parsed by tools/ihc_cli.cpp, and be documented in README.md and
   docs/PARALLEL.md; docs/PARALLEL.md must cover the determinism
   contract's load-bearing vocabulary; and the tracked BENCH_PR7.json
   baseline (which records the sharded A/B job and `hw_threads`) must
   exist at the repo root.

8. Profiling drift: docs/PROFILING.md must document every field and
   phase of the ihc-profile-v1 schema (obs/prof/profiler.cpp to_json);
   the `--profile` flag must stay in the synopses of the sharded
   subcommands and be parsed; the bench-diff subcommand must keep its
   --threshold flag; and every PROFILE_*.json plus every `profile`
   block embedded in a BENCH_*.json must be a structurally valid
   ihc-profile-v1 document.

9. Topology-zoo drift: the catalog table in docs/TOPOLOGIES.md must
   list every plugin registered in src/topology/zoo/registry.cpp (name
   and spec grammar, parsed from the `p.name = "...";` /
   `p.spec_format = "...";` assignment pairs) and nothing else; the
   `topology` subcommand synopsis must keep its --check/--decompose/
   --export verbs and be parsed by tools/ihc_cli.cpp; README.md must
   link docs/TOPOLOGIES.md; EXPERIMENTS.md must document the zoo_sweep
   campaign and its optimality-gap column; TUTORIAL.md must keep the
   bring-your-own-topology walkthrough; and every *.topology.json
   under the repo must be a valid ihc-topology-v1 document.

Plus three data checks: every BENCH_*.json at the repo root (the
tracked performance baselines written by `ihc_cli bench-perf`, see
docs/PERFORMANCE.md) must be a valid ihc-bench-v1 document, every
ANALYSIS_*.json anywhere under the repo (e.g. the analyze-smoke CI
artifact) must be a valid ihc-analysis-v1 document — correct schema
tag and the full top-level structure the docs promise — and every
*.fault.json anywhere under the repo (e.g. examples/q4_chaos.fault.json)
must be a valid ihc-fault-schedule-v1 document.

Exit status 0 when clean, 1 with one line per problem otherwise.
"""

import json
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Event names of the ihc-trace-v1 schema (obs/trace.cpp validate_event).
TRACE_EVENTS = [
    "packet_injected", "header_advanced", "delivered", "xmit", "buffered",
    "stalled", "fault_fired", "link_dropped", "stage", "fifo_enqueue",
    "fifo_dequeue", "flit_blocked", "session_arrive", "session_reject",
    "session", "host_phase",
]

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files():
    out = subprocess.run(
        ["git", "ls-files", "--cached", "--others", "--exclude-standard",
         "*.md"],
        cwd=REPO, capture_output=True, text=True, check=True).stdout
    return [Path(line) for line in out.splitlines() if line]


def check_links(problems):
    for rel in markdown_files():
        text = (REPO / rel).read_text(encoding="utf-8")
        for target in MD_LINK.findall(text):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            path = target.split("#", 1)[0]
            if not path:  # same-document anchor
                continue
            resolved = (REPO / rel).parent / path
            if not resolved.exists():
                problems.append(f"{rel}: broken link -> {target}")


def spec_subcommands():
    spec = (REPO / "src/util/cli_spec.hpp").read_text(encoding="utf-8")
    table = spec.split("kCliSubcommands[]", 1)[1]
    names = re.findall(r'\{"([\w-]+)",', table)
    if len(names) < 6:
        raise SystemExit(f"cli_spec.hpp: parsed only {names}; parser broken?")
    return names


def check_cli_surface(problems):
    names = spec_subcommands()
    cli = (REPO / "tools/ihc_cli.cpp").read_text(encoding="utf-8")
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    experiments = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
    tracing = (REPO / "docs/TRACING.md").read_text(encoding="utf-8")

    for name in names:
        if f'cmd == "{name}"' not in cli:
            problems.append(f"tools/ihc_cli.cpp: subcommand '{name}' in "
                            "cli_spec.hpp is never dispatched")
        if name not in readme:
            problems.append(f"README.md: subcommand '{name}' undocumented")

    for doc, text in (("README.md", readme), ("EXPERIMENTS.md", experiments)):
        if "campaign --list" not in text:
            problems.append(f"{doc}: missing `campaign --list` walkthrough")
    for needle in ("--metrics", '"metrics"'):
        if needle not in experiments:
            problems.append(f"EXPERIMENTS.md: metrics block not documented "
                            f"(missing {needle})")
    for needle in ("--analyze", '"analysis"'):
        if needle not in experiments:
            problems.append(f"EXPERIMENTS.md: analysis block not documented "
                            f"(missing {needle})")

    if "ihc-trace-v1" not in tracing:
        problems.append("docs/TRACING.md: schema name ihc-trace-v1 missing")
    for event in TRACE_EVENTS:
        if event not in tracing:
            problems.append(f"docs/TRACING.md: event '{event}' undocumented")


# Field sets of the ihc-bench-v1 schema (exp/perf.cpp to_json; the tables
# in docs/PERFORMANCE.md document exactly these).  hw_threads joined the
# schema with the sharded A/B job; baselines written before it (listed in
# LEGACY_BENCH) are tracked history and are not rewritten to add it.
BENCH_TOP_FIELDS = ["schema", "tool", "quick", "repeats", "hw_threads",
                    "jobs", "speedups"]
BENCH_JOB_FIELDS = [
    "name", "workload", "wall_ms", "legacy_wall_ms", "speedup_vs_legacy",
    "events", "events_per_sec", "trials", "trials_per_sec",
]
LEGACY_BENCH = {"BENCH_PR3.json"}
LEGACY_BENCH_OPTIONAL = {"hw_threads"}


def check_bench_reports(problems):
    performance = (REPO / "docs/PERFORMANCE.md").read_text(encoding="utf-8")
    for field in BENCH_TOP_FIELDS + BENCH_JOB_FIELDS:
        if f"`{field}`" not in performance:
            problems.append(
                f"docs/PERFORMANCE.md: ihc-bench-v1 field '{field}' "
                "undocumented")

    for path in sorted(REPO.glob("BENCH_*.json")):
        rel = path.relative_to(REPO)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as err:
            problems.append(f"{rel}: not valid JSON ({err})")
            continue
        if doc.get("schema") != "ihc-bench-v1":
            problems.append(f"{rel}: schema is {doc.get('schema')!r}, "
                            "expected 'ihc-bench-v1'")
            continue
        for field in BENCH_TOP_FIELDS:
            if (path.name in LEGACY_BENCH
                    and field in LEGACY_BENCH_OPTIONAL):
                continue
            if field not in doc:
                problems.append(f"{rel}: missing top-level field '{field}'")
        jobs = doc.get("jobs", [])
        if not isinstance(jobs, list) or not jobs:
            problems.append(f"{rel}: 'jobs' must be a non-empty array")
            continue
        for job in jobs:
            for field in BENCH_JOB_FIELDS:
                if field not in job:
                    problems.append(
                        f"{rel}: job {job.get('name', '?')!r} missing "
                        f"field '{field}'")
        for name in doc.get("speedups", {}):
            if not any(job.get("name") == name for job in jobs):
                problems.append(f"{rel}: speedups entry '{name}' has no "
                                "matching job")


# Metric keys are namespaced by engine (sim/network -> net.*, runners ->
# ihc./ata./frs.*, sim/flit_network -> flit.*, workload/engine ->
# workload.*).  The emit regex tolerates a line break between the call
# and the key (clang-format wraps long observe() calls); the doc regex
# only accepts backticked keys in docs/TRACING.md so prose mentions
# cannot mask a missing table row.
METRIC_EMIT = re.compile(
    r'(?:count|observe|maximum)\(\s*'
    r'"((?:net|ihc|ata|frs|flit|workload|shard)\.[a-z0-9_.]+)"')
METRIC_DOC = re.compile(
    r"`((?:net|ihc|ata|frs|flit|workload|shard)\.[a-z0-9_.]+)`")


def check_metric_names(problems):
    emitted = set()
    for path in sorted((REPO / "src").rglob("*.cpp")):
        emitted |= set(METRIC_EMIT.findall(path.read_text(encoding="utf-8")))
    if len(emitted) < 15:
        raise SystemExit(f"check_docs: only {len(emitted)} emitted metrics "
                         "found; emit-site parser broken?")
    tracing = (REPO / "docs/TRACING.md").read_text(encoding="utf-8")
    documented = set(METRIC_DOC.findall(tracing))
    for name in sorted(emitted - documented):
        problems.append(f"docs/TRACING.md: metric '{name}' is emitted but "
                        "undocumented")
    for name in sorted(documented - emitted):
        problems.append(f"docs/TRACING.md: metric '{name}' is documented "
                        "but never emitted")


# Structure of the ihc-analysis-v1 schema (obs/analyze/analysis.cpp
# to_json; docs/ANALYSIS.md documents exactly these).
ANALYSIS_TOP_FIELDS = [
    "schema", "trace", "critical_path", "stages", "utilization", "lint",
]
ANALYSIS_TRACE_FIELDS = [
    "events", "dropped", "timebase", "nodes", "links", "flows", "alpha_ps",
    "tau_s_ps",
]
ANALYSIS_CRITICAL_FIELDS = [
    "flow", "origin", "route", "inject_ts", "finish_ts", "total", "wire",
    "queue", "switch", "store", "tail", "hops",
]
ANALYSIS_HOP_FIELDS = ["pos", "node", "link", "kind", "arrival"]
ANALYSIS_STAGE_FIELDS = [
    "stage", "label", "begin", "end", "duration", "critical_flow",
    "critical_finish", "model", "model_delta",
]
ANALYSIS_UTIL_FIELDS = [
    "horizon", "window", "windows", "mean_busy_fraction",
    "max_busy_fraction", "links", "timeline", "queue_depth",
]
ANALYSIS_TIMELINE_FIELDS = ["start", "mean_busy", "max_busy", "active_stages"]
ANALYSIS_QUEUE_FIELDS = ["samples", "p50", "p90", "p99", "max"]
ANALYSIS_LINT_FIELDS = ["ok", "checks_run", "skipped", "violations"]
ANALYSIS_ALL_FIELDS = (
    ANALYSIS_TOP_FIELDS + ["source", "busy_fraction", "xmits", "check",
                           "reason", "message"] +
    ANALYSIS_TRACE_FIELDS + ANALYSIS_CRITICAL_FIELDS + ANALYSIS_HOP_FIELDS +
    ANALYSIS_STAGE_FIELDS + ANALYSIS_UTIL_FIELDS + ANALYSIS_TIMELINE_FIELDS +
    ANALYSIS_QUEUE_FIELDS + ANALYSIS_LINT_FIELDS)


def check_analysis_reports(problems):
    analysis_md = REPO / "docs/ANALYSIS.md"
    if not analysis_md.exists():
        problems.append("docs/ANALYSIS.md: missing")
        return
    text = analysis_md.read_text(encoding="utf-8")
    if "ihc-analysis-v1" not in text:
        problems.append("docs/ANALYSIS.md: schema name ihc-analysis-v1 "
                        "missing")
    for field in ANALYSIS_ALL_FIELDS:
        if f"`{field}`" not in text:
            problems.append(f"docs/ANALYSIS.md: ihc-analysis-v1 field "
                            f"'{field}' undocumented")

    for path in sorted(REPO.rglob("ANALYSIS_*.json")):
        rel = path.relative_to(REPO)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as err:
            problems.append(f"{rel}: not valid JSON ({err})")
            continue
        if doc.get("schema") != "ihc-analysis-v1":
            problems.append(f"{rel}: schema is {doc.get('schema')!r}, "
                            "expected 'ihc-analysis-v1'")
            continue
        for field in ANALYSIS_TOP_FIELDS:
            if field not in doc:
                problems.append(f"{rel}: missing top-level field '{field}'")
        for block, fields in (("trace", ANALYSIS_TRACE_FIELDS),
                              ("critical_path", ANALYSIS_CRITICAL_FIELDS),
                              ("utilization", ANALYSIS_UTIL_FIELDS),
                              ("lint", ANALYSIS_LINT_FIELDS)):
            sub = doc.get(block, {})
            for field in fields:
                if field not in sub:
                    problems.append(
                        f"{rel}: '{block}' missing field '{field}'")
        lint = doc.get("lint", {})
        if lint.get("ok") is not True:
            problems.append(f"{rel}: TraceLint not clean "
                            f"(violations: {lint.get('violations')})")


# Structure of the ihc-workload-v1 schema (workload/sweep.cpp
# workload_report; docs/WORKLOADS.md documents exactly these).
WORKLOAD_TOP_FIELDS = [
    "schema", "campaign", "description", "saturation_thresholds", "curves",
]
WORKLOAD_THRESHOLD_FIELDS = ["accepted_fraction", "latency_blowup"]
WORKLOAD_CURVE_FIELDS = ["algorithm", "topology", "points", "saturation"]
WORKLOAD_POINT_FIELDS = [
    "rate_per_us", "saturated", "offered_per_us", "accepted_per_us",
    "latency_mean_ps", "latency_p50_ps", "latency_p95_ps", "latency_p99_ps",
    "latency_p999_ps", "offered_sessions", "admitted_sessions",
    "rejected_sessions", "completed_sessions", "inflight_at_drain",
    "batches", "merged_sessions", "max_queue_depth", "warmup_end_ps",
    "fairness_jain",
]
WORKLOAD_SATURATION_FIELDS = ["reached", "rate_per_us",
                              "zero_load_latency_ps"]


def check_workload_reports(problems):
    workloads_md = REPO / "docs/WORKLOADS.md"
    if not workloads_md.exists():
        problems.append("docs/WORKLOADS.md: missing")
        return
    text = workloads_md.read_text(encoding="utf-8")
    if "ihc-workload-v1" not in text:
        problems.append("docs/WORKLOADS.md: schema name ihc-workload-v1 "
                        "missing")
    for field in (WORKLOAD_TOP_FIELDS + WORKLOAD_THRESHOLD_FIELDS +
                  WORKLOAD_CURVE_FIELDS + WORKLOAD_POINT_FIELDS +
                  WORKLOAD_SATURATION_FIELDS):
        if f"`{field}`" not in text:
            problems.append(f"docs/WORKLOADS.md: ihc-workload-v1 field "
                            f"'{field}' undocumented")

    for path in sorted(REPO.rglob("WORKLOAD_*.json")):
        rel = path.relative_to(REPO)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as err:
            problems.append(f"{rel}: not valid JSON ({err})")
            continue
        if doc.get("schema") != "ihc-workload-v1":
            problems.append(f"{rel}: schema is {doc.get('schema')!r}, "
                            "expected 'ihc-workload-v1'")
            continue
        for field in WORKLOAD_TOP_FIELDS:
            if field not in doc:
                problems.append(f"{rel}: missing top-level field '{field}'")
        curves = doc.get("curves", [])
        if not isinstance(curves, list) or not curves:
            problems.append(f"{rel}: 'curves' must be a non-empty array")
            continue
        for curve in curves:
            algo = curve.get("algorithm", "?")
            for field in WORKLOAD_CURVE_FIELDS:
                if field not in curve:
                    problems.append(f"{rel}: curve {algo!r} missing field "
                                    f"'{field}'")
            for field in WORKLOAD_SATURATION_FIELDS:
                if field not in curve.get("saturation", {}):
                    problems.append(f"{rel}: curve {algo!r} saturation "
                                    f"missing field '{field}'")
            points = curve.get("points", [])
            if not isinstance(points, list) or not points:
                problems.append(f"{rel}: curve {algo!r} has no points")
                continue
            for i, point in enumerate(points):
                for field in WORKLOAD_POINT_FIELDS:
                    if field not in point:
                        problems.append(f"{rel}: curve {algo!r} point {i} "
                                        f"missing field '{field}'")


# The parallel-engine surface (docs/PARALLEL.md): subcommands that run
# the packet-level simulator take --shards, and the doc must keep the
# determinism contract's load-bearing vocabulary so a rewrite cannot
# silently drop it.
SHARDED_SUBCOMMANDS = ["run", "campaign", "bench-perf", "workload"]
PARALLEL_DOC_TOKENS = [
    "--shards", "lookahead", "byte-identical", "events_scaling",
    "hw_threads", "BENCH_PR7.json", "BENCH_PR9.json", "TraceLint",
    "mailbox", "shard.events", "shard.stalls", "shard.window_count",
    "docs/PROFILING.md",
]


def check_parallel_surface(problems):
    spec = (REPO / "src/util/cli_spec.hpp").read_text(encoding="utf-8")
    table = spec.split("kCliSubcommands[]", 1)[1]
    entries = re.findall(r'\{"([\w-]+)",(.*?)\},', table, re.S)
    by_name = dict(entries)
    for name in SHARDED_SUBCOMMANDS:
        if name not in by_name:
            problems.append(f"cli_spec.hpp: subcommand '{name}' missing "
                            "from kCliSubcommands")
        elif "--shards" not in by_name[name]:
            problems.append(f"cli_spec.hpp: subcommand '{name}' synopsis "
                            "lost the --shards flag")
    cli = (REPO / "tools/ihc_cli.cpp").read_text(encoding="utf-8")
    if '"--shards"' not in cli:
        problems.append("tools/ihc_cli.cpp: --shards is in cli_spec.hpp "
                        "but never parsed")
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    if "--shards" not in readme:
        problems.append("README.md: run flag '--shards' undocumented")
    if "docs/PARALLEL.md" not in readme:
        problems.append("README.md: docs/PARALLEL.md not linked")

    parallel_md = REPO / "docs/PARALLEL.md"
    if not parallel_md.exists():
        problems.append("docs/PARALLEL.md: missing")
        return
    text = parallel_md.read_text(encoding="utf-8")
    for token in PARALLEL_DOC_TOKENS:
        if token not in text:
            problems.append(f"docs/PARALLEL.md: '{token}' undocumented")
    if not (REPO / "BENCH_PR7.json").exists():
        problems.append("BENCH_PR7.json: tracked sharded-baseline report "
                        "missing at the repo root")


# The ihc-fault-schedule-v1 schema (sim/fault_schedule.cpp from_json;
# docs/FAULTS.md documents exactly these).
FAULT_EVENT_FIELDS = {
    "node_fault": ["node", "mode", "at_ps"],
    "node_repair": ["node", "at_ps"],
    "link_fail": ["link", "at_ps"],
    "link_glitch": ["link", "at_ps", "duration_ps"],
    "degrade": ["node", "at_ps"],
}
FAULT_MODES = ["silent", "corrupt", "random", "equivocate", "slow"]
FAULT_TOP_OPTIONAL = ["seed", "slow_delay_ps"]


def check_fault_schedules(problems):
    faults_md = REPO / "docs/FAULTS.md"
    if not faults_md.exists():
        problems.append("docs/FAULTS.md: missing")
        return
    text = faults_md.read_text(encoding="utf-8")
    if "ihc-fault-schedule-v1" not in text:
        problems.append("docs/FAULTS.md: schema name ihc-fault-schedule-v1 "
                        "missing")
    for token in (list(FAULT_EVENT_FIELDS) + FAULT_MODES + FAULT_TOP_OPTIONAL
                  + ["at_ps", "duration_ps", "node", "link", "mode"]):
        if f"`{token}`" not in text:
            problems.append(f"docs/FAULTS.md: ihc-fault-schedule-v1 "
                            f"'{token}' undocumented")
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    for flag in ("--fault-schedule", "--recover"):
        if flag not in readme:
            problems.append(f"README.md: run flag '{flag}' undocumented")

    for path in sorted(REPO.rglob("*.fault.json")):
        rel = path.relative_to(REPO)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as err:
            problems.append(f"{rel}: not valid JSON ({err})")
            continue
        if doc.get("schema") != "ihc-fault-schedule-v1":
            problems.append(f"{rel}: schema is {doc.get('schema')!r}, "
                            "expected 'ihc-fault-schedule-v1'")
            continue
        events = doc.get("events")
        if not isinstance(events, list):
            problems.append(f"{rel}: 'events' must be an array")
            continue
        for i, event in enumerate(events):
            kind = event.get("kind") if isinstance(event, dict) else None
            if kind not in FAULT_EVENT_FIELDS:
                problems.append(f"{rel}: events[{i}] has unknown kind "
                                f"{kind!r}")
                continue
            for field in FAULT_EVENT_FIELDS[kind]:
                if field not in event:
                    problems.append(f"{rel}: events[{i}] ({kind}) missing "
                                    f"field '{field}'")
            if kind == "node_fault" and event.get("mode") not in FAULT_MODES:
                problems.append(f"{rel}: events[{i}] has unknown mode "
                                f"{event.get('mode')!r}")


# The topology-zoo surface (docs/TOPOLOGIES.md): the registry is the
# single source of truth for the catalog; the plugin fields are parsed
# from the assignment pairs in build_registry().
TOPOLOGY_VERBS = ["--check", "--decompose", "--export"]
TOPOLOGY_FILE_FORMAT = "ihc-topology-v1"


def registry_plugins():
    text = (REPO / "src/topology/zoo/registry.cpp").read_text(
        encoding="utf-8")
    names = re.findall(r'p\.name = "([^"]+)";', text)
    specs = re.findall(r'p\.spec_format = "([^"]+)";', text)
    if len(names) < 6 or len(names) != len(specs):
        raise SystemExit(f"registry.cpp: parsed {len(names)} names / "
                         f"{len(specs)} spec formats; parser broken?")
    return list(zip(names, specs))


def check_topology_zoo(problems):
    topo_md = REPO / "docs/TOPOLOGIES.md"
    if not topo_md.exists():
        problems.append("docs/TOPOLOGIES.md: missing")
        return
    text = topo_md.read_text(encoding="utf-8")
    if TOPOLOGY_FILE_FORMAT not in text:
        problems.append("docs/TOPOLOGIES.md: schema name "
                        f"{TOPOLOGY_FILE_FORMAT} missing")

    # Catalog rows <-> registry: every plugin documented (backticked
    # name AND spec grammar), and no stale row for an unregistered one.
    plugins = registry_plugins()
    for name, spec in plugins:
        if f"`{name}`" not in text:
            problems.append(f"docs/TOPOLOGIES.md: registered plugin "
                            f"'{name}' missing from the catalog")
        if f"`{spec}`" not in text:
            problems.append(f"docs/TOPOLOGIES.md: spec grammar '{spec}' "
                            f"(plugin '{name}') missing from the catalog")
    registered = {name for name, _ in plugins}
    for row in re.findall(r"^\| `([\w-]+)` \|", text, re.M):
        if row not in registered:
            problems.append(f"docs/TOPOLOGIES.md: catalog row '{row}' has "
                            "no registered plugin")

    # CLI surface: the topology verbs stay in the synopsis and parser.
    spec_hpp = (REPO / "src/util/cli_spec.hpp").read_text(encoding="utf-8")
    table = spec_hpp.split("kCliSubcommands[]", 1)[1]
    entries = dict(re.findall(r'\{"([\w-]+)",(.*?)\},', table, re.S))
    if "topology" not in entries:
        problems.append("cli_spec.hpp: subcommand 'topology' missing")
    else:
        for verb in TOPOLOGY_VERBS + ["--list"]:
            if verb not in entries["topology"]:
                problems.append(f"cli_spec.hpp: 'topology' synopsis lost "
                                f"the {verb} verb")
    cli = (REPO / "tools/ihc_cli.cpp").read_text(encoding="utf-8")
    for verb in TOPOLOGY_VERBS:
        if f'"{verb}"' not in cli:
            problems.append(f"tools/ihc_cli.cpp: topology verb '{verb}' is "
                            "in cli_spec.hpp but never parsed")

    readme = (REPO / "README.md").read_text(encoding="utf-8")
    if "docs/TOPOLOGIES.md" not in readme:
        problems.append("README.md: docs/TOPOLOGIES.md not linked")
    experiments = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
    for token in ("zoo_sweep", "optimality_gap", "optimal_lower_bound"):
        if token not in experiments:
            problems.append(f"EXPERIMENTS.md: zoo_sweep protocol token "
                            f"'{token}' undocumented")
    tutorial = (REPO / "TUTORIAL.md").read_text(encoding="utf-8")
    if ".topology.json" not in tutorial:
        problems.append("TUTORIAL.md: bring-your-own-topology walkthrough "
                        "(.topology.json) missing")


# Structure of the ihc-profile-v1 schema (obs/prof/profiler.cpp to_json;
# docs/PROFILING.md documents exactly these).  Profile documents appear
# standalone (PROFILE_*.json, e.g. the bench-smoke CI artifact) and
# embedded as the optional `profile` block of an ihc-bench-v1 report.
PROFILE_TOP_FIELDS = [
    "schema", "tool", "hw_threads", "heartbeat_interval_ms", "heartbeats",
    "total_wall_ms", "attributed_wall_ms", "coverage", "phases", "shards",
]
PROFILE_PHASE_FIELDS = ["name", "wall_ms", "exclusive_ms", "count"]
PROFILE_PHASE_NAMES = [
    "setup", "route_build", "event_loop", "trace_replay", "report",
]
PROFILE_SHARD_FIELDS = [
    "shard_count", "runs", "windows", "coordinator_ms", "mailbox_drain_ms",
    "trace_replay_ms", "window_max_busy_ms", "window_min_busy_ms",
    "imbalance", "per_shard", "stall_hist_us",
]
PROFILE_PER_SHARD_FIELDS = [
    "shard", "busy_ms", "barrier_wait_ms", "events", "idle_windows",
]
PROFILE_IMBALANCE_FIELDS = ["max_busy_ms", "min_busy_ms", "busy_ratio"]


def validate_profile_doc(problems, rel, doc, where=""):
    """Structural validation of one ihc-profile-v1 document."""
    label = f"{rel}{where}"
    if doc.get("schema") != "ihc-profile-v1":
        problems.append(f"{label}: schema is {doc.get('schema')!r}, "
                        "expected 'ihc-profile-v1'")
        return
    for field in PROFILE_TOP_FIELDS:
        if field not in doc:
            problems.append(f"{label}: missing top-level field '{field}'")
    phases = doc.get("phases", [])
    if ([p.get("name") for p in phases] != PROFILE_PHASE_NAMES
            if isinstance(phases, list) else True):
        problems.append(f"{label}: 'phases' must list exactly "
                        f"{PROFILE_PHASE_NAMES}")
    else:
        for phase in phases:
            for field in PROFILE_PHASE_FIELDS:
                if field not in phase:
                    problems.append(f"{label}: phase "
                                    f"{phase.get('name', '?')!r} missing "
                                    f"field '{field}'")
    for sec in doc.get("shards", []):
        sc = sec.get("shard_count", "?")
        for field in PROFILE_SHARD_FIELDS:
            if field not in sec:
                problems.append(f"{label}: shard section {sc} missing "
                                f"field '{field}'")
        for field in PROFILE_IMBALANCE_FIELDS:
            if field not in sec.get("imbalance", {}):
                problems.append(f"{label}: shard section {sc} imbalance "
                                f"missing field '{field}'")
        for row in sec.get("per_shard", []):
            for field in PROFILE_PER_SHARD_FIELDS:
                if field not in row:
                    problems.append(f"{label}: shard section {sc} shard "
                                    f"{row.get('shard', '?')} missing "
                                    f"field '{field}'")


def check_profiling_surface(problems):
    profiling_md = REPO / "docs/PROFILING.md"
    if not profiling_md.exists():
        problems.append("docs/PROFILING.md: missing")
        return
    text = profiling_md.read_text(encoding="utf-8")
    if "ihc-profile-v1" not in text:
        problems.append("docs/PROFILING.md: schema name ihc-profile-v1 "
                        "missing")
    for field in (PROFILE_TOP_FIELDS + PROFILE_PHASE_FIELDS +
                  PROFILE_SHARD_FIELDS + PROFILE_PER_SHARD_FIELDS +
                  PROFILE_IMBALANCE_FIELDS):
        if f"`{field}`" not in text:
            problems.append(f"docs/PROFILING.md: ihc-profile-v1 field "
                            f"'{field}' undocumented")
    for name in PROFILE_PHASE_NAMES:
        if f"`{name}`" not in text:
            problems.append(f"docs/PROFILING.md: phase '{name}' "
                            "undocumented")
    for token in ("bench-diff", "--threshold", "--profile", ".trace.json",
                  "host_phase", "shard.busy_ns", "shard.barrier_wait_ns"):
        if token not in text:
            problems.append(f"docs/PROFILING.md: '{token}' undocumented")

    # CLI surface: --profile in the synopses of every sharded subcommand,
    # both option flags parsed, bench-diff comparing with a threshold.
    spec = (REPO / "src/util/cli_spec.hpp").read_text(encoding="utf-8")
    table = spec.split("kCliSubcommands[]", 1)[1]
    entries = dict(re.findall(r'\{"([\w-]+)",(.*?)\},', table, re.S))
    for name in SHARDED_SUBCOMMANDS:
        if name in entries and "--profile" not in entries[name]:
            problems.append(f"cli_spec.hpp: subcommand '{name}' synopsis "
                            "lost the --profile flag")
    if "bench-diff" not in entries:
        problems.append("cli_spec.hpp: subcommand 'bench-diff' missing "
                        "from kCliSubcommands")
    elif "--threshold" not in entries["bench-diff"]:
        problems.append("cli_spec.hpp: 'bench-diff' synopsis lost the "
                        "--threshold flag")
    cli = (REPO / "tools/ihc_cli.cpp").read_text(encoding="utf-8")
    for flag in ('"--profile"', '"--threshold"'):
        if flag not in cli:
            problems.append(f"tools/ihc_cli.cpp: {flag} is in cli_spec.hpp "
                            "but never parsed")
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    if "docs/PROFILING.md" not in readme:
        problems.append("README.md: docs/PROFILING.md not linked")
    if "--profile" not in readme:
        problems.append("README.md: run flag '--profile' undocumented")

    # Standalone profile documents (Chrome exports end in .trace.json and
    # follow the trace schema instead, so they are skipped here).
    for path in sorted(REPO.rglob("PROFILE_*.json")):
        if path.name.endswith(".trace.json"):
            continue
        rel = path.relative_to(REPO)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as err:
            problems.append(f"{rel}: not valid JSON ({err})")
            continue
        validate_profile_doc(problems, rel, doc)

    # Profile blocks embedded in tracked benchmark baselines.
    for path in sorted(REPO.glob("BENCH_*.json")):
        rel = path.relative_to(REPO)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            continue  # reported by check_bench_reports
        if "profile" in doc:
            validate_profile_doc(problems, rel, doc["profile"],
                                 where=" (profile block)")


def check_topology_files(problems):
    for path in sorted(REPO.rglob("*.topology.json")):
        rel = path.relative_to(REPO)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as err:
            problems.append(f"{rel}: not valid JSON ({err})")
            continue
        if doc.get("format") != TOPOLOGY_FILE_FORMAT:
            problems.append(f"{rel}: format is {doc.get('format')!r}, "
                            f"expected '{TOPOLOGY_FILE_FORMAT}'")
            continue
        nodes = doc.get("nodes")
        if not isinstance(nodes, int) or nodes < 1:
            problems.append(f"{rel}: 'nodes' must be an integer >= 1")
            continue
        edges = doc.get("edges")
        if not isinstance(edges, list) or not edges:
            problems.append(f"{rel}: 'edges' must be a non-empty array")
            continue
        for i, edge in enumerate(edges):
            if (not isinstance(edge, list) or len(edge) != 2
                    or not all(isinstance(v, int) and 0 <= v < nodes
                               for v in edge)):
                problems.append(f"{rel}: edges[{i}] must be a [u, v] pair "
                                f"with 0 <= u, v < {nodes}")
            elif edge[0] == edge[1]:
                problems.append(f"{rel}: edges[{i}] is a self-loop")
        gamma = doc.get("gamma")
        if gamma is not None and (not isinstance(gamma, int) or gamma < 2
                                  or gamma % 2 != 0):
            problems.append(f"{rel}: 'gamma' must be an even integer >= 2")
        cycles = doc.get("cycles")
        if cycles is not None:
            if not isinstance(cycles, list):
                problems.append(f"{rel}: 'cycles' must be an array")
            else:
                for i, cycle in enumerate(cycles):
                    if (not isinstance(cycle, list)
                            or not all(isinstance(v, int) and 0 <= v < nodes
                                       for v in cycle)):
                        problems.append(f"{rel}: cycles[{i}] must be an "
                                        "array of node ids")
        unknown = set(doc) - {"format", "name", "nodes", "edges", "gamma",
                              "cycles"}
        if unknown:
            problems.append(f"{rel}: unknown field(s) "
                            f"{sorted(unknown)}")


def main():
    problems = []
    check_links(problems)
    check_cli_surface(problems)
    check_metric_names(problems)
    check_bench_reports(problems)
    check_analysis_reports(problems)
    check_workload_reports(problems)
    check_fault_schedules(problems)
    check_parallel_surface(problems)
    check_profiling_surface(problems)
    check_topology_zoo(problems)
    check_topology_files(problems)
    for p in problems:
        print(p, file=sys.stderr)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"check_docs: OK ({len(markdown_files())} Markdown files, "
          f"{len(spec_subcommands())} subcommands)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
