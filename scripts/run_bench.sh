#!/bin/sh
# Performance baseline: build the CLI and run the pinned bench-perf
# workloads (see docs/PERFORMANCE.md), writing the ihc-bench-v1 report
# to BENCH_PR9.json at the repository root with its wall-time
# attribution embedded (--profile, see docs/PROFILING.md).
#
#   scripts/run_bench.sh            full protocol (5 repeats, min kept)
#   scripts/run_bench.sh --quick    CI smoke (2 repeats, filtered grids)
#
# Extra arguments are passed through to `ihc_cli bench-perf`, so e.g.
# `scripts/run_bench.sh --repeats 9 --out bench/today.json` works too.
# Compare two baselines with `ihc_cli bench-diff old.json new.json`.
set -eu
cd "$(dirname "$0")/.."
cmake -B build -S . >/dev/null
cmake --build build --target ihc_cli >/dev/null
exec ./build/tools/ihc_cli bench-perf --profile PROFILE_PR9.json "$@"
