// E14 (extension) - the wormhole deadlock story of Section IV, end to end:
// "deadlock does not occur if Dally and Seitz's method of virtual channels
// is used for deadlock prevention."
//
// For each topology we (a) build the channel dependency graph of the IHC
// routes and test it for cycles (the Dally-Seitz theorem), and (b) replay
// the same routes on the flit-level wormhole simulator under saturation.
// Prediction and observation agree in every row: a cyclic CDG deadlocks,
// the two-virtual-channel dateline assignment is acyclic and delivers
// everything.
#include <cstdio>
#include <memory>

#include "sim/deadlock.hpp"
#include "sim/flit_network.hpp"
#include "topology/hex_mesh.hpp"
#include "topology/hypercube.hpp"
#include "topology/product.hpp"
#include "topology/square_mesh.hpp"
#include "util/table.hpp"

using namespace ihc;

namespace {

struct Row {
  std::string cdg;
  std::string outcome;
  std::uint64_t cycles = 0;
};

Row evaluate(const Topology& topo, bool dally_seitz) {
  Row row;
  const auto cdg = dally_seitz ? ihc_cdg_dally_seitz(topo)
                               : ihc_cdg_single_channel(topo);
  row.cdg = cdg.is_acyclic() ? "acyclic" : "CYCLIC";

  const auto packets = ihc_flit_packets(topo, /*eta=*/1,
                                        /*length_flits=*/4, dally_seitz);
  FlitNetwork net(topo.graph(),
                  FlitParams{.vc_count = static_cast<std::uint8_t>(
                                 dally_seitz ? 2 : 1),
                             .buffer_flits = 2,
                             .stall_threshold = 500});
  for (const auto& p : packets) {
    FlitPacketSpec copy = p;
    net.add_packet(std::move(copy));
  }
  const auto result = net.run(5'000'000);
  row.cycles = result.cycles;
  if (result.deadlocked)
    row.outcome = "DEADLOCK (" + std::to_string(result.blocked_packets) +
                  " packets wedged)";
  else if (result.delivered == packets.size())
    row.outcome = "all " + std::to_string(result.delivered) + " delivered";
  else
    row.outcome = "timeout";
  return row;
}

}  // namespace

int main() {
  std::vector<std::shared_ptr<Topology>> topologies{
      std::make_shared<Ring>(8),
      std::make_shared<SquareMesh>(4),
      std::make_shared<Hypercube>(4),
      std::make_shared<HexMesh>(3),
  };

  AsciiTable table(
      "Wormhole IHC under saturation (eta = 1, packets of 4 flits,\n"
      "2-flit channel FIFOs): Dally-Seitz CDG prediction vs flit-level\n"
      "simulation");
  table.set_header({"topology", "channels", "CDG", "flit-sim outcome",
                    "cycles"});
  for (const auto& topo : topologies) {
    for (const bool dateline : {false, true}) {
      const Row row = evaluate(*topo, dateline);
      table.add_row({topo->name(),
                     dateline ? "2 VCs (dateline)" : "1 VC",
                     row.cdg, row.outcome, std::to_string(row.cycles)});
    }
    table.add_separator();
  }
  table.print();

  std::printf(
      "\nThe channel-dependency-graph analysis (Dally & Seitz [7]) and the\n"
      "flit-level simulation agree row by row: every single-channel\n"
      "configuration has a cyclic CDG and wedges under saturation; the\n"
      "dateline split into two virtual channels makes the CDG acyclic and\n"
      "the same load drains completely - exactly the remedy Section IV\n"
      "prescribes for the wormhole implementation of the IHC algorithm.\n");
  return 0;
}
