// E1 - Table I of the paper: the communication pattern of the RS reliable
// broadcast from node 0 in a Q_4, laid out as steps x columns, where each
// column is a maximal chain of forwarded (cut-through) sends and every new
// column starts with an initiation or redirection (store-and-forward).
// Bold (optional) sends that return copies to the source are marked '*'.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "sched/rs_schedule.hpp"
#include "util/table.hpp"

using namespace ihc;

int main() {
  const Hypercube cube(4);
  const auto sends = rs_broadcast_sends(cube, 0);

  // Column assignment: a forward continues its parent's column; every
  // initiation or redirect opens the next column of its copy.
  std::map<std::pair<std::uint16_t, NodeId>, int> column_of_arrival;
  std::vector<int> next_column(4, 0);
  int max_column = 0;
  // cell[(step, column)] -> list of "u->v" strings
  std::map<std::pair<std::uint32_t, int>, std::string> cells;

  for (const RsSend& s : sends) {
    int column;
    if (s.step == 1) {
      column = 1;
      next_column[s.copy] = 1;
    } else if (s.forward) {
      column = column_of_arrival.at({s.copy, s.from});
    } else {
      column = ++next_column[s.copy];
    }
    max_column = std::max(max_column, column);
    if (!s.returns_to_source) column_of_arrival[{s.copy, s.to}] = column;
    std::string& cell = cells[{s.step, column}];
    if (!cell.empty()) cell += " ";
    cell += std::to_string(s.from) + "->" + std::to_string(s.to);
    if (s.returns_to_source) cell += "*";
  }

  AsciiTable table(
      "Table I - RS communication pattern, source 0 on Q_4\n"
      "(columns are cut-through chains; '*' marks the optional sends that\n"
      "return copies to the source)");
  std::vector<std::string> header{"Step"};
  for (int c = 1; c <= max_column; ++c)
    header.push_back("Col " + std::to_string(c));
  table.set_header(std::move(header));
  for (std::uint32_t step = 1; step <= cube.dimension() + 1; ++step) {
    std::vector<std::string> row{std::to_string(step)};
    for (int c = 1; c <= max_column; ++c) {
      const auto it = cells.find({step, c});
      row.push_back(it == cells.end() ? "" : it->second);
    }
    table.add_row(std::move(row));
  }
  table.print();

  // Cost summary: the VRS observation that the longest path has
  // gamma - 1 store-and-forward operations and 2 cut-throughs.
  std::size_t initiations = 0, redirects = 0, forwards = 0;
  for (const RsSend& s : sends) {
    if (s.step == 1)
      ++initiations;
    else if (s.forward)
      ++forwards;
    else
      ++redirects;
  }
  std::printf(
      "\n%zu initiations, %zu redirects (store-and-forward), %zu forwards "
      "(cut-through)\n",
      initiations, redirects, forwards);

  const RsSchedule schedule(cube, 0, /*include_returns=*/true);
  const auto check = check_schedule(cube.graph(), schedule);
  std::printf(
      "schedule check: %llu sends, %llu link conflicts (expected 0)\n",
      static_cast<unsigned long long>(check.total_sends),
      static_cast<unsigned long long>(check.link_conflicts));
  return check.link_conflicts == 0 ? 0 : 1;
}
