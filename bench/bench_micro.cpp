// Micro-benchmarks (google-benchmark) of the library's hot paths:
// Hamiltonian decomposition, schedule generation/checking, the event-driven
// simulator core, and the max-flow machinery.
#include <benchmark/benchmark.h>

#include "core/agreement.hpp"
#include "core/ihc.hpp"
#include "graph/connectivity.hpp"
#include "sim/flit_network.hpp"
#include "graph/torus_decomposition.hpp"
#include "sched/ihc_schedule.hpp"
#include "topology/hypercube.hpp"
#include "topology/square_mesh.hpp"

namespace {

using namespace ihc;

void BM_TorusDecomposition(benchmark::State& state) {
  const auto m = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    auto cycles = torus_two_hamiltonian_cycles(m, m);
    benchmark::DoNotOptimize(cycles);
  }
  state.SetComplexityN(state.range(0) * state.range(0));
}
BENCHMARK(BM_TorusDecomposition)->Arg(8)->Arg(16)->Arg(32)->Complexity();

void BM_HypercubeDecomposition(benchmark::State& state) {
  // Note: the construction memoizes; this measures the memoized copy path
  // after the first iteration, which is the production access pattern.
  const auto m = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    auto cycles = hypercube_hamiltonian_cycles(m);
    benchmark::DoNotOptimize(cycles);
  }
}
BENCHMARK(BM_HypercubeDecomposition)->Arg(6)->Arg(8)->Arg(10);

void BM_IhcScheduleCheck(benchmark::State& state) {
  const Hypercube q(static_cast<unsigned>(state.range(0)));
  const IhcSchedule schedule(q, 2);
  for (auto _ : state) {
    auto check = check_schedule(q.graph(), schedule);
    benchmark::DoNotOptimize(check);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(q.gamma()) * q.node_count() *
      (q.node_count() - 1));
}
BENCHMARK(BM_IhcScheduleCheck)->Arg(4)->Arg(6)->Arg(8);

void BM_IhcSimulation(benchmark::State& state) {
  const Hypercube q(static_cast<unsigned>(state.range(0)));
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  for (auto _ : state) {
    auto result = run_ihc(q, IhcOptions{.eta = 2}, opt);
    benchmark::DoNotOptimize(result);
  }
  // One "item" = one packet-hop event.
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(q.gamma()) * q.node_count() *
      (q.node_count() - 1));
}
BENCHMARK(BM_IhcSimulation)->Arg(4)->Arg(6)->Arg(8);

void BM_NodeDisjointPaths(benchmark::State& state) {
  const Graph g = make_hypercube_graph(static_cast<unsigned>(state.range(0)));
  NodeId t = g.node_count() - 1;
  for (auto _ : state) {
    auto flow = max_node_disjoint_paths(g, 0, t);
    benchmark::DoNotOptimize(flow);
  }
}
BENCHMARK(BM_NodeDisjointPaths)->Arg(6)->Arg(8)->Arg(10);

void BM_FlitSimulation(benchmark::State& state) {
  const SquareMesh mesh(static_cast<NodeId>(state.range(0)));
  const auto packets = ihc_flit_packets(mesh, 2, 4, true);
  for (auto _ : state) {
    FlitNetwork net(mesh.graph(),
                    FlitParams{.vc_count = 2, .buffer_flits = 2});
    for (const auto& p : packets) {
      FlitPacketSpec copy = p;
      net.add_packet(std::move(copy));
    }
    auto result = net.run();
    benchmark::DoNotOptimize(result);
    state.counters["flit_hops"] =
        static_cast<double>(result.flit_hops);
  }
}
BENCHMARK(BM_FlitSimulation)->Arg(4)->Arg(6)->Arg(8);

void BM_SignedAgreement(benchmark::State& state) {
  const Hypercube q(static_cast<unsigned>(state.range(0)));
  const KeyRing keys(3);
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  for (auto _ : state) {
    FaultPlan faults(9);
    faults.add(1, FaultMode::kCorrupt);
    auto result = run_signed_agreement(q, keys, faults, opt,
                                       AgreementConfig{.commander = 0});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SignedAgreement)->Arg(3)->Arg(4);

void BM_SquareMeshConstruction(benchmark::State& state) {
  const auto m = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    SquareMesh mesh(m);
    benchmark::DoNotOptimize(mesh.hamiltonian_cycles());
  }
}
BENCHMARK(BM_SquareMeshConstruction)->Arg(8)->Arg(16);

}  // namespace
