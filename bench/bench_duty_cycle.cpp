// E16 (extension) - the feasibility claim of Section VI-A, quantified:
// "it is feasible to dedicate the interconnection network to the ATA
// reliable broadcast operation for this length of time."
//
// A clock-sync or diagnosis service runs ATA broadcast periodically; what
// matters is the *duty cycle* - the fraction of each period the network
// is dedicated.  We run a periodic IHC service on simulated networks
// (and evaluate the Q_16 case analytically with the paper's parameters)
// across sync periods.
#include <cstdio>

#include "core/analysis.hpp"
#include "core/service.hpp"
#include "topology/hypercube.hpp"
#include "util/table.hpp"

using namespace ihc;

int main() {
  NetworkParams p;
  p.alpha = sim_ns(20);
  p.tau_s = sim_us(500);  // the paper's conservative 0.5 ms
  p.mu = 2;

  {
    AsciiTable table(
        "Measured duty cycle of a periodic IHC service on Q_8\n"
        "(alpha = 20 ns, tau_S = 0.5 ms, eta = mu = 2, 5 rounds each)");
    table.set_header({"sync period", "round time (mean)", "duty cycle",
                      "missed deadlines", "complete"});
    const Hypercube q(8);
    for (const SimTime period :
         {sim_ms(2), sim_ms(10), sim_ms(100), sim_ms(1000)}) {
      AtaOptions opt;
      opt.net = p;
      ServiceConfig config;
      config.period = period;
      config.rounds = 5;
      const ServiceReport r = run_periodic_service(q, config, opt);
      table.add_row(
          {fmt_time_ps(period),
           fmt_time_ps(static_cast<SimTime>(r.round_times.mean())),
           fmt_double(100.0 * r.duty_cycle, 3) + "%",
           std::to_string(r.missed_deadlines),
           r.all_rounds_complete ? "yes" : "NO"});
    }
    table.print();
  }

  {
    AsciiTable table(
        "\nAnalytical duty cycle at the paper's scales (eta = mu = 2)");
    table.set_header({"network", "round time", "1 ms period", "10 ms",
                      "100 ms"});
    for (const unsigned m : {10u, 12u, 14u, 16u}) {
      const std::uint64_t n = 1ull << m;
      const double round = model::ihc_dedicated(n, 2, p);
      auto duty = [round](double period_ms) {
        return fmt_double(100.0 * round / (period_ms * 1e9), 2) + "%";
      };
      table.add_row({"Q_" + std::to_string(m),
                     fmt_time_ps(static_cast<SimTime>(round)), duty(1.0),
                     duty(10.0), duty(100.0)});
    }
    table.print();
  }

  std::printf(
      "\nEven a 64K-node hypercube spends ~3.6 ms per ATA round (startup-\n"
      "dominated at tau_S = 0.5 ms): a 100 ms clock-sync period costs\n"
      "under 4%% of the network - the paper's feasibility claim, in duty-\n"
      "cycle form.  At Q_10 and below the round itself is ~1 ms and the\n"
      "dedication cost is around 1%% for typical sync periods.\n");
  return 0;
}
