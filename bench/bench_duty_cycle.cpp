// E16 (extension) - the feasibility claim of Section VI-A, quantified:
// "it is feasible to dedicate the interconnection network to the ATA
// reliable broadcast operation for this length of time."
//
// A clock-sync or diagnosis service runs ATA broadcast periodically; what
// matters is the *duty cycle* - the fraction of each period the network
// is dedicated.  We run a periodic IHC service on simulated networks via
// the exp:: campaign engine ("duty_cycle" built-in, one trial per sync
// period, fanned out across IHC_BENCH_JOBS worker threads) and evaluate
// the Q_16 case analytically with the paper's parameters.
#include <cstdio>
#include <cstdlib>

#include "core/analysis.hpp"
#include "exp/exp.hpp"
#include "util/table.hpp"

using namespace ihc;

namespace {

unsigned jobs_from_env() {
  const char* env = std::getenv("IHC_BENCH_JOBS");
  if (env == nullptr) return 0;  // 0 = hardware concurrency
  return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
}

}  // namespace

int main() {
  {
    const exp::Campaign campaign = exp::make_builtin_campaign("duty_cycle");
    exp::RunOptions run_options;
    run_options.jobs = jobs_from_env();
    // IHC_BENCH_METRICS=1 appends the merged simulator-metrics registry
    // (docs/TRACING.md); off by default to keep output stable.
    run_options.collect_metrics = std::getenv("IHC_BENCH_METRICS") != nullptr;
    const exp::CampaignResult result =
        exp::run_campaign(campaign, run_options);

    AsciiTable table(
        "Measured duty cycle of a periodic IHC service on Q_8\n"
        "(alpha = 20 ns, tau_S = 0.5 ms, eta = mu = 2, 5 rounds each)");
    table.set_header({"sync period", "round time (mean)", "duty cycle",
                      "missed deadlines", "complete"});
    for (const exp::TrialResult& r : result.trials) {
      if (!r.ok) {
        std::fprintf(stderr, "trial %s failed: %s\n", r.trial.id.c_str(),
                     r.error.c_str());
        return 1;
      }
      table.add_row(
          {fmt_time_ps(sim_ms(r.trial.get_int("period_ms"))),
           fmt_time_ps(static_cast<SimTime>(r.metric("round_mean_ps"))),
           fmt_double(r.metric("duty_cycle_pct"), 3) + "%",
           fmt_double(r.metric("missed_deadlines"), 0),
           r.metric("all_rounds_complete") == 1.0 ? "yes" : "NO"});
    }
    table.print();
    std::printf("[%zu trials on %u worker thread(s), %.1f ms wall]\n",
                result.trials.size(), result.jobs, result.wall_ms);
    if (!result.metrics.empty())
      std::printf("\nsimulator metrics (IHC_BENCH_METRICS):\n%s\n",
                  result.metrics.to_json().dump(2).c_str());
  }

  {
    NetworkParams p;
    p.alpha = sim_ns(20);
    p.tau_s = sim_us(500);  // the paper's conservative 0.5 ms
    p.mu = 2;
    AsciiTable table(
        "\nAnalytical duty cycle at the paper's scales (eta = mu = 2)");
    table.set_header({"network", "round time", "1 ms period", "10 ms",
                      "100 ms"});
    for (const unsigned m : {10u, 12u, 14u, 16u}) {
      const std::uint64_t n = 1ull << m;
      const double round = model::ihc_dedicated(n, 2, p);
      auto duty = [round](double period_ms) {
        return fmt_double(100.0 * round / (period_ms * 1e9), 2) + "%";
      };
      table.add_row({"Q_" + std::to_string(m),
                     fmt_time_ps(static_cast<SimTime>(round)), duty(1.0),
                     duty(10.0), duty(100.0)});
    }
    table.print();
  }

  std::printf(
      "\nEven a 64K-node hypercube spends ~3.6 ms per ATA round (startup-\n"
      "dominated at tau_S = 0.5 ms): a 100 ms clock-sync period costs\n"
      "under 4%% of the network - the paper's feasibility claim, in duty-\n"
      "cycle form.  At Q_10 and below the round itself is ~1 ms and the\n"
      "dedication cost is around 1%% for typical sync periods.\n");
  return 0;
}
