// E8 - Section VI-B: "In the general case of rho > 0, the execution times
// ... fall between the best and worst-case execution times of Tables II
// and IV."  We load every link with Poisson background traffic at
// utilization rho and measure the IHC algorithm between its two bounds,
// reporting how many potential cut-throughs survive.
#include <cstdio>

#include "core/analysis.hpp"
#include "core/ihc.hpp"
#include "topology/hypercube.hpp"
#include "util/table.hpp"

using namespace ihc;

int main() {
  const Hypercube q(6);
  NetworkParams p;
  p.alpha = sim_ns(20);
  p.tau_s = sim_ns(200);  // small startup so contention effects dominate
  p.mu = 2;
  p.background_mu = 8;

  const double best = model::ihc_dedicated(q.node_count(), 2, p);
  const double worst = model::ihc_worst(q.node_count(), 2, p);

  AsciiTable table(
      "IHC on Q_6 under background load (eta = 2, alpha = 20 ns,\n"
      "tau_S = 200 ns, background packets of 8 FIFO units).\n"
      "'1st-order' = naive per-relay degradation model (no convoys)");
  table.set_header({"rho", "finish", "per-cycle", "1st-order", "vs best",
                    "vs worst", "CT kept", "buffered", "bg packets"});

  for (const double rho :
       {0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
    AtaOptions opt;
    opt.net = p;
    opt.net.rho = rho;
    opt.net.seed = 0xFEEDu + static_cast<std::uint64_t>(rho * 100);
    const auto run = run_ihc(q, IhcOptions{.eta = 2}, opt);
    const auto async_run = run_ihc(
        q, IhcOptions{.eta = 2, .barrier = StageBarrier::kPerCycle}, opt);
    const double total_relays = static_cast<double>(
        run.stats.cut_throughs + run.stats.buffered_relays);
    table.add_row(
        {fmt_double(rho, 2), fmt_time_ps(run.finish),
         fmt_time_ps(async_run.finish),
         fmt_time_ps(static_cast<SimTime>(
             model::ihc_first_order_load(q.node_count(), 2, opt.net))),
         fmt_ratio(static_cast<double>(run.finish) / best),
         fmt_double(static_cast<double>(run.finish) / worst, 3),
         fmt_double(100.0 * static_cast<double>(run.stats.cut_throughs) /
                        total_relays,
                    1) +
             "%",
         std::to_string(run.stats.buffered_relays),
         std::to_string(run.stats.background_packets)});
  }
  table.print();

  std::printf(
      "\nbest (Table II)  = %s\nworst (Table IV) = %s (D = 0 here)\n"
      "\nAs rho grows, cut-throughs degrade into buffered relays and the\n"
      "finish time climbs from the Table II bound toward the Table IV\n"
      "bound, exactly as Section VI-B describes.  The naive first-order\n"
      "model under-predicts the climb: a buffered packet delays every\n"
      "packet pipelined behind it (convoy formation), an effect per-relay\n"
      "models cannot see.  The 'per-cycle' column runs the paper's\n"
      "asynchronous stage progression (a cycle that drains its stage\n"
      "early advances immediately), which recovers part of the convoy\n"
      "loss.  (The worst-case bound assumes EVERY relay buffers and\n"
      "pays D; the measured ratio can pass 1 at high rho because natural\n"
      "queueing behind long background packets exceeds D = 0.)\n",
      fmt_time_ps(static_cast<SimTime>(best)).c_str(),
      fmt_time_ps(static_cast<SimTime>(worst)).c_str());
  return 0;
}
