// E8 - Section VI-B: "In the general case of rho > 0, the execution times
// ... fall between the best and worst-case execution times of Tables II
// and IV."  We load every link with Poisson background traffic at
// utilization rho and measure the IHC algorithm between its two bounds,
// reporting how many potential cut-throughs survive.
//
// The trials run on the exp:: campaign engine (the "rho_sweep" built-in):
// every (rho, barrier) grid point is an independent simulation with a
// coordinate-derived seed, fanned out across IHC_BENCH_JOBS worker
// threads (default: all cores) - the per-trial numbers are identical to a
// serial run.
#include <cstdio>
#include <cstdlib>

#include "core/analysis.hpp"
#include "exp/exp.hpp"
#include "topology/hypercube.hpp"
#include "util/table.hpp"

using namespace ihc;

namespace {

unsigned jobs_from_env() {
  const char* env = std::getenv("IHC_BENCH_JOBS");
  if (env == nullptr) return 0;  // 0 = hardware concurrency
  return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
}

}  // namespace

int main() {
  const exp::Campaign campaign = exp::make_builtin_campaign("rho_sweep");
  exp::RunOptions run_options;
  run_options.jobs = jobs_from_env();
  // IHC_BENCH_METRICS=1 appends the merged simulator-metrics registry
  // (docs/TRACING.md) after the table; off by default to keep output stable.
  run_options.collect_metrics = std::getenv("IHC_BENCH_METRICS") != nullptr;
  const exp::CampaignResult result = exp::run_campaign(campaign, run_options);

  // The same bounds the campaign's metrics are normalized against.
  NetworkParams p;
  p.alpha = sim_ns(20);
  p.tau_s = sim_ns(200);
  p.mu = 2;
  p.background_mu = 8;
  const Hypercube q(6);
  const double best = model::ihc_dedicated(q.node_count(), 2, p);
  const double worst = model::ihc_worst(q.node_count(), 2, p);

  AsciiTable table(
      "IHC on Q_6 under background load (eta = 2, alpha = 20 ns,\n"
      "tau_S = 200 ns, background packets of 8 FIFO units).\n"
      "'1st-order' = naive per-relay degradation model (no convoys)");
  table.set_header({"rho", "finish", "per-cycle", "1st-order", "vs best",
                    "vs worst", "CT kept", "buffered", "bg packets"});

  // One table row per rho, combining that rho's two barrier-variant trials.
  for (const exp::TrialResult& r : result.trials) {
    if (!r.ok) {
      std::fprintf(stderr, "trial %s failed: %s\n", r.trial.id.c_str(),
                   r.error.c_str());
      return 1;
    }
    if (r.trial.get_str("barrier") != "global") continue;
    const std::string per_cycle_id =
        "rho=" + exp::format_param(exp::ParamValue(r.trial.get_double("rho"))) +
        ",barrier=per-cycle,rep=0";
    const exp::TrialResult* per_cycle = nullptr;
    for (const exp::TrialResult& other : result.trials)
      if (other.trial.id == per_cycle_id) per_cycle = &other;
    if (per_cycle == nullptr || !per_cycle->ok) {
      std::fprintf(stderr, "missing per-cycle trial %s\n",
                   per_cycle_id.c_str());
      return 1;
    }
    table.add_row(
        {fmt_double(r.trial.get_double("rho"), 2),
         fmt_time_ps(static_cast<SimTime>(r.metric("finish_ps"))),
         fmt_time_ps(static_cast<SimTime>(per_cycle->metric("finish_ps"))),
         fmt_time_ps(static_cast<SimTime>(r.metric("first_order_ps"))),
         fmt_ratio(r.metric("vs_best")),
         fmt_double(r.metric("vs_worst"), 3),
         fmt_double(r.metric("ct_kept_pct"), 1) + "%",
         fmt_double(r.metric("buffered_relays"), 0),
         fmt_double(r.metric("background_packets"), 0)});
  }
  table.print();

  std::printf(
      "\nbest (Table II)  = %s\nworst (Table IV) = %s (D = 0 here)\n"
      "\nAs rho grows, cut-throughs degrade into buffered relays and the\n"
      "finish time climbs from the Table II bound toward the Table IV\n"
      "bound, exactly as Section VI-B describes.  The naive first-order\n"
      "model under-predicts the climb: a buffered packet delays every\n"
      "packet pipelined behind it (convoy formation), an effect per-relay\n"
      "models cannot see.  The 'per-cycle' column runs the paper's\n"
      "asynchronous stage progression (a cycle that drains its stage\n"
      "early advances immediately), which recovers part of the convoy\n"
      "loss.  (The worst-case bound assumes EVERY relay buffers and\n"
      "pays D; the measured ratio can pass 1 at high rho because natural\n"
      "queueing behind long background packets exceeds D = 0.)\n"
      "\n[%zu trials on %u worker thread(s), %.1f ms wall]\n",
      fmt_time_ps(static_cast<SimTime>(best)).c_str(),
      fmt_time_ps(static_cast<SimTime>(worst)).c_str(),
      result.trials.size(), result.jobs, result.wall_ms);
  if (!result.metrics.empty())
    std::printf("\nsimulator metrics (IHC_BENCH_METRICS):\n%s\n",
                result.metrics.to_json().dump(2).c_str());
  return 0;
}
