// E4 - Table IV of the paper: worst-case execution times, where every
// potential cut-through degrades to a store-and-forward with queueing
// delay D.  The paper's conclusion: FRS (which merges messages) wins under
// heavy load, while IHC retains the best worst case among the cut-through
// algorithms.  We print the closed forms, validate IHC/FRS against forced
// store-and-forward simulations, and sweep D to expose the IHC/FRS
// crossover.
#include <cstdio>

#include "core/analysis.hpp"
#include "core/frs.hpp"
#include "core/ihc.hpp"
#include "topology/hypercube.hpp"
#include "util/table.hpp"

using namespace ihc;

int main() {
  NetworkParams p;
  p.alpha = sim_ns(20);
  p.tau_s = sim_us(5);
  p.mu = 2;
  p.queueing_delay = sim_us(20);

  {
    AsciiTable table(
        "Table IV - worst-case execution times\n"
        "alpha = 20 ns, tau_S = 5 us, mu = 2, D = 20 us, eta = 2");
    table.set_header(
        {"N", "IHC", "VRS-ATA", "KS-ATA", "VSQ-ATA", "FRS", "winner"});
    for (unsigned m : {4u, 6u, 8u, 10u, 12u}) {
      const std::uint64_t n = 1ull << m;
      const double ihc = model::ihc_worst(n, 2, p);
      const double frs = model::frs_worst(n, p);
      table.add_row(
          {"2^" + std::to_string(m),
           fmt_time_ps(static_cast<SimTime>(ihc)),
           fmt_time_ps(static_cast<SimTime>(model::vrs_ata_worst(n, p))),
           fmt_time_ps(static_cast<SimTime>(model::ks_ata_worst(n, p))),
           fmt_time_ps(static_cast<SimTime>(model::vsq_ata_worst(n, p))),
           fmt_time_ps(static_cast<SimTime>(frs)), frs < ihc ? "FRS" : "IHC"});
    }
    table.print();
  }

  // Simulation validation: force store-and-forward + D on a Q_4/Q_6.
  std::printf("\n--- forced store-and-forward simulation validation ---\n");
  for (unsigned m : {4u, 6u}) {
    const Hypercube q(m);
    AtaOptions opt;
    opt.net = p;
    opt.net.switching = Switching::kStoreAndForward;
    const auto ihc_run = run_ihc(q, IhcOptions{.eta = 2}, opt);
    const auto frs_run = run_frs(q, opt);
    std::printf(
        "Q_%u: IHC sim %s vs model %s | FRS sim %s vs model %s\n", m,
        fmt_time_ps(ihc_run.finish).c_str(),
        fmt_time_ps(static_cast<SimTime>(
            model::ihc_worst(q.node_count(), 2, opt.net))).c_str(),
        fmt_time_ps(frs_run.finish).c_str(),
        fmt_time_ps(static_cast<SimTime>(
            model::frs_worst(q.node_count(), opt.net))).c_str());
  }

  // Crossover: with small D the cut-through IHC still wins; as D grows the
  // per-step merging of FRS takes over (it pays log N + 1 startups instead
  // of eta (N-1)).
  std::printf("\n--- IHC/FRS crossover in D (N = 256, eta = 2) ---\n");
  AsciiTable sweep;
  sweep.set_header({"D", "IHC worst", "FRS worst", "winner"});
  for (const SimTime d :
       {sim_ns(0), sim_ns(100), sim_us(1), sim_us(10), sim_us(100)}) {
    NetworkParams pd = p;
    pd.queueing_delay = d;
    const double ihc = model::ihc_worst(256, 2, pd);
    const double frs = model::frs_worst(256, pd);
    sweep.add_row({fmt_time_ps(d),
                   fmt_time_ps(static_cast<SimTime>(ihc)),
                   fmt_time_ps(static_cast<SimTime>(frs)),
                   frs < ihc ? "FRS" : "IHC"});
  }
  sweep.print();
  std::printf(
      "\nNote: in the worst case FRS wins even at D = 0 - its advantage is\n"
      "paying (log2 N + 1) startups instead of eta (N-1); D only widens\n"
      "the gap.  Among the cut-through algorithms IHC keeps the best worst\n"
      "case (Table IV rows).\n");
  return 0;
}
