// E5 - Fig. 3 of the paper: the two edge-disjoint Hamiltonian cycles of
// the torus-wrapped square mesh (drawn for SQ_4, which is also Q_4).  We
// render the SQ_4 decomposition as an ASCII grid and then sweep the
// construction across square meshes, hypercubes and hex meshes, timing the
// engine and verifying every result.
#include <chrono>
#include <cstdio>

#include "graph/decomposer.hpp"
#include "graph/hamiltonian.hpp"
#include "graph/torus_decomposition.hpp"
#include "topology/hex_mesh.hpp"
#include "topology/hypercube.hpp"
#include "topology/square_mesh.hpp"
#include "util/table.hpp"

using namespace ihc;

namespace {

/// Renders an m x m torus decomposition: each cell shows the node, each
/// edge the cycle (A/B) that owns it.
void render_square(const SquareMesh& mesh) {
  const NodeId m = mesh.side();
  const auto& cycles = mesh.hamiltonian_cycles();
  const Graph& g = mesh.graph();
  std::vector<char> owner(g.edge_count(), '?');
  for (std::size_t c = 0; c < cycles.size(); ++c)
    for (EdgeId e : cycles[c].edge_ids(g)) owner[e] = c == 0 ? 'A' : 'B';

  std::printf("SQ_%u edge ownership (A = cycle 1, B = cycle 2; rightmost\n"
              "column and bottom row are the wrap-around edges):\n\n", m);
  for (NodeId r = 0; r < m; ++r) {
    // Node row with horizontal edges (including wrap back to column 0).
    for (NodeId c = 0; c < m; ++c) {
      const EdgeId e = g.find_edge(mesh.node_at(r, c),
                                   mesh.node_at(r, (c + 1) % m));
      std::printf("o--%c--", owner[e]);
    }
    std::printf("o\n");
    // Vertical edges (wrap for the last row).
    for (NodeId c = 0; c < m; ++c) {
      const EdgeId e = g.find_edge(mesh.node_at(r, c),
                                   mesh.node_at((r + 1) % m, c));
      std::printf("%c     ", owner[e]);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

template <typename Fn>
double time_ms(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main() {
  render_square(SquareMesh(4));

  AsciiTable table(
      "Hamiltonian decomposition sweep (engine statistics; every result "
      "machine-verified)");
  table.set_header({"graph", "N", "cycles", "time", "verified"});

  for (NodeId m : {4u, 8u, 16u, 24u, 32u}) {
    std::vector<Cycle> cycles;
    const double ms = time_ms(
        [&] { cycles = torus_two_hamiltonian_cycles(m, m); });
    const Graph g = make_torus_graph(m, m);
    const auto verdict = verify_hc_set(g, cycles, true);
    table.add_row({"SQ_" + std::to_string(m), std::to_string(m * m),
                   std::to_string(cycles.size()), fmt_double(ms, 1) + " ms",
                   verdict.ok ? "yes" : "NO"});
  }
  table.add_separator();
  for (unsigned m : {4u, 6u, 8u, 10u}) {
    std::vector<Cycle> cycles;
    const double ms =
        time_ms([&] { cycles = hypercube_hamiltonian_cycles(m); });
    const Graph g = make_hypercube_graph(m);
    const auto verdict = verify_hc_set(g, cycles, m % 2 == 0);
    table.add_row({"Q_" + std::to_string(m), std::to_string(1u << m),
                   std::to_string(cycles.size()), fmt_double(ms, 1) + " ms",
                   verdict.ok ? "yes" : "NO"});
  }
  table.add_separator();
  for (NodeId m : {3u, 5u, 8u, 12u}) {
    const HexMesh h(m);
    std::vector<Cycle> cycles;
    const double ms = time_ms([&] { cycles = h.hamiltonian_cycles(); });
    const auto verdict = verify_hc_set(h.graph(), cycles, true);
    table.add_row({h.name(), std::to_string(h.node_count()),
                   std::to_string(cycles.size()), fmt_double(ms, 1) + " ms",
                   verdict.ok ? "yes" : "NO"});
  }
  table.print();
  std::printf(
      "\n(Hypercube decompositions memoize sub-cubes, so repeated sizes\n"
      "are instantaneous; hex-mesh cycles are the circulant jump classes\n"
      "and need no search at all.)\n");
  return 0;
}
