// E13 (extension) - delivery-latency profiles of the ATA algorithms.
//
// The paper compares only total completion times; applications care about
// finer milestones.  A clock-synchronization round can proceed once every
// pair has ONE intact copy; Byzantine voting needs all gamma.  This bench
// measures both milestones per algorithm on the same network, exposing a
// structural difference the totals hide: IHC delivers its first copies
// almost as late as its last (every copy rides a full-cycle pipeline),
// while VRS-ATA's first copies of early sources arrive long before its
// total time, and FRS delivers everything in a burst of merged steps.
#include <cstdio>

#include "core/frs.hpp"
#include "core/ihc.hpp"
#include "core/latency.hpp"
#include "core/vrs.hpp"
#include "topology/hypercube.hpp"
#include "util/table.hpp"

using namespace ihc;

int main() {
  const Hypercube q(5);  // 32 nodes
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  opt.granularity = DeliveryLedger::Granularity::kFull;

  AsciiTable table(
      "Delivery-latency milestones on Q_5 (alpha = 20 ns, tau_S = 5 us,\n"
      "mu = 2): 'first copy' = every pair has >= 1 copy; 'all copies' =\n"
      "every pair has all gamma");
  table.set_header({"algorithm", "first copy", "all copies",
                    "mean pair first", "mean pair last", "stddev last"});

  auto add = [&table](const AtaResult& result) {
    const LatencyReport lat = delivery_latency(result.ledger);
    table.add_row(
        {result.algorithm, fmt_time_ps(lat.first_copy_completion),
         fmt_time_ps(lat.full_completion),
         fmt_time_ps(static_cast<SimTime>(lat.first_copy_times.mean())),
         fmt_time_ps(static_cast<SimTime>(lat.last_copy_times.mean())),
         fmt_time_ps(static_cast<SimTime>(lat.last_copy_times.stddev()))});
  };

  add(run_ihc(q, IhcOptions{.eta = 2}, opt));
  add(run_ihc(q, IhcOptions{.eta = 4}, opt));
  add(run_frs(q, opt));
  add(run_vrs_ata(q, opt));
  table.print();

  std::printf(
      "\nReadings: IHC completes both milestones orders of magnitude\n"
      "earlier; its first-copy and all-copies milestones are close (every\n"
      "copy travels a full cycle).  FRS's milestones coincide with its\n"
      "last merged steps.  VRS-ATA's mean pair latency is dominated by\n"
      "the sequential broadcast schedule: late sources deliver ~N times\n"
      "later than early ones (large stddev).\n");
  return 0;
}
