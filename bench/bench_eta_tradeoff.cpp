// E11 - the eta trade-off of Section IV: "By adjusting the interleaving
// distance eta, we can flexibly decrease the link utilization of the IHC
// algorithm (for normal traffic) at the expense of an increase in the time
// required for ATA reliable broadcast."  We sweep eta and report both
// sides of the trade.
#include <cstdio>

#include "core/analysis.hpp"
#include "core/ihc.hpp"
#include "topology/hypercube.hpp"
#include "util/table.hpp"

using namespace ihc;

int main() {
  const Hypercube q(8);
  NetworkParams p;
  p.alpha = sim_ns(20);
  p.tau_s = sim_us(1);
  p.mu = 2;

  AsciiTable table(
      "IHC eta sweep on Q_8 (alpha = 20 ns, tau_S = 1 us, mu = 2)\n"
      "mean link utilization = fraction of link-time the broadcast\n"
      "occupies; 1 - that is what remains for normal traffic");
  table.set_header({"eta", "finish", "model", "mean link util",
                    "left for other traffic"});
  // Every eta in the sweep satisfies the contention-freedom precondition
  // (256 mod eta is 0 or >= mu); see eta_is_contention_free().

  for (std::uint32_t eta : {2u, 4u, 6u, 8u, 16u, 32u, 64u}) {
    AtaOptions opt;
    opt.net = p;
    const auto run = run_ihc(q, IhcOptions{.eta = eta}, opt);
    table.add_row(
        {std::to_string(eta), fmt_time_ps(run.finish),
         fmt_time_ps(static_cast<SimTime>(
             model::ihc_dedicated(q.node_count(), eta, p))),
         fmt_double(run.mean_link_utilization, 4),
         fmt_double(1.0 - run.mean_link_utilization, 4)});
  }
  table.print();

  std::printf(
      "\nDoubling eta doubles the stage count (time grows linearly in\n"
      "eta) while the broadcast's own packets thin out proportionally on\n"
      "every link - the utilization column falls like 1/eta.  eta = mu is\n"
      "the fastest contention-free setting; larger eta trades time for\n"
      "headroom, exactly the knob Section IV describes.\n");
  return 0;
}
