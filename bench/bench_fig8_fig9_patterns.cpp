// E7 - Figs. 8 and 9 of the paper: the cut-through / store-and-forward
// structure of the KS (hex mesh) and VSQ (square mesh) single-node
// reliable broadcasts.  The paper derives the longest paths:
//   KS : 3 store-and-forward + (2m - 5) cut-through operations,
//   VSQ: 3 store-and-forward + (2 sqrt(N) - 6) cut-through operations.
// We analyze our reconstructed patterns structurally (per-path SAF/CT
// counts straight from the dissemination trees) and compare the measured
// single-broadcast times to the closed forms.
#include <algorithm>
#include <cstdio>

#include "core/analysis.hpp"
#include "core/hc_broadcast.hpp"
#include "core/ks.hpp"
#include "core/vsq.hpp"
#include "util/table.hpp"

using namespace ihc;

namespace {

AtaOptions options() {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  return opt;
}

struct PathProfile {
  std::size_t max_saf = 0;
  std::size_t max_ct = 0;
  std::size_t max_hops = 0;
};

PathProfile profile(const std::vector<std::vector<FlowTreeNode>>& trees) {
  PathProfile p;
  for (const auto& tree : trees) {
    for (std::size_t i = 1; i < tree.size(); ++i) {
      std::size_t saf = 0, ct = 0, hops = 0;
      for (std::size_t cur = i; cur != 0;
           cur = static_cast<std::size_t>(tree[cur].parent)) {
        ++hops;
        (tree[cur].cut_through_preferred ? ct : saf)++;
      }
      p.max_saf = std::max(p.max_saf, saf);
      p.max_ct = std::max(p.max_ct, ct);
      p.max_hops = std::max(p.max_hops, hops);
    }
  }
  return p;
}

}  // namespace

int main() {
  const AtaOptions opt = options();

  std::printf("Fig. 8 - KS broadcast pattern structure (hex meshes)\n");
  AsciiTable ks_table;
  ks_table.set_header({"mesh", "variant", "max SAF", "max CT",
                       "sim 1 bcast", "model 1 bcast", "queue wait"});
  for (NodeId m : {3u, 5u, 8u, 12u}) {
    const HexMesh hex(m);
    const double model =
        model::ks_ata_dedicated(hex.node_count(), opt.net) /
        static_cast<double>(hex.node_count());
    for (const auto variant :
         {KsVariant::kClassic, KsVariant::kAxisAvoiding}) {
      const auto p = profile(ks_trees(hex, 0, variant));
      const auto run = run_ks_single(hex, 0, opt, variant);
      ks_table.add_row(
          {hex.name(),
           variant == KsVariant::kClassic ? "classic" : "axis-avoiding",
           std::to_string(p.max_saf) + " (paper: 3)",
           std::to_string(p.max_ct) + " (vs " + std::to_string(2 * m - 5) +
               ")",
           fmt_time_ps(run.finish),
           fmt_time_ps(static_cast<SimTime>(model)),
           fmt_time_ps(run.stats.total_queue_wait)});
    }
    ks_table.add_separator();
  }
  ks_table.print();
  std::printf(
      "\n(A single KS tree simulated alone meets the closed form exactly -\n"
      "the intra-tree schedule is contention-free; the full-broadcast\n"
      "slowdown is cross-tree line sharing, which the axis-avoiding\n"
      "variant halves in aggregate without shortening the critical\n"
      "path.)\n");

  std::printf("\nFig. 9 - VSQ broadcast pattern structure (square meshes)\n");
  AsciiTable vsq_table;
  vsq_table.set_header({"mesh", "N", "max SAF (paper: 3)",
                        "max CT (paper: 2sqrt(N)-6)", "sim 1 bcast",
                        "model 1 bcast"});
  for (NodeId m : {4u, 8u, 12u, 16u}) {
    const SquareMesh mesh(m);
    const auto p = profile(vsq_trees(mesh, 0));
    const auto run = run_vsq_single(mesh, 0, opt);
    const double model =
        model::vsq_ata_dedicated(mesh.node_count(), opt.net) /
        static_cast<double>(mesh.node_count());
    vsq_table.add_row(
        {mesh.name(), std::to_string(mesh.node_count()),
         std::to_string(p.max_saf),
         std::to_string(p.max_ct) + " (vs " + std::to_string(2 * m - 6) +
             ")",
         fmt_time_ps(run.finish),
         fmt_time_ps(static_cast<SimTime>(model))});
  }
  vsq_table.print();

  // Section II's companion claim: "for a single reliable broadcast
  // operation, the KS algorithm is much faster than an algorithm based on
  // the use of edge-disjoint Hamiltonian cycles" - the HC broadcast pays
  // O(N) alpha per broadcast, the sector patterns only O(sqrt N) alpha.
  std::printf(
      "\nSingle reliable broadcast: sector patterns vs the\n"
      "Hamiltonian-cycle broadcast (Section II comparison).  The claim\n"
      "lives in the transmission-dominated regime (N alpha >> tau_S):\n"
      "the HC walk pays O(N) alpha, the sector patterns O(sqrt N) alpha\n"
      "but 3 startups.  Both regimes shown:\n");
  AsciiTable single_table;
  single_table.set_header({"network", "tau_S", "KS/VSQ single",
                           "HC single", "HC/sector"});
  for (const SimTime tau_s : {sim_ns(200), sim_us(5)}) {
    AtaOptions so = opt;
    so.net.tau_s = tau_s;
    for (NodeId m : {8u, 12u, 16u}) {
      const HexMesh hex(m);
      const auto ks = run_ks_single(hex, 0, so);
      const auto hc = run_hc_broadcast(hex, 0, so);
      single_table.add_row(
          {hex.name(), fmt_time_ps(tau_s), fmt_time_ps(ks.finish),
           fmt_time_ps(hc.finish),
           fmt_ratio(static_cast<double>(hc.finish) /
                     static_cast<double>(ks.finish))});
    }
    for (NodeId m : {16u, 24u}) {
      const SquareMesh mesh(m);
      const auto vsq = run_vsq_single(mesh, 0, so);
      const auto hc = run_hc_broadcast(mesh, 0, so);
      single_table.add_row(
          {mesh.name(), fmt_time_ps(tau_s), fmt_time_ps(vsq.finish),
           fmt_time_ps(hc.finish),
           fmt_ratio(static_cast<double>(hc.finish) /
                     static_cast<double>(vsq.finish))});
    }
    single_table.add_separator();
  }
  single_table.print();
  std::printf(
      "\nWith tau_S = 200 ns the HC walk loses by the predicted O(sqrt N)\n"
      "factor (the KS-paper claim the text cites); with tau_S = 5 us the\n"
      "single startup of the HC walk wins instead - the trade-off flips\n"
      "at roughly 2 tau_S = (N - 2 sqrt(N)) alpha.\n");

  std::printf(
      "\nBoth reconstructions keep the paper's defining property - a\n"
      "constant number (<= 3) of store-and-forward operations per path\n"
      "with all remaining hops cut-through, so a single broadcast costs\n"
      "O(sqrt(N)) alpha instead of the O(N) alpha of a Hamiltonian-cycle\n"
      "walk.  Exact fork placement differs from [15] (see DESIGN.md), so\n"
      "CT counts differ from the paper's constants by O(1) and measured\n"
      "times deviate where the six directional trees share links.\n");
  return 0;
}
