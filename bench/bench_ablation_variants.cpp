// Ablation of the Section-IV operational variants, the design choices
// DESIGN.md calls out:
//  * single-link-per-node operation (gamma sequential invocations) vs the
//    HARTS-style all-links assumption;
//  * k < gamma cycle subsets: the reliability-for-time trade;
//  * overlapped stages: the (mu-1)^2 alpha saving;
//  * message packetization: rounds scale linearly with message length.
#include <cstdio>

#include "core/analysis.hpp"
#include "core/ihc.hpp"
#include "topology/hypercube.hpp"
#include "topology/square_mesh.hpp"
#include "util/table.hpp"

using namespace ihc;

int main() {
  const Hypercube q(6);  // 64 nodes, gamma = 6
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;

  {
    AsciiTable table(
        "Link concurrency x cycle subset on Q_6 (eta = 2)\n"
        "single-link mode = one transmitter/receiver per node: the k\n"
        "directed cycles run as sequential invocations");
    table.set_header({"mode", "k cycles", "finish", "model",
                      "copies/pair", "buffered"});
    for (const auto concurrency :
         {LinkConcurrency::kAllLinks, LinkConcurrency::kSingleLinkPerNode}) {
      for (std::uint32_t k : {2u, 4u, 6u}) {
        IhcOptions io{.eta = 2, .concurrency = concurrency,
                      .cycles_to_use = k};
        const auto run = run_ihc(q, io, opt);
        const double model =
            concurrency == LinkConcurrency::kAllLinks
                ? model::ihc_dedicated(q.node_count(), 2, opt.net)
                : model::ihc_single_link(q.node_count(), 2, k, opt.net);
        table.add_row(
            {concurrency == LinkConcurrency::kAllLinks ? "all-links"
                                                       : "single-link",
             std::to_string(k), fmt_time_ps(run.finish),
             fmt_time_ps(static_cast<SimTime>(model)),
             std::to_string(run.ledger.copies(0, 1)),
             std::to_string(run.stats.buffered_relays)});
      }
      table.add_separator();
    }
    table.print();
  }

  {
    // N must be divisible by mu for a contention-free eta = mu run; Q_6
    // has N = 64, so mu = 3 needs a different host - use SQ_6 (N = 36,
    // divisible by 2, 3 and 4) for the whole sweep.
    const SquareMesh sq6(6);
    AsciiTable table("\nOverlapped stages (eta = mu) on SQ_6 (N = 36)");
    table.set_header({"mu", "plain", "overlapped", "saving",
                      "predicted (mu-1)^2 alpha"});
    for (std::uint32_t mu : {2u, 3u, 4u}) {
      AtaOptions o = opt;
      o.net.mu = mu;
      const auto plain = run_ihc(sq6, IhcOptions{.eta = mu}, o);
      const auto over =
          run_ihc(sq6, IhcOptions{.eta = mu, .overlap_stages = true}, o);
      table.add_row(
          {std::to_string(mu), fmt_time_ps(plain.finish),
           fmt_time_ps(over.finish),
           fmt_time_ps(plain.finish - over.finish),
           fmt_time_ps(static_cast<SimTime>(mu - 1) *
                       static_cast<SimTime>(mu - 1) * o.net.alpha)});
    }
    table.print();
  }

  {
    AsciiTable table("\nMessage packetization on Q_6 (eta = 2, mu = 2)");
    table.set_header({"message units", "packets", "finish", "model"});
    for (std::uint32_t units : {2u, 4u, 8u, 16u, 32u}) {
      const auto run =
          run_ihc(q, IhcOptions{.eta = 2, .message_units = units}, opt);
      table.add_row(
          {std::to_string(units),
           std::to_string(ihc_packet_count(units, opt.net.mu)),
           fmt_time_ps(run.finish),
           fmt_time_ps(static_cast<SimTime>(model::ihc_message_dedicated(
               q.node_count(), 2, units, opt.net)))});
    }
    table.print();
  }

  std::printf(
      "\nReadings: in all-links mode the cycle subset is free (the cycles\n"
      "are link-disjoint and parallel); in single-link mode time scales\n"
      "linearly with k - the paper's reliability-for-time trade.  The\n"
      "overlap saving matches (mu-1)^2 alpha exactly, and long messages\n"
      "pipeline in ceil(L/mu) rounds with zero contention throughout.\n");
  return 0;
}
