// E2 - Table II of the paper: execution times of the five ATA reliable
// broadcast algorithms on a dedicated network (rho = 0), with the closed
// forms evaluated next to measured simulator runs.
//
// Expected shape (the paper's conclusions):
//  * IHC is fastest everywhere and its measured time matches the model
//    EXACTLY (zero buffered relays - the contention-freedom claim);
//  * FRS pays one startup per step but moves (N-1)L bytes over every link;
//  * the sequential-broadcast algorithms (VRS-ATA, KS-ATA, VSQ-ATA) carry
//    an N-fold startup factor and lose by orders of magnitude.
#include <cstdio>
#include <memory>

#include "core/analysis.hpp"
#include "core/frs.hpp"
#include "core/ihc.hpp"
#include "core/ks.hpp"
#include "core/vrs.hpp"
#include "core/vsq.hpp"
#include "topology/hex_mesh.hpp"
#include "topology/hypercube.hpp"
#include "topology/square_mesh.hpp"
#include "util/table.hpp"

using namespace ihc;

namespace {

AtaOptions options() {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  return opt;
}

void add_row(AsciiTable& table, const std::string& net,
             const std::string& algo, double model_ps,
             const AtaResult* run) {
  std::vector<std::string> row{net, algo,
                               fmt_time_ps(static_cast<SimTime>(model_ps))};
  if (run != nullptr) {
    row.push_back(fmt_time_ps(run->finish));
    row.push_back(std::to_string(run->stats.buffered_relays));
    row.push_back(fmt_ratio(static_cast<double>(run->finish) / model_ps));
  } else {
    row.insert(row.end(), {"(model only)", "-", "-"});
  }
  table.add_row(std::move(row));
}

}  // namespace

int main() {
  const AtaOptions opt = options();
  AsciiTable table(
      "Table II - execution times, dedicated network (rho = 0)\n"
      "alpha = 20 ns, tau_S = 5 us, mu = 2, eta = 2");
  table.set_header({"network", "algorithm", "model", "simulated",
                    "buffered", "sim/model"});

  // Hypercubes: IHC vs VRS-ATA vs FRS.
  for (unsigned m : {4u, 6u, 8u, 10u}) {
    const Hypercube q(m);
    const auto n = q.node_count();
    {
      const auto run = run_ihc(q, IhcOptions{.eta = 2}, opt);
      add_row(table, q.name(), "IHC", model::ihc_dedicated(n, 2, opt.net),
              &run);
    }
    {
      const double model = model::vrs_ata_dedicated(n, opt.net);
      if (m <= 8) {
        const auto run = run_vrs_ata(q, opt);
        add_row(table, q.name(), "VRS-ATA", model, &run);
      } else {
        add_row(table, q.name(), "VRS-ATA", model, nullptr);
      }
    }
    {
      const auto run = run_frs(q, opt);
      add_row(table, q.name(), "FRS", model::frs_dedicated(n, opt.net),
              &run);
    }
    table.add_separator();
  }

  // Hex meshes: IHC vs KS-ATA.  N = 3m(m-1)+1 is never divisible by 2,
  // so the contention-free eta is topology-specific (paper precondition:
  // every initiator gap, including the wrap-around one, must be >= mu).
  for (NodeId m : {3u, 5u, 8u}) {
    const HexMesh h(m);
    const auto n = h.node_count();
    {
      const std::uint32_t eta =
          smallest_contention_free_eta(n, opt.net.mu);
      const auto run = run_ihc(h, IhcOptions{.eta = eta}, opt);
      add_row(table, h.name(), "IHC(eta=" + std::to_string(eta) + ")",
              model::ihc_dedicated(n, eta, opt.net), &run);
    }
    {
      const auto run = run_ks_ata(h, opt);
      add_row(table, h.name(), "KS-ATA", model::ks_ata_dedicated(n, opt.net),
              &run);
    }
    table.add_separator();
  }

  // Square meshes: IHC vs VSQ-ATA.
  for (NodeId m : {4u, 8u, 12u}) {
    const SquareMesh sq(m);
    const auto n = sq.node_count();
    {
      const auto run = run_ihc(sq, IhcOptions{.eta = 2}, opt);
      add_row(table, sq.name(), "IHC", model::ihc_dedicated(n, 2, opt.net),
              &run);
    }
    {
      const auto run = run_vsq_ata(sq, opt);
      add_row(table, sq.name(), "VSQ-ATA",
              model::vsq_ata_dedicated(n, opt.net), &run);
    }
    table.add_separator();
  }

  table.print();
  std::printf(
      "\nNotes: IHC's sim/model ratio is exactly 1.00x - the schedule is\n"
      "contention-free, so every relay cuts through.  The event-driven\n"
      "simulator overlaps the redirect operations that the paper's\n"
      "step-wise model serializes, so VRS-ATA/VSQ-ATA measure slightly\n"
      "below their closed forms; the reconstructed KS pattern suffers\n"
      "intra-broadcast link sharing the original avoids, so KS-ATA\n"
      "measures above its form.  The ordering of Table II is preserved\n"
      "in every case.\n");
  return 0;
}
