// E3 - Table III and the Section VI-A headline numbers:
//  * execution times with rho = 0 and eta = mu = 2 (Table III);
//  * "the time required for ATA reliable broadcast using the IHC algorithm
//    is 2 tau_S + 0.02 ms on a 1024-node Q_10 and 2 tau_S + 1.31 ms on a
//    64K-node Q_16";
//  * "over 68.7 billion packets can be sent and received in 1.81 ms on a
//    64K-node hypercube" (tau_S = 0.5 ms, alpha = 20 ns).
//
// We reproduce the formulas, check the quoted figures, flag the paper's
// internal factor-2 slip (the quoted alpha-terms equal N*alpha, which is
// the eta = mu = 1 optimum, not the 2N*alpha of the eta = 2 formula), and
// validate the Q_10 entries against full simulations.
#include <cstdio>

#include "core/analysis.hpp"
#include "core/frs.hpp"
#include "core/ihc.hpp"
#include "topology/hypercube.hpp"
#include "util/table.hpp"

using namespace ihc;

namespace {

NetworkParams paper_params() {
  NetworkParams p;
  p.alpha = sim_ns(20);
  p.tau_s = sim_us(500);  // the paper's conservative 0.5 ms
  p.mu = 2;
  return p;
}

}  // namespace

int main() {
  NetworkParams p = paper_params();

  {
    AsciiTable table(
        "Table III - execution times with rho = 0 and eta = mu = 2\n"
        "alpha = 20 ns, tau_S = 0.5 ms, mu = 2");
    table.set_header({"N", "IHC", "VRS-ATA", "FRS"});
    for (unsigned m : {6u, 8u, 10u, 12u, 14u, 16u}) {
      const std::uint64_t n = 1ull << m;
      table.add_row({"2^" + std::to_string(m),
                     fmt_time_ps(static_cast<SimTime>(
                         model::ihc_dedicated(n, 2, p))),
                     fmt_time_ps(static_cast<SimTime>(
                         model::vrs_ata_dedicated(n, p))),
                     fmt_time_ps(static_cast<SimTime>(
                         model::frs_dedicated(n, p)))});
    }
    table.print();
  }

  // Headline checks.
  std::printf("\n--- Section VI-A headline numbers ---\n");
  const double q10_alpha_term = 1024.0 * static_cast<double>(p.alpha);
  const double q16_alpha_term = 65536.0 * static_cast<double>(p.alpha);
  std::printf(
      "quoted   : IHC on Q_10 = 2 tau_S + 0.02 ms; on Q_16 = 2 tau_S + "
      "1.31 ms\n");
  std::printf("N*alpha  : Q_10 -> %.3f ms, Q_16 -> %.3f ms  (matches the "
              "quoted alpha terms)\n",
              q10_alpha_term / 1e9, q16_alpha_term / 1e9);
  std::printf(
      "2N*alpha : Q_10 -> %.3f ms, Q_16 -> %.3f ms  (what the eta=mu=2 "
      "formula gives;\n           the paper's quoted figures are a factor "
      "2 low - see EXPERIMENTS.md)\n",
      2 * q10_alpha_term / 1e9, 2 * q16_alpha_term / 1e9);

  const std::uint64_t packets = model::total_packets(65536, 16);
  const double optimal = model::optimal_lower_bound(65536, p);
  std::printf(
      "\npackets  : gamma N (N-1) on Q_16 = %llu  (\"over 68.7 billion\": "
      "%s)\n",
      static_cast<unsigned long long>(packets),
      packets > 68'700'000'000ull ? "yes" : "NO");
  std::printf(
      "optimum  : tau_S + (N-1) alpha on Q_16 = %.3f ms  (paper: 1.81 ms)\n",
      optimal / 1e9);

  // Simulation validation at Q_10 (a 64K-node simulation would take
  // ~68.7e9 events; the model is exact at every size we can simulate).
  std::printf("\n--- Q_10 simulation validation ---\n");
  const Hypercube q10(10);
  AtaOptions opt;
  opt.net = p;
  {
    const auto run = run_ihc(q10, IhcOptions{.eta = 2}, opt);
    std::printf("IHC eta=mu=2 : simulated %s, model %s, buffered=%llu\n",
                fmt_time_ps(run.finish).c_str(),
                fmt_time_ps(static_cast<SimTime>(
                    model::ihc_dedicated(1024, 2, p))).c_str(),
                static_cast<unsigned long long>(run.stats.buffered_relays));
  }
  {
    AtaOptions opt1 = opt;
    opt1.net.mu = 1;
    const auto run = run_ihc(q10, IhcOptions{.eta = 1}, opt1);
    std::printf(
        "IHC eta=mu=1 : simulated %s, optimal bound %s (Theorem 4)\n",
        fmt_time_ps(run.finish).c_str(),
        fmt_time_ps(static_cast<SimTime>(
            model::optimal_lower_bound(1024, opt1.net))).c_str());
  }
  {
    const auto run = run_frs(q10, opt);
    std::printf("FRS          : simulated %s, model %s\n",
                fmt_time_ps(run.finish).c_str(),
                fmt_time_ps(static_cast<SimTime>(
                    model::frs_dedicated(1024, p))).c_str());
  }
  return 0;
}
