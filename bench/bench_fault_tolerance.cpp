// E10 - the reliability claims of Section I, measured:
//  * without signatures, correct delivery needs a majority of intact
//    copies: on node-disjoint routes (VRS) that holds up to
//    t = ceil(gamma/2) - 1 Byzantine nodes (Dolev's bound);
//  * IHC's gamma routes per pair are edge-disjoint but share nodes across
//    Hamiltonian cycles, so a single adversarially placed corrupter can
//    tamper up to gamma/2 copies - voting degrades earlier, which this
//    bench quantifies (a finding the paper's analysis glosses over);
//  * with signatures, tampering is detected: any surviving intact copy
//    decides, raising the tolerance toward t = gamma - 1.
//
// The 120 (t, algo, replica) trials run on the exp:: campaign engine
// ("fault_tolerance" built-in) across IHC_BENCH_JOBS worker threads; the
// fault-placement seed of each (t, replica) pair is shared between the
// two algorithms so they face the same adversary.
#include <cstdio>
#include <cstdlib>

#include "exp/exp.hpp"
#include "util/table.hpp"

using namespace ihc;

namespace {

unsigned jobs_from_env() {
  const char* env = std::getenv("IHC_BENCH_JOBS");
  if (env == nullptr) return 0;  // 0 = hardware concurrency
  return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
}

struct Rates {
  double correct = 0, wrong = 0, undecided = 0;
  int trials = 0;
};

}  // namespace

int main() {
  const exp::Campaign campaign =
      exp::make_builtin_campaign("fault_tolerance");
  exp::RunOptions run_options;
  run_options.jobs = jobs_from_env();
  // IHC_BENCH_METRICS=1 appends the merged simulator-metrics registry
  // (docs/TRACING.md) after the table; off by default to keep output stable.
  run_options.collect_metrics = std::getenv("IHC_BENCH_METRICS") != nullptr;
  const exp::CampaignResult result = exp::run_campaign(campaign, run_options);

  AsciiTable table(
      "Fault-injection sweep on Q_6 (gamma = 6), corrupting Byzantine\n"
      "relays at random placements, averaged over 5 trials; values are\n"
      "the fraction of healthy ordered pairs");
  table.set_header({"t", "algo", "rule", "correct", "wrong", "undecided"});

  for (std::int64_t t = 0; t <= 5; ++t) {
    for (const char* algo : {"ihc", "vrs"}) {
      // Average this (t, algo) group's replicas per voting rule.
      Rates strict, received, signed_rate;
      for (const exp::TrialResult& r : result.trials) {
        if (!r.ok) {
          std::fprintf(stderr, "trial %s failed: %s\n", r.trial.id.c_str(),
                       r.error.c_str());
          return 1;
        }
        if (r.trial.get_int("t") != t || r.trial.get_str("algo") != algo)
          continue;
        auto fold = [&](const char* prefix, Rates& rates) {
          const std::string base(prefix);
          rates.correct += r.metric(base + "_correct");
          rates.wrong += r.metric(base + "_wrong");
          rates.undecided += r.metric(base + "_undecided");
          ++rates.trials;
        };
        fold("strict", strict);
        fold("received", received);
        fold("signed", signed_rate);
      }
      const std::string algo_label =
          std::string(algo) == "vrs" ? "VRS-ATA" : "IHC";
      auto emit = [&](const char* rule, const Rates& r) {
        const double n = r.trials ? r.trials : 1;
        table.add_row({std::to_string(t), algo_label, rule,
                       fmt_double(r.correct / n, 4),
                       fmt_double(r.wrong / n, 4),
                       fmt_double(r.undecided / n, 4)});
      };
      emit("strict", strict);
      emit("received", received);
      emit("signed", signed_rate);
    }
    table.add_separator();
  }
  table.print();

  std::printf(
      "\nReadings:\n"
      " * VRS at t <= 2 with strict majority: 1.0000 correct - the Dolev\n"
      "   bound t <= ceil(gamma/2)-1 on node-disjoint routes.\n"
      " * IHC degrades earlier under strict voting (its routes share\n"
      "   nodes across cycles) but never decides WRONG - failures are\n"
      "   undecided pairs.\n"
      " * signed mode stays near-perfect until a pair loses all six\n"
      "   routes, approaching the t <= gamma - 1 signed bound.\n"
      "\n[%zu trials on %u worker thread(s), %.1f ms wall]\n",
      result.trials.size(), result.jobs, result.wall_ms);
  if (!result.metrics.empty())
    std::printf("\nsimulator metrics (IHC_BENCH_METRICS):\n%s\n",
                result.metrics.to_json().dump(2).c_str());
  return 0;
}
