// E10 - the reliability claims of Section I, measured:
//  * without signatures, correct delivery needs a majority of intact
//    copies: on node-disjoint routes (VRS) that holds up to
//    t = ceil(gamma/2) - 1 Byzantine nodes (Dolev's bound);
//  * IHC's gamma routes per pair are edge-disjoint but share nodes across
//    Hamiltonian cycles, so a single adversarially placed corrupter can
//    tamper up to gamma/2 copies - voting degrades earlier, which this
//    bench quantifies (a finding the paper's analysis glosses over);
//  * with signatures, tampering is detected: any surviving intact copy
//    decides, raising the tolerance toward t = gamma - 1.
#include <cstdio>

#include "core/ihc.hpp"
#include "core/verify.hpp"
#include "core/vrs.hpp"
#include "topology/hypercube.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ihc;

namespace {

AtaOptions base_options() {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  opt.granularity = DeliveryLedger::Granularity::kFull;
  return opt;
}

struct Rates {
  double correct = 0, wrong = 0, undecided = 0;
};

Rates operator+(Rates a, const ReliabilityReport& r) {
  const double pairs = static_cast<double>(r.pairs);
  a.correct += static_cast<double>(r.correct) / pairs;
  a.wrong += static_cast<double>(r.wrong) / pairs;
  a.undecided += static_cast<double>(r.undecided) / pairs;
  return a;
}

}  // namespace

int main() {
  const Hypercube q(6);  // gamma = 6: Dolev bound t <= 2, signed t <= 5
  constexpr int kTrials = 5;

  AsciiTable table(
      "Fault-injection sweep on Q_6 (gamma = 6), corrupting Byzantine\n"
      "relays at random placements, averaged over 5 trials; values are\n"
      "the fraction of healthy ordered pairs");
  table.set_header({"t", "algo", "rule", "correct", "wrong", "undecided"});

  for (std::uint32_t t : {0u, 1u, 2u, 3u, 4u, 5u}) {
    for (const bool use_vrs : {false, true}) {
      Rates strict, received, signed_rate;
      for (int trial = 0; trial < kTrials; ++trial) {
        SplitMix64 rng(1000 * t + static_cast<std::uint64_t>(trial));
        FaultPlan plan(rng());
        while (plan.fault_count() < t)
          plan.add(static_cast<NodeId>(rng.below(q.node_count())),
                   FaultMode::kCorrupt);

        AtaOptions opt = base_options();
        opt.faults = &plan;
        const KeyRing keys(7);
        opt.keys = &keys;
        const AtaResult result =
            use_vrs ? run_vrs_ata(q, opt)
                    : run_ihc(q, IhcOptions{.eta = 2}, opt);
        strict = strict + assess_reliability(result.ledger, nullptr, 6,
                                             plan.faulty_nodes(),
                                             VoteRule::kStrictMajority);
        received = received + assess_reliability(
                                  result.ledger, nullptr, 6,
                                  plan.faulty_nodes(),
                                  VoteRule::kReceivedMajority);
        signed_rate = signed_rate + assess_reliability(
                                        result.ledger, &keys, 6,
                                        plan.faulty_nodes());
      }
      const std::string algo = use_vrs ? "VRS-ATA" : "IHC";
      auto emit = [&](const char* rule, const Rates& r) {
        table.add_row({std::to_string(t), algo, rule,
                       fmt_double(r.correct / kTrials, 4),
                       fmt_double(r.wrong / kTrials, 4),
                       fmt_double(r.undecided / kTrials, 4)});
      };
      emit("strict", strict);
      emit("received", received);
      emit("signed", signed_rate);
    }
    table.add_separator();
  }
  table.print();

  std::printf(
      "\nReadings:\n"
      " * VRS at t <= 2 with strict majority: 1.0000 correct - the Dolev\n"
      "   bound t <= ceil(gamma/2)-1 on node-disjoint routes.\n"
      " * IHC degrades earlier under strict voting (its routes share\n"
      "   nodes across cycles) but never decides WRONG - failures are\n"
      "   undecided pairs.\n"
      " * signed mode stays near-perfect until a pair loses all six\n"
      "   routes, approaching the t <= gamma - 1 signed bound.\n");
  return 0;
}
