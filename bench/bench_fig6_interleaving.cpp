// E6 - Fig. 6 of the paper: which nodes initiate packets in each stage of
// the IHC algorithm (shown for one Hamiltonian cycle with eta = 3), plus
// the exact contention-freedom check across eta values.
#include <cstdio>

#include "sched/ihc_schedule.hpp"
#include "topology/hypercube.hpp"
#include "topology/square_mesh.hpp"
#include "util/table.hpp"

using namespace ihc;

int main() {
  const SquareMesh mesh(4);  // 16 nodes, gamma = 4
  const std::uint32_t eta = 3;
  const IhcSchedule schedule(mesh, eta);

  std::printf(
      "Fig. 6 - nodes initiating packets per stage (eta = %u) on one\n"
      "directed Hamiltonian cycle of %s.  The number shown at each cycle\n"
      "position is the stage in which that node initiates, i.e.\n"
      "[ID_j(v)] mod eta - every eta-th node starts in the same stage:\n\n",
      eta, mesh.name().c_str());
  const auto& hc = mesh.directed_cycles()[0];
  std::printf("position : ");
  for (std::size_t i = 0; i < hc.length(); ++i)
    std::printf("%3zu", i);
  std::printf("\nnode     : ");
  for (std::size_t i = 0; i < hc.length(); ++i)
    std::printf("%3u", hc.at(i));
  std::printf("\nstage    : ");
  for (std::size_t i = 0; i < hc.length(); ++i)
    std::printf("%3zu", i % eta);
  std::printf("\n\n");

  for (std::uint32_t stage = 0; stage < eta; ++stage) {
    const auto inits = schedule.initiators(stage, 0);
    std::printf("stage %u initiators on HC_1:", stage);
    for (const NodeId v : inits) std::printf(" %u", v);
    std::printf("\n");
  }

  // Contention-freedom across topologies and eta values.
  std::printf("\nExact link-conflict counts (one hop per step):\n");
  AsciiTable table;
  table.set_header({"topology", "eta", "steps", "sends", "conflicts",
                    "copies/pair"});
  const Hypercube q6(6);
  for (const Topology* topo :
       {static_cast<const Topology*>(&mesh),
        static_cast<const Topology*>(&q6)}) {
    for (std::uint32_t e : {1u, 2u, 3u, 4u, 8u}) {
      const IhcSchedule s(*topo, e);
      const auto check = check_schedule(topo->graph(), s);
      table.add_row({topo->name(), std::to_string(e),
                     std::to_string(s.step_count()),
                     std::to_string(check.total_sends),
                     std::to_string(check.link_conflicts),
                     std::to_string(topo->gamma())});
    }
    table.add_separator();
  }
  table.print();
  std::printf(
      "\nAt the one-hop-per-step abstraction the IHC schedule is conflict-\n"
      "free for every eta; the FIFO-capacity constraint eta >= mu appears\n"
      "only in the timed model (see bench_table2 and the test suite).\n");
  return 0;
}
