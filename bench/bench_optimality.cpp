// E9 - Theorem 4: given rho = 0, the IHC algorithm with eta = mu = 1 is
// optimal - its execution time equals the lower bound tau_S + (N-1) alpha
// that any ATA reliable broadcast must pay (gamma N (N-1) packets spread
// perfectly over gamma N links).  We verify the bound is met exactly, on
// every topology family, and show eta = mu = 1 dominating larger eta = mu.
#include <cstdio>
#include <memory>

#include "core/analysis.hpp"
#include "core/ihc.hpp"
#include "topology/circulant.hpp"
#include "topology/hex_mesh.hpp"
#include "topology/hypercube.hpp"
#include "topology/square_mesh.hpp"
#include "util/table.hpp"

using namespace ihc;

int main() {
  NetworkParams p;
  p.alpha = sim_ns(20);
  p.tau_s = sim_us(5);
  p.mu = 1;

  std::vector<std::shared_ptr<Topology>> topologies{
      std::make_shared<Hypercube>(6),
      std::make_shared<Hypercube>(8),
      std::make_shared<SquareMesh>(8),
      std::make_shared<SquareMesh>(16),
      std::make_shared<HexMesh>(5),
      std::make_shared<HexMesh>(8),
      std::make_shared<Circulant>(63, std::vector<NodeId>{1, 2, 4, 5}),
  };

  AsciiTable table(
      "Theorem 4 - IHC with eta = mu = 1 meets the optimal lower bound\n"
      "tau_S + (N-1) alpha exactly (alpha = 20 ns, tau_S = 5 us)");
  table.set_header({"topology", "N", "gamma", "lower bound", "IHC sim",
                    "optimal?", "packets"});
  for (const auto& topo : topologies) {
    AtaOptions opt;
    opt.net = p;
    const auto run = run_ihc(*topo, IhcOptions{.eta = 1}, opt);
    const double bound =
        model::optimal_lower_bound(topo->node_count(), p);
    table.add_row(
        {topo->name(), std::to_string(topo->node_count()),
         std::to_string(topo->gamma()),
         fmt_time_ps(static_cast<SimTime>(bound)),
         fmt_time_ps(run.finish),
         static_cast<double>(run.finish) == bound ? "yes" : "NO",
         std::to_string(
             model::total_packets(topo->node_count(), topo->gamma()))});
  }
  table.print();

  std::printf("\neta = mu sweep on Q_8 (each packet longer, more stages):\n");
  AsciiTable sweep;
  sweep.set_header({"eta = mu", "finish", "vs optimum"});
  const Hypercube q(8);
  double best = 0;
  for (std::uint32_t k : {1u, 2u, 4u, 8u}) {
    AtaOptions opt;
    opt.net = p;
    opt.net.mu = k;
    const auto run = run_ihc(q, IhcOptions{.eta = k}, opt);
    if (k == 1) best = static_cast<double>(run.finish);
    sweep.add_row({std::to_string(k), fmt_time_ps(run.finish),
                   fmt_ratio(static_cast<double>(run.finish) / best)});
  }
  sweep.print();
  std::printf(
      "\n(With eta = mu = k the total time is k tau_S + O(kN alpha): the\n"
      "minimum interleaving distance is optimal, as Theorem 4 states.)\n");
  return 0;
}
