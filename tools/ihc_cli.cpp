// ihc_cli - command-line explorer for the library.
//
//   ihc_cli info <topology>
//       Topology summary: size, gamma, Hamiltonian cycles, class-Lambda
//       membership and connectivity check.
//
//   ihc_cli run <topology> [options]
//       Run an ATA reliable broadcast and print the results.
//       --algo ihc|hc|vrs|ks|vsq|frs  algorithm (default ihc)
//       --eta <k>                   interleaving distance (default:
//                                   smallest contention-free value)
//       --alpha-ns / --tau-s-ns     timing parameters
//       --mu <m>                    packet length in FIFO units
//       --rho <r>                   background load in [0,1)
//       --multihop                  background as routed flows
//       --switching vct|saf|wormhole
//       --single-link               one transmitter per node (IHC)
//       --cycles <k>                use only k directed cycles (IHC)
//       --message-units <u>         message length per node (IHC)
//       --seed <s>                  RNG seed
//       --shards <n>                worker shards for the time-sharded
//                                   parallel engine (0 = sequential
//                                   engine, the default; results are
//                                   byte-identical for any n >= 1, see
//                                   docs/PARALLEL.md)
//       --origins <k>               (ihc) only nodes with id < k inject
//                                   (0 = all; the Q_20-scale slice of
//                                   docs/PARALLEL.md)
//       --fault-schedule <file>     dynamic fault schedule JSON
//                                   (ihc-fault-schedule-v1, docs/FAULTS.md)
//       --recover[=<ladder>]        (ihc) retry missing pairs until every
//                                   reachable pair holds gamma copies
//                                   (mid-broadcast recovery).  <ladder>
//                                   caps the adaptive escalation ladder:
//                                   static (surviving-cycle reissue only),
//                                   reroot (+ re-rooted survivor
//                                   decomposition), paths (+ node-disjoint
//                                   unicast fallback, the default; see
//                                   docs/FAULTS.md)
//       --profile <file>            write a wall-clock profile of the run
//                                   (ihc-profile-v1, or a Chrome trace
//                                   when <file> ends in .trace.json; see
//                                   docs/PROFILING.md).  Also enables the
//                                   rate-limited stderr progress
//                                   heartbeat.  Simulated results are
//                                   unchanged.
//
//   ihc_cli decompose <topology> [--out <file>]
//       Construct (and verify) the Hamiltonian decomposition; print it or
//       save it in the ihc-hc-v1 text format.
//
//   ihc_cli verify <file> <topology>
//       Load a saved decomposition and verify it against the topology.
//
//   ihc_cli topology (--list | --check [<spec>] | --decompose <spec> |
//                     --export <spec>) [options]
//       The topology zoo (docs/TOPOLOGIES.md): plugin catalog and the
//       automated class-Lambda membership pipeline.
//       --list          table of registered plugins (name, spec, source)
//       --check [<spec>] certify or refute the Hamiltonian decomposition;
//                       without a spec, checks every plugin's
//                       representative specs (the zoo-smoke CI gate).
//                       Exits 1 when any spec fails to certify.
//       --decompose <spec> run the search pipeline and print/save the
//                       cycles in the ihc-hc-v1 text format
//       --export <spec> write the graph (+ certified cycles) as an
//                       ihc-topology-v1 JSON document
//       --exact / --heuristic  force one search stage (default: exact
//                       for small graphs, then heuristic), bypassing
//                       hand-coded construction hints
//       --out <file|->  output path for --decompose/--export (default -)
//
//   ihc_cli campaign [<name>...] [options]
//       Run experiment campaigns on the parallel trial engine (all
//       built-ins when no name is given; see `campaign --list`).
//       --jobs <n>      worker threads (0 = hardware concurrency;
//                       default 0)
//       --shards <n>    simulator shards per trial (0 = sequential
//                       engine; applies to every engine the campaign
//                       constructs, see docs/PARALLEL.md)
//       --filter <s>    run only trials whose id contains <s>
//       --metrics       collect simulator metrics into the report's
//                       `metrics` block (see EXPERIMENTS.md)
//       --analyze       trace every trial through a bounded sink and add
//                       per-trial ihc-analysis-v1 summaries to the
//                       report's `analysis` block (see docs/ANALYSIS.md)
//       --max-events <n> bounded per-trial sink capacity for --analyze
//       --json-out <p>  write ihc-campaign-v1 JSON: a .json file path
//                       (single campaign only) or a directory receiving
//                       <p>/<campaign>.json (e.g. bench/results)
//       --profile <f>   write a wall-clock profile covering every
//                       campaign run (docs/PROFILING.md)
//       --list          list the built-in campaigns and exit
//
//   ihc_cli trace --campaign <name> [options]
//       Re-run one trial of a builtin campaign with structured event
//       tracing attached; writes Chrome/Perfetto trace_event JSON
//       (schema ihc-trace-v1, see docs/TRACING.md).
//       --filter <s>    trace the first trial whose id contains <s>
//                       (default: the campaign's first trial)
//       --out <file|->  output path (default <campaign>.trace.json);
//                       `-` streams the JSON to stdout (run info goes
//                       to stderr)
//
//   ihc_cli analyze (--campaign <name> | --trace <file>) [options]
//       Analyze an ihc-trace-v1 event stream: critical-path extraction,
//       utilization/contention timelines and TraceLint invariant checks;
//       writes an ihc-analysis-v1 JSON report (see docs/ANALYSIS.md).
//       Exits 1 when TraceLint finds violations.
//       --campaign <n>  re-run + analyze one trial of a builtin campaign
//       --filter <s>    pick the first trial whose id contains <s>
//       --trace <file>  analyze a saved trace file instead of re-running
//       --out <file|->  output path (default <campaign>.analysis.json);
//                       `-` writes the JSON to stdout (summary goes to
//                       stderr)
//       --heatmap       also print the ASCII link-utilization heatmap
//       --max-events <n> bounded CollectingSink capacity for --campaign
//                       (default 2^20; evictions surface as `dropped`)
//
//   ihc_cli bench-perf [options]
//       Time the pinned performance workloads on the optimized calendar
//       engine and the legacy binary-heap baseline in the same process;
//       writes an ihc-bench-v1 JSON report (see docs/PERFORMANCE.md).
//       --quick         fewer repeats + filtered grids (CI smoke)
//       --repeats <n>   timed repetitions per engine (min is reported)
//       --shards <n>    default shard count for the campaign jobs (the
//                       dedicated shards job pins its own A/B counts)
//       --profile <f>   write a wall-clock profile and embed it in the
//                       report's `profile` block (docs/PROFILING.md)
//       --out <file>    output path (default BENCH_PR9.json)
//
//   ihc_cli bench-diff <old.json> <new.json> [--threshold <x>]
//       Compare two ihc-bench-v1 reports job-by-job (matched by name)
//       and flag wall-time regressions; exits 1 when any matched job's
//       new/old ratio exceeds the threshold (default 1.25; CI uses 2.0
//       because runners vary, see docs/PROFILING.md).  An `hw_threads`
//       mismatch between the reports is surfaced as a caveat line.
//
//   ihc_cli workload [options]
//       Run an open-loop continuous-service saturation sweep (streaming
//       broadcast sessions through bounded admission queues) and print
//       booksim-style rate-vs-latency curves per algorithm with the
//       detected saturation point; optionally writes the ihc-workload-v1
//       JSON report (see docs/WORKLOADS.md).
//       --campaign <n>  sweep campaign (default saturation_sweep; the
//                       quick CI variant is saturation_sweep_quick)
//       --jobs <n>      worker threads (0 = hardware concurrency);
//                       the report is byte-identical for any job count
//       --shards <n>    simulator shards per trial (0 = sequential
//                       engine; the report is also byte-identical for
//                       any shard count >= 1, see docs/PARALLEL.md)
//       --filter <s>    run only trials whose id contains <s> (the
//                       report then covers the surviving curves only)
//       --profile <f>   write a wall-clock profile covering the sweep
//                       (docs/PROFILING.md)
//       --out <file|->  write the JSON report; `-` streams it to stdout
//                       (curves go to stderr)
//
// The subcommand table lives in src/util/cli_spec.hpp; usage() renders
// it, and tests/test_cli_help.cpp + scripts/check_docs.py keep this
// header, the help text and the Markdown docs in sync.
//
// Topology grammar: Q<m> | SQ<m> | H<m> | C<n>:j1,j2,... | T<m>x<k> |
// TQ<n> | KT<k>x<n> | <path>.topology.json  (the zoo registry is the
// source of truth: src/topology/zoo/registry.cpp, docs/TOPOLOGIES.md)
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "core/analysis.hpp"
#include "core/frs.hpp"
#include "core/hc_broadcast.hpp"
#include "core/ihc.hpp"
#include "core/ks.hpp"
#include "core/retransmit.hpp"
#include "core/vrs.hpp"
#include "core/vsq.hpp"
#include "exp/exp.hpp"
#include "graph/hc_cache.hpp"
#include "obs/obs.hpp"
#include "sim/fault_schedule.hpp"
#include "topology/factory.hpp"
#include "topology/hex_mesh.hpp"
#include "topology/hypercube.hpp"
#include "topology/lambda.hpp"
#include "topology/square_mesh.hpp"
#include "topology/zoo/loader.hpp"
#include "topology/zoo/registry.hpp"
#include "util/cli_spec.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/sweep.hpp"

using namespace ihc;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::string algo = "ihc";
  std::string out;
  std::string switching = "vct";
  std::string filter;
  std::string json_out;
  std::string campaign;
  std::string trace_file;
  std::string fault_schedule;
  std::string profile;  // --profile output path ("" = profiler off)
  double threshold = 1.25;  // bench-diff regression ratio
  std::uint32_t eta = 0;  // 0 = auto
  std::uint32_t shards = 0;  // 0 = sequential engine
  std::uint32_t origins = 0;  // 0 = all origins inject (ihc)
  std::uint32_t mu = 2;
  std::uint32_t cycles = 0;
  std::uint32_t message_units = 0;
  std::int64_t alpha_ns = 20;
  std::int64_t tau_s_ns = 5000;
  double rho = 0.0;
  unsigned jobs = 0;  // 0 = hardware concurrency
  int repeats = 0;  // 0 = bench default
  bool multihop = false;
  bool single_link = false;
  bool recover = false;
  RecoveryLadder recover_ladder = RecoveryLadder::kPaths;
  bool list = false;
  bool check = false;
  bool zoo_decompose = false;
  bool zoo_export = false;
  bool exact = false;
  bool heuristic = false;
  bool metrics = false;
  bool analyze = false;
  bool heatmap = false;
  bool quick = false;
  bool seed_given = false;
  std::uint64_t seed = 0;  // default derived from the run coordinates
  std::size_t max_events = std::size_t{1} << 20;  // bounded-sink capacity
};

/// Owns the process-wide wall-clock profiler for one subcommand when
/// --profile was given (docs/PROFILING.md).  Construction installs a
/// WallProfiler as the global instance - every instrumented scope in
/// the library starts recording - and destruction uninstalls it and
/// writes the report: a Chrome trace when the path ends in
/// .trace.json, the ihc-profile-v1 JSON document otherwise.  With an
/// empty path this is a no-op and the profiler stays off (the
/// zero-overhead default).
class ProfileScope {
 public:
  explicit ProfileScope(const std::string& path) : path_(path) {
    if (path_.empty()) return;
    prof_ = std::make_unique<obs::prof::WallProfiler>();
    obs::prof::set_global_profiler(prof_.get());
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  ~ProfileScope() {
    if (prof_ == nullptr) return;
    obs::prof::set_global_profiler(nullptr);
    try {
      write();
    } catch (const std::exception& e) {
      // The profile is a diagnostic side channel; a write failure must
      // not turn a successful simulation into a failed exit code.
      std::fprintf(stderr, "profile: %s\n", e.what());
    }
  }

  [[nodiscard]] bool active() const { return prof_ != nullptr; }

  /// The ihc-profile-v1 document (for embedding into other reports).
  [[nodiscard]] Json report_json() const { return prof_->to_json(); }

 private:
  void write() const {
    const std::string_view chrome_suffix = ".trace.json";
    const bool chrome =
        path_.size() > chrome_suffix.size() &&
        path_.compare(path_.size() - chrome_suffix.size(),
                      chrome_suffix.size(), chrome_suffix) == 0;
    const std::filesystem::path parent =
        std::filesystem::path(path_).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
    std::ofstream out(path_, std::ios::trunc);
    require(out.good(), "cannot open " + path_ + " for writing");
    if (chrome)
      prof_->write_chrome(out);
    else
      out << prof_->to_json().dump(2) << "\n";
    out.close();
    require(out.good(), "failed writing " + path_);
    std::fprintf(stderr, "[ihc-prof] wrote %s (%s)\n", path_.c_str(),
                 chrome ? "Chrome trace"
                        : "schema ihc-profile-v1, see docs/PROFILING.md");
  }

  std::string path_;
  std::unique_ptr<obs::prof::WallProfiler> prof_;
};

int usage() {
  // Rendered from the cli_spec.hpp table, the same one the docs-drift
  // checks validate against the Markdown docs.
  std::fputs("usage: ihc_cli <subcommand> ... "
             "(see the header of tools/ihc_cli.cpp)\n",
             stderr);
  for (const CliSubcommand& sub : kCliSubcommands)
    std::fprintf(stderr, "  ihc_cli %-12s %s\n",
                 std::string(sub.name).c_str(),
                 std::string(sub.summary).c_str());
  std::fprintf(stderr, "topology grammar: %s\n",
               std::string(topology_spec_help()).c_str());
  return kExitUsage;
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      require(i + 1 < argc, "missing value after " + a);
      return argv[++i];
    };
    if (a == "--algo") args.algo = next();
    else if (a == "--out") args.out = next();
    else if (a == "--switching") args.switching = next();
    else if (a == "--eta") args.eta = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--shards") args.shards = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--origins") args.origins = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--mu") args.mu = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--cycles") args.cycles = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--message-units") args.message_units = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--alpha-ns") args.alpha_ns = std::stoll(next());
    else if (a == "--tau-s-ns") args.tau_s_ns = std::stoll(next());
    else if (a == "--rho") args.rho = std::stod(next());
    else if (a == "--seed") { args.seed = std::stoull(next()); args.seed_given = true; }
    else if (a == "--jobs") args.jobs = static_cast<unsigned>(std::stoul(next()));
    else if (a == "--filter") args.filter = next();
    else if (a == "--json-out") args.json_out = next();
    else if (a == "--campaign") args.campaign = next();
    else if (a == "--trace") args.trace_file = next();
    else if (a == "--fault-schedule") args.fault_schedule = next();
    else if (a == "--profile") args.profile = next();
    else if (a == "--threshold") args.threshold = std::stod(next());
    else if (a == "--recover" || a.rfind("--recover=", 0) == 0) {
      args.recover = true;
      if (a.size() > 9) {
        const std::string ladder = a.substr(10);
        if (ladder == "static") args.recover_ladder = RecoveryLadder::kStatic;
        else if (ladder == "reroot") args.recover_ladder = RecoveryLadder::kReroot;
        else if (ladder == "paths") args.recover_ladder = RecoveryLadder::kPaths;
        else
          detail::throw_config("--recover ladder must be static, reroot or "
                               "paths (got " + ladder + ")");
      }
    }
    else if (a == "--repeats") args.repeats = static_cast<int>(std::stol(next()));
    else if (a == "--max-events") args.max_events = static_cast<std::size_t>(std::stoull(next()));
    else if (a == "--list") args.list = true;
    else if (a == "--check") args.check = true;
    else if (a == "--decompose") args.zoo_decompose = true;
    else if (a == "--export") args.zoo_export = true;
    else if (a == "--exact") args.exact = true;
    else if (a == "--heuristic") args.heuristic = true;
    else if (a == "--metrics") args.metrics = true;
    else if (a == "--analyze") args.analyze = true;
    else if (a == "--heatmap") args.heatmap = true;
    else if (a == "--quick") args.quick = true;
    else if (a == "--multihop") args.multihop = true;
    else if (a == "--single-link") args.single_link = true;
    else if (!a.empty() && a[0] == '-')
      detail::throw_config("unknown option " + a);
    else args.positional.push_back(a);
  }
  return args;
}

int cmd_info(const Args& args) {
  require(args.positional.size() == 2, "info needs a topology spec");
  const auto topo = make_topology(args.positional[1]);
  std::printf("name      : %s\n", topo->name().c_str());
  std::printf("nodes     : %u\n", topo->node_count());
  std::printf("edges     : %u (degree %u)\n", topo->graph().edge_count(),
              topo->graph().regular_degree());
  std::printf("gamma     : %u\n", topo->gamma());
  std::printf("HC set    : %zu undirected edge-disjoint Hamiltonian "
              "cycles\n",
              topo->hamiltonian_cycles().size());
  const auto lambda = check_lambda(*topo);
  std::printf("class     : %s (connectivity == gamma: %s, %s check)\n",
              lambda.in_lambda() ? "in Lambda" : "NOT in Lambda",
              lambda.connectivity ? "yes" : "no",
              lambda.connectivity_exact ? "exact" : "sampled");
  if (!lambda.detail.empty())
    std::printf("detail    : %s\n", lambda.detail.c_str());
  return lambda.in_lambda() ? 0 : 1;
}

int cmd_run(const Args& args) {
  require(args.positional.size() == 2, "run needs a topology spec");
  const ProfileScope prof_scope(args.profile);
  const auto topo = make_topology(args.positional[1]);

  AtaOptions opt;
  opt.net.alpha = sim_ns(args.alpha_ns);
  opt.net.tau_s = sim_ns(args.tau_s_ns);
  opt.net.mu = args.mu;
  opt.net.rho = args.rho;
  // Unless the user pins one, the seed is derived from the run's own
  // coordinates - the same deterministic scheme the experiment engine
  // uses, so repeated invocations reproduce and distinct runs decorrelate.
  opt.net.seed = args.seed_given
                     ? args.seed
                     : derive_seed("ihc_cli.run", args.positional[1] +
                                                      ",algo=" + args.algo);
  opt.net.background_mode = args.multihop ? BackgroundMode::kMultiHopFlows
                                          : BackgroundMode::kSingleLink;
  if (args.switching == "saf")
    opt.net.switching = Switching::kStoreAndForward;
  else if (args.switching == "wormhole")
    opt.net.switching = Switching::kWormhole;
  else
    require(args.switching == "vct", "switching must be vct|saf|wormhole");

  // Dynamic fault schedule: timestamped node faults / repairs and link
  // glitches consulted as simulated time advances (docs/FAULTS.md).
  std::optional<FaultSchedule> schedule;
  if (!args.fault_schedule.empty()) {
    std::ifstream in(args.fault_schedule);
    require(in.good(), "cannot read " + args.fault_schedule);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string parse_error;
    const auto doc = Json::parse(buffer.str(), &parse_error);
    require(doc.has_value(),
            args.fault_schedule + ": " + parse_error);
    schedule.emplace(FaultSchedule::from_json(*doc, opt.net.seed));
    opt.schedule = &*schedule;
  }
  require(!args.recover || args.algo == "ihc",
          "--recover applies to --algo ihc only");
  require(args.origins == 0 || args.algo == "ihc",
          "--origins applies to --algo ihc only");

  AtaResult result;
  double model = 0;
  if (args.algo == "ihc") {
    IhcOptions io;
    io.eta = args.eta != 0
                 ? args.eta
                 : smallest_contention_free_eta(topo->node_count(), args.mu);
    io.cycles_to_use = args.cycles;
    io.message_units = args.message_units;
    io.origin_limit = args.origins;
    io.concurrency = args.single_link
                         ? LinkConcurrency::kSingleLinkPerNode
                         : LinkConcurrency::kAllLinks;
    if (args.recover) {
      RecoveryPolicy policy;
      policy.min_copies = topo->gamma();  // full edge-disjoint redundancy
      policy.ladder = args.recover_ladder;
      RecoveryReport rec = run_ihc_with_recovery(*topo, io, opt, policy);
      std::printf("recovery  : %s after %u retr%s (%llu flows reissued, "
                  "latency %s, %llu pair(s) unrecovered, %llu unreachable)\n",
                  rec.complete ? "complete" : "INCOMPLETE",
                  rec.retries_used, rec.retries_used == 1 ? "y" : "ies",
                  static_cast<unsigned long long>(rec.flows_reissued),
                  fmt_time_ps(rec.recovery_latency).c_str(),
                  static_cast<unsigned long long>(rec.unrecovered_pairs),
                  static_cast<unsigned long long>(rec.unreachable_pairs));
      std::printf("ladder    : %s (%u escalation%s, %u re-rooted cycle(s), "
                  "%llu fallback path(s))\n",
                  to_string(policy.ladder), rec.escalations,
                  rec.escalations == 1 ? "" : "s", rec.rerooted_cycles,
                  static_cast<unsigned long long>(rec.fallback_paths));
      result.algorithm = "ihc+recovery";
      result.finish = rec.finish;
      result.stats = rec.stats;
      result.ledger = std::move(rec.ledger);
    } else {
      result = run_ihc(*topo, io, opt);
    }
    model = model::ihc_message_dedicated(
        topo->node_count(), io.eta,
        args.message_units ? args.message_units : args.mu, opt.net);
    if (args.single_link)
      model = model::ihc_single_link(
          topo->node_count(), io.eta,
          args.cycles ? args.cycles : topo->gamma(), opt.net);
  } else if (args.algo == "vrs") {
    const auto* cube = dynamic_cast<const Hypercube*>(topo.get());
    require(cube != nullptr, "vrs requires a hypercube topology");
    result = run_vrs_ata(*cube, opt);
    model = model::vrs_ata_dedicated(cube->node_count(), opt.net);
  } else if (args.algo == "ks") {
    const auto* hex = dynamic_cast<const HexMesh*>(topo.get());
    require(hex != nullptr, "ks requires a hex mesh topology");
    result = run_ks_ata(*hex, opt);
    model = model::ks_ata_dedicated(hex->node_count(), opt.net);
  } else if (args.algo == "vsq") {
    const auto* mesh = dynamic_cast<const SquareMesh*>(topo.get());
    require(mesh != nullptr, "vsq requires a square mesh topology");
    result = run_vsq_ata(*mesh, opt);
    model = model::vsq_ata_dedicated(mesh->node_count(), opt.net);
  } else if (args.algo == "hc") {
    result = run_hc_ata(*topo, opt);
    model = static_cast<double>(topo->node_count()) *
            model::ihc_dedicated(topo->node_count(), 1, opt.net);
  } else if (args.algo == "frs") {
    const auto* cube = dynamic_cast<const Hypercube*>(topo.get());
    require(cube != nullptr, "frs requires a hypercube topology");
    result = run_frs(*cube, opt);
    model = model::frs_dedicated(cube->node_count(), opt.net);
  } else {
    detail::throw_config("unknown algorithm " + args.algo);
  }

  std::printf("algorithm : %s on %s\n", result.algorithm.c_str(),
              topo->name().c_str());
  std::printf("finish    : %s (dedicated-mode model: %s)\n",
              fmt_time_ps(result.finish).c_str(),
              fmt_time_ps(static_cast<SimTime>(model)).c_str());
  std::printf("relays    : %llu cut-through, %llu buffered, %llu stalls\n",
              static_cast<unsigned long long>(result.stats.cut_throughs),
              static_cast<unsigned long long>(result.stats.buffered_relays),
              static_cast<unsigned long long>(result.stats.wormhole_stalls));
  std::printf("background: %llu packets\n",
              static_cast<unsigned long long>(
                  result.stats.background_packets));
  const std::uint32_t expected =
      args.algo == "ihc" && args.cycles ? args.cycles : topo->gamma();
  if (args.origins != 0)
    std::printf("deliveries: %llu copies (sliced: %u of %u origins "
                "injected)\n",
                static_cast<unsigned long long>(result.stats.deliveries),
                args.origins, topo->node_count());
  else
    std::printf("deliveries: %llu copies; every pair has %u: %s\n",
                static_cast<unsigned long long>(result.stats.deliveries),
                expected,
                result.ledger.all_pairs_have(expected) ? "yes" : "NO");
  std::printf("link util : %.4f mean over the run\n",
              result.mean_link_utilization);
  return 0;
}

int cmd_decompose(const Args& args) {
  require(args.positional.size() == 2, "decompose needs a topology spec");
  const auto topo = make_topology(args.positional[1]);
  const auto& cycles = topo->hamiltonian_cycles();  // built + verified
  if (!args.out.empty()) {
    save_cycles_file(args.out, topo->node_count(), cycles);
    std::printf("wrote %zu cycles for %s to %s\n", cycles.size(),
                topo->name().c_str(), args.out.c_str());
  } else {
    std::fputs(serialize_cycles(topo->node_count(), cycles).c_str(),
               stdout);
  }
  return 0;
}

int cmd_verify(const Args& args) {
  require(args.positional.size() == 3,
          "verify needs a cycles file and a topology spec");
  const auto loaded = load_cycles_file(args.positional[1]);
  require(loaded.has_value(), "cannot read " + args.positional[1]);
  const auto topo = make_topology(args.positional[2]);
  require(loaded->node_count == topo->node_count(),
          "node count mismatch between file and topology");
  const auto verdict =
      verify_hc_set(topo->graph(), loaded->cycles,
                    topo->graph().regular_degree() == topo->gamma());
  if (verdict.ok) {
    std::printf("OK: %zu verified edge-disjoint Hamiltonian cycles on %s\n",
                loaded->cycles.size(), topo->name().c_str());
    return 0;
  }
  std::printf("INVALID: %s\n", verdict.reason.c_str());
  return 1;
}

/// Search options implied by --exact/--heuristic.
HamSearchOptions zoo_search_options(const Args& args) {
  require(!(args.exact && args.heuristic),
          "--exact and --heuristic are mutually exclusive");
  HamSearchOptions options;
  if (args.exact) options.mode = SearchMode::kExact;
  if (args.heuristic) options.mode = SearchMode::kHeuristic;
  return options;
}

/// One-line provenance for a membership report.
std::string zoo_source_line(const MembershipReport& report) {
  switch (report.source) {
    case DecompSource::kHandCoded:
      return "hand-coded construction";
    case DecompSource::kFile:
      return "embedded in file (certified)";
    case DecompSource::kExact:
      return "exact search (" + std::to_string(report.stats.exact_steps) +
             " steps)";
    case DecompSource::kHeuristic:
      return report.stats.cycle_merge
                 ? "heuristic search (Euler-split cycle-merge)"
                 : "heuristic search (rotation repair, " +
                       std::to_string(report.stats.restarts) + " restart(s))";
  }
  return "?";
}

/// Prints the --check block for one spec; returns true when certified.
bool zoo_print_check(const MembershipReport& report) {
  std::printf("spec      : %s\n", report.spec.c_str());
  std::printf("plugin    : %s\n", report.plugin.c_str());
  std::printf("name      : %s\n", report.display_name.c_str());
  if (report.degree != 0) {
    std::printf("nodes     : %u (%u edges, degree %u)\n", report.nodes,
                report.edges, report.degree);
  } else {
    std::printf("nodes     : %u (%u edges, irregular)\n", report.nodes,
                report.edges);
  }
  switch (report.status) {
    case SearchStatus::kFound:
      std::printf("gamma     : %u (%zu cycles, cover all edges: %s)\n",
                  report.gamma, report.cycles.size(),
                  report.cover_all_edges ? "yes" : "no");
      std::printf("status    : certified\n");
      std::printf("source    : %s\n", zoo_source_line(report).c_str());
      return true;
    case SearchStatus::kRefuted:
      std::printf("status    : refuted (not in class Lambda)\n");
      std::printf("detail    : %s\n", report.detail.c_str());
      return false;
    case SearchStatus::kUnknown:
      std::printf("status    : unknown (search gave up)\n");
      std::printf("detail    : %s\n", report.detail.c_str());
      return false;
  }
  return false;
}

int cmd_topology(const Args& args) {
  if (args.list) {
    AsciiTable table("topology zoo (docs/TOPOLOGIES.md)");
    table.set_header({"name", "spec", "source", "summary"});
    for (const TopologyPlugin& p : topology_registry())
      table.add_row({p.name, p.spec_format, to_string(p.source), p.summary});
    table.print();
    std::printf("%s\n", zoo_spec_help().c_str());
    return 0;
  }

  const HamSearchOptions options = zoo_search_options(args);
  const bool force_search = args.exact || args.heuristic;

  if (args.check) {
    if (args.positional.size() >= 2) {
      const MembershipReport report =
          check_membership(args.positional[1], options, force_search);
      return zoo_print_check(report) ? 0 : 1;
    }
    // No spec: certify every plugin's representative specs - the
    // zoo-smoke CI gate.  Any uncertified decomposition hard-fails.
    std::size_t failed = 0;
    AsciiTable table("class-Lambda membership across the zoo");
    table.set_header({"spec", "plugin", "N", "gamma", "status", "source"});
    for (const TopologyPlugin& p : topology_registry()) {
      for (const std::string& spec : p.check_specs) {
        const MembershipReport report =
            check_membership(spec, options, force_search);
        const bool ok = report.status == SearchStatus::kFound;
        if (!ok) ++failed;
        table.add_row({report.spec, report.plugin,
                       std::to_string(report.nodes),
                       std::to_string(report.gamma),
                       ok ? "certified" : "NOT CERTIFIED",
                       ok ? zoo_source_line(report) : report.detail});
      }
    }
    table.print();
    if (failed != 0)
      std::fprintf(stderr, "topology --check: %zu spec(s) failed\n", failed);
    return failed == 0 ? 0 : 1;
  }

  if (args.zoo_decompose) {
    require(args.positional.size() >= 2,
            "topology --decompose needs a spec");
    const MembershipReport report =
        check_membership(args.positional[1], options, force_search);
    if (report.status != SearchStatus::kFound) {
      std::fprintf(stderr, "%s: %s\n",
                   report.status == SearchStatus::kRefuted ? "refuted"
                                                           : "unknown",
                   report.detail.c_str());
      return 1;
    }
    const std::string text = serialize_cycles(report.nodes, report.cycles);
    if (args.out.empty() || args.out == "-") {
      std::fputs(text.c_str(), stdout);
    } else {
      std::ofstream out(args.out, std::ios::binary);
      require(out.good(), "cannot write " + args.out);
      out << text;
      std::printf("wrote %zu cycles for %s to %s (%s)\n",
                  report.cycles.size(), report.display_name.c_str(),
                  args.out.c_str(), zoo_source_line(report).c_str());
    }
    return 0;
  }

  if (args.zoo_export) {
    require(args.positional.size() >= 2, "topology --export needs a spec");
    const TopologyPlugin* plugin = find_plugin(args.positional[1]);
    require(plugin != nullptr, "unrecognized topology spec '" +
                                   args.positional[1] + "'; " +
                                   zoo_spec_help());
    const ZooProbe probe = plugin->probe(args.positional[1]);
    MembershipReport report =
        check_membership(args.positional[1], options, force_search);
    const std::string text = serialize_topology_file(
        report.display_name, probe.graph,
        report.status == SearchStatus::kFound ? report.gamma : 0,
        report.cycles);
    if (args.out.empty() || args.out == "-") {
      std::fputs(text.c_str(), stdout);
    } else {
      std::ofstream out(args.out, std::ios::binary);
      require(out.good(), "cannot write " + args.out);
      out << text;
      std::printf("wrote %s (%u nodes, %zu cycles) to %s\n",
                  report.display_name.c_str(), report.nodes,
                  report.cycles.size(), args.out.c_str());
    }
    return report.status == SearchStatus::kFound ? 0 : 1;
  }

  detail::throw_config(
      "topology needs one of --list, --check, --decompose, --export");
}

int cmd_campaign(const Args& args) {
  if (args.list) {
    AsciiTable table("built-in experiment campaigns");
    table.set_header({"name", "trials", "description"});
    for (const exp::CampaignInfo& info : exp::builtin_campaigns())
      table.add_row({info.name, std::to_string(info.trial_count),
                     info.description});
    table.print();
    return 0;
  }

  std::vector<std::string> names(args.positional.begin() + 1,
                                 args.positional.end());
  if (names.empty())
    for (const exp::CampaignInfo& info : exp::builtin_campaigns())
      names.push_back(info.name);

  const bool json_is_file =
      names.size() == 1 && args.json_out.size() > 5 &&
      args.json_out.substr(args.json_out.size() - 5) == ".json";

  exp::RunOptions run_options;
  run_options.jobs = args.jobs;
  run_options.filter = args.filter;
  run_options.collect_metrics = args.metrics;
  run_options.analyze = args.analyze;
  run_options.analyze_max_events = args.max_events;

  const ProfileScope prof_scope(args.profile);
  std::size_t failed = 0;
  for (const std::string& name : names) {
    const exp::Campaign campaign = [&] {
      const obs::prof::ScopedPhase setup(obs::prof::Phase::kSetup);
      return exp::make_builtin_campaign(name);
    }();
    const exp::CampaignResult result =
        exp::run_campaign(campaign, run_options);
    const obs::prof::ScopedPhase report_phase(obs::prof::Phase::kReport);
    std::fputs(exp::ascii_report(result).c_str(), stdout);
    std::fputs("\n", stdout);
    failed += result.failed_count();
    if (!args.json_out.empty()) {
      const std::string path =
          json_is_file ? args.json_out
                       : args.json_out + "/" + name + ".json";
      exp::write_json_report(result, path);
      std::printf("wrote %s\n\n", path.c_str());
    }
  }
  if (failed != 0)
    std::fprintf(stderr, "campaign: %zu trial(s) failed\n", failed);
  return failed == 0 ? 0 : 1;
}

int cmd_trace(const Args& args) {
  require(!args.campaign.empty(),
          "trace needs --campaign <name> (see `campaign --list`)");
  const exp::Campaign campaign = exp::make_builtin_campaign(args.campaign);

  // Pick the trial: the first one matching --filter (default: the first).
  const std::vector<exp::Trial> trials = exp::expand_trials(campaign.spec);
  const exp::Trial* chosen = nullptr;
  for (const exp::Trial& t : trials) {
    if (args.filter.empty() || t.id.find(args.filter) != std::string::npos) {
      chosen = &t;
      break;
    }
  }
  require(chosen != nullptr,
          "no trial of '" + args.campaign + "' matches filter '" +
              args.filter + "'");

  // `--out -` streams the JSON document to stdout; the run info then
  // moves to stderr so the document stays machine-consumable.
  const bool to_stdout = args.out == "-";
  const std::string path =
      args.out.empty() ? args.campaign + ".trace.json" : args.out;
  std::ofstream file;
  if (!to_stdout) {
    file.open(path, std::ios::trunc);
    require(file.good(), "cannot open " + path + " for writing");
  }
  std::ostream& out = to_stdout ? static_cast<std::ostream&>(std::cout)
                                : static_cast<std::ostream&>(file);

  // One trial, inline on this thread, with the full observability stack:
  // a streaming Chrome sink plus a metrics registry.
  obs::ChromeTraceSink sink(out);
  obs::Tracer tracer;
  tracer.attach(&sink);
  obs::MetricsRegistry registry;
  exp::TrialContext ctx{registry, &tracer};
  const std::vector<exp::Metric> metrics = campaign.run(*chosen, ctx);
  sink.close();
  if (!to_stdout) {
    file.close();
    require(file.good(), "failed writing " + path);
  }

  FILE* info = to_stdout ? stderr : stdout;
  std::fprintf(info, "campaign  : %s\n", args.campaign.c_str());
  std::fprintf(info, "trial     : %s (seed %llu)\n", chosen->id.c_str(),
               static_cast<unsigned long long>(chosen->seed));
  for (const exp::Metric& m : metrics)
    std::fprintf(info, "metric    : %s = %s\n", m.name.c_str(),
                 fmt_double(m.value, 4).c_str());
  std::fprintf(info, "metrics   : %zu simulator metrics collected "
               "(re-run `campaign %s --metrics --json-out ...` for JSON)\n",
               registry.size(), args.campaign.c_str());
  std::fprintf(info, "trace     : %zu events -> %s (ihc-trace-v1; open in "
               "https://ui.perfetto.dev or chrome://tracing)\n",
               sink.event_count(), to_stdout ? "stdout" : path.c_str());
  return 0;
}

int cmd_analyze(const Args& args) {
  require(args.campaign.empty() != args.trace_file.empty(),
          "analyze needs exactly one of --campaign <name> or --trace "
          "<file>");

  std::vector<obs::TraceEvent> events;
  std::size_t dropped = 0;
  Json source = Json::object();
  std::string default_out;

  if (!args.campaign.empty()) {
    // Re-run one trial with a bounded CollectingSink attached, exactly
    // like `campaign --analyze` does per trial.
    const exp::Campaign campaign =
        exp::make_builtin_campaign(args.campaign);
    const std::vector<exp::Trial> trials = exp::expand_trials(campaign.spec);
    const exp::Trial* chosen = nullptr;
    for (const exp::Trial& t : trials) {
      if (args.filter.empty() ||
          t.id.find(args.filter) != std::string::npos) {
        chosen = &t;
        break;
      }
    }
    require(chosen != nullptr,
            "no trial of '" + args.campaign + "' matches filter '" +
                args.filter + "'");
    obs::Tracer tracer;
    obs::CollectingSink sink(args.max_events);
    tracer.attach(&sink);
    obs::MetricsRegistry registry;
    exp::TrialContext ctx{registry, &tracer};
    campaign.run(*chosen, ctx);
    events = sink.events();
    dropped = sink.dropped();
    source.set("campaign", args.campaign);
    source.set("trial", chosen->id);
    source.set("seed", chosen->seed);
    default_out = args.campaign + ".analysis.json";
  } else {
    events = obs::analyze::read_trace_file(args.trace_file);
    source.set("trace_file", args.trace_file);
    default_out = std::filesystem::path(args.trace_file).stem().string() +
                  ".analysis.json";
  }

  const obs::analyze::Options options;
  const obs::analyze::Analysis analysis =
      obs::analyze::analyze_trace(events, options, dropped);
  const Json doc = obs::analyze::to_json(analysis, &source);

  const bool to_stdout = args.out == "-";
  const std::string path = args.out.empty() ? default_out : args.out;
  if (to_stdout) {
    std::cout << doc.dump(2) << "\n";
  } else {
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
    std::ofstream out(path, std::ios::trunc);
    require(out.good(), "cannot open " + path + " for writing");
    out << doc.dump(2) << "\n";
    out.close();
    require(out.good(), "failed writing " + path);
  }

  FILE* info = to_stdout ? stderr : stdout;
  const bool ps = analysis.timebase == obs::TimeBase::kPicoseconds;
  auto fmt_t = [&](SimTime t) {
    return ps ? fmt_time_ps(t) : std::to_string(t) + " cycles";
  };
  std::fprintf(info, "events    : %zu analyzed, %zu dropped by the "
               "bounded sink\n",
               analysis.events, analysis.dropped);
  std::fprintf(info, "topology  : %u nodes, %u links, %zu broadcast "
               "flows\n",
               analysis.nodes, analysis.links, analysis.flows);
  if (analysis.critical.flow != obs::TraceEvent::kUnset)
    std::fprintf(info, "critical  : flow %lld, %zu hops, %s total "
                 "(wire %s, queue %s, switch %s, store %s, tail %s)\n",
                 static_cast<long long>(analysis.critical.flow),
                 analysis.critical.hops.size(),
                 fmt_t(analysis.critical.total).c_str(),
                 fmt_t(analysis.critical.wire).c_str(),
                 fmt_t(analysis.critical.queue).c_str(),
                 fmt_t(analysis.critical.swtch).c_str(),
                 fmt_t(analysis.critical.store).c_str(),
                 fmt_t(analysis.critical.tail).c_str());
  for (const obs::analyze::StageSummary& s : analysis.stages) {
    if (s.model != obs::TraceEvent::kUnset)
      std::fprintf(info, "stage %-4lld: %s measured vs %s closed-form "
                   "(delta %s)\n",
                   static_cast<long long>(s.stage),
                   fmt_t(s.end - s.begin).c_str(), fmt_t(s.model).c_str(),
                   fmt_t(s.end - s.begin - s.model).c_str());
  }
  std::fprintf(info, "links     : %.4f mean busy fraction, %.4f max\n",
               analysis.util.mean_busy, analysis.util.max_busy);
  if (args.heatmap)
    std::fputs(obs::analyze::ascii_heatmap(analysis, options).c_str(),
               info);
  for (const obs::analyze::LintSkipped& s : analysis.lint.skipped)
    std::fprintf(info, "lint skip : %s (%s)\n", s.check.c_str(),
                 s.reason.c_str());
  for (const obs::analyze::LintViolation& v : analysis.lint.violations)
    std::fprintf(info, "VIOLATION : [%s] %s\n", v.check.c_str(),
                 v.message.c_str());
  std::fprintf(info, "lint      : %zu checks run, %zu skipped, %zu "
               "violation(s)\n",
               analysis.lint.checks_run.size(),
               analysis.lint.skipped.size(),
               analysis.lint.violations.size());
  if (!to_stdout)
    std::fprintf(info, "wrote %s (schema ihc-analysis-v1, see "
                 "docs/ANALYSIS.md)\n",
                 path.c_str());
  return analysis.lint.ok() ? 0 : kExitFailure;
}

int cmd_bench_perf(const Args& args) {
  exp::BenchOptions options;
  options.quick = args.quick;
  options.repeats = args.repeats;
  const ProfileScope prof_scope(args.profile);
  exp::BenchReport report = exp::run_bench(options);
  // Embed the profiler's document so the tracked BENCH_*.json baseline
  // carries its own wall-time attribution (docs/PROFILING.md).
  if (prof_scope.active()) report.profile = prof_scope.report_json();

  const obs::prof::ScopedPhase report_phase(obs::prof::Phase::kReport);
  AsciiTable table("ihc-bench-v1 performance report");
  table.set_header({"job", "wall_ms", "legacy_ms", "speedup", "events/s",
                    "trials/s"});
  for (const exp::BenchJob& job : report.jobs) {
    const bool ab = job.legacy_wall_ms > 0.0;
    table.add_row(
        {job.name, fmt_double(job.wall_ms, 1),
         ab ? fmt_double(job.legacy_wall_ms, 1) : "-",
         ab ? fmt_double(job.speedup_vs_legacy, 2) + "x" : "-",
         job.events > 0 ? fmt_double(job.events_per_sec, 0) : "-",
         job.trials > 0 ? fmt_double(job.trials_per_sec, 1) : "-"});
  }
  table.print();

  const std::string path = args.out.empty() ? "BENCH_PR9.json" : args.out;
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path, std::ios::trunc);
  require(out.good(), "cannot open " + path + " for writing");
  out << report.to_json().dump(2) << "\n";
  out.close();
  require(out.good(), "failed writing " + path);
  std::printf("\nwrote %s (schema ihc-bench-v1, %d repeat(s), min "
              "reported%s)\n",
              path.c_str(), report.repeats,
              report.quick ? ", --quick" : "");
  return 0;
}

int cmd_bench_diff(const Args& args) {
  require(args.positional.size() == 3,
          "bench-diff needs <old.json> <new.json>");
  auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    require(in.good(), "cannot read " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const Json old_doc =
      exp::parse_bench_report(slurp(args.positional[1]), args.positional[1]);
  const Json new_doc =
      exp::parse_bench_report(slurp(args.positional[2]), args.positional[2]);
  const exp::BenchDiff diff =
      exp::diff_bench_reports(old_doc, new_doc, args.threshold);
  std::ostringstream text;
  diff.print(text);
  std::fputs(text.str().c_str(), stdout);
  return diff.any_regression() ? kExitFailure : 0;
}

int cmd_workload(const Args& args) {
  const std::string name =
      args.campaign.empty() ? "saturation_sweep" : args.campaign;
  const ProfileScope prof_scope(args.profile);
  const exp::Campaign campaign = [&] {
    const obs::prof::ScopedPhase setup(obs::prof::Phase::kSetup);
    return exp::make_builtin_campaign(name);
  }();

  exp::RunOptions run_options;
  run_options.jobs = args.jobs;
  run_options.filter = args.filter;
  const exp::CampaignResult result =
      exp::run_campaign(campaign, run_options);
  if (result.failed_count() != 0) {
    for (const exp::TrialResult& r : result.trials)
      if (!r.ok)
        std::fprintf(stderr, "trial %s: %s\n", r.trial.id.c_str(),
                     r.error.c_str());
    std::fprintf(stderr, "workload: %zu trial(s) failed\n",
                 result.failed_count());
    return kExitFailure;
  }

  const obs::prof::ScopedPhase report_phase(obs::prof::Phase::kReport);
  const Json doc = workload::workload_report(result);

  // `--out -` streams the JSON document to stdout; the human-readable
  // curves then move to stderr so the document stays machine-consumable.
  const bool to_stdout = args.out == "-";
  FILE* info = to_stdout ? stderr : stdout;
  std::fputs(workload::workload_ascii(doc).c_str(), info);
  if (to_stdout) {
    std::cout << doc.dump(2) << "\n";
  } else if (!args.out.empty()) {
    const std::filesystem::path parent =
        std::filesystem::path(args.out).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
    std::ofstream out(args.out, std::ios::trunc);
    require(out.good(), "cannot open " + args.out + " for writing");
    out << doc.dump(2) << "\n";
    out.close();
    require(out.good(), "failed writing " + args.out);
    std::fprintf(info, "\nwrote %s (schema ihc-workload-v1, see "
                 "docs/WORKLOADS.md)\n",
                 args.out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    // One process-wide switch (the set_default_engine_legacy pattern):
    // every NetworkParams constructed after this - campaign trials,
    // workload sweeps, bench jobs, plain runs - picks up the shard
    // count, so the time-sharded parallel engine needs no per-call-site
    // plumbing (docs/PARALLEL.md).
    set_default_shards(args.shards);
    if (args.positional.empty()) return usage();
    const std::string& cmd = args.positional[0];
    if (cmd == "info") return cmd_info(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "decompose") return cmd_decompose(args);
    if (cmd == "verify") return cmd_verify(args);
    if (cmd == "topology") return cmd_topology(args);
    if (cmd == "campaign") return cmd_campaign(args);
    if (cmd == "trace") return cmd_trace(args);
    if (cmd == "analyze") return cmd_analyze(args);
    if (cmd == "bench-perf") return cmd_bench_perf(args);
    if (cmd == "bench-diff") return cmd_bench_diff(args);
    if (cmd == "workload") return cmd_workload(args);
    return usage();
  } catch (const ConfigError& e) {
    // Bad invocation (unknown campaign/flag/file): exit kExitUsage so
    // scripts can tell misconfiguration from runtime failure.
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitFailure;
  }
}
