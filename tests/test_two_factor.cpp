// Tests for the 2-factorization working state of the decomposition engine.
#include <gtest/gtest.h>

#include "graph/torus_decomposition.hpp"
#include "graph/two_factor.hpp"
#include "util/error.hpp"

namespace ihc {
namespace {

/// Rows/columns seed of the 3x3 torus.
FactorSet torus_seed(const Graph& g, NodeId m, NodeId n) {
  std::vector<std::uint8_t> assign(g.edge_count(), 0);
  for (std::size_t e = static_cast<std::size_t>(m) * n; e < g.edge_count();
       ++e)
    assign[e] = 1;
  return FactorSet(g, 2, std::move(assign));
}

TEST(FactorSet, ValidSeedConstructs) {
  const Graph g = make_torus_graph(3, 3);
  const FactorSet f = torus_seed(g, 3, 3);
  EXPECT_EQ(f.factor_count(), 2u);
  // Every node has exactly two incident edges in each factor.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (std::size_t fac = 0; fac < 2; ++fac) {
      const auto inc = f.incident(fac, v);
      EXPECT_NE(inc[0], kInvalidEdge);
      EXPECT_NE(inc[1], kInvalidEdge);
      EXPECT_NE(inc[0], inc[1]);
    }
  }
}

TEST(FactorSet, RejectsNonTwoRegularAssignment) {
  const Graph g = make_torus_graph(3, 3);
  // All edges in factor 0: every node would have degree 4 in factor 0.
  std::vector<std::uint8_t> bad(g.edge_count(), 0);
  EXPECT_THROW(FactorSet(g, 2, std::move(bad)), ConfigError);
}

TEST(FactorSet, RejectsSizeMismatch) {
  const Graph g = make_torus_graph(3, 3);
  EXPECT_THROW(FactorSet(g, 2, std::vector<std::uint8_t>(3, 0)),
               ConfigError);
}

TEST(FactorSet, FactorNeighborsMatchIncidentEdges) {
  const Graph g = make_torus_graph(3, 3);
  const FactorSet f = torus_seed(g, 3, 3);
  // Factor 0 = row edges: neighbors of node (0,0)=0 are (0,1)=1, (0,2)=2.
  const auto nb = f.factor_neighbors(0, 0);
  EXPECT_TRUE((nb[0] == 1 && nb[1] == 2) || (nb[0] == 2 && nb[1] == 1));
}

TEST(FactorSet, ComponentLabeling) {
  const Graph g = make_torus_graph(3, 4);
  FactorSet f = torus_seed(g, 3, 4);
  std::vector<std::uint32_t> labels;
  EXPECT_EQ(f.label_components(0, labels), 3u);  // 3 row cycles
  EXPECT_EQ(f.label_components(1, labels), 4u);  // 4 column cycles
  // All nodes of row 0 share a label in factor 0.
  std::vector<std::uint32_t> l0;
  f.label_components(0, l0);
  EXPECT_EQ(l0[0], l0[1]);
  EXPECT_EQ(l0[0], l0[3]);
  EXPECT_NE(l0[0], l0[4]);
}

TEST(FactorSet, ExtractCyclesRecoversRows) {
  const Graph g = make_torus_graph(3, 5);
  const FactorSet f = torus_seed(g, 3, 5);
  const auto rows = f.extract_cycles(0);
  ASSERT_EQ(rows.size(), 3u);
  for (const Cycle& c : rows) EXPECT_EQ(c.length(), 5u);
  EXPECT_THROW((void)f.extract_single_cycle(0), InvariantError);
}

TEST(FactorSet, AlternatingSquareSwapPreservesTwoRegularity) {
  const Graph g = make_torus_graph(4, 4);
  FactorSet f = torus_seed(g, 4, 4);
  // Unit square (0,0)-(0,1)-(1,1)-(1,0): u=0, v=1, x=5, w=4.
  EdgeId e_uv, e_vx, e_xw, e_wu;
  ASSERT_TRUE(f.edge_in_factor(0, 0, 1, e_uv));   // row edge
  ASSERT_TRUE(f.edge_in_factor(1, 1, 5, e_vx));   // column edge
  ASSERT_TRUE(f.edge_in_factor(0, 5, 4, e_xw));   // row edge
  ASSERT_TRUE(f.edge_in_factor(1, 4, 0, e_wu));   // column edge
  f.swap_alternating_square(e_uv, e_vx, e_xw, e_wu, 0, 1, 5, 4);
  // Memberships exchanged.
  EXPECT_EQ(f.factor_of(e_uv), 1);
  EXPECT_EQ(f.factor_of(e_xw), 1);
  EXPECT_EQ(f.factor_of(e_vx), 0);
  EXPECT_EQ(f.factor_of(e_wu), 0);
  // Still 2-regular: recompute components without crashing, and the swap
  // merged row 0 with row 1 in factor 0.
  std::vector<std::uint32_t> labels;
  const auto comp0 = f.label_components(0, labels);
  EXPECT_EQ(comp0, 3u);  // 4 rows -> rows 0,1 merged
  // Swapping back restores the seed.
  f.swap_alternating_square(e_uv, e_vx, e_xw, e_wu, 0, 1, 5, 4);
  EXPECT_EQ(f.factor_of(e_uv), 0);
  EXPECT_EQ(f.label_components(0, labels), 4u);
}

}  // namespace
}  // namespace ihc
