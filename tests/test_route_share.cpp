// Campaigns build one RoutingTable per topology and every trial worker
// reads it concurrently (AtaOptions::routes) - immutable sharing that
// must be (a) semantically invisible: identical results with a private
// table, at any --jobs; and (b) data-race free: this suite drives the
// shared table from 8 worker threads, so a
// `cmake -DIHC_SANITIZE=thread` build turns it into a TSan check.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/ihc.hpp"
#include "exp/campaign.hpp"
#include "exp/runner.hpp"
#include "sim/routing.hpp"
#include "topology/hypercube.hpp"
#include "util/rng.hpp"

namespace ihc {
namespace {

/// A small multi-hop-background campaign on Q_4: every trial routes
/// background flows through the routing table, the hot path the sharing
/// optimizes.  `routes == nullptr` makes each Network derive its own
/// private tables (the unshared baseline).
exp::Campaign make_share_campaign(const Hypercube& cube,
                                  const RoutingTable* routes) {
  exp::Campaign campaign;
  campaign.spec.name = "route_share_probe";
  campaign.spec.description = "Q_4 multi-hop background, shared routes";
  campaign.spec.axes = {
      {"rho", {0.1, 0.2, 0.3, 0.4}},
      {"eta", {std::int64_t(2), std::int64_t(4)}},
  };
  campaign.spec.replicas = 2;
  campaign.run = [&cube, routes](const exp::Trial& trial,
                                 exp::TrialContext& ctx) {
    AtaOptions opt;
    opt.net.alpha = sim_ns(20);
    opt.net.tau_s = sim_ns(200);
    opt.net.mu = 2;
    opt.net.background_mu = 4;
    opt.net.background_mode = BackgroundMode::kMultiHopFlows;
    opt.net.rho = trial.get_double("rho");
    opt.net.seed = trial.seed;
    opt.metrics = &ctx.metrics;
    opt.routes = routes;
    const IhcOptions io{.eta = static_cast<std::uint32_t>(
        trial.get_int("eta"))};
    const AtaResult run = run_ihc(cube, io, opt);
    return std::vector<exp::Metric>{
        {"finish_ps", static_cast<double>(run.finish)},
        {"buffered", static_cast<double>(run.stats.buffered_relays)},
        {"bg_packets", static_cast<double>(run.stats.background_packets)},
    };
  };
  return campaign;
}

std::vector<double> finish_times(const exp::CampaignResult& result) {
  std::vector<double> out;
  for (const exp::TrialResult& t : result.trials) {
    EXPECT_TRUE(t.ok) << t.trial.id << ": " << t.error;
    for (const exp::Metric& m : t.metrics)
      if (m.name == "finish_ps") out.push_back(m.value);
  }
  return out;
}

TEST(RouteShare, SharedTableUnderEightJobsMatchesSerialAndPrivate) {
  const Hypercube cube(4);
  (void)cube.directed_cycles();
  const auto routes = std::make_shared<const RoutingTable>(cube.graph());

  exp::RunOptions serial;
  serial.jobs = 1;
  exp::RunOptions parallel;
  parallel.jobs = 8;

  // Shared table, 8 worker threads - the TSan target.
  const std::vector<double> shared_parallel =
      finish_times(exp::run_campaign(make_share_campaign(cube, routes.get()),
                                     parallel));
  // Shared table, serial.
  const std::vector<double> shared_serial =
      finish_times(exp::run_campaign(make_share_campaign(cube, routes.get()),
                                     serial));
  // Private per-network tables, serial: the semantics baseline.
  const std::vector<double> private_serial = finish_times(
      exp::run_campaign(make_share_campaign(cube, nullptr), serial));

  ASSERT_EQ(shared_parallel.size(), 16u);
  EXPECT_EQ(shared_parallel, shared_serial);
  EXPECT_EQ(shared_serial, private_serial);
}

TEST(RouteShare, TableReuseAcrossRepeatedCampaignRuns) {
  // One table serves many campaign executions (the bench-perf repeat
  // loop does exactly this); results must not drift run to run.
  const Hypercube cube(4);
  (void)cube.directed_cycles();
  const auto routes = std::make_shared<const RoutingTable>(cube.graph());
  exp::RunOptions ro;
  ro.jobs = 8;
  const std::vector<double> first =
      finish_times(exp::run_campaign(make_share_campaign(cube, routes.get()),
                                     ro));
  for (int run = 0; run < 2; ++run) {
    const std::vector<double> again = finish_times(
        exp::run_campaign(make_share_campaign(cube, routes.get()), ro));
    EXPECT_EQ(first, again) << "run " << run;
  }
}

TEST(RouteShare, LinkTableAgreesWithGraphAdjacency) {
  // The flat (src,dst) -> LinkId table the simulator reads must agree
  // with the graph's own adjacency resolution on every edge, and hold
  // the invalid sentinel everywhere else.
  const Hypercube cube(4);
  const Graph& g = cube.graph();
  const RoutingTable routes(g);
  const LinkId* flat = routes.link_table();
  const std::size_t n = g.node_count();
  for (NodeId u = 0; u < n; ++u) {
    std::vector<bool> adjacent(n, false);
    for (const auto& adj : g.neighbors(u)) {
      adjacent[adj.neighbor] = true;
      EXPECT_EQ(flat[std::size_t(u) * n + adj.neighbor],
                g.link(u, adj.neighbor))
          << "(" << u << "," << adj.neighbor << ")";
    }
    for (NodeId v = 0; v < n; ++v)
      if (!adjacent[v])
        EXPECT_EQ(flat[std::size_t(u) * n + v], kInvalidLink)
            << "(" << u << "," << v << ")";
  }
}

}  // namespace
}  // namespace ihc
