// Tests for the adaptive-recovery escalation ladder (docs/FAULTS.md):
// the both-layers route-liveness fix, unreachable-destination write-offs,
// retry exhaustion under the static ladder, re-rooted survivor
// decompositions (including their independent certification), and the
// node-disjoint-path unicast fallback that recovers dead-node scenarios
// the static ladder provably cannot.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/ihc.hpp"
#include "core/retransmit.hpp"
#include "graph/cycle.hpp"
#include "graph/hamiltonian.hpp"
#include "sim/fault_schedule.hpp"
#include "topology/factory.hpp"
#include "topology/hypercube.hpp"
#include "util/rng.hpp"

namespace ihc {
namespace {

std::uint64_t test_seed() { return derive_seed("tests", "recovery_ladder"); }

AtaOptions q4_options() {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  return opt;
}

// --- satellite: both-layers route liveness -------------------------------

TEST(RecoveryRouteAlive, StaticDropCapableRelayStaysSuspectInsideBenignWindow) {
  const Hypercube q(4);
  const DirectedCycle& hc = q.directed_cycles()[0];
  // Relay at offset 1 from the route start (a mid-route relay).
  const std::size_t pos = 0;
  const NodeId relay = hc.at(1);

  AtaOptions opt = q4_options();
  EXPECT_TRUE(detail::recovery_route_alive(q.graph(), hc, pos, opt, sim_us(5)));

  // Statically silent relay: dead, with or without a schedule.
  FaultPlan plan(test_seed());
  plan.add(relay, FaultMode::kSilent);
  opt.faults = &plan;
  EXPECT_FALSE(
      detail::recovery_route_alive(q.graph(), hc, pos, opt, sim_us(5)));

  // The regression: a benign (non-dropping) dynamic window over the same
  // relay used to make the `else if` skip the static check entirely, so
  // the statically silent relay was judged alive.  Both layers must stay
  // suspect - the window can close while the reissue is in flight.
  FaultSchedule schedule(test_seed());
  schedule.fault_node(relay, FaultMode::kSlow, 0, sim_us(100));
  opt.schedule = &schedule;
  EXPECT_FALSE(
      detail::recovery_route_alive(q.graph(), hc, pos, opt, sim_us(5)));

  // A benign window alone (no static fault) is not a drop.
  opt.faults = nullptr;
  EXPECT_TRUE(detail::recovery_route_alive(q.graph(), hc, pos, opt, sim_us(5)));

  // A drop-capable window alone is.
  FaultSchedule dropping(test_seed());
  dropping.fault_node(relay, FaultMode::kSilent, 0, sim_us(100));
  opt.schedule = &dropping;
  EXPECT_FALSE(
      detail::recovery_route_alive(q.graph(), hc, pos, opt, sim_us(5)));

  // The terminal node (offset N-1) is the destination, not a relay: a
  // fault there must not kill the route.
  AtaOptions tail = q4_options();
  FaultPlan tail_plan(test_seed());
  tail_plan.add(hc.at(hc.length() - 1), FaultMode::kSilent);
  tail.faults = &tail_plan;
  EXPECT_TRUE(
      detail::recovery_route_alive(q.graph(), hc, pos, tail, sim_us(5)));
}

// --- satellite: unreachable destinations ---------------------------------

TEST(Recovery, UnreachableDestinationIsWrittenOffNotRetried) {
  const Hypercube q(4);
  AtaOptions opt = q4_options();

  // Sever every in-link of node 11 before the run: it can never receive
  // a copy again, so its 15 pairs are a write-off, not a retry target.
  const NodeId dead_dest = 11;
  FaultPlan plan(test_seed());
  for (const Adjacency& adj : q.graph().neighbors(dead_dest))
    plan.fail_link(q.graph().link(adj.neighbor, dead_dest));
  opt.faults = &plan;

  RecoveryPolicy policy;
  policy.min_copies = 1;
  const RecoveryReport rec =
      run_ihc_with_recovery(q, IhcOptions{.eta = 2}, opt, policy);

  // Every other pair still holds a copy (each undirected cycle delivers
  // o -> e before the dead sink in one of its two directions), so the
  // run is complete the moment the dead sink is exempted - without
  // spending a single retry or escalation on it.
  EXPECT_FALSE(rec.initial_complete);
  EXPECT_TRUE(rec.complete);
  EXPECT_EQ(rec.unrecovered_pairs, 0u);
  EXPECT_EQ(rec.unreachable_pairs, 15u);
  EXPECT_EQ(rec.retries_used, 0u);
  EXPECT_EQ(rec.escalations, 0u);
  EXPECT_EQ(rec.flows_reissued, 0u);
  EXPECT_EQ(rec.recovery_latency, 0);
  for (NodeId o = 0; o < q.node_count(); ++o)
    if (o != dead_dest) EXPECT_EQ(rec.ledger.copies(o, dead_dest), 0u);
}

// --- satellite: retry exhaustion under the static ladder ------------------

TEST(Recovery, StaticLadderExhaustsItsRetriesOnADeadNode) {
  const Hypercube q(4);
  AtaOptions opt = q4_options();
  FaultPlan plan(test_seed());
  plan.add(5, FaultMode::kSilent);  // drops every relay through it, always
  opt.faults = &plan;

  RecoveryPolicy policy;
  policy.min_copies = q.gamma();
  policy.max_retries = 2;
  policy.ladder = RecoveryLadder::kStatic;
  const RecoveryReport rec =
      run_ihc_with_recovery(q, IhcOptions{.eta = 2}, opt, policy);

  // Only the dead node's cycle-successors keep an alive static route
  // (the dead node is their routes' terminal), so reissues trickle while
  // most origins can stage nothing: the budget runs dry incomplete.
  EXPECT_FALSE(rec.initial_complete);
  EXPECT_FALSE(rec.complete);
  EXPECT_EQ(rec.retries_used, policy.max_retries);
  EXPECT_GT(rec.unrecovered_pairs, 0u);
  EXPECT_EQ(rec.escalations, 0u);
  EXPECT_EQ(rec.rerooted_cycles, 0u);
  EXPECT_EQ(rec.fallback_paths, 0u);

  // The dead node itself still *receives* copies (the delivery tee fires
  // before the relay fault action), so no pair is unreachable.
  EXPECT_EQ(rec.unreachable_pairs, 0u);
}

TEST(Recovery, FullLadderRecoversTheDeadNodeViaDisjointPaths) {
  const Hypercube q(4);
  AtaOptions opt = q4_options();
  FaultPlan plan(test_seed());
  plan.add(5, FaultMode::kSilent);
  opt.faults = &plan;

  RecoveryPolicy policy;
  policy.min_copies = q.gamma();
  policy.max_retries = 2;
  ASSERT_EQ(policy.ladder, RecoveryLadder::kPaths);  // full ladder default
  const RecoveryReport rec =
      run_ihc_with_recovery(q, IhcOptions{.eta = 2}, opt, policy);

  // Q_4 minus a node is an odd-unbalanced bipartite graph, so the reroot
  // stage is refuted and the ladder climbs to node-disjoint-path unicast,
  // which tops every reachable pair up to the full copy target.
  EXPECT_FALSE(rec.initial_complete);
  EXPECT_TRUE(rec.complete);
  EXPECT_EQ(rec.unrecovered_pairs, 0u);
  EXPECT_EQ(rec.unreachable_pairs, 0u);
  EXPECT_EQ(rec.escalations, 2u);
  EXPECT_EQ(rec.rerooted_cycles, 0u);
  EXPECT_EQ(rec.reroot_reissues, 0u);
  EXPECT_GT(rec.fallback_paths, 0u);
  EXPECT_GE(rec.path_attempts_used, 1u);
  for (NodeId o = 0; o < q.node_count(); ++o)
    for (NodeId d = 0; d < q.node_count(); ++d)
      if (o != d) EXPECT_GE(rec.ledger.copies(o, d), q.gamma()) << o << d;
}

// --- combined static + dynamic faults ------------------------------------

TEST(Recovery, CombinedStaticAndDynamicFaultsRecoverUnderTheFullLadder) {
  const Hypercube q(4);
  AtaOptions opt = q4_options();
  FaultPlan plan(test_seed());
  plan.add(5, FaultMode::kSilent);  // static layer: a permanently dead node
  opt.faults = &plan;
  FaultSchedule schedule(test_seed());
  // Dynamic layer: a cycle-0 edge glitch while the broadcast is in
  // flight, repaired before the recovery retries begin.
  const DirectedCycle& hc = q.directed_cycles()[0];
  schedule.glitch_link(q.graph().link(hc.at(2), hc.at(3)), sim_us(2),
                       sim_us(30));
  opt.schedule = &schedule;

  RecoveryPolicy policy;
  policy.min_copies = q.gamma();
  const RecoveryReport rec =
      run_ihc_with_recovery(q, IhcOptions{.eta = 2}, opt, policy);
  EXPECT_FALSE(rec.initial_complete);
  EXPECT_TRUE(rec.complete);
  EXPECT_EQ(rec.unrecovered_pairs, 0u);
  EXPECT_GE(rec.escalations, 1u);
}

// --- re-rooted decompositions --------------------------------------------

/// Kills two edges per undirected Hamiltonian cycle of Q_4, one in each
/// arc between the victim pair (o*, d*), so every static route between
/// the victims crosses a dead edge in both directions of both cycles.
std::vector<EdgeId> cycle_cut_edges(const Hypercube& q, NodeId victim_origin,
                                    NodeId victim_dest) {
  std::vector<EdgeId> dead;
  for (const Cycle& c : q.hamiltonian_cycles()) {
    const DirectedCycle forward(c, false, q.node_count());
    const std::vector<EdgeId> ids = c.edge_ids(q.graph());
    const std::size_t n = forward.length();
    const std::size_t from = forward.id(victim_origin);
    const std::size_t to = forward.id(victim_dest);
    const std::size_t ahead = (to + n - from) % n;   // forward arc length
    // edge_ids[i] connects positions i and i+1 of the *cycle sequence*;
    // DirectedCycle(c, false, .) preserves that order, so position
    // arithmetic on `forward` indexes `ids` directly.
    const std::size_t mid_forward = (from + ahead / 2) % n;
    const std::size_t mid_backward = (to + (n - ahead) / 2) % n;
    dead.push_back(ids[mid_forward]);
    dead.push_back(ids[mid_backward]);
  }
  return dead;
}

TEST(Reroot, DecompositionIsCertifiedOnTheSurvivorSubgraph) {
  const Hypercube q(4);
  const Graph& g = q.graph();
  std::vector<std::uint8_t> node_alive(g.node_count(), 1);
  std::vector<std::uint8_t> edge_alive(g.edge_count(), 1);
  for (const EdgeId e : cycle_cut_edges(q, 0, 9)) edge_alive[e] = 0;

  const auto plan = detail::rerooted_decomposition(g, node_alive, edge_alive,
                                                   q.gamma() / 2);
  ASSERT_TRUE(plan->found) << plan->detail;
  ASSERT_FALSE(plan->cycles.empty());
  EXPECT_EQ(plan->directed.size(), 2 * plan->cycles.size());

  // Every re-rooted cycle must avoid the dead edges and certify as a set
  // of edge-disjoint Hamiltonian cycles of the survivor subgraph.
  for (const Cycle& c : plan->cycles) {
    EXPECT_TRUE(c.lies_in(g));
    for (const EdgeId e : c.edge_ids(g)) EXPECT_EQ(edge_alive[e], 1u);
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    if (edge_alive[e] != 0) edges.push_back(g.edge(e));
  const Graph survivor(g.node_count(), std::move(edges));
  const HcSetVerdict verdict =
      verify_hc_set(survivor, plan->cycles, /*must_cover_all_edges=*/false);
  EXPECT_TRUE(verdict.ok) << verdict.reason;

  // Memoized: the same dead-set returns the identical plan object.
  const auto again = detail::rerooted_decomposition(g, node_alive, edge_alive,
                                                    q.gamma() / 2);
  EXPECT_EQ(plan.get(), again.get());
}

TEST(Reroot, DeadNodeDecompositionsAreCertifiedInOriginalIds) {
  // TQ_4 is non-bipartite, so unlike Q_4 it stays Hamiltonian after a
  // node death; the re-rooted cycles must come back in original node ids
  // and certify against the compacted survivor subgraph.
  const auto tq = make_topology("TQ4");
  const Graph& g = tq->graph();
  const NodeId victim = 5;
  std::vector<std::uint8_t> node_alive(g.node_count(), 1);
  node_alive[victim] = 0;
  std::vector<std::uint8_t> edge_alive(g.edge_count(), 1);

  const auto plan = detail::rerooted_decomposition(g, node_alive, edge_alive,
                                                   tq->gamma() / 2);
  ASSERT_TRUE(plan->found) << plan->detail;

  std::vector<NodeId> to_sub(g.node_count(), kInvalidNode);
  NodeId sub_count = 0;
  for (NodeId v = 0; v < g.node_count(); ++v)
    if (node_alive[v] != 0) to_sub[v] = sub_count++;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto [u, v] = g.edge(e);
    if (u == victim || v == victim) continue;
    edges.emplace_back(to_sub[u], to_sub[v]);
  }
  const Graph survivor(sub_count, std::move(edges));
  std::vector<Cycle> compacted;
  for (const Cycle& c : plan->cycles) {
    std::vector<NodeId> seq;
    for (const NodeId v : c.nodes()) {
      ASSERT_NE(v, victim);  // dead nodes never appear on re-rooted cycles
      seq.push_back(to_sub[v]);
    }
    compacted.emplace_back(std::move(seq));
  }
  const HcSetVerdict verdict =
      verify_hc_set(survivor, compacted, /*must_cover_all_edges=*/false);
  EXPECT_TRUE(verdict.ok) << verdict.reason;
}

TEST(Reroot, CycleCutIsUnrecoverableStaticallyButRerootsToComplete) {
  const Hypercube q(4);
  const NodeId victim_origin = 0;
  const NodeId victim_dest = 9;

  auto run = [&](RecoveryLadder ladder) {
    AtaOptions opt = q4_options();
    FaultSchedule schedule(test_seed());
    // Mid-run cut at 2 us: with tau_S = 5 us per hop, no packet has
    // completed its first hop yet, so every dead-edge crossing is lost.
    for (const EdgeId e : cycle_cut_edges(q, victim_origin, victim_dest)) {
      const auto [u, v] = q.graph().edge(e);
      schedule.fail_link(q.graph().link(u, v), sim_us(2));
      schedule.fail_link(q.graph().link(v, u), sim_us(2));
    }
    opt.schedule = &schedule;
    RecoveryPolicy policy;
    policy.min_copies = 1;
    policy.ladder = ladder;
    return run_ihc_with_recovery(q, IhcOptions{.eta = 2}, opt, policy);
  };

  // Both arcs of both undirected cycles hold a dead edge, so each static
  // route (15 of a cycle's 16 edges) crosses one: the static ladder can
  // stage nothing at all and gives up immediately.
  const RecoveryReport dead_end = run(RecoveryLadder::kStatic);
  EXPECT_FALSE(dead_end.initial_complete);
  EXPECT_FALSE(dead_end.complete);
  EXPECT_EQ(dead_end.retries_used, 0u);
  EXPECT_EQ(dead_end.flows_reissued, 0u);
  EXPECT_EQ(dead_end.ledger.copies(victim_origin, victim_dest), 0u);

  // The full ladder re-roots: Q_4 minus the four cut edges is still
  // Hamiltonian, and the fresh cycles avoid every dead edge.
  const RecoveryReport rec = run(RecoveryLadder::kPaths);
  EXPECT_FALSE(rec.initial_complete);
  EXPECT_TRUE(rec.complete);
  EXPECT_EQ(rec.unrecovered_pairs, 0u);
  EXPECT_EQ(rec.unreachable_pairs, 0u);
  EXPECT_EQ(rec.escalations, 1u);
  EXPECT_GE(rec.rerooted_cycles, 2u);
  EXPECT_GT(rec.reroot_reissues, 0u);
  EXPECT_EQ(rec.fallback_paths, 0u);
  EXPECT_GE(rec.ledger.copies(victim_origin, victim_dest), 1u);
}

}  // namespace
}  // namespace ihc
