// Tests for the shortest-path routing substrate and multi-hop background
// traffic.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "core/ihc.hpp"
#include "sim/routing.hpp"
#include "topology/hypercube.hpp"
#include "topology/square_mesh.hpp"

namespace ihc {
namespace {

TEST(RoutingTable, ShortestPathsOnTheHypercubeMatchHammingDistance) {
  const Graph q4 = make_hypercube_graph(4);
  RoutingTable routes(q4);
  for (NodeId s : {0u, 5u, 15u}) {
    for (NodeId d = 0; d < 16; ++d) {
      const auto expected =
          static_cast<std::uint32_t>(__builtin_popcount(s ^ d));
      EXPECT_EQ(routes.distance(s, d), expected);
      const auto path = routes.shortest_path(s, d);
      EXPECT_EQ(path.size(), expected + 1);
      EXPECT_EQ(path.front(), s);
      EXPECT_EQ(path.back(), d);
      for (std::size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_TRUE(q4.has_edge(path[i], path[i + 1]));
    }
  }
}

TEST(RoutingTable, NextHopIsConsistentWithPaths) {
  const Graph c8 = make_cycle_graph(8);
  RoutingTable routes(c8);
  EXPECT_EQ(routes.distance(0, 4), 4u);  // either way around
  const auto path = routes.shortest_path(0, 3);
  EXPECT_EQ(path.size(), 4u);
  EXPECT_EQ(routes.next_hop(0, 3), path[1]);
}

TEST(RoutingTable, MeanDistanceEstimateIsPlausible) {
  const Graph q6 = make_hypercube_graph(6);
  RoutingTable routes(q6);
  // Mean Hamming distance between random 6-bit strings is 3.
  EXPECT_NEAR(routes.mean_distance_estimate(2000, 7), 3.0, 0.2);
}

TEST(RoutingTable, RejectsBadEndpoints) {
  const Graph c4 = make_cycle_graph(4);
  RoutingTable routes(c4);
  EXPECT_THROW((void)routes.shortest_path(0, 9), ConfigError);
}

TEST(MultiHopBackground, LoadsTheNetworkAndDelaysIhc) {
  const Hypercube q(5);
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_ns(200);
  opt.net.mu = 2;
  const auto clean = run_ihc(q, IhcOptions{.eta = 2}, opt);

  opt.net.rho = 0.4;
  opt.net.background_mode = BackgroundMode::kMultiHopFlows;
  opt.net.seed = 1234;
  const auto loaded = run_ihc(q, IhcOptions{.eta = 2}, opt);
  EXPECT_GT(loaded.stats.background_packets, 0u);
  EXPECT_GT(loaded.finish, clean.finish);
  // Broadcast correctness is untouched by background load.
  EXPECT_TRUE(loaded.ledger.all_pairs_have(q.gamma()));
  // Background deliveries do not leak into the ledger.
  EXPECT_EQ(loaded.ledger.total_copies(), clean.ledger.total_copies());
}

TEST(MultiHopBackground, ProducesRoughlyTheRequestedUtilization) {
  // Run a long foreground span (big tau_s) and compare the achieved mean
  // link utilization with rho.  Generous tolerance: this is a stochastic
  // open-loop calibration.
  const SquareMesh sq(5);
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(200);  // long horizon
  opt.net.mu = 2;
  opt.net.rho = 0.3;
  opt.net.background_mode = BackgroundMode::kMultiHopFlows;
  const auto run = run_ihc(sq, IhcOptions{.eta = 5}, opt);
  EXPECT_GT(run.mean_link_utilization, 0.15);
  EXPECT_LT(run.mean_link_utilization, 0.6);
}

TEST(MultiHopBackground, BackgroundItselfRelaysThroughTheNetwork) {
  const Hypercube q(4);
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(20);
  opt.net.mu = 2;
  opt.net.rho = 0.6;
  opt.net.background_mode = BackgroundMode::kMultiHopFlows;
  const auto clean = run_ihc(q, IhcOptions{.eta = 2}, AtaOptions{
      .net = {.alpha = sim_ns(20), .tau_s = sim_us(20), .mu = 2}});
  const auto run = run_ihc(q, IhcOptions{.eta = 2}, opt);
  // Background flows of >= 2 hops relay (cut through or buffer) at
  // intermediate nodes, adding relay operations beyond the broadcast's
  // own fixed gamma N (N-1) - injections.
  EXPECT_GT(run.stats.background_packets, 0u);
  EXPECT_GT(run.stats.cut_throughs + run.stats.buffered_relays +
                run.stats.wormhole_stalls,
            clean.stats.cut_throughs + clean.stats.buffered_relays);
}

}  // namespace
}  // namespace ihc
