// Tests for the signed Byzantine agreement protocol (SM(t)) and the HC
// single-source broadcast it rides on.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "core/agreement.hpp"
#include "core/analysis.hpp"
#include "core/hc_broadcast.hpp"
#include "core/runner.hpp"
#include "topology/hypercube.hpp"
#include "topology/square_mesh.hpp"

namespace ihc {
namespace {

AtaOptions base_options() {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  return opt;
}

TEST(HcBroadcast, DeliversGammaCopiesInOptimalSingleBroadcastTime) {
  const Hypercube q(5);
  const AtaOptions opt = base_options();
  const auto result = run_hc_broadcast(q, 7, opt);
  for (NodeId d = 0; d < q.node_count(); ++d) {
    if (d == 7) continue;
    EXPECT_EQ(result.ledger.copies(7, d), q.gamma());
  }
  // One startup + N-2 cut-throughs, cycles in parallel.
  const double expected =
      model::ihc_dedicated(q.node_count(), 1, opt.net);
  EXPECT_DOUBLE_EQ(static_cast<double>(result.finish), expected);
  EXPECT_EQ(result.stats.buffered_relays, 0u);
}

TEST(HcBroadcast, AtaVersionIsNTimesTheSingleBroadcast) {
  const SquareMesh sq(4);
  const AtaOptions opt = base_options();
  const auto one = run_hc_broadcast(sq, 0, opt);
  const auto all = run_hc_ata(sq, opt);
  EXPECT_EQ(all.finish, static_cast<SimTime>(sq.node_count()) * one.finish);
  EXPECT_TRUE(all.ledger.all_pairs_have(sq.gamma()));
}

TEST(Agreement, LoyalEveryoneTrivially) {
  const Hypercube q(4);
  const KeyRing keys(17);
  FaultPlan faults(1);
  const auto result = run_signed_agreement(q, keys, faults, base_options(),
                                           AgreementConfig{.commander = 0});
  EXPECT_TRUE(result.agreement);
  EXPECT_TRUE(result.validity);
  for (NodeId v = 1; v < q.node_count(); ++v)
    EXPECT_EQ(result.decision[v], honest_payload(0));
}

TEST(Agreement, SurvivesTraitorousLieutenants) {
  const Hypercube q(4);  // gamma = 4
  const KeyRing keys(17);
  FaultPlan faults(2);
  faults.add(5, FaultMode::kCorrupt);
  faults.add(11, FaultMode::kSilent);
  const auto result = run_signed_agreement(q, keys, faults, base_options(),
                                           AgreementConfig{.commander = 0});
  EXPECT_TRUE(result.agreement);
  EXPECT_TRUE(result.validity);
}

TEST(Agreement, ConvictsAnEquivocatingCommander) {
  const Hypercube q(4);
  const KeyRing keys(17);
  FaultPlan faults(3);
  faults.add(0, FaultMode::kEquivocate);
  AgreementConfig config;
  config.commander = 0;
  const auto result =
      run_signed_agreement(q, keys, faults, base_options(), config);
  EXPECT_TRUE(result.agreement);  // loyal nodes agree (on the default)
  for (NodeId v = 1; v < q.node_count(); ++v) {
    EXPECT_GE(result.values_seen[v], 2u) << v;
    EXPECT_EQ(result.decision[v], config.default_order) << v;
  }
}

TEST(Agreement, EquivocatingCommanderPlusColludingRelay) {
  // The hard case SM(t) is built for: the commander equivocates and a
  // colluding traitor re-broadcasts selectively.  With t = 2 traitors and
  // t + 1 = 3 relay rounds, the loyal lieutenants still agree.
  const Hypercube q(4);
  const KeyRing keys(17);
  FaultPlan faults(5);
  faults.add(0, FaultMode::kEquivocate);
  faults.add(9, FaultMode::kCorrupt);
  const auto result = run_signed_agreement(q, keys, faults, base_options(),
                                           AgreementConfig{.commander = 0});
  EXPECT_EQ(result.rounds_used, 3u);  // t + 1
  EXPECT_TRUE(result.agreement);
}

TEST(Agreement, ReportsNetworkTime) {
  const Hypercube q(4);
  const KeyRing keys(17);
  FaultPlan faults(1);
  const auto result = run_signed_agreement(q, keys, faults, base_options(),
                                           AgreementConfig{.commander = 3});
  EXPECT_GT(result.network_time, 0);
  EXPECT_EQ(result.rounds_used, 1u);  // t = 0 -> 1 relay round
}

TEST(Agreement, RejectsBadCommander) {
  const Hypercube q(3);
  const KeyRing keys(17);
  FaultPlan faults(1);
  EXPECT_THROW((void)run_signed_agreement(
                   q, keys, faults, base_options(),
                   AgreementConfig{.commander = 99}),
               ConfigError);
}

}  // namespace
}  // namespace ihc
