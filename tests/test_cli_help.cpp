// Documentation-drift checks: every subcommand in the CLI spec table
// (src/util/cli_spec.hpp) must be dispatched by tools/ihc_cli.cpp and
// documented in README.md, and the docs the spec references must exist.
// scripts/check_docs.py runs the same checks without a build; this test
// makes them part of tier-1.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "util/cli_spec.hpp"

#ifndef IHC_SOURCE_DIR
#error "IHC_SOURCE_DIR must point at the repository root"
#endif

namespace ihc {
namespace {

std::string slurp(const std::string& relative) {
  const std::string path = std::string(IHC_SOURCE_DIR) + "/" + relative;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(CliHelp, SpecTableIsPlausible) {
  EXPECT_GE(kCliSubcommandCount, 6u);
  for (const CliSubcommand& sub : kCliSubcommands) {
    EXPECT_FALSE(sub.name.empty());
    EXPECT_FALSE(sub.summary.empty());
    // The synopsis starts with the dispatch token.
    EXPECT_EQ(sub.synopsis.substr(0, sub.name.size()), sub.name);
  }
}

TEST(CliHelp, EverySubcommandIsDispatched) {
  const std::string cli = slurp("tools/ihc_cli.cpp");
  for (const CliSubcommand& sub : kCliSubcommands) {
    const std::string dispatch =
        "cmd == \"" + std::string(sub.name) + "\"";
    EXPECT_NE(cli.find(dispatch), std::string::npos)
        << "ihc_cli.cpp does not dispatch '" << sub.name
        << "' (cli_spec.hpp and main() disagree)";
  }
}

TEST(CliHelp, EverySubcommandIsDocumented) {
  const std::string readme = slurp("README.md");
  for (const CliSubcommand& sub : kCliSubcommands)
    EXPECT_NE(readme.find(std::string(sub.name)), std::string::npos)
        << "README.md does not mention subcommand '" << sub.name << "'";
  // The tier-1 verification walkthrough must include campaign discovery.
  EXPECT_NE(readme.find("campaign --list"), std::string::npos);
}

TEST(CliHelp, ExperimentsDocCoversCampaignsAndMetrics) {
  const std::string experiments = slurp("EXPERIMENTS.md");
  EXPECT_NE(experiments.find("campaign --list"), std::string::npos);
  EXPECT_NE(experiments.find("--metrics"), std::string::npos);
  EXPECT_NE(experiments.find("\"metrics\""), std::string::npos);
}

TEST(CliHelp, TraceSchemaDocExists) {
  const std::string tracing = slurp("docs/TRACING.md");
  EXPECT_NE(tracing.find("ihc-trace-v1"), std::string::npos);
  // Every event name of the schema is documented.
  for (const char* event :
       {"packet_injected", "header_advanced", "delivered", "xmit", "buffered",
        "stalled", "fault_fired", "link_dropped", "stage", "fifo_enqueue",
        "fifo_dequeue", "flit_blocked", "session_arrive", "session_reject",
        "session"})
    EXPECT_NE(tracing.find(event), std::string::npos)
        << "docs/TRACING.md does not document event '" << event << "'";
}

}  // namespace
}  // namespace ihc
