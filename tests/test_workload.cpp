// The continuous-service workload engine end-to-end: platform-stable
// arrival sampling (golden gap sequences), warmup detection, bounded
// admission-queue conservation, FRS batching, the saturation_sweep
// campaign's byte-identical reports across --jobs, and the
// session_conservation TraceLint check (docs/WORKLOADS.md).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "exp/exp.hpp"
#include "obs/obs.hpp"
#include "topology/hypercube.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/arrivals.hpp"
#include "workload/engine.hpp"
#include "workload/sweep.hpp"
#include "workload/warmup.hpp"

namespace ihc {
namespace {

using obs::analyze::Analysis;
using workload::ArrivalConfig;
using workload::ArrivalModel;
using workload::WarmupConfig;
using workload::WorkloadOptions;
using workload::WorkloadResult;

// -- platform-stable samplers ---------------------------------------------

TEST(PortableLog, MatchesStdLogAndIsBitStable) {
  // The truncated-series evaluation is part of the determinism contract:
  // these exact bit patterns must reproduce on every platform, which is
  // why the samplers use portable_log instead of std::log (whose last
  // ulp differs between libms).
  EXPECT_DOUBLE_EQ(portable_log(0.5), -0x1.62e42fefa39edp-1);
  EXPECT_DOUBLE_EQ(portable_log(2.0), 0x1.62e42fefa39f1p-1);
  EXPECT_DOUBLE_EQ(portable_log(0x1.0p-53), -0x1.25e4f7b2737fap+5);
  EXPECT_DOUBLE_EQ(portable_log(3.141592653589793), 0x1.250d048e7a1bdp+0);

  for (const double x : {1e-9, 0.037, 0.5, 1.0, 3.5, 42.0, 1e12}) {
    const double exact = std::log(x);
    const double approx = portable_log(x);
    EXPECT_NEAR(approx, exact,
                1e-14 * std::max(1.0, std::fabs(exact)))
        << "x = " << x;
  }
  EXPECT_THROW((void)portable_log(0.0), InvariantError);
  EXPECT_THROW((void)portable_log(-1.0), InvariantError);
}

TEST(ExponentialGaps, GoldenSequence) {
  SplitMix64 rng(derive_seed("golden", "exp"));
  const std::int64_t expected[] = {901510, 760404, 409428,  882527,
                                   1300329, 352361, 1002187, 148496};
  for (const std::int64_t want : expected)
    EXPECT_EQ(exponential_gap_ps(rng, 1000000), want);

  // Gaps are always at least one picosecond, and the sample mean of an
  // exponential with mean 1 us lands near 1 us.
  SplitMix64 rng2(7);
  std::int64_t sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t gap = exponential_gap_ps(rng2, 1000000);
    ASSERT_GE(gap, 1);
    sum += gap;
  }
  EXPECT_NEAR(static_cast<double>(sum) / 10000.0, 1e6, 5e4);
}

TEST(MmppGaps, GoldenSequenceAndRatePreservation) {
  // The defaults of ArrivalConfig at mean 1 us: burst gaps 1us/1.6,
  // lull gaps 1us/0.4, dwell 10 us.
  SplitMix64 rng(derive_seed("golden", "mmpp"));
  MmppGaps gaps(rng, 625000, 2500000, 10000000);
  const std::int64_t expected[] = {512861, 357650, 175995, 270746,
                                   505207, 202804, 361928, 31395};
  for (const std::int64_t want : expected) EXPECT_EQ(gaps.next(), want);

  // Rate preservation: half the time in each state, so the long-run mean
  // gap stays near the 1 us the skew was derived from.
  SplitMix64 rng2(11);
  MmppGaps gaps2(rng2, 625000, 2500000, 10000000);
  std::int64_t sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t gap = gaps2.next();
    ASSERT_GE(gap, 1);
    sum += gap;
  }
  EXPECT_NEAR(static_cast<double>(sum) / 20000.0, 1e6, 1.5e5);
}

TEST(Arrivals, DeterministicStrictlyIncreasingPerOriginStreams) {
  ArrivalConfig config;
  config.sessions_per_origin = 32;
  for (const ArrivalModel model :
       {ArrivalModel::kPoisson, ArrivalModel::kMmpp}) {
    config.model = model;
    const auto a = workload::generate_arrivals(config, 99, 3);
    const auto b = workload::generate_arrivals(config, 99, 3);
    EXPECT_EQ(a, b);  // pure function of (config, seed, origin)
    ASSERT_EQ(a.size(), 32u);
    for (std::size_t i = 1; i < a.size(); ++i) ASSERT_GT(a[i], a[i - 1]);
    // Distinct origins draw decorrelated streams off the same seed.
    EXPECT_NE(a, workload::generate_arrivals(config, 99, 4));
  }
}

// -- percentiles (util/stats) ---------------------------------------------

TEST(Percentiles, NearestRankAndEmptySentinel) {
  std::vector<double> xs;
  for (int i = 1000; i >= 1; --i) xs.push_back(i);
  const Percentiles p = percentiles(std::move(xs));
  EXPECT_DOUBLE_EQ(p.p50, 500.0);
  EXPECT_DOUBLE_EQ(p.p95, 950.0);
  EXPECT_DOUBLE_EQ(p.p99, 990.0);
  EXPECT_DOUBLE_EQ(p.p999, 999.0);

  const Percentiles empty = percentiles({});
  EXPECT_TRUE(std::isnan(empty.p50));
  EXPECT_TRUE(std::isnan(empty.p95));
  EXPECT_TRUE(std::isnan(empty.p99));
  EXPECT_TRUE(std::isnan(empty.p999));
  EXPECT_TRUE(std::isnan(quantile({}, 0.5)));
}

// -- warmup detection -----------------------------------------------------

TEST(Warmup, SteadyStreamNeedsNoWarmup) {
  // One completion per 100 ps window from the start: stable immediately.
  std::vector<SimTime> done;
  for (SimTime t = 50; t < 2400; t += 100) done.push_back(t);
  EXPECT_EQ(workload::detect_warmup_end(done, 2400, {}), 0);
}

TEST(Warmup, DetectsAnInitialTransient) {
  // Six empty 100 ps windows, then one completion per window: warmup must
  // end exactly where the steady phase begins.
  std::vector<SimTime> done;
  for (SimTime t = 650; t < 2400; t += 100) done.push_back(t);
  EXPECT_EQ(workload::detect_warmup_end(done, 2400, {}), 600);
}

TEST(Warmup, FixedFractionModeIgnoresTheCompletionRecord) {
  // Cross-algorithm sweeps use kFixedFraction so every algorithm gets
  // the same measurement window: the completion record must not matter.
  WarmupConfig config;
  config.mode = workload::WarmupMode::kFixedFraction;
  std::vector<SimTime> steady;
  for (SimTime t = 50; t < 2400; t += 100) steady.push_back(t);
  EXPECT_EQ(workload::detect_warmup_end(steady, 2400, config), 600);
  EXPECT_EQ(workload::detect_warmup_end({}, 2400, config), 600);
  EXPECT_EQ(workload::detect_warmup_end({1200}, 2400, config), 600);
}

TEST(Warmup, FallsBackWhenNothingConverges) {
  const WarmupConfig config;
  // No completions at all: fixed-fraction fallback.
  EXPECT_EQ(workload::detect_warmup_end({}, 2400, config), 600);
  // A single spike can never form a stable 4-window run either.
  EXPECT_EQ(workload::detect_warmup_end({1200}, 2400, config), 600);
  EXPECT_THROW((void)workload::detect_warmup_end({}, 0, config),
               ConfigError);
}

// -- the engine -----------------------------------------------------------

WorkloadResult overload_q4(std::uint32_t queue_capacity,
                           std::uint32_t batch_max,
                           obs::Tracer* tracer = nullptr) {
  // Offered gap 100 ns against a ~520 ns service time: heavy overload,
  // so the bounded queue must shed load.
  const SessionPlanner planner =
      SessionPlanner::build("ihc", std::make_shared<Hypercube>(4));
  WorkloadOptions opt;
  opt.arrivals.mean_gap_ps = sim_ns(100);
  opt.arrivals.sessions_per_origin = 30;
  opt.queue_capacity = queue_capacity;
  opt.batch_max = batch_max;
  opt.seed = derive_seed("test_workload", "overload");
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_ns(200);
  opt.net.mu = 2;
  opt.tracer = tracer;
  return workload::run_workload(planner, opt);
}

TEST(WorkloadEngine, AdmissionAccountingConserves) {
  const WorkloadResult r = overload_q4(/*queue_capacity=*/1,
                                       /*batch_max=*/1);
  EXPECT_EQ(r.offered, 16u * 30u);
  EXPECT_GT(r.rejected, 0u);  // the overload actually shed load
  // Conservation: every offered session is admitted or rejected, and
  // every admitted one completes or is in flight at drain (fault-free
  // runs drain completely).
  EXPECT_EQ(r.offered, r.admitted + r.rejected);
  EXPECT_EQ(r.admitted, r.completed + r.inflight_at_drain);
  EXPECT_EQ(r.inflight_at_drain, 0u);
  EXPECT_LE(r.max_queue_depth, 1u);
  EXPECT_GT(r.horizon, 0);

  // The same ledger holds per session record.
  std::uint64_t completed = 0, rejected = 0;
  for (const workload::SessionRecord& s : r.sessions) {
    if (s.rejected) {
      ++rejected;
      EXPECT_EQ(s.completion, 0);
    } else if (s.completion > 0) {
      ++completed;
      EXPECT_GE(s.service_start, s.arrival);
      EXPECT_GT(s.completion, s.service_start);
      EXPECT_EQ(s.batch, 1u);  // batch_max 1 never merges
    }
  }
  EXPECT_EQ(completed, r.completed);
  EXPECT_EQ(rejected, r.rejected);
  EXPECT_EQ(r.batches, r.completed);  // one broadcast per session
  EXPECT_EQ(r.merged_sessions, 0u);
}

TEST(WorkloadEngine, FrsBatchingMergesQueuedSessions) {
  const WorkloadResult r = overload_q4(/*queue_capacity=*/8,
                                       /*batch_max=*/4);
  // Overloaded origins accumulate queues, so merges must happen and every
  // batch stays within the bound.
  EXPECT_GT(r.merged_sessions, 0u);
  EXPECT_LT(r.batches, r.completed);
  EXPECT_EQ(r.completed, r.batches + r.merged_sessions);
  for (const workload::SessionRecord& s : r.sessions)
    if (s.completion > 0) EXPECT_LE(s.batch, 4u);
  EXPECT_LE(r.max_queue_depth, 8u);

  // Batching amortizes tau_s: fewer broadcasts serve more sessions than
  // the unbatched engine under the identical offered stream.
  const WorkloadResult serial = overload_q4(1, 1);
  EXPECT_GT(r.completed, serial.completed);
}

TEST(WorkloadEngine, SummarizeMeasurementIsAPureFunction) {
  const WorkloadResult r = overload_q4(8, 4);
  const workload::MeasurementStats again =
      workload::summarize_measurement(r, WarmupConfig{});
  EXPECT_EQ(again.warmup_end, r.measurement.warmup_end);
  EXPECT_EQ(again.offered, r.measurement.offered);
  EXPECT_EQ(again.completed, r.measurement.completed);
  EXPECT_DOUBLE_EQ(again.mean_latency_ps, r.measurement.mean_latency_ps);
  EXPECT_DOUBLE_EQ(again.fairness_jain, r.measurement.fairness_jain);
  EXPECT_GT(r.measurement.offered, 0u);  // the window covers arrivals
  EXPECT_GT(r.measurement.mean_latency_ps, 0.0);
  EXPECT_GE(r.measurement.latency_ps.p99, r.measurement.latency_ps.p50);
}

TEST(WorkloadEngine, ModerateLoadServesEveryOriginFairly) {
  // Well below saturation every arrival is admitted, latency stays near
  // the unloaded broadcast time and the symmetric origins complete
  // near-equal shares (Jain index ~ 1).
  const SessionPlanner planner =
      SessionPlanner::build("ihc", std::make_shared<Hypercube>(4));
  WorkloadOptions opt;
  opt.arrivals.mean_gap_ps = sim_us(2);
  opt.arrivals.sessions_per_origin = 24;
  opt.seed = derive_seed("test_workload", "moderate");
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_ns(200);
  opt.net.mu = 2;
  const WorkloadResult r = workload::run_workload(planner, opt);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.completed, r.offered);
  EXPECT_GT(r.measurement.completed, 0u);
  EXPECT_GT(r.measurement.fairness_jain, 0.9);
  EXPECT_LE(r.measurement.fairness_jain, 1.0 + 1e-12);
}

// -- session planner ------------------------------------------------------

TEST(SessionPlanner, IhcPlansGammaCyclePathsPerOrigin) {
  const auto cube = std::make_shared<Hypercube>(4);
  const SessionPlanner planner = SessionPlanner::build("ihc", cube);
  EXPECT_EQ(planner.algorithm(), "ihc");
  for (NodeId o = 0; o < cube->node_count(); ++o) {
    const std::vector<FlowSpec>& plan = planner.flows(o);
    ASSERT_EQ(plan.size(), cube->gamma());
    for (const FlowSpec& f : plan) {
      EXPECT_TRUE(f.tree.empty());  // cycle-path routed
      EXPECT_EQ(f.origin, o);
      EXPECT_EQ(f.length_units, 0u);  // template: engine stamps length
    }
  }
  EXPECT_THROW((void)SessionPlanner::build("nope", cube), ConfigError);
  // Tree baselines need their matching topology.
  EXPECT_THROW((void)SessionPlanner::build("ks", cube), ConfigError);
}

TEST(SessionPlanner, VrsPlansTreesOnTheHypercube) {
  const auto cube = std::make_shared<Hypercube>(4);
  const SessionPlanner planner = SessionPlanner::build("vrs", cube);
  const std::vector<FlowSpec>& plan = planner.flows(0);
  ASSERT_FALSE(plan.empty());
  for (const FlowSpec& f : plan) EXPECT_FALSE(f.tree.empty());

  // Tree flows complete through the completion hook: a one-session run
  // must drain with the session accounted for.
  WorkloadOptions opt;
  opt.arrivals.sessions_per_origin = 2;
  opt.arrivals.mean_gap_ps = sim_us(2);
  opt.net.tau_s = sim_ns(200);
  const WorkloadResult r = workload::run_workload(planner, opt);
  EXPECT_EQ(r.completed, r.offered);
  EXPECT_EQ(r.inflight_at_drain, 0u);
}

// -- the saturation_sweep campaign ----------------------------------------

TEST(SaturationSweep, ReportIsByteIdenticalAcrossJobs) {
  const exp::Campaign campaign =
      exp::make_builtin_campaign("saturation_sweep_quick");

  exp::RunOptions one;
  one.jobs = 1;
  const exp::CampaignResult r1 = exp::run_campaign(campaign, one);
  exp::RunOptions eight;
  eight.jobs = 8;
  const exp::CampaignResult r8 = exp::run_campaign(campaign, eight);

  ASSERT_EQ(r1.failed_count(), 0u);
  ASSERT_EQ(r8.failed_count(), 0u);

  const exp::JsonReportOptions no_timing{.include_timing = false};
  EXPECT_EQ(exp::json_report(r1, no_timing), exp::json_report(r8, no_timing));
  EXPECT_EQ(workload::workload_report(r1).dump(2),
            workload::workload_report(r8).dump(2));
}

TEST(SaturationSweep, CurvesAreMonotoneAndIhcLeadsBelowSaturation) {
  const exp::Campaign campaign =
      exp::make_builtin_campaign("saturation_sweep_quick");
  exp::RunOptions options;
  const exp::CampaignResult result = exp::run_campaign(campaign, options);
  ASSERT_EQ(result.failed_count(), 0u);

  const Json doc = workload::workload_report(result);
  EXPECT_EQ(doc.find("schema")->as_string(), "ihc-workload-v1");
  const Json* curves = doc.find("curves");
  ASSERT_NE(curves, nullptr);
  ASSERT_EQ(curves->items().size(), 4u);  // ihc, vrs, vsq, ks

  double ihc_low_accept = 0.0;
  bool ihc_low_saturated = true;
  for (const Json& curve : curves->items()) {
    const std::string algo(curve.find("algorithm")->as_string());
    const Json* points = curve.find("points");
    ASSERT_NE(points, nullptr);
    // Mean latency must not decrease as offered rate rises.
    double prev = 0.0;
    for (const Json& p : points->items()) {
      const double mean = p.find("latency_mean_ps")->as_double();
      EXPECT_GE(mean, prev) << algo;
      prev = mean;
    }
    const Json& low = points->items().front();
    if (algo == "ihc") {
      ihc_low_accept = low.find("accepted_per_us")->as_double();
      ihc_low_saturated = low.find("saturated")->as_bool();
    }
  }
  // Below saturation, IHC's accepted throughput at the common low rate is
  // at least every baseline's (the paper's headline claim, measured on
  // the streaming engine instead of one-shot finish times).
  ASSERT_FALSE(ihc_low_saturated);
  for (const Json& curve : curves->items()) {
    const std::string algo(curve.find("algorithm")->as_string());
    if (algo == "ihc") continue;
    const double accept = curve.find("points")
                              ->items()
                              .front()
                              .find("accepted_per_us")
                              ->as_double();
    EXPECT_GE(ihc_low_accept + 1e-9, accept) << "vs " << algo;
  }

  const std::string ascii = workload::workload_ascii(doc);
  EXPECT_NE(ascii.find("ihc on Q4"), std::string::npos);
  EXPECT_NE(ascii.find("rate"), std::string::npos);
}

// -- TraceLint: session conservation --------------------------------------

std::vector<obs::TraceEvent> collect_workload_trace() {
  obs::CollectingSink sink;
  obs::Tracer tracer;
  tracer.attach(&sink);
  (void)overload_q4(2, 2, &tracer);
  return sink.events();
}

TEST(SessionLint, ChromeTraceRoundTripKeepsSessionEvents) {
  // `analyze --trace <file>` must accept a workload trace: the Chrome
  // JSON writer/reader round trip may not drop or reject the session
  // vocabulary.
  std::ostringstream doc;
  {
    obs::ChromeTraceSink sink(doc);
    obs::Tracer tracer;
    tracer.attach(&sink);
    (void)overload_q4(2, 2, &tracer);
  }
  const std::vector<obs::TraceEvent> reloaded =
      obs::analyze::parse_trace_json(doc.str());
  const std::vector<obs::TraceEvent> direct = collect_workload_trace();
  ASSERT_EQ(reloaded.size(), direct.size());
  const std::string from_file =
      obs::analyze::to_json(obs::analyze::analyze_trace(reloaded)).dump(2);
  const std::string in_process =
      obs::analyze::to_json(obs::analyze::analyze_trace(direct)).dump(2);
  EXPECT_EQ(from_file, in_process);
}

TEST(SessionLint, CleanWorkloadTracePassesConservation) {
  const Analysis a = obs::analyze::analyze_trace(collect_workload_trace());
  bool ran = false;
  for (const std::string& c : a.lint.checks_run)
    ran = ran || c == "session_conservation";
  EXPECT_TRUE(ran);
  for (const obs::analyze::LintViolation& v : a.lint.violations)
    EXPECT_NE(v.check, "session_conservation") << v.message;
}

TEST(SessionLint, CorruptedTraceTripsExactlySessionConservation) {
  std::vector<obs::TraceEvent> events = collect_workload_trace();
  const Analysis clean = obs::analyze::analyze_trace(events);

  // Retarget one completed session span to an id that never arrived: a
  // session terminating without arriving breaks the conservation ledger.
  bool corrupted = false;
  for (obs::TraceEvent& e : events) {
    if (!corrupted && std::strcmp(e.name, "session") == 0) {
      e.stage = 999999;
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted);

  const Analysis a = obs::analyze::analyze_trace(events);
  EXPECT_FALSE(a.lint.ok());
  bool tripped = false;
  std::vector<std::string> other;
  for (const obs::analyze::LintViolation& v : a.lint.violations) {
    if (v.check == "session_conservation") {
      tripped = true;
      EXPECT_NE(v.message.find("999999"), std::string::npos);
    } else {
      other.push_back(v.check + ": " + v.message);
    }
  }
  EXPECT_TRUE(tripped);
  // The corruption must trip exactly this check: every other violation
  // already existed in the clean trace (there are none).
  EXPECT_EQ(clean.lint.violations.size(), 0u);
  EXPECT_TRUE(other.empty()) << other.front();
}

}  // namespace
}  // namespace ihc
