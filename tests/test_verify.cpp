// Tests for the voting / signed-acceptance verdicts on crafted ledgers.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "core/verify.hpp"

namespace ihc {
namespace {

constexpr std::uint64_t kTruth = 0x1234;
constexpr std::uint64_t kLie = 0x9999;

DeliveryLedger ledger_with(NodeId n, NodeId o, NodeId d,
                           std::vector<std::uint64_t> payloads,
                           const KeyRing* keys = nullptr,
                           std::vector<bool> tampered = {}) {
  DeliveryLedger ledger(n, DeliveryLedger::Granularity::kFull);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    CopyRecord c;
    c.payload = payloads[i];
    c.route = static_cast<std::uint16_t>(i);
    const bool bad = i < tampered.size() && tampered[i];
    // A tampered copy keeps the original MAC (relays cannot re-sign).
    if (keys != nullptr)
      c.mac = keys->sign(o, bad ? kTruth : payloads[i]);
    c.corrupted_by = bad ? NodeId{1} : kInvalidNode;
    ledger.record(o, d, c);
  }
  return ledger;
}

TEST(MajorityVote, UnanimousCopiesAreCorrect) {
  const auto ledger = ledger_with(4, 0, 1, {kTruth, kTruth, kTruth, kTruth});
  EXPECT_EQ(majority_vote(ledger, 0, 1, 4, kTruth), Verdict::kCorrect);
}

TEST(MajorityVote, StrictMajorityNeedsMoreThanHalfOfExpected) {
  // 2 of gamma=4 expected copies: not a strict majority.
  const auto ledger = ledger_with(4, 0, 1, {kTruth, kTruth});
  EXPECT_EQ(majority_vote(ledger, 0, 1, 4, kTruth), Verdict::kUndecided);
  // ... but it is a majority of the received copies.
  EXPECT_EQ(majority_vote(ledger, 0, 1, 4, kTruth,
                          VoteRule::kReceivedMajority),
            Verdict::kCorrect);
}

TEST(MajorityVote, AgreeingWrongCopiesYieldWrongVerdict) {
  const auto ledger = ledger_with(4, 0, 1, {kLie, kLie, kLie, kTruth});
  EXPECT_EQ(majority_vote(ledger, 0, 1, 4, kTruth), Verdict::kWrong);
}

TEST(MajorityVote, TieIsUndecided) {
  const auto ledger = ledger_with(4, 0, 1, {kTruth, kTruth, kLie, kLie});
  EXPECT_EQ(majority_vote(ledger, 0, 1, 4, kTruth), Verdict::kUndecided);
  EXPECT_EQ(majority_vote(ledger, 0, 1, 4, kTruth,
                          VoteRule::kReceivedMajority),
            Verdict::kUndecided);
}

TEST(SignedAccept, OneIntactSignedCopySuffices) {
  const KeyRing keys(7);
  // Three tampered copies (invalid MACs) and one intact one.
  const auto ledger = ledger_with(4, 0, 1, {kLie, kLie, kLie, kTruth}, &keys,
                                  {true, true, true, false});
  EXPECT_EQ(signed_accept(ledger, keys, 0, 1, kTruth), Verdict::kCorrect);
}

TEST(SignedAccept, AllTamperedIsUndecided) {
  const KeyRing keys(7);
  const auto ledger =
      ledger_with(4, 0, 1, {kLie, kLie}, &keys, {true, true});
  EXPECT_EQ(signed_accept(ledger, keys, 0, 1, kTruth), Verdict::kUndecided);
}

TEST(SignedAccept, EquivocatingSourceIsDetected) {
  const KeyRing keys(7);
  // Two different values, both validly signed by the origin.
  DeliveryLedger ledger(4, DeliveryLedger::Granularity::kFull);
  for (std::uint64_t v : {kTruth, kLie}) {
    CopyRecord c;
    c.payload = v;
    c.mac = keys.sign(0, v);
    ledger.record(0, 1, c);
  }
  EXPECT_EQ(signed_accept(ledger, keys, 0, 1, kTruth),
            Verdict::kSourceDetected);
}

TEST(SignedAccept, ConsistentLieIsWrong) {
  const KeyRing keys(7);
  DeliveryLedger ledger(4, DeliveryLedger::Granularity::kFull);
  CopyRecord c;
  c.payload = kLie;
  c.mac = keys.sign(0, kLie);
  ledger.record(0, 1, c);
  EXPECT_EQ(signed_accept(ledger, keys, 0, 1, kTruth), Verdict::kWrong);
}

TEST(AssessReliability, SkipsFaultyParticipantsAndAggregates) {
  DeliveryLedger ledger(3, DeliveryLedger::Granularity::kFull);
  // Node 2 is faulty; pairs among {0, 1} get correct unanimous copies.
  for (NodeId o : {0u, 1u}) {
    for (NodeId d : {0u, 1u}) {
      if (o == d) continue;
      for (int i = 0; i < 2; ++i) {
        CopyRecord c;
        c.payload = honest_payload(o);
        ledger.record(o, d, c);
      }
    }
  }
  const auto report = assess_reliability(ledger, nullptr, 2, {2});
  EXPECT_EQ(report.pairs, 2u);
  EXPECT_EQ(report.correct, 2u);
  EXPECT_TRUE(report.all_correct());
}

}  // namespace
}  // namespace ihc
