// The experiment-campaign engine: grid expansion, coordinate-derived
// seeds, thread-pool determinism (jobs=1 == jobs=8, byte-for-byte modulo
// wall-clock), failure isolation, and the report plumbing it relies on
// (Summary::merge, quantile, JSON serialization).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/ihc.hpp"
#include "exp/exp.hpp"
#include "topology/hypercube.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ihc::exp {
namespace {

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.name = "unit";
  spec.description = "unit-test grid";
  spec.axes = {
      {"rho", {0.0, 0.3, 0.6}},
      {"switching", {std::string("vct"), std::string("saf")}},
  };
  spec.replicas = 2;
  return spec;
}

TEST(ExpCampaign, GridExpansionCounts) {
  const CampaignSpec spec = small_spec();
  EXPECT_EQ(spec.trial_count(), 3u * 2u * 2u);
  const auto trials = expand_trials(spec);
  ASSERT_EQ(trials.size(), 12u);

  // Row-major: first axis slowest, replicas innermost.
  EXPECT_EQ(trials[0].id, "rho=0,switching=vct,rep=0");
  EXPECT_EQ(trials[1].id, "rho=0,switching=vct,rep=1");
  EXPECT_EQ(trials[2].id, "rho=0,switching=saf,rep=0");
  EXPECT_EQ(trials[4].id, "rho=0.3,switching=vct,rep=0");
  EXPECT_EQ(trials[11].id, "rho=0.6,switching=saf,rep=1");

  // IDs and indices are unique and sequential.
  std::set<std::string> ids;
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(trials[i].index, i);
    ids.insert(trials[i].id);
  }
  EXPECT_EQ(ids.size(), trials.size());

  // Typed parameter access.
  EXPECT_DOUBLE_EQ(trials[4].get_double("rho"), 0.3);
  EXPECT_EQ(trials[2].get_str("switching"), "saf");
  EXPECT_THROW((void)trials[0].get_int("rho"), ConfigError);
  EXPECT_THROW((void)trials[0].get_double("nope"), ConfigError);
}

TEST(ExpCampaign, SeedsAreCoordinateDerivedAndStable) {
  const auto a = expand_trials(small_spec());
  const auto b = expand_trials(small_spec());
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed) << a[i].id;
    EXPECT_EQ(a[i].seed, derive_seed("unit", a[i].id));
    seeds.insert(a[i].seed);
  }
  EXPECT_EQ(seeds.size(), a.size());  // no collisions on this grid

  // A different campaign name yields a different seed for equal ids.
  EXPECT_NE(derive_seed("unit", a[0].id), derive_seed("other", a[0].id));
  // Streams decorrelate within one trial.
  EXPECT_NE(derive_seed("unit", a[0].id, 0), derive_seed("unit", a[0].id, 1));
}

TEST(ExpCampaign, ValidationRejectsBadSpecs) {
  CampaignSpec spec = small_spec();
  spec.axes.push_back({"rho", {1.0}});
  EXPECT_THROW(expand_trials(spec), ConfigError);

  spec = small_spec();
  spec.axes.push_back({"rep", {1.0}});
  EXPECT_THROW(expand_trials(spec), ConfigError);

  spec = small_spec();
  spec.axes[0].values.clear();
  EXPECT_THROW(expand_trials(spec), ConfigError);

  spec = small_spec();
  spec.replicas = 0;
  EXPECT_THROW(expand_trials(spec), ConfigError);
}

/// A real (but small) simulation campaign on Q_4: the determinism fixture.
Campaign q4_campaign() {
  auto cube = std::make_shared<Hypercube>(4);
  (void)cube->directed_cycles();

  Campaign campaign;
  campaign.spec.name = "q4_unit";
  campaign.spec.description = "small Q_4 IHC grid for the engine tests";
  campaign.spec.axes = {{"rho", {0.0, 0.2, 0.4}}, {"eta", {std::int64_t{2},
                                                           std::int64_t{4}}}};
  campaign.spec.replicas = 2;
  campaign.run = [cube](const Trial& trial, TrialContext& ctx) {
    AtaOptions opt;
    opt.tracer = ctx.tracer;
    opt.metrics = &ctx.metrics;
    opt.net.tau_s = sim_ns(200);
    opt.net.rho = trial.get_double("rho");
    opt.net.seed = trial.seed;
    const AtaResult r = run_ihc(
        *cube,
        IhcOptions{.eta = static_cast<std::uint32_t>(trial.get_int("eta"))},
        opt);
    return std::vector<Metric>{
        {"finish_ps", static_cast<double>(r.finish)},
        {"buffered_relays", static_cast<double>(r.stats.buffered_relays)},
        {"deliveries", static_cast<double>(r.stats.deliveries)},
    };
  };
  return campaign;
}

TEST(ExpRunner, ParallelRunMatchesSerialRunByteForByte) {
  const Campaign campaign = q4_campaign();

  RunOptions serial;
  serial.jobs = 1;
  serial.collect_metrics = true;
  RunOptions parallel;
  parallel.jobs = 8;
  parallel.collect_metrics = true;

  const CampaignResult a = run_campaign(campaign, serial);
  const CampaignResult b = run_campaign(campaign, parallel);
  EXPECT_EQ(a.jobs, 1u);
  EXPECT_EQ(b.jobs, 8u);
  EXPECT_EQ(a.failed_count(), 0u);

  // The timing-free JSON documents - per-trial params, seeds, metrics, the
  // aggregates and the merged simulator-metrics registry (merged in
  // expansion order, not completion order) - must be byte-identical.
  const JsonReportOptions no_timing{.include_timing = false};
  EXPECT_EQ(json_report(a, no_timing), json_report(b, no_timing));
  EXPECT_NE(json_report(a, no_timing), "");
  EXPECT_FALSE(a.metrics.empty());
  EXPECT_EQ(a.metrics.to_json().dump(0), b.metrics.to_json().dump(0));

  // Without collect_metrics (the default), the report carries no
  // simulator-metrics block at all.
  RunOptions plain;
  plain.jobs = 2;
  const CampaignResult c = run_campaign(campaign, plain);
  EXPECT_TRUE(c.metrics.empty());
  EXPECT_EQ(json_report(c, no_timing).find("net.injections"),
            std::string::npos);
}

TEST(ExpRunner, FilterSelectsSubgrid) {
  const Campaign campaign = q4_campaign();
  RunOptions options;
  options.jobs = 2;
  options.filter = "rho=0.2,";
  const CampaignResult result = run_campaign(campaign, options);
  EXPECT_EQ(result.trials.size(), 4u);  // 2 etas x 2 reps
  EXPECT_EQ(result.filtered_out, 8u);
  for (const TrialResult& r : result.trials)
    EXPECT_DOUBLE_EQ(r.trial.get_double("rho"), 0.2);
}

TEST(ExpRunner, ThrowingTrialIsIsolated) {
  Campaign campaign;
  campaign.spec.name = "faulty";
  campaign.spec.axes = {{"k", {std::int64_t{0}, std::int64_t{1},
                               std::int64_t{2}, std::int64_t{3}}}};
  campaign.run = [](const Trial& trial, TrialContext& ctx) {
    ctx.metrics.count("trials_started");
    require(trial.get_int("k") != 2, "k = 2 is broken by design");
    return std::vector<Metric>{
        {"k2", static_cast<double>(trial.get_int("k") * 2)}};
  };

  RunOptions options;
  options.jobs = 4;
  options.collect_metrics = true;
  const CampaignResult result = run_campaign(campaign, options);
  ASSERT_EQ(result.trials.size(), 4u);
  EXPECT_EQ(result.failed_count(), 1u);

  // The failed trial bumped its private registry before throwing, but only
  // successful trials merge into the campaign-level registry.
  EXPECT_EQ(result.metrics.counter("trials_started"), 3);
  for (const TrialResult& r : result.trials) {
    if (r.trial.get_int("k") == 2) {
      EXPECT_FALSE(r.ok);
      EXPECT_NE(r.error.find("broken by design"), std::string::npos);
      EXPECT_TRUE(r.metrics.empty());
    } else {
      EXPECT_TRUE(r.ok) << r.error;
      EXPECT_DOUBLE_EQ(r.metric("k2"),
                       static_cast<double>(r.trial.get_int("k") * 2));
    }
  }

  // Failed trials stay out of the aggregates but in the report.
  const auto aggregates = aggregate_metrics(result);
  ASSERT_EQ(aggregates.size(), 1u);
  EXPECT_EQ(aggregates[0].summary.count(), 3u);
  const std::string json = json_report(result);
  EXPECT_NE(json.find("\"failed\": 1"), std::string::npos);
  EXPECT_NE(json.find("broken by design"), std::string::npos);
}

TEST(ExpReport, AggregatesAndQuantiles) {
  Campaign campaign;
  campaign.spec.name = "agg";
  campaign.spec.axes = {{"v", {1.0, 2.0, 3.0, 4.0}}};
  campaign.run = [](const Trial& trial, TrialContext&) {
    return std::vector<Metric>{{"v", trial.get_double("v")}};
  };
  const CampaignResult result = run_campaign(campaign);
  const auto aggregates = aggregate_metrics(result);
  ASSERT_EQ(aggregates.size(), 1u);
  EXPECT_EQ(aggregates[0].name, "v");
  EXPECT_EQ(aggregates[0].summary.count(), 4u);
  EXPECT_DOUBLE_EQ(aggregates[0].summary.mean(), 2.5);
  EXPECT_DOUBLE_EQ(aggregates[0].p25, 1.0);
  EXPECT_DOUBLE_EQ(aggregates[0].p50, 2.0);
  EXPECT_DOUBLE_EQ(aggregates[0].p99, 4.0);

  const std::string ascii = ascii_report(result);
  EXPECT_NE(ascii.find("campaign 'agg'"), std::string::npos);
  EXPECT_NE(ascii.find("aggregates"), std::string::npos);
}

TEST(ExpBuiltins, RegistryListsAndInstantiates) {
  const auto& infos = builtin_campaigns();
  ASSERT_GE(infos.size(), 3u);
  std::set<std::string> names;
  for (const CampaignInfo& info : infos) {
    names.insert(info.name);
    EXPECT_GT(info.trial_count, 0u);
    EXPECT_FALSE(info.description.empty());
  }
  EXPECT_TRUE(names.contains("rho_sweep"));
  EXPECT_TRUE(names.contains("fault_tolerance"));
  EXPECT_TRUE(names.contains("duty_cycle"));
  EXPECT_THROW((void)make_builtin_campaign("nope"), ConfigError);

  // The built-in specs expand deterministically.
  const Campaign c = make_builtin_campaign("rho_sweep");
  EXPECT_EQ(expand_trials(c.spec).size(), c.spec.trial_count());
}

}  // namespace
}  // namespace ihc::exp

namespace ihc {
namespace {

TEST(SummaryMerge, MatchesSinglePass) {
  const std::vector<double> xs = {3.0, 1.0, 4.0, 1.5, 9.2, 2.6, 5.3, 5.0};
  Summary whole;
  for (const double x : xs) whole.add(x);

  Summary left, right, merged;
  for (std::size_t i = 0; i < xs.size(); ++i)
    (i < 3 ? left : right).add(xs[i]);
  merged.merge(left);
  merged.merge(right);

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_DOUBLE_EQ(merged.mean(), whole.mean());
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  EXPECT_DOUBLE_EQ(merged.total(), whole.total());

  Summary empty;
  merged.merge(empty);  // no-op
  EXPECT_EQ(merged.count(), whole.count());
}

TEST(Quantile, NearestRank) {
  // An empty sample has no quantile: NaN, not a fabricated zero (the
  // workload engine relies on the sentinel to mark starved windows).
  EXPECT_TRUE(std::isnan(quantile({}, 0.5)));
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.5), 7.0);
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
}

TEST(JsonWriter, DeterministicSerialization) {
  Json doc = Json::object();
  doc.set("s", "a\"b\\c\n\x01");
  doc.set("i", std::int64_t{-3});
  doc.set("u", std::uint64_t{18446744073709551615ULL});
  doc.set("d", 0.3);
  doc.set("b", true);
  doc.set("n", nullptr);
  doc.set("arr", Json::array().push(1.5).push("x"));
  doc.set("empty", Json::object());

  const std::string flat = doc.dump(0);
  EXPECT_EQ(flat,
            "{\"s\": \"a\\\"b\\\\c\\n\\u0001\",\"i\": -3,"
            "\"u\": 18446744073709551615,\"d\": 0.3,\"b\": true,"
            "\"n\": null,\"arr\": [1.5,\"x\"],\"empty\": {}}");
  EXPECT_EQ(doc.dump(0), flat);  // stable across serializations

  // Shortest round-trip double formatting.
  EXPECT_EQ(json_number(0.1), "0.1");
  EXPECT_EQ(json_number(1e300), "1e+300");
}

}  // namespace
}  // namespace ihc
