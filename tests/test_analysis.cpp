// Tests for the closed-form models, including the paper's headline numbers.
#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.hpp"

namespace ihc {
namespace {

NetworkParams paper_params() {
  NetworkParams p;
  p.alpha = sim_ns(20);  // Dally's 20 ns cut-through figure [8]
  p.tau_s = sim_ms(1) / 2;  // the paper's "conservative" 0.5 ms
  p.mu = 2;
  return p;
}

TEST(Models, SafOpIsStartupPlusTransmission) {
  const NetworkParams p = paper_params();
  EXPECT_DOUBLE_EQ(model::saf_op(p),
                   static_cast<double>(p.tau_s) + 2.0 * 20000.0);
}

TEST(Models, IhcDedicatedFormula) {
  NetworkParams p;
  p.alpha = 10;
  p.tau_s = 1000;
  p.mu = 3;
  // eta (tau_S + mu a + (N-2) a) with N=10, eta=2:
  EXPECT_DOUBLE_EQ(model::ihc_dedicated(10, 2, p),
                   2.0 * (1000 + 30 + 80));
}

TEST(Models, OverlappedIhcSavesMuMinusOneSquaredAlpha) {
  NetworkParams p;
  p.alpha = 10;
  p.tau_s = 1000;
  p.mu = 3;
  EXPECT_DOUBLE_EQ(model::ihc_dedicated_overlapped(10, p),
                   model::ihc_dedicated(10, 3, p) - 4 * 10);
}

TEST(Models, WorstCaseFormulas) {
  NetworkParams p;
  p.alpha = 10;
  p.tau_s = 100;
  p.mu = 2;
  p.queueing_delay = 50;
  EXPECT_DOUBLE_EQ(model::ihc_worst(16, 2, p), 2.0 * 15 * (100 + 20 + 50));
  EXPECT_DOUBLE_EQ(model::vrs_ata_worst(16, p), 16.0 * 5 * (100 + 20 + 50));
  EXPECT_DOUBLE_EQ(model::frs_worst(16, p), 5.0 * 150 + 15.0 * 20);
}

TEST(Models, MeshFormulasUseTheSquareRoots) {
  NetworkParams p;
  p.alpha = 10;
  p.tau_s = 100;
  p.mu = 2;
  // KS on H_4: N = 37, sqrt((N-1)/3) = sqrt(12).
  const double ks = model::ks_ata_dedicated(37, p);
  EXPECT_NEAR(ks, 37 * (3 * 120 + (2 * std::sqrt(12.0) - 5) * 10), 1e-9);
  const double vsq = model::vsq_ata_dedicated(25, p);
  EXPECT_NEAR(vsq, 25 * (3 * 120 + (2 * 5 - 6) * 10), 1e-9);
}

/// Section VI-A: "over 68.7 billion packets can be sent and received" on a
/// 64K-node Q_16.
TEST(PaperHeadline, TotalPacketCountOnQ16) {
  const std::uint64_t packets = model::total_packets(65536, 16);
  EXPECT_EQ(packets, 68'718'428'160ull);
  EXPECT_GT(packets, 68'700'000'000ull);  // "over 68.7 billion"
}

/// Section VI-A: with tau_S = 0.5 ms and alpha = 20 ns, the optimal
/// (eta = mu = 1) time on Q_16 is 1.81 ms - the paper's headline number.
TEST(PaperHeadline, Q16OptimalTimeIs1Point81Ms) {
  const NetworkParams p = paper_params();
  const double t = model::optimal_lower_bound(65536, p);
  EXPECT_NEAR(t / 1e9, 1.81, 0.005);  // ms
}

/// Section VI-A also quotes "2 tau_S + 0.02 ms" for Q_10 and
/// "2 tau_S + 1.31 ms" for Q_16: the alpha-dependent part of those
/// figures equals N*alpha (not the 2N*alpha of the eta = mu = 2 formula) -
/// a paper-internal factor-2 slip we document in EXPERIMENTS.md.
TEST(PaperHeadline, QuotedAlphaTermsMatchNAlpha) {
  const NetworkParams p = paper_params();
  EXPECT_NEAR(1024 * static_cast<double>(p.alpha) / 1e9, 0.02, 0.001);
  EXPECT_NEAR(65536 * static_cast<double>(p.alpha) / 1e9, 1.31, 0.001);
  // The Table III formula itself gives 2 tau_S + 2 N alpha:
  const double table3 = model::ihc_dedicated(65536, 2, p);
  EXPECT_NEAR((table3 - 2 * static_cast<double>(p.tau_s)) / 1e9, 2.62,
              0.01);
}

/// Theorem 4: IHC with eta = mu = 1 achieves exactly the lower bound.
TEST(Theorem4, IhcWithEtaMuOneIsOptimal) {
  NetworkParams p;
  p.alpha = sim_ns(20);
  p.tau_s = sim_us(5);
  p.mu = 1;
  for (std::uint64_t n : {16ull, 64ull, 1024ull}) {
    // eta(tau_s + mu a + (N-2) a) with eta=mu=1 == tau_s + (N-1) a.
    EXPECT_DOUBLE_EQ(model::ihc_dedicated(n, 1, p),
                     model::optimal_lower_bound(n, p))
        << n;
  }
}

/// Table II ordering: IHC beats every alternative once
/// eta <= min(log2 N - 1, ...) - check at Q_8 with eta = 2.
TEST(TableTwo, IhcWinsInDedicatedMode) {
  NetworkParams p;
  p.alpha = sim_ns(20);
  p.tau_s = sim_us(5);
  p.mu = 2;
  const std::uint64_t n = 256;
  const double ihc = model::ihc_dedicated(n, 2, p);
  EXPECT_LT(ihc, model::vrs_ata_dedicated(n, p));
  EXPECT_LT(ihc, model::ks_ata_dedicated(n, p));
  EXPECT_LT(ihc, model::vsq_ata_dedicated(n, p));
  EXPECT_LT(ihc, model::frs_dedicated(n, p));
}

/// Section VI-A dominance conditions, checked against the models
/// themselves across a size sweep: whenever eta is within the stated
/// bound, IHC beats every cut-through alternative; whenever eta = mu and
/// tau_S >= mu^2 alpha / 2, IHC also beats FRS.
TEST(SectionVIA, DominanceConditionsAreConsistentWithTheModels) {
  NetworkParams p;
  p.alpha = sim_ns(20);
  p.tau_s = sim_us(5);
  for (const std::uint64_t n : {64ull, 256ull, 1024ull, 4096ull}) {
    const double bound = model::ihc_vs_cut_through_eta_bound(n);
    EXPECT_GT(bound, 1.0) << n;
    for (std::uint32_t eta = 1; eta <= static_cast<std::uint32_t>(bound);
         ++eta) {
      const double ihc = model::ihc_dedicated(n, eta, p);
      EXPECT_LT(ihc, model::vrs_ata_dedicated(n, p)) << n << " " << eta;
      EXPECT_LT(ihc, model::ks_ata_dedicated(n, p)) << n << " " << eta;
      EXPECT_LT(ihc, model::vsq_ata_dedicated(n, p)) << n << " " << eta;
    }
    // eta = mu with the startup condition satisfied -> IHC beats FRS.
    for (std::uint32_t mu : {1u, 2u, 4u}) {
      NetworkParams q = p;
      q.mu = mu;
      if (!model::ihc_beats_frs_condition(q)) continue;
      EXPECT_LT(model::ihc_dedicated(n, mu, q), model::frs_dedicated(n, q))
          << n << " mu=" << mu;
    }
  }
}

TEST(SectionVIA, FrsConditionBoundary) {
  NetworkParams p;
  p.alpha = sim_ns(20);
  p.mu = 10;
  p.tau_s = sim_ns(1000);  // 1000 >= 0.5 * 100 * 20 = 1000: boundary holds
  EXPECT_TRUE(model::ihc_beats_frs_condition(p));
  p.tau_s = sim_ns(999);
  EXPECT_FALSE(model::ihc_beats_frs_condition(p));
}

/// Table IV ordering: FRS wins in the worst case (log factor vs N factor).
TEST(TableFour, FrsWinsUnderHeavyLoad) {
  NetworkParams p;
  p.alpha = sim_ns(20);
  p.tau_s = sim_us(5);
  p.mu = 2;
  p.queueing_delay = sim_us(20);
  const std::uint64_t n = 256;
  const double frs = model::frs_worst(n, p);
  EXPECT_LT(frs, model::ihc_worst(n, 2, p));
  EXPECT_LT(frs, model::vrs_ata_worst(n, p));
  EXPECT_LT(frs, model::vsq_ata_worst(n, p));
  // And among cut-through algorithms, IHC has the best worst case.
  EXPECT_LT(model::ihc_worst(n, 2, p), model::vrs_ata_worst(n, p));
  EXPECT_LT(model::ihc_worst(n, 2, p), model::vsq_ata_worst(n, p));
}

}  // namespace
}  // namespace ihc
