// Tests for the Section-IV operational variants of the IHC algorithm:
// single-link-per-node operation (gamma sequential invocations) and the
// reduced-reliability k < gamma cycle subset.
#include <gtest/gtest.h>

#include <set>

#include "core/analysis.hpp"
#include "core/ihc.hpp"
#include "core/verify.hpp"
#include "topology/hypercube.hpp"
#include "topology/square_mesh.hpp"
#include "util/error.hpp"

namespace ihc {
namespace {

AtaOptions base_options() {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  return opt;
}

TEST(IhcSingleLink, TakesGammaTimesTheAllLinksTime) {
  const Hypercube q(4);
  const AtaOptions opt = base_options();
  IhcOptions seq{.eta = 2, .concurrency = LinkConcurrency::kSingleLinkPerNode};
  const auto result = run_ihc(q, seq, opt);
  EXPECT_EQ(result.stats.buffered_relays, 0u);
  const double expected =
      model::ihc_single_link(q.node_count(), 2, q.gamma(), opt.net);
  EXPECT_DOUBLE_EQ(static_cast<double>(result.finish), expected);
  // Delivery is unchanged: gamma copies everywhere.
  EXPECT_TRUE(result.ledger.all_pairs_have(q.gamma()));
}

TEST(IhcSingleLink, NodesNeverDriveTwoTransmittersAtOnce) {
  // In single-link mode, at most one flow per node is in flight per
  // invocation, so the finish time of gamma sequential invocations equals
  // gamma times one invocation's span - verified above - and each
  // invocation uses exactly one outgoing link per node.
  const SquareMesh sq(4);
  const auto& cycles = sq.directed_cycles();
  for (const auto& hc : cycles) {
    std::set<std::pair<NodeId, NodeId>> links;
    for (NodeId v = 0; v < sq.node_count(); ++v)
      links.insert({v, hc.next(v)});
    // One outgoing link per node.
    std::set<NodeId> sources;
    for (const auto& [from, to] : links) sources.insert(from);
    EXPECT_EQ(sources.size(), sq.node_count());
    EXPECT_EQ(links.size(), sq.node_count());
  }
}

TEST(IhcCycleSubset, FewerCyclesDeliverFewerCopies) {
  const Hypercube q(4);  // gamma = 4
  const AtaOptions opt = base_options();
  for (std::uint32_t k : {1u, 2u, 3u}) {
    const auto result =
        run_ihc(q, IhcOptions{.eta = 2, .cycles_to_use = k}, opt);
    const NodeId n = q.node_count();
    for (NodeId o = 0; o < n; ++o) {
      for (NodeId d = 0; d < n; ++d) {
        if (o != d) {
          ASSERT_EQ(result.ledger.copies(o, d), k);
        }
      }
    }
    // All-links mode: the subset finishes in the same wall time as the
    // full run (cycles are link-disjoint and run in parallel).
    EXPECT_DOUBLE_EQ(static_cast<double>(result.finish),
                     model::ihc_dedicated(n, 2, opt.net));
  }
}

TEST(IhcCycleSubset, SingleLinkModeTradesReliabilityForTime) {
  // Section IV: "it is a simple matter to reduce the execution time (and
  // reliability) ... by using k < gamma sequential invocations."
  const Hypercube q(4);
  const AtaOptions opt = base_options();
  IhcOptions two{.eta = 2,
                 .concurrency = LinkConcurrency::kSingleLinkPerNode,
                 .cycles_to_use = 2};
  IhcOptions four{.eta = 2,
                  .concurrency = LinkConcurrency::kSingleLinkPerNode,
                  .cycles_to_use = 4};
  const auto r2 = run_ihc(q, two, opt);
  const auto r4 = run_ihc(q, four, opt);
  EXPECT_EQ(2 * r2.finish, r4.finish);
  EXPECT_TRUE(r2.ledger.all_pairs_have(2));
  EXPECT_FALSE(r2.ledger.all_pairs_have(3));
  EXPECT_TRUE(r4.ledger.all_pairs_have(4));
}

TEST(IhcCycleSubset, SubsetStillUsesOppositeDirectionPairs) {
  // cycles_to_use = 2 selects both directions of the first undirected HC:
  // the two copies arrive over internally node-disjoint routes, so one
  // silent fault cannot starve a pair completely.
  const Hypercube q(4);
  AtaOptions opt = base_options();
  opt.granularity = DeliveryLedger::Granularity::kFull;
  FaultPlan plan(3);
  plan.add(6, FaultMode::kSilent);
  opt.faults = &plan;
  const auto result =
      run_ihc(q, IhcOptions{.eta = 2, .cycles_to_use = 2}, opt);
  for (NodeId o = 0; o < q.node_count(); ++o) {
    for (NodeId d = 0; d < q.node_count(); ++d) {
      if (o == d || o == 6 || d == 6) continue;
      EXPECT_GE(result.ledger.copies(o, d), 1u)
          << "(" << o << "," << d << ")";
    }
  }
}

TEST(IhcCycleSubset, RejectsOutOfRangeK) {
  const Hypercube q(4);
  EXPECT_THROW((void)run_ihc(q, IhcOptions{.eta = 2, .cycles_to_use = 5},
                             base_options()),
               ConfigError);
}

TEST(IhcPacketization, PacketCountIsCeilOfUnitsOverMu) {
  EXPECT_EQ(ihc_packet_count(0, 2), 1u);
  EXPECT_EQ(ihc_packet_count(2, 2), 1u);
  EXPECT_EQ(ihc_packet_count(3, 2), 2u);
  EXPECT_EQ(ihc_packet_count(7, 2), 4u);
  EXPECT_EQ(ihc_packet_count(8, 4), 2u);
}

TEST(IhcPacketization, LongMessagesRunMultipleRoundsExactly) {
  const Hypercube q(4);
  const AtaOptions opt = base_options();
  IhcOptions long_msg{.eta = 2, .message_units = 7};  // 4 packets at mu=2
  const auto result = run_ihc(q, long_msg, opt);
  EXPECT_EQ(result.stats.buffered_relays, 0u);
  const double expected =
      model::ihc_message_dedicated(q.node_count(), 2, 7, opt.net);
  EXPECT_DOUBLE_EQ(static_cast<double>(result.finish), expected);
  // Each round delivers gamma copies, so a pair sees 4 * gamma in all.
  EXPECT_TRUE(result.ledger.all_pairs_have(4 * q.gamma()));
}

TEST(IhcPacketization, MessageTimeScalesLinearlyInLength) {
  const Hypercube q(4);
  const AtaOptions opt = base_options();
  const auto one = run_ihc(q, IhcOptions{.eta = 2, .message_units = 2}, opt);
  const auto five =
      run_ihc(q, IhcOptions{.eta = 2, .message_units = 10}, opt);
  EXPECT_EQ(5 * one.finish, five.finish);
}

TEST(IhcVariants, AlgorithmNameEncodesTheConfiguration) {
  const Hypercube q(4);
  const auto r = run_ihc(
      q,
      IhcOptions{.eta = 2,
                 .concurrency = LinkConcurrency::kSingleLinkPerNode,
                 .cycles_to_use = 3},
      base_options());
  EXPECT_NE(r.algorithm.find("single-link"), std::string::npos);
  EXPECT_NE(r.algorithm.find("k=3"), std::string::npos);
}

}  // namespace
}  // namespace ihc
