// The central combinatorial property of the paper: the IHC schedule is
// contention-free and delivers gamma copies of every message to every node.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include <cctype>
#include <memory>

#include "sched/ihc_schedule.hpp"
#include "topology/circulant.hpp"
#include "topology/hex_mesh.hpp"
#include "topology/hypercube.hpp"
#include "topology/square_mesh.hpp"

namespace ihc {
namespace {

struct Case {
  std::string name;
  std::shared_ptr<Topology> topo;
  std::uint32_t eta;
};

std::vector<Case> cases() {
  std::vector<Case> out;
  const auto add = [&out](std::shared_ptr<Topology> t) {
    for (std::uint32_t eta : {1u, 2u, 3u, 4u}) {
      if (eta > t->node_count()) continue;
      out.push_back({t->name() + "_eta" + std::to_string(eta), t, eta});
    }
  };
  add(std::make_shared<Hypercube>(3));
  add(std::make_shared<Hypercube>(4));
  add(std::make_shared<Hypercube>(5));
  add(std::make_shared<Hypercube>(6));
  add(std::make_shared<SquareMesh>(4));
  add(std::make_shared<SquareMesh>(5));
  add(std::make_shared<HexMesh>(2));
  add(std::make_shared<HexMesh>(3));
  add(std::make_shared<Circulant>(15, std::vector<NodeId>{1, 2, 4}));
  return out;
}

class IhcScheduleProperty : public ::testing::TestWithParam<Case> {};

TEST_P(IhcScheduleProperty, ContentionFreeAndFullyDelivering) {
  const auto& [name, topo, eta] = GetParam();
  const IhcSchedule schedule(*topo, eta);
  const auto check = check_schedule(topo->graph(), schedule);

  // No two packets ever contend for the same link at any given time.
  EXPECT_EQ(check.link_conflicts, 0u);

  // Every node receives exactly gamma copies of every other node's
  // message (one per directed Hamiltonian cycle).
  const NodeId n = topo->node_count();
  for (NodeId o = 0; o < n; ++o) {
    for (NodeId d = 0; d < n; ++d) {
      if (o == d) continue;
      ASSERT_EQ(check.copies[static_cast<std::size_t>(o) * n + d],
                topo->gamma())
          << "pair (" << o << "," << d << ")";
    }
  }

  // Total sends = gamma * N * (N-1): the paper's packet count.
  EXPECT_EQ(check.total_sends,
            static_cast<std::uint64_t>(topo->gamma()) * n * (n - 1));

  // eta stages of N-1 hops each.
  EXPECT_EQ(schedule.step_count(),
            static_cast<std::uint64_t>(eta) * (n - 1));
}

TEST_P(IhcScheduleProperty, InitiatorsAreSpacedEtaApart) {
  const auto& [name, topo, eta] = GetParam();
  const IhcSchedule schedule(*topo, eta);
  for (std::size_t j = 0; j < topo->directed_cycles().size(); ++j) {
    const auto& hc = topo->directed_cycles()[j];
    std::size_t total = 0;
    for (std::uint32_t stage = 0; stage < eta; ++stage) {
      const auto inits = schedule.initiators(stage, j);
      total += inits.size();
      for (const NodeId v : inits)
        EXPECT_EQ(hc.id(v) % eta, stage);
    }
    EXPECT_EQ(total, topo->node_count());  // every node initiates once
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, IhcScheduleProperty,
                         ::testing::ValuesIn(cases()),
                         [](const auto& param) {
                           std::string s = param.param.name;
                           for (char& c : s)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return s;
                         });

TEST(IhcSchedule, RejectsInvalidEta) {
  const Hypercube q(3);
  EXPECT_THROW(IhcSchedule(q, 0), ConfigError);
  EXPECT_THROW(IhcSchedule(q, 9), ConfigError);
}

}  // namespace
}  // namespace ihc
