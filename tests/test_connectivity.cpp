// Tests for max-flow based connectivity and Menger path extraction.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include <set>

#include "graph/connectivity.hpp"
#include "graph/graph.hpp"
#include "topology/hypercube.hpp"

namespace ihc {
namespace {

TEST(DisjointPaths, CycleHasTwo) {
  const Graph c6 = make_cycle_graph(6);
  EXPECT_EQ(max_node_disjoint_paths(c6, 0, 3), 2u);
}

TEST(DisjointPaths, CompleteGraphHasNMinusOne) {
  const Graph k5 = make_complete_graph(5);
  EXPECT_EQ(max_node_disjoint_paths(k5, 0, 4), 4u);
}

TEST(DisjointPaths, HypercubeMatchesDimension) {
  const Graph q4 = make_hypercube_graph(4);
  EXPECT_EQ(max_node_disjoint_paths(q4, 0, 15), 4u);
  EXPECT_EQ(max_node_disjoint_paths(q4, 0, 1), 4u);  // adjacent pair
}

TEST(DisjointPaths, ExtractedPathsAreValidAndInternallyDisjoint) {
  const Graph q3 = make_hypercube_graph(3);
  const auto paths = node_disjoint_paths(q3, 0, 7);
  ASSERT_EQ(paths.size(), 3u);
  std::set<NodeId> interior;
  for (const auto& p : paths) {
    ASSERT_GE(p.size(), 2u);
    EXPECT_EQ(p.front(), 0u);
    EXPECT_EQ(p.back(), 7u);
    for (std::size_t i = 0; i + 1 < p.size(); ++i)
      EXPECT_TRUE(q3.has_edge(p[i], p[i + 1]));
    for (std::size_t i = 1; i + 1 < p.size(); ++i) {
      EXPECT_TRUE(interior.insert(p[i]).second)
          << "interior node " << p[i] << " reused";
    }
  }
}

TEST(DisjointPaths, RejectsInvalidPairs) {
  const Graph c4 = make_cycle_graph(4);
  EXPECT_THROW((void)max_node_disjoint_paths(c4, 0, 0), ConfigError);
  EXPECT_THROW((void)max_node_disjoint_paths(c4, 0, 9), ConfigError);
}

TEST(VertexConnectivity, KnownSmallGraphs) {
  EXPECT_EQ(vertex_connectivity(make_cycle_graph(7)), 2u);
  EXPECT_EQ(vertex_connectivity(make_complete_graph(5)), 4u);
  EXPECT_EQ(vertex_connectivity(make_hypercube_graph(3)), 3u);
  // A path graph has a cut vertex.
  EXPECT_EQ(vertex_connectivity(Graph(3, {{0, 1}, {1, 2}})), 1u);
  EXPECT_EQ(vertex_connectivity(Graph(4, {{0, 1}, {2, 3}})), 0u);
}

TEST(VertexConnectivity, DisconnectedAndTrivialGraphs) {
  EXPECT_EQ(vertex_connectivity(Graph(1, {})), 0u);
  EXPECT_EQ(vertex_connectivity(Graph(2, {{0, 1}})), 1u);  // complete K_2
}

TEST(SampledConnectivity, AcceptsAndRejectsCorrectly) {
  SplitMix64 rng(1);
  const Graph q4 = make_hypercube_graph(4);
  EXPECT_TRUE(connectivity_at_least_sampled(q4, 4, 16, rng));
  EXPECT_FALSE(connectivity_at_least_sampled(q4, 5, 16, rng));
}

}  // namespace
}  // namespace ihc
