// Tests for Cycle and DirectedCycle (the paper's next/prev/ID operations).
#include <gtest/gtest.h>

#include "graph/cycle.hpp"
#include "graph/graph.hpp"
#include "util/error.hpp"

namespace ihc {
namespace {

TEST(Cycle, RejectsDegenerateInput) {
  EXPECT_THROW(Cycle({0, 1}), ConfigError);
  EXPECT_THROW(Cycle({0, 1, 1}), ConfigError);
}

TEST(Cycle, ValidatesAgainstGraph) {
  const Graph c4 = make_cycle_graph(4);
  EXPECT_TRUE(Cycle({0, 1, 2, 3}).lies_in(c4));
  EXPECT_TRUE(Cycle({0, 1, 2, 3}).is_hamiltonian(c4));
  EXPECT_FALSE(Cycle({0, 2, 1, 3}).lies_in(c4));  // 0-2 is a chord
  EXPECT_FALSE(Cycle({0, 1, 2}).is_hamiltonian(c4));
}

TEST(Cycle, EdgeIdsFollowTraversalOrder) {
  const Graph c4 = make_cycle_graph(4);
  const auto ids = Cycle({0, 1, 2, 3}).edge_ids(c4);
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids[0], c4.find_edge(0, 1));
  EXPECT_EQ(ids[3], c4.find_edge(3, 0));
}

TEST(Cycle, EdgeIdsRejectNonCycleOfGraph) {
  const Graph c4 = make_cycle_graph(4);
  EXPECT_THROW((void)Cycle({0, 2, 1, 3}).edge_ids(c4), InvariantError);
}

TEST(DirectedCycle, ForwardTraversal) {
  const Cycle c({2, 0, 3, 1});
  const DirectedCycle d(c, /*reversed=*/false, 4);
  EXPECT_EQ(d.length(), 4u);
  EXPECT_EQ(d.at(0), 2u);  // N_0 = first vertex
  EXPECT_EQ(d.next(2), 0u);
  EXPECT_EQ(d.next(1), 2u);  // wraps
  EXPECT_EQ(d.prev(2), 1u);
  EXPECT_EQ(d.id(2), 0u);
  EXPECT_EQ(d.id(3), 2u);
}

TEST(DirectedCycle, ReversedTraversalKeepsTheReferenceNode) {
  const Cycle c({2, 0, 3, 1});
  const DirectedCycle f(c, false, 4);
  const DirectedCycle r(c, true, 4);
  // Same N_0 in both directions.
  EXPECT_EQ(f.at(0), r.at(0));
  // next in one direction is prev in the other.
  for (NodeId v : c.nodes()) {
    EXPECT_EQ(f.next(v), r.prev(v));
    EXPECT_EQ(f.prev(v), r.next(v));
  }
}

TEST(DirectedCycle, ContainsAndOutOfCycleQueries) {
  const Cycle c({0, 1, 2});
  const DirectedCycle d(c, false, 5);
  EXPECT_TRUE(d.contains(1));
  EXPECT_FALSE(d.contains(4));
  EXPECT_THROW((void)d.next(4), InvariantError);
}

TEST(DirectedCycle, IdIsDistanceFromReference) {
  // The ID_j values drive the IHC stage assignment; verify that walking
  // next() from N_0 visits nodes in increasing ID order.
  const Cycle c({5, 3, 1, 4, 0, 2});
  const DirectedCycle d(c, false, 6);
  NodeId v = d.at(0);
  for (std::size_t i = 0; i < d.length(); ++i) {
    EXPECT_EQ(d.id(v), i);
    v = d.next(v);
  }
  EXPECT_EQ(v, d.at(0));
}

}  // namespace
}  // namespace ihc
