// Tests for the wire packet format and message reassembly - the
// "practical issues" layer (packet format, message reconstruction,
// control) the paper's conclusion defers.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "core/reassembly.hpp"
#include "sim/packet_format.hpp"

namespace ihc {
namespace {

TEST(PacketFormat, EncodeDecodeRoundTrip) {
  for (const PacketHeader h :
       {PacketHeader{0, 0, 0, 1, PacketKind::kData},
        PacketHeader{65535, 63, 4094, 4095, PacketKind::kControl},
        PacketHeader{1024, 9, 7, 16, PacketKind::kData}}) {
    const std::uint64_t word = encode_header(h);
    const auto decoded = decode_header(word);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, h);
  }
}

TEST(PacketFormat, FieldWidthValidation) {
  EXPECT_THROW((void)encode_header({70000, 0, 0, 1, PacketKind::kData}),
               ConfigError);
  EXPECT_THROW((void)encode_header({0, 64, 0, 1, PacketKind::kData}),
               ConfigError);
  EXPECT_THROW((void)encode_header({0, 0, 5, 4, PacketKind::kData}),
               ConfigError);  // seq >= total
  EXPECT_THROW((void)encode_header({0, 0, 0, 0, PacketKind::kData}),
               ConfigError);  // zero total
}

TEST(PacketFormat, CrcCatchesEverySingleBitFlip) {
  const std::uint64_t word =
      encode_header({1234, 5, 6, 10, PacketKind::kData});
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t damaged = word ^ (1ull << bit);
    EXPECT_FALSE(decode_header(damaged).has_value()) << "bit " << bit;
  }
}

TEST(PacketFormat, Crc16KnownVector) {
  // CRC-16/CCITT-FALSE("123456789") == 0x29B1 (standard check value).
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5',
                                 '6', '7', '8', '9'};
  EXPECT_EQ(crc16_ccitt(digits, sizeof digits), 0x29B1);
}

TEST(Reassembly, InOrderAndOutOfOrder) {
  MessageReassembler r;
  const std::uint16_t total = 4;
  // Out of order, with duplicates.
  for (const int seq_int : {2, 0, 3, 0, 1, 2}) {
    const auto seq = static_cast<std::uint16_t>(seq_int);
    EXPECT_TRUE(r.feed(PacketHeader{7, 0, seq, total, PacketKind::kData},
                       0x100ull + seq));
  }
  EXPECT_EQ(r.state(7), MessageState::kComplete);
  const auto msg = r.message(7);
  ASSERT_EQ(msg.size(), 4u);
  for (std::uint16_t seq = 0; seq < 4; ++seq)
    EXPECT_EQ(msg[seq], 0x100ull + seq);
}

TEST(Reassembly, ReportsMissingFragments) {
  MessageReassembler r;
  r.feed(PacketHeader{3, 0, 0, 5, PacketKind::kData}, 1);
  r.feed(PacketHeader{3, 0, 3, 5, PacketKind::kData}, 2);
  EXPECT_EQ(r.state(3), MessageState::kIncomplete);
  EXPECT_EQ(r.missing(3), (std::vector<std::uint16_t>{1, 2, 4}));
  EXPECT_TRUE(r.message(3).empty());
}

TEST(Reassembly, DisagreeingDuplicatesMarkInconsistent) {
  MessageReassembler r;
  EXPECT_TRUE(r.feed(PacketHeader{3, 0, 0, 2, PacketKind::kData}, 0xAA));
  EXPECT_FALSE(r.feed(PacketHeader{3, 1, 0, 2, PacketKind::kData}, 0xBB));
  EXPECT_EQ(r.state(3), MessageState::kInconsistent);
}

TEST(Reassembly, ConflictingTotalsMarkInconsistent) {
  MessageReassembler r;
  EXPECT_TRUE(r.feed(PacketHeader{3, 0, 0, 2, PacketKind::kData}, 1));
  EXPECT_FALSE(r.feed(PacketHeader{3, 0, 1, 3, PacketKind::kData}, 2));
  EXPECT_EQ(r.state(3), MessageState::kInconsistent);
}

TEST(Reassembly, WireFeedDropsDamagedHeadersSilently) {
  MessageReassembler r;
  const std::uint64_t good =
      encode_header({9, 0, 0, 1, PacketKind::kData});
  EXPECT_FALSE(r.feed_wire(good ^ (1ull << 40), 42));  // damaged: dropped
  EXPECT_EQ(r.state(9), MessageState::kIncomplete);
  EXPECT_TRUE(r.feed_wire(good, 42));
  EXPECT_EQ(r.state(9), MessageState::kComplete);
  EXPECT_EQ(r.message(9), std::vector<std::uint64_t>{42});
}

TEST(Reassembly, TracksMultipleOriginsIndependently) {
  MessageReassembler r;
  r.feed(PacketHeader{1, 0, 0, 1, PacketKind::kData}, 11);
  r.feed(PacketHeader{2, 0, 0, 2, PacketKind::kData}, 22);
  EXPECT_EQ(r.state(1), MessageState::kComplete);
  EXPECT_EQ(r.state(2), MessageState::kIncomplete);
  EXPECT_EQ(r.origins(), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(r.state(99), MessageState::kIncomplete);  // unknown origin
}

}  // namespace
}  // namespace ihc
