// Unit tests for the CSR graph structure and its directed-link id space.
#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "util/error.hpp"

namespace ihc {
namespace {

Graph triangle() { return Graph(3, {{0, 1}, {1, 2}, {0, 2}}); }

TEST(Graph, BasicCounts) {
  const Graph g = triangle();
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.link_count(), 6u);
}

TEST(Graph, RejectsSelfLoops) {
  EXPECT_THROW(Graph(3, {{0, 0}}), ConfigError);
}

TEST(Graph, RejectsDuplicateEdgesInEitherOrientation) {
  EXPECT_THROW(Graph(3, {{0, 1}, {1, 0}}), ConfigError);
  EXPECT_THROW(Graph(3, {{0, 1}, {0, 1}}), ConfigError);
}

TEST(Graph, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(Graph(3, {{0, 3}}), ConfigError);
}

TEST(Graph, NeighborsAreSortedAndCarryEdgeIds) {
  const Graph g = triangle();
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0].neighbor, 1u);
  EXPECT_EQ(nbrs[1].neighbor, 2u);
  EXPECT_EQ(nbrs[0].edge, g.find_edge(0, 1));
  EXPECT_EQ(nbrs[1].edge, g.find_edge(0, 2));
}

TEST(Graph, FindEdgeIsSymmetric) {
  const Graph g = triangle();
  EXPECT_EQ(g.find_edge(1, 2), g.find_edge(2, 1));
  EXPECT_EQ(g.find_edge(0, 1), 0u);
  EXPECT_EQ(g.find_edge(1, 2), 1u);
}

TEST(Graph, FindEdgeReturnsInvalidForNonEdges) {
  const Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(g.find_edge(0, 2), kInvalidEdge);
  EXPECT_FALSE(g.has_edge(1, 3));
}

TEST(Graph, LinkIdsAreDenseAndInvertible) {
  const Graph g = triangle();
  std::vector<bool> seen(g.link_count(), false);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const auto& a : g.neighbors(u)) {
      const LinkId l = g.link(u, a.neighbor);
      ASSERT_LT(l, g.link_count());
      EXPECT_FALSE(seen[l]);
      seen[l] = true;
      EXPECT_EQ(g.link_source(l), u);
      EXPECT_EQ(g.link_target(l), a.neighbor);
      EXPECT_EQ(g.link_edge(l), a.edge);
    }
  }
}

TEST(Graph, ReverseLinkSwapsEndpoints) {
  const Graph g = triangle();
  const LinkId l = g.link(0, 2);
  const LinkId r = g.reverse_link(l);
  EXPECT_EQ(g.link_source(r), 2u);
  EXPECT_EQ(g.link_target(r), 0u);
  EXPECT_EQ(g.reverse_link(r), l);
}

TEST(Graph, LinkRequiresAdjacency) {
  const Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_THROW((void)g.link(0, 2), InvariantError);
}

TEST(Graph, RegularityDetection) {
  EXPECT_TRUE(triangle().is_regular());
  EXPECT_EQ(triangle().regular_degree(), 2u);
  const Graph path(3, {{0, 1}, {1, 2}});
  EXPECT_FALSE(path.is_regular());
}

TEST(Graph, Connectivity) {
  EXPECT_TRUE(triangle().is_connected());
  EXPECT_FALSE(Graph(4, {{0, 1}, {2, 3}}).is_connected());
  EXPECT_TRUE(Graph(1, {}).is_connected());
}

TEST(GraphFactories, CycleGraph) {
  const Graph c5 = make_cycle_graph(5);
  EXPECT_EQ(c5.node_count(), 5u);
  EXPECT_EQ(c5.edge_count(), 5u);
  EXPECT_TRUE(c5.is_regular());
  EXPECT_EQ(c5.regular_degree(), 2u);
  EXPECT_TRUE(c5.has_edge(4, 0));
  EXPECT_THROW(make_cycle_graph(2), ConfigError);
}

TEST(GraphFactories, CompleteGraph) {
  const Graph k4 = make_complete_graph(4);
  EXPECT_EQ(k4.edge_count(), 6u);
  EXPECT_EQ(k4.regular_degree(), 3u);
}

TEST(GraphFactories, CartesianProductIsTheTorusForTwoCycles) {
  const Graph t = cartesian_product(make_cycle_graph(3), make_cycle_graph(4));
  EXPECT_EQ(t.node_count(), 12u);
  EXPECT_EQ(t.edge_count(), 24u);  // 3*4 row + 3*4 column edges
  EXPECT_TRUE(t.is_regular());
  EXPECT_EQ(t.regular_degree(), 4u);
  // (g, h) id = g * 4 + h; (0,0)-(0,1) and (0,0)-(1,0) must be edges.
  EXPECT_TRUE(t.has_edge(0, 1));
  EXPECT_TRUE(t.has_edge(0, 4));
  EXPECT_FALSE(t.has_edge(0, 5));
}

}  // namespace
}  // namespace ihc
