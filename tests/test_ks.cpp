// Tests for the KS hex-mesh reliable broadcast reconstruction and KS-ATA.
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/ks.hpp"

namespace ihc {
namespace {

AtaOptions base_options() {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  return opt;
}

class KsTrees : public ::testing::TestWithParam<NodeId> {};

TEST_P(KsTrees, SixTreesEachCoveringEveryNodeExactlyOnce) {
  const HexMesh hex(GetParam());
  const NodeId n = hex.node_count();
  for (const auto variant :
       {KsVariant::kClassic, KsVariant::kAxisAvoiding}) {
    for (NodeId source : {NodeId{0}, n / 2}) {
      const auto trees = ks_trees(hex, source, variant);
      ASSERT_EQ(trees.size(), 6u);
      for (const auto& tree : trees) {
        std::vector<int> seen(n, 0);
        for (const auto& t : tree) ++seen[t.node];
        // The source appears twice (as root and inside a sector); every
        // other node exactly once.
        EXPECT_EQ(seen[source], 2);
        for (NodeId v = 0; v < n; ++v) {
          if (v != source) {
            EXPECT_EQ(seen[v], 1) << "node " << v;
          }
        }
      }
    }
  }
}

TEST_P(KsTrees, TreeEdgesAreRealLinks) {
  const HexMesh hex(GetParam());
  for (const auto variant :
       {KsVariant::kClassic, KsVariant::kAxisAvoiding}) {
    const auto trees = ks_trees(hex, 0, variant);
    for (const auto& tree : trees) {
      for (std::size_t i = 1; i < tree.size(); ++i) {
        const NodeId parent =
            tree[static_cast<std::size_t>(tree[i].parent)].node;
        EXPECT_TRUE(hex.graph().has_edge(parent, tree[i].node));
      }
    }
  }
}

TEST_P(KsTrees, PathStoreAndForwardBoundsPerVariant) {
  // The paper's Fig. 8 cost structure: the longest KS path has 3 SAF
  // operations (injection + at most two turns); the axis-avoiding
  // variant spends a 4th on the m-1 back-axis nodes.
  const HexMesh hex(GetParam());
  for (const auto& [variant, bound] :
       {std::pair{KsVariant::kClassic, std::size_t{3}},
        std::pair{KsVariant::kAxisAvoiding, std::size_t{4}}}) {
    for (const auto& tree : ks_trees(hex, 0, variant)) {
      for (std::size_t i = 1; i < tree.size(); ++i) {
        std::size_t saf = 0;
        for (std::size_t cur = i; cur != 0;
             cur = static_cast<std::size_t>(tree[cur].parent)) {
          if (!tree[cur].cut_through_preferred) ++saf;
        }
        EXPECT_LE(saf, bound);
      }
    }
  }
}

TEST(KsVariants, AxisAvoidingHalvesAggregateQueueing) {
  const HexMesh hex(5);
  AtaOptions opt = base_options();
  const auto classic = run_ks_single(hex, 0, opt, KsVariant::kClassic);
  const auto avoiding =
      run_ks_single(hex, 0, opt, KsVariant::kAxisAvoiding);
  EXPECT_LT(avoiding.stats.total_queue_wait,
            0.7 * static_cast<double>(classic.stats.total_queue_wait));
  for (NodeId d = 1; d < hex.node_count(); ++d)
    EXPECT_EQ(avoiding.ledger.copies(0, d), 6u);
}

TEST(KsVariants, ASingleTreeAloneMatchesTheCostModel) {
  // The reconstruction's intra-tree schedule is contention-free: one
  // tree simulated alone meets the per-broadcast closed form; the
  // measured slowdown of a full broadcast is purely cross-tree.
  const HexMesh hex(5);
  AtaOptions opt = base_options();
  const auto trees = ks_trees(hex, 0, KsVariant::kClassic);
  Network net(hex.graph(), opt.net);
  FlowSpec f;
  f.origin = 0;
  f.tree = trees[0];
  net.add_flow(std::move(f));
  net.run();
  const double model =
      model::ks_ata_dedicated(hex.node_count(), opt.net) /
      static_cast<double>(hex.node_count());
  EXPECT_NEAR(static_cast<double>(net.stats().finish_time), model,
              0.05 * model);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KsTrees, ::testing::Values(2u, 3u, 4u, 5u),
                         [](const auto& param) {
                           return "H" + std::to_string(param.param);
                         });

TEST(KsAta, DeliversSixCopiesToEveryPair) {
  const HexMesh hex(3);
  const auto result = run_ks_ata(hex, base_options());
  const NodeId n = hex.node_count();
  for (NodeId o = 0; o < n; ++o) {
    for (NodeId d = 0; d < n; ++d) {
      if (o != d) {
        ASSERT_EQ(result.ledger.copies(o, d), 6u)
            << "(" << o << "," << d << ")";
      }
    }
  }
}

TEST(KsSingle, FinishScalesWithMeshSize) {
  const AtaOptions opt = base_options();
  const auto small = run_ks_single(HexMesh(3), 0, opt);
  const auto large = run_ks_single(HexMesh(6), 0, opt);
  EXPECT_GT(large.finish, small.finish);
  // Still a constant number of tau_s deep (not O(N)): generous bound.
  EXPECT_LT(large.finish, 12 * opt.net.tau_s);
}

}  // namespace
}  // namespace ihc
