// Tests for the extended fault model: link failures and slow (timing-
// faulty) nodes.
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

#include "core/analysis.hpp"
#include "core/ihc.hpp"
#include "core/verify.hpp"
#include "topology/hypercube.hpp"

namespace ihc {
namespace {

AtaOptions base_options() {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  return opt;
}

TEST(LinkFaults, OneDeadDirectedLinkCostsPredictableDeliveries) {
  // A directed link sits on exactly one directed Hamiltonian cycle, and
  // N-1 of that cycle's packets would cross it (all but the one whose
  // route ends just before it).  The origin AT the link loses everything
  // (its injection is blocked): N-1 deliveries; origin p (counting along
  // the cycle) loses p-1; total N(N-1)/2.
  const Hypercube q(4);
  const NodeId n = q.node_count();
  AtaOptions opt = base_options();
  FaultPlan plan(derive_seed("tests", "link_faults"));
  const auto& hc = q.directed_cycles()[0];
  plan.fail_link(q.graph().link(hc.at(0), hc.at(1)));
  opt.faults = &plan;
  const auto result = run_ihc(q, IhcOptions{.eta = 2}, opt);

  const std::uint64_t full =
      static_cast<std::uint64_t>(q.gamma()) * n * (n - 1);
  const std::uint64_t lost =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  EXPECT_EQ(result.stats.deliveries, full - lost);
  EXPECT_GT(result.stats.link_drops, 0u);
  EXPECT_EQ(result.stats.fault_drops, 0u);  // distinct counters
}

TEST(LinkFaults, SeveredCableStillLeavesGammaMinus2Copies) {
  // Killing both directions of one undirected edge removes at most one
  // copy per direction per pair: every pair still receives >= gamma - 2
  // copies, and with received-majority voting every verdict stays
  // correct (the surviving copies are intact).
  const Hypercube q(4);
  AtaOptions opt = base_options();
  opt.granularity = DeliveryLedger::Granularity::kFull;
  FaultPlan plan(derive_seed("tests", "link_faults"));
  const LinkId l = q.graph().link(3, 7);
  plan.fail_link(l);
  plan.fail_link(q.graph().reverse_link(l));
  opt.faults = &plan;
  const auto result = run_ihc(q, IhcOptions{.eta = 2}, opt);
  for (NodeId o = 0; o < q.node_count(); ++o) {
    for (NodeId d = 0; d < q.node_count(); ++d) {
      if (o != d) {
        ASSERT_GE(result.ledger.copies(o, d), q.gamma() - 2)
            << o << "->" << d;
      }
    }
  }
  const auto report =
      assess_reliability(result.ledger, nullptr, q.gamma(), {},
                         VoteRule::kReceivedMajority);
  EXPECT_TRUE(report.all_correct());
}

TEST(SlowNodes, DelayRelaysWithoutCorruptingAnything) {
  const Hypercube q(4);
  AtaOptions opt = base_options();
  const auto clean = run_ihc(q, IhcOptions{.eta = 2}, opt);

  FaultPlan plan(derive_seed("tests", "link_faults"));
  plan.add(5, FaultMode::kSlow);
  plan.set_slow_delay(sim_us(3));
  opt.faults = &plan;
  const auto slowed = run_ihc(q, IhcOptions{.eta = 2}, opt);

  // Everything still arrives, intact...
  EXPECT_TRUE(slowed.ledger.all_pairs_have(q.gamma()));
  EXPECT_EQ(slowed.stats.fault_corruptions, 0u);
  EXPECT_EQ(slowed.stats.fault_drops, 0u);
  // ...but node 5's relays were buffered (slow path) and the run is
  // late.
  EXPECT_GT(slowed.stats.buffered_relays, 0u);
  EXPECT_GT(slowed.finish, clean.finish);
}

TEST(SlowNodes, SlowDelayIsVisibleInTheFinishTime) {
  // One slow node on a cycle adds at least its penalty to the stage's
  // critical path.
  const Hypercube q(3);
  AtaOptions opt = base_options();
  const auto clean = run_ihc(q, IhcOptions{.eta = 2}, opt);
  FaultPlan plan(derive_seed("tests", "link_faults"));
  plan.add(2, FaultMode::kSlow);
  plan.set_slow_delay(sim_us(10));
  opt.faults = &plan;
  const auto slowed = run_ihc(q, IhcOptions{.eta = 2}, opt);
  EXPECT_GE(slowed.finish - clean.finish, sim_us(10));
}

TEST(LinkFaults, PlanBookkeeping) {
  FaultPlan plan(derive_seed("tests", "link_faults"));
  EXPECT_FALSE(plan.link_failed(3));
  plan.fail_link(3);
  EXPECT_TRUE(plan.link_failed(3));
  EXPECT_EQ(plan.failed_link_count(), 1u);
  plan.fail_link(3);  // idempotent
  EXPECT_EQ(plan.failed_link_count(), 1u);
  plan.add(1, FaultMode::kSlow);
  EXPECT_EQ(plan.on_relay(1), RelayAction::kDelay);
}

}  // namespace
}  // namespace ihc
