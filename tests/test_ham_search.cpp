// The Hamiltonian-decomposition search engine (graph/ham_search.hpp):
// structural refutations, exact search (finds AND refutes), heuristic
// fallback, golden serialized decompositions, and - most importantly -
// the independent certifier under adversarial inputs: every hand-crafted
// corruption class must be rejected with its specific diagnostic.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "graph/ham_search.hpp"
#include "graph/hc_cache.hpp"
#include "topology/hypercube.hpp"
#include "topology/zoo/kary_torus.hpp"
#include "topology/zoo/twisted_cube.hpp"

namespace ihc {
namespace {

// A Gray-code Hamiltonian cycle of Q_4, independent of the search engine.
Cycle gray_cycle_q4() {
  return Cycle({0, 1, 3, 2, 6, 7, 5, 4, 12, 13, 15, 14, 10, 11, 9, 8});
}

// --- structural prechecks -------------------------------------------------

TEST(LambdaStructure, RefutesIrregularGraph) {
  // The 7-node star: degree 6 hub, degree-1 leaves.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 1; v < 7; ++v) edges.emplace_back(0, v);
  const LambdaStructure s = lambda_structure(Graph(7, std::move(edges)));
  EXPECT_TRUE(s.refuted);
  EXPECT_FALSE(s.regular);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 6u);
  EXPECT_NE(s.detail.find("not regular"), std::string::npos);
}

TEST(LambdaStructure, RefutesDisconnectedGraph) {
  // Two disjoint triangles: 2-regular but disconnected.
  const Graph g(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  const LambdaStructure s = lambda_structure(g);
  EXPECT_TRUE(s.refuted);
  EXPECT_TRUE(s.regular);
  EXPECT_FALSE(s.connected);
}

TEST(LambdaStructure, AcceptsOddDegreeWithReducedGamma) {
  // Q_3 is 3-regular: gamma = 2 (one cycle), a perfect matching unused.
  const LambdaStructure s = lambda_structure(make_hypercube_graph(3));
  EXPECT_FALSE(s.refuted);
  EXPECT_EQ(s.degree, 3u);
  EXPECT_EQ(s.gamma, 2u);
}

// --- exact search: finds --------------------------------------------------

TEST(HamSearch, ExactFindsHypercubeDecompositions) {
  for (unsigned m = 3; m <= 5; ++m) {
    const Graph g = make_hypercube_graph(m);
    const HamSearchResult r = search_hamiltonian_decomposition(g);
    EXPECT_EQ(r.status, SearchStatus::kFound) << "Q_" << m;
    EXPECT_TRUE(r.stats.exact) << "Q_" << m;
    EXPECT_EQ(r.gamma, 2 * (m / 2)) << "Q_" << m;
    EXPECT_EQ(r.cycles.size(), m / 2) << "Q_" << m;
    const bool cover = (m % 2 == 0);
    EXPECT_TRUE(certify_decomposition(g, r.cycles, r.gamma, cover).ok);
  }
}

TEST(HamSearch, ExactFindsTwistedCubeDecompositions) {
  for (unsigned n = 3; n <= 4; ++n) {
    const Graph g = make_twisted_cube_graph(n);
    const HamSearchResult r = search_hamiltonian_decomposition(g);
    EXPECT_EQ(r.status, SearchStatus::kFound) << "TQ_" << n;
    EXPECT_TRUE(r.stats.exact) << "TQ_" << n;
    EXPECT_EQ(r.gamma, twisted_cube_gamma(n)) << "TQ_" << n;
  }
}

TEST(HamSearch, ExactFindsKaryTorusDecomposition) {
  // 4-ary 2-torus: 16 nodes, 4-regular, two cycles covering every edge.
  const Graph g = make_kary_torus_graph(4, 2);
  const HamSearchResult r = search_hamiltonian_decomposition(g);
  ASSERT_EQ(r.status, SearchStatus::kFound);
  EXPECT_TRUE(r.stats.exact);
  EXPECT_EQ(r.cycles.size(), 2u);
  EXPECT_TRUE(certify_decomposition(g, r.cycles, 4, true).ok);
}

TEST(HamSearch, ExactFindsCompleteGraphDecomposition) {
  // K_5 is 4-regular with 10 edges: two edge-disjoint Hamiltonian
  // cycles partition E exactly (the classic Walecki decomposition).
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < 5; ++u)
    for (NodeId v = u + 1; v < 5; ++v) edges.emplace_back(u, v);
  const Graph g(5, std::move(edges));
  const HamSearchResult r = search_hamiltonian_decomposition(g);
  ASSERT_EQ(r.status, SearchStatus::kFound);
  EXPECT_EQ(r.gamma, 4u);
  EXPECT_TRUE(certify_decomposition(g, r.cycles, 4, true).ok);
}

// --- exact search: refutes ------------------------------------------------

TEST(HamSearch, ExhaustiveSearchRefutesPetersenGraph) {
  // The Petersen graph is 3-regular, connected, and famously has no
  // Hamiltonian cycle: a completed exact search is a *refutation*.
  const Graph g(10, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},
                     {0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9},
                     {5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}});
  HamSearchOptions opt;
  opt.mode = SearchMode::kExact;
  const HamSearchResult r = search_hamiltonian_decomposition(g, 0, opt);
  EXPECT_EQ(r.status, SearchStatus::kRefuted);
  EXPECT_TRUE(r.stats.exhausted);
  EXPECT_FALSE(r.detail.empty());
}

TEST(HamSearch, BudgetExhaustionIsUnknownNotRefuted) {
  // With a tiny step budget the exact stage cannot finish; in kExact
  // mode the honest answer is kUnknown - never a false refutation.
  HamSearchOptions opt;
  opt.mode = SearchMode::kExact;
  opt.exact_step_limit = 3;
  const HamSearchResult r =
      search_hamiltonian_decomposition(make_hypercube_graph(4), 0, opt);
  EXPECT_EQ(r.status, SearchStatus::kUnknown);
  EXPECT_FALSE(r.stats.exhausted);
}

// --- heuristic stage ------------------------------------------------------

TEST(HamSearch, HeuristicFindsLargeHypercubeDecomposition) {
  // Q_6 (64 nodes) exceeds the default exact_node_limit of 40: kAuto
  // routes to the heuristic stage, whose result is still certified.
  const Graph g = make_hypercube_graph(6);
  const HamSearchResult r = search_hamiltonian_decomposition(g);
  ASSERT_EQ(r.status, SearchStatus::kFound);
  EXPECT_FALSE(r.stats.exact);
  EXPECT_EQ(r.cycles.size(), 3u);
  EXPECT_TRUE(certify_decomposition(g, r.cycles, 6, true).ok);
}

TEST(HamSearch, HeuristicModeOnSmallGraphStillCertifies) {
  HamSearchOptions opt;
  opt.mode = SearchMode::kHeuristic;
  const Graph g = make_kary_torus_graph(3, 2);
  const HamSearchResult r = search_hamiltonian_decomposition(g, 0, opt);
  ASSERT_EQ(r.status, SearchStatus::kFound);
  EXPECT_EQ(r.stats.exact_steps, 0u);
  EXPECT_TRUE(certify_decomposition(g, r.cycles, 4, true).ok);
}

// --- golden decompositions ------------------------------------------------
// The exact stage is deterministic (no randomness, fixed iteration
// order), so its output is pinned byte-for-byte.  A change here means
// the search order changed - intentional changes must update the CLI
// examples in docs/TOPOLOGIES.md too.

TEST(HamSearch, GoldenDecompositionQ3) {
  const HamSearchResult r =
      search_hamiltonian_decomposition(make_hypercube_graph(3));
  ASSERT_EQ(r.status, SearchStatus::kFound);
  EXPECT_EQ(serialize_cycles(8, r.cycles),
            "ihc-hc-v1 8 1\n"
            "8 0 1 3 2 6 7 5 4\n");
}

TEST(HamSearch, GoldenDecompositionQ4) {
  const HamSearchResult r =
      search_hamiltonian_decomposition(make_hypercube_graph(4));
  ASSERT_EQ(r.status, SearchStatus::kFound);
  EXPECT_EQ(serialize_cycles(16, r.cycles),
            "ihc-hc-v1 16 2\n"
            "16 0 1 3 2 6 4 5 7 15 11 9 13 12 14 10 8\n"
            "16 0 2 10 11 3 7 6 14 15 13 5 1 9 8 12 4\n");
}

TEST(HamSearch, GoldenDecompositionTQ3) {
  const HamSearchResult r =
      search_hamiltonian_decomposition(make_twisted_cube_graph(3));
  ASSERT_EQ(r.status, SearchStatus::kFound);
  EXPECT_EQ(serialize_cycles(8, r.cycles),
            "ihc-hc-v1 8 1\n"
            "8 0 1 3 2 6 7 5 4\n");
}

// --- the certifier under adversarial inputs -------------------------------
// Each corruption class gets a hand-crafted invalid decomposition; the
// certifier must reject it with the *specific* failure diagnostic, so a
// search bug can never masquerade as a different (or absent) problem.

std::vector<Cycle> valid_q4_cycles() {
  const HamSearchResult r =
      search_hamiltonian_decomposition(make_hypercube_graph(4));
  EXPECT_EQ(r.status, SearchStatus::kFound);
  return r.cycles;
}

TEST(CertifyAdversary, WrongCycleCountRejected) {
  const Graph g = make_hypercube_graph(4);
  std::vector<Cycle> cycles = valid_q4_cycles();
  cycles.pop_back();  // one cycle cannot support gamma = 4
  const Certificate cert = certify_decomposition(g, cycles, 4, true);
  EXPECT_FALSE(cert.ok);
  EXPECT_EQ(cert.failure, CertFailure::kCycleCount);
  EXPECT_NE(cert.detail.find("requires 2 cycle(s), got 1"),
            std::string::npos);
}

TEST(CertifyAdversary, NonHamiltonianCycleRejected) {
  const Graph g = make_hypercube_graph(4);
  std::vector<Cycle> cycles = valid_q4_cycles();
  // Replace the second cycle with a valid 4-cycle of Q_4: every step is
  // an edge, but twelve nodes are missed.
  cycles[1] = Cycle({0, 1, 3, 2});
  const Certificate cert = certify_decomposition(g, cycles, 4, true);
  EXPECT_FALSE(cert.ok);
  EXPECT_EQ(cert.failure, CertFailure::kNotHamiltonian);
  EXPECT_NE(cert.detail.find("visits 4 of 16 nodes"), std::string::npos);
}

TEST(CertifyAdversary, NonEdgeStepRejected) {
  const Graph g = make_hypercube_graph(4);
  // Swapping two interior nodes of the Gray-code cycle makes the step
  // 0 -> 3 (Hamming distance 2): not an edge of Q_4.
  std::vector<NodeId> seq = gray_cycle_q4().nodes();
  std::swap(seq[1], seq[2]);
  const Certificate cert =
      certify_decomposition(g, {Cycle(std::move(seq))}, 2, false);
  EXPECT_FALSE(cert.ok);
  EXPECT_EQ(cert.failure, CertFailure::kNonEdge);
  EXPECT_NE(cert.detail.find("non-edge 0-3"), std::string::npos);
}

TEST(CertifyAdversary, SharedEdgeRejected) {
  const Graph g = make_hypercube_graph(4);
  // The same Hamiltonian cycle twice: edge-disjointness fails on the
  // first re-used edge.
  const std::vector<Cycle> cycles{gray_cycle_q4(), gray_cycle_q4()};
  const Certificate cert = certify_decomposition(g, cycles, 4, true);
  EXPECT_FALSE(cert.ok);
  EXPECT_EQ(cert.failure, CertFailure::kSharedEdge);
  EXPECT_NE(cert.detail.find("used twice"), std::string::npos);
}

TEST(CertifyAdversary, CoverageGapRejected) {
  const Graph g = make_hypercube_graph(4);
  // One valid Hamiltonian cycle with gamma = 2 is fine on its own - but
  // not when the caller demands a partition of E(g) (16 of 32 edges).
  const std::vector<Cycle> cycles{gray_cycle_q4()};
  EXPECT_TRUE(certify_decomposition(g, cycles, 2, false).ok);
  const Certificate cert = certify_decomposition(g, cycles, 2, true);
  EXPECT_FALSE(cert.ok);
  EXPECT_EQ(cert.failure, CertFailure::kCoverage);
  EXPECT_NE(cert.detail.find("16 of 32"), std::string::npos);
}

TEST(CertifyAdversary, FailureNamesAreStable) {
  // The CLI and the loader put these names in user-facing diagnostics.
  EXPECT_STREQ(to_string(CertFailure::kCycleCount), "cycle_count");
  EXPECT_STREQ(to_string(CertFailure::kNotHamiltonian), "not_hamiltonian");
  EXPECT_STREQ(to_string(CertFailure::kNonEdge), "non_edge");
  EXPECT_STREQ(to_string(CertFailure::kSharedEdge), "shared_edge");
  EXPECT_STREQ(to_string(CertFailure::kCoverage), "coverage");
}

}  // namespace
}  // namespace ihc
