// Golden simulation vectors, captured from the seed simulator BEFORE
// the calendar-queue / flat-route-table / pooled-arena optimizations
// landed.  Every optimization must be observably invisible: both
// engines (calendar and legacy binary heap) must reproduce these exact
// finish times and statistics, and a pooled, reset() network must match
// a freshly constructed one bit for bit.  If an "optimization" moves
// any number here, it changed simulation semantics - fix the code, do
// not re-capture the goldens.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/ihc.hpp"
#include "core/vsq.hpp"
#include "sim/flit_network.hpp"
#include "topology/hex_mesh.hpp"
#include "topology/hypercube.hpp"
#include "topology/square_mesh.hpp"

namespace ihc {
namespace {

struct PacketGolden {
  const char* name;
  SimTime finish;
  std::uint64_t cut_throughs;
  std::uint64_t buffered_relays;
  std::uint64_t deliveries;
  std::uint64_t background_packets;
  SimTime total_queue_wait;
};

// Captured from commit e2cae7d (pre-optimization seed), alpha = 20ns,
// tau_S = 200ns, mu = 2.
constexpr PacketGolden kPacketGoldens[] = {
    {"q4_ihc_vct_dedicated", 1040000, 896, 0, 960, 0, 0},
    {"q4_ihc_saf", 7200000, 0, 896, 960, 0, 0},
    {"q4_ihc_wormhole_rho03", 5767029, 338, 0, 960, 680, 105023317},
    {"q4_ihc_multihop_rho035", 20989906, 964, 833, 960, 833, 1671197828},
    {"q4_ihc_percycle_rho02", 6370344, 565, 331, 960, 531, 63849234},
    {"sq4_ihc_vct_dedicated", 1040000, 896, 0, 960, 0, 0},
    {"sq4_ihc_multihop_wormhole_rho04", 177160133, 2923, 0, 960, 8381,
     182858807295},
    {"sq4_vsq_dedicated", 9280000, 704, 256, 1024, 0, 0},
};

AtaOptions base_opt(bool legacy) {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_ns(200);
  opt.net.mu = 2;
  opt.net.legacy_engine = legacy;
  return opt;
}

AtaResult run_golden_workload(const char* name, bool legacy) {
  const std::string id(name);
  if (id.rfind("q4_", 0) == 0) {
    const Hypercube q4(4);
    AtaOptions opt = base_opt(legacy);
    if (id == "q4_ihc_vct_dedicated")
      return run_ihc(q4, IhcOptions{.eta = 2}, opt);
    if (id == "q4_ihc_saf") {
      opt.net.switching = Switching::kStoreAndForward;
      return run_ihc(q4, IhcOptions{.eta = 2}, opt);
    }
    if (id == "q4_ihc_wormhole_rho03") {
      opt.net.switching = Switching::kWormhole;
      opt.net.rho = 0.3;
      opt.net.seed = 7;
      return run_ihc(q4, IhcOptions{.eta = 2}, opt);
    }
    if (id == "q4_ihc_multihop_rho035") {
      opt.net.rho = 0.35;
      opt.net.background_mode = BackgroundMode::kMultiHopFlows;
      opt.net.seed = 99;
      return run_ihc(q4, IhcOptions{.eta = 2}, opt);
    }
    if (id == "q4_ihc_percycle_rho02") {
      opt.net.rho = 0.2;
      opt.net.seed = 11;
      return run_ihc(
          q4, IhcOptions{.eta = 2, .barrier = StageBarrier::kPerCycle}, opt);
    }
  }
  const SquareMesh sq4(4);
  AtaOptions opt = base_opt(legacy);
  if (id == "sq4_ihc_vct_dedicated")
    return run_ihc(sq4, IhcOptions{.eta = 2}, opt);
  if (id == "sq4_ihc_multihop_wormhole_rho04") {
    opt.net.switching = Switching::kWormhole;
    opt.net.rho = 0.4;
    opt.net.background_mode = BackgroundMode::kMultiHopFlows;
    opt.net.seed = 5;
    return run_ihc(sq4, IhcOptions{.eta = 2}, opt);
  }
  EXPECT_EQ(id, "sq4_vsq_dedicated") << "unknown golden workload";
  return run_vsq_ata(sq4, opt);
}

void expect_matches(const PacketGolden& g, const AtaResult& r,
                    const char* engine) {
  EXPECT_EQ(r.finish, g.finish) << g.name << " on " << engine;
  EXPECT_EQ(r.stats.cut_throughs, g.cut_throughs) << g.name << " " << engine;
  EXPECT_EQ(r.stats.buffered_relays, g.buffered_relays)
      << g.name << " " << engine;
  EXPECT_EQ(r.stats.deliveries, g.deliveries) << g.name << " " << engine;
  EXPECT_EQ(r.stats.background_packets, g.background_packets)
      << g.name << " " << engine;
  EXPECT_EQ(r.stats.total_queue_wait, g.total_queue_wait)
      << g.name << " " << engine;
}

TEST(SimGolden, CalendarEngineMatchesSeedGoldens) {
  for (const PacketGolden& g : kPacketGoldens)
    expect_matches(g, run_golden_workload(g.name, /*legacy=*/false),
                   "calendar");
}

TEST(SimGolden, LegacyHeapEngineMatchesSeedGoldens) {
  for (const PacketGolden& g : kPacketGoldens)
    expect_matches(g, run_golden_workload(g.name, /*legacy=*/true),
                   "legacy-heap");
}

struct FlitGolden {
  const char* name;
  bool deadlocked;
  std::uint64_t cycles;
  std::uint64_t delivered;
  std::uint64_t flit_hops;
  std::uint64_t blocked_packets;
  std::uint8_t vc_count;
  bool dally_seitz;
  std::uint32_t eta;
};

// Flit-level H_3 goldens (4 flits per worm, 2-deep FIFOs), captured
// from the same seed commit.
constexpr FlitGolden kFlitGoldens[] = {
    {"h3_flit_ds_vc2_eta2", false, 65, 60, 4080, 0, 2, true, 2},
    {"h3_flit_naive_vc1_eta1", true, 1002, 0, 0, 114, 1, false, 1},
    {"h3_flit_naive_vc2_eta2", true, 1004, 0, 108, 60, 2, false, 2},
};

void expect_matches(const FlitGolden& g, const FlitRunResult& r,
                    const char* how) {
  EXPECT_EQ(r.deadlocked, g.deadlocked) << g.name << " " << how;
  EXPECT_EQ(r.cycles, g.cycles) << g.name << " " << how;
  EXPECT_EQ(r.delivered, g.delivered) << g.name << " " << how;
  EXPECT_EQ(r.flit_hops, g.flit_hops) << g.name << " " << how;
  EXPECT_EQ(r.blocked_packets, g.blocked_packets) << g.name << " " << how;
}

TEST(SimGolden, FlitNetworkMatchesSeedGoldens) {
  const HexMesh h3(3);
  for (const FlitGolden& g : kFlitGoldens) {
    FlitNetwork net(h3.graph(),
                    FlitParams{.vc_count = g.vc_count, .buffer_flits = 2});
    for (const FlitPacketSpec& p : ihc_flit_packets(h3, g.eta, 4,
                                                    g.dally_seitz))
      net.add_packet(FlitPacketSpec(p));
    expect_matches(g, net.run(200'000), "fresh");
  }
}

TEST(SimGolden, PooledFlitNetworkResetMatchesFreshConstruction) {
  // One network object replays all three goldens via reset(params) -
  // the arena-reuse path campaigns take - and must match the
  // fresh-construction numbers exactly, in any order.
  const HexMesh h3(3);
  FlitNetwork net(h3.graph(), FlitParams{.vc_count = 1, .buffer_flits = 2});
  for (int round = 0; round < 2; ++round) {
    for (const FlitGolden& g : kFlitGoldens) {
      net.reset(FlitParams{.vc_count = g.vc_count, .buffer_flits = 2});
      for (const FlitPacketSpec& p : ihc_flit_packets(h3, g.eta, 4,
                                                      g.dally_seitz))
        net.add_packet(FlitPacketSpec(p));
      expect_matches(g, net.run(200'000), "pooled-reset");
    }
  }
}

}  // namespace
}  // namespace ihc
