// Tests for the selective-retransmission control protocol.
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

#include "core/retransmit.hpp"
#include "topology/hypercube.hpp"

namespace ihc {
namespace {

AtaOptions base_options(const KeyRing* keys) {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  opt.keys = keys;
  return opt;
}

TEST(Retransmit, CleanNetworkCompletesInOneRound) {
  const Hypercube q(4);
  const KeyRing keys(5);
  RetransmitConfig config;
  config.message_units = 8;  // 4 fragments at mu = 2
  const auto report =
      run_with_retransmission(q, base_options(&keys), config);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.rounds_used, 1u);
  EXPECT_EQ(report.fragments_retransmitted, 0u);
  EXPECT_EQ(report.fragments_sent, 4ull * q.node_count());
}

TEST(Retransmit, IntermittentFaultTriggersSelectiveRetransmission) {
  const Hypercube q(4);
  const KeyRing keys(5);
  AtaOptions opt = base_options(&keys);
  // Three intermittent faults: with gamma = 4, every route of some pair
  // occasionally hits a faulty relay in the same slot, losing a fragment
  // everywhere at once.
  FaultPlan plan(0xBAD);
  plan.add(3, FaultMode::kRandom);
  plan.add(6, FaultMode::kRandom);
  plan.add(12, FaultMode::kRandom);
  opt.faults = &plan;
  RetransmitConfig config;
  config.message_units = 8;
  config.max_rounds = 6;
  const auto report = run_with_retransmission(q, opt, config);
  // An intermittent fault loses some fragments in round 1 but different
  // ones each retry: the protocol converges and only re-sends what was
  // missed.
  EXPECT_TRUE(report.complete);
  EXPECT_GT(report.rounds_used, 1u);
  EXPECT_GT(report.fragments_retransmitted, 0u);
  EXPECT_LT(report.fragments_retransmitted, report.fragments_sent);
}

TEST(Retransmit, PermanentCorruptionOnAllRoutesCannotComplete) {
  // gamma/2 copies of everything through node 1's "side" of each cycle
  // are tampered; signed fragments still arrive via the clean directions,
  // so even a permanent corrupter cannot block completion...
  const Hypercube q(3);  // gamma = 2: only two routes per pair!
  const KeyRing keys(5);
  AtaOptions opt = base_options(&keys);
  FaultPlan plan(derive_seed("tests", "retransmit"));
  plan.add(1, FaultMode::kCorrupt);
  plan.add(6, FaultMode::kCorrupt);
  opt.faults = &plan;
  RetransmitConfig config;
  config.message_units = 4;
  config.max_rounds = 3;
  const auto report = run_with_retransmission(q, opt, config);
  // ...unless gamma is tiny: with gamma = 2 and two corrupters, some
  // pair loses both directions of every fragment, every round.
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.rounds_used, 3u);  // kept trying to the budget
}

TEST(Retransmit, ValidatesConfiguration) {
  const Hypercube q(3);
  const KeyRing keys(5);
  EXPECT_THROW((void)run_with_retransmission(
                   q, base_options(nullptr), RetransmitConfig{}),
               ConfigError);
  RetransmitConfig bad;
  bad.max_rounds = 0;
  EXPECT_THROW(
      (void)run_with_retransmission(q, base_options(&keys), bad),
      ConfigError);
}

}  // namespace
}  // namespace ihc
