// Tests for the wall-clock profiler (src/obs/prof/, docs/PROFILING.md).
// The module's contract has two halves: with no profiler installed the
// instrumentation is invisible (simulated results, trace streams and
// metrics are byte-identical to the seed), and with one installed the
// *simulated* results are still unchanged - only host-time documents
// (ihc-profile-v1, the gated shard.* metrics, the Chrome export) appear.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/ihc.hpp"
#include "obs/obs.hpp"
#include "topology/hypercube.hpp"
#include "util/json.hpp"

namespace ihc {
namespace {

using obs::prof::Phase;
using obs::prof::ScopedPhase;
using obs::prof::WallProfiler;

/// Installs `p` as the process profiler for one scope.
struct Install {
  explicit Install(WallProfiler* p) { obs::prof::set_global_profiler(p); }
  ~Install() { obs::prof::set_global_profiler(nullptr); }
};

AtaResult run_q4(std::uint32_t shards, obs::Tracer* tracer = nullptr,
                 obs::MetricsRegistry* metrics = nullptr) {
  const Hypercube q4(4);
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_ns(200);
  opt.net.mu = 2;
  opt.net.rho = 0.3;
  opt.net.background_mode = BackgroundMode::kMultiHopFlows;
  opt.net.seed = 7;
  opt.net.shards = shards;
  opt.tracer = tracer;
  opt.metrics = metrics;
  return run_ihc(q4, IhcOptions{.eta = 2}, opt);
}

std::string event_signature(const obs::TraceEvent& e) {
  std::string s(e.name);
  s += '|';
  s += e.cat;
  for (const std::int64_t v :
       {static_cast<std::int64_t>(e.phase), e.ts, e.dur,
        static_cast<std::int64_t>(e.track), e.flow, e.node, e.link,
        e.origin, e.route, e.pos, e.len, e.depth, e.stage, e.vc}) {
    s += std::to_string(v);
    s += '|';
  }
  s += e.detail;
  return s;
}

std::vector<std::string> trace_stream(const obs::CollectingSink& sink) {
  std::vector<std::string> stream;
  stream.reserve(sink.events().size());
  for (const obs::TraceEvent& e : sink.events())
    stream.push_back(event_signature(e));
  return stream;
}

// ---------------------------------------------------------------------
// Unit pieces.

TEST(ObsProf, PhaseNamesAreStable) {
  EXPECT_STREQ(obs::prof::phase_name(Phase::kSetup), "setup");
  EXPECT_STREQ(obs::prof::phase_name(Phase::kRouteBuild), "route_build");
  EXPECT_STREQ(obs::prof::phase_name(Phase::kEventLoop), "event_loop");
  EXPECT_STREQ(obs::prof::phase_name(Phase::kTraceReplay), "trace_replay");
  EXPECT_STREQ(obs::prof::phase_name(Phase::kReport), "report");
}

TEST(ObsProf, StallBucketsAreLog2Microseconds) {
  EXPECT_EQ(obs::prof::stall_bucket(0), 0u);          // < 1 us
  EXPECT_EQ(obs::prof::stall_bucket(999), 0u);        // still < 1 us
  EXPECT_EQ(obs::prof::stall_bucket(1'000), 1u);      // [1, 2) us
  EXPECT_EQ(obs::prof::stall_bucket(1'999), 1u);
  EXPECT_EQ(obs::prof::stall_bucket(2'000), 2u);      // [2, 4) us
  EXPECT_EQ(obs::prof::stall_bucket(1'000'000), 10u); // [512, 1024) us
  // The last bucket is open-ended.
  EXPECT_EQ(obs::prof::stall_bucket(~std::uint64_t{0}),
            obs::prof::kStallBuckets - 1);
}

TEST(ObsProf, HeartbeatIsRateLimited) {
  WallProfiler p;
  // The default 2 s interval never fires inside a unit test...
  p.heartbeat("test", 1, 0, 0);
  EXPECT_EQ(p.heartbeats(), 0u);
  // ...a zero interval fires on every call.
  p.set_heartbeat_interval_ms(0);
  p.heartbeat("test", 2, 0, 0);
  p.heartbeat("test", 3, 0, 0);
  EXPECT_EQ(p.heartbeats(), 2u);
}

TEST(ObsProf, NestedScopesContributeNoExclusiveTime) {
  WallProfiler p;
  const Install install(&p);
  {
    const ScopedPhase outer(Phase::kSetup);
    const ScopedPhase inner(Phase::kRouteBuild);  // nested on this thread
  }
  const Json doc = p.to_json();
  double setup_excl = -1.0, route_excl = -1.0, route_wall = -1.0;
  for (const Json& row : doc.find("phases")->items()) {
    const std::string name(row.find("name")->as_string());
    if (name == "setup") setup_excl = row.find("exclusive_ms")->as_double();
    if (name == "route_build") {
      route_excl = row.find("exclusive_ms")->as_double();
      route_wall = row.find("wall_ms")->as_double();
    }
  }
  EXPECT_GE(setup_excl, 0.0);
  EXPECT_EQ(route_excl, 0.0) << "nested scope must not count exclusively";
  EXPECT_GE(route_wall, 0.0);
  // On a single thread coverage sums exclusive time only, so it can
  // never exceed elapsed (thread pools stack, docs/PROFILING.md).
  EXPECT_GE(doc.find("coverage")->as_double(), 0.0);
  EXPECT_LE(doc.find("coverage")->as_double(), 1.0);
}

// ---------------------------------------------------------------------
// Determinism: the profiler never touches simulated results.

TEST(ObsProf, UnprofiledRunsAreByteIdentical) {
  ASSERT_EQ(obs::prof::global_profiler(), nullptr);
  for (const std::uint32_t shards : {0u, 2u}) {
    obs::CollectingSink sink_a, sink_b;
    obs::Tracer tracer_a, tracer_b;
    tracer_a.attach(&sink_a);
    tracer_b.attach(&sink_b);
    obs::MetricsRegistry metrics_a, metrics_b;
    const AtaResult a = run_q4(shards, &tracer_a, &metrics_a);
    const AtaResult b = run_q4(shards, &tracer_b, &metrics_b);
    EXPECT_EQ(a.finish, b.finish);
    EXPECT_EQ(a.stats.events_processed, b.stats.events_processed);
    EXPECT_EQ(trace_stream(sink_a), trace_stream(sink_b));
    EXPECT_EQ(metrics_a.to_json().dump(), metrics_b.to_json().dump());
    // The wall-time metrics are gated on an installed profiler.
    EXPECT_TRUE(metrics_a.samples("shard.busy_ns").empty());
    EXPECT_TRUE(metrics_a.samples("shard.barrier_wait_ns").empty());
  }
}

TEST(ObsProf, ProfiledRunKeepsSimulatedResultsUnchanged) {
  for (const std::uint32_t shards : {0u, 2u}) {
    obs::CollectingSink sink_off, sink_on;
    obs::Tracer tracer_off, tracer_on;
    tracer_off.attach(&sink_off);
    tracer_on.attach(&sink_on);
    obs::MetricsRegistry metrics_off, metrics_on;
    const AtaResult off = run_q4(shards, &tracer_off, &metrics_off);

    WallProfiler p;
    AtaResult on;
    {
      const Install install(&p);
      on = run_q4(shards, &tracer_on, &metrics_on);
    }

    EXPECT_EQ(on.finish, off.finish) << "shards " << shards;
    EXPECT_EQ(on.stats.events_processed, off.stats.events_processed);
    EXPECT_EQ(on.stats.deliveries, off.stats.deliveries);
    EXPECT_EQ(on.ledger.total_copies(), off.ledger.total_copies());
    EXPECT_EQ(trace_stream(sink_on), trace_stream(sink_off));
    // Simulated metrics agree entry-for-entry; the profiled run merely
    // gains the host-time shard.* histograms on the parallel engine.
    EXPECT_EQ(metrics_on.counter("net.events_processed"),
              metrics_off.counter("net.events_processed"));
    if (shards >= 1) {
      EXPECT_EQ(metrics_on.samples("shard.busy_ns").size(), shards);
      EXPECT_EQ(metrics_on.samples("shard.barrier_wait_ns").size(), shards);
    }
  }
}

// ---------------------------------------------------------------------
// The ihc-profile-v1 document.

TEST(ObsProf, ProfileDocumentAttributesShardedRun) {
  WallProfiler p;
  AtaResult result;
  {
    const Install install(&p);
    result = run_q4(2);
  }
  const Json doc = p.to_json();
  EXPECT_EQ(doc.find("schema")->as_string(), "ihc-profile-v1");
  EXPECT_GT(doc.find("hw_threads")->as_int(), 0);
  EXPECT_GT(doc.find("total_wall_ms")->as_double(), 0.0);

  // The event loop ran and contributed exclusive time.
  bool saw_event_loop = false;
  for (const Json& row : doc.find("phases")->items()) {
    if (row.find("name")->as_string() != "event_loop") continue;
    saw_event_loop = true;
    EXPECT_GE(row.find("count")->as_int(), 1);
    EXPECT_GT(row.find("wall_ms")->as_double(), 0.0);
    EXPECT_GT(row.find("exclusive_ms")->as_double(), 0.0);
  }
  EXPECT_TRUE(saw_event_loop);

  // Exactly one shard section (shard_count 2) with a full breakdown.
  const std::vector<Json>& sections = doc.find("shards")->items();
  ASSERT_EQ(sections.size(), 1u);
  const Json& sec = sections[0];
  EXPECT_EQ(sec.find("shard_count")->as_int(), 2);
  EXPECT_GE(sec.find("runs")->as_int(), 1);  // run() calls per broadcast
  EXPECT_GT(sec.find("windows")->as_int(), 0);
  EXPECT_GT(sec.find("coordinator_ms")->as_double(), 0.0);
  EXPECT_GE(sec.find("window_max_busy_ms")->as_double(),
            sec.find("window_min_busy_ms")->as_double());

  const std::vector<Json>& per_shard = sec.find("per_shard")->items();
  ASSERT_EQ(per_shard.size(), 2u);
  std::int64_t events = 0;
  std::uint64_t waits = 0;
  for (const Json& row : per_shard) {
    events += row.find("events")->as_int();
    EXPECT_GE(row.find("busy_ms")->as_double(), 0.0);
    EXPECT_GE(row.find("barrier_wait_ms")->as_double(), 0.0);
  }
  EXPECT_EQ(static_cast<std::uint64_t>(events),
            result.stats.events_processed)
      << "per-shard event counts must tile the run";
  const std::vector<Json>& hist = sec.find("stall_hist_us")->items();
  ASSERT_EQ(hist.size(), obs::prof::kStallBuckets);
  for (const Json& bucket : hist) waits +=
      static_cast<std::uint64_t>(bucket.as_int());
  EXPECT_GT(waits, 0u) << "every barrier wait lands in one bucket";

  const Json* imbalance = sec.find("imbalance");
  ASSERT_NE(imbalance, nullptr);
  EXPECT_GE(imbalance->find("max_busy_ms")->as_double(),
            imbalance->find("min_busy_ms")->as_double());
}

TEST(ObsProf, ChromeExportEmitsValidHostPhaseSpans) {
  WallProfiler p;
  {
    const Install install(&p);
    (void)run_q4(2);
  }
  std::ostringstream out;
  p.write_chrome(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("host_phase"), std::string::npos);
  EXPECT_NE(text.find("ihc-prof"), std::string::npos);
  std::string err;
  const auto doc = Json::parse(text, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  ASSERT_NE(doc->find("traceEvents"), nullptr);
  EXPECT_FALSE(doc->find("traceEvents")->items().empty());
}

}  // namespace
}  // namespace ihc
