// Tests for the flit-level wormhole simulator: basic mechanics, actual
// deadlock under a cyclic channel dependency graph, and deadlock freedom
// under the Dally-Seitz virtual-channel assignment - the simulation-side
// confirmation of the CDG analysis (test_deadlock.cpp).
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "sim/deadlock.hpp"
#include "sim/flit_network.hpp"
#include "topology/product.hpp"
#include "topology/square_mesh.hpp"

namespace ihc {
namespace {

/// A single packet crossing a path in an otherwise idle ring.
TEST(FlitNetwork, SinglePacketPipelines) {
  const Graph ring = make_cycle_graph(6);
  FlitNetwork net(ring, FlitParams{.vc_count = 1, .buffer_flits = 2});
  FlitPacketSpec spec;
  spec.length_flits = 3;
  for (NodeId i = 0; i < 4; ++i)
    spec.route.push_back(ring.link(i, i + 1));
  spec.vc.assign(4, 0);
  net.add_packet(std::move(spec));
  const auto result = net.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.delivered, 1u);
  // Pipelining: tail consumed after ~route + flits cycles, not product.
  EXPECT_LE(result.cycles, 4u + 3u + 4u);
  EXPECT_EQ(result.flit_hops, 3u * 3u);  // 3 flits x 3 internal moves
}

TEST(FlitNetwork, ValidatesPackets) {
  const Graph ring = make_cycle_graph(4);
  FlitNetwork net(ring, FlitParams{});
  FlitPacketSpec empty;
  EXPECT_THROW(net.add_packet(std::move(empty)), ConfigError);

  FlitPacketSpec broken;
  broken.route = {ring.link(0, 1), ring.link(2, 3)};  // not chained
  broken.vc = {0, 0};
  EXPECT_THROW(net.add_packet(std::move(broken)), ConfigError);

  FlitPacketSpec bad_vc;
  bad_vc.route = {ring.link(0, 1)};
  bad_vc.vc = {3};
  EXPECT_THROW(net.add_packet(std::move(bad_vc)), ConfigError);
}

/// The canonical wormhole deadlock: packets chasing each other around a
/// ring with one virtual channel and buffers smaller than the packets.
TEST(FlitNetwork, RingSaturationDeadlocksWithOneVirtualChannel) {
  const Ring ring(6);
  const auto packets =
      ihc_flit_packets(ring, /*eta=*/1, /*length_flits=*/4,
                       /*dally_seitz=*/false);
  FlitNetwork net(ring.graph(),
                  FlitParams{.vc_count = 1, .buffer_flits = 2,
                             .stall_threshold = 200});
  for (const auto& p : packets) {
    FlitPacketSpec copy = p;
    net.add_packet(std::move(copy));
  }
  const auto result = net.run(100'000);
  EXPECT_TRUE(result.deadlocked);
  EXPECT_GT(result.blocked_packets, 0u);
  // ... and the CDG analysis predicted it.
  EXPECT_FALSE(ihc_cdg_single_channel(ring).is_acyclic());
}

/// The same load with the Dally-Seitz dateline assignment on two virtual
/// channels completes - matching the acyclic CDG.
TEST(FlitNetwork, DallySeitzDatelineDeliversTheSameLoad) {
  const Ring ring(6);
  const auto packets =
      ihc_flit_packets(ring, 1, 4, /*dally_seitz=*/true);
  FlitNetwork net(ring.graph(),
                  FlitParams{.vc_count = 2, .buffer_flits = 2,
                             .stall_threshold = 200});
  for (const auto& p : packets) {
    FlitPacketSpec copy = p;
    net.add_packet(std::move(copy));
  }
  const auto result = net.run(1'000'000);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.delivered, packets.size());
  EXPECT_TRUE(ihc_cdg_dally_seitz(ring).is_acyclic());
}

/// The full IHC load on a mesh: with the dateline VCs every packet of
/// every directed Hamiltonian cycle completes.
TEST(FlitNetwork, IhcLoadOnSquareMeshCompletesWithDateline) {
  const SquareMesh mesh(4);
  const auto packets = ihc_flit_packets(mesh, 2, 4, true);
  FlitNetwork net(mesh.graph(),
                  FlitParams{.vc_count = 2, .buffer_flits = 2,
                             .stall_threshold = 500});
  for (const auto& p : packets) {
    FlitPacketSpec copy = p;
    net.add_packet(std::move(copy));
  }
  const auto result = net.run(2'000'000);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.delivered, packets.size());
  // Every flit of every packet crossed its full route.
  EXPECT_EQ(result.flit_hops,
            packets.size() * 4ull * (mesh.node_count() - 2));
}

/// eta interleaving thins the flit load: fewer packets, fewer cycles per
/// stage at equal delivery guarantees per initiator.
TEST(FlitNetwork, LargerEtaReducesThePacketPopulation) {
  const SquareMesh mesh(4);
  EXPECT_EQ(ihc_flit_packets(mesh, 1, 4, true).size(), 4u * 16u);
  EXPECT_EQ(ihc_flit_packets(mesh, 2, 4, true).size(), 4u * 8u);
  EXPECT_EQ(ihc_flit_packets(mesh, 4, 4, true).size(), 4u * 4u);
}

}  // namespace
}  // namespace ihc
