// Reproducibility and stress tests: identical seeds must give identical
// runs (the whole experiment harness depends on it), and the
// decomposition engine must handle the largest configurations the paper
// discusses.
#include <gtest/gtest.h>

#include "ihc.hpp"

namespace ihc {
namespace {

TEST(Determinism, StochasticRunsRepeatExactlyForASeed) {
  const Hypercube q(4);
  auto run_once = [&q](std::uint64_t seed) {
    AtaOptions opt;
    opt.net.alpha = sim_ns(20);
    opt.net.tau_s = sim_ns(500);
    opt.net.mu = 2;
    opt.net.rho = 0.4;
    opt.net.seed = seed;
    return run_ihc(q, IhcOptions{.eta = 2}, opt);
  };
  const auto a = run_once(42);
  const auto b = run_once(42);
  EXPECT_EQ(a.finish, b.finish);
  EXPECT_EQ(a.stats.buffered_relays, b.stats.buffered_relays);
  EXPECT_EQ(a.stats.background_packets, b.stats.background_packets);
  EXPECT_EQ(a.stats.total_queue_wait, b.stats.total_queue_wait);
  const auto c = run_once(43);
  EXPECT_NE(a.finish, c.finish);  // different seed, different run
}

TEST(Determinism, FaultInjectionRepeatsExactlyForASeed) {
  const Hypercube q(4);
  auto run_once = [&q] {
    AtaOptions opt;
    opt.net.alpha = sim_ns(20);
    opt.net.tau_s = sim_us(5);
    opt.net.mu = 2;
    opt.granularity = DeliveryLedger::Granularity::kFull;
    FaultPlan plan(7);
    plan.add(3, FaultMode::kRandom);
    opt.faults = &plan;
    return run_ihc(q, IhcOptions{.eta = 2}, opt);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.stats.fault_drops, b.stats.fault_drops);
  EXPECT_EQ(a.stats.fault_corruptions, b.stats.fault_corruptions);
  EXPECT_EQ(a.ledger.total_copies(), b.ledger.total_copies());
}

TEST(Determinism, HypercubeDecompositionIsStableAcrossCalls) {
  const auto a = hypercube_hamiltonian_cycles(8);
  const auto b = hypercube_hamiltonian_cycles(8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].nodes(), b[i].nodes());
}

TEST(Stress, Q12DecomposesAndVerifies) {
  // 4096 nodes, 6 edge-disjoint Hamiltonian cycles via the Theorem 1
  // recursion - the largest decomposition in the default suite.
  const auto cycles = hypercube_hamiltonian_cycles(12);
  EXPECT_EQ(cycles.size(), 6u);
  const Graph g = make_hypercube_graph(12);
  const auto verdict = verify_hc_set(g, cycles, true);
  EXPECT_TRUE(verdict.ok) << verdict.reason;
}

TEST(Stress, LargeTorusDecomposes) {
  const auto cycles = torus_two_hamiltonian_cycles(48, 48);  // 2304 nodes
  const Graph g = make_torus_graph(48, 48);
  const auto verdict = verify_hc_set(g, cycles, true);
  EXPECT_TRUE(verdict.ok) << verdict.reason;
}

TEST(Stress, IhcOnQ10MatchesTheModelAtScale) {
  // ~10.5M packet-hop events: the Table II/III validation at the largest
  // size the suite simulates.
  const Hypercube q(10);
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  const auto result = run_ihc(q, IhcOptions{.eta = 2}, opt);
  EXPECT_EQ(result.stats.buffered_relays, 0u);
  EXPECT_DOUBLE_EQ(static_cast<double>(result.finish),
                   model::ihc_dedicated(1024, 2, opt.net));
  EXPECT_EQ(result.stats.deliveries, 10ull * 1024 * 1023);
}

// ~200M packet-hop events; excluded from the default run (enable with
// --gtest_also_run_disabled_tests) but kept as the simulator's
// large-scale regression: Q_12 must still match the closed form exactly.
TEST(Stress, DISABLED_IhcOnQ12AtScale) {
  const Hypercube q(12);
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  const auto result = run_ihc(q, IhcOptions{.eta = 2}, opt);
  EXPECT_EQ(result.stats.buffered_relays, 0u);
  EXPECT_DOUBLE_EQ(static_cast<double>(result.finish),
                   model::ihc_dedicated(4096, 2, opt.net));
  EXPECT_EQ(result.stats.deliveries, 12ull * 4096 * 4095);
}

TEST(LedgerGranularity, CountsAndFullModesAgree) {
  const Hypercube q(4);
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  opt.granularity = DeliveryLedger::Granularity::kCounts;
  const auto counts = run_ihc(q, IhcOptions{.eta = 2}, opt);
  opt.granularity = DeliveryLedger::Granularity::kFull;
  const auto full = run_ihc(q, IhcOptions{.eta = 2}, opt);
  EXPECT_EQ(counts.finish, full.finish);
  for (NodeId o = 0; o < 16; ++o) {
    for (NodeId d = 0; d < 16; ++d) {
      if (o == d) continue;
      EXPECT_EQ(counts.ledger.copies(o, d), full.ledger.copies(o, d));
      EXPECT_EQ(full.ledger.records(o, d).size(),
                full.ledger.copies(o, d));
    }
  }
  // kCounts mode refuses per-copy access.
  EXPECT_THROW((void)counts.ledger.records(0, 1), InvariantError);
}

TEST(UmbrellaHeader, ExposesTheWholeApi) {
  // Compile-time check mostly; spot-check a few symbols from each layer.
  EXPECT_EQ(HexMesh::node_count_for(3), 19u);
  EXPECT_GT(model::optimal_lower_bound(64, NetworkParams{}), 0.0);
  EXPECT_EQ(ihc_packet_count(5, 2), 3u);
  EXPECT_TRUE(decode_header(encode_header({1, 0, 0, 1, PacketKind::kData}))
                  .has_value());
}

}  // namespace
}  // namespace ihc
