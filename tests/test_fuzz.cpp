// Randomized property tests: random circulant members of class Lambda
// are generated, decomposed, checked for Lambda membership, and run
// through the IHC schedule machinery - end-to-end invariants under
// topology fuzzing.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include <numeric>
#include <set>

#include "core/analysis.hpp"
#include "core/ihc.hpp"
#include "graph/hamiltonian.hpp"
#include "sched/ihc_schedule.hpp"
#include "topology/circulant.hpp"
#include "topology/product.hpp"
#include "topology/lambda.hpp"
#include "util/rng.hpp"

namespace ihc {
namespace {

/// Draws a random valid circulant: N in [8, 60], 2-4 distinct jumps in
/// [1, N/2) coprime to N.
std::shared_ptr<Circulant> random_circulant(SplitMix64& rng) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const auto n = static_cast<NodeId>(8 + rng.below(53));
    const auto jump_count = static_cast<std::size_t>(2 + rng.below(3));
    std::set<NodeId> jumps;
    for (int tries = 0; tries < 40 && jumps.size() < jump_count; ++tries) {
      const auto d = static_cast<NodeId>(1 + rng.below((n - 1) / 2));
      if (2 * d < n && std::gcd(d, n) == 1) jumps.insert(d);
    }
    if (jumps.size() != jump_count) continue;
    return std::make_shared<Circulant>(
        n, std::vector<NodeId>(jumps.begin(), jumps.end()));
  }
  throw std::logic_error("could not draw a random circulant");
}

class CirculantFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CirculantFuzz, DecompositionAndLambdaMembership) {
  SplitMix64 rng(GetParam());
  const auto topo = random_circulant(rng);
  const auto verdict =
      verify_hc_set(topo->graph(), topo->hamiltonian_cycles(), true);
  EXPECT_TRUE(verdict.ok) << topo->name() << ": " << verdict.reason;
  const auto report = check_lambda(*topo, /*exact_limit=*/40, 16,
                                   GetParam());
  EXPECT_TRUE(report.in_lambda()) << topo->name() << ": " << report.detail;
  EXPECT_TRUE(report.connectivity) << topo->name() << ": " << report.detail;
}

TEST_P(CirculantFuzz, IhcScheduleInvariants) {
  SplitMix64 rng(GetParam() ^ 0xABCDEF);
  const auto topo = random_circulant(rng);
  const auto eta =
      static_cast<std::uint32_t>(1 + rng.below(topo->node_count() / 2));
  const IhcSchedule schedule(*topo, eta);
  const auto check = check_schedule(topo->graph(), schedule);
  EXPECT_EQ(check.link_conflicts, 0u) << topo->name() << " eta " << eta;
  const NodeId n = topo->node_count();
  EXPECT_EQ(check.total_sends,
            static_cast<std::uint64_t>(topo->gamma()) * n * (n - 1));
  EXPECT_TRUE(check.all_delivered(n, static_cast<std::uint8_t>(
                                         topo->gamma())));
}

TEST_P(CirculantFuzz, TimedRunWithValidEtaIsExact) {
  SplitMix64 rng(GetParam() ^ 0x5a5a5a);
  const auto topo = random_circulant(rng);
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(1);
  opt.net.mu = 2;
  const std::uint32_t eta =
      smallest_contention_free_eta(topo->node_count(), opt.net.mu);
  const auto result = run_ihc(*topo, IhcOptions{.eta = eta}, opt);
  EXPECT_EQ(result.stats.buffered_relays, 0u)
      << topo->name() << " eta " << eta;
  EXPECT_DOUBLE_EQ(
      static_cast<double>(result.finish),
      model::ihc_dedicated(topo->node_count(), eta, opt.net))
      << topo->name();
}

TEST_P(CirculantFuzz, ProductsOfRandomRingsStayInLambda) {
  // Random Cartesian products of rings (the generalized Theorem 1): the
  // product must carry the combined cycle count, verify, and run IHC
  // contention-free.
  SplitMix64 rng(GetParam() ^ 0x9137);
  auto ring = [&rng] {
    return std::make_shared<Ring>(static_cast<NodeId>(3 + rng.below(6)));
  };
  // (C_a x C_b) or (C_a x C_b) x C_c, randomly.
  std::shared_ptr<Topology> topo =
      std::make_shared<ProductTopology>(ring(), ring());
  if (rng.below(2) == 1)
    topo = std::make_shared<ProductTopology>(
        std::static_pointer_cast<const Topology>(topo), ring());
  const auto verdict =
      verify_hc_set(topo->graph(), topo->hamiltonian_cycles(),
                    /*must_cover_all=*/true);
  ASSERT_TRUE(verdict.ok) << topo->name() << ": " << verdict.reason;

  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(1);
  opt.net.mu = 2;
  const std::uint32_t eta =
      smallest_contention_free_eta(topo->node_count(), opt.net.mu);
  const auto result = run_ihc(*topo, IhcOptions{.eta = eta}, opt);
  EXPECT_EQ(result.stats.buffered_relays, 0u) << topo->name();
  EXPECT_TRUE(result.ledger.all_pairs_have(topo->gamma()))
      << topo->name();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CirculantFuzz,
                         ::testing::Range<std::uint64_t>(1, 17),
                         [](const auto& param) {
                           return "seed" + std::to_string(param.param);
                         });

}  // namespace
}  // namespace ihc
