// Tests for the Byzantine fault injector.
#include <gtest/gtest.h>

#include "sim/fault.hpp"
#include "util/rng.hpp"

namespace ihc {
namespace {

TEST(FaultPlan, HealthyNodesRelayFaithfully) {
  FaultPlan plan(derive_seed("tests", "faults"));
  EXPECT_FALSE(plan.is_faulty(3));
  EXPECT_EQ(plan.on_relay(3), RelayAction::kFaithful);
  EXPECT_EQ(plan.fault_count(), 0u);
}

TEST(FaultPlan, SilentNodesDropEverything) {
  FaultPlan plan(derive_seed("tests", "faults"));
  plan.add(3, FaultMode::kSilent);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(plan.on_relay(3), RelayAction::kDrop);
}

TEST(FaultPlan, CorruptNodesAlterEverything) {
  FaultPlan plan(derive_seed("tests", "faults"));
  plan.add(3, FaultMode::kCorrupt);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(plan.on_relay(3), RelayAction::kCorrupt);
}

TEST(FaultPlan, RandomNodesAreIntermittent) {
  FaultPlan plan(99);
  plan.add(3, FaultMode::kRandom);
  int faithful = 0, dropped = 0, corrupted = 0;
  for (int i = 0; i < 300; ++i) {
    switch (plan.on_relay(3)) {
      case RelayAction::kFaithful: ++faithful; break;
      case RelayAction::kDrop: ++dropped; break;
      case RelayAction::kCorrupt: ++corrupted; break;
      case RelayAction::kDelay: FAIL() << "kRandom never delays"; break;
    }
  }
  EXPECT_GT(faithful, 0);
  EXPECT_GT(dropped, 0);
  EXPECT_GT(corrupted, 0);
}

TEST(FaultPlan, EquivocatorsRelayButLieAsOrigins) {
  FaultPlan plan(derive_seed("tests", "faults"));
  plan.add(3, FaultMode::kEquivocate);
  EXPECT_EQ(plan.on_relay(3), RelayAction::kFaithful);
  const std::uint64_t honest = 42;
  const std::uint64_t lie0 = plan.origin_payload(3, honest, 0);
  const std::uint64_t lie1 = plan.origin_payload(3, honest, 1);
  EXPECT_NE(lie0, honest);
  EXPECT_NE(lie1, honest);
  EXPECT_NE(lie0, lie1);  // different lies on different routes
}

TEST(FaultPlan, HonestOriginsAreUnaffected) {
  FaultPlan plan(derive_seed("tests", "faults"));
  plan.add(3, FaultMode::kCorrupt);  // corrupts relays, not its own origin
  EXPECT_EQ(plan.origin_payload(3, 42, 0), 42u);
  EXPECT_EQ(plan.origin_payload(5, 42, 0), 42u);
}

TEST(FaultPlan, FaultyNodeListingIsSortedByNodeId) {
  // Regression: the listing used to leak unordered_map iteration order,
  // which varies across standard libraries.  Insert out of order and
  // assert the result is sorted WITHOUT sorting it here.
  FaultPlan plan(derive_seed("tests", "faults"));
  plan.add(7, FaultMode::kCorrupt);
  plan.add(1, FaultMode::kSilent);
  plan.add(12, FaultMode::kSlow);
  plan.add(3, FaultMode::kRandom);
  EXPECT_EQ(plan.faulty_nodes(), (std::vector<NodeId>{1, 3, 7, 12}));
}

TEST(FaultPlan, ModeAccessorDoesNotConsumeRandomDraws) {
  FaultPlan plan(derive_seed("tests", "faults"));
  plan.add(3, FaultMode::kRandom);
  EXPECT_EQ(plan.mode_of(3), FaultMode::kRandom);
  EXPECT_EQ(plan.mode_of(4), std::nullopt);
  // Two plans with the same seed stay in lockstep even when one of them
  // was inspected via mode_of between draws.
  FaultPlan twin(derive_seed("tests", "faults"));
  twin.add(3, FaultMode::kRandom);
  for (int i = 0; i < 50; ++i) {
    (void)plan.mode_of(3);
    EXPECT_EQ(plan.on_relay(3), twin.on_relay(3));
  }
}

}  // namespace
}  // namespace ihc
