// Tests for the periodic broadcast service.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "core/analysis.hpp"
#include "core/service.hpp"
#include "topology/hypercube.hpp"

namespace ihc {
namespace {

AtaOptions base_options() {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  return opt;
}

TEST(Service, RoundsMatchTheDedicatedModelAndMeetDeadlines) {
  const Hypercube q(4);
  const AtaOptions opt = base_options();
  ServiceConfig config;
  config.period = sim_us(100);
  config.rounds = 4;
  const ServiceReport r = run_periodic_service(q, config, opt);
  EXPECT_EQ(r.missed_deadlines, 0u);
  EXPECT_TRUE(r.all_rounds_complete);
  EXPECT_EQ(r.round_times.count(), 4u);
  // In a dedicated network every round is identical and equals the
  // Table II time.
  const double expected = model::ihc_dedicated(q.node_count(), 2, opt.net);
  EXPECT_DOUBLE_EQ(r.round_times.min(), expected);
  EXPECT_DOUBLE_EQ(r.round_times.max(), expected);
  EXPECT_NEAR(r.duty_cycle, expected / 100e6, 1e-12);
  EXPECT_EQ(r.total_deliveries, 4ull * q.gamma() * 16 * 15);
}

TEST(Service, TightPeriodReportsMissedDeadlines) {
  const Hypercube q(4);
  AtaOptions opt = base_options();
  opt.net.tau_s = sim_us(50);  // round ~100 us
  ServiceConfig config;
  config.period = sim_us(80);
  config.rounds = 3;
  const ServiceReport r = run_periodic_service(q, config, opt);
  EXPECT_GT(r.missed_deadlines, 0u);
  EXPECT_GT(r.duty_cycle, 1.0);
}

TEST(Service, BackgroundLoadShowsUpInRoundJitter) {
  const Hypercube q(4);
  AtaOptions opt = base_options();
  opt.net.tau_s = sim_ns(200);
  opt.net.rho = 0.4;
  opt.net.seed = 77;
  ServiceConfig config;
  config.period = sim_us(200);
  config.rounds = 6;
  const ServiceReport r = run_periodic_service(q, config, opt);
  EXPECT_TRUE(r.all_rounds_complete);
  EXPECT_GT(r.round_times.stddev(), 0.0);  // rounds differ under load
  EXPECT_GT(r.round_times.min(),
            model::ihc_dedicated(q.node_count(), 2, opt.net) - 1);
}

TEST(Service, ValidatesConfiguration) {
  const Hypercube q(3);
  EXPECT_THROW((void)run_periodic_service(
                   q, ServiceConfig{.period = 0}, base_options()),
               ConfigError);
  EXPECT_THROW((void)run_periodic_service(
                   q, ServiceConfig{.period = 100, .rounds = 0},
                   base_options()),
               ConfigError);
}

}  // namespace
}  // namespace ihc
