// Tests for CustomTopology (user-supplied Lambda members), the DOT
// export, and the flit-vs-packet simulator cross-validation.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "core/analysis.hpp"
#include "core/ihc.hpp"
#include "graph/export_dot.hpp"
#include "graph/hc_cache.hpp"
#include "graph/torus_decomposition.hpp"
#include "sim/flit_network.hpp"
#include "topology/custom.hpp"
#include "topology/lambda.hpp"
#include "topology/hypercube.hpp"
#include "topology/square_mesh.hpp"

namespace ihc {
namespace {

TEST(CustomTopology, WrapsAUserGraphAndRunsIhc) {
  // Build a torus by hand, decompose it, round-trip through the cache
  // format, and hand the result to CustomTopology - the full downstream-
  // user path.
  Graph g = make_torus_graph(4, 4);
  const auto cycles = torus_two_hamiltonian_cycles(4, 4);
  const std::string cache = serialize_cycles(g.node_count(), cycles);
  const ParsedCycles reloaded = parse_cycles(cache);

  const CustomTopology topo("user-torus", std::move(g), reloaded.cycles);
  EXPECT_EQ(topo.gamma(), 4u);
  EXPECT_TRUE(check_lambda(topo).in_lambda());

  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  const auto result = run_ihc(topo, IhcOptions{.eta = 2}, opt);
  EXPECT_EQ(result.stats.buffered_relays, 0u);
  EXPECT_TRUE(result.ledger.all_pairs_have(4));
}

TEST(CustomTopology, RejectsBadCycleSets) {
  Graph g = make_torus_graph(4, 4);
  // A non-Hamiltonian "cycle" passes construction but fails the lazy
  // verification on first use.
  const CustomTopology topo("bad", std::move(g), {Cycle({0, 1, 2, 3})});
  EXPECT_THROW((void)topo.hamiltonian_cycles(), InvariantError);
  Graph g2 = make_torus_graph(4, 4);
  EXPECT_THROW(CustomTopology("empty", std::move(g2), {}), ConfigError);
}

TEST(DotExport, PlainGraphListsEveryEdge) {
  const Graph c4 = make_cycle_graph(4);
  const std::string dot = to_dot(c4, "ring");
  EXPECT_NE(dot.find("graph ring {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("3 -- 0;"), std::string::npos);
  // Exactly 4 edges.
  std::size_t count = 0, pos = 0;
  while ((pos = dot.find("--", pos)) != std::string::npos) {
    ++count;
    pos += 2;
  }
  EXPECT_EQ(count, 4u);
}

TEST(DotExport, DecompositionColorsEveryCycleDistinctly) {
  const SquareMesh sq(4);
  const std::string dot =
      decomposition_to_dot(sq.graph(), sq.hamiltonian_cycles(), "sq4");
  // Two cycles -> two palette colors, no dashed leftovers.
  EXPECT_NE(dot.find("#D81B60"), std::string::npos);
  EXPECT_NE(dot.find("#1E88E5"), std::string::npos);
  EXPECT_EQ(dot.find("style=dashed"), std::string::npos);
}

TEST(DotExport, UnusedMatchingIsDashed) {
  // Q_3's decomposition leaves a perfect matching: drawn dashed.
  const Graph q3 = make_hypercube_graph(3);
  const auto cycles = hypercube_hamiltonian_cycles(3);
  const std::string dot = decomposition_to_dot(q3, cycles, "q3");
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

/// Cross-validation of the two simulators: for one dedicated IHC stage
/// with tau_S = 0, the packet-level finish divided by alpha is the ideal
/// pipeline time (mu + N - 2 cycles).  The flit-level router additionally
/// charges a one-cycle channel-turnaround penalty whenever a channel
/// changes owners in the cycle its previous tail leaves (switch
/// allocation latency, as in real routers) - packets spaced exactly mu
/// apart absorb a handful of those before decoupling, so the flit count
/// sits a small additive margin above the ideal, never below.
TEST(SimulatorCrossValidation, FlitCyclesMatchPacketLevelTime) {
  const SquareMesh mesh(4);
  const std::uint32_t eta = 2, mu = 2;

  // Packet level, single stage (eta = N gives one initiator per cycle -
  // instead run eta = 2 and divide by stages).
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = 0;
  opt.net.mu = mu;
  const auto packet_run = run_ihc(mesh, IhcOptions{.eta = eta}, opt);
  const double stage_alphas =
      static_cast<double>(packet_run.finish) /
      static_cast<double>(eta * opt.net.alpha);
  // Model: one stage = (mu + N - 2) alpha.
  EXPECT_DOUBLE_EQ(stage_alphas,
                   static_cast<double>(mu + mesh.node_count() - 2));

  // Flit level: the same stage (initiators eta apart, mu-flit packets).
  FlitNetwork net(mesh.graph(), FlitParams{.vc_count = 2,
                                           .buffer_flits = 2,
                                           .stall_threshold = 1000});
  const auto packets = ihc_flit_packets(mesh, eta, mu, true);
  for (const auto& p : packets) {
    FlitPacketSpec copy = p;
    net.add_packet(std::move(copy));
  }
  const auto flit_run = net.run();
  ASSERT_FALSE(flit_run.deadlocked);
  ASSERT_EQ(flit_run.delivered, packets.size());
  EXPECT_GE(static_cast<double>(flit_run.cycles), stage_alphas);
  EXPECT_LE(static_cast<double>(flit_run.cycles),
            stage_alphas + mesh.node_count() / 2.0 + mu);
}

/// With initiators spaced far apart (eta >= 2 mu) the turnaround penalty
/// vanishes and the flit simulator meets the packet-level ideal exactly.
TEST(SimulatorCrossValidation, SparseInterleavingMeetsTheIdealExactly) {
  const SquareMesh mesh(4);
  const std::uint32_t mu = 2;
  FlitNetwork net(mesh.graph(), FlitParams{.vc_count = 2,
                                           .buffer_flits = 2,
                                           .stall_threshold = 1000});
  const auto packets = ihc_flit_packets(mesh, /*eta=*/8, mu, true);
  for (const auto& p : packets) {
    FlitPacketSpec copy = p;
    net.add_packet(std::move(copy));
  }
  const auto flit_run = net.run();
  ASSERT_FALSE(flit_run.deadlocked);
  ASSERT_EQ(flit_run.delivered, packets.size());
  // Ideal: mu + (N - 2) cycles, plus the final consume cycle.
  const double ideal = mu + mesh.node_count() - 2;
  EXPECT_NEAR(static_cast<double>(flit_run.cycles), ideal, 2.0);
}

}  // namespace
}  // namespace ihc
