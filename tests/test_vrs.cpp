// Tests for the VRS algorithm (RS with cut-through) and VRS-ATA.
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/ihc.hpp"
#include "core/vrs.hpp"

namespace ihc {
namespace {

AtaOptions base_options() {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  return opt;
}

TEST(VrsTrees, OneTreePerCopySpanningAllNodes) {
  const Hypercube q(4);
  const auto trees = vrs_trees(q, 0);
  ASSERT_EQ(trees.size(), 4u);
  for (const auto& tree : trees) {
    // Root (source) + all 15 other nodes; returns omitted.
    EXPECT_EQ(tree.size(), 16u);
    std::vector<bool> seen(16, false);
    for (const auto& n : tree) {
      EXPECT_FALSE(seen[n.node]) << "node visited twice";
      seen[n.node] = true;
    }
  }
}

TEST(VrsTrees, ForwardsAreCutThroughPreferred) {
  const Hypercube q(4);
  const auto trees = vrs_trees(q, 0);
  // Each tree's entry node (depth 1) is reached by the initiation (SAF);
  // deeper nodes are a mix of forwards (CT) and redirects.
  std::size_t ct = 0, saf = 0;
  for (const auto& tree : trees)
    for (std::size_t i = 1; i < tree.size(); ++i)
      (tree[i].cut_through_preferred ? ct : saf)++;
  EXPECT_GT(ct, 0u);
  EXPECT_GT(saf, 0u);
}

TEST(VrsSingle, DeliversGammaCopiesFromOneSource) {
  const Hypercube q(4);
  const auto result = run_vrs_single(q, 3, base_options());
  for (NodeId d = 0; d < 16; ++d) {
    if (d == 3) continue;
    EXPECT_EQ(result.ledger.copies(3, d), 4u);
  }
}

TEST(VrsSingle, FinishIsNearTheVrsCostModel) {
  // Longest path: (gamma - 1) SAF + 2 CT per the paper.  The event-driven
  // simulator overlaps redirects that the step model serializes, so the
  // measured time is bounded by the model and not absurdly below it.
  const Hypercube q(6);
  const AtaOptions opt = base_options();
  const auto result = run_vrs_single(q, 0, opt);
  const double per_broadcast =
      model::vrs_ata_dedicated(q.node_count(), opt.net) /
      static_cast<double>(q.node_count());
  EXPECT_LE(static_cast<double>(result.finish), per_broadcast);
  EXPECT_GE(static_cast<double>(result.finish), 0.5 * per_broadcast);
}

TEST(VrsAta, AllPairsGetGammaCopies) {
  const Hypercube q(4);
  const auto result = run_vrs_ata(q, base_options());
  EXPECT_TRUE(result.ledger.all_pairs_have(4));
  EXPECT_EQ(result.ledger.total_copies(),
            4ull * 16 * 15 + 0ull);  // gamma copies per ordered pair
}

TEST(VrsAta, IsSlowerThanIhcInDedicatedMode) {
  // Table II's headline comparison.
  const Hypercube q(5);
  const AtaOptions opt = base_options();
  const auto vrs = run_vrs_ata(q, opt);
  const auto ihc = run_ihc(q, IhcOptions{.eta = 2}, opt);
  EXPECT_GT(vrs.finish, 4 * ihc.finish);
}

}  // namespace
}  // namespace ihc
