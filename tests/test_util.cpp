// Unit tests for the util substrate: RNG, tables, statistics, errors.
#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ihc {
namespace {

TEST(SplitMix64, IsDeterministicForAGivenSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(SplitMix64, BelowStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(13), 13u);
}

TEST(SplitMix64, BelowCoversTheWholeRange) {
  SplitMix64 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(SplitMix64, BelowRejectsZeroBound) {
  SplitMix64 rng(7);
  EXPECT_THROW(rng.below(0), InvariantError);
}

TEST(SplitMix64, UniformIsInUnitInterval) {
  SplitMix64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(SplitMix64, ExponentialHasRoughlyTheRequestedMean) {
  SplitMix64 rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(SplitMix64, ForkProducesAnIndependentStream) {
  SplitMix64 a(42);
  SplitMix64 child = a.fork(1);
  SplitMix64 b(42);
  (void)b();  // consume what fork consumed
  EXPECT_NE(child(), b());
}

TEST(Summary, TracksMomentsAndExtremes) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.total(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Summary, EmptySummaryIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(AsciiTable, RendersAlignedCells) {
  AsciiTable t("title");
  t.set_header({"a", "long-header"});
  t.add_row({"xxx", "1"});
  const std::string out = t.render();
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("| a   |"), std::string::npos);
  EXPECT_NE(out.find("| xxx | 1           |"), std::string::npos);
}

TEST(AsciiTable, RejectsMismatchedRowWidth) {
  AsciiTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvariantError);
}

TEST(Formatting, TimeUnitsAutoSelect) {
  EXPECT_EQ(fmt_time_ps(500), "500 ps");
  EXPECT_EQ(fmt_time_ps(20'000), "20.000 ns");
  EXPECT_EQ(fmt_time_ps(1'500'000'000), "1500.000 us");
  EXPECT_EQ(fmt_time_ps(1'500'000'000'000), "1500.000 ms");
  EXPECT_EQ(fmt_time_ps(15'000'000'000'000), "15.000 s");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_ratio(4.958), "4.96x");
}

TEST(Errors, RequireThrowsConfigError) {
  EXPECT_THROW(require(false, "bad"), ConfigError);
  EXPECT_NO_THROW(require(true, "ok"));
}

TEST(Errors, EnsureCarriesLocation) {
  try {
    IHC_ENSURE(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace ihc
