// The calendar queue must pop in exactly the (time, seq) order the
// legacy binary heap produces - that equivalence is what makes the
// optimized engine "observably invisible" (docs/PERFORMANCE.md).  These
// tests cross-check the two engines on randomized schedules that hit
// every structural path: dense same-time buckets, the spill heap beyond
// the ring horizon, interleaved push/pop (inserts into the sorted
// current bucket), and arena reuse via reset().
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace ihc {
namespace {

struct TestEvent {
  SimTime time = 0;
  std::uint32_t seq = 0;
  std::uint32_t payload = 0;
};

using Queue = CalendarQueue<TestEvent>;

std::vector<TestEvent> drain(Queue& q) {
  std::vector<TestEvent> out;
  while (!q.empty()) out.push_back(q.pop_min());
  return out;
}

void expect_same_order(const std::vector<TestEvent>& a,
                       const std::vector<TestEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << "at pop " << i;
    EXPECT_EQ(a[i].seq, b[i].seq) << "at pop " << i;
    EXPECT_EQ(a[i].payload, b[i].payload) << "at pop " << i;
  }
}

TEST(EventQueue, MatchesHeapOnRandomPushThenDrain) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SplitMix64 rng(seed);
    Queue cal(/*width_hint=*/4096, /*legacy=*/false);
    Queue heap(/*width_hint=*/4096, /*legacy=*/true);
    std::uint32_t seq = 0;
    for (int i = 0; i < 5000; ++i) {
      // Cluster times tightly (same-bucket collisions) but include
      // far-future outliers that must take the spill-heap path.
      const SimTime t = rng.below(100) == 0
                            ? static_cast<SimTime>(rng.below(1u << 26))
                            : static_cast<SimTime>(rng.below(1u << 14));
      const TestEvent ev{t, seq++, static_cast<std::uint32_t>(i)};
      cal.push(ev);
      heap.push(ev);
    }
    expect_same_order(drain(cal), drain(heap));
  }
}

TEST(EventQueue, MatchesHeapOnInterleavedPushPop) {
  SplitMix64 rng(42);
  Queue cal(/*width_hint=*/1024, /*legacy=*/false);
  Queue heap(/*width_hint=*/1024, /*legacy=*/true);
  std::uint32_t seq = 0;
  SimTime now = 0;
  std::vector<TestEvent> cal_pops;
  std::vector<TestEvent> heap_pops;
  for (int round = 0; round < 2000; ++round) {
    // A simulation step: pop one event, schedule a few successors at
    // now + small increments (the pattern the simulator produces).
    if (!cal.empty()) {
      const TestEvent ev = cal.pop_min();
      cal_pops.push_back(ev);
      heap_pops.push_back(heap.pop_min());
      now = ev.time;
    }
    const int births = static_cast<int>(rng.below(4));
    for (int k = 0; k < births; ++k) {
      const SimTime t = now + static_cast<SimTime>(rng.below(40'000));
      const TestEvent ev{t, seq++, static_cast<std::uint32_t>(round)};
      cal.push(ev);
      heap.push(ev);
    }
  }
  const std::vector<TestEvent> cal_rest = drain(cal);
  const std::vector<TestEvent> heap_rest = drain(heap);
  cal_pops.insert(cal_pops.end(), cal_rest.begin(), cal_rest.end());
  heap_pops.insert(heap_pops.end(), heap_rest.begin(), heap_rest.end());
  expect_same_order(cal_pops, heap_pops);
}

TEST(EventQueue, SameTimeEventsPopInSeqOrder) {
  Queue q(/*width_hint=*/4096, /*legacy=*/false);
  // Push same-time events out of seq order via two batches.
  for (std::uint32_t s : {3u, 1u, 4u, 0u, 2u}) q.push({1000, s, s});
  std::uint32_t expected = 0;
  while (!q.empty()) EXPECT_EQ(q.pop_min().seq, expected++);
}

TEST(EventQueue, ResetRetainsNothingAndReusesCleanly) {
  SplitMix64 rng(7);
  Queue q(/*width_hint=*/2048, /*legacy=*/false);
  Queue ref(/*width_hint=*/2048, /*legacy=*/true);
  for (int run = 0; run < 3; ++run) {
    q.reset(/*width_hint=*/2048, /*legacy=*/false);
    ref.reset(/*width_hint=*/2048, /*legacy=*/true);
    EXPECT_TRUE(q.empty());
    std::uint32_t seq = 0;
    for (int i = 0; i < 1000; ++i) {
      const TestEvent ev{static_cast<SimTime>(rng.below(1u << 22)), seq++,
                         static_cast<std::uint32_t>(run)};
      q.push(ev);
      ref.push(ev);
    }
    expect_same_order(drain(q), drain(ref));
  }
}

TEST(EventQueue, WidthHintOfOneStillOrdersCorrectly) {
  Queue q(/*width_hint=*/1, /*legacy=*/false);
  Queue ref(/*width_hint=*/1, /*legacy=*/true);
  SplitMix64 rng(9);
  std::uint32_t seq = 0;
  for (int i = 0; i < 2000; ++i) {
    const TestEvent ev{static_cast<SimTime>(rng.below(5000)), seq++, 0};
    q.push(ev);
    ref.push(ev);
  }
  expect_same_order(drain(q), drain(ref));
}

}  // namespace
}  // namespace ihc
