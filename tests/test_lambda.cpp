// Tests for class-Lambda membership checking (Section III).
#include <gtest/gtest.h>

#include "topology/circulant.hpp"
#include "topology/hex_mesh.hpp"
#include "topology/hypercube.hpp"
#include "topology/lambda.hpp"
#include "topology/square_mesh.hpp"

namespace ihc {
namespace {

TEST(Lambda, EvenHypercubesAreMembers) {
  for (unsigned m : {2u, 4u, 6u}) {
    const Hypercube q(m);
    const auto r = check_lambda(q);
    EXPECT_TRUE(r.in_lambda()) << "Q_" << m << ": " << r.detail;
    EXPECT_TRUE(r.connectivity) << r.detail;
  }
}

TEST(Lambda, OddHypercubesJoinViaLinkDeletion) {
  // Section III-A: deleting one link per node of Q_{2k+1} yields a member
  // with gamma = 2k.  Our effective graph is exactly that deletion.
  const Hypercube q(5);
  const auto r = check_lambda(q);
  EXPECT_TRUE(r.in_lambda()) << r.detail;
  EXPECT_EQ(q.gamma(), 4u);
  EXPECT_TRUE(r.connectivity) << r.detail;
}

TEST(Lambda, SquareAndHexMeshesAreMembers) {
  const SquareMesh sq(5);
  const auto rs = check_lambda(sq);
  EXPECT_TRUE(rs.in_lambda()) << rs.detail;
  EXPECT_TRUE(rs.connectivity_exact);

  const HexMesh h(3);
  const auto rh = check_lambda(h);
  EXPECT_TRUE(rh.in_lambda()) << rh.detail;
  EXPECT_TRUE(rh.connectivity) << rh.detail;
}

TEST(Lambda, CirculantsAreMembers) {
  const Circulant c(13, {1, 2, 3});
  const auto r = check_lambda(c);
  EXPECT_TRUE(r.in_lambda()) << r.detail;
  EXPECT_TRUE(r.connectivity) << r.detail;
}

TEST(Lambda, LargeGraphsUseSampledConnectivity) {
  const Hypercube q(8);
  const auto r = check_lambda(q, /*exact_limit=*/64, /*samples=*/4);
  EXPECT_TRUE(r.in_lambda()) << r.detail;
  EXPECT_FALSE(r.connectivity_exact);
  EXPECT_TRUE(r.connectivity);
}

TEST(Lambda, GammaMatchesVertexConnectivityExactlyOnSmallMembers) {
  // The paper: "if G belongs to the class Lambda, then gamma is the
  // connectivity of G."
  const SquareMesh sq(4);
  const auto r = check_lambda(sq, /*exact_limit=*/32);
  EXPECT_TRUE(r.connectivity_exact);
  EXPECT_TRUE(r.connectivity);
}

}  // namespace
}  // namespace ihc
