// Tests for the Dally-Seitz channel-dependency-graph deadlock analysis.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "sim/deadlock.hpp"
#include "topology/hex_mesh.hpp"
#include "topology/hypercube.hpp"
#include "topology/square_mesh.hpp"

namespace ihc {
namespace {

TEST(Cdg, BasicsAndValidation) {
  ChannelDependencyGraph cdg(4, 2);
  EXPECT_EQ(cdg.channel_count(), 8u);
  cdg.add_dependency({0, 0}, {1, 0});
  cdg.add_dependency({1, 0}, {2, 1});
  EXPECT_EQ(cdg.dependency_count(), 2u);
  EXPECT_TRUE(cdg.is_acyclic());
  EXPECT_THROW((void)cdg.channel_index(Channel{9, 0}), InvariantError);
  EXPECT_THROW((void)cdg.channel_index(Channel{0, 2}), InvariantError);
  EXPECT_THROW(ChannelDependencyGraph(4, 0), ConfigError);
}

TEST(Cdg, DetectsASimpleCycle) {
  ChannelDependencyGraph cdg(3, 1);
  cdg.add_dependency({0, 0}, {1, 0});
  cdg.add_dependency({1, 0}, {2, 0});
  cdg.add_dependency({2, 0}, {0, 0});
  EXPECT_FALSE(cdg.is_acyclic());
  EXPECT_EQ(cdg.find_cycle().size(), 3u);
}

TEST(Cdg, SelfLoopIsACycle) {
  ChannelDependencyGraph cdg(2, 1);
  cdg.add_dependency({0, 0}, {0, 0});
  EXPECT_FALSE(cdg.is_acyclic());
  EXPECT_EQ(cdg.find_cycle().size(), 1u);
}

/// With one channel per link, every Hamiltonian cycle's links form a
/// dependency ring: wormhole IHC could deadlock.
TEST(IhcDeadlock, SingleChannelIsCyclic) {
  for (const auto make :
       {+[]() -> std::unique_ptr<Topology> {
          return std::make_unique<Hypercube>(4);
        },
        +[]() -> std::unique_ptr<Topology> {
          return std::make_unique<SquareMesh>(4);
        },
        +[]() -> std::unique_ptr<Topology> {
          return std::make_unique<HexMesh>(3);
        }}) {
    const auto topo = make();
    const auto cdg = ihc_cdg_single_channel(*topo);
    EXPECT_FALSE(cdg.is_acyclic()) << topo->name();
    EXPECT_FALSE(cdg.find_cycle().empty()) << topo->name();
  }
}

/// The paper's remedy (Section IV): Dally-Seitz virtual channels make the
/// wormhole implementation deadlock-free - the CDG becomes acyclic.
TEST(IhcDeadlock, DallySeitzVirtualChannelsAreAcyclic) {
  for (const auto make :
       {+[]() -> std::unique_ptr<Topology> {
          return std::make_unique<Hypercube>(4);
        },
        +[]() -> std::unique_ptr<Topology> {
          return std::make_unique<Hypercube>(6);
        },
        +[]() -> std::unique_ptr<Topology> {
          return std::make_unique<SquareMesh>(5);
        },
        +[]() -> std::unique_ptr<Topology> {
          return std::make_unique<HexMesh>(3);
        }}) {
    const auto topo = make();
    const auto cdg = ihc_cdg_dally_seitz(*topo);
    EXPECT_TRUE(cdg.is_acyclic()) << topo->name();
    EXPECT_GT(cdg.dependency_count(), 0u);
  }
}

/// The dependency sets are the expected sizes: per directed cycle, N
/// packets each with N-3+1 consecutive-link pairs.
TEST(IhcDeadlock, DependencyCountMatchesTheRouteStructure) {
  const SquareMesh sq(4);  // N = 16, gamma = 4
  const auto cdg = ihc_cdg_single_channel(sq);
  const std::uint64_t per_cycle = 16ull * (16 - 2);
  EXPECT_EQ(cdg.dependency_count(), 4 * per_cycle);
}

}  // namespace
}  // namespace ihc
