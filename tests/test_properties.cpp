// Cross-cutting integration and property tests: every algorithm against
// every applicable topology, fault-tolerance sweeps, and the reliability
// structure of the IHC routes.
#include <gtest/gtest.h>

#include <set>

#include "core/ihc.hpp"
#include "core/ks.hpp"
#include "core/verify.hpp"
#include "core/vrs.hpp"
#include "core/vsq.hpp"
#include "sim/signature.hpp"
#include "topology/hex_mesh.hpp"
#include "topology/hypercube.hpp"
#include "topology/square_mesh.hpp"

namespace ihc {
namespace {

AtaOptions base_options() {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  return opt;
}

/// The IHC fault-tolerance structure: for every ordered pair (u, v) the
/// gamma directed-cycle routes are pairwise *edge*-disjoint, and the two
/// routes from one undirected HC are internally *node*-disjoint.
TEST(IhcRouteStructure, EdgeDisjointAcrossCyclesNodeDisjointPerPair) {
  const Hypercube q(4);
  const auto& dirs = q.directed_cycles();
  const Graph& g = q.graph();
  const NodeId n = q.node_count();
  for (NodeId u = 0; u < n; u += 5) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) continue;
      std::set<EdgeId> used_edges;
      for (std::size_t j = 0; j < dirs.size(); ++j) {
        // Walk the route u -> v along cycle j, collecting edges.
        NodeId cur = u;
        std::set<NodeId> interior;
        while (cur != v) {
          const NodeId nxt = dirs[j].next(cur);
          EXPECT_TRUE(used_edges.insert(g.find_edge(cur, nxt)).second)
              << "edge reuse on pair (" << u << "," << v << ") cycle " << j;
          if (nxt != v) interior.insert(nxt);
          cur = nxt;
        }
        // The sibling (reversed) cycle shares no interior node.
        if (j % 2 == 1) continue;
        NodeId cur2 = u;
        while (cur2 != v) {
          const NodeId nxt = dirs[j + 1].next(cur2);
          if (nxt != v) {
            EXPECT_FALSE(interior.contains(nxt))
                << "directions of HC " << j / 2 << " share node " << nxt;
          }
          cur2 = nxt;
        }
      }
    }
  }
}

/// Silent faults: a dropped relay removes downstream copies but the
/// received-majority vote still decides correctly when the faulty set is
/// small relative to gamma.
TEST(FaultSweep, IhcToleratesOneSilentFaultWithReceivedMajority) {
  const Hypercube q(4);  // gamma = 4
  AtaOptions opt = base_options();
  opt.granularity = DeliveryLedger::Granularity::kFull;
  FaultPlan plan(1);
  plan.add(5, FaultMode::kSilent);
  opt.faults = &plan;
  const auto result = run_ihc(q, IhcOptions{.eta = 2}, opt);
  const auto report = assess_reliability(result.ledger, nullptr, 4,
                                         plan.faulty_nodes(),
                                         VoteRule::kReceivedMajority);
  EXPECT_EQ(report.wrong, 0u);
  EXPECT_TRUE(report.all_correct())
      << report.correct << "/" << report.pairs << " undecided "
      << report.undecided;
}

/// Corrupting faults: all surviving copies are intact or tampered; the
/// tampered ones never masquerade as a majority under the strict rule.
TEST(FaultSweep, StrictMajorityNeverDecidesWrongUnderOneCorruptFault) {
  const Hypercube q(4);
  for (NodeId faulty : {NodeId{1}, NodeId{6}, NodeId{15}}) {
    AtaOptions opt = base_options();
    opt.granularity = DeliveryLedger::Granularity::kFull;
    FaultPlan plan(7);
    plan.add(faulty, FaultMode::kCorrupt);
    opt.faults = &plan;
    const auto result = run_ihc(q, IhcOptions{.eta = 2}, opt);
    const auto report = assess_reliability(result.ledger, nullptr, 4,
                                           plan.faulty_nodes());
    EXPECT_EQ(report.wrong, 0u) << "faulty node " << faulty;
  }
}

/// Signed messages on IHC: one corrupting fault can tamper at most one
/// direction per undirected HC, so at least gamma/2 validly-signed copies
/// survive per pair - the verdict is always correct.
TEST(FaultSweep, SignaturesMakeIhcImmuneToASingleCorruptingRelay) {
  const Hypercube q(4);
  AtaOptions opt = base_options();
  opt.granularity = DeliveryLedger::Granularity::kFull;
  const KeyRing keys(11);
  opt.keys = &keys;
  FaultPlan plan(3);
  plan.add(9, FaultMode::kCorrupt);
  opt.faults = &plan;
  const auto result = run_ihc(q, IhcOptions{.eta = 2}, opt);
  const auto report =
      assess_reliability(result.ledger, &keys, 4, plan.faulty_nodes());
  EXPECT_EQ(report.wrong, 0u);
  EXPECT_EQ(report.source_detected, 0u);
  EXPECT_TRUE(report.all_correct())
      << report.correct << "/" << report.pairs;
}

/// Signed messages on VRS reach the paper's full t <= gamma - 1 bound: the
/// routes are node-disjoint, so gamma - 1 corrupting faults still leave at
/// least one validly-signed copy per pair.
TEST(FaultSweep, SignaturesTolerateGammaMinusOneFaultsOnVrs) {
  const Hypercube q(4);
  AtaOptions opt = base_options();
  opt.granularity = DeliveryLedger::Granularity::kFull;
  const KeyRing keys(11);
  opt.keys = &keys;
  FaultPlan plan(3);
  plan.add(3, FaultMode::kCorrupt);
  plan.add(9, FaultMode::kCorrupt);
  plan.add(12, FaultMode::kCorrupt);
  opt.faults = &plan;
  const auto result = run_vrs_ata(q, opt);
  const auto report =
      assess_reliability(result.ledger, &keys, 4, plan.faulty_nodes());
  EXPECT_EQ(report.wrong, 0u);
  EXPECT_EQ(report.source_detected, 0u);
  EXPECT_TRUE(report.all_correct())
      << report.correct << "/" << report.pairs;
}

/// A two-faced (equivocating) source is detected by every destination in
/// signed mode.
TEST(FaultSweep, EquivocatingSourceIsDetectedEverywhere) {
  const Hypercube q(3);
  AtaOptions opt = base_options();
  opt.granularity = DeliveryLedger::Granularity::kFull;
  const KeyRing keys(11);
  opt.keys = &keys;
  FaultPlan plan(3);
  plan.add(2, FaultMode::kEquivocate);
  opt.faults = &plan;
  const auto result = run_ihc(q, IhcOptions{.eta = 2}, opt);
  for (NodeId d = 0; d < 8; ++d) {
    if (d == 2) continue;
    EXPECT_EQ(signed_accept(result.ledger, keys, 2, d, honest_payload(2)),
              Verdict::kSourceDetected)
        << "destination " << d;
  }
}

/// VRS's node-disjoint routes meet the Dolev bound: with
/// t = ceil(gamma/2) - 1 corrupting faults, strict majority voting is
/// correct for every pair of healthy nodes.
TEST(FaultSweep, VrsMeetsTheDolevBound) {
  const Hypercube q(4);  // gamma = 4, t = 1
  for (NodeId faulty : {NodeId{2}, NodeId{7}, NodeId{11}}) {
    AtaOptions opt = base_options();
    opt.granularity = DeliveryLedger::Granularity::kFull;
    FaultPlan plan(13);
    plan.add(faulty, FaultMode::kCorrupt);
    opt.faults = &plan;
    const auto result = run_vrs_ata(q, opt);
    const auto report = assess_reliability(result.ledger, nullptr, 4,
                                           plan.faulty_nodes());
    EXPECT_TRUE(report.all_correct())
        << "faulty " << faulty << ": " << report.correct << "/"
        << report.pairs << " wrong " << report.wrong << " undecided "
        << report.undecided;
  }
}

/// Background traffic slows IHC down but never breaks delivery.
TEST(BackgroundTraffic, IhcDegradesGracefully) {
  const Hypercube q(4);
  AtaOptions opt = base_options();
  const auto clean = run_ihc(q, IhcOptions{.eta = 2}, opt);
  opt.net.rho = 0.5;
  opt.net.seed = 99;
  const auto loaded = run_ihc(q, IhcOptions{.eta = 2}, opt);
  EXPECT_GE(loaded.finish, clean.finish);
  EXPECT_TRUE(loaded.ledger.all_pairs_have(q.gamma()));
  EXPECT_GT(loaded.stats.background_packets, 0u);
}

/// Higher eta lowers the broadcast's own link utilization - the paper's
/// trade-off knob (Section IV).
TEST(EtaTradeoff, UtilizationFallsAsEtaGrows) {
  const Hypercube q(5);
  const AtaOptions opt = base_options();
  const auto eta2 = run_ihc(q, IhcOptions{.eta = 2}, opt);
  const auto eta8 = run_ihc(q, IhcOptions{.eta = 8}, opt);
  EXPECT_LT(eta8.mean_link_utilization, eta2.mean_link_utilization);
  EXPECT_GT(eta8.finish, eta2.finish);
}

/// KS and VSQ remain functional under a silent fault (copies drop but
/// nothing is misdelivered).
TEST(FaultSweep, TreeAlgorithmsDropButNeverMisdeliver) {
  const SquareMesh mesh(4);
  AtaOptions opt = base_options();
  opt.granularity = DeliveryLedger::Granularity::kFull;
  FaultPlan plan(17);
  plan.add(5, FaultMode::kSilent);
  opt.faults = &plan;
  const auto result = run_vsq_ata(mesh, opt);
  const auto report = assess_reliability(result.ledger, nullptr, 4,
                                         plan.faulty_nodes(),
                                         VoteRule::kReceivedMajority);
  EXPECT_EQ(report.wrong, 0u);
}

}  // namespace
}  // namespace ihc
