// Tests for the FRS store-and-forward all-to-all broadcast.
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "util/rng.hpp"
#include "core/frs.hpp"
#include "core/verify.hpp"

namespace ihc {
namespace {

AtaOptions base_options() {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  return opt;
}

TEST(Frs, FinishMatchesTheClosedFormExactly) {
  for (unsigned m : {3u, 4u, 6u}) {
    const Hypercube q(m);
    const AtaOptions opt = base_options();
    const auto result = run_frs(q, opt);
    const double expected = model::frs_dedicated(q.node_count(), opt.net);
    EXPECT_DOUBLE_EQ(static_cast<double>(result.finish), expected)
        << "Q_" << m;
  }
}

TEST(Frs, WorstCaseAddsDPerStep) {
  const Hypercube q(4);
  AtaOptions opt = base_options();
  opt.net.queueing_delay = sim_us(1);
  const auto result = run_frs(q, opt);
  const double expected = model::frs_worst(q.node_count(), opt.net);
  EXPECT_DOUBLE_EQ(static_cast<double>(result.finish), expected);
}

TEST(Frs, DeliversGammaCopiesToEveryPair) {
  const Hypercube q(4);
  const auto result = run_frs(q, base_options());
  EXPECT_TRUE(result.ledger.all_pairs_have(4));
}

TEST(Frs, StepFinishTimesAreMonotoneAndDoubling) {
  const NetworkParams p = base_options().net;
  SimTime prev = 0;
  for (unsigned t = 1; t <= 7; ++t) {
    const SimTime f = frs_step_finish(p, 6, t);
    EXPECT_GT(f, prev);
    prev = f;
  }
  // The message volume totals (N-1) mu alpha across steps.
  const SimTime total = frs_step_finish(p, 6, 7);
  EXPECT_EQ(total, 7 * p.tau_s + 63 * 2 * p.alpha);
}

TEST(Frs, RelayFaultsCorruptDownstreamCopies) {
  const Hypercube q(3);
  AtaOptions opt = base_options();
  opt.granularity = DeliveryLedger::Granularity::kFull;
  FaultPlan plan(derive_seed("tests", "frs"));
  plan.add(1, FaultMode::kCorrupt);
  opt.faults = &plan;
  const auto result = run_frs(q, opt);
  // Some copy relayed through node 1 must be marked corrupted.
  std::size_t corrupted = 0;
  for (NodeId o = 0; o < 8; ++o)
    for (NodeId d = 0; d < 8; ++d)
      if (o != d)
        for (const auto& r : result.ledger.records(o, d))
          if (r.corrupted_by == 1) ++corrupted;
  EXPECT_GT(corrupted, 0u);
  // Copies delivered *to* node 1 from its neighbors directly are intact.
  EXPECT_GT(result.ledger.intact_copies(0, 1), 0u);
}

TEST(Frs, SignedModeDetectsTampering) {
  const Hypercube q(3);
  AtaOptions opt = base_options();
  opt.granularity = DeliveryLedger::Granularity::kFull;
  const KeyRing keys(5);
  opt.keys = &keys;
  FaultPlan plan(derive_seed("tests", "frs"));
  plan.add(1, FaultMode::kCorrupt);
  opt.faults = &plan;
  const auto result = run_frs(q, opt);
  const auto report =
      assess_reliability(result.ledger, &keys, 3, plan.faulty_nodes());
  EXPECT_TRUE(report.all_correct())
      << report.correct << "/" << report.pairs;
}

}  // namespace
}  // namespace ihc
