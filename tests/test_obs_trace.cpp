// The observability layer end-to-end: schema validation, the golden
// fixed-seed SQ_4 trace (byte-identical across runs, schema-valid by
// construction), zero perturbation of untraced results, and the
// flit-level simulator's cycle-timebase events.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/ihc.hpp"
#include "obs/obs.hpp"
#include "sim/flit_network.hpp"
#include "topology/square_mesh.hpp"

namespace ihc {
namespace {

AtaOptions sq4_options() {
  AtaOptions opt;
  opt.net.tau_s = sim_ns(200);
  opt.net.rho = 0.2;  // background traffic, so xmit/background events fire
  opt.net.seed = 42;  // the golden seed
  return opt;
}

/// Runs the golden trial: IHC (eta = 2) on SQ_4 with background load.
AtaResult run_sq4(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  const SquareMesh sq(4);
  AtaOptions opt = sq4_options();
  opt.tracer = tracer;
  opt.metrics = metrics;
  return run_ihc(sq, IhcOptions{.eta = 2}, opt);
}

TEST(ObsTrace, ValidateEventChecksTheSchema) {
  obs::TraceEvent e;
  e.name = "no_such_event";
  EXPECT_NE(obs::validate_event(e), "");

  e = {};
  e.name = "packet_injected";
  EXPECT_NE(obs::validate_event(e), "");  // required fields unset
  e.flow = 1;
  e.node = 0;
  e.origin = 0;
  e.route = 0;
  e.len = 2;
  EXPECT_EQ(obs::validate_event(e), "");

  obs::TraceEvent x;
  x.name = "xmit";
  x.phase = obs::TraceEvent::Phase::kSpan;
  x.link = 3;
  x.detail = "teleport";  // not an allowed kind
  EXPECT_NE(obs::validate_event(x), "");
  x.detail = "cut_through";
  EXPECT_EQ(obs::validate_event(x), "");
}

TEST(ObsTrace, GoldenSq4TraceIsByteIdentical) {
  auto render = [] {
    std::ostringstream out;
    {
      obs::ChromeTraceSink sink(out);
      obs::Tracer tracer;
      tracer.attach(&sink);
      run_sq4(&tracer, nullptr);
      EXPECT_GT(sink.event_count(), 0u);
      EXPECT_EQ(sink.event_count(), tracer.emitted());
    }  // destructor closes the document
    return out.str();
  };

  const std::string first = render();
  const std::string second = render();
  EXPECT_EQ(first, second);

  // Structural spot checks on the Chrome JSON Object Format document.
  EXPECT_EQ(first.rfind("{\"displayTimeUnit\"", 0), 0u);
  EXPECT_NE(first.find("\"schema\": \"ihc-trace-v1\""), std::string::npos);
  EXPECT_NE(first.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(first.find("\"name\": \"packet_injected\""), std::string::npos);
  EXPECT_NE(first.find("\"name\": \"delivered\""), std::string::npos);
  EXPECT_NE(first.find("\"name\": \"stage\""), std::string::npos);
  EXPECT_EQ(first.substr(first.size() - 3), "]}\n");
}

TEST(ObsTrace, CollectedEventsMatchTheRunAndValidate) {
  obs::CollectingSink sink;
  obs::Tracer tracer;
  tracer.attach(&sink);
  obs::MetricsRegistry metrics;
  const AtaResult result = run_sq4(&tracer, &metrics);

  std::size_t injected = 0, delivered = 0, spans = 0;
  for (const obs::TraceEvent& e : sink.events()) {
    EXPECT_EQ(obs::validate_event(e), "")
        << e.name << ": " << obs::validate_event(e);
    const std::string name(e.name);
    if (name == "packet_injected") ++injected;
    if (name == "delivered") ++delivered;
    if (name == "stage") ++spans;
  }
  EXPECT_EQ(injected, result.stats.injections);
  EXPECT_EQ(delivered, result.stats.deliveries);
  EXPECT_GT(spans, 0u);

  // The registry saw the same run the ledger did.
  EXPECT_EQ(metrics.counter("net.deliveries"),
            static_cast<std::int64_t>(result.stats.deliveries));
  EXPECT_EQ(metrics.counter("net.injections"),
            static_cast<std::int64_t>(result.stats.injections));
  EXPECT_FALSE(metrics.samples("ihc.stage_latency_ps").empty());
  EXPECT_FALSE(metrics.samples("net.link_utilization").empty());
}

TEST(ObsTrace, BoundedSinkKeepsTheMostRecentEvents) {
  obs::CollectingSink all;
  obs::Tracer full;
  full.attach(&all);
  run_sq4(&full, nullptr);
  const std::vector<obs::TraceEvent>& reference = all.events();
  ASSERT_GT(reference.size(), 500u);

  obs::CollectingSink ring(500);
  obs::Tracer bounded;
  bounded.attach(&ring);
  run_sq4(&bounded, nullptr);

  // The ring holds exactly the most recent max_events events, in
  // emission order, and dropped() accounts for every eviction.
  const std::vector<obs::TraceEvent>& kept = ring.events();
  ASSERT_EQ(kept.size(), 500u);
  EXPECT_EQ(ring.dropped(), reference.size() - kept.size());
  EXPECT_EQ(ring.dropped() + kept.size(), bounded.emitted());
  for (std::size_t i = 0; i < kept.size(); ++i) {
    const obs::TraceEvent& a = kept[i];
    const obs::TraceEvent& b = reference[reference.size() - 500 + i];
    EXPECT_STREQ(a.name, b.name);
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_EQ(a.track, b.track);
    EXPECT_EQ(a.flow, b.flow);
  }
}

TEST(ObsTrace, BoundedSinkBelowCapacityDropsNothing) {
  obs::CollectingSink sink(std::size_t{1} << 24);
  obs::Tracer tracer;
  tracer.attach(&sink);
  run_sq4(&tracer, nullptr);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_EQ(sink.events().size(), tracer.emitted());
}

TEST(ObsTrace, UntracedRunsAreUnperturbed) {
  const AtaResult plain = run_sq4(nullptr, nullptr);

  obs::CollectingSink sink;
  obs::Tracer tracer;
  tracer.attach(&sink);
  obs::MetricsRegistry metrics;
  const AtaResult traced = run_sq4(&tracer, &metrics);

  EXPECT_EQ(plain.finish, traced.finish);
  EXPECT_EQ(plain.stats.deliveries, traced.stats.deliveries);
  EXPECT_EQ(plain.stats.cut_throughs, traced.stats.cut_throughs);
  EXPECT_EQ(plain.stats.buffered_relays, traced.stats.buffered_relays);
  EXPECT_EQ(plain.stats.background_packets, traced.stats.background_packets);
}

TEST(ObsTrace, FlitSimulatorEmitsCycleTimebaseEvents) {
  const Graph ring = make_cycle_graph(6);
  auto run = [&](obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
    FlitNetwork net(ring, FlitParams{.vc_count = 1, .buffer_flits = 2});
    if (tracer != nullptr) net.set_tracer(tracer);
    if (metrics != nullptr) net.set_metrics(metrics);
    FlitPacketSpec spec;
    spec.length_flits = 3;
    for (NodeId i = 0; i < 4; ++i) spec.route.push_back(ring.link(i, i + 1));
    spec.vc.assign(4, 0);
    net.add_packet(std::move(spec));
    return net.run();
  };

  obs::CollectingSink sink;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  tracer.attach(&sink);
  const auto traced = run(&tracer, &metrics);
  const auto plain = run(nullptr, nullptr);
  EXPECT_EQ(traced.cycles, plain.cycles);
  EXPECT_EQ(traced.flit_hops, plain.flit_hops);

  std::size_t enqueues = 0, dequeues = 0;
  for (const obs::TraceEvent& e : sink.events()) {
    EXPECT_EQ(obs::validate_event(e), "") << e.name;
    if (e.phase != obs::TraceEvent::Phase::kMetadata) {
      EXPECT_EQ(e.timebase, obs::TimeBase::kCycles);
    }
    const std::string name(e.name);
    if (name == "fifo_enqueue") ++enqueues;
    if (name == "fifo_dequeue") ++dequeues;
  }
  // Every flit that entered a FIFO left it (the packet was delivered).
  EXPECT_GT(enqueues, 0u);
  EXPECT_EQ(enqueues, dequeues);
  EXPECT_GE(metrics.max_value("flit.max_fifo_depth"), 1);
}

}  // namespace
}  // namespace ihc
