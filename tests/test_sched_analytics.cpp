// Tests for the schedule load analytics: the IHC schedule's perfectly
// uniform link load (the structural reason Theorem 4's bound is attained)
// and the contrast with the RS broadcast's skewed load.
#include <gtest/gtest.h>

#include "sched/analytics.hpp"
#include "sched/ihc_schedule.hpp"
#include "sched/rs_schedule.hpp"
#include "topology/hex_mesh.hpp"
#include "topology/hypercube.hpp"
#include "topology/square_mesh.hpp"

namespace ihc {
namespace {

class IhcLoadUniformity : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(IhcLoadUniformity, EveryDirectedLinkCarriesExactlyNMinus1Packets) {
  const Hypercube q(4);
  const IhcSchedule schedule(q, GetParam());
  const auto report = analyze_schedule_load(q.graph(), schedule);
  EXPECT_TRUE(report.perfectly_uniform());
  EXPECT_EQ(report.min_load, q.node_count() - 1);
  EXPECT_DOUBLE_EQ(report.mean_load,
                   static_cast<double>(q.node_count() - 1));
}

INSTANTIATE_TEST_SUITE_P(Etas, IhcLoadUniformity,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& param) {
                           return "eta" + std::to_string(param.param);
                         });

TEST(IhcLoad, UniformAcrossTopologyFamilies) {
  const SquareMesh sq(5);
  const auto sq_report =
      analyze_schedule_load(sq.graph(), IhcSchedule(sq, 5));
  EXPECT_TRUE(sq_report.perfectly_uniform());
  EXPECT_EQ(sq_report.min_load, sq.node_count() - 1);

  const HexMesh hex(3);
  const auto hex_report =
      analyze_schedule_load(hex.graph(), IhcSchedule(hex, 19));
  EXPECT_TRUE(hex_report.perfectly_uniform());
  EXPECT_EQ(hex_report.min_load, hex.node_count() - 1);
}

TEST(IhcLoad, BusyFractionScalesInverselyWithEta) {
  const Hypercube q(6);
  const auto eta2 = analyze_schedule_load(q.graph(), IhcSchedule(q, 2));
  const auto eta8 = analyze_schedule_load(q.graph(), IhcSchedule(q, 8));
  EXPECT_NEAR(eta2.mean_busy_fraction / eta8.mean_busy_fraction, 4.0,
              0.01);
  // With eta = 1 every link is busy every step: utilization 1.
  const auto eta1 = analyze_schedule_load(q.graph(), IhcSchedule(q, 1));
  EXPECT_DOUBLE_EQ(eta1.mean_busy_fraction, 1.0);
  EXPECT_EQ(eta1.peak_busy_links, q.graph().link_count());
}

TEST(RsLoad, SingleBroadcastLoadIsSkewed) {
  // The RS broadcast loads the source's links heavily and distant links
  // once or not at all - the opposite of IHC's uniformity.
  const Hypercube q(4);
  const RsSchedule schedule(q, 0, /*include_returns=*/false);
  const auto report = analyze_schedule_load(q.graph(), schedule);
  EXPECT_FALSE(report.perfectly_uniform());
  EXPECT_EQ(report.min_load, 0u);  // some links unused by one broadcast
  EXPECT_GE(report.max_load, 1u);
}

}  // namespace
}  // namespace ihc
