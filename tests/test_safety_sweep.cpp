// Safety sweep: every ATA algorithm on every applicable topology under
// randomized Byzantine faults, asserting the universal safety invariant
// of signed messages - no healthy node is EVER misled (wrong verdicts are
// impossible; the worst outcome is an undecided pair).
#include <gtest/gtest.h>

#include "ihc.hpp"

namespace ihc {
namespace {

struct SweepCase {
  std::string name;
  std::uint64_t seed;
};

class SignedSafety : public ::testing::TestWithParam<SweepCase> {
 protected:
  static AtaOptions options(const KeyRing* keys, FaultPlan* plan) {
    AtaOptions opt;
    opt.net.alpha = sim_ns(20);
    opt.net.tau_s = sim_us(5);
    opt.net.mu = 2;
    opt.granularity = DeliveryLedger::Granularity::kFull;
    opt.keys = keys;
    opt.faults = plan;
    return opt;
  }

  /// Random fault plan: 1-3 faulty nodes with random modes.
  static FaultPlan random_plan(SplitMix64& rng, NodeId n) {
    FaultPlan plan(rng());
    const auto count = 1 + rng.below(3);
    while (plan.fault_count() < count) {
      const auto mode = static_cast<FaultMode>(rng.below(3));  // no equiv.
      plan.add(static_cast<NodeId>(rng.below(n)), mode);
    }
    return plan;
  }

  static void expect_never_wrong(const AtaResult& result,
                                 const KeyRing& keys, std::uint32_t gamma,
                                 const std::vector<NodeId>& faulty) {
    const auto report =
        assess_reliability(result.ledger, &keys, gamma, faulty);
    EXPECT_EQ(report.wrong, 0u) << result.algorithm;
    EXPECT_EQ(report.source_detected, 0u) << result.algorithm;
  }
};

TEST_P(SignedSafety, NoAlgorithmEverMisleadsAHealthyNode) {
  SplitMix64 rng(GetParam().seed);
  const KeyRing keys(GetParam().seed ^ 0xFEED);

  {
    const Hypercube q(4);
    FaultPlan plan = random_plan(rng, q.node_count());
    const auto opt = options(&keys, &plan);
    expect_never_wrong(run_ihc(q, IhcOptions{.eta = 2}, opt), keys, 4,
                       plan.faulty_nodes());
    expect_never_wrong(run_vrs_ata(q, opt), keys, 4, plan.faulty_nodes());
    expect_never_wrong(run_frs(q, opt), keys, 4, plan.faulty_nodes());
    expect_never_wrong(run_hc_broadcast(q, 0, opt), keys, 4,
                       plan.faulty_nodes());
  }
  {
    const HexMesh hex(3);
    FaultPlan plan = random_plan(rng, hex.node_count());
    const auto opt = options(&keys, &plan);
    expect_never_wrong(run_ihc(hex, IhcOptions{.eta = 4}, opt), keys, 6,
                       plan.faulty_nodes());
    expect_never_wrong(run_ks_ata(hex, opt), keys, 6,
                       plan.faulty_nodes());
  }
  {
    const SquareMesh sq(4);
    FaultPlan plan = random_plan(rng, sq.node_count());
    const auto opt = options(&keys, &plan);
    expect_never_wrong(run_ihc(sq, IhcOptions{.eta = 2}, opt), keys, 4,
                       plan.faulty_nodes());
    expect_never_wrong(run_vsq_ata(sq, opt), keys, 4,
                       plan.faulty_nodes());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SignedSafety,
    ::testing::Values(SweepCase{"s1", 101}, SweepCase{"s2", 202},
                      SweepCase{"s3", 303}, SweepCase{"s4", 404},
                      SweepCase{"s5", 505}, SweepCase{"s6", 606}),
    [](const auto& param) { return param.param.name; });

}  // namespace
}  // namespace ihc
