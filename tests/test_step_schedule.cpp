// Tests for the abstract step-schedule checker.
#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "sched/step_schedule.hpp"

namespace ihc {
namespace {

/// Hand-crafted schedule on a triangle for checker tests.
class ManualSchedule final : public StepScheduleSource {
 public:
  explicit ManualSchedule(std::vector<std::vector<ScheduleSend>> steps)
      : steps_(std::move(steps)) {}

  std::uint64_t step_count() const override { return steps_.size(); }
  void sends_at(std::uint64_t step,
                std::vector<ScheduleSend>& out) const override {
    out.insert(out.end(), steps_[step].begin(), steps_[step].end());
  }

 private:
  std::vector<std::vector<ScheduleSend>> steps_;
};

TEST(StepSchedule, CountsSendsAndDeliveries) {
  const Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  const LinkId l01 = g.link(0, 1);
  const LinkId l12 = g.link(1, 2);
  ManualSchedule s({{{l01, 0, 0}}, {{l12, 0, 0}}});
  const auto check = check_schedule(g, s);
  EXPECT_EQ(check.total_sends, 2u);
  EXPECT_EQ(check.link_conflicts, 0u);
  EXPECT_EQ(check.copies[0 * 3 + 1], 1u);
  EXPECT_EQ(check.copies[0 * 3 + 2], 1u);
  EXPECT_FALSE(check.all_delivered(3, 1));  // node 1's message never sent
}

TEST(StepSchedule, DetectsLinkConflicts) {
  const Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  const LinkId l01 = g.link(0, 1);
  // Two packets on the same directed link in the same step.
  ManualSchedule s({{{l01, 0, 0}, {l01, 2, 0}}});
  EXPECT_EQ(check_schedule(g, s).link_conflicts, 1u);
  // Opposite directions of one edge do NOT conflict.
  const LinkId l10 = g.link(1, 0);
  ManualSchedule s2({{{l01, 0, 0}, {l10, 1, 0}}});
  EXPECT_EQ(check_schedule(g, s2).link_conflicts, 0u);
  // Same link in different steps does not conflict.
  ManualSchedule s3({{{l01, 0, 0}}, {{l01, 2, 0}}});
  EXPECT_EQ(check_schedule(g, s3).link_conflicts, 0u);
}

TEST(StepSchedule, AllDeliveredRequiresEveryPair) {
  const Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  std::vector<ScheduleSend> everything;
  for (NodeId o = 0; o < 3; ++o)
    for (NodeId d = 0; d < 3; ++d)
      if (o != d) everything.push_back({g.link(o, d), o, 0});
  ManualSchedule s({everything});
  const auto check = check_schedule(g, s);
  EXPECT_TRUE(check.all_delivered(3, 1));
  EXPECT_FALSE(check.all_delivered(3, 2));
}

}  // namespace
}  // namespace ihc
