// Tests for the application modules built on the ATA broadcast: clock
// synchronization and distributed diagnosis (the paper's motivating
// applications, Section I).
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "core/clock_sync.hpp"
#include "core/diagnosis.hpp"
#include "topology/hex_mesh.hpp"
#include "topology/hypercube.hpp"
#include "util/rng.hpp"

namespace ihc {
namespace {

AtaOptions base_options() {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  return opt;
}

TEST(ClockEncoding, RoundTripsAtPicosecondResolution) {
  for (const double us : {0.0, 1.0, 123.456789, 999999.0}) {
    EXPECT_NEAR(decode_clock(encode_clock(us)), us, 1e-6);
  }
  EXPECT_THROW((void)encode_clock(-1.0), ConfigError);
}

TEST(ClockSync, OneRoundCollapsesSkewWithNoFaults) {
  const Hypercube q(4);
  SplitMix64 rng(7);
  std::vector<double> clocks(q.node_count());
  for (auto& c : clocks) c = 100.0 + 30.0 * rng.uniform();
  ClockSynchronizer sync(q, clocks, ClockSyncConfig{.fault_tolerance = 1});
  const auto round = sync.run_round(base_options());
  // The ATA broadcast gives all nodes identical reading sets, so one
  // round collapses the skew entirely (transport is exact here).
  EXPECT_GT(round.spread_before_us, 1.0);
  EXPECT_NEAR(round.spread_after_us, 0.0, 1e-9);
  EXPECT_GT(round.network_time, 0);
}

TEST(ClockSync, ToleratesAByzantineClock) {
  const Hypercube q(4);  // N = 16 > 3t with t = 1
  SplitMix64 rng(9);
  std::vector<double> clocks(q.node_count());
  for (auto& c : clocks) c = 100.0 + 30.0 * rng.uniform();
  clocks[11] = 5000.0;  // wildly wrong clock
  ClockSynchronizer sync(q, clocks, ClockSyncConfig{.fault_tolerance = 1});
  AtaOptions opt = base_options();
  FaultPlan faults(3);
  faults.add(11, FaultMode::kEquivocate);
  opt.faults = &faults;
  const auto round = sync.run_round(opt);
  // Healthy spread collapses; the liar cannot drag the midpoint because
  // the rule trims t extremes.
  EXPECT_NEAR(round.spread_after_us, 0.0, 1e-9);
  const double healthy_mean = sync.clocks()[0];
  EXPECT_LT(healthy_mean, 200.0);  // not pulled toward 5000
}

TEST(ClockSync, SawtoothUnderDriftStaysBounded) {
  const Hypercube q(4);
  SplitMix64 rng(11);
  std::vector<double> clocks(q.node_count(), 100.0);
  std::vector<double> drift(q.node_count());
  for (auto& d : drift) d = 200.0 * (rng.uniform() - 0.5);  // +-100 ppm
  ClockSynchronizer sync(q, clocks, ClockSyncConfig{.fault_tolerance = 1});
  double max_spread = 0;
  for (int round = 0; round < 5; ++round) {
    sync.advance(10'000.0, drift);  // 10 ms between rounds
    max_spread = std::max(max_spread, sync.spread_us());
    (void)sync.run_round(base_options());
    EXPECT_NEAR(sync.spread_us(), 0.0, 1e-6);
  }
  // Drift regrows about 2 us per interval (200 ppm x 10 ms) and each
  // round resets it: bounded sawtooth.
  EXPECT_LT(max_spread, 3.0);
  EXPECT_GT(max_spread, 0.5);
}

TEST(ClockSync, ValidatesConfiguration) {
  const Hypercube q(2);  // N = 4: too small for t = 2
  EXPECT_THROW(ClockSynchronizer(q, std::vector<double>(4, 0.0),
                                 ClockSyncConfig{.fault_tolerance = 2}),
               ConfigError);
  EXPECT_THROW(ClockSynchronizer(q, std::vector<double>(3, 0.0),
                                 ClockSyncConfig{.fault_tolerance = 1}),
               ConfigError);
}

TEST(Diagnosis, ConvictsASingleIntermittentNode) {
  const HexMesh hex(3);
  FaultPlan faults(0x5EED);
  faults.add(7, FaultMode::kRandom);
  DiagnosisConfig config;
  config.rounds = 8;
  const auto result =
      run_distributed_diagnosis(hex, faults, base_options(), config);
  EXPECT_EQ(result.convicted, 7u);
  // Unanimous or near-unanimous conviction.
  EXPECT_GE(result.votes[7], hex.node_count() - 2);
  EXPECT_EQ(result.rounds_run, 8u);
}

TEST(Diagnosis, ConvictsOnHypercubesToo) {
  const Hypercube q(4);
  FaultPlan faults(0xFEED);
  faults.add(13, FaultMode::kRandom);
  DiagnosisConfig config;
  config.rounds = 8;
  const auto result =
      run_distributed_diagnosis(q, faults, base_options(), config);
  EXPECT_EQ(result.convicted, 13u);
}

TEST(Diagnosis, SuspicionSeparatesCulpritFromInnocents) {
  const HexMesh hex(3);
  FaultPlan faults(0xABC);
  faults.add(4, FaultMode::kRandom);
  DiagnosisConfig config;
  config.rounds = 10;
  const auto result =
      run_distributed_diagnosis(hex, faults, base_options(), config);
  // The culprit's aggregate suspicion dominates every innocent's.
  for (NodeId w = 0; w < hex.node_count(); ++w) {
    if (w == 4) continue;
    EXPECT_GT(result.suspicion[4], result.suspicion[w]) << "node " << w;
  }
}

}  // namespace
}  // namespace ihc
