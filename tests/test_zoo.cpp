// The topology zoo: plugin registry dispatch, the membership pipeline
// (every registered check spec must certify; known non-members must be
// refuted), the ihc-topology-v1 loader, the search-based families
// (twisted cube, k-ary torus), the shared memo cache under concurrency,
// and zoo_sweep report determinism across job counts.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/ihc.hpp"
#include "exp/exp.hpp"
#include "topology/factory.hpp"
#include "topology/hypercube.hpp"
#include "topology/zoo/kary_torus.hpp"
#include "topology/zoo/loader.hpp"
#include "topology/zoo/registry.hpp"
#include "topology/zoo/twisted_cube.hpp"
#include "util/error.hpp"
#include "util/memo_cache.hpp"

#ifndef IHC_SOURCE_DIR
#error "IHC_SOURCE_DIR must point at the repository root"
#endif

namespace ihc {
namespace {

std::string example(const std::string& name) {
  return std::string(IHC_SOURCE_DIR) + "/examples/" + name;
}

// --- registry dispatch ----------------------------------------------------

TEST(ZooRegistry, PluginNamesAreUniqueAndComplete) {
  const auto& plugins = topology_registry();
  ASSERT_GE(plugins.size(), 8u);
  std::vector<std::string> names;
  for (const TopologyPlugin& p : plugins) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_TRUE(p.matches && p.make && p.probe) << p.name;
    names.push_back(p.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
  for (const char* required :
       {"hypercube", "square-mesh", "hex-mesh", "circulant", "torus3d",
        "twisted-cube", "kary-torus", "file"}) {
    EXPECT_NE(find_plugin_by_name(required), nullptr) << required;
  }
}

TEST(ZooRegistry, SpecDispatchIsUnambiguous) {
  // Prefix families must not shadow each other: SQ/TQ/KT claim their
  // specs before Q/T get a look.
  const std::pair<const char*, const char*> cases[] = {
      {"Q4", "hypercube"},        {"SQ4", "square-mesh"},
      {"H3", "hex-mesh"},         {"C13:1,5", "circulant"},
      {"T3x4", "torus3d"},        {"TQ3", "twisted-cube"},
      {"KT4x2", "kary-torus"},    {"net.topology.json", "file"},
  };
  for (const auto& [spec, plugin] : cases) {
    const TopologyPlugin* p = find_plugin(spec);
    ASSERT_NE(p, nullptr) << spec;
    EXPECT_EQ(p->name, plugin) << spec;
  }
  EXPECT_EQ(find_plugin("X9"), nullptr);
  EXPECT_EQ(find_plugin(""), nullptr);
}

TEST(ZooRegistry, FactoryDelegatesToRegistry) {
  EXPECT_EQ(make_topology("TQ3")->name(), "TQ_3");
  EXPECT_EQ(make_topology("KT3x2")->name(), "KT_3x2");
  EXPECT_THROW((void)make_topology("bogus"), ConfigError);
}

// --- the membership pipeline ----------------------------------------------

TEST(ZooMembership, EveryRegisteredCheckSpecCertifies) {
  // The acceptance gate of the zoo (and the zoo-smoke CI job): every
  // plugin's representative specs - hand-coded hints and searched
  // families alike - must come back kFound.
  for (const TopologyPlugin& p : topology_registry()) {
    for (const std::string& spec : p.check_specs) {
      const MembershipReport r = check_membership(spec);
      EXPECT_EQ(r.status, SearchStatus::kFound) << spec << ": " << r.detail;
      EXPECT_EQ(r.plugin, p.name) << spec;
      EXPECT_GE(r.gamma, 2u) << spec;
      EXPECT_EQ(r.cycles.size(), r.gamma / 2) << spec;
      EXPECT_TRUE(
          certify_decomposition(p.probe(spec).graph, r.cycles, r.gamma,
                                r.cover_all_edges)
              .ok)
          << spec;
    }
  }
}

TEST(ZooMembership, HypercubesQ3ThroughQ6Certify) {
  for (unsigned m = 3; m <= 6; ++m) {
    const MembershipReport r = check_membership("Q" + std::to_string(m));
    EXPECT_EQ(r.status, SearchStatus::kFound) << m;
    EXPECT_EQ(r.source, DecompSource::kHandCoded) << m;
    EXPECT_EQ(r.gamma, 2 * (m / 2)) << m;
  }
}

TEST(ZooMembership, SearchedFamiliesReportTheirSource) {
  const MembershipReport tq = check_membership("TQ4");
  EXPECT_EQ(tq.status, SearchStatus::kFound);
  EXPECT_EQ(tq.source, DecompSource::kExact);
  EXPECT_GT(tq.stats.exact_steps, 0u);

  const MembershipReport kt = check_membership("KT4x2");
  EXPECT_EQ(kt.status, SearchStatus::kFound);
  EXPECT_EQ(kt.source, DecompSource::kExact);
}

TEST(ZooMembership, IgnoreHintForcesTheSearchEngine) {
  const MembershipReport r = check_membership("Q4", {}, true);
  EXPECT_EQ(r.status, SearchStatus::kFound);
  EXPECT_EQ(r.source, DecompSource::kExact);
  EXPECT_GT(r.stats.exact_steps, 0u);
}

TEST(ZooMembership, StarIsRefutedStructurally) {
  const MembershipReport r =
      check_membership(example("star6.topology.json"));
  EXPECT_EQ(r.status, SearchStatus::kRefuted);
  EXPECT_NE(r.detail.find("not regular"), std::string::npos);
  EXPECT_TRUE(r.cycles.empty());
}

TEST(ZooMembership, PetersenIsRefutedExhaustively) {
  const MembershipReport r =
      check_membership(example("petersen.topology.json"));
  EXPECT_EQ(r.status, SearchStatus::kRefuted);
  EXPECT_TRUE(r.stats.exhausted);
}

TEST(ZooMembership, FileMemberCertifiesAndRuns) {
  const MembershipReport r = check_membership(example("k5.topology.json"));
  EXPECT_EQ(r.status, SearchStatus::kFound);
  EXPECT_EQ(r.gamma, 4u);

  // A certified file topology is a first-class IHC citizen.
  const std::shared_ptr<Topology> topo =
      make_file_topology(example("k5.topology.json"));
  AtaOptions opt;
  const AtaResult run = run_ihc(*topo, IhcOptions{.eta = 2}, opt);
  EXPECT_GT(run.finish, 0u);
}

TEST(ZooMembership, UnknownSpecThrowsWithGrammar) {
  try {
    (void)check_membership("Z9");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("expected"), std::string::npos);
  }
}

// --- the ihc-topology-v1 loader -------------------------------------------

TEST(ZooLoader, ParsesMinimalDocument) {
  const TopologyFile f = parse_topology_file(
      R"({"format": "ihc-topology-v1", "nodes": 3,
          "edges": [[0,1],[1,2],[2,0]]})");
  EXPECT_EQ(f.name, "custom");
  EXPECT_EQ(f.graph.node_count(), 3u);
  EXPECT_EQ(f.graph.edge_count(), 3u);
  EXPECT_EQ(f.gamma, 0u);
  EXPECT_TRUE(f.cycles.empty());
}

TEST(ZooLoader, RejectsSchemaViolations) {
  EXPECT_THROW((void)parse_topology_file("{}"), ConfigError);
  EXPECT_THROW((void)parse_topology_file(
                   R"({"format": "other", "nodes": 3, "edges": [[0,1]]})"),
               ConfigError);
  EXPECT_THROW((void)parse_topology_file(
                   R"({"format": "ihc-topology-v1", "nodes": 3,
                       "edges": [[0,3]]})"),
               ConfigError);
  EXPECT_THROW((void)parse_topology_file(
                   R"({"format": "ihc-topology-v1", "nodes": 4,
                       "edges": [[0,1],[1,2],[2,3],[3,0]], "gamma": 3})"),
               ConfigError);
}

TEST(ZooLoader, RejectsInvalidEmbeddedCyclesWithDiagnostic) {
  // The embedded "decomposition" repeats the ring's edges in reverse:
  // certification must fail and surface the certifier's failure class.
  try {
    (void)parse_topology_file(
        R"({"format": "ihc-topology-v1", "nodes": 4,
            "edges": [[0,1],[1,2],[2,3],[3,0],[0,2],[1,3]],
            "gamma": 4,
            "cycles": [[0,1,2,3],[0,1,2,3]]})");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("shared_edge"), std::string::npos);
  }
}

TEST(ZooLoader, ExportRoundTripsThroughParser) {
  const MembershipReport r = check_membership("TQ3");
  ASSERT_EQ(r.status, SearchStatus::kFound);
  const Graph g = make_twisted_cube_graph(3);
  const std::string doc =
      serialize_topology_file("tq3", g, r.gamma, r.cycles);
  const TopologyFile f = parse_topology_file(doc);
  EXPECT_EQ(f.name, "tq3");
  EXPECT_EQ(f.graph.node_count(), g.node_count());
  EXPECT_EQ(f.graph.edge_count(), g.edge_count());
  EXPECT_EQ(f.gamma, r.gamma);
  ASSERT_EQ(f.cycles.size(), r.cycles.size());
  EXPECT_EQ(f.cycles[0].nodes(), r.cycles[0].nodes());
}

// --- search-based families ------------------------------------------------

TEST(ZooTwistedCube, MatchesPublishedLtq3Adjacency) {
  // Yang, Evans & Megson's LTQ_3: the level-2 matching twists the
  // second bit by the parity of x_0.
  const Graph g = make_twisted_cube_graph(3);
  EXPECT_EQ(g.node_count(), 8u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.regular_degree(), 3u);
  for (const auto& [u, v] : std::vector<std::pair<NodeId, NodeId>>{
           {0b000, 0b100}, {0b001, 0b111}, {0b010, 0b110}, {0b011, 0b101}}) {
    EXPECT_TRUE(g.has_edge(u, v)) << u << "-" << v;
  }
  EXPECT_FALSE(g.has_edge(0b001, 0b101));  // untwisted partner absent
}

TEST(ZooTwistedCube, TopologyRunsIhc) {
  const TwistedCube tq(4);
  EXPECT_EQ(tq.name(), "TQ_4");
  EXPECT_EQ(tq.gamma(), 4u);
  EXPECT_EQ(tq.node_label(5), "0101");
  AtaOptions opt;
  const AtaResult run = run_ihc(tq, IhcOptions{.eta = 2}, opt);
  EXPECT_GT(run.finish, 0u);
  EXPECT_THROW(TwistedCube(1), ConfigError);
}

TEST(ZooKaryTorus, StructureAndCoordinates) {
  const KaryTorus t(4, 2);
  EXPECT_EQ(t.name(), "KT_4x2");
  EXPECT_EQ(t.node_count(), 16u);
  EXPECT_EQ(t.gamma(), 4u);
  EXPECT_EQ(t.coordinate(7, 0), 3u);  // 7 = (1,3) radix 4
  EXPECT_EQ(t.coordinate(7, 1), 1u);
  const Graph g = make_kary_torus_graph(3, 3);
  EXPECT_EQ(g.node_count(), 27u);
  EXPECT_EQ(g.regular_degree(), 6u);
  EXPECT_EQ(g.edge_count(), 3u * 27u);
  EXPECT_THROW(KaryTorus(2, 2), ConfigError);
}

// --- the shared memo cache under concurrency ------------------------------
// Runs under -DIHC_SANITIZE=thread in CI (ctest -R Parallel): the
// hypercube decomposition memo and the zoo's search memos share
// util/memo_cache.hpp, so one test exercises every production cache.

TEST(ZooParallel, MemoCachesAreThreadSafe) {
  std::vector<std::thread> threads;
  std::vector<std::size_t> lengths(8, 0);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([i, &lengths] {
      const std::vector<Cycle> tq = twisted_cube_hamiltonian_cycles(4);
      const std::vector<Cycle> kt = kary_torus_hamiltonian_cycles(3, 2);
      const Hypercube q5(5);
      lengths[i] = tq.size() + kt.size() + q5.hamiltonian_cycles().size();
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::size_t len : lengths) EXPECT_EQ(len, 2u + 2u + 2u);
}

TEST(ZooParallel, MemoCacheComputesOncePerKey) {
  MemoCache<int, int> cache;
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&cache] {
      for (int k = 0; k < 16; ++k)
        (void)cache.get_or_compute(k, [k] { return k * k; });
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(cache.size(), 16u);
  EXPECT_EQ(cache.get_or_compute(3, [] { return -1; }), 9);
}

// --- zoo_sweep determinism ------------------------------------------------

TEST(ZooSweep, ReportIsByteIdenticalAcrossJobCounts) {
  const exp::Campaign campaign =
      exp::make_builtin_campaign("zoo_sweep_quick");

  exp::RunOptions serial;
  serial.jobs = 1;
  serial.collect_metrics = true;
  exp::RunOptions parallel;
  parallel.jobs = 8;
  parallel.collect_metrics = true;

  const exp::CampaignResult a = exp::run_campaign(campaign, serial);
  const exp::CampaignResult b = exp::run_campaign(campaign, parallel);
  EXPECT_EQ(a.failed_count(), 0u);

  const exp::JsonReportOptions no_timing{.include_timing = false};
  const std::string doc = exp::json_report(a, no_timing);
  EXPECT_NE(doc, "");
  EXPECT_EQ(doc, exp::json_report(b, no_timing));

  // Every trial reports a gap >= 1 against the Section III lower bound.
  for (const exp::TrialResult& r : a.trials)
    EXPECT_GE(r.metric("optimality_gap"), 1.0) << r.trial.id;
}

}  // namespace
}  // namespace ihc
