// Tests for the topology spec parser and the Hamiltonian-cycle cache.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include <cstdio>

#include "graph/hamiltonian.hpp"
#include "graph/hc_cache.hpp"
#include "topology/factory.hpp"

namespace ihc {
namespace {

TEST(TopologyFactory, ParsesEveryFamily) {
  EXPECT_EQ(make_topology("Q6")->name(), "Q_6");
  EXPECT_EQ(make_topology("q6")->name(), "Q_6");  // case-insensitive
  EXPECT_EQ(make_topology("SQ5")->name(), "SQ_5");
  EXPECT_EQ(make_topology("sq5")->name(), "SQ_5");
  EXPECT_EQ(make_topology("H3")->name(), "H_3");
  EXPECT_EQ(make_topology("C15:1,2,4")->name(), "C(15; 1,2,4)");
  EXPECT_EQ(make_topology("T4x6")->name(), "SQ_4xC_6");
  EXPECT_EQ(make_topology("T4x6")->node_count(), 96u);
}

TEST(TopologyFactory, RejectsMalformedSpecs) {
  EXPECT_THROW((void)make_topology(""), ConfigError);
  EXPECT_THROW((void)make_topology("X7"), ConfigError);
  EXPECT_THROW((void)make_topology("Q"), ConfigError);
  EXPECT_THROW((void)make_topology("Q6junk"), ConfigError);
  EXPECT_THROW((void)make_topology("C15"), ConfigError);
  EXPECT_THROW((void)make_topology("C15:1,"), ConfigError);
  EXPECT_THROW((void)make_topology("T4"), ConfigError);
  // Structurally valid but semantically bad values also throw.
  EXPECT_THROW((void)make_topology("SQ2"), ConfigError);
  EXPECT_THROW((void)make_topology("C8:2"), ConfigError);
}

TEST(HcCache, RoundTripsThroughText) {
  const auto topo = make_topology("SQ4");
  const auto& cycles = topo->hamiltonian_cycles();
  const std::string text = serialize_cycles(topo->node_count(), cycles);
  const ParsedCycles parsed = parse_cycles(text);
  EXPECT_EQ(parsed.node_count, topo->node_count());
  ASSERT_EQ(parsed.cycles.size(), cycles.size());
  for (std::size_t i = 0; i < cycles.size(); ++i)
    EXPECT_EQ(parsed.cycles[i].nodes(), cycles[i].nodes());
  // And the reloaded set still verifies against the graph.
  const auto verdict = verify_hc_set(topo->graph(), parsed.cycles, true);
  EXPECT_TRUE(verdict.ok) << verdict.reason;
}

TEST(HcCache, RejectsCorruptDocuments) {
  EXPECT_THROW((void)parse_cycles("garbage"), ConfigError);
  EXPECT_THROW((void)parse_cycles("ihc-hc-v1 4"), ConfigError);
  // Vertex out of range.
  EXPECT_THROW((void)parse_cycles("ihc-hc-v1 4 1\n4 0 1 2 9\n"),
               ConfigError);
  // Truncated cycle.
  EXPECT_THROW((void)parse_cycles("ihc-hc-v1 4 1\n4 0 1 2\n"), ConfigError);
  // Duplicate vertex inside a cycle.
  EXPECT_THROW((void)parse_cycles("ihc-hc-v1 4 1\n4 0 1 2 2\n"),
               ConfigError);
}

TEST(HcCache, FileRoundTrip) {
  const auto topo = make_topology("H2");
  const std::string path = ::testing::TempDir() + "ihc_cache_test.hc";
  save_cycles_file(path, topo->node_count(), topo->hamiltonian_cycles());
  const auto loaded = load_cycles_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->cycles.size(), 3u);
  std::remove(path.c_str());
  EXPECT_FALSE(load_cycles_file(path).has_value());
}

}  // namespace
}  // namespace ihc
