// Tests for the C-wrapped hexagonal mesh H_m (Section III-C).
#include <gtest/gtest.h>

#include "util/error.hpp"

#include <numeric>

#include "graph/hamiltonian.hpp"
#include "topology/hex_mesh.hpp"

namespace ihc {
namespace {

TEST(HexMesh, NodeCountFormula) {
  EXPECT_EQ(HexMesh::node_count_for(2), 7u);
  EXPECT_EQ(HexMesh::node_count_for(3), 19u);
  EXPECT_EQ(HexMesh::node_count_for(4), 37u);
  EXPECT_EQ(HexMesh::node_count_for(5), 61u);
}

TEST(HexMesh, Structure) {
  const HexMesh h(3);
  EXPECT_EQ(h.node_count(), 19u);
  EXPECT_EQ(h.gamma(), 6u);
  EXPECT_EQ(h.graph().regular_degree(), 6u);
  EXPECT_EQ(h.graph().edge_count(), 3u * 19u);
  EXPECT_EQ(h.name(), "H_3");
}

TEST(HexMesh, RejectsSizeOne) { EXPECT_THROW(HexMesh(1), ConfigError); }

TEST(HexMesh, JumpsAreCoprimeToN) {
  for (NodeId m : {2u, 3u, 4u, 5u, 6u, 8u}) {
    const HexMesh h(m);
    for (const NodeId j : h.jumps())
      EXPECT_EQ(std::gcd(j, h.node_count()), 1u)
          << "H_" << m << " jump " << j;
  }
}

TEST(HexMesh, SizeTwoJumpsAreNormalized) {
  // H_2 has N = 7; raw jumps {1, 4, 5} normalize to {1, 3, 2}.
  const HexMesh h(2);
  EXPECT_EQ(h.jumps()[0], 1u);
  EXPECT_EQ(h.jumps()[1], 3u);
  EXPECT_EQ(h.jumps()[2], 2u);
}

TEST(HexMesh, NeighborsFollowTheSixDirections) {
  const HexMesh h(3);
  const NodeId n = h.node_count();
  for (unsigned d = 0; d < 3; ++d) {
    EXPECT_EQ(h.neighbor(5, d), (5 + h.jumps()[d]) % n);
    EXPECT_EQ(h.neighbor(5, d + 3), (5 + n - h.jumps()[d]) % n);
    EXPECT_TRUE(h.graph().has_edge(5, h.neighbor(5, d)));
  }
  EXPECT_THROW((void)h.neighbor(5, 6), ConfigError);
  // Opposite directions invert each other.
  for (unsigned d = 0; d < 6; ++d)
    EXPECT_EQ(h.neighbor(h.neighbor(5, d), (d + 3) % 6), 5u);
}

/// Section III-C: the edges of each direction describe a Hamiltonian
/// cycle, giving three edge-disjoint HCs.
class HexMeshDecomposition : public ::testing::TestWithParam<NodeId> {};

TEST_P(HexMeshDecomposition, ThreeDirectionalHamiltonianCycles) {
  const HexMesh h(GetParam());
  const auto& cycles = h.hamiltonian_cycles();
  ASSERT_EQ(cycles.size(), 3u);
  const auto verdict = verify_hc_set(h.graph(), cycles, true);
  EXPECT_TRUE(verdict.ok) << verdict.reason;
  // Each cycle uses only edges of one jump class.
  for (std::size_t i = 0; i < 3; ++i) {
    const NodeId jump = h.jumps()[i];
    const auto& nodes = cycles[i].nodes();
    for (std::size_t k = 0; k < nodes.size(); ++k) {
      const NodeId a = nodes[k];
      const NodeId b = nodes[(k + 1) % nodes.size()];
      const NodeId diff = (b + h.node_count() - a) % h.node_count();
      EXPECT_TRUE(diff == jump || diff == h.node_count() - jump);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HexMeshDecomposition,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 8u, 10u),
                         [](const auto& param) {
                           return "H" + std::to_string(param.param);
                         });

}  // namespace
}  // namespace ihc
