// Tests for the torus-wrapped square mesh SQ_m (Section III-B).
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "graph/hamiltonian.hpp"
#include "topology/square_mesh.hpp"

namespace ihc {
namespace {

TEST(SquareMesh, Structure) {
  const SquareMesh sq(5);
  EXPECT_EQ(sq.node_count(), 25u);
  EXPECT_EQ(sq.gamma(), 4u);
  EXPECT_EQ(sq.graph().regular_degree(), 4u);
  EXPECT_EQ(sq.name(), "SQ_5");
}

TEST(SquareMesh, RejectsTooSmall) { EXPECT_THROW(SquareMesh(2), ConfigError); }

TEST(SquareMesh, CoordinateMapping) {
  const SquareMesh sq(4);
  EXPECT_EQ(sq.node_at(2, 3), 11u);
  EXPECT_EQ(sq.row_of(11), 2u);
  EXPECT_EQ(sq.col_of(11), 3u);
  EXPECT_EQ(sq.node_label(11), "(2,3)");
}

TEST(SquareMesh, NeighborsWrapAround) {
  const SquareMesh sq(4);
  const NodeId corner = sq.node_at(0, 0);
  EXPECT_EQ(sq.neighbor(corner, 0), sq.node_at(0, 1));  // east
  EXPECT_EQ(sq.neighbor(corner, 1), sq.node_at(1, 0));  // south
  EXPECT_EQ(sq.neighbor(corner, 2), sq.node_at(0, 3));  // west wraps
  EXPECT_EQ(sq.neighbor(corner, 3), sq.node_at(3, 0));  // north wraps
  EXPECT_THROW((void)sq.neighbor(corner, 4), ConfigError);
  // Every neighbor relation is an edge.
  for (unsigned d = 0; d < 4; ++d)
    EXPECT_TRUE(sq.graph().has_edge(corner, sq.neighbor(corner, d)));
}

/// Fig. 3 of the paper: two edge-disjoint Hamiltonian cycles exist in any
/// SQ_m; condition LC2.
class SquareMeshDecomposition : public ::testing::TestWithParam<NodeId> {};

TEST_P(SquareMeshDecomposition, TwoEdgeDisjointHamiltonianCycles) {
  const SquareMesh sq(GetParam());
  const auto& cycles = sq.hamiltonian_cycles();
  ASSERT_EQ(cycles.size(), 2u);
  const auto verdict = verify_hc_set(sq.graph(), cycles, true);
  EXPECT_TRUE(verdict.ok) << verdict.reason;
}

INSTANTIATE_TEST_SUITE_P(Sides, SquareMeshDecomposition,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u, 8u, 12u, 16u),
                         [](const auto& param) {
                           return "SQ" + std::to_string(param.param);
                         });

TEST(SquareMesh, Sq4IsIsomorphicToQ4InSize) {
  // The paper notes SQ_4 is a redrawing of Q_4: same node count, degree,
  // and edge count.
  const SquareMesh sq(4);
  EXPECT_EQ(sq.node_count(), 16u);
  EXPECT_EQ(sq.graph().edge_count(), 32u);
  EXPECT_EQ(sq.gamma(), 4u);
}

}  // namespace
}  // namespace ihc
