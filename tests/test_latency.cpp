// Tests for the delivery-latency analytics.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "core/frs.hpp"
#include "core/ihc.hpp"
#include "core/latency.hpp"
#include "topology/hypercube.hpp"

namespace ihc {
namespace {

AtaOptions full_options() {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  opt.granularity = DeliveryLedger::Granularity::kFull;
  return opt;
}

TEST(Latency, RequiresFullGranularity) {
  DeliveryLedger counts_only(4, DeliveryLedger::Granularity::kCounts);
  EXPECT_THROW((void)delivery_latency(counts_only), ConfigError);
}

TEST(Latency, MilestonesAreOrderedAndMatchFinish) {
  const Hypercube q(4);
  const auto result = run_ihc(q, IhcOptions{.eta = 2}, full_options());
  const LatencyReport lat = delivery_latency(result.ledger);
  EXPECT_TRUE(lat.all_pairs_reached);
  EXPECT_LE(lat.first_copy_completion, lat.full_completion);
  EXPECT_EQ(lat.full_completion, result.finish);
  EXPECT_GT(lat.first_copy_completion, 0);
  // Distributions cover all ordered pairs.
  EXPECT_EQ(lat.first_copy_times.count(), 16u * 15u);
  EXPECT_LE(lat.first_copy_times.max(), lat.last_copy_times.max());
}

TEST(Latency, CraftedLedgerComputesExactMilestones) {
  DeliveryLedger ledger(2, DeliveryLedger::Granularity::kFull);
  CopyRecord a;
  a.time = 100;
  ledger.record(0, 1, a);
  a.time = 300;
  ledger.record(0, 1, a);
  a.time = 250;
  ledger.record(1, 0, a);
  const LatencyReport lat = delivery_latency(ledger);
  EXPECT_TRUE(lat.all_pairs_reached);
  EXPECT_EQ(lat.first_copy_completion, 250);  // max(min(100,300), 250)
  EXPECT_EQ(lat.full_completion, 300);
  EXPECT_DOUBLE_EQ(lat.first_copy_times.mean(), (100 + 250) / 2.0);
}

TEST(Latency, MissingPairIsReported) {
  DeliveryLedger ledger(3, DeliveryLedger::Granularity::kFull);
  CopyRecord a;
  a.time = 10;
  ledger.record(0, 1, a);
  const LatencyReport lat = delivery_latency(ledger);
  EXPECT_FALSE(lat.all_pairs_reached);
}

TEST(Latency, IhcFirstAndLastMilestonesAreCloserThanFrs) {
  // Structural contrast: IHC pipelines every copy through a full cycle,
  // so its first-copy and all-copies milestones are within one stage of
  // each other; FRS delivers the bulk in its final doubling steps.
  const Hypercube q(4);
  const auto ihc_run = run_ihc(q, IhcOptions{.eta = 2}, full_options());
  const auto frs_run = run_frs(q, full_options());
  const auto li = delivery_latency(ihc_run.ledger);
  const auto lf = delivery_latency(frs_run.ledger);
  const double ihc_gap = static_cast<double>(li.full_completion) /
                         static_cast<double>(li.first_copy_completion);
  EXPECT_LT(ihc_gap, 2.1);  // within ~one stage
  EXPECT_LT(li.full_completion, lf.first_copy_completion);
}

}  // namespace
}  // namespace ihc
