// MetricsRegistry semantics: kind discipline, merge (counters add, maxima
// max, histogram samples concatenate in order), and the deterministic
// name-sorted JSON serialization the campaign reports depend on.
#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace ihc::obs {
namespace {

TEST(ObsMetrics, CountersMaximaHistograms) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.counter("absent"), 0);
  EXPECT_EQ(reg.max_value("absent"), 0);
  EXPECT_TRUE(reg.samples("absent").empty());

  reg.count("net.deliveries");
  reg.count("net.deliveries", 4);
  reg.maximum("flit.max_fifo_depth", 3);
  reg.maximum("flit.max_fifo_depth", 1);  // below the watermark: no-op
  reg.observe("ihc.stage_latency_ps", 10.0);
  reg.observe("ihc.stage_latency_ps", 30.0);

  EXPECT_FALSE(reg.empty());
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.counter("net.deliveries"), 5);
  EXPECT_EQ(reg.max_value("flit.max_fifo_depth"), 3);
  EXPECT_EQ(reg.samples("ihc.stage_latency_ps"),
            (std::vector<double>{10.0, 30.0}));
}

TEST(ObsMetrics, KindIsFixedOnFirstTouch) {
  MetricsRegistry reg;
  reg.count("x");
  EXPECT_THROW(reg.maximum("x", 1), ConfigError);
  EXPECT_THROW(reg.observe("x", 1.0), ConfigError);
  EXPECT_THROW((void)reg.max_value("x"), ConfigError);
  EXPECT_THROW((void)reg.samples("x"), ConfigError);
  EXPECT_EQ(reg.counter("x"), 1);  // untouched by the failed accesses

  MetricsRegistry other;
  other.observe("x", 2.0);
  EXPECT_THROW(reg.merge(other), ConfigError);
}

TEST(ObsMetrics, MergeAddsMaxesAndConcatenates) {
  MetricsRegistry a;
  a.count("c", 2);
  a.maximum("m", 7);
  a.observe("h", 1.0);
  a.count("only_a", 1);

  MetricsRegistry b;
  b.count("c", 3);
  b.maximum("m", 5);
  b.observe("h", 2.0);
  b.observe("h", 0.5);
  b.maximum("only_b", 9);

  a.merge(b);
  EXPECT_EQ(a.counter("c"), 5);
  EXPECT_EQ(a.max_value("m"), 7);
  EXPECT_EQ(a.samples("h"), (std::vector<double>{1.0, 2.0, 0.5}));
  EXPECT_EQ(a.counter("only_a"), 1);
  EXPECT_EQ(a.max_value("only_b"), 9);
  EXPECT_EQ(a.size(), 5u);

  // Merging an empty registry is a no-op; merge order matters only for
  // histogram sample order, which is why the runner merges in expansion
  // order.
  const std::string before = a.to_json().dump(0);
  a.merge(MetricsRegistry{});
  EXPECT_EQ(a.to_json().dump(0), before);
}

TEST(ObsMetrics, JsonIsNameSortedAndComplete) {
  MetricsRegistry reg;
  reg.observe("b.hist", 4.0);
  reg.observe("b.hist", 2.0);
  reg.count("z.counter", 6);
  reg.maximum("a.max", 11);

  const std::string json = reg.to_json().dump(0);
  EXPECT_EQ(json,
            "{\"a.max\": {\"kind\": \"max\",\"value\": 11},"
            "\"b.hist\": {\"kind\": \"histogram\",\"count\": 2,"
            "\"mean\": 3,\"min\": 2,\"max\": 4,\"p50\": 2,\"p90\": 4,"
            "\"p99\": 4,\"samples\": [4,2]},"
            "\"z.counter\": {\"kind\": \"counter\",\"value\": 6}}");
}

}  // namespace
}  // namespace ihc::obs
