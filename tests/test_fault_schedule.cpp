// Tests for the dynamic fault-and-recovery subsystem: FaultSchedule
// window semantics and JSON round-trips, kSlow-at-origin parity across
// both simulation engines, mid-stage link death recovered by reissue on
// surviving cycles, and chaos_soak report determinism across worker
// counts (docs/FAULTS.md).
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

#include "core/ihc.hpp"
#include "core/retransmit.hpp"
#include "exp/exp.hpp"
#include "graph/cycle.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/flit_network.hpp"
#include "sim/network.hpp"
#include "topology/hypercube.hpp"

namespace ihc {
namespace {

std::uint64_t test_seed() { return derive_seed("tests", "fault_schedule"); }

TEST(FaultSchedule, WindowOnsetRepairAndLatestWins) {
  FaultSchedule s(test_seed());
  EXPECT_TRUE(s.empty());
  s.fault_node(3, FaultMode::kSilent, 100);
  EXPECT_EQ(s.mode_at(3, 99), std::nullopt);
  EXPECT_EQ(s.mode_at(3, 100), FaultMode::kSilent);
  EXPECT_EQ(s.mode_at(3, 1'000'000), FaultMode::kSilent);  // open-ended
  EXPECT_EQ(s.mode_at(4, 100), std::nullopt);  // other nodes untouched

  // Repair truncates the open window: closed-open [100, 500).
  s.repair_node(3, 500);
  EXPECT_EQ(s.mode_at(3, 499), FaultMode::kSilent);
  EXPECT_EQ(s.mode_at(3, 500), std::nullopt);

  // Overlapping windows: the latest-added wins while it is active, the
  // earlier one shows through once it closes.
  s.fault_node(3, FaultMode::kSlow, 200, 100);
  EXPECT_EQ(s.mode_at(3, 250), FaultMode::kSlow);
  EXPECT_EQ(s.mode_at(3, 350), FaultMode::kSilent);
  EXPECT_EQ(s.mode_at(3, 600), std::nullopt);
  EXPECT_EQ(s.window_count(), 2u);
}

TEST(FaultSchedule, LinkGlitchAndPermanentDeath) {
  FaultSchedule s(test_seed());
  s.glitch_link(7, 100, 50);  // dead over [100, 150)
  EXPECT_FALSE(s.link_dead(7, 99));
  EXPECT_TRUE(s.link_dead(7, 100));
  EXPECT_TRUE(s.link_dead(7, 149));
  EXPECT_FALSE(s.link_dead(7, 150));
  EXPECT_FALSE(s.link_dead(8, 120));

  s.fail_link(8, 200);  // permanent from 200 on
  EXPECT_FALSE(s.link_dead(8, 199));
  EXPECT_TRUE(s.link_dead(8, 200));
  EXPECT_TRUE(s.link_dead(8, FaultSchedule::kForever - 1));

  EXPECT_THROW(s.glitch_link(9, -1, 10), ConfigError);
  EXPECT_THROW(s.glitch_link(9, 0, 0), ConfigError);
}

TEST(FaultSchedule, ChangePointsCoverEveryRegimeAfterTheSample) {
  FaultSchedule s(test_seed());
  s.fault_node(3, FaultMode::kSilent, 100, 200);  // [100, 300)
  s.fault_node(3, FaultMode::kSlow, 250, 100);    // [250, 350)
  s.fault_node(3, FaultMode::kCorrupt, 500);      // [500, forever)
  s.fault_node(4, FaultMode::kSilent, 150, 10);   // other node: excluded

  // Sorted, deduplicated, strictly after the sample point; the open
  // window contributes its start but no (infinite) end.
  EXPECT_EQ(s.node_change_points(3, 0),
            (std::vector<SimTime>{100, 250, 300, 350, 500}));
  EXPECT_EQ(s.node_change_points(3, 250),
            (std::vector<SimTime>{300, 350, 500}));
  EXPECT_EQ(s.node_change_points(3, 500), (std::vector<SimTime>{}));
  EXPECT_EQ(s.node_change_points(5, 0), (std::vector<SimTime>{}));
}

TEST(FaultSchedule, LinkDeadFromNeedsAGaplessCoverToForever) {
  FaultSchedule s(test_seed());
  s.glitch_link(7, 100, 50);  // bounded: always repairs
  EXPECT_FALSE(s.link_dead_from(7, 120));

  // Overlapping windows chaining into an unrepaired one: dead from any
  // point inside the cover, but not from before it starts.
  s.glitch_link(8, 100, 100);  // [100, 200)
  s.glitch_link(8, 180, 120);  // [180, 300)
  s.fail_link(8, 290);         // [290, forever)
  EXPECT_TRUE(s.link_dead_from(8, 100));
  EXPECT_TRUE(s.link_dead_from(8, 250));
  EXPECT_FALSE(s.link_dead_from(8, 99));  // alive during [0, 100)

  // A gap before the permanent window breaks the cover.
  s.glitch_link(9, 100, 50);
  s.fail_link(9, 200);
  EXPECT_FALSE(s.link_dead_from(9, 120));  // alive during [150, 200)
  EXPECT_TRUE(s.link_dead_from(9, 200));
  EXPECT_TRUE(s.link_dead_from(9, 10'000'000));
}

TEST(FaultSchedule, JsonRoundTripPreservesEveryWindow) {
  FaultSchedule s(test_seed());
  s.set_slow_delay(sim_us(3));
  s.fault_node(2, FaultMode::kSilent, sim_us(1), sim_us(7));
  s.fault_node(5, FaultMode::kSlow, 0);
  s.glitch_link(12, sim_us(4), sim_us(3));
  s.fail_link(0, sim_us(2));

  const Json doc = s.to_json();
  const FaultSchedule back = FaultSchedule::from_json(doc, 0);
  EXPECT_EQ(doc.dump(0), back.to_json().dump(0));
  EXPECT_EQ(back.mode_at(2, sim_us(5)), FaultMode::kSilent);
  EXPECT_EQ(back.mode_at(2, sim_us(8)), std::nullopt);
  EXPECT_EQ(back.mode_at(5, sim_us(100)), FaultMode::kSlow);
  EXPECT_EQ(back.slow_penalty(5, 0), sim_us(3));
  EXPECT_TRUE(back.link_dead(12, sim_us(5)));
  EXPECT_FALSE(back.link_dead(12, sim_us(8)));
  EXPECT_TRUE(back.link_dead(0, sim_us(100)));
}

TEST(FaultSchedule, ParsesScheduleDocumentsAndRejectsBadOnes) {
  std::string error;
  const auto doc = Json::parse(R"({
    "schema": "ihc-fault-schedule-v1",
    "slow_delay_ps": 1000,
    "events": [
      {"kind": "degrade", "node": 3, "at_ps": 0, "duration_ps": 500},
      {"kind": "node_fault", "node": 1, "mode": "silent", "at_ps": 10},
      {"kind": "node_repair", "node": 1, "at_ps": 90},
      {"kind": "link_glitch", "link": 4, "at_ps": 20, "duration_ps": 5}
    ]
  })", &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const FaultSchedule s = FaultSchedule::from_json(*doc, test_seed());
  EXPECT_EQ(s.mode_at(3, 100), FaultMode::kSlow);  // "degrade" sugar
  EXPECT_EQ(s.slow_penalty(3, 100), 1000);
  EXPECT_EQ(s.mode_at(1, 50), FaultMode::kSilent);
  EXPECT_EQ(s.mode_at(1, 90), std::nullopt);  // repaired
  EXPECT_TRUE(s.link_dead(4, 22));

  auto reject = [&](const char* text) {
    std::string err;
    const auto bad = Json::parse(text, &err);
    ASSERT_TRUE(bad.has_value()) << err;
    EXPECT_THROW(FaultSchedule::from_json(*bad, 0), ConfigError);
  };
  reject(R"({"schema": "wrong", "events": []})");
  reject(R"({"schema": "ihc-fault-schedule-v1"})");  // no events
  reject(R"({"schema": "ihc-fault-schedule-v1",
             "events": [{"kind": "quantum_flux", "at_ps": 0}]})");
  reject(R"({"schema": "ihc-fault-schedule-v1",
             "events": [{"kind": "node_fault", "node": 1, "at_ps": 0}]})");
  reject(R"({"schema": "ihc-fault-schedule-v1",
             "events": [{"kind": "link_fail", "at_ps": 0}]})");
}

// --- kSlow at the origin, identically in both engines ---------------------

/// A path-shaped "cycle" helper matching test_sim_network.cpp.
struct Ring {
  Graph g;
  Cycle cycle;
  DirectedCycle dir;
  explicit Ring(NodeId n)
      : g(make_cycle_graph(n)),
        cycle([n] {
          std::vector<NodeId> seq(n);
          for (NodeId i = 0; i < n; ++i) seq[i] = i;
          return Cycle(seq);
        }()),
        dir(cycle, false, n) {}
};

SimTime packet_finish(const Ring& r, const FaultSchedule* schedule,
                      const FaultPlan* plan) {
  NetworkParams p;
  p.alpha = sim_ns(20);
  p.tau_s = sim_ns(1000);
  p.mu = 2;
  Network net(r.g, p);
  net.set_fault_plan(const_cast<FaultPlan*>(plan));
  net.set_fault_schedule(const_cast<FaultSchedule*>(schedule));
  FlowSpec f;
  f.origin = 0;
  f.cycle_path = CyclePathRoute{&r.dir, 0, 5};
  net.add_flow(std::move(f));
  net.run();
  return net.stats().finish_time;
}

TEST(SlowOriginParity, PacketEngineDelaysTheOriginsOwnInjection) {
  const Ring r(8);
  const SimTime clean = packet_finish(r, nullptr, nullptr);

  // Dynamic schedule: a degraded origin starts transmitting slow_delay
  // later; nothing else about the run changes.
  FaultSchedule schedule(test_seed());
  schedule.set_slow_delay(sim_us(2));
  schedule.fault_node(0, FaultMode::kSlow, 0);
  EXPECT_EQ(packet_finish(r, &schedule, nullptr), clean + sim_us(2));

  // Static plan: same semantics through the legacy fault path.
  FaultPlan plan(test_seed());
  plan.add(0, FaultMode::kSlow);
  plan.set_slow_delay(sim_us(2));
  EXPECT_EQ(packet_finish(r, nullptr, &plan), clean + sim_us(2));

  // An active schedule window overrides the static plan mode.
  FaultPlan noisy(test_seed());
  noisy.add(0, FaultMode::kSlow);
  noisy.set_slow_delay(sim_us(9));
  EXPECT_EQ(packet_finish(r, &schedule, &noisy), clean + sim_us(2));
}

std::uint64_t flit_cycles(const Graph& g, const FaultSchedule* schedule) {
  FlitNetwork net(g, FlitParams{.vc_count = 1, .buffer_flits = 2});
  net.set_fault_schedule(schedule);
  FlitPacketSpec spec;
  spec.length_flits = 3;
  for (NodeId i = 0; i < 4; ++i) spec.route.push_back(g.link(i, i + 1));
  spec.vc.assign(4, 0);
  net.add_packet(std::move(spec));
  const FlitRunResult result = net.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.delivered, 1u);
  return result.cycles;
}

TEST(SlowOriginParity, FlitEngineDelaysTheOriginsOwnInjection) {
  const Graph ring = make_cycle_graph(6);
  const std::uint64_t clean = flit_cycles(ring, nullptr);

  // Degraded origin: the first flit waits slow_delay cycles - the flit
  // engine's counterpart of the packet engine's delayed injection.
  FaultSchedule origin(test_seed());
  origin.set_slow_delay(5);
  origin.fault_node(0, FaultMode::kSlow, 0);
  EXPECT_EQ(flit_cycles(ring, &origin), clean + 5);

  // Degraded relay: every flit dwells the extra cycles at node 2, so the
  // worm is late by at least slow_delay (more once the dwell backs up
  // the upstream FIFO) - the same >= bound the packet engine's buffered
  // slow relay gives.
  FaultSchedule relay(test_seed());
  relay.set_slow_delay(5);
  relay.fault_node(2, FaultMode::kSlow, 0);
  EXPECT_GE(flit_cycles(ring, &relay), clean + 5);
}

TEST(FlitEngine, DeadLinkBackPressuresInsteadOfDropping) {
  // The lossless counterpart of the packet engine's link drop: a worm
  // blocked by a permanently dead link trips the deadlock detector.
  const Graph ring = make_cycle_graph(6);
  FaultSchedule s(test_seed());
  s.fail_link(ring.link(2, 3), 0);
  FlitNetwork net(ring, FlitParams{.vc_count = 1, .buffer_flits = 2,
                                   .stall_threshold = 64});
  net.set_fault_schedule(&s);
  FlitPacketSpec spec;
  spec.length_flits = 3;
  for (NodeId i = 0; i < 4; ++i) spec.route.push_back(ring.link(i, i + 1));
  spec.vc.assign(4, 0);
  net.add_packet(std::move(spec));
  const FlitRunResult result = net.run();
  EXPECT_TRUE(result.deadlocked);
  EXPECT_EQ(result.delivered, 0u);
}

// --- mid-broadcast recovery ----------------------------------------------

AtaOptions q4_options() {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  return opt;
}

TEST(Recovery, MidStageEdgeDeathFailsStaticallyAndRecovers) {
  const Hypercube q(4);
  AtaOptions opt = q4_options();
  FaultSchedule schedule(test_seed());
  const auto& hc = q.directed_cycles()[0];
  // Stage-0 relay traffic crosses links around tau_S = 5 us; killing a
  // cycle-0 edge at 2 us loses every later crossing for good.
  schedule.fail_link(q.graph().link(hc.at(0), hc.at(1)), sim_us(2));
  opt.schedule = &schedule;

  // Without recovery, the run cannot deliver the full edge-disjoint
  // redundancy target.
  const AtaResult plain = run_ihc(q, IhcOptions{.eta = 2}, opt);
  EXPECT_FALSE(plain.ledger.all_pairs_have(q.gamma()));
  EXPECT_GT(plain.stats.link_drops, 0u);

  // With recovery, the missing traffic is reissued on surviving cycles
  // and every pair reaches min_copies = gamma.
  obs::MetricsRegistry registry;
  opt.metrics = &registry;
  RecoveryPolicy policy;
  policy.min_copies = q.gamma();
  const RecoveryReport rec =
      run_ihc_with_recovery(q, IhcOptions{.eta = 2}, opt, policy);
  EXPECT_FALSE(rec.initial_complete);
  EXPECT_TRUE(rec.complete);
  EXPECT_GE(rec.retries_used, 1u);
  EXPECT_GT(rec.flows_reissued, 0u);
  EXPECT_EQ(rec.unrecovered_pairs, 0u);
  EXPECT_GT(rec.recovery_latency, 0);
  EXPECT_EQ(rec.finish, rec.initial_finish + rec.recovery_latency);
  EXPECT_TRUE(rec.ledger.all_pairs_have(q.gamma()));

  // The recovery metrics the campaign report and TraceLint consume.
  EXPECT_EQ(registry.counter("ihc.recovery_retries"),
            static_cast<std::int64_t>(rec.retries_used));
  EXPECT_EQ(registry.counter("ihc.recovery_reissues"),
            static_cast<std::int64_t>(rec.flows_reissued));
  EXPECT_EQ(registry.counter("ihc.recovery_unrecovered_pairs"), 0);
}

TEST(Recovery, SilentFlapIsRecoveredAfterTheRepair) {
  const Hypercube q(4);
  AtaOptions opt = q4_options();
  FaultSchedule schedule(test_seed());
  schedule.fault_node(5, FaultMode::kSilent, sim_us(1));
  schedule.repair_node(5, sim_us(8));
  opt.schedule = &schedule;
  RecoveryPolicy policy;
  policy.min_copies = q.gamma();
  const RecoveryReport rec =
      run_ihc_with_recovery(q, IhcOptions{.eta = 2}, opt, policy);
  EXPECT_FALSE(rec.initial_complete);
  EXPECT_TRUE(rec.complete);
  EXPECT_EQ(rec.unrecovered_pairs, 0u);
}

TEST(Recovery, CleanRunNeedsNoRetries) {
  const Hypercube q(3);
  AtaOptions opt = q4_options();
  RecoveryPolicy policy;
  policy.min_copies = q.gamma();
  const RecoveryReport rec =
      run_ihc_with_recovery(q, IhcOptions{.eta = 2}, opt, policy);
  EXPECT_TRUE(rec.initial_complete);
  EXPECT_TRUE(rec.complete);
  EXPECT_EQ(rec.retries_used, 0u);
  EXPECT_EQ(rec.flows_reissued, 0u);
  EXPECT_EQ(rec.recovery_latency, 0);
}

TEST(Recovery, RejectsUnsatisfiablePolicies) {
  const Hypercube q(3);
  const AtaOptions opt = q4_options();
  RecoveryPolicy policy;
  policy.min_copies = 0;
  EXPECT_THROW(run_ihc_with_recovery(q, IhcOptions{.eta = 2}, opt, policy),
               ConfigError);
  policy.min_copies = q.gamma() + 1;
  EXPECT_THROW(run_ihc_with_recovery(q, IhcOptions{.eta = 2}, opt, policy),
               ConfigError);
  policy.min_copies = 1;
  policy.max_retries = 0;
  EXPECT_THROW(run_ihc_with_recovery(q, IhcOptions{.eta = 2}, opt, policy),
               ConfigError);
}

// --- chaos_soak determinism ----------------------------------------------

TEST(ChaosSoak, ReportIsByteIdenticalAcrossJobCountsAndRuns) {
  const exp::Campaign campaign = exp::make_builtin_campaign("chaos_soak");

  exp::RunOptions serial;
  serial.jobs = 1;
  serial.collect_metrics = true;
  exp::RunOptions parallel;
  parallel.jobs = 8;
  parallel.collect_metrics = true;

  const exp::CampaignResult a = exp::run_campaign(campaign, serial);
  const exp::CampaignResult b = exp::run_campaign(campaign, parallel);
  const exp::CampaignResult c = exp::run_campaign(campaign, serial);
  EXPECT_EQ(a.failed_count(), 0u);

  // The golden property: fault injection and recovery derive all their
  // randomness from trial coordinates, never from worker identity or
  // wall time, so the timing-free report is byte-identical across job
  // counts and across repeated runs.
  const exp::JsonReportOptions no_timing{.include_timing = false};
  const std::string doc = exp::json_report(a, no_timing);
  EXPECT_NE(doc, "");
  EXPECT_EQ(doc, exp::json_report(b, no_timing));
  EXPECT_EQ(doc, exp::json_report(c, no_timing));

  // Every scenario starts incomplete and ends recovered under the full
  // ladder, and the recovery summary metrics ride the per-trial report.
  // The escalation scenarios are additionally asserted unrecoverable by
  // the PR 5 static-only replay - the ladder is what saves them - and
  // each demonstrates its designed rung: cycle_cut and node_death_tq4
  // re-root, Q_4 node_death falls through to disjoint-path unicast
  // (its bipartite survivor subgraph has no Hamiltonian cycle).
  for (const exp::TrialResult& r : a.trials) {
    const std::string scenario = r.trial.get_str("scenario");
    EXPECT_DOUBLE_EQ(r.metric("initial_complete"), 0.0) << r.trial.id;
    EXPECT_DOUBLE_EQ(r.metric("complete"), 1.0) << r.trial.id;
    EXPECT_DOUBLE_EQ(r.metric("unrecovered_pairs"), 0.0) << r.trial.id;
    EXPECT_GE(r.metric("retries"), 1.0) << r.trial.id;
    EXPECT_GT(r.metric("recovery_latency_ps"), 0.0) << r.trial.id;
    if (scenario == "hc_edge_death" || scenario == "node_flap" ||
        scenario == "link_glitch") {
      EXPECT_DOUBLE_EQ(r.metric("static_complete"), 1.0) << r.trial.id;
      EXPECT_DOUBLE_EQ(r.metric("escalations"), 0.0) << r.trial.id;
    } else {
      EXPECT_DOUBLE_EQ(r.metric("static_complete"), 0.0) << r.trial.id;
      EXPECT_GT(r.metric("static_unrecovered_pairs"), 0.0) << r.trial.id;
      EXPECT_GE(r.metric("escalations"), 1.0) << r.trial.id;
    }
    if (scenario == "cycle_cut") {
      EXPECT_DOUBLE_EQ(r.metric("escalations"), 1.0) << r.trial.id;
      EXPECT_GE(r.metric("rerooted_cycles"), 2.0) << r.trial.id;
      EXPECT_GT(r.metric("reroot_reissues"), 0.0) << r.trial.id;
      EXPECT_DOUBLE_EQ(r.metric("fallback_paths"), 0.0) << r.trial.id;
    } else if (scenario == "node_death") {
      EXPECT_DOUBLE_EQ(r.metric("rerooted_cycles"), 0.0) << r.trial.id;
      EXPECT_GT(r.metric("fallback_paths"), 0.0) << r.trial.id;
      EXPECT_DOUBLE_EQ(r.metric("escalations"), 2.0) << r.trial.id;
    } else if (scenario == "node_death_tq4") {
      EXPECT_GE(r.metric("rerooted_cycles"), 2.0) << r.trial.id;
      EXPECT_GT(r.metric("reroot_reissues"), 0.0) << r.trial.id;
    } else if (scenario == "node_storm") {
      EXPECT_GE(r.metric("rerooted_cycles"), 2.0) << r.trial.id;
    }
  }
  EXPECT_GT(a.metrics.counter("ihc.recovery_reissues"), 0);
  EXPECT_GT(a.metrics.counter("ihc.recovery_escalations"), 0);
  EXPECT_GT(a.metrics.counter("ihc.recovery_rerooted"), 0);
  EXPECT_GT(a.metrics.counter("ihc.recovery_fallback_paths"), 0);
}

}  // namespace
}  // namespace ihc
