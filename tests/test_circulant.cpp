// Tests for general circulant graphs (the class-Lambda generalization).
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "graph/hamiltonian.hpp"
#include "topology/circulant.hpp"

namespace ihc {
namespace {

TEST(Circulant, Structure) {
  const Circulant c(15, {1, 2, 4});
  EXPECT_EQ(c.node_count(), 15u);
  EXPECT_EQ(c.gamma(), 6u);
  EXPECT_EQ(c.graph().edge_count(), 45u);
  EXPECT_EQ(c.name(), "C(15; 1,2,4)");
}

TEST(Circulant, RejectsBadJumps) {
  // jump not coprime with N: class is not a single cycle.
  EXPECT_THROW(Circulant(8, {1, 2}), ConfigError);
  // jump too large: the class would have fewer than N edges.
  EXPECT_THROW((void)make_circulant_graph(8, {4}), ConfigError);
  EXPECT_THROW((void)make_circulant_graph(8, {0}), ConfigError);
  // duplicate jumps produce duplicate edges.
  EXPECT_THROW((void)make_circulant_graph(9, {2, 2}), ConfigError);
}

TEST(Circulant, JumpCycleIsHamiltonian) {
  const Cycle c = circulant_jump_cycle(7, 3);
  EXPECT_EQ(c.length(), 7u);
  EXPECT_EQ(c.at(0), 0u);
  EXPECT_EQ(c.at(1), 3u);
  EXPECT_EQ(c.at(2), 6u);
  EXPECT_THROW((void)circulant_jump_cycle(8, 2), ConfigError);
}

TEST(Circulant, DecompositionVerifies) {
  const Circulant c(21, {1, 2, 4, 5});
  const auto& cycles = c.hamiltonian_cycles();
  ASSERT_EQ(cycles.size(), 4u);
  const auto verdict = verify_hc_set(c.graph(), cycles, true);
  EXPECT_TRUE(verdict.ok) << verdict.reason;
}

TEST(Circulant, NeighborDirections) {
  const Circulant c(11, {1, 3});
  EXPECT_EQ(c.neighbor(0, 0), 1u);
  EXPECT_EQ(c.neighbor(0, 1), 3u);
  EXPECT_EQ(c.neighbor(0, 2), 10u);  // -1
  EXPECT_EQ(c.neighbor(0, 3), 8u);   // -3
  EXPECT_THROW((void)c.neighbor(0, 4), ConfigError);
}

}  // namespace
}  // namespace ihc
