// Tests for the generalized Theorem 1: class Lambda is closed under
// Cartesian products (Ring, ProductTopology, Torus3D).
#include <gtest/gtest.h>

#include "util/error.hpp"

#include <memory>

#include "core/analysis.hpp"
#include "core/ihc.hpp"
#include "graph/hamiltonian.hpp"
#include "topology/hex_mesh.hpp"
#include "topology/hypercube.hpp"
#include "topology/lambda.hpp"
#include "topology/product.hpp"
#include "topology/square_mesh.hpp"

namespace ihc {
namespace {

TEST(Ring, IsTheDegenerateLambdaMember) {
  const Ring ring(7);
  EXPECT_EQ(ring.gamma(), 2u);
  EXPECT_EQ(ring.hamiltonian_cycles().size(), 1u);
  const auto r = check_lambda(ring);
  EXPECT_TRUE(r.in_lambda()) << r.detail;
}

TEST(Torus3D, IsASixRegularLambdaMember) {
  const auto torus = make_torus3d(4, 5);  // 4 x 4 x 5 = 80 nodes
  EXPECT_EQ(torus->node_count(), 80u);
  EXPECT_EQ(torus->gamma(), 6u);
  EXPECT_EQ(torus->graph().regular_degree(), 6u);
  ASSERT_EQ(torus->hamiltonian_cycles().size(), 3u);
  const auto verdict =
      verify_hc_set(torus->graph(), torus->hamiltonian_cycles(), true);
  EXPECT_TRUE(verdict.ok) << verdict.reason;
  const auto r = check_lambda(*torus, /*exact_limit=*/90);
  EXPECT_TRUE(r.in_lambda()) << r.detail;
  EXPECT_TRUE(r.connectivity) << r.detail;
}

TEST(Torus3D, CoordinateLabels) {
  const auto torus = make_torus3d(3, 4);
  EXPECT_EQ(torus->node_at(2, 3), 11u);
  EXPECT_EQ(torus->node_label(torus->node_at(2, 3)), "((0,2),3)");
}

TEST(ProductTopology, SquareTimesSquareIsAFourDTorus) {
  const ProductTopology prod(std::make_shared<SquareMesh>(3),
                             std::make_shared<SquareMesh>(4));
  EXPECT_EQ(prod.node_count(), 9u * 16u);
  EXPECT_EQ(prod.gamma(), 8u);
  const auto verdict =
      verify_hc_set(prod.graph(), prod.hamiltonian_cycles(), true);
  EXPECT_TRUE(verdict.ok) << verdict.reason;
}

TEST(ProductTopology, HexTimesHexIsTwelveRegular) {
  const ProductTopology prod(std::make_shared<HexMesh>(2),
                             std::make_shared<HexMesh>(2));
  EXPECT_EQ(prod.node_count(), 49u);
  EXPECT_EQ(prod.gamma(), 12u);
  EXPECT_EQ(prod.hamiltonian_cycles().size(), 6u);
  const auto verdict =
      verify_hc_set(prod.graph(), prod.hamiltonian_cycles(), true);
  EXPECT_TRUE(verdict.ok) << verdict.reason;
}

TEST(ProductTopology, OddHypercubeFactorLeavesMatchingUncovered) {
  // Q_3 contributes one HC and keeps a perfect matching unused; the
  // product inherits that: gamma = 2 + 2 = 4 < degree 5.
  const ProductTopology prod(std::make_shared<Hypercube>(3),
                             std::make_shared<Ring>(5));
  EXPECT_EQ(prod.gamma(), 4u);
  EXPECT_EQ(prod.graph().regular_degree(), 5u);
  const auto verdict = verify_hc_set(
      prod.graph(), prod.hamiltonian_cycles(), /*must_cover_all=*/false);
  EXPECT_TRUE(verdict.ok) << verdict.reason;
  const auto r = check_lambda(prod, /*exact_limit=*/50);
  EXPECT_TRUE(r.in_lambda()) << r.detail;
}

TEST(ProductTopology, RejectsUnbalancedFactors) {
  // Hex (3 cycles) x Ring (1 cycle): counts differ by 2.
  EXPECT_THROW(ProductTopology(std::make_shared<HexMesh>(3),
                               std::make_shared<Ring>(5)),
               ConfigError);
}

TEST(ProductTopology, IhcRunsContentionFreeOnProducts) {
  const auto torus = make_torus3d(4, 4);  // N = 64
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  const auto result = run_ihc(*torus, IhcOptions{.eta = 2}, opt);
  EXPECT_EQ(result.stats.buffered_relays, 0u);
  EXPECT_TRUE(result.ledger.all_pairs_have(torus->gamma()));
  EXPECT_DOUBLE_EQ(
      static_cast<double>(result.finish),
      model::ihc_dedicated(torus->node_count(), 2, opt.net));
}

TEST(ProductTopology, ProductsCompose) {
  // ((C_4 x C_4) x C_4): three nested factors, 2+1 -> wait: Ring x Ring
  // is 2-cycle; times Ring again = 3 cycles: a Q_6-like 6-regular torus.
  auto base = std::make_shared<ProductTopology>(std::make_shared<Ring>(4),
                                                std::make_shared<Ring>(4));
  EXPECT_EQ(base->gamma(), 4u);
  const ProductTopology cube(base, std::make_shared<Ring>(4));
  EXPECT_EQ(cube.node_count(), 64u);
  EXPECT_EQ(cube.gamma(), 6u);
  const auto verdict =
      verify_hc_set(cube.graph(), cube.hamiltonian_cycles(), true);
  EXPECT_TRUE(verdict.ok) << verdict.reason;
}

}  // namespace
}  // namespace ihc
