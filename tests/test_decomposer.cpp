// Tests for the Hamiltonian-decomposition engine and the Lemma 1 / Lemma 2
// constructions built on it.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "graph/decomposer.hpp"
#include "graph/hamiltonian.hpp"
#include "graph/lemma2.hpp"
#include "graph/torus_decomposition.hpp"

namespace ihc {
namespace {

using TorusShape = std::pair<NodeId, NodeId>;

class TorusDecomposition : public ::testing::TestWithParam<TorusShape> {};

TEST_P(TorusDecomposition, ProducesTwoVerifiedHamiltonianCycles) {
  const auto [m, n] = GetParam();
  const Graph g = make_torus_graph(m, n);
  const auto cycles = torus_two_hamiltonian_cycles(m, n);
  ASSERT_EQ(cycles.size(), 2u);
  const auto verdict = verify_hc_set(g, cycles, /*must_cover_all=*/true);
  EXPECT_TRUE(verdict.ok) << verdict.reason;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TorusDecomposition,
    ::testing::Values(TorusShape{3, 3}, TorusShape{3, 4}, TorusShape{4, 4},
                      TorusShape{4, 5}, TorusShape{5, 5}, TorusShape{3, 16},
                      TorusShape{5, 7}, TorusShape{8, 8}, TorusShape{4, 64},
                      TorusShape{16, 16}, TorusShape{9, 11},
                      TorusShape{16, 64}),
    [](const auto& param) {
      return "C" + std::to_string(param.param.first) + "x" +
             std::to_string(param.param.second);
    });

TEST(TorusDecompositionDeterminism, SameSeedSameResult) {
  const auto a = torus_two_hamiltonian_cycles(5, 7, 123);
  const auto b = torus_two_hamiltonian_cycles(5, 7, 123);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].nodes(), b[i].nodes());
}

TEST(TorusGraph, RejectsTooSmallShapes) {
  EXPECT_THROW((void)make_torus_graph(2, 5), ConfigError);
  EXPECT_THROW((void)torus_two_hamiltonian_cycles(5, 2), ConfigError);
}

TEST(Lemma2, ThreeCyclesOnSmallProduct) {
  // (H1 u H2) of the 3x3 torus, times C_5.
  const auto base = torus_two_hamiltonian_cycles(3, 3);
  const auto cycles = lemma2_three_hamiltonian_cycles(base[0], base[1], 5);
  ASSERT_EQ(cycles.size(), 3u);
  for (const Cycle& c : cycles) EXPECT_EQ(c.length(), 45u);
  // verify against the explicitly rebuilt product graph
  std::vector<std::pair<NodeId, NodeId>> edges;
  auto id = [](NodeId v, NodeId l) { return v * 5 + l; };
  for (int which = 0; which < 2; ++which) {
    const Cycle& h = base[static_cast<std::size_t>(which)];
    for (std::size_t i = 0; i < h.length(); ++i)
      for (NodeId l = 0; l < 5; ++l)
        edges.emplace_back(id(h.at(i), l),
                           id(h.at((i + 1) % h.length()), l));
  }
  for (NodeId v = 0; v < 9; ++v)
    for (NodeId l = 0; l < 5; ++l)
      edges.emplace_back(id(v, l), id(v, (l + 1) % 5));
  const Graph g(45, std::move(edges));
  const auto verdict = verify_hc_set(g, cycles, true);
  EXPECT_TRUE(verdict.ok) << verdict.reason;
}

TEST(Lemma2, RejectsMismatchedInputs) {
  const auto base33 = torus_two_hamiltonian_cycles(3, 3);
  const auto base34 = torus_two_hamiltonian_cycles(3, 4);
  EXPECT_THROW((void)lemma2_three_hamiltonian_cycles(base33[0], base34[0], 4),
               ConfigError);
  EXPECT_THROW((void)lemma2_three_hamiltonian_cycles(base33[0], base33[1], 2),
               ConfigError);
}

TEST(HcVerifier, CatchesBadSets) {
  const Graph c4 = make_cycle_graph(4);
  // Wrong length.
  auto v = verify_hc_set(c4, {Cycle({0, 1, 2})}, false);
  EXPECT_FALSE(v.ok);
  // Non-edges.
  v = verify_hc_set(c4, {Cycle({0, 2, 1, 3})}, false);
  EXPECT_FALSE(v.ok);
  // Edge reuse across cycles.
  const Graph g = make_torus_graph(3, 3);
  const auto good = torus_two_hamiltonian_cycles(3, 3);
  v = verify_hc_set(g, {good[0], good[0]}, false);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.reason.find("reused"), std::string::npos);
  // Cover-all violation.
  v = verify_hc_set(g, {good[0]}, true);
  EXPECT_FALSE(v.ok);
  // And the good case passes.
  v = verify_hc_set(g, good, true);
  EXPECT_TRUE(v.ok) << v.reason;
}

TEST(Engine, ReportsStats) {
  const Graph g = make_torus_graph(4, 8);
  std::vector<std::uint8_t> assign(g.edge_count(), 0);
  for (std::size_t e = 32; e < g.edge_count(); ++e) assign[e] = 1;
  DecomposeStats stats;
  const auto cycles =
      merge_to_hamiltonian(FactorSet(g, 2, std::move(assign)), {}, &stats);
  EXPECT_EQ(cycles.size(), 2u);
  EXPECT_GT(stats.swaps, 0u);
  EXPECT_EQ(stats.retries, 0u);
}

}  // namespace
}  // namespace ihc
