// Timed-simulation tests of the IHC algorithm: the paper's central claims.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include <cctype>
#include <memory>

#include "core/analysis.hpp"
#include "core/ihc.hpp"
#include "topology/circulant.hpp"
#include "topology/hex_mesh.hpp"
#include "topology/hypercube.hpp"
#include "topology/square_mesh.hpp"

namespace ihc {
namespace {

AtaOptions base_options() {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  return opt;
}

struct Case {
  std::string name;
  std::shared_ptr<Topology> topo;
  std::uint32_t eta;
};

std::vector<Case> cases() {
  std::vector<Case> out;
  const auto add = [&out](std::shared_ptr<Topology> t,
                          std::initializer_list<std::uint32_t> etas) {
    for (std::uint32_t eta : etas)
      out.push_back({t->name() + "_eta" + std::to_string(eta), t, eta});
  };
  // Every (topology, eta) pair honors the paper's precondition for a
  // contention-free run at mu = 2: the initiator spacing on a cycle is
  // eta except for one wrap-around gap of N mod eta, so we need
  // N mod eta == 0 or N mod eta >= mu (Section IV assumes N mod mu = 0).
  add(std::make_shared<Hypercube>(4), {2, 4});
  add(std::make_shared<Hypercube>(5), {2, 4});
  add(std::make_shared<Hypercube>(6), {2, 4});
  add(std::make_shared<SquareMesh>(4), {2});
  add(std::make_shared<SquareMesh>(5), {5, 25});
  add(std::make_shared<HexMesh>(3), {19});   // N = 19 is prime: only
                                             // eta = 1 or N divide it
  add(std::make_shared<Circulant>(15, std::vector<NodeId>{1, 2, 4}), {3, 5});
  return out;
}

class IhcTimed : public ::testing::TestWithParam<Case> {};

/// Table II, row "IHC": with eta >= mu and a dedicated network the
/// simulated finish time equals eta (tau_S + mu alpha + (N-2) alpha)
/// *exactly*, and no relay is ever buffered.
TEST_P(IhcTimed, DedicatedRunMatchesTableTwoExactly) {
  const auto& [name, topo, eta] = GetParam();
  const AtaOptions opt = base_options();
  const auto result = run_ihc(*topo, IhcOptions{.eta = eta}, opt);

  EXPECT_EQ(result.stats.buffered_relays, 0u)
      << "a contending packet was buffered";
  EXPECT_EQ(result.stats.wormhole_stalls, 0u);
  const double expected =
      model::ihc_dedicated(topo->node_count(), eta, opt.net);
  EXPECT_DOUBLE_EQ(static_cast<double>(result.finish), expected);
}

/// Every node receives exactly gamma copies of every other node's message.
TEST_P(IhcTimed, DeliversGammaCopiesToEveryPair) {
  const auto& [name, topo, eta] = GetParam();
  const auto result = run_ihc(*topo, IhcOptions{.eta = eta}, base_options());
  const NodeId n = topo->node_count();
  for (NodeId o = 0; o < n; ++o) {
    for (NodeId d = 0; d < n; ++d) {
      if (o != d) {
        ASSERT_EQ(result.ledger.copies(o, d), topo->gamma())
            << "(" << o << " -> " << d << ")";
      }
    }
  }
  EXPECT_EQ(result.stats.deliveries,
            static_cast<std::uint64_t>(topo->gamma()) * n * (n - 1));
}

/// Per-copy timing: in a dedicated run, the copy of origin o arriving at
/// destination d over directed cycle j lands at exactly
///   stage(o) start + tau_S + (dist_j(o, d) - 1) alpha + mu alpha
/// (injection, dist-1 cut-throughs, tail).  Checked for every copy of a
/// full run - the strongest form of the timing-model validation.
TEST(IhcTiming, EveryCopyArrivesAtItsExactPredictedInstant) {
  const SquareMesh sq(4);
  AtaOptions opt = base_options();
  opt.granularity = DeliveryLedger::Granularity::kFull;
  const std::uint32_t eta = 2;
  const auto result = run_ihc(sq, IhcOptions{.eta = eta}, opt);
  const auto& cycles = sq.directed_cycles();
  const NodeId n = sq.node_count();
  const SimTime stage_span =
      opt.net.tau_s + static_cast<SimTime>(opt.net.mu) * opt.net.alpha +
      static_cast<SimTime>(n - 2) * opt.net.alpha;
  for (NodeId o = 0; o < n; ++o) {
    for (NodeId d = 0; d < n; ++d) {
      if (o == d) continue;
      for (const CopyRecord& copy : result.ledger.records(o, d)) {
        const DirectedCycle& hc = cycles[copy.route];
        const std::size_t dist = (hc.id(d) + n - hc.id(o)) % n;
        const SimTime stage_start =
            static_cast<SimTime>(hc.id(o) % eta) * stage_span;
        const SimTime expected =
            stage_start + opt.net.tau_s +
            static_cast<SimTime>(dist - 1) * opt.net.alpha +
            static_cast<SimTime>(opt.net.mu) * opt.net.alpha;
        ASSERT_EQ(copy.time, expected)
            << "(" << o << "->" << d << " via cycle " << copy.route << ")";
      }
    }
  }
}

/// Wormhole and virtual cut-through coincide in dedicated mode: nothing
/// ever blocks, so nothing is ever stalled or buffered.
TEST_P(IhcTimed, WormholeEqualsVctInDedicatedMode) {
  const auto& [name, topo, eta] = GetParam();
  AtaOptions opt = base_options();
  const auto vct = run_ihc(*topo, IhcOptions{.eta = eta}, opt);
  opt.net.switching = Switching::kWormhole;
  const auto worm = run_ihc(*topo, IhcOptions{.eta = eta}, opt);
  EXPECT_EQ(vct.finish, worm.finish);
  EXPECT_EQ(worm.stats.wormhole_stalls, 0u);
}

INSTANTIATE_TEST_SUITE_P(Topologies, IhcTimed, ::testing::ValuesIn(cases()),
                         [](const auto& param) {
                           std::string s = param.param.name;
                           for (char& c : s)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return s;
                         });

/// Section IV: "eta < mu cannot be used ... the network cannot hold all of
/// the messages" - with eta < mu the run still delivers, but packets get
/// buffered (cut-throughs are lost).
TEST(IhcEta, EtaBelowMuForcesBuffering) {
  const Hypercube q(4);
  AtaOptions opt = base_options();
  opt.net.mu = 4;
  const auto result = run_ihc(q, IhcOptions{.eta = 2}, opt);
  EXPECT_GT(result.stats.buffered_relays, 0u);
  EXPECT_TRUE(result.ledger.all_pairs_have(q.gamma()));  // still correct
}

TEST(IhcEta, EtaEqualMuIsTheSmallestContentionFreeChoice) {
  const SquareMesh sq(6);  // N = 36, divisible by mu = 3
  AtaOptions opt = base_options();
  opt.net.mu = 3;
  const auto at_mu = run_ihc(sq, IhcOptions{.eta = 3}, opt);
  EXPECT_EQ(at_mu.stats.buffered_relays, 0u);
}

/// The paper's capacity argument (Section IV): with eta >= mu the FIFO
/// pipeline holds every packet in flight and NO node ever stores one -
/// the intermediate buffers of Fig. 7 stay empty; with eta < mu "the
/// network cannot hold all of the messages" and node storage fills up.
TEST(IhcEta, NodeBuffersStayEmptyIffEtaIsAtLeastMu) {
  const Hypercube q(4);
  AtaOptions opt = base_options();
  opt.net.mu = 4;
  const auto good = run_ihc(q, IhcOptions{.eta = 4}, opt);
  EXPECT_EQ(good.stats.max_node_buffer_occupancy, 0u);
  const auto bad = run_ihc(q, IhcOptions{.eta = 2}, opt);
  EXPECT_GT(bad.stats.max_node_buffer_occupancy, 0u);
}

/// The paper's divisibility caveat (Section IV, "assuming N modulo mu =
/// 0"): when N mod eta is nonzero but smaller than mu, the wrap-around
/// gap between a cycle's first and last initiators is too short for the
/// FIFO pipeline, and a few relays get buffered.  Delivery stays correct.
TEST(IhcEta, WrapAroundGapBelowMuCausesResidualBuffering) {
  const Hypercube q(6);  // N = 64, 64 mod 3 = 1 < mu = 2
  const auto result = run_ihc(q, IhcOptions{.eta = 3}, base_options());
  EXPECT_GT(result.stats.buffered_relays, 0u);
  EXPECT_TRUE(result.ledger.all_pairs_have(q.gamma()));
}

/// The modified (overlapped) IHC: finish time drops by (mu-1)^2 alpha when
/// eta == mu, with stages run in reverse order (Section VI-A).
TEST(IhcOverlap, SavesThePaperPredictedTime) {
  const Hypercube q(5);
  AtaOptions opt = base_options();
  opt.net.mu = 2;
  const auto plain = run_ihc(q, IhcOptions{.eta = 2}, opt);
  const auto overlapped =
      run_ihc(q, IhcOptions{.eta = 2, .overlap_stages = true}, opt);
  const SimTime saving = plain.finish - overlapped.finish;
  const SimTime predicted = (opt.net.mu - 1) * (opt.net.mu - 1) *
                            opt.net.alpha;
  EXPECT_EQ(saving, predicted);
  EXPECT_TRUE(overlapped.ledger.all_pairs_have(q.gamma()));
}

/// Both stop policies produce identical runs (they differ only in how a
/// relay recognizes the end of a packet's journey).
TEST(IhcStopPolicy, HopCountAndAddressAreEquivalent)
{
  const SquareMesh sq(4);
  const AtaOptions opt = base_options();
  const auto by_count = run_ihc(
      sq, IhcOptions{.eta = 2, .stop_policy = IhcStopPolicy::kHopCount},
      opt);
  const auto by_addr = run_ihc(
      sq,
      IhcOptions{.eta = 2, .stop_policy = IhcStopPolicy::kLastNodeAddress},
      opt);
  EXPECT_EQ(by_count.finish, by_addr.finish);
  EXPECT_EQ(by_count.stats.deliveries, by_addr.stats.deliveries);
  EXPECT_EQ(by_count.stats.cut_throughs, by_addr.stats.cut_throughs);
}

/// Table IV, row "IHC": forcing store-and-forward everywhere with queueing
/// delay D reproduces eta (N-1)(tau_S + mu alpha + D).
TEST(IhcWorstCase, MatchesTableFour) {
  const Hypercube q(4);
  AtaOptions opt = base_options();
  opt.net.switching = Switching::kStoreAndForward;
  opt.net.queueing_delay = sim_ns(700);
  const auto result = run_ihc(q, IhcOptions{.eta = 2}, opt);
  const double expected = model::ihc_worst(q.node_count(), 2, opt.net);
  EXPECT_DOUBLE_EQ(static_cast<double>(result.finish), expected);
}

TEST(IhcOptions, RejectsBadEta) {
  const Hypercube q(3);
  EXPECT_THROW((void)run_ihc(q, IhcOptions{.eta = 0}, base_options()),
               ConfigError);
  EXPECT_THROW((void)run_ihc(q, IhcOptions{.eta = 100}, base_options()),
               ConfigError);
}

}  // namespace
}  // namespace ihc
