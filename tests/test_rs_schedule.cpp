// Tests reproducing Table I / Example 1: the RS reliable broadcast on Q_4.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sched/rs_schedule.hpp"

namespace ihc {
namespace {

TEST(RsSchedule, Step1SendsToAllNeighbors) {
  const Hypercube q(4);
  const auto sends = rs_broadcast_sends(q, 0);
  std::set<NodeId> firsts;
  for (const RsSend& s : sends)
    if (s.step == 1) {
      EXPECT_EQ(s.from, 0u);
      EXPECT_FALSE(s.forward);
      firsts.insert(s.to);
    }
  // Table I step 1: 0->1, 0->2, 0->4, 0->8.
  EXPECT_EQ(firsts, (std::set<NodeId>{1, 2, 4, 8}));
}

TEST(RsSchedule, Step2MatchesTableI) {
  const Hypercube q(4);
  const auto sends = rs_broadcast_sends(q, 0);
  std::set<std::pair<NodeId, NodeId>> step2;
  for (const RsSend& s : sends)
    if (s.step == 2) step2.emplace(s.from, s.to);
  // Table I step 2, column 1: 1->3, 2->6, 4->12, 8->9.
  const std::set<std::pair<NodeId, NodeId>> expected{
      {1, 3}, {2, 6}, {4, 12}, {8, 9}};
  EXPECT_EQ(step2, expected);
}

TEST(RsSchedule, HasGammaPlusOneSteps) {
  const Hypercube q(4);
  const auto sends = rs_broadcast_sends(q, 0);
  std::uint32_t max_step = 0;
  for (const RsSend& s : sends) max_step = std::max(max_step, s.step);
  EXPECT_EQ(max_step, 5u);  // gamma + 1 = 5 for Q_4
}

TEST(RsSchedule, ReturnSendsTargetTheSourceAtTheLastStep) {
  const Hypercube q(4);
  const auto sends = rs_broadcast_sends(q, 0);
  std::size_t returns = 0;
  for (const RsSend& s : sends) {
    if (s.returns_to_source) {
      ++returns;
      EXPECT_EQ(s.to, 0u);
      EXPECT_EQ(s.step, 5u);  // bold entries appear only in the last step
    }
  }
  EXPECT_EQ(returns, 4u);  // one per copy: 1->0, 2->0, 4->0, 8->0
}

TEST(RsSchedule, EveryNodeReceivesEveryCopyExactlyOnce) {
  const Hypercube q(4);
  const auto sends = rs_broadcast_sends(q, 0);
  // receipt[copy][node]
  std::vector<std::vector<int>> receipt(4, std::vector<int>(16, 0));
  for (const RsSend& s : sends)
    if (!s.returns_to_source) ++receipt[s.copy][s.to];
  for (unsigned c = 0; c < 4; ++c)
    for (NodeId v = 1; v < 16; ++v)
      EXPECT_EQ(receipt[c][v], 1) << "copy " << c << " node " << v;
}

TEST(RsSchedule, CopiesTravelNodeDisjointPaths) {
  // The RS theorem [20]: each node receives gamma copies through
  // node-disjoint paths.  Reconstruct each copy's path and verify.
  const Hypercube q(4);
  const auto sends = rs_broadcast_sends(q, 0);
  // parent[copy][node] = sender who delivered the copy.
  std::vector<std::vector<NodeId>> parent(4,
                                          std::vector<NodeId>(16, kInvalidNode));
  for (const RsSend& s : sends)
    if (!s.returns_to_source) parent[s.copy][s.to] = s.from;
  for (NodeId v = 1; v < 16; ++v) {
    std::set<NodeId> interior;
    for (unsigned c = 0; c < 4; ++c) {
      // Walk back from v to the source.
      NodeId cur = parent[c][v];
      while (cur != 0u) {
        ASSERT_NE(cur, kInvalidNode);
        EXPECT_TRUE(interior.insert(cur).second)
            << "node " << cur << " shared by two copy paths to " << v;
        cur = parent[c][cur];
      }
    }
  }
}

TEST(RsSchedule, ForwardedSendsFormCutThroughChains) {
  // A send is a forward iff the sender acquired the copy on the previous
  // step; Table I columns are maximal forward chains.
  const Hypercube q(4);
  const auto sends = rs_broadcast_sends(q, 0);
  std::size_t forwards = 0, redirects = 0;
  for (const RsSend& s : sends) {
    if (s.step == 1) continue;
    (s.forward ? forwards : redirects)++;
  }
  EXPECT_GT(forwards, 0u);
  EXPECT_GT(redirects, 0u);
  // Total non-step-1 sends: every node except source receives each of the
  // 4 copies (60 sends) plus the 4 returns, minus the 4 step-1 sends.
  EXPECT_EQ(forwards + redirects, 60u + 4u - 4u);
}

TEST(RsSchedule, StreamedScheduleHasNoLinkConflicts) {
  // Within one RS broadcast, the gamma copies use edge-disjoint spanning
  // trees, so the step schedule is conflict-free.
  const Hypercube q(4);
  for (const bool include_returns : {false, true}) {
    const RsSchedule sched(q, 0, include_returns);
    const auto check = check_schedule(q.graph(), sched);
    EXPECT_EQ(check.link_conflicts, 0u) << "returns=" << include_returns;
  }
}

TEST(RsSchedule, WorksFromAnySource) {
  const Hypercube q(3);
  for (NodeId src = 0; src < 8; ++src) {
    const RsSchedule sched(q, src, false);
    const auto check = check_schedule(q.graph(), sched);
    EXPECT_EQ(check.link_conflicts, 0u);
    for (NodeId d = 0; d < 8; ++d) {
      if (d == src) continue;
      EXPECT_EQ(check.copies[static_cast<std::size_t>(src) * 8 + d], 3u);
    }
  }
}

}  // namespace
}  // namespace ihc
