// Tests for the conservative time-sharded parallel engine
// (src/sim/parallel/, docs/PARALLEL.md).  The engine's contract is
// determinism, not merely statistical equivalence: the canonical event
// keys make the pop order a pure function of the simulated run, so
// `--shards 1` and `--shards N` must produce byte-identical results -
// finish times, statistics, ledgers AND trace streams - on every
// supported configuration.  The windowed schedule itself (shards >= 1)
// must further match the sequential engine exactly on configurations
// with no documented divergence (no background traffic, no kRandom
// faults): the seed goldens of test_sim_golden.cpp double as the
// cross-engine oracle here.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "core/ihc.hpp"
#include "core/runner.hpp"
#include "core/vsq.hpp"
#include "obs/analyze/analysis.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/parallel/mailbox.hpp"
#include "sim/parallel/partition.hpp"
#include "topology/hypercube.hpp"
#include "topology/square_mesh.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ihc {
namespace {

// ---------------------------------------------------------------------
// Canonical key / pop-order units (the mailbox-ordering contract).

TEST(ParallelKeys, CanonicalKeysAreUniqueAndClassOrdered) {
  // Foreground keys sort below every background key (bit 63), and
  // background link arrivals sort below background flow headers
  // (bit 62), so at equal times foreground work always pops first.
  const std::uint64_t fg = fg_event_key(1u << 20, (1u << 24) - 1);
  const std::uint64_t bg_link = bg_arrival_key((1u << 26) - 1, ~0ull);
  const std::uint64_t bg_flow = bg_header_key(7, 3, 2);
  EXPECT_LT(fg, bg_link);
  EXPECT_LT(bg_link, bg_flow);

  // Distinct (flow, pos) / (gen, occurrence) / (source, occurrence, pos)
  // always yield distinct keys within their class.
  EXPECT_NE(fg_event_key(3, 4), fg_event_key(3, 5));
  EXPECT_NE(fg_event_key(3, 4), fg_event_key(4, 4));
  EXPECT_NE(bg_arrival_key(2, 9), bg_arrival_key(2, 10));
  EXPECT_NE(bg_header_key(2, 9, 0), bg_header_key(2, 9, 1));
}

TEST(ParallelKeys, PopOrderIsPushOrderInvariant) {
  // The determinism contract's foundation: a calendar queue holding the
  // same PEvent set pops it in the same order whatever the push order.
  std::vector<PEvent> events;
  for (std::uint32_t f = 0; f < 6; ++f)
    for (std::uint32_t p = 0; p < 4; ++p)
      events.push_back(PEvent{/*time=*/sim_ns(10 * (p % 2)),
                              fg_event_key(f, p), f, p, 0,
                              PEventKind::kHeader, false});
  for (std::uint32_t g = 0; g < 3; ++g)
    events.push_back(PEvent{/*time=*/0, bg_arrival_key(g, g + 1), 0, g, 0,
                            PEventKind::kBackgroundLink, false});
  events.push_back(PEvent{/*time=*/0, bg_header_key(5, 1, 0), 0, 0, 0,
                          PEventKind::kBackgroundFlow, true});

  SplitMix64 rng(0xFEEDu);
  std::vector<std::uint64_t> reference;
  for (int trial = 0; trial < 8; ++trial) {
    // Fisher-Yates with the repo's deterministic RNG.
    std::vector<PEvent> shuffled = events;
    for (std::size_t i = shuffled.size(); i > 1; --i)
      std::swap(shuffled[i - 1], shuffled[rng.below(i)]);

    CalendarQueue<PEvent> q(/*width_hint=*/sim_ns(3));
    for (const PEvent& ev : shuffled) q.push(ev);
    std::vector<std::uint64_t> order;
    SimTime prev_time = 0;
    std::uint64_t prev_key = 0;
    while (!q.empty()) {
      const PEvent ev = q.pop_min();
      EXPECT_TRUE(ev.time > prev_time ||
                  (ev.time == prev_time &&
                   (order.empty() || ev.seq > prev_key)))
          << "pop order must be strictly (time, key) increasing";
      prev_time = ev.time;
      prev_key = ev.seq;
      order.push_back(ev.seq);
    }
    EXPECT_EQ(order.size(), events.size());
    if (trial == 0)
      reference = order;
    else
      EXPECT_EQ(order, reference) << "permutation " << trial;
  }
}

TEST(ParallelPartition, RangesTileTheNodeSpace) {
  for (const NodeId n : {1u, 5u, 16u, 64u, 1000u}) {
    const Hypercube q6(6);  // any graph with >= n nodes would do
    (void)q6;
    for (const std::uint32_t s : {1u, 2u, 3u, 4u, 7u}) {
      if (s > n) continue;
      const SquareMesh host(32);  // 1024 nodes covers every n above
      ShardPartition part(host.graph(), s);
      // Rebuild the partition math over the first n ids via owner():
      // contiguous, non-decreasing, and consistent with node_range.
      ShardPartition p2(host.graph(), s);
      (void)p2;
      NodeId covered = 0;
      for (std::uint32_t shard = 0; shard < s; ++shard) {
        const auto [lo, hi] = part.node_range(shard);
        EXPECT_EQ(lo, covered) << "gap before shard " << shard;
        EXPECT_LE(lo, hi);
        for (NodeId v = lo; v < hi; ++v)
          EXPECT_EQ(part.owner(v), shard) << "node " << v;
        covered = hi;
      }
      EXPECT_EQ(covered, host.node_count());
    }
  }
}

TEST(ParallelPartition, LookaheadWindowIsMinAlphaTau) {
  NetworkParams p;
  p.alpha = sim_ns(20);
  p.tau_s = sim_ns(200);
  EXPECT_EQ(lookahead_window(p), sim_ns(20));
  p.tau_s = sim_ns(5);
  EXPECT_EQ(lookahead_window(p), sim_ns(5));
  p.tau_s = 0;  // zero injection lookahead: unsupported
  EXPECT_THROW((void)lookahead_window(p), ConfigError);
}

// ---------------------------------------------------------------------
// Whole-run determinism: shards 1 vs 2 vs 4 byte-identical.

AtaOptions packet_opt(std::uint32_t shards) {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_ns(200);
  opt.net.mu = 2;
  opt.net.shards = shards;
  return opt;
}

struct RunDigest {
  SimTime finish = 0;
  std::uint64_t injections = 0, cut_throughs = 0, buffered = 0;
  std::uint64_t stalls = 0, redirects = 0, drops = 0, corruptions = 0;
  std::uint64_t link_drops = 0, background = 0, deliveries = 0;
  std::uint64_t events = 0;
  SimTime queue_wait = 0, stats_finish = 0;
  std::uint32_t max_buffer = 0;
  std::uint64_t ledger_copies = 0;
  SimTime ledger_finish = 0;

  auto tie() const {
    return std::tie(finish, injections, cut_throughs, buffered, stalls,
                    redirects, drops, corruptions, link_drops, background,
                    deliveries, events, queue_wait, stats_finish,
                    max_buffer, ledger_copies, ledger_finish);
  }
  bool operator==(const RunDigest& o) const { return tie() == o.tie(); }
};

RunDigest digest(const AtaResult& r) {
  RunDigest d;
  d.finish = r.finish;
  d.injections = r.stats.injections;
  d.cut_throughs = r.stats.cut_throughs;
  d.buffered = r.stats.buffered_relays;
  d.stalls = r.stats.wormhole_stalls;
  d.redirects = r.stats.redirects;
  d.drops = r.stats.fault_drops;
  d.corruptions = r.stats.fault_corruptions;
  d.link_drops = r.stats.link_drops;
  d.background = r.stats.background_packets;
  d.deliveries = r.stats.deliveries;
  d.events = r.stats.events_processed;
  d.queue_wait = r.stats.total_queue_wait;
  d.stats_finish = r.stats.finish_time;
  d.max_buffer = r.stats.max_node_buffer_occupancy;
  d.ledger_copies = r.ledger.total_copies();
  d.ledger_finish = r.ledger.finish_time();
  return d;
}

void expect_digest_eq(const RunDigest& a, const RunDigest& b,
                      const std::string& what) {
  EXPECT_EQ(a.finish, b.finish) << what;
  EXPECT_EQ(a.injections, b.injections) << what;
  EXPECT_EQ(a.cut_throughs, b.cut_throughs) << what;
  EXPECT_EQ(a.buffered, b.buffered) << what;
  EXPECT_EQ(a.stalls, b.stalls) << what;
  EXPECT_EQ(a.redirects, b.redirects) << what;
  EXPECT_EQ(a.drops, b.drops) << what;
  EXPECT_EQ(a.corruptions, b.corruptions) << what;
  EXPECT_EQ(a.link_drops, b.link_drops) << what;
  EXPECT_EQ(a.background, b.background) << what;
  EXPECT_EQ(a.deliveries, b.deliveries) << what;
  EXPECT_EQ(a.events, b.events) << what;
  EXPECT_EQ(a.queue_wait, b.queue_wait) << what;
  EXPECT_EQ(a.stats_finish, b.stats_finish) << what;
  EXPECT_EQ(a.max_buffer, b.max_buffer) << what;
  EXPECT_EQ(a.ledger_copies, b.ledger_copies) << what;
  EXPECT_EQ(a.ledger_finish, b.ledger_finish) << what;
}

AtaResult run_config(const std::string& id, std::uint32_t shards,
                     obs::Tracer* tracer = nullptr) {
  const Hypercube q4(4);
  AtaOptions opt = packet_opt(shards);
  opt.tracer = tracer;
  if (id == "vct_dedicated") return run_ihc(q4, IhcOptions{.eta = 2}, opt);
  if (id == "saf") {
    opt.net.switching = Switching::kStoreAndForward;
    return run_ihc(q4, IhcOptions{.eta = 2}, opt);
  }
  if (id == "wormhole_rho03") {
    opt.net.switching = Switching::kWormhole;
    opt.net.rho = 0.3;
    opt.net.seed = 7;
    return run_ihc(q4, IhcOptions{.eta = 2}, opt);
  }
  if (id == "multihop_rho035") {
    opt.net.rho = 0.35;
    opt.net.background_mode = BackgroundMode::kMultiHopFlows;
    opt.net.seed = 99;
    return run_ihc(q4, IhcOptions{.eta = 2}, opt);
  }
  if (id == "percycle_rho02") {
    opt.net.rho = 0.2;
    opt.net.seed = 11;
    return run_ihc(
        q4, IhcOptions{.eta = 2, .barrier = StageBarrier::kPerCycle}, opt);
  }
  if (id == "static_faults") {
    FaultPlan plan(derive_seed("tests", "parallel"));
    plan.add(3, FaultMode::kSilent);
    plan.add(9, FaultMode::kCorrupt);
    plan.add(12, FaultMode::kSlow);
    plan.set_slow_delay(sim_ns(500));
    plan.fail_link(5);
    opt.faults = &plan;
    opt.granularity = DeliveryLedger::Granularity::kFull;
    return run_ihc(q4, IhcOptions{.eta = 2}, opt);  // plan outlives run
  }
  if (id == "fault_schedule") {
    FaultSchedule schedule(derive_seed("tests", "parallel-sched"));
    schedule.fault_node(5, FaultMode::kSilent, sim_ns(100), sim_ns(900));
    schedule.fault_node(2, FaultMode::kSlow, sim_ns(300));
    schedule.set_slow_delay(sim_ns(250));
    opt.schedule = &schedule;
    return run_ihc(q4, IhcOptions{.eta = 2}, opt);
  }
  if (id == "vsq_tree") {
    const SquareMesh sq4(4);
    return run_vsq_ata(sq4, opt);
  }
  EXPECT_TRUE(false) << "unknown config " << id;
  return {};
}

TEST(ParallelEngine, ShardCountIsObservablyInvisible) {
  const char* configs[] = {"vct_dedicated",  "saf",
                           "wormhole_rho03", "multihop_rho035",
                           "percycle_rho02", "static_faults",
                           "fault_schedule", "vsq_tree"};
  for (const char* id : configs) {
    const RunDigest base = digest(run_config(id, 1));
    for (const std::uint32_t shards : {2u, 4u}) {
      const RunDigest sharded = digest(run_config(id, shards));
      expect_digest_eq(base, sharded,
                       std::string(id) + " shards=" +
                           std::to_string(shards));
    }
  }
}

TEST(ParallelEngine, MatchesSequentialEngineWithoutBackgroundTraffic) {
  // With no background traffic and no kRandom faults the windowed
  // schedule has no documented divergence from the sequential engine:
  // the same configurations must produce the same physics.  (The
  // events_processed counter is engine-internal bookkeeping - the
  // sequential queue carries completion sentinels the parallel one
  // folds at barriers - so it is excluded here.)
  for (const std::string& id :
       {std::string("vct_dedicated"), std::string("saf"),
        std::string("static_faults"), std::string("fault_schedule"),
        std::string("vsq_tree")}) {
    RunDigest seq = digest(run_config(id, 0));
    RunDigest par = digest(run_config(id, 2));
    seq.events = par.events = 0;
    expect_digest_eq(seq, par, id + " sequential-vs-sharded");
  }
}

TEST(ParallelEngine, ReproducesSeedGoldensWithoutBackground) {
  // The no-background entries of test_sim_golden.cpp, replayed through
  // the windowed engine: the parallel schedule must reproduce the
  // pre-optimization seed numbers exactly.
  const AtaResult vct = run_config("vct_dedicated", 4);
  EXPECT_EQ(vct.finish, 1040000);
  EXPECT_EQ(vct.stats.cut_throughs, 896u);
  EXPECT_EQ(vct.stats.deliveries, 960u);
  EXPECT_EQ(vct.stats.total_queue_wait, 0);

  const AtaResult saf = run_config("saf", 4);
  EXPECT_EQ(saf.finish, 7200000);
  EXPECT_EQ(saf.stats.buffered_relays, 896u);
  EXPECT_EQ(saf.stats.deliveries, 960u);

  const AtaResult vsq = run_config("vsq_tree", 4);
  EXPECT_EQ(vsq.finish, 9280000);
  EXPECT_EQ(vsq.stats.cut_throughs, 704u);
  EXPECT_EQ(vsq.stats.buffered_relays, 256u);
  EXPECT_EQ(vsq.stats.deliveries, 1024u);
}

// ---------------------------------------------------------------------
// Trace-stream determinism and TraceLint on sharded runs.

std::string event_signature(const obs::TraceEvent& e) {
  std::string s(e.name);
  s += '|';
  s += e.cat;
  for (const std::int64_t v :
       {static_cast<std::int64_t>(e.phase), e.ts, e.dur,
        static_cast<std::int64_t>(e.track), e.flow, e.node, e.link,
        e.origin, e.route, e.pos, e.len, e.depth, e.stage, e.vc}) {
    s += std::to_string(v);
    s += '|';
  }
  s += e.detail;
  return s;
}

TEST(ParallelEngine, TraceStreamsAreShardCountInvariant) {
  for (const char* id : {"vct_dedicated", "multihop_rho035",
                         "static_faults", "vsq_tree"}) {
    std::vector<std::string> reference;
    for (const std::uint32_t shards : {1u, 4u}) {
      obs::CollectingSink sink;
      obs::Tracer tracer;
      tracer.attach(&sink);
      (void)run_config(id, shards, &tracer);
      std::vector<std::string> stream;
      stream.reserve(sink.events().size());
      for (const obs::TraceEvent& e : sink.events())
        stream.push_back(event_signature(e));
      ASSERT_FALSE(stream.empty()) << id;
      if (shards == 1) {
        reference = std::move(stream);
      } else {
        ASSERT_EQ(stream.size(), reference.size()) << id;
        for (std::size_t i = 0; i < stream.size(); ++i)
          ASSERT_EQ(stream[i], reference[i]) << id << " event " << i;
      }
    }
  }
}

TEST(ParallelEngine, TraceLintHoldsOnShardedRuns) {
  obs::CollectingSink sink;
  obs::Tracer tracer;
  tracer.attach(&sink);
  const AtaResult r = run_config("vct_dedicated", 4, &tracer);
  EXPECT_EQ(r.stats.deliveries, 960u);
  const obs::analyze::Analysis a = obs::analyze::analyze_trace(sink.events());
  EXPECT_TRUE(a.lint.ok()) << [&] {
    std::string all;
    for (const auto& v : a.lint.violations)
      all += v.check + ": " + v.message + "\n";
    return all;
  }();
  EXPECT_FALSE(a.lint.checks_run.empty());
}

// ---------------------------------------------------------------------
// Unsupported configurations are rejected up front.

TEST(ParallelEngine, RejectsRandomFaultsUpFront) {
  const Hypercube q3(3);
  AtaOptions opt = packet_opt(2);
  FaultPlan plan(derive_seed("tests", "parallel-random"));
  plan.add(1, FaultMode::kRandom);
  opt.faults = &plan;
  EXPECT_THROW((void)run_ihc(q3, IhcOptions{.eta = 2}, opt), ConfigError);

  AtaOptions opt2 = packet_opt(2);
  FaultSchedule schedule(derive_seed("tests", "parallel-random2"));
  schedule.fault_node(2, FaultMode::kRandom, sim_ns(10));
  opt2.schedule = &schedule;
  EXPECT_THROW((void)run_ihc(q3, IhcOptions{.eta = 2}, opt2), ConfigError);
}

// ---------------------------------------------------------------------
// origin_limit: the Q_20-scale escape hatch (docs/PARALLEL.md).

TEST(ParallelEngine, OriginLimitSlicesTheBroadcastSet) {
  const Hypercube q4(4);
  AtaOptions opt = packet_opt(2);
  opt.granularity = DeliveryLedger::Granularity::kAggregate;
  const AtaResult r =
      run_ihc(q4, IhcOptions{.eta = 2, .origin_limit = 2}, opt);
  // Two origins, four cycles each, 15 deliveries per (origin, cycle).
  EXPECT_EQ(r.stats.deliveries, 2u * 4u * 15u);
  EXPECT_EQ(r.ledger.total_copies(), 2u * 4u * 15u);

  // Per-cycle barriers skip the initiator-free stages an origin_limit
  // leaves behind instead of deadlocking on them.
  AtaOptions opt2 = packet_opt(2);
  const AtaResult r2 = run_ihc(
      q4,
      IhcOptions{.eta = 2, .barrier = StageBarrier::kPerCycle,
                 .origin_limit = 1},
      opt2);
  EXPECT_EQ(r2.stats.deliveries, 1u * 4u * 15u);
  EXPECT_GT(r2.finish, 0);
}

// ---------------------------------------------------------------------
// Big-topology smoke: Q_12 by default, Q_20 under IHC_BIG=1 (the
// acceptance trial; ~1M nodes, single origin, aggregate ledger).

TEST(ParallelEngine, BigHypercubeSingleOriginCompletes) {
  const bool big = std::getenv("IHC_BIG") != nullptr;
  const std::uint32_t dim = big ? 20 : 12;
  const Hypercube q(dim);
  AtaOptions opt = packet_opt(4);
  opt.granularity = DeliveryLedger::Granularity::kAggregate;
  const AtaResult r = run_ihc(
      q, IhcOptions{.eta = 2, .cycles_to_use = 1, .origin_limit = 1}, opt);
  const std::uint64_t n = 1ull << dim;
  EXPECT_EQ(r.stats.deliveries, n - 1);
  EXPECT_GT(r.finish, 0);
}

}  // namespace
}  // namespace ihc
