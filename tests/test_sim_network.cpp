// Unit tests for the discrete-event simulator's timing model.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "graph/cycle.hpp"
#include "sim/network.hpp"

namespace ihc {
namespace {

/// A path-shaped "cycle" helper: C_n graph with its trivial cycle.
struct Ring {
  Graph g;
  Cycle cycle;
  DirectedCycle dir;
  explicit Ring(NodeId n)
      : g(make_cycle_graph(n)),
        cycle([n] {
          std::vector<NodeId> seq(n);
          for (NodeId i = 0; i < n; ++i) seq[i] = i;
          return Cycle(seq);
        }()),
        dir(cycle, false, n) {}
};

NetworkParams base_params() {
  NetworkParams p;
  p.alpha = sim_ns(20);
  p.tau_s = sim_ns(1000);
  p.mu = 2;
  return p;
}

FlowSpec ring_flow(const Ring& r, NodeId origin, std::uint32_t hops,
                   SimTime inject = 0) {
  FlowSpec f;
  f.origin = origin;
  f.inject_time = inject;
  f.cycle_path = CyclePathRoute{&r.dir, origin, hops};
  return f;
}

TEST(Network, SingleCutThroughChainMatchesTheClosedForm) {
  // tau_S + mu*alpha + (hops-1)*alpha: injection plus cut-throughs.
  const Ring r(8);
  const NetworkParams p = base_params();
  Network net(r.g, p);
  net.add_flow(ring_flow(r, 0, 7));
  net.run();
  const SimTime expected =
      p.tau_s + 2 * p.alpha + 6 * p.alpha;  // tail at the 7th node
  EXPECT_EQ(net.stats().finish_time, expected);
  EXPECT_EQ(net.stats().injections, 1u);
  EXPECT_EQ(net.stats().cut_throughs, 6u);
  EXPECT_EQ(net.stats().buffered_relays, 0u);
  EXPECT_EQ(net.stats().deliveries, 7u);  // tee at every visited node
}

TEST(Network, EveryVisitedNodeGetsACopyWithTailTiming) {
  const Ring r(6);
  const NetworkParams p = base_params();
  Network net(r.g, p, DeliveryLedger::Granularity::kFull);
  net.add_flow(ring_flow(r, 0, 5));
  net.run();
  for (NodeId v = 1; v <= 5; ++v) {
    const auto& recs = net.ledger().records(0, v);
    ASSERT_EQ(recs.size(), 1u);
    // Header reaches node v at tau_s + (v-1) alpha; tail mu*alpha later.
    EXPECT_EQ(recs[0].time, p.tau_s + (v - 1) * p.alpha + 2 * p.alpha);
  }
}

TEST(Network, StoreAndForwardCostsTauSPerHop) {
  const Ring r(5);
  NetworkParams p = base_params();
  p.switching = Switching::kStoreAndForward;
  Network net(r.g, p);
  net.add_flow(ring_flow(r, 0, 4));
  net.run();
  // Each hop: store (mu alpha) + tau_s, final tail: + mu alpha.
  // hop k header-out time: k*(tau_s + mu alpha) ... finish:
  // 4 hops: tau_s + (3 further hops each tau_s + mu a) + tail.
  const SimTime hop = p.tau_s + 2 * p.alpha;
  EXPECT_EQ(net.stats().finish_time, 4 * hop);
  EXPECT_EQ(net.stats().buffered_relays, 3u);
  EXPECT_EQ(net.stats().cut_throughs, 0u);
}

TEST(Network, QueueingDelayKnobAddsDPerBufferedHop) {
  const Ring r(5);
  NetworkParams p = base_params();
  p.switching = Switching::kStoreAndForward;
  p.queueing_delay = sim_ns(500);
  Network net(r.g, p);
  net.add_flow(ring_flow(r, 0, 4));
  net.run();
  const SimTime hop = p.tau_s + 2 * p.alpha + p.queueing_delay;
  EXPECT_EQ(net.stats().finish_time, 4 * hop);
}

TEST(Network, ContendingPacketsSerializeOnTheLink) {
  // Two flows injected at the same time over the same first link: the
  // second must wait for the transmitter.
  const Ring r(8);
  const NetworkParams p = base_params();
  Network net(r.g, p, DeliveryLedger::Granularity::kFull);
  net.add_flow(ring_flow(r, 0, 2));
  FlowSpec second = ring_flow(r, 0, 2);
  second.route_tag = 1;
  net.add_flow(std::move(second));
  net.run();
  EXPECT_GT(net.stats().total_queue_wait, 0);
  const auto& recs = net.ledger().records(0, 1);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_NE(recs[0].time, recs[1].time);
}

TEST(Network, VctBuffersWhenTransmitterBusy) {
  // Flow A occupies link 1->2 while flow B arrives at node 1 wanting to
  // cut through: B must be buffered (VCT), costing tau_s + store time.
  const Ring r(8);
  const NetworkParams p = base_params();
  Network net(r.g, p);
  net.add_flow(ring_flow(r, 1, 3));           // A: 1 -> 2 -> 3 -> 4
  net.add_flow(ring_flow(r, 0, 3));           // B: 0 -> 1 -> 2 -> 3
  net.run();
  EXPECT_GE(net.stats().buffered_relays, 1u);
}

TEST(Network, WormholeMatchesVctWhenNothingBlocks) {
  const Ring r(8);
  for (auto mode :
       {Switching::kVirtualCutThrough, Switching::kWormhole}) {
    NetworkParams p = base_params();
    p.switching = mode;
    Network net(r.g, p);
    net.add_flow(ring_flow(r, 0, 7));
    net.run();
    EXPECT_EQ(net.stats().finish_time, p.tau_s + 2 * p.alpha + 6 * p.alpha);
    EXPECT_EQ(net.stats().wormhole_stalls, 0u);
  }
}

TEST(Network, WormholeStallHoldsTheIncomingLink) {
  const Ring r(8);
  NetworkParams p = base_params();
  p.switching = Switching::kWormhole;
  Network net(r.g, p);
  net.add_flow(ring_flow(r, 1, 3));
  net.add_flow(ring_flow(r, 0, 3));
  net.run();
  EXPECT_GE(net.stats().wormhole_stalls, 1u);
  EXPECT_EQ(net.stats().buffered_relays, 0u);  // nothing buffered at nodes
}

TEST(Network, TreeFlowRedirectsPayStoreAndForward) {
  // Star tree: root 0 sends to 1 (CT-preferred chain) and 2 (redirect).
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const NetworkParams p = base_params();
  Network net(g, p, DeliveryLedger::Granularity::kFull);
  FlowSpec f;
  f.origin = 1;
  f.tree = {
      {1, -1, false},  // root
      {2, 0, false},   // injection to 2
      {3, 1, true},    // forward 2 -> 3: cut-through
      {0, 2, false},   // redirect at 3 towards 0
  };
  net.add_flow(std::move(f));
  net.run();
  // 1->2: tau_s (+ tail 2a); 2->3 CT: +a; 3->0 redirect: wait tail
  // (2a after header) then tau_s, header at 0, tail +2a.
  const SimTime header_at_3 = p.tau_s + p.alpha;
  const SimTime redirect_out = header_at_3 + 2 * p.alpha + p.tau_s;
  EXPECT_EQ(net.ledger().records(1, 0)[0].time, redirect_out + 2 * p.alpha);
  EXPECT_EQ(net.stats().redirects, 1u);
}

TEST(Network, VariableLengthMessagesScaleTransmissionTime) {
  const Ring r(4);
  const NetworkParams p = base_params();
  Network net(r.g, p);
  FlowSpec f = ring_flow(r, 0, 1);
  f.length_units = 10;
  net.add_flow(std::move(f));
  net.run();
  EXPECT_EQ(net.stats().finish_time, p.tau_s + 10 * p.alpha);
}

TEST(Network, BackgroundTrafficLoadsLinks) {
  const Ring r(8);
  NetworkParams p = base_params();
  p.rho = 0.4;
  p.tau_s = sim_us(50);  // long run so background has time to appear
  Network net(r.g, p);
  net.add_flow(ring_flow(r, 0, 7));
  net.run();
  EXPECT_GT(net.stats().background_packets, 0u);
}

TEST(Network, RejectsMalformedFlows) {
  const Ring r(4);
  Network net(r.g, base_params());
  FlowSpec none;
  none.origin = 0;
  EXPECT_THROW(net.add_flow(std::move(none)), ConfigError);

  FlowSpec wrong_start = ring_flow(r, 0, 2);
  wrong_start.cycle_path.start = 1;  // cycle[1] != origin 0
  EXPECT_THROW(net.add_flow(std::move(wrong_start)), ConfigError);

  FlowSpec bad_tree;
  bad_tree.origin = 0;
  bad_tree.tree = {{1, -1, false}};  // root is not the origin
  EXPECT_THROW(net.add_flow(std::move(bad_tree)), ConfigError);
}

TEST(Network, ParamsAreValidated) {
  const Ring r(4);
  NetworkParams p = base_params();
  p.rho = 1.5;
  EXPECT_THROW(Network(r.g, p), ConfigError);
  p = base_params();
  p.mu = 0;
  EXPECT_THROW(Network(r.g, p), ConfigError);
}

TEST(Network, UtilizationAccountingIsPositiveAndBounded) {
  const Ring r(8);
  Network net(r.g, base_params());
  net.add_flow(ring_flow(r, 0, 7));
  net.run();
  const double u = net.mean_link_utilization();
  EXPECT_GT(u, 0.0);
  EXPECT_LE(u, 1.0);
}

}  // namespace
}  // namespace ihc
