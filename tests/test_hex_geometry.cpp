// Tests for the hex-mesh coordinate geometry (Chen-Shin-Kandlur
// addressing [5]): axial coordinates, closed-form distance, and greedy
// routing, all cross-validated against BFS on the circulant graph.  This
// doubles as a proof that the circulant construction with jumps
// {1, 3m-2, 3m-1} really is the C-wrapped hexagonal mesh.
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "sim/routing.hpp"
#include "topology/hex_mesh.hpp"

namespace ihc {
namespace {

TEST(HexGeometry, AxialNormCases) {
  EXPECT_EQ(HexMesh::axial_norm({0, 0}), 0u);
  EXPECT_EQ(HexMesh::axial_norm({3, 0}), 3u);
  EXPECT_EQ(HexMesh::axial_norm({0, -2}), 2u);
  // Same sign: components add (axes are 60 degrees apart).
  EXPECT_EQ(HexMesh::axial_norm({2, 3}), 5u);
  EXPECT_EQ(HexMesh::axial_norm({-1, -1}), 2u);
  // Opposite sign: pairs combine into third-axis moves.
  EXPECT_EQ(HexMesh::axial_norm({2, -3}), 3u);
  EXPECT_EQ(HexMesh::axial_norm({-4, 1}), 4u);
}

TEST(HexGeometry, CoordinatesInvertNeighborSteps) {
  const HexMesh hex(4);
  const NodeId c = 10;
  // +1 jump = axial (1, 0); +(3m-1) = (0, 1); +(3m-2) = (-1, 1).
  const auto a1 = hex.coordinates(c, (c + 1) % hex.node_count());
  EXPECT_EQ(a1.a, 1);
  EXPECT_EQ(a1.b, 0);
  const auto a2 =
      hex.coordinates(c, (c + 3 * hex.size() - 1) % hex.node_count());
  EXPECT_EQ(a2.a, 0);
  EXPECT_EQ(a2.b, 1);
  const auto a3 =
      hex.coordinates(c, (c + 3 * hex.size() - 2) % hex.node_count());
  EXPECT_EQ(HexMesh::axial_norm(a3), 1u);
}

class HexGeometrySweep : public ::testing::TestWithParam<NodeId> {};

TEST_P(HexGeometrySweep, ClosedFormDistanceEqualsBfs) {
  const HexMesh hex(GetParam());
  RoutingTable bfs(hex.graph());
  for (NodeId u = 0; u < hex.node_count(); ++u)
    for (NodeId v = 0; v < hex.node_count(); ++v)
      ASSERT_EQ(hex.hex_distance(u, v), bfs.distance(u, v))
          << "pair (" << u << "," << v << ") on " << hex.name();
}

TEST_P(HexGeometrySweep, EveryNodeLiesWithinRadiusMMinus1) {
  const HexMesh hex(GetParam());
  for (NodeId v = 0; v < hex.node_count(); ++v)
    EXPECT_LE(hex.hex_distance(0, v), hex.size() - 1);
}

TEST_P(HexGeometrySweep, GreedyRoutesAreShortestAndValid) {
  const HexMesh hex(GetParam());
  for (NodeId u = 0; u < hex.node_count(); u += 3) {
    for (NodeId v = 0; v < hex.node_count(); ++v) {
      const auto path = hex.route(u, v);
      ASSERT_EQ(path.size(), hex.hex_distance(u, v) + 1);
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), v);
      for (std::size_t i = 0; i + 1 < path.size(); ++i)
        ASSERT_TRUE(hex.graph().has_edge(path[i], path[i + 1]))
            << path[i] << "->" << path[i + 1];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HexGeometrySweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u),
                         [](const auto& param) {
                           return "H" + std::to_string(param.param);
                         });

TEST(HexGeometry, DiameterIsSizeMinusOne) {
  // The C-wrapped hex mesh of size m has diameter m - 1 [5].
  for (NodeId m : {2u, 3u, 4u, 5u}) {
    const HexMesh hex(m);
    std::uint32_t diameter = 0;
    for (NodeId v = 0; v < hex.node_count(); ++v)
      diameter = std::max(diameter, hex.hex_distance(0, v));
    EXPECT_EQ(diameter, m - 1) << hex.name();
  }
}

}  // namespace
}  // namespace ihc
