// The trace-analysis engine end-to-end: the closed-form critical path on
// a golden fault-free Q_4 run, byte-identical ihc-analysis-v1 output,
// the ChromeTraceSink -> parse_trace_json round trip, TraceLint's
// reaction to three corrupted-trace fixtures, the fault-tolerance
// campaign, and bounded-sink truncation semantics (docs/ANALYSIS.md).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/ihc.hpp"
#include "exp/exp.hpp"
#include "obs/obs.hpp"
#include "topology/hypercube.hpp"

namespace ihc {
namespace {

using obs::TraceEvent;
using obs::analyze::Analysis;
using obs::analyze::LintSkipped;
using obs::analyze::LintViolation;

/// Golden trial: IHC (eta = 2) on Q_4 with alpha = 20 ns, tau_s =
/// 200 ns, mu = 2 and no background load - fault-free cut-through, so
/// the closed form T_stage = tau_s + mu alpha + (P - 1) alpha applies
/// exactly: 200 + 40 + 14 * 20 = 520 ns per stage.
constexpr SimTime kQ4Stage = sim_ns(520);

AtaResult run_q4(obs::Tracer* tracer, double rho = 0.0) {
  const Hypercube cube(4);
  AtaOptions opt;
  opt.net.tau_s = sim_ns(200);
  opt.net.rho = rho;
  opt.net.seed = 42;
  opt.tracer = tracer;
  return run_ihc(cube, IhcOptions{.eta = 2}, opt);
}

std::vector<TraceEvent> collect_q4(double rho = 0.0) {
  obs::CollectingSink sink;
  obs::Tracer tracer;
  tracer.attach(&sink);
  run_q4(&tracer, rho);
  return sink.events();
}

bool has_violation(const Analysis& a, const std::string& check) {
  for (const LintViolation& v : a.lint.violations)
    if (v.check == check) return true;
  return false;
}

bool was_skipped(const Analysis& a, const std::string& check,
                 const std::string& reason_substr = "") {
  for (const LintSkipped& s : a.lint.skipped)
    if (s.check == check &&
        s.reason.find(reason_substr) != std::string::npos)
      return true;
  return false;
}

TEST(Analyze, Q4CriticalPathMatchesTheClosedForm) {
  const Analysis a = obs::analyze::analyze_trace(collect_q4());

  EXPECT_EQ(a.nodes, 16u);
  EXPECT_EQ(a.links, 64u);
  EXPECT_EQ(a.alpha, sim_ns(20));
  EXPECT_EQ(a.tau_s, sim_ns(200));

  // The critical chain visits all N - 1 = 15 route positions: one
  // inject hop (carrying tau_s as switch time) + 14 cut-throughs.
  ASSERT_EQ(a.critical.hops.size(), 15u);
  EXPECT_EQ(a.critical.total, kQ4Stage);
  EXPECT_EQ(a.critical.swtch, sim_ns(200));
  EXPECT_EQ(a.critical.wire, sim_ns(14 * 20));
  EXPECT_EQ(a.critical.queue, 0);
  EXPECT_EQ(a.critical.store, 0);
  EXPECT_EQ(a.critical.tail, sim_ns(40));  // mu * alpha

  // Per-hop decomposition identity: total == wire + queue + swtch +
  // store for every hop, and the hop totals plus the tail make up the
  // end-to-end total.
  SimTime sum = 0;
  for (const obs::analyze::Hop& h : a.critical.hops) {
    EXPECT_EQ(h.total, h.wire + h.queue + h.swtch + h.store);
    sum += h.total;
  }
  EXPECT_EQ(sum + a.critical.tail, a.critical.total);

  // Every stage matches the closed form exactly and TraceLint is clean.
  ASSERT_FALSE(a.stages.empty());
  for (const obs::analyze::StageSummary& s : a.stages) {
    ASSERT_NE(s.model, TraceEvent::kUnset);
    EXPECT_EQ(s.model, kQ4Stage);
    EXPECT_LE(std::llabs((s.end - s.begin) - s.model), a.alpha);
  }
  EXPECT_TRUE(a.lint.ok());
  EXPECT_EQ(a.lint.checks_run.size(), 6u);
  // Sidelined: the fault-window check (a clean trace has nothing for it
  // to add over per-flow delivery_completeness) and the workload-session
  // check (a one-shot ATA run has no session events).
  EXPECT_EQ(a.lint.skipped.size(), 2u);
  EXPECT_TRUE(was_skipped(a, "origin_completeness", "no fault"));
  EXPECT_TRUE(was_skipped(a, "session_conservation", "no workload"));
}

TEST(Analyze, ReportIsByteIdenticalAcrossRuns) {
  const std::string first =
      obs::analyze::to_json(obs::analyze::analyze_trace(collect_q4()))
          .dump(2);
  const std::string second =
      obs::analyze::to_json(obs::analyze::analyze_trace(collect_q4()))
          .dump(2);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"schema\": \"ihc-analysis-v1\""),
            std::string::npos);
}

TEST(Analyze, ChromeTraceRoundTripAnalyzesIdentically) {
  std::ostringstream doc;
  {
    obs::ChromeTraceSink sink(doc);
    obs::Tracer tracer;
    tracer.attach(&sink);
    run_q4(&tracer);
  }
  const std::vector<TraceEvent> reloaded =
      obs::analyze::parse_trace_json(doc.str());
  const std::vector<TraceEvent> direct = collect_q4();
  ASSERT_EQ(reloaded.size(), direct.size());

  const std::string from_file =
      obs::analyze::to_json(obs::analyze::analyze_trace(reloaded)).dump(2);
  const std::string in_process =
      obs::analyze::to_json(obs::analyze::analyze_trace(direct)).dump(2);
  EXPECT_EQ(from_file, in_process);
}

TEST(Analyze, RejectsNonTraceJson) {
  EXPECT_THROW(obs::analyze::parse_trace_json("not json"), ConfigError);
  EXPECT_THROW(obs::analyze::parse_trace_json("{\"traceEvents\": []}"),
               ConfigError);  // missing the ihc-trace-v1 schema tag
}

// -- corrupted-trace fixtures ---------------------------------------------
// Each fixture perturbs the golden Q_4 trace in one specific way and must
// trip exactly the invariant that guards against it.

TEST(Analyze, LintCatchesADroppedDelivery) {
  std::vector<TraceEvent> events = collect_q4();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (std::strcmp(events[i].name, "delivered") == 0) {
      events.erase(events.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  const Analysis a = obs::analyze::analyze_trace(events);
  EXPECT_FALSE(a.lint.ok());
  EXPECT_TRUE(has_violation(a, "delivery_completeness"));
  bool diagnosed = false;
  for (const LintViolation& v : a.lint.violations)
    diagnosed = diagnosed ||
                v.message.find("delivered to 14 of 15 nodes") !=
                    std::string::npos;
  EXPECT_TRUE(diagnosed);
}

TEST(Analyze, LintCatchesReorderedLinkTransmissions) {
  std::vector<TraceEvent> events = collect_q4();
  // Shift the second xmit on some link back onto the first, so the two
  // spans overlap - a serial link cannot transmit two packets at once.
  TraceEvent* first = nullptr;
  for (TraceEvent& e : events) {
    if (std::strcmp(e.name, "xmit") != 0) continue;
    if (first == nullptr) {
      first = &e;
    } else if (e.link == first->link) {
      e.ts = first->ts;
      break;
    }
  }
  const Analysis a = obs::analyze::analyze_trace(events);
  EXPECT_FALSE(a.lint.ok());
  EXPECT_TRUE(has_violation(a, "fifo_ordering"));
  bool diagnosed = false;
  for (const LintViolation& v : a.lint.violations)
    diagnosed =
        diagnosed || v.message.find("overlaps") != std::string::npos;
  EXPECT_TRUE(diagnosed);
}

TEST(Analyze, LintCatchesAnOverDeepBuffer) {
  std::vector<TraceEvent> events = collect_q4();
  // A Q_4 node has in-degree 4, so a stored depth of 99 violates the
  // one-packet-per-incoming-link intermediate-storage bound.
  TraceEvent deep;
  deep.name = "buffered";
  deep.cat = "fifo";
  deep.phase = TraceEvent::Phase::kSpan;
  deep.ts = sim_ns(100);
  deep.dur = sim_ns(10);
  deep.track = 3;
  deep.node = 3;
  deep.flow = 0;
  deep.depth = 99;
  events.push_back(deep);
  const Analysis a = obs::analyze::analyze_trace(events);
  EXPECT_FALSE(a.lint.ok());
  EXPECT_TRUE(has_violation(a, "buffer_bound"));
  bool diagnosed = false;
  for (const LintViolation& v : a.lint.violations)
    diagnosed = diagnosed || v.message.find("depth 99 exceeds bound 4") !=
                                 std::string::npos;
  EXPECT_TRUE(diagnosed);
  // The synthetic buffering also voids the cut-through preconditions, so
  // the closed-form check steps aside rather than misfiring.
  EXPECT_TRUE(was_skipped(a, "stage_closed_form", "buffered"));
}

TEST(Analyze, BackgroundTrafficTrialPassesLint) {
  // rho > 0 forms convoys whose node occupancy legitimately exceeds the
  // dedicated-mode in-degree bound (EXPERIMENTS.md E8): the derived
  // buffer_bound check must step aside instead of flagging them.
  const Analysis a =
      obs::analyze::analyze_trace(collect_q4(/*rho=*/0.4));
  EXPECT_TRUE(a.lint.ok()) << (a.lint.violations.empty()
                                   ? ""
                                   : a.lint.violations[0].message);
  EXPECT_TRUE(was_skipped(a, "buffer_bound", "background"));
  EXPECT_TRUE(was_skipped(a, "stage_closed_form", "background"));
}

// -- fault and truncation semantics ---------------------------------------

TEST(Analyze, FaultToleranceTrialPassesLint) {
  const exp::Campaign campaign = exp::make_builtin_campaign("fault_tolerance");
  const std::vector<exp::Trial> trials = exp::expand_trials(campaign.spec);
  const exp::Trial* chosen = nullptr;
  for (const exp::Trial& t : trials)
    if (t.id == "t=2,algo=ihc,rep=0") chosen = &t;
  ASSERT_NE(chosen, nullptr);

  obs::CollectingSink sink;
  obs::Tracer tracer;
  tracer.attach(&sink);
  obs::MetricsRegistry registry;
  exp::TrialContext ctx{registry, &tracer};
  campaign.run(*chosen, ctx);

  const Analysis a = obs::analyze::analyze_trace(sink.events());
  EXPECT_TRUE(a.lint.ok()) << (a.lint.violations.empty()
                                   ? ""
                                   : a.lint.violations[0].message);
  // Faulty copies exist, so fault_silence must have actually run while
  // the closed form (which assumes fault-free stages) steps aside.
  bool silence_ran = false;
  bool origin_ran = false;
  for (const std::string& c : a.lint.checks_run) {
    silence_ran = silence_ran || c == "fault_silence";
    origin_ran = origin_ran || c == "origin_completeness";
  }
  EXPECT_TRUE(silence_ran);
  // With faults present the union-over-flows completeness check takes
  // over from the per-flow one (corrupt relays still deliver, so the
  // adversary here cannot actually starve an origin).
  EXPECT_TRUE(origin_ran);
  EXPECT_TRUE(was_skipped(a, "stage_closed_form", "fault"));
}

TEST(Analyze, BoundedSinkTruncationSkipsWholeRunInvariants) {
  obs::CollectingSink sink(1000);  // far fewer than the run emits
  obs::Tracer tracer;
  tracer.attach(&sink);
  run_q4(&tracer);
  ASSERT_GT(sink.dropped(), 0u);
  ASSERT_EQ(sink.events().size(), 1000u);

  const Analysis a =
      obs::analyze::analyze_trace(sink.events(), {}, sink.dropped());
  EXPECT_EQ(a.dropped, sink.dropped());
  // A suffix of the run cannot prove whole-run properties: the stream
  // misses deliveries that did happen, so lint skips instead of lying.
  EXPECT_TRUE(a.lint.ok());
  EXPECT_TRUE(was_skipped(a, "delivery_completeness", "truncated"));
  EXPECT_TRUE(was_skipped(a, "fifo_ordering", "truncated"));
  EXPECT_TRUE(was_skipped(a, "fault_silence", "truncated"));
  EXPECT_TRUE(was_skipped(a, "stage_closed_form", "truncated"));
}

TEST(Analyze, TrialSummaryCarriesTheHeadlineNumbers) {
  const Analysis a = obs::analyze::analyze_trace(collect_q4());
  const std::string summary =
      obs::analyze::trial_summary_json(a).dump(0);
  EXPECT_NE(summary.find("\"critical_total\": 520000"), std::string::npos);
  EXPECT_NE(summary.find("\"hops\": 15"), std::string::npos);
  EXPECT_NE(summary.find("\"lint_ok\": true"), std::string::npos);
}

TEST(Analyze, HeatmapRendersEveryWindow) {
  const Analysis a = obs::analyze::analyze_trace(collect_q4());
  const std::string heat = obs::analyze::ascii_heatmap(a);
  EXPECT_NE(heat.find("link-utilization heatmap"), std::string::npos);
  EXPECT_NE(heat.find("mean over links"), std::string::npos);
  EXPECT_NE(heat.find("active stages"), std::string::npos);
}

}  // namespace
}  // namespace ihc
