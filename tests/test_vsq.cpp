// Tests for the VSQ square-mesh reliable broadcast and VSQ-ATA.
#include <gtest/gtest.h>

#include "core/vsq.hpp"

namespace ihc {
namespace {

AtaOptions base_options() {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_us(5);
  opt.net.mu = 2;
  return opt;
}

class VsqTrees : public ::testing::TestWithParam<NodeId> {};

TEST_P(VsqTrees, FourTreesEachCoveringEveryNodeExactlyOnce) {
  const SquareMesh mesh(GetParam());
  const NodeId n = mesh.node_count();
  for (NodeId source : {NodeId{0}, n - 1}) {
    const auto trees = vsq_trees(mesh, source);
    ASSERT_EQ(trees.size(), 4u);
    for (const auto& tree : trees) {
      std::vector<int> seen(n, 0);
      for (const auto& t : tree) ++seen[t.node];
      EXPECT_EQ(seen[source], 2);  // root + spoke position
      for (NodeId v = 0; v < n; ++v) {
        if (v != source) {
          EXPECT_EQ(seen[v], 1);
        }
      }
    }
  }
}

TEST_P(VsqTrees, TreeEdgesAreRealLinks) {
  const SquareMesh mesh(GetParam());
  const auto trees = vsq_trees(mesh, 0);
  for (const auto& tree : trees) {
    for (std::size_t i = 1; i < tree.size(); ++i) {
      const NodeId parent =
          tree[static_cast<std::size_t>(tree[i].parent)].node;
      EXPECT_TRUE(mesh.graph().has_edge(parent, tree[i].node));
    }
  }
}

TEST_P(VsqTrees, EveryPathPaysAtMostThreeStoreAndForwards) {
  // Fig. 9 cost structure: injection + at most the turn into the fill.
  const SquareMesh mesh(GetParam());
  for (const auto& tree : vsq_trees(mesh, 0)) {
    for (std::size_t i = 1; i < tree.size(); ++i) {
      std::size_t saf = 0;
      for (std::size_t cur = i; cur != 0;
           cur = static_cast<std::size_t>(tree[cur].parent)) {
        if (!tree[cur].cut_through_preferred) ++saf;
      }
      EXPECT_LE(saf, 3u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sides, VsqTrees, ::testing::Values(3u, 4u, 5u, 8u),
                         [](const auto& param) {
                           return "SQ" + std::to_string(param.param);
                         });

TEST(VsqAta, DeliversFourCopiesToEveryPair) {
  const SquareMesh mesh(4);
  const auto result = run_vsq_ata(mesh, base_options());
  const NodeId n = mesh.node_count();
  for (NodeId o = 0; o < n; ++o) {
    for (NodeId d = 0; d < n; ++d) {
      if (o != d) {
        ASSERT_EQ(result.ledger.copies(o, d), 4u);
      }
    }
  }
}

TEST(VsqSingle, CopiesArriveOverTheFourDistinctFirstLinks) {
  const SquareMesh mesh(5);
  AtaOptions opt = base_options();
  opt.granularity = DeliveryLedger::Granularity::kFull;
  const auto result = run_vsq_single(mesh, 12, opt);
  // Each copy travels a different route tag 0..3.
  const auto& recs = result.ledger.records(12, 0);
  ASSERT_EQ(recs.size(), 4u);
  std::set<std::uint16_t> routes;
  for (const auto& r : recs) routes.insert(r.route);
  EXPECT_EQ(routes.size(), 4u);
}

}  // namespace
}  // namespace ihc
