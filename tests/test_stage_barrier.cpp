// Tests for the asynchronous per-cycle stage progression of Section IV:
// "if normal network traffic ... causes one HC_j^i-cycle to complete
// before the other HC_k^i-cycles, the nodes on cycle HC_j can start on
// stage i+1 immediately."
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "core/analysis.hpp"
#include "core/ihc.hpp"
#include "topology/hypercube.hpp"

namespace ihc {
namespace {

AtaOptions base_options() {
  AtaOptions opt;
  opt.net.alpha = sim_ns(20);
  opt.net.tau_s = sim_ns(500);
  opt.net.mu = 2;
  return opt;
}

TEST(StageBarrier, PerCycleEqualsGlobalInADedicatedNetwork) {
  // Without other traffic every cycle's stage drains at the same moment,
  // so the two barrier policies coincide exactly.
  const Hypercube q(5);
  const AtaOptions opt = base_options();
  const auto global = run_ihc(q, IhcOptions{.eta = 2}, opt);
  const auto per_cycle = run_ihc(
      q, IhcOptions{.eta = 2, .barrier = StageBarrier::kPerCycle}, opt);
  EXPECT_EQ(global.finish, per_cycle.finish);
  EXPECT_EQ(per_cycle.stats.buffered_relays, 0u);
  EXPECT_TRUE(per_cycle.ledger.all_pairs_have(q.gamma()));
}

TEST(StageBarrier, PerCycleHelpsOnAverageUnderLoad) {
  // Under background traffic a delayed cycle no longer holds the others
  // back.  Pathwise ordering is not guaranteed (the random background
  // streams diverge once the flows differ), so the claim is aggregate:
  // the asynchronous variant is faster on average and never breaks
  // delivery.
  const Hypercube q(5);
  double global_total = 0, per_cycle_total = 0;
  bool strictly_better_somewhere = false;
  for (const std::uint64_t seed :
       {11ull, 22ull, 33ull, 44ull, 55ull, 66ull}) {
    AtaOptions opt = base_options();
    opt.net.rho = 0.4;
    opt.net.seed = seed;
    const auto global = run_ihc(q, IhcOptions{.eta = 2}, opt);
    const auto per_cycle = run_ihc(
        q, IhcOptions{.eta = 2, .barrier = StageBarrier::kPerCycle}, opt);
    EXPECT_TRUE(per_cycle.ledger.all_pairs_have(q.gamma()));
    global_total += static_cast<double>(global.finish);
    per_cycle_total += static_cast<double>(per_cycle.finish);
    if (per_cycle.finish < global.finish) strictly_better_somewhere = true;
  }
  EXPECT_LE(per_cycle_total, global_total);
  EXPECT_TRUE(strictly_better_somewhere);
}

TEST(StageBarrier, PerCycleStillMatchesTheModelWhenDedicated) {
  const Hypercube q(6);
  const AtaOptions opt = base_options();
  const auto result = run_ihc(
      q, IhcOptions{.eta = 4, .barrier = StageBarrier::kPerCycle}, opt);
  EXPECT_DOUBLE_EQ(static_cast<double>(result.finish),
                   model::ihc_dedicated(q.node_count(), 4, opt.net));
}

}  // namespace
}  // namespace ihc
