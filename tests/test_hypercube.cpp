// Tests for the hypercube topology and its Hamiltonian decomposition
// (Theorems 1 and 2 of the paper).
#include <gtest/gtest.h>

#include "util/error.hpp"

#include "graph/hamiltonian.hpp"
#include "topology/hypercube.hpp"

namespace ihc {
namespace {

TEST(HypercubeGraph, StructureMatchesDefinition) {
  const Graph q4 = make_hypercube_graph(4);
  EXPECT_EQ(q4.node_count(), 16u);
  EXPECT_EQ(q4.edge_count(), 32u);  // m * 2^(m-1)
  EXPECT_EQ(q4.regular_degree(), 4u);
  EXPECT_TRUE(q4.has_edge(0b0000, 0b0100));
  EXPECT_FALSE(q4.has_edge(0b0000, 0b0110));
}

TEST(Hypercube, RejectsDegenerateDimensions) {
  EXPECT_THROW(Hypercube(1), ConfigError);
  EXPECT_THROW((void)hypercube_hamiltonian_cycles(1), ConfigError);
}

TEST(Hypercube, NeighborAndDirection) {
  const Hypercube q(4);
  EXPECT_EQ(q.neighbor(0b0101, 1), 0b0111u);
  EXPECT_EQ(q.direction(0b0101, 0b0111), 1u);
  EXPECT_EQ(q.direction(0, 8), 3u);
  EXPECT_THROW((void)q.direction(0, 3), ConfigError);  // not adjacent
}

TEST(Hypercube, NodeLabelIsBinaryMsbFirst) {
  const Hypercube q(4);
  EXPECT_EQ(q.node_label(0b1010), "1010");
  EXPECT_EQ(q.node_label(1), "0001");
}

TEST(Hypercube, GammaFollowsTheorem1And2) {
  EXPECT_EQ(Hypercube(2).gamma(), 2u);
  EXPECT_EQ(Hypercube(3).gamma(), 2u);   // odd: one matching unused
  EXPECT_EQ(Hypercube(4).gamma(), 4u);
  EXPECT_EQ(Hypercube(7).gamma(), 6u);
  EXPECT_EQ(Hypercube(10).gamma(), 10u);
}

/// Theorem 1 (even m) and Theorem 2 (odd m): floor(m/2) edge-disjoint
/// Hamiltonian cycles, covering all edges iff m is even.
class HypercubeDecomposition : public ::testing::TestWithParam<unsigned> {};

TEST_P(HypercubeDecomposition, TheoremHolds) {
  const unsigned m = GetParam();
  const Graph g = make_hypercube_graph(m);
  const auto cycles = hypercube_hamiltonian_cycles(m);
  EXPECT_EQ(cycles.size(), m / 2);
  const auto verdict = verify_hc_set(g, cycles, /*cover_all=*/m % 2 == 0);
  EXPECT_TRUE(verdict.ok) << verdict.reason;
}

TEST_P(HypercubeDecomposition, OddDimensionLeavesAPerfectMatching) {
  const unsigned m = GetParam();
  if (m % 2 == 0) GTEST_SKIP() << "even dimension covers all edges";
  const Graph g = make_hypercube_graph(m);
  std::vector<std::uint32_t> uses(g.node_count(), 0);
  std::vector<bool> used_edge(g.edge_count(), false);
  for (const Cycle& c : hypercube_hamiltonian_cycles(m))
    for (EdgeId e : c.edge_ids(g)) used_edge[e] = true;
  // Unused edges must form a perfect matching: every node exactly once.
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (used_edge[e]) continue;
    const auto [u, v] = g.edge(e);
    ++uses[u];
    ++uses[v];
  }
  for (NodeId v = 0; v < g.node_count(); ++v) EXPECT_EQ(uses[v], 1u);
}

INSTANTIATE_TEST_SUITE_P(Dimensions, HypercubeDecomposition,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u),
                         [](const auto& param) {
                           return "Q" + std::to_string(param.param);
                         });

TEST(Hypercube, TopologyCachesCyclesAcrossCalls) {
  const Hypercube q(6);
  const auto* first = &q.hamiltonian_cycles();
  const auto* second = &q.hamiltonian_cycles();
  EXPECT_EQ(first, second);
  EXPECT_EQ(q.directed_cycles().size(), q.gamma());
}

TEST(Hypercube, DirectedCyclePairsShareReferenceNode) {
  const Hypercube q(4);
  const auto& dirs = q.directed_cycles();
  for (std::size_t h = 0; h < dirs.size(); h += 2)
    EXPECT_EQ(dirs[h].at(0), dirs[h + 1].at(0));
}

}  // namespace
}  // namespace ihc
