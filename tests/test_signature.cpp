// Tests for the keyed-MAC signature oracle.
#include <gtest/gtest.h>

#include "sim/signature.hpp"

namespace ihc {
namespace {

TEST(KeyRing, SignVerifyRoundTrip) {
  const KeyRing keys(123);
  const std::uint64_t mac = keys.sign(5, 0xABCDEF);
  EXPECT_TRUE(keys.verify(5, 0xABCDEF, mac));
}

TEST(KeyRing, TamperedPayloadIsDetected) {
  const KeyRing keys(123);
  const std::uint64_t mac = keys.sign(5, 0xABCDEF);
  EXPECT_FALSE(keys.verify(5, 0xABCDEE, mac));
  EXPECT_FALSE(keys.verify(5, 0xABCDEF, mac ^ 1));
}

TEST(KeyRing, SignatureIsBoundToTheOrigin) {
  const KeyRing keys(123);
  const std::uint64_t mac = keys.sign(5, 0xABCDEF);
  EXPECT_FALSE(keys.verify(6, 0xABCDEF, mac));
}

TEST(KeyRing, DistinctNodesHaveDistinctKeys) {
  const KeyRing keys(123);
  EXPECT_NE(keys.key_of(0), keys.key_of(1));
  EXPECT_NE(keys.key_of(1), keys.key_of(2));
}

TEST(KeyRing, DifferentNetworkSeedsProduceDifferentKeys) {
  const KeyRing a(1), b(2);
  EXPECT_NE(a.key_of(0), b.key_of(0));
  EXPECT_NE(a.sign(0, 7), b.sign(0, 7));
}

}  // namespace
}  // namespace ihc
