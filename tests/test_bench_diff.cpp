// Tests for the ihc-bench-v1 regression comparison (src/exp/bench_diff.hpp)
// behind `ihc_cli bench-diff`.  The CI gate's contract: a self-diff is
// clean, an injected slowdown past the threshold flags exactly that job
// (and flips the exit path via any_regression), jobs present in only one
// report are listed but never regress, and malformed documents are
// rejected as ConfigError (exit kExitUsage) rather than misread.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exp/bench_diff.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace ihc::exp {
namespace {

Json bench_doc(double multihop_ms, double flit_ms, int hw_threads = 1) {
  Json jobs = Json::array();
  Json a = Json::object();
  a.set("name", "events_q6_multihop").set("wall_ms", multihop_ms);
  jobs.push(std::move(a));
  Json b = Json::object();
  b.set("name", "flit_wormhole_h5").set("wall_ms", flit_ms);
  jobs.push(std::move(b));
  Json doc = Json::object();
  doc.set("schema", "ihc-bench-v1")
      .set("hw_threads", static_cast<std::int64_t>(hw_threads))
      .set("jobs", std::move(jobs));
  return doc;
}

TEST(BenchDiff, SelfDiffIsClean) {
  const Json doc = bench_doc(100.0, 50.0);
  const BenchDiff diff = diff_bench_reports(doc, doc, 1.25);
  EXPECT_FALSE(diff.any_regression());
  ASSERT_EQ(diff.deltas.size(), 2u);
  for (const BenchDelta& d : diff.deltas) {
    EXPECT_TRUE(d.in_old);
    EXPECT_TRUE(d.in_new);
    EXPECT_DOUBLE_EQ(d.ratio, 1.0);
    EXPECT_FALSE(d.regressed);
  }
  std::ostringstream out;
  diff.print(out);
  EXPECT_NE(out.str().find("PASS"), std::string::npos);
  EXPECT_EQ(out.str().find("REGRESSION"), std::string::npos);
}

TEST(BenchDiff, InjectedRegressionFlagsOnlyTheSlowedJob) {
  const Json old_doc = bench_doc(100.0, 50.0);
  const Json new_doc = bench_doc(100.0, 500.0);  // flit job 10x slower
  const BenchDiff diff = diff_bench_reports(old_doc, new_doc, 2.0);
  EXPECT_TRUE(diff.any_regression());
  ASSERT_EQ(diff.deltas.size(), 2u);
  EXPECT_FALSE(diff.deltas[0].regressed);
  EXPECT_TRUE(diff.deltas[1].regressed);
  EXPECT_DOUBLE_EQ(diff.deltas[1].ratio, 10.0);
  std::ostringstream out;
  diff.print(out);
  EXPECT_NE(out.str().find("REGRESSION"), std::string::npos);
}

TEST(BenchDiff, ThresholdBoundsAreRespected) {
  const Json old_doc = bench_doc(100.0, 50.0);
  const Json new_doc = bench_doc(124.0, 50.0);  // 1.24x
  EXPECT_FALSE(diff_bench_reports(old_doc, new_doc, 1.25).any_regression());
  EXPECT_TRUE(diff_bench_reports(old_doc, new_doc, 1.20).any_regression());
  // A ratio of exactly the threshold does not regress (strictly greater).
  const Json at = bench_doc(125.0, 50.0);
  EXPECT_FALSE(diff_bench_reports(old_doc, at, 1.25).any_regression());
  // Thresholds <= 1 are configuration errors.
  EXPECT_THROW((void)diff_bench_reports(old_doc, new_doc, 1.0), ConfigError);
}

TEST(BenchDiff, UnmatchedJobsAreListedButNeverRegress) {
  Json old_doc = bench_doc(100.0, 50.0);
  Json new_jobs = Json::array();
  Json renamed = Json::object();
  renamed.set("name", "events_q6_multihop").set("wall_ms", 90.0);
  new_jobs.push(std::move(renamed));
  Json added = Json::object();
  added.set("name", "brand_new_job").set("wall_ms", 9999.0);
  new_jobs.push(std::move(added));
  Json new_doc = Json::object();
  new_doc.set("schema", "ihc-bench-v1").set("jobs", std::move(new_jobs));

  const BenchDiff diff = diff_bench_reports(old_doc, new_doc, 1.25);
  EXPECT_FALSE(diff.any_regression());
  ASSERT_EQ(diff.deltas.size(), 3u);
  // Old order first (matched, then old-only), then new-only.
  EXPECT_EQ(diff.deltas[0].name, "events_q6_multihop");
  EXPECT_EQ(diff.deltas[1].name, "flit_wormhole_h5");
  EXPECT_FALSE(diff.deltas[1].in_new);
  EXPECT_EQ(diff.deltas[2].name, "brand_new_job");
  EXPECT_FALSE(diff.deltas[2].in_old);
  std::ostringstream out;
  diff.print(out);
  EXPECT_NE(out.str().find("old only"), std::string::npos);
  EXPECT_NE(out.str().find("new only"), std::string::npos);
}

TEST(BenchDiff, HwThreadsMismatchIsSurfacedAsCaveat) {
  const Json old_doc = bench_doc(100.0, 50.0, 1);
  const Json new_doc = bench_doc(100.0, 50.0, 8);
  const BenchDiff diff = diff_bench_reports(old_doc, new_doc, 1.25);
  EXPECT_FALSE(diff.any_regression());
  std::ostringstream out;
  diff.print(out);
  EXPECT_NE(out.str().find("hw_threads differ"), std::string::npos);
}

TEST(BenchDiff, ParserRejectsMalformedDocuments) {
  EXPECT_THROW((void)parse_bench_report("not json", "x"), ConfigError);
  EXPECT_THROW((void)parse_bench_report("[1, 2]", "x"), ConfigError);
  EXPECT_THROW((void)parse_bench_report(R"({"schema": "other-v1"})", "x"),
               ConfigError);
  EXPECT_THROW(
      (void)parse_bench_report(R"({"schema": "ihc-bench-v1"})", "x"),
      ConfigError);
  EXPECT_THROW((void)parse_bench_report(
                   R"({"schema": "ihc-bench-v1", "jobs": [{}]})", "x"),
               ConfigError);
  const Json ok = parse_bench_report(bench_doc(1.0, 2.0).dump(), "x");
  EXPECT_EQ(ok.find("schema")->as_string(), "ihc-bench-v1");
}

}  // namespace
}  // namespace ihc::exp
