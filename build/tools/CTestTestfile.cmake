# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_info "/root/repo/build/tools/ihc_cli" "info" "SQ5")
set_tests_properties(cli_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_ihc "/root/repo/build/tools/ihc_cli" "run" "Q4" "--eta" "2")
set_tests_properties(cli_run_ihc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_hex_auto_eta "/root/repo/build/tools/ihc_cli" "run" "H3")
set_tests_properties(cli_run_hex_auto_eta PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_frs "/root/repo/build/tools/ihc_cli" "run" "Q4" "--algo" "frs")
set_tests_properties(cli_run_frs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_saf "/root/repo/build/tools/ihc_cli" "run" "Q4" "--switching" "saf")
set_tests_properties(cli_run_saf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_decompose_verify "sh" "-c" "/root/repo/build/tools/ihc_cli decompose T4x5 --out cli_t.hc                         && /root/repo/build/tools/ihc_cli verify cli_t.hc T4x5                         && rm cli_t.hc")
set_tests_properties(cli_decompose_verify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_spec "/root/repo/build/tools/ihc_cli" "info" "NOPE7")
set_tests_properties(cli_bad_spec PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
