# Empty dependencies file for ihc_cli.
# This may be replaced when dependencies are built.
