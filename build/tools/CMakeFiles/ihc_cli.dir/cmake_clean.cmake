file(REMOVE_RECURSE
  "CMakeFiles/ihc_cli.dir/ihc_cli.cpp.o"
  "CMakeFiles/ihc_cli.dir/ihc_cli.cpp.o.d"
  "ihc_cli"
  "ihc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ihc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
