# Empty dependencies file for bench_fig6_interleaving.
# This may be replaced when dependencies are built.
