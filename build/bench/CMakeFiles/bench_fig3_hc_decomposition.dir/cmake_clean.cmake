file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_hc_decomposition.dir/bench_fig3_hc_decomposition.cpp.o"
  "CMakeFiles/bench_fig3_hc_decomposition.dir/bench_fig3_hc_decomposition.cpp.o.d"
  "bench_fig3_hc_decomposition"
  "bench_fig3_hc_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_hc_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
