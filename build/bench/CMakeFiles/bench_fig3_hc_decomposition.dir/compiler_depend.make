# Empty compiler generated dependencies file for bench_fig3_hc_decomposition.
# This may be replaced when dependencies are built.
