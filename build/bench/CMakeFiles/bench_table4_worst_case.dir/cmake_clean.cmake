file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_worst_case.dir/bench_table4_worst_case.cpp.o"
  "CMakeFiles/bench_table4_worst_case.dir/bench_table4_worst_case.cpp.o.d"
  "bench_table4_worst_case"
  "bench_table4_worst_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_worst_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
