# Empty compiler generated dependencies file for bench_wormhole_deadlock.
# This may be replaced when dependencies are built.
