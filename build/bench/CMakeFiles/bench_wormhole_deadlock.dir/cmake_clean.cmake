file(REMOVE_RECURSE
  "CMakeFiles/bench_wormhole_deadlock.dir/bench_wormhole_deadlock.cpp.o"
  "CMakeFiles/bench_wormhole_deadlock.dir/bench_wormhole_deadlock.cpp.o.d"
  "bench_wormhole_deadlock"
  "bench_wormhole_deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wormhole_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
