# Empty compiler generated dependencies file for bench_table1_rs_pattern.
# This may be replaced when dependencies are built.
