file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_rs_pattern.dir/bench_table1_rs_pattern.cpp.o"
  "CMakeFiles/bench_table1_rs_pattern.dir/bench_table1_rs_pattern.cpp.o.d"
  "bench_table1_rs_pattern"
  "bench_table1_rs_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_rs_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
