# Empty dependencies file for bench_table3_headline.
# This may be replaced when dependencies are built.
