file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_headline.dir/bench_table3_headline.cpp.o"
  "CMakeFiles/bench_table3_headline.dir/bench_table3_headline.cpp.o.d"
  "bench_table3_headline"
  "bench_table3_headline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
