file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_dedicated.dir/bench_table2_dedicated.cpp.o"
  "CMakeFiles/bench_table2_dedicated.dir/bench_table2_dedicated.cpp.o.d"
  "bench_table2_dedicated"
  "bench_table2_dedicated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_dedicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
