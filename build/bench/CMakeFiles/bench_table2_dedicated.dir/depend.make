# Empty dependencies file for bench_table2_dedicated.
# This may be replaced when dependencies are built.
