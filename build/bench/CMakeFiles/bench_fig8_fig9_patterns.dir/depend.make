# Empty dependencies file for bench_fig8_fig9_patterns.
# This may be replaced when dependencies are built.
