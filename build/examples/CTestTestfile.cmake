# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_clock_sync "/root/repo/build/examples/clock_sync")
set_tests_properties(example_clock_sync PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed_diagnosis "/root/repo/build/examples/distributed_diagnosis")
set_tests_properties(example_distributed_diagnosis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_byzantine_agreement "/root/repo/build/examples/byzantine_agreement")
set_tests_properties(example_byzantine_agreement PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_network "/root/repo/build/examples/custom_network")
set_tests_properties(example_custom_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;0;")
