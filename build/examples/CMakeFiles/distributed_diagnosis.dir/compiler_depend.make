# Empty compiler generated dependencies file for distributed_diagnosis.
# This may be replaced when dependencies are built.
