file(REMOVE_RECURSE
  "CMakeFiles/distributed_diagnosis.dir/distributed_diagnosis.cpp.o"
  "CMakeFiles/distributed_diagnosis.dir/distributed_diagnosis.cpp.o.d"
  "distributed_diagnosis"
  "distributed_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
