
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agreement.cpp" "src/CMakeFiles/ihc.dir/core/agreement.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/core/agreement.cpp.o.d"
  "/root/repo/src/core/analysis.cpp" "src/CMakeFiles/ihc.dir/core/analysis.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/core/analysis.cpp.o.d"
  "/root/repo/src/core/clock_sync.cpp" "src/CMakeFiles/ihc.dir/core/clock_sync.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/core/clock_sync.cpp.o.d"
  "/root/repo/src/core/diagnosis.cpp" "src/CMakeFiles/ihc.dir/core/diagnosis.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/core/diagnosis.cpp.o.d"
  "/root/repo/src/core/frs.cpp" "src/CMakeFiles/ihc.dir/core/frs.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/core/frs.cpp.o.d"
  "/root/repo/src/core/hc_broadcast.cpp" "src/CMakeFiles/ihc.dir/core/hc_broadcast.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/core/hc_broadcast.cpp.o.d"
  "/root/repo/src/core/ihc.cpp" "src/CMakeFiles/ihc.dir/core/ihc.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/core/ihc.cpp.o.d"
  "/root/repo/src/core/ks.cpp" "src/CMakeFiles/ihc.dir/core/ks.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/core/ks.cpp.o.d"
  "/root/repo/src/core/latency.cpp" "src/CMakeFiles/ihc.dir/core/latency.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/core/latency.cpp.o.d"
  "/root/repo/src/core/reassembly.cpp" "src/CMakeFiles/ihc.dir/core/reassembly.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/core/reassembly.cpp.o.d"
  "/root/repo/src/core/retransmit.cpp" "src/CMakeFiles/ihc.dir/core/retransmit.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/core/retransmit.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/CMakeFiles/ihc.dir/core/runner.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/core/runner.cpp.o.d"
  "/root/repo/src/core/service.cpp" "src/CMakeFiles/ihc.dir/core/service.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/core/service.cpp.o.d"
  "/root/repo/src/core/verify.cpp" "src/CMakeFiles/ihc.dir/core/verify.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/core/verify.cpp.o.d"
  "/root/repo/src/core/vrs.cpp" "src/CMakeFiles/ihc.dir/core/vrs.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/core/vrs.cpp.o.d"
  "/root/repo/src/core/vsq.cpp" "src/CMakeFiles/ihc.dir/core/vsq.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/core/vsq.cpp.o.d"
  "/root/repo/src/graph/connectivity.cpp" "src/CMakeFiles/ihc.dir/graph/connectivity.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/graph/connectivity.cpp.o.d"
  "/root/repo/src/graph/cycle.cpp" "src/CMakeFiles/ihc.dir/graph/cycle.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/graph/cycle.cpp.o.d"
  "/root/repo/src/graph/decomposer.cpp" "src/CMakeFiles/ihc.dir/graph/decomposer.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/graph/decomposer.cpp.o.d"
  "/root/repo/src/graph/export_dot.cpp" "src/CMakeFiles/ihc.dir/graph/export_dot.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/graph/export_dot.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/ihc.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/hamiltonian.cpp" "src/CMakeFiles/ihc.dir/graph/hamiltonian.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/graph/hamiltonian.cpp.o.d"
  "/root/repo/src/graph/hc_cache.cpp" "src/CMakeFiles/ihc.dir/graph/hc_cache.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/graph/hc_cache.cpp.o.d"
  "/root/repo/src/graph/hc_product.cpp" "src/CMakeFiles/ihc.dir/graph/hc_product.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/graph/hc_product.cpp.o.d"
  "/root/repo/src/graph/lemma2.cpp" "src/CMakeFiles/ihc.dir/graph/lemma2.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/graph/lemma2.cpp.o.d"
  "/root/repo/src/graph/torus_decomposition.cpp" "src/CMakeFiles/ihc.dir/graph/torus_decomposition.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/graph/torus_decomposition.cpp.o.d"
  "/root/repo/src/graph/two_factor.cpp" "src/CMakeFiles/ihc.dir/graph/two_factor.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/graph/two_factor.cpp.o.d"
  "/root/repo/src/sched/analytics.cpp" "src/CMakeFiles/ihc.dir/sched/analytics.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/sched/analytics.cpp.o.d"
  "/root/repo/src/sched/ihc_schedule.cpp" "src/CMakeFiles/ihc.dir/sched/ihc_schedule.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/sched/ihc_schedule.cpp.o.d"
  "/root/repo/src/sched/rs_schedule.cpp" "src/CMakeFiles/ihc.dir/sched/rs_schedule.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/sched/rs_schedule.cpp.o.d"
  "/root/repo/src/sched/step_schedule.cpp" "src/CMakeFiles/ihc.dir/sched/step_schedule.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/sched/step_schedule.cpp.o.d"
  "/root/repo/src/sim/deadlock.cpp" "src/CMakeFiles/ihc.dir/sim/deadlock.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/sim/deadlock.cpp.o.d"
  "/root/repo/src/sim/delivery.cpp" "src/CMakeFiles/ihc.dir/sim/delivery.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/sim/delivery.cpp.o.d"
  "/root/repo/src/sim/fault.cpp" "src/CMakeFiles/ihc.dir/sim/fault.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/sim/fault.cpp.o.d"
  "/root/repo/src/sim/flit_network.cpp" "src/CMakeFiles/ihc.dir/sim/flit_network.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/sim/flit_network.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/ihc.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/packet_format.cpp" "src/CMakeFiles/ihc.dir/sim/packet_format.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/sim/packet_format.cpp.o.d"
  "/root/repo/src/sim/params.cpp" "src/CMakeFiles/ihc.dir/sim/params.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/sim/params.cpp.o.d"
  "/root/repo/src/sim/routing.cpp" "src/CMakeFiles/ihc.dir/sim/routing.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/sim/routing.cpp.o.d"
  "/root/repo/src/sim/signature.cpp" "src/CMakeFiles/ihc.dir/sim/signature.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/sim/signature.cpp.o.d"
  "/root/repo/src/topology/circulant.cpp" "src/CMakeFiles/ihc.dir/topology/circulant.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/topology/circulant.cpp.o.d"
  "/root/repo/src/topology/custom.cpp" "src/CMakeFiles/ihc.dir/topology/custom.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/topology/custom.cpp.o.d"
  "/root/repo/src/topology/factory.cpp" "src/CMakeFiles/ihc.dir/topology/factory.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/topology/factory.cpp.o.d"
  "/root/repo/src/topology/hex_mesh.cpp" "src/CMakeFiles/ihc.dir/topology/hex_mesh.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/topology/hex_mesh.cpp.o.d"
  "/root/repo/src/topology/hypercube.cpp" "src/CMakeFiles/ihc.dir/topology/hypercube.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/topology/hypercube.cpp.o.d"
  "/root/repo/src/topology/lambda.cpp" "src/CMakeFiles/ihc.dir/topology/lambda.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/topology/lambda.cpp.o.d"
  "/root/repo/src/topology/product.cpp" "src/CMakeFiles/ihc.dir/topology/product.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/topology/product.cpp.o.d"
  "/root/repo/src/topology/square_mesh.cpp" "src/CMakeFiles/ihc.dir/topology/square_mesh.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/topology/square_mesh.cpp.o.d"
  "/root/repo/src/topology/topology.cpp" "src/CMakeFiles/ihc.dir/topology/topology.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/topology/topology.cpp.o.d"
  "/root/repo/src/util/error.cpp" "src/CMakeFiles/ihc.dir/util/error.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/util/error.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/ihc.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/ihc.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/ihc.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
