# Empty dependencies file for ihc.
# This may be replaced when dependencies are built.
