file(REMOVE_RECURSE
  "libihc.a"
)
