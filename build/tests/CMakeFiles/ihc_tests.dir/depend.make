# Empty dependencies file for ihc_tests.
# This may be replaced when dependencies are built.
