
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_agreement.cpp" "tests/CMakeFiles/ihc_tests.dir/test_agreement.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_agreement.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/ihc_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_applications.cpp" "tests/CMakeFiles/ihc_tests.dir/test_applications.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_applications.cpp.o.d"
  "/root/repo/tests/test_circulant.cpp" "tests/CMakeFiles/ihc_tests.dir/test_circulant.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_circulant.cpp.o.d"
  "/root/repo/tests/test_connectivity.cpp" "tests/CMakeFiles/ihc_tests.dir/test_connectivity.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_connectivity.cpp.o.d"
  "/root/repo/tests/test_custom_export.cpp" "tests/CMakeFiles/ihc_tests.dir/test_custom_export.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_custom_export.cpp.o.d"
  "/root/repo/tests/test_cycle.cpp" "tests/CMakeFiles/ihc_tests.dir/test_cycle.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_cycle.cpp.o.d"
  "/root/repo/tests/test_deadlock.cpp" "tests/CMakeFiles/ihc_tests.dir/test_deadlock.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_deadlock.cpp.o.d"
  "/root/repo/tests/test_decomposer.cpp" "tests/CMakeFiles/ihc_tests.dir/test_decomposer.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_decomposer.cpp.o.d"
  "/root/repo/tests/test_determinism.cpp" "tests/CMakeFiles/ihc_tests.dir/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_determinism.cpp.o.d"
  "/root/repo/tests/test_factory.cpp" "tests/CMakeFiles/ihc_tests.dir/test_factory.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_factory.cpp.o.d"
  "/root/repo/tests/test_faults.cpp" "tests/CMakeFiles/ihc_tests.dir/test_faults.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_faults.cpp.o.d"
  "/root/repo/tests/test_flit_network.cpp" "tests/CMakeFiles/ihc_tests.dir/test_flit_network.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_flit_network.cpp.o.d"
  "/root/repo/tests/test_frs.cpp" "tests/CMakeFiles/ihc_tests.dir/test_frs.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_frs.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/ihc_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/ihc_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_hex_geometry.cpp" "tests/CMakeFiles/ihc_tests.dir/test_hex_geometry.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_hex_geometry.cpp.o.d"
  "/root/repo/tests/test_hex_mesh.cpp" "tests/CMakeFiles/ihc_tests.dir/test_hex_mesh.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_hex_mesh.cpp.o.d"
  "/root/repo/tests/test_hypercube.cpp" "tests/CMakeFiles/ihc_tests.dir/test_hypercube.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_hypercube.cpp.o.d"
  "/root/repo/tests/test_ihc_run.cpp" "tests/CMakeFiles/ihc_tests.dir/test_ihc_run.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_ihc_run.cpp.o.d"
  "/root/repo/tests/test_ihc_schedule.cpp" "tests/CMakeFiles/ihc_tests.dir/test_ihc_schedule.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_ihc_schedule.cpp.o.d"
  "/root/repo/tests/test_ihc_variants.cpp" "tests/CMakeFiles/ihc_tests.dir/test_ihc_variants.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_ihc_variants.cpp.o.d"
  "/root/repo/tests/test_ks.cpp" "tests/CMakeFiles/ihc_tests.dir/test_ks.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_ks.cpp.o.d"
  "/root/repo/tests/test_lambda.cpp" "tests/CMakeFiles/ihc_tests.dir/test_lambda.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_lambda.cpp.o.d"
  "/root/repo/tests/test_latency.cpp" "tests/CMakeFiles/ihc_tests.dir/test_latency.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_latency.cpp.o.d"
  "/root/repo/tests/test_link_faults.cpp" "tests/CMakeFiles/ihc_tests.dir/test_link_faults.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_link_faults.cpp.o.d"
  "/root/repo/tests/test_packet_format.cpp" "tests/CMakeFiles/ihc_tests.dir/test_packet_format.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_packet_format.cpp.o.d"
  "/root/repo/tests/test_product.cpp" "tests/CMakeFiles/ihc_tests.dir/test_product.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_product.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/ihc_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_retransmit.cpp" "tests/CMakeFiles/ihc_tests.dir/test_retransmit.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_retransmit.cpp.o.d"
  "/root/repo/tests/test_routing.cpp" "tests/CMakeFiles/ihc_tests.dir/test_routing.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_routing.cpp.o.d"
  "/root/repo/tests/test_rs_schedule.cpp" "tests/CMakeFiles/ihc_tests.dir/test_rs_schedule.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_rs_schedule.cpp.o.d"
  "/root/repo/tests/test_safety_sweep.cpp" "tests/CMakeFiles/ihc_tests.dir/test_safety_sweep.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_safety_sweep.cpp.o.d"
  "/root/repo/tests/test_sched_analytics.cpp" "tests/CMakeFiles/ihc_tests.dir/test_sched_analytics.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_sched_analytics.cpp.o.d"
  "/root/repo/tests/test_service.cpp" "tests/CMakeFiles/ihc_tests.dir/test_service.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_service.cpp.o.d"
  "/root/repo/tests/test_signature.cpp" "tests/CMakeFiles/ihc_tests.dir/test_signature.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_signature.cpp.o.d"
  "/root/repo/tests/test_sim_network.cpp" "tests/CMakeFiles/ihc_tests.dir/test_sim_network.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_sim_network.cpp.o.d"
  "/root/repo/tests/test_square_mesh.cpp" "tests/CMakeFiles/ihc_tests.dir/test_square_mesh.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_square_mesh.cpp.o.d"
  "/root/repo/tests/test_stage_barrier.cpp" "tests/CMakeFiles/ihc_tests.dir/test_stage_barrier.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_stage_barrier.cpp.o.d"
  "/root/repo/tests/test_step_schedule.cpp" "tests/CMakeFiles/ihc_tests.dir/test_step_schedule.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_step_schedule.cpp.o.d"
  "/root/repo/tests/test_two_factor.cpp" "tests/CMakeFiles/ihc_tests.dir/test_two_factor.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_two_factor.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/ihc_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_verify.cpp" "tests/CMakeFiles/ihc_tests.dir/test_verify.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_verify.cpp.o.d"
  "/root/repo/tests/test_vrs.cpp" "tests/CMakeFiles/ihc_tests.dir/test_vrs.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_vrs.cpp.o.d"
  "/root/repo/tests/test_vsq.cpp" "tests/CMakeFiles/ihc_tests.dir/test_vsq.cpp.o" "gcc" "tests/CMakeFiles/ihc_tests.dir/test_vsq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ihc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
