/// \file stats.hpp
/// \brief Streaming summary statistics (Welford) used by benches and the
/// simulator's per-link utilization accounting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ihc {

/// Single-pass mean / variance / min / max accumulator.
class Summary {
 public:
  void add(double x);

  /// Folds another accumulator into this one (Chan et al. pairwise
  /// combination), as if every sample of `other` had been add()ed here.
  /// Lets per-shard statistics from parallel trial runs merge into one
  /// campaign-level Summary without a second pass over the data.
  void merge(const Summary& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double total() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Nearest-rank quantile of a sample, q in [0, 1].  Sorts a copy; returns
/// quiet NaN for an empty sample - a defined sentinel distinguishable
/// from any real observation (a 0.0 return would be indistinguishable
/// from a genuine zero-valued sample).  Serializers render NaN as JSON
/// null (json_number), so an empty histogram can never masquerade as a
/// measured zero.
[[nodiscard]] double quantile(std::vector<double> values, double q);

/// The latency percentiles the workload engine reports (p50/p95/p99/
/// p999), extracted from one sorted pass instead of four quantile()
/// calls.  All fields are quiet NaN for an empty sample.
struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

[[nodiscard]] Percentiles percentiles(std::vector<double> values);

}  // namespace ihc
