/// \file stats.hpp
/// \brief Streaming summary statistics (Welford) used by benches and the
/// simulator's per-link utilization accounting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ihc {

/// Single-pass mean / variance / min / max accumulator.
class Summary {
 public:
  void add(double x);

  /// Folds another accumulator into this one (Chan et al. pairwise
  /// combination), as if every sample of `other` had been add()ed here.
  /// Lets per-shard statistics from parallel trial runs merge into one
  /// campaign-level Summary without a second pass over the data.
  void merge(const Summary& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double total() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Nearest-rank quantile of a sample, q in [0, 1].  Sorts a copy; returns
/// 0 for an empty sample (matching Summary's empty-state convention).
[[nodiscard]] double quantile(std::vector<double> values, double q);

}  // namespace ihc
