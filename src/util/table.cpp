#include "util/table.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace ihc {

void AsciiTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void AsciiTable::add_row(std::vector<std::string> row) {
  IHC_ENSURE(header_.empty() || row.size() == header_.size(),
             "row width must match header width");
  rows_.push_back(std::move(row));
}

void AsciiTable::add_separator() { separators_.push_back(rows_.size()); }

std::string AsciiTable::render() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  std::string out;
  auto rule = [&] {
    out.push_back('+');
    for (std::size_t c = 0; c < cols; ++c) {
      out.append(width[c] + 2, '-');
      out.push_back('+');
    }
    out.push_back('\n');
  };
  auto emit = [&](const std::vector<std::string>& r) {
    out.push_back('|');
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      out.push_back(' ');
      out.append(cell);
      out.append(width[c] - cell.size() + 1, ' ');
      out.push_back('|');
    }
    out.push_back('\n');
  };

  if (!title_.empty()) {
    out.append(title_);
    out.push_back('\n');
  }
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (std::find(separators_.begin(), separators_.end(), i) !=
        separators_.end())
      rule();
    emit(rows_[i]);
  }
  rule();
  return out;
}

void AsciiTable::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_time_ps(std::int64_t ps) {
  char buf[64];
  const double v = static_cast<double>(ps);
  if (ps < 10'000) {
    std::snprintf(buf, sizeof buf, "%" PRId64 " ps", ps);
  } else if (ps < 10'000'000) {
    std::snprintf(buf, sizeof buf, "%.3f ns", v / 1e3);
  } else if (ps < 10'000'000'000LL) {
    std::snprintf(buf, sizeof buf, "%.3f us", v / 1e6);
  } else if (ps < 10'000'000'000'000LL) {
    std::snprintf(buf, sizeof buf, "%.3f ms", v / 1e9);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", v / 1e12);
  }
  return buf;
}

std::string fmt_ratio(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2fx", v);
  return buf;
}

}  // namespace ihc
