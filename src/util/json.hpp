/// \file json.hpp
/// \brief Minimal JSON document builder for machine-readable reports.
///
/// The experiment engine emits campaign results as JSON so the perf
/// trajectory can be tracked by tooling instead of scraped from ASCII
/// tables.  The builder is a small ordered tree (object keys keep
/// insertion order) with a deterministic serializer: doubles print via
/// std::to_chars shortest round-trip, so two runs that produce the same
/// values produce byte-identical documents - the property the engine's
/// determinism tests compare.  A small recursive-descent parser
/// (Json::parse) covers the read side for the trace-analysis engine,
/// which loads ChromeTraceSink documents back from disk.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ihc {

/// One JSON value: null, bool, number, string, array or object.
class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(std::nullptr_t) : kind_(Kind::kNull) {}  // NOLINT(runtime/explicit)
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double v) : kind_(Kind::kDouble), double_(v) {}
  Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  Json(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Json(std::string_view s) : kind_(Kind::kString), string_(s) {}
  Json(const char* s) : kind_(Kind::kString), string_(s) {}

  [[nodiscard]] static Json object();
  [[nodiscard]] static Json array();

  /// Appends a key/value pair (object only).  Returns *this for chaining.
  Json& set(std::string key, Json value);

  /// Appends an element (array only).  Returns *this for chaining.
  Json& push(Json value);

  /// Serializes the document.  indent <= 0 yields a single line.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Parses a JSON document.  On failure returns nullopt and, when
  /// `error` is non-null, stores a one-line diagnostic with the byte
  /// offset of the problem.  Numbers without '.', 'e' or 'E' parse as
  /// integers (kInt / kUint), everything else as kDouble.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text,
                                                 std::string* error = nullptr);

  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kDouble;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Array elements (array only).
  [[nodiscard]] const std::vector<Json>& items() const;

  /// String payload (string only).
  [[nodiscard]] std::string_view as_string() const;

  /// Numeric payload widened to double (number only).
  [[nodiscard]] double as_double() const;

  /// Numeric payload as integer; doubles are rounded to nearest.
  [[nodiscard]] std::int64_t as_int() const;

  [[nodiscard]] bool as_bool() const;

 private:
  enum class Kind : std::uint8_t {
    kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject
  };

  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                              // array
  std::vector<std::pair<std::string, Json>> members_;    // object
};

/// Escapes a string for inclusion in a JSON document (no quotes added).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Shortest round-trip decimal form of a double (to_chars); "null" for
/// non-finite values, which JSON cannot represent.
[[nodiscard]] std::string json_number(double v);

}  // namespace ihc
