/// \file json.hpp
/// \brief Minimal JSON document builder for machine-readable reports.
///
/// The experiment engine emits campaign results as JSON so the perf
/// trajectory can be tracked by tooling instead of scraped from ASCII
/// tables.  The builder is a small ordered tree (object keys keep
/// insertion order) with a deterministic serializer: doubles print via
/// std::to_chars shortest round-trip, so two runs that produce the same
/// values produce byte-identical documents - the property the engine's
/// determinism tests compare.  No parser is provided; this is write-only.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ihc {

/// One JSON value: null, bool, number, string, array or object.
class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(std::nullptr_t) : kind_(Kind::kNull) {}  // NOLINT(runtime/explicit)
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double v) : kind_(Kind::kDouble), double_(v) {}
  Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  Json(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Json(std::string_view s) : kind_(Kind::kString), string_(s) {}
  Json(const char* s) : kind_(Kind::kString), string_(s) {}

  [[nodiscard]] static Json object();
  [[nodiscard]] static Json array();

  /// Appends a key/value pair (object only).  Returns *this for chaining.
  Json& set(std::string key, Json value);

  /// Appends an element (array only).  Returns *this for chaining.
  Json& push(Json value);

  /// Serializes the document.  indent <= 0 yields a single line.
  [[nodiscard]] std::string dump(int indent = 2) const;

 private:
  enum class Kind : std::uint8_t {
    kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject
  };

  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                              // array
  std::vector<std::pair<std::string, Json>> members_;    // object
};

/// Escapes a string for inclusion in a JSON document (no quotes added).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Shortest round-trip decimal form of a double (to_chars); "null" for
/// non-finite values, which JSON cannot represent.
[[nodiscard]] std::string json_number(double v);

}  // namespace ihc
