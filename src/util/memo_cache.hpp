/// \file memo_cache.hpp
/// \brief Shared thread-safe memoization utility.
///
/// Several construction paths memoize expensive, deterministic results in
/// process-wide tables: the hypercube decomposition memo ("only needs to
/// be done once for a given size hypercube", Section III-A) and the
/// Hamiltonian-decomposition search memo of the topology zoo.  Before this
/// utility each site carried its own ad-hoc `static std::mutex` guard;
/// MemoCache centralizes the pattern so every memo is thread-safe by
/// construction (experiment trials build topologies from worker threads
/// concurrently - asserted under -DIHC_SANITIZE=thread).
///
/// The mutex is recursive because compute functions may re-enter the same
/// cache for sub-problems (the hypercube decomposition of Q_m recurses
/// into Q_a and Q_b).  Re-entrant lookups therefore serialize with their
/// parent computation instead of deadlocking; the whole recursive
/// construction runs under one logical critical section, exactly like the
/// hand-rolled guard it replaces.
#pragma once

#include <map>
#include <mutex>
#include <utility>

namespace ihc {

template <typename Key, typename Value>
class MemoCache {
 public:
  /// Returns the cached value for `key`, computing it with `fn()` (under
  /// the cache lock) and storing it on first use.  `fn` may recursively
  /// call back into the same cache.
  template <typename Fn>
  Value get_or_compute(const Key& key, Fn&& fn) {
    const std::lock_guard<std::recursive_mutex> lock(mu_);
    if (auto it = map_.find(key); it != map_.end()) return it->second;
    Value value = std::forward<Fn>(fn)();
    map_.emplace(key, value);
    return value;
  }

  /// Number of memoized entries (for tests).
  [[nodiscard]] std::size_t size() {
    const std::lock_guard<std::recursive_mutex> lock(mu_);
    return map_.size();
  }

 private:
  std::recursive_mutex mu_;
  std::map<Key, Value> map_;
};

}  // namespace ihc
