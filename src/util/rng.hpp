/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation.
///
/// All stochastic components of the library (background traffic, fault
/// placement, decomposition local search) draw from SplitMix64 so that every
/// experiment is reproducible from a single 64-bit seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string_view>

#include "util/error.hpp"

namespace ihc {

/// SplitMix64: tiny, fast, high-quality 64-bit generator (Steele et al.).
/// Satisfies std::uniform_random_bit_generator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t below(std::uint64_t bound) {
    IHC_ENSURE(bound > 0, "bound must be positive");
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed variate with the given mean (> 0).
  double exponential(double mean) {
    IHC_ENSURE(mean > 0.0, "mean must be positive");
    double u = uniform();
    // uniform() can return exactly 0; nudge into (0,1) to keep log finite.
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Derives an independent stream for a subcomponent.
  [[nodiscard]] SplitMix64 fork(std::uint64_t stream_id) {
    return SplitMix64((*this)() ^ (0xd1342543de82ef95ULL * (stream_id + 1)));
  }

 private:
  std::uint64_t state_;
};

/// Natural logarithm computed without libm: frexp plus the atanh series
/// ln m = 2 * sum t^(2k+1) / (2k+1) with t = (m-1)/(m+1), m in [0.5, 1).
/// libm's std::log is correctly rounded on some platforms and off by an
/// ulp on others, which would leak into the workload engine's arrival
/// streams and break cross-platform golden tests; this expansion uses
/// only +, *, / on exactly representable intermediate values, written as
/// separate statements so no a*b+c shape invites FMA contraction.
/// Accurate to a few ulps over (0, inf); requires x > 0 and finite.
[[nodiscard]] inline double portable_log(double x) {
  IHC_ENSURE(x > 0.0 && x < std::numeric_limits<double>::infinity(),
             "portable_log needs a positive finite argument");
  int exp2 = 0;
  const double m = std::frexp(x, &exp2);  // x = m * 2^exp2, m in [0.5, 1)
  const double t = (m - 1.0) / (m + 1.0);
  const double t2 = t * t;  // |t| <= 1/3, so terms shrink 9x per step
  double term = t;
  double sum = t;
  for (int k = 3; k <= 41; k += 2) {
    term *= t2;
    const double contribution = term / static_cast<double>(k);
    sum += contribution;
  }
  // ln 2 split into an exact high part and a correction so the e*ln2
  // product stays faithfully rounded for every exponent.
  constexpr double kLn2Hi = 0x1.62e42fefa39efp-1;
  constexpr double kLn2Lo = 0x1.abc9e3b39803fp-56;
  const double e = static_cast<double>(exp2);
  double result = e * kLn2Hi;
  result += e * kLn2Lo;
  const double ln_m = 2.0 * sum;
  result += ln_m;
  return result;
}

/// Exponentially distributed inter-arrival gap with the given mean,
/// rounded to integer picoseconds (>= 1).  Built on portable_log so one
/// seed reproduces the identical arrival stream on every platform - the
/// workload engine's sweeps are golden-tested on exact integer values.
[[nodiscard]] inline std::int64_t exponential_gap_ps(SplitMix64& rng,
                                                     std::int64_t mean_ps) {
  IHC_ENSURE(mean_ps > 0, "mean gap must be positive");
  double u = rng.uniform();
  if (u <= 0.0) u = 0x1.0p-53;  // keep log finite
  const double gap = -static_cast<double>(mean_ps) * portable_log(u);
  const auto rounded = static_cast<std::int64_t>(gap + 0.5);
  return rounded < 1 ? 1 : rounded;
}

/// Markov-modulated Poisson process with two states (bursty arrivals):
/// gaps are exponential with the current state's mean, and the process
/// flips state after an exponential dwell time.  Crossing a dwell
/// boundary discards the in-progress gap and redraws at the new rate -
/// exact by the memorylessness of the exponential, not an approximation.
/// Deterministic and platform-stable for a given seed (exponential_gap_ps
/// throughout), so MMPP arrival streams are golden-testable too.
class MmppGaps {
 public:
  /// Starts in the fast (burst) state with a freshly drawn dwell.
  MmppGaps(SplitMix64 rng, std::int64_t fast_mean_ps,
           std::int64_t slow_mean_ps, std::int64_t dwell_mean_ps)
      : rng_(rng),
        fast_mean_ps_(fast_mean_ps),
        slow_mean_ps_(slow_mean_ps),
        dwell_mean_ps_(dwell_mean_ps) {
    IHC_ENSURE(fast_mean_ps > 0 && slow_mean_ps > 0 && dwell_mean_ps > 0,
               "MMPP means must be positive");
    dwell_left_ps_ = exponential_gap_ps(rng_, dwell_mean_ps_);
  }

  /// Next inter-arrival gap in picoseconds (>= 1).
  [[nodiscard]] std::int64_t next() {
    std::int64_t waited = 0;
    for (;;) {
      const std::int64_t mean = fast_ ? fast_mean_ps_ : slow_mean_ps_;
      const std::int64_t gap = exponential_gap_ps(rng_, mean);
      if (gap <= dwell_left_ps_) {
        dwell_left_ps_ -= gap;
        return waited + gap;
      }
      waited += dwell_left_ps_;
      fast_ = !fast_;
      dwell_left_ps_ = exponential_gap_ps(rng_, dwell_mean_ps_);
    }
  }

  [[nodiscard]] bool in_burst() const { return fast_; }

 private:
  SplitMix64 rng_;
  std::int64_t fast_mean_ps_;
  std::int64_t slow_mean_ps_;
  std::int64_t dwell_mean_ps_;
  std::int64_t dwell_left_ps_ = 0;
  bool fast_ = true;
};

/// FNV-1a 64-bit hash of a byte string.  Stable across platforms, runs and
/// compilers - experiment seeds derived from it are part of the repo's
/// reproducibility contract.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// SplitMix64 finalizer: bijective avalanche mix of a 64-bit word.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic seed for one experiment trial, derived from a stable hash
/// of the trial's coordinates - never from wall-clock time or thread
/// scheduling, so an N-thread campaign run reproduces a 1-thread run
/// bit-exactly.  `scope` names the campaign (or tool), `coordinates` the
/// trial within it (e.g. "rho=0.3,rep=2"); `stream` derives independent
/// sub-streams for one trial (background traffic vs. fault placement).
[[nodiscard]] constexpr std::uint64_t derive_seed(std::string_view scope,
                                                  std::string_view coordinates,
                                                  std::uint64_t stream = 0) {
  const std::uint64_t h =
      fnv1a64(scope) ^ (0x9e3779b97f4a7c15ULL * (fnv1a64(coordinates) + 1));
  return mix64(h ^ (0xd1342543de82ef95ULL * (stream + 1)));
}

}  // namespace ihc
