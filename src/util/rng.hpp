/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation.
///
/// All stochastic components of the library (background traffic, fault
/// placement, decomposition local search) draw from SplitMix64 so that every
/// experiment is reproducible from a single 64-bit seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string_view>

#include "util/error.hpp"

namespace ihc {

/// SplitMix64: tiny, fast, high-quality 64-bit generator (Steele et al.).
/// Satisfies std::uniform_random_bit_generator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t below(std::uint64_t bound) {
    IHC_ENSURE(bound > 0, "bound must be positive");
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed variate with the given mean (> 0).
  double exponential(double mean) {
    IHC_ENSURE(mean > 0.0, "mean must be positive");
    double u = uniform();
    // uniform() can return exactly 0; nudge into (0,1) to keep log finite.
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Derives an independent stream for a subcomponent.
  [[nodiscard]] SplitMix64 fork(std::uint64_t stream_id) {
    return SplitMix64((*this)() ^ (0xd1342543de82ef95ULL * (stream_id + 1)));
  }

 private:
  std::uint64_t state_;
};

/// FNV-1a 64-bit hash of a byte string.  Stable across platforms, runs and
/// compilers - experiment seeds derived from it are part of the repo's
/// reproducibility contract.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// SplitMix64 finalizer: bijective avalanche mix of a 64-bit word.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic seed for one experiment trial, derived from a stable hash
/// of the trial's coordinates - never from wall-clock time or thread
/// scheduling, so an N-thread campaign run reproduces a 1-thread run
/// bit-exactly.  `scope` names the campaign (or tool), `coordinates` the
/// trial within it (e.g. "rho=0.3,rep=2"); `stream` derives independent
/// sub-streams for one trial (background traffic vs. fault placement).
[[nodiscard]] constexpr std::uint64_t derive_seed(std::string_view scope,
                                                  std::string_view coordinates,
                                                  std::uint64_t stream = 0) {
  const std::uint64_t h =
      fnv1a64(scope) ^ (0x9e3779b97f4a7c15ULL * (fnv1a64(coordinates) + 1));
  return mix64(h ^ (0xd1342543de82ef95ULL * (stream + 1)));
}

}  // namespace ihc
