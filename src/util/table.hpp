/// \file table.hpp
/// \brief ASCII table rendering for the benchmark harness.
///
/// Every bench binary prints the rows of the paper table it regenerates.
/// This helper keeps the formatting identical across binaries.
#pragma once

#include <string>
#include <vector>

namespace ihc {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class AsciiTable {
 public:
  /// \param title printed above the table (empty to omit).
  explicit AsciiTable(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row. Column count is fixed by the first row added.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match the header's column count if one is set.
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal separator before the next added row.
  void add_separator();

  /// Renders the full table.
  [[nodiscard]] std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // row indices preceded by a rule
};

/// Formats a double with the given precision (fixed notation).
[[nodiscard]] std::string fmt_double(double v, int precision = 3);

/// Formats a time in picoseconds with an auto-selected unit (ns/us/ms/s).
[[nodiscard]] std::string fmt_time_ps(std::int64_t ps);

/// Formats a ratio like "4.96x".
[[nodiscard]] std::string fmt_ratio(double v);

}  // namespace ihc
