/// \file error.hpp
/// \brief Error handling primitives shared by the whole library.
///
/// The library is a research artifact: internal invariant violations are
/// programming errors, so they throw ihc::InvariantError carrying the
/// offending expression and location.  Callers that feed user-controlled
/// parameters (topology sizes, algorithm options) receive ihc::ConfigError
/// instead, so tests can distinguish "bad input" from "broken library".
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace ihc {

/// Thrown when a library-internal invariant is violated.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when caller-supplied configuration is invalid.
class ConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {
[[noreturn]] void throw_invariant(std::string_view expr, std::string_view file,
                                  int line, std::string_view msg);
[[noreturn]] void throw_config(std::string_view msg);
}  // namespace detail

/// Validates a caller-supplied condition; throws ConfigError on failure.
inline void require(bool cond, std::string_view msg) {
  if (!cond) detail::throw_config(msg);
}

}  // namespace ihc

/// Checks an internal invariant; throws ihc::InvariantError on failure.
/// Always enabled (the cost is negligible next to the simulation work).
#define IHC_ENSURE(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) ::ihc::detail::throw_invariant(#cond, __FILE__, __LINE__, \
                                                (msg));                   \
  } while (false)
