#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace ihc {

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json& Json::set(std::string key, Json value) {
  IHC_ENSURE(kind_ == Kind::kObject, "set() requires a JSON object");
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  IHC_ENSURE(kind_ == Kind::kArray, "push() requires a JSON array");
  items_.push_back(std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<Json>& Json::items() const {
  IHC_ENSURE(kind_ == Kind::kArray, "items() requires a JSON array");
  return items_;
}

std::string_view Json::as_string() const {
  IHC_ENSURE(kind_ == Kind::kString, "as_string() requires a JSON string");
  return string_;
}

double Json::as_double() const {
  IHC_ENSURE(is_number(), "as_double() requires a JSON number");
  switch (kind_) {
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kUint: return static_cast<double>(uint_);
    default: return double_;
  }
}

std::int64_t Json::as_int() const {
  IHC_ENSURE(is_number(), "as_int() requires a JSON number");
  switch (kind_) {
    case Kind::kInt: return int_;
    case Kind::kUint: return static_cast<std::int64_t>(uint_);
    default: return std::llround(double_);
  }
}

bool Json::as_bool() const {
  IHC_ENSURE(kind_ == Kind::kBool, "as_bool() requires a JSON bool");
  return bool_;
}

namespace {

/// Recursive-descent JSON parser.  Depth-limited so hostile input cannot
/// blow the stack; \uXXXX escapes outside ASCII are encoded as UTF-8.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run(std::string* error) {
    Json value;
    if (!parse_value(value, 0) || (skip_ws(), pos_ != text_.size())) {
      if (error_.empty()) error_ = "trailing characters";
      if (error != nullptr) {
        *error = error_ + " at offset " + std::to_string(pos_);
      }
      return std::nullopt;
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool fail(const char* what) {
    if (error_.empty()) error_ = what;
    return false;
  }

  bool consume(char expected, const char* what) {
    if (pos_ >= text_.size() || text_[pos_] != expected) return fail(what);
    ++pos_;
    return true;
  }

  bool parse_value(Json& out, int depth) {  // NOLINT(misc-no-recursion)
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Json(std::move(s));
        return true;
      }
      case 't':
        if (text_.substr(pos_, 4) != "true") return fail("bad literal");
        pos_ += 4;
        out = Json(true);
        return true;
      case 'f':
        if (text_.substr(pos_, 5) != "false") return fail("bad literal");
        pos_ += 5;
        out = Json(false);
        return true;
      case 'n':
        if (text_.substr(pos_, 4) != "null") return fail("bad literal");
        pos_ += 4;
        out = Json(nullptr);
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(Json& out, int depth) {  // NOLINT(misc-no-recursion)
    ++pos_;  // '{'
    out = Json::object();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':', "expected ':'")) return false;
      Json value;
      if (!parse_value(value, depth + 1)) return false;
      out.set(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume('}', "expected '}'");
    }
  }

  bool parse_array(Json& out, int depth) {  // NOLINT(misc-no-recursion)
    ++pos_;  // '['
    out = Json::array();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Json value;
      if (!parse_value(value, depth + 1)) return false;
      out.push(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume(']', "expected ']'");
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"', "expected string")) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return fail("expected value");
    const char* first = token.data();
    const char* last = token.data() + token.size();
    if (integral) {
      std::int64_t iv = 0;
      auto [p, ec] = std::from_chars(first, last, iv);
      if (ec == std::errc() && p == last) {
        out = Json(iv);
        return true;
      }
      std::uint64_t uv = 0;
      auto [pu, ecu] = std::from_chars(first, last, uv);
      if (ecu == std::errc() && pu == last) {
        out = Json(uv);
        return true;
      }
    }
    double dv = 0.0;
    auto [pd, ecd] = std::from_chars(first, last, dv);
    if (ecd != std::errc() || pd != last) return fail("bad number");
    out = Json(dv);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  IHC_ENSURE(ec == std::errc(), "double formatting cannot fail");
  return std::string(buf, ptr);
}

namespace {

void write_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) *
                 static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kUint: out += std::to_string(uint_); break;
    case Kind::kDouble: out += json_number(double_); break;
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        write_indent(out, indent, depth + 1);
        items_[i].write(out, indent, depth + 1);
      }
      write_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ',';
        write_indent(out, indent, depth + 1);
        out += '"';
        out += json_escape(members_[i].first);
        out += "\": ";
        members_[i].second.write(out, indent, depth + 1);
      }
      write_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

}  // namespace ihc
