#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace ihc {

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json& Json::set(std::string key, Json value) {
  IHC_ENSURE(kind_ == Kind::kObject, "set() requires a JSON object");
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  IHC_ENSURE(kind_ == Kind::kArray, "push() requires a JSON array");
  items_.push_back(std::move(value));
  return *this;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  IHC_ENSURE(ec == std::errc(), "double formatting cannot fail");
  return std::string(buf, ptr);
}

namespace {

void write_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) *
                 static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kUint: out += std::to_string(uint_); break;
    case Kind::kDouble: out += json_number(double_); break;
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        write_indent(out, indent, depth + 1);
        items_[i].write(out, indent, depth + 1);
      }
      write_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ',';
        write_indent(out, indent, depth + 1);
        out += '"';
        out += json_escape(members_[i].first);
        out += "\": ";
        members_[i].second.write(out, indent, depth + 1);
      }
      write_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

}  // namespace ihc
