/// \file cli_spec.hpp
/// \brief Single source of truth for the ihc_cli subcommand surface.
///
/// The CLI's usage() text, the documentation-drift checks
/// (tests/test_cli_help.cpp and scripts/check_docs.py), and the docs
/// themselves all describe the same subcommand list; keeping it in one
/// constexpr table means adding a subcommand without updating the help
/// or the docs fails CI instead of silently drifting.
#pragma once

#include <cstddef>
#include <string_view>

namespace ihc {

struct CliSubcommand {
  std::string_view name;      ///< dispatch token (argv[1])
  std::string_view synopsis;  ///< one-line invocation form
  std::string_view summary;   ///< one-line description
};

inline constexpr CliSubcommand kCliSubcommands[] = {
    {"info", "info <topology>",
     "topology summary: size, gamma, Hamiltonian cycles, class Lambda"},
    {"run",
     "run <topology> [--algo ihc|hc|vrs|ks|vsq|frs] [--shards <n>] "
     "[--recover[=static|reroot|paths]] [--profile <file>] [options]",
     "run one ATA reliable broadcast and print the results"},
    {"decompose", "decompose <topology> [--out <file>]",
     "construct + verify the Hamiltonian decomposition (ihc-hc-v1)"},
    {"verify", "verify <file> <topology>",
     "check a saved decomposition against a topology"},
    {"topology",
     "topology (--list | --check [<spec>] | --decompose <spec> | "
     "--export <spec>) [--exact|--heuristic] [--out <file|->]",
     "topology zoo: list plugins, certify or refute class-Lambda "
     "membership (ihc-topology-v1)"},
    {"campaign",
     "campaign [<name>...] [--list] [--jobs <n>] [--shards <n>] "
     "[--filter <s>] [--metrics] [--analyze] [--json-out <p>] "
     "[--profile <file>]",
     "run experiment campaigns on the parallel trial engine"},
    {"trace",
     "trace --campaign <name> [--filter <s>] [--out <file|->]",
     "re-run one campaign trial with event tracing (ihc-trace-v1)"},
    {"analyze",
     "analyze (--campaign <name> [--filter <s>] | --trace <file>) "
     "[--out <file|->] [--heatmap]",
     "critical path, utilization and TraceLint report (ihc-analysis-v1)"},
    {"bench-perf",
     "bench-perf [--quick] [--repeats <n>] [--shards <n>] "
     "[--profile <file>] [--out <file>]",
     "measure simulator throughput vs the legacy engine (ihc-bench-v1)"},
    {"bench-diff",
     "bench-diff <old.json> <new.json> [--threshold <x>]",
     "compare two ihc-bench-v1 reports; exit non-zero on regression"},
    {"workload",
     "workload [--campaign <name>] [--jobs <n>] [--shards <n>] "
     "[--filter <s>] [--profile <file>] [--out <file|->]",
     "open-loop saturation sweep: rate-vs-latency curves (ihc-workload-v1)"},
};

inline constexpr std::size_t kCliSubcommandCount =
    sizeof(kCliSubcommands) / sizeof(kCliSubcommands[0]);

/// Process exit codes, unified across subcommands: kExitFailure for
/// runtime failures (failed trials, TraceLint violations, unexpected
/// exceptions), kExitUsage for configuration errors (unknown subcommand,
/// campaign, flag or unreadable input) - main() maps ConfigError to
/// kExitUsage so e.g. a mistyped campaign name exits 2 with the
/// known-name list in the message.
inline constexpr int kExitFailure = 1;
inline constexpr int kExitUsage = 2;

}  // namespace ihc
