#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ihc {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {

/// Nearest-rank lookup into an already-sorted non-empty sample.
double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  // Nearest rank: the smallest value with at least ceil(q*n) samples <= it.
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

}  // namespace

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(values.begin(), values.end());
  return sorted_quantile(values, q);
}

Percentiles percentiles(std::vector<double> values) {
  Percentiles p;
  if (values.empty()) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    p.p50 = p.p95 = p.p99 = p.p999 = nan;
    return p;
  }
  std::sort(values.begin(), values.end());
  p.p50 = sorted_quantile(values, 0.50);
  p.p95 = sorted_quantile(values, 0.95);
  p.p99 = sorted_quantile(values, 0.99);
  p.p999 = sorted_quantile(values, 0.999);
  return p;
}

}  // namespace ihc
