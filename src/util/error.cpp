#include "util/error.hpp"

namespace ihc::detail {

void throw_invariant(std::string_view expr, std::string_view file, int line,
                     std::string_view msg) {
  std::string what = "invariant violated: ";
  what.append(expr);
  what.append(" at ");
  what.append(file);
  what.push_back(':');
  what.append(std::to_string(line));
  if (!msg.empty()) {
    what.append(" — ");
    what.append(msg);
  }
  throw InvariantError(what);
}

void throw_config(std::string_view msg) { throw ConfigError(std::string(msg)); }

}  // namespace ihc::detail
