#include "sim/fault.hpp"

#include <algorithm>

namespace ihc {

std::vector<NodeId> FaultPlan::faulty_nodes() const {
  std::vector<NodeId> out;
  out.reserve(faults_.size());
  for (const auto& [node, mode] : faults_) out.push_back(node);
  // unordered_map iteration order is standard-library specific; reports,
  // traces and goldens need a stable order.
  std::sort(out.begin(), out.end());
  return out;
}

RelayAction FaultPlan::on_relay(NodeId node) {
  const auto it = faults_.find(node);
  if (it == faults_.end()) return RelayAction::kFaithful;
  switch (it->second) {
    case FaultMode::kSilent:
      return RelayAction::kDrop;
    case FaultMode::kCorrupt:
      return RelayAction::kCorrupt;
    case FaultMode::kRandom: {
      const std::uint64_t r = rng_.below(3);
      if (r == 0) return RelayAction::kFaithful;
      return r == 1 ? RelayAction::kDrop : RelayAction::kCorrupt;
    }
    case FaultMode::kEquivocate:
      return RelayAction::kFaithful;
    case FaultMode::kSlow:
      return RelayAction::kDelay;
  }
  return RelayAction::kFaithful;
}

std::uint64_t FaultPlan::origin_payload(NodeId node,
                                        std::uint64_t honest_value,
                                        std::uint32_t route) const {
  const auto it = faults_.find(node);
  if (it == faults_.end() || it->second != FaultMode::kEquivocate)
    return honest_value;
  // Different deterministic lie per route.
  return honest_value ^ (0xBAD0000000000001ULL + route);
}

}  // namespace ihc
