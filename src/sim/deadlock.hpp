/// \file deadlock.hpp
/// \brief Dally-Seitz channel-dependency-graph deadlock analysis.
///
/// Section IV of the paper: "Note that deadlock does not occur if Dally
/// and Seitz's method of virtual channels [7] is used for deadlock
/// prevention."  This module makes that claim checkable:
///
///  * a *channel* is a (directed link, virtual-channel index) pair;
///  * a routing function induces a *channel dependency graph* (CDG) with
///    an arc from channel c1 to channel c2 whenever some packet may hold
///    c1 while waiting for c2;
///  * Dally & Seitz's theorem: a wormhole routing function is deadlock-
///    free iff its CDG is acyclic.
///
/// For the IHC algorithm the routes are the directed Hamiltonian cycles.
/// With a single channel per link, each cycle's links form a dependency
/// ring - cyclic, hence deadlock-prone under wormhole blocking.  Dally &
/// Seitz's classic fix splits each link into two virtual channels and
/// switches from the "high" to the "low" channel when a packet crosses
/// the cycle's reference node: the numbering then decreases strictly
/// along every route and the CDG is acyclic.  Both constructions (and the
/// acyclicity checker) live here.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/cycle.hpp"
#include "graph/graph.hpp"
#include "topology/topology.hpp"

namespace ihc {

/// A channel: virtual channel `vc` of directed link `link`.
struct Channel {
  LinkId link = kInvalidLink;
  std::uint8_t vc = 0;

  friend bool operator==(const Channel&, const Channel&) = default;
};

/// Channel dependency graph over (link, vc) pairs.
class ChannelDependencyGraph {
 public:
  /// \param link_count number of directed links in the network
  /// \param vc_count   virtual channels per link (>= 1)
  ChannelDependencyGraph(LinkId link_count, std::uint8_t vc_count);

  [[nodiscard]] std::size_t channel_count() const {
    return static_cast<std::size_t>(link_count_) * vc_count_;
  }
  [[nodiscard]] std::size_t channel_index(const Channel& c) const;

  /// Adds the dependency "a packet may hold `from` while waiting for
  /// `to`".  Duplicates are fine.
  void add_dependency(const Channel& from, const Channel& to);

  [[nodiscard]] std::size_t dependency_count() const { return arcs_; }

  /// Dally-Seitz: deadlock-free iff the CDG is acyclic.
  [[nodiscard]] bool is_acyclic() const;

  /// Nodes of one cycle in the CDG (empty when acyclic) - for diagnostics.
  [[nodiscard]] std::vector<std::size_t> find_cycle() const;

 private:
  LinkId link_count_;
  std::uint8_t vc_count_;
  std::vector<std::vector<std::uint32_t>> out_;
  std::size_t arcs_ = 0;
};

/// Builds the CDG of the IHC algorithm's routes over the topology's
/// directed Hamiltonian cycles with a single channel per link: every
/// consecutive link pair of every cycle is a dependency.  Cyclic.
[[nodiscard]] ChannelDependencyGraph ihc_cdg_single_channel(
    const Topology& topo);

/// Builds the CDG with the Dally-Seitz two-virtual-channel scheme: a
/// packet travels on VC 1 until its route crosses the cycle's reference
/// node N_0, then on VC 0.  Acyclic (and verified so by tests).
[[nodiscard]] ChannelDependencyGraph ihc_cdg_dally_seitz(
    const Topology& topo);

}  // namespace ihc
