/// \file params.hpp
/// \brief Simulation time base and the paper's network timing parameters.
///
/// Times are integer picoseconds (SimTime).  The paper's model (Section VI):
///   alpha  - delay for a packet to cut through an intermediate node
///            (20 ns for the TORUS routing chip, Dally [8]);
///   tau_S  - message startup time for a store-and-forward transmission;
///   mu     - packet length expressed in FIFO-buffer units, so a packet's
///            transmission time onto a link is L*tau_L = mu*alpha;
///   D      - additional queueing delay experienced by a buffered packet
///            (a modeling constant for the worst-case analysis; the
///            simulator also accrues *natural* queueing waits from
///            transmitter contention);
///   rho    - utilization of links by other (background) traffic.
#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace ihc {

/// Simulation time in integer picoseconds.
using SimTime = std::int64_t;

constexpr SimTime sim_ps(std::int64_t v) { return v; }
constexpr SimTime sim_ns(std::int64_t v) { return v * 1'000; }
constexpr SimTime sim_us(std::int64_t v) { return v * 1'000'000; }
constexpr SimTime sim_ms(std::int64_t v) { return v * 1'000'000'000; }

/// Process-wide default for NetworkParams::legacy_engine.  Lets the perf
/// harness flip every Network constructed inside campaign trial lambdas
/// (which build their own NetworkParams) onto the baseline engine without
/// threading a flag through every campaign definition.  Not thread-safe;
/// set it before launching workers and restore it after.
void set_default_engine_legacy(bool legacy) noexcept;
[[nodiscard]] bool default_engine_legacy() noexcept;

/// Process-wide default for NetworkParams::shards (same pattern as
/// set_default_engine_legacy): lets `ihc_cli --shards N` flip every
/// network constructed inside campaign/workload trial lambdas onto the
/// time-sharded parallel engine without threading the knob through every
/// campaign definition.  Not thread-safe; set before launching workers.
void set_default_shards(std::uint32_t shards) noexcept;
[[nodiscard]] std::uint32_t default_shards() noexcept;

/// How the background ("normal task") traffic of rho is generated.
enum class BackgroundMode {
  /// Independent single-link occupancies: each link receives Poisson
  /// transmissions that occupy just that link.  Cheap and controlled.
  kSingleLink,
  /// Point-to-point flows: each node Poisson-generates packets to random
  /// destinations, routed along shortest paths with cut-through - the
  /// background itself contends, cuts through, and buffers.
  kMultiHopFlows,
};

/// How blocked packets are handled (Section II).
enum class Switching {
  kStoreAndForward,   ///< every hop stores the full packet, then forwards
  kVirtualCutThrough, ///< cut through when the transmitter is free, else
                      ///< buffer the whole packet at the node
  kWormhole,          ///< cut through when free, else stall in the network
                      ///< holding the links behind the header
};

struct NetworkParams {
  Switching switching = Switching::kVirtualCutThrough;

  /// Cut-through latency per intermediate node (default: Dally's 20 ns).
  SimTime alpha = sim_ns(20);

  /// Store-and-forward startup time.  The paper's headline numbers use a
  /// "conservative" 0.5 ms; benches sweep this.
  SimTime tau_s = sim_us(5);

  /// Broadcast packet length in FIFO units (packet = mu * B_FIFO bytes);
  /// transmission time of a length-mu packet is mu * alpha.
  std::uint32_t mu = 2;

  /// Fixed additional queueing delay D applied to every buffered relay
  /// (worst-case analysis knob; 0 means only natural contention waits).
  SimTime queueing_delay = 0;

  /// Background traffic: target utilization of every directed link by
  /// other tasks, in [0, 1).  0 = dedicated network.
  double rho = 0.0;

  /// Length of background packets in FIFO units.
  std::uint32_t background_mu = 8;

  /// Shape of the background traffic (see BackgroundMode).
  BackgroundMode background_mode = BackgroundMode::kSingleLink;

  /// RNG seed for background traffic arrivals.
  std::uint64_t seed = 0x5eedULL;

  /// Run the event loop on the legacy binary-heap engine with the seed's
  /// per-call route/gap computations, instead of the calendar queue and
  /// precomputed caches.  Simulated results are identical either way
  /// (asserted in tests/test_sim_golden.cpp); the flag exists so
  /// `ihc_cli bench-perf` can measure both engines in one run.  Defaults
  /// to the process-wide value (see set_default_engine_legacy).
  bool legacy_engine = default_engine_legacy();

  /// Number of worker shards for the conservative time-sharded parallel
  /// engine (sim/parallel/, docs/PARALLEL.md).  0 selects the classic
  /// sequential Network; >= 1 selects the windowed engine with that many
  /// workers (1 runs the same windowed schedule inline, so `--shards 1`
  /// vs `--shards N` is a byte-identical A/B of the same semantics).
  /// Defaults to the process-wide value (see set_default_shards).
  std::uint32_t shards = default_shards();

  void validate() const {
    require(alpha > 0, "alpha must be positive");
    require(tau_s >= 0, "tau_s must be non-negative");
    require(mu >= 1, "mu must be at least 1");
    require(queueing_delay >= 0, "queueing delay must be non-negative");
    require(rho >= 0.0 && rho < 1.0, "rho must lie in [0, 1)");
    require(background_mu >= 1, "background packet length must be >= 1");
    require(shards <= 1024, "shard count must be at most 1024");
  }
};

}  // namespace ihc
