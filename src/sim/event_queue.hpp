/// \file event_queue.hpp
/// \brief Indexed calendar queue for discrete-event simulation over the
/// integer SimTime domain.
///
/// The packet-level simulator pops events in (time, seq) order.  A binary
/// heap pays O(log n) scattered comparisons per operation on an ordering
/// that is almost sorted already: event times are the current time plus a
/// small set of increments (alpha, tau_S, a transmission tail), so
/// consecutive pops cluster tightly.  The calendar queue exploits that
/// structure:
///
///  * the timeline is divided into fixed-width buckets (width a power of
///    two, tuned from alpha - see Network's width policy), arranged in a
///    ring of kBuckets slots;
///  * every queued event lives in one contiguous node pool; each bucket
///    is an intrusive singly-linked list threaded through that pool, so
///    the whole queue costs one allocation that reset() retains - no
///    per-bucket vectors, no churn when a pooled Network is reused;
///  * push links the event into its bucket's list - O(1);
///  * pop scans an occupancy bitmap for the first non-empty bucket (a
///    few word operations via std::countr_zero) and unlinks the
///    (time, seq) minimum from its short list;
///  * events beyond the ring's horizon wait in a spill heap and migrate
///    into the ring as the current tick advances past their eligibility
///    point, preserving the global pop order.
///
/// Pop order is *exactly* the order a binary heap over (time, seq) would
/// produce - the golden simulation tests assert identical results
/// against the legacy heap engine (kept selectable for A/B benchmarking,
/// see docs/PERFORMANCE.md).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/params.hpp"
#include "util/error.hpp"

namespace ihc {

/// Min-queue over events carrying `.time` (SimTime) and `.seq`
/// (monotonic std::uint64_t tie-break).  Engine selectable at
/// construction: the calendar ring (default) or the legacy binary heap.
template <typename Event>
class CalendarQueue {
 public:
  /// Ring size; power of two.  Chosen so the ring spans well past tau_S
  /// at the default bucket width while the bucket-head array (4 KiB)
  /// stays cache-resident.
  static constexpr std::size_t kBuckets = 1024;

  /// \param width_hint  target bucket width in SimTime units; rounded up
  ///                    to a power of two.  Aim for about one event per
  ///                    bucket: the sweet spot is a fraction of alpha
  ///                    (see docs/PERFORMANCE.md for the measurement).
  /// \param legacy      use the binary-heap engine (A/B baseline).
  explicit CalendarQueue(SimTime width_hint, bool legacy = false) {
    reset(width_hint, legacy);
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  void push(const Event& ev) {
    if (legacy_) {
      heap_.push(ev);
      ++size_;
      return;
    }
    if (size_ == 0) cur_tick_ = tick_of(ev.time);
    const std::uint64_t t = tick_of(ev.time);
    if (t >= cur_tick_ + kBuckets) {
      spill_.push(ev);
    } else {
      link_into_ring(ev, t);
    }
    ++size_;
  }

  Event pop_min() {
    IHC_ENSURE(size_ > 0, "pop from empty event queue");
    if (legacy_) {
      Event out = heap_.top();
      heap_.pop();
      --size_;
      return out;
    }
    const std::uint32_t head = prepare_min();
    const std::size_t b = static_cast<std::size_t>(cur_tick_) & kMask;
    heads_[b] = pool_[head].next;
    if (heads_[b] == kNil) {
      unmark(b);
      sorted_bucket_ = kNoBucket;
    }
    Event out = pool_[head].ev;
    pool_[head].next = free_head_;
    free_head_ = head;
    --ring_count_;
    --size_;
    return out;
  }

  /// Time of the earliest queued event without removing it.  Non-const:
  /// locating the minimum advances the ring cursor and sorts the current
  /// bucket, which is exactly the work pop_min() would do anyway - pop
  /// order is unaffected.  The parallel engine's window scheduler uses
  /// this to jump empty lookahead windows.
  [[nodiscard]] SimTime peek_min_time() {
    IHC_ENSURE(size_ > 0, "peek into empty event queue");
    if (legacy_) return heap_.top().time;
    return pool_[prepare_min()].ev.time;
  }

  /// Pops the minimum event into `out` only when its time lies strictly
  /// before `limit`; returns false (leaving the queue untouched) otherwise
  /// or when empty.  This is the per-shard drain primitive of the windowed
  /// parallel engine: a shard consumes events up to its window end and no
  /// further.
  bool pop_min_before(SimTime limit, Event& out) {
    if (size_ == 0) return false;
    if (peek_min_time() >= limit) return false;
    out = pop_min();
    return true;
  }

  /// Empties and re-parameterizes the queue, retaining the node pool and
  /// heap capacity - the arena-reuse path behind Network::reset().
  void reset(SimTime width_hint, bool legacy) {
    clear();
    legacy_ = legacy;
    if (width_hint < 1) width_hint = 1;
    shift_ = static_cast<unsigned>(
        std::bit_width(static_cast<std::uint64_t>(width_hint) - 1));
  }

  /// Empties the queue, retaining the node pool's capacity for reuse.
  void clear() {
    heads_.assign(kBuckets, kNil);
    occupied_.assign(kWords, 0);
    pool_.clear();
    free_head_ = kNil;
    while (!spill_.empty()) spill_.pop();
    while (!heap_.empty()) heap_.pop();
    size_ = ring_count_ = 0;
    cur_tick_ = 0;
    sorted_bucket_ = kNoBucket;
  }

 private:
  static constexpr std::size_t kMask = kBuckets - 1;
  static constexpr std::size_t kWords = kBuckets / 64;
  static constexpr std::uint32_t kNil = static_cast<std::uint32_t>(-1);
  static constexpr std::uint32_t kNoBucket = static_cast<std::uint32_t>(-1);

  struct Node {
    Event ev;
    std::uint32_t next;
  };

  struct MinOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] std::uint64_t tick_of(SimTime t) const {
    return static_cast<std::uint64_t>(t) >> shift_;
  }

  void mark(std::size_t idx) { occupied_[idx >> 6] |= 1ull << (idx & 63); }
  void unmark(std::size_t idx) {
    occupied_[idx >> 6] &= ~(1ull << (idx & 63));
  }

  static bool precedes(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  /// Positions the ring on the global minimum (advancing the cursor,
  /// migrating spill, sorting the current bucket as needed) and returns
  /// the pool index of the minimum event.  Requires size_ > 0 and the
  /// calendar engine.  Shared by pop_min() and peek_min_time().
  [[nodiscard]] std::uint32_t prepare_min() {
    std::size_t b = static_cast<std::size_t>(cur_tick_) & kMask;
    if (heads_[b] == kNil) {  // fast path: current bucket still draining
      if (ring_count_ == 0) {
        // Everything spilled: jump the ring to the spill minimum.
        cur_tick_ = tick_of(spill_.top().time);
        sorted_bucket_ = kNoBucket;
        migrate_spill();
      } else {
        advance_to_occupied();
      }
      b = static_cast<std::size_t>(cur_tick_) & kMask;
    }
    // The head of the current bucket is the global minimum once the
    // bucket is sorted.  Simulated workloads cluster many events on one
    // time (symmetric flows, stage barriers), so sorting the bucket once
    // and popping heads beats re-scanning an unordered list every pop.
    std::uint32_t head = heads_[b];
    if (pool_[head].next != kNil &&
        sorted_bucket_ != static_cast<std::uint32_t>(b)) {
      sort_bucket(b);
      head = heads_[b];
    }
    return head;
  }

  void link_into_ring(const Event& ev, std::uint64_t tick) {
    // Ticks at or before the current one share the current bucket; the
    // bucket's (time, seq) ordering keeps them correct.
    const std::uint64_t clamped = tick < cur_tick_ ? cur_tick_ : tick;
    const std::size_t b = static_cast<std::size_t>(clamped) & kMask;
    std::uint32_t idx;
    if (free_head_ != kNil) {
      idx = free_head_;
      free_head_ = pool_[idx].next;
    } else {
      idx = static_cast<std::uint32_t>(pool_.size());
      pool_.emplace_back();
    }
    pool_[idx].ev = ev;
    if (sorted_bucket_ == static_cast<std::uint32_t>(b)) {
      // The bucket being drained stays sorted: insert in order (new seqs
      // are the largest, so equal-time inserts land at the run's end).
      std::uint32_t prev = kNil;
      std::uint32_t cur = heads_[b];
      while (cur != kNil && precedes(pool_[cur].ev, ev)) {
        prev = cur;
        cur = pool_[cur].next;
      }
      pool_[idx].next = cur;
      if (prev == kNil)
        heads_[b] = idx;
      else
        pool_[prev].next = idx;
    } else {
      pool_[idx].next = heads_[b];
      heads_[b] = idx;
    }
    mark(b);
    ++ring_count_;
  }

  /// Sorts bucket b's list ascending by (time, seq) and remembers it, so
  /// draining the bucket pops heads in O(1).  List insertion sort: LIFO
  /// pushes arrive in ascending seq, so the list is near-descending and
  /// almost every element front-inserts in O(1).
  void sort_bucket(std::size_t b) {
    std::uint32_t sorted = kNil;
    std::uint32_t i = heads_[b];
    while (i != kNil) {
      const std::uint32_t nxt = pool_[i].next;
      if (sorted == kNil || precedes(pool_[i].ev, pool_[sorted].ev)) {
        pool_[i].next = sorted;
        sorted = i;
      } else {
        std::uint32_t p = sorted;
        while (pool_[p].next != kNil &&
               precedes(pool_[pool_[p].next].ev, pool_[i].ev))
          p = pool_[p].next;
        pool_[i].next = pool_[p].next;
        pool_[p].next = i;
      }
      i = nxt;
    }
    heads_[b] = sorted;
    sorted_bucket_ = static_cast<std::uint32_t>(b);
  }

  /// Advances cur_tick_ to the first occupied bucket (ring_count_ > 0
  /// guarantees one within kBuckets slots), then migrates newly eligible
  /// spilled events.  All ring ticks lie in [cur_tick_, cur_tick_ +
  /// kBuckets), so ring order from cur_tick_ is global tick order.
  void advance_to_occupied() {
    const std::size_t start = static_cast<std::size_t>(cur_tick_) & kMask;
    std::size_t w = start >> 6;
    std::uint64_t word = occupied_[w] & (~0ull << (start & 63));
    std::size_t hops = 0;
    while (word == 0) {
      w = (w + 1) & (kWords - 1);
      word = occupied_[w];
      IHC_ENSURE(++hops <= kWords, "occupancy bitmap disagrees with count");
    }
    const std::size_t idx =
        (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
    const std::size_t delta = (idx - start) & kMask;
    cur_tick_ += delta;
    if (delta != 0 && !spill_.empty()) migrate_spill();
  }

  /// Moves every spilled event inside the new horizon into the ring -
  /// restores the invariant that all spilled ticks are >= cur_tick_ +
  /// kBuckets, i.e. strictly after every ring event.
  void migrate_spill() {
    while (!spill_.empty() &&
           tick_of(spill_.top().time) < cur_tick_ + kBuckets) {
      const Event ev = spill_.top();
      spill_.pop();
      link_into_ring(ev, tick_of(ev.time));
    }
  }

  bool legacy_ = false;
  unsigned shift_ = 0;
  std::uint64_t cur_tick_ = 0;
  std::size_t size_ = 0;
  std::size_t ring_count_ = 0;
  std::vector<Node> pool_;              ///< one arena for all ring events
  std::uint32_t free_head_ = kNil;      ///< freelist threaded through pool_
  std::vector<std::uint32_t> heads_;    ///< per-bucket list heads
  std::vector<std::uint64_t> occupied_; ///< bucket-occupancy bitmap
  std::uint32_t sorted_bucket_ = kNoBucket;  ///< bucket kept in sorted order
  std::priority_queue<Event, std::vector<Event>, MinOrder> spill_;
  std::priority_queue<Event, std::vector<Event>, MinOrder> heap_;  // legacy
};

}  // namespace ihc
