#include "sim/flit_network.hpp"

#include <algorithm>

#include "sim/fault_schedule.hpp"
#include "obs/metrics.hpp"
#include "obs/prof/profiler.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace ihc {

FlitNetwork::FlitNetwork(const Graph& g, const FlitParams& params)
    : g_(&g), params_(params) {
  reset(params);
}

void FlitNetwork::reset() { reset(params_); }

void FlitNetwork::reset(const FlitParams& params) {
  require(params.vc_count >= 1, "need at least one virtual channel");
  require(params.buffer_flits >= 1, "need at least one buffer slot");
  params_ = params;
  packets_.clear();
  const std::size_t channels = channel_count();
  // resize + fill rather than assign: an unchanged geometry reuses the
  // slab without touching its (stale, unread) flit contents.
  fifo_slots_.resize(channels * params_.buffer_flits);
  fifo_head_.assign(channels, 0);
  fifo_count_.assign(channels, 0);
  owner_.assign(channels, -1);
  rr_.assign(g_->link_count(), 0);
  tracer_ = nullptr;
  metrics_ = nullptr;
  schedule_ = nullptr;
}

void FlitNetwork::add_packet(FlitPacketSpec spec) {
  require(!spec.route.empty(), "packet needs at least one hop");
  require(spec.vc.size() == spec.route.size(),
          "need one VC assignment per hop");
  require(spec.length_flits >= 1, "packet needs at least one flit");
  for (std::size_t i = 0; i < spec.route.size(); ++i) {
    require(spec.route[i] < g_->link_count(), "route link out of range");
    require(spec.vc[i] < params_.vc_count, "VC out of range");
    if (i > 0) {
      require(g_->link_target(spec.route[i - 1]) ==
                  g_->link_source(spec.route[i]),
              "route links must chain head to tail");
    }
  }
  packets_.push_back(Packet{std::move(spec), 0, 0, false});
}

void FlitNetwork::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    tracer_->set_timebase(obs::TimeBase::kCycles);
    tracer_->announce_topology(*g_);
  }
}

bool FlitNetwork::inject(std::uint32_t p, std::uint64_t cycle) {
  Packet& packet = packets_[p];
  if (packet.flits_injected >= packet.spec.length_flits) return false;
  if (cycle < packet.spec.inject_cycle) return false;
  if (schedule_ != nullptr) {
    const auto t = static_cast<SimTime>(cycle);
    if (schedule_->link_dead(packet.spec.route[0], t)) {
      note_blocked(cycle, packet.spec.route[0], packet.spec.vc[0], p, 0,
                   "link_dead");
      return false;
    }
    // A degraded origin pays slow_delay() cycles before its first flit
    // enters the network - origin transmissions slow down exactly like
    // relays (the packet engine's kSlow-at-injection semantics).
    const SimTime slow =
        schedule_->slow_penalty(g_->link_source(packet.spec.route[0]), t);
    if (slow > 0 && packet.flits_injected == 0 &&
        cycle <
            packet.spec.inject_cycle + static_cast<std::uint64_t>(slow)) {
      note_blocked(cycle, packet.spec.route[0], packet.spec.vc[0], p, 0,
                   "slow_node");
      return false;
    }
  }
  const std::size_t target =
      channel_of(packet.spec.route[0], packet.spec.vc[0]);
  if (fifo_size(target) >= params_.buffer_flits) {
    note_blocked(cycle, packet.spec.route[0], packet.spec.vc[0], p, 0,
                 "fifo_full");
    return false;
  }
  if (owner_[target] != -1 &&
      owner_[target] != static_cast<std::int32_t>(p)) {
    note_blocked(cycle, packet.spec.route[0], packet.spec.vc[0], p, 0,
                 "channel_owned");
    return false;
  }
  owner_[target] = static_cast<std::int32_t>(p);
  const bool is_tail =
      packet.flits_injected + 1 == packet.spec.length_flits;
  fifo_push_back(target, Flit{p, 0, is_tail, cycle});
  note_enqueue(cycle, packet.spec.route[0], packet.spec.vc[0], p, 0,
               fifo_size(target));
  ++packet.flits_injected;
  return true;
}

void FlitNetwork::note_blocked(std::uint64_t cycle, LinkId link,
                               std::uint8_t vc, std::uint32_t packet,
                               std::uint32_t hop, const char* reason) {
  if (metrics_ != nullptr) metrics_->count("flit.blocked");
  if (tracer_ != nullptr)
    tracer_->flit_blocked(static_cast<SimTime>(cycle), link, vc, packet, hop,
                          reason);
}

void FlitNetwork::note_enqueue(std::uint64_t cycle, LinkId link,
                               std::uint8_t vc, std::uint32_t packet,
                               std::uint32_t hop, std::size_t depth) {
  if (metrics_ != nullptr)
    metrics_->maximum("flit.max_fifo_depth",
                      static_cast<std::int64_t>(depth));
  if (tracer_ != nullptr)
    tracer_->fifo_enqueue(static_cast<SimTime>(cycle), link, vc, packet, hop,
                          static_cast<std::uint32_t>(depth));
}

std::uint64_t FlitNetwork::consume(std::uint64_t cycle) {
  std::uint64_t consumed = 0;
  for (std::size_t c = 0; c < channel_count(); ++c) {
    if (fifo_size(c) == 0) continue;
    const Flit f = fifo_front(c);
    Packet& packet = packets_[f.packet];
    if (f.hop + 1 != packet.spec.route.size()) continue;  // not at the end
    fifo_pop_front(c);
    if (tracer_ != nullptr)
      tracer_->fifo_dequeue(static_cast<SimTime>(cycle),
                            static_cast<LinkId>(c % g_->link_count()),
                            static_cast<std::uint8_t>(c / g_->link_count()),
                            f.packet, f.hop, fifo_size(c));
    ++packet.flits_consumed;
    ++consumed;
    // The tail flit releases the channel and completes the packet.
    if (f.is_tail) {
      owner_[c] = -1;
      packet.done = true;
    }
  }
  return consumed;
}

bool FlitNetwork::advance_link(LinkId l, std::uint64_t cycle) {
  // Candidates: head flits in channels whose next hop crosses link l.
  // Round-robin over the VCs of the *current* channels for fairness.
  const std::uint8_t vcs = params_.vc_count;
  for (std::uint8_t spin = 0; spin < vcs; ++spin) {
    const auto vc =
        static_cast<std::uint8_t>((rr_[l] + spin) % vcs);
    // A flit entering link l comes from a channel ending at l's source.
    // Scan the incoming channels of that node on this VC.
    const NodeId src = g_->link_source(l);
    for (const auto& adj : g_->neighbors(src)) {
      const LinkId in_link = g_->link(adj.neighbor, src);
      const std::size_t from = channel_of(in_link, vc);
      if (fifo_size(from) == 0) continue;
      const Flit f = fifo_front(from);
      if (f.arrived_cycle >= cycle) continue;  // one hop per cycle
      Packet& packet = packets_[f.packet];
      const std::size_t next_hop = f.hop + 1;
      if (next_hop >= packet.spec.route.size()) continue;  // consumes here
      if (packet.spec.route[next_hop] != l) continue;
      if (schedule_ != nullptr) {
        const auto t = static_cast<SimTime>(cycle);
        if (schedule_->link_dead(l, t)) {
          note_blocked(cycle, l, packet.spec.vc[next_hop], f.packet,
                       static_cast<std::uint32_t>(next_hop), "link_dead");
          continue;
        }
        // A relay through a degraded node dwells slow_delay() extra
        // cycles before crossing the outgoing link.
        const SimTime slow = schedule_->slow_penalty(src, t);
        if (slow > 0 &&
            cycle < f.arrived_cycle + 1 + static_cast<std::uint64_t>(slow)) {
          note_blocked(cycle, l, packet.spec.vc[next_hop], f.packet,
                       static_cast<std::uint32_t>(next_hop), "slow_node");
          continue;
        }
      }
      const std::size_t to =
          channel_of(l, packet.spec.vc[next_hop]);
      if (fifo_size(to) >= params_.buffer_flits) {
        note_blocked(cycle, l, packet.spec.vc[next_hop], f.packet,
                     static_cast<std::uint32_t>(next_hop), "fifo_full");
        continue;
      }
      if (owner_[to] != -1 &&
          owner_[to] != static_cast<std::int32_t>(f.packet)) {
        note_blocked(cycle, l, packet.spec.vc[next_hop], f.packet,
                     static_cast<std::uint32_t>(next_hop), "channel_owned");
        continue;
      }
      // Move the flit.
      fifo_pop_front(from);
      if (tracer_ != nullptr)
        tracer_->fifo_dequeue(static_cast<SimTime>(cycle), in_link, vc,
                              f.packet, f.hop, fifo_size(from));
      if (f.is_tail) owner_[from] = -1;  // the worm's tail releases it
      owner_[to] = static_cast<std::int32_t>(f.packet);
      fifo_push_back(to, Flit{f.packet,
                              static_cast<std::uint32_t>(next_hop),
                              f.is_tail, cycle});
      note_enqueue(cycle, l, packet.spec.vc[next_hop], f.packet,
                   static_cast<std::uint32_t>(next_hop), fifo_size(to));
      rr_[l] = static_cast<std::uint8_t>((vc + 1) % vcs);
      return true;
    }
  }
  return false;
}

FlitRunResult FlitNetwork::run(std::uint64_t max_cycles) {
  const obs::prof::ScopedPhase prof_scope(obs::prof::Phase::kEventLoop);
  obs::prof::WallProfiler* const prof = obs::prof::global_profiler();
  FlitRunResult result;
  std::uint64_t idle_cycles = 0;
  std::uint64_t events = 0;  // flit micro-ops: consumes, hops, injections
  for (std::uint64_t cycle = 0; cycle < max_cycles; ++cycle) {
    // Progress heartbeat every 4k flit cycles; rate-limited inside.
    if (prof != nullptr && (cycle & 0xFFFu) == 0)
      prof->heartbeat("event_loop", events, static_cast<SimTime>(cycle), 0);
    std::uint64_t moved = consume(cycle);
    for (LinkId l = 0; l < g_->link_count(); ++l) {
      if (advance_link(l, cycle)) {
        ++moved;
        ++result.flit_hops;
      }
    }
    for (std::uint32_t p = 0; p < packets_.size(); ++p) {
      if (inject(p, cycle)) ++moved;
    }
    result.cycles = cycle + 1;

    bool anything_left = false;
    for (const Packet& packet : packets_) {
      if (!packet.done) {
        anything_left = true;
        break;
      }
    }
    events += moved;
    if (!anything_left) break;
    idle_cycles = moved == 0 ? idle_cycles + 1 : 0;
    if (idle_cycles >= params_.stall_threshold) {
      result.deadlocked = true;
      break;
    }
  }
  for (const Packet& packet : packets_) {
    if (packet.done)
      ++result.delivered;
    else
      ++result.blocked_packets;
  }
  // Per-engine parity with the packet simulator's net.* counters
  // (docs/TRACING.md metrics table).
  if (metrics_ != nullptr) {
    metrics_->count("flit.cycles", static_cast<std::int64_t>(result.cycles));
    metrics_->count("flit.flit_hops",
                    static_cast<std::int64_t>(result.flit_hops));
    metrics_->count("flit.delivered",
                    static_cast<std::int64_t>(result.delivered));
    metrics_->count("flit.blocked_packets",
                    static_cast<std::int64_t>(result.blocked_packets));
    metrics_->count("flit.events_processed",
                    static_cast<std::int64_t>(events));
  }
  return result;
}

std::vector<FlitPacketSpec> ihc_flit_packets(const Topology& topo,
                                             std::uint32_t eta,
                                             std::uint32_t length_flits,
                                             bool dally_seitz) {
  require(eta >= 1, "eta must be positive");
  const Graph& g = topo.graph();
  const NodeId n = topo.node_count();
  std::vector<FlitPacketSpec> out;
  for (const DirectedCycle& hc : topo.directed_cycles()) {
    for (NodeId p = 0; p < n; p += eta) {
      FlitPacketSpec spec;
      spec.length_flits = length_flits;
      for (NodeId step = 0; step + 1 <= n - 1; ++step) {
        const NodeId i = (p + step) % n;
        spec.route.push_back(g.link(hc.at(i), hc.at((i + 1) % n)));
        const bool high = !dally_seitz || i >= p;
        spec.vc.push_back(high ? 0 : 1);
      }
      out.push_back(std::move(spec));
    }
  }
  return out;
}

}  // namespace ihc
