#include "sim/fault_schedule.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "util/error.hpp"
#include "util/json.hpp"

namespace ihc {

namespace {

constexpr std::string_view kSchema = "ihc-fault-schedule-v1";

const char* mode_name(FaultMode mode) {
  switch (mode) {
    case FaultMode::kSilent: return "silent";
    case FaultMode::kCorrupt: return "corrupt";
    case FaultMode::kRandom: return "random";
    case FaultMode::kEquivocate: return "equivocate";
    case FaultMode::kSlow: return "slow";
  }
  return "silent";
}

FaultMode mode_from_name(std::string_view name) {
  if (name == "silent") return FaultMode::kSilent;
  if (name == "corrupt") return FaultMode::kCorrupt;
  if (name == "random") return FaultMode::kRandom;
  if (name == "equivocate") return FaultMode::kEquivocate;
  if (name == "slow") return FaultMode::kSlow;
  detail::throw_config("fault schedule: unknown mode '" + std::string(name) +
                       "' (known: silent, corrupt, random, equivocate, slow)");
}

/// Fetches a required integer member of an event object.
std::int64_t event_int(const Json& event, std::string_view key,
                       std::string_view kind) {
  const Json* v = event.find(key);
  if (v == nullptr || !v->is_number())
    detail::throw_config("fault schedule: '" + std::string(kind) +
                         "' event needs a numeric '" + std::string(key) +
                         "'");
  return v->as_int();
}

}  // namespace

void FaultSchedule::fault_node(NodeId node, FaultMode mode, SimTime at,
                               SimTime duration) {
  require(at >= 0 && duration > 0, "fault window needs at >= 0, duration > 0");
  const SimTime until =
      duration >= kForever - at ? kForever : at + duration;
  node_windows_.push_back(NodeWindow{node, mode, at, until});
}

void FaultSchedule::repair_node(NodeId node, SimTime at) {
  require(at >= 0, "repair time must be >= 0");
  for (NodeWindow& w : node_windows_) {
    if (w.node == node && w.from < at && w.until > at) w.until = at;
  }
}

void FaultSchedule::glitch_link(LinkId link, SimTime at, SimTime duration) {
  require(at >= 0 && duration > 0,
          "link glitch needs at >= 0, duration > 0");
  const SimTime until =
      duration >= kForever - at ? kForever : at + duration;
  link_windows_.push_back(LinkWindow{link, at, until});
}

std::optional<FaultMode> FaultSchedule::mode_at(NodeId node, SimTime t) const {
  // Latest-added window wins; schedules hold a handful of windows, so a
  // reverse linear scan beats any index.
  for (auto it = node_windows_.rbegin(); it != node_windows_.rend(); ++it) {
    if (it->node == node && t >= it->from && t < it->until) return it->mode;
  }
  return std::nullopt;
}

bool FaultSchedule::link_dead(LinkId link, SimTime t) const {
  for (const LinkWindow& w : link_windows_) {
    if (w.link == link && t >= w.from && t < w.until) return true;
  }
  return false;
}

std::vector<SimTime> FaultSchedule::node_change_points(NodeId node,
                                                       SimTime after) const {
  std::vector<SimTime> points;
  for (const NodeWindow& w : node_windows_) {
    if (w.node != node) continue;
    if (w.from > after) points.push_back(w.from);
    if (w.until != kForever && w.until > after) points.push_back(w.until);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

bool FaultSchedule::link_dead_from(LinkId link, SimTime t) const {
  // Interval-union sweep over this link's windows that end after t.
  std::vector<std::pair<SimTime, SimTime>> spans;
  for (const LinkWindow& w : link_windows_)
    if (w.link == link && w.until > t) spans.emplace_back(w.from, w.until);
  std::sort(spans.begin(), spans.end());
  SimTime covered_to = t;
  for (const auto& [from, until] : spans) {
    if (from > covered_to) return false;  // gap: link is alive in it
    if (until == kForever) return true;
    covered_to = std::max(covered_to, until);
  }
  return false;  // every window repairs eventually
}

RelayAction FaultSchedule::on_relay(NodeId node, SimTime t) {
  const std::optional<FaultMode> mode = mode_at(node, t);
  if (!mode) return RelayAction::kFaithful;
  switch (*mode) {
    case FaultMode::kSilent:
      return RelayAction::kDrop;
    case FaultMode::kCorrupt:
      return RelayAction::kCorrupt;
    case FaultMode::kRandom: {
      const std::uint64_t r = rng_.below(3);
      if (r == 0) return RelayAction::kFaithful;
      return r == 1 ? RelayAction::kDrop : RelayAction::kCorrupt;
    }
    case FaultMode::kEquivocate:
      return RelayAction::kFaithful;
    case FaultMode::kSlow:
      return RelayAction::kDelay;
  }
  return RelayAction::kFaithful;
}

FaultSchedule FaultSchedule::from_json(const Json& doc,
                                       std::uint64_t default_seed) {
  require(doc.is_object(), "fault schedule: document must be an object");
  const Json* schema = doc.find("schema");
  require(schema != nullptr && schema->is_string() &&
              schema->as_string() == kSchema,
          "fault schedule: 'schema' must be \"ihc-fault-schedule-v1\"");

  std::uint64_t seed = default_seed;
  if (const Json* s = doc.find("seed"); s != nullptr) {
    require(s->is_number(), "fault schedule: 'seed' must be a number");
    seed = static_cast<std::uint64_t>(s->as_int());
  }
  FaultSchedule schedule(seed);

  if (const Json* d = doc.find("slow_delay_ps"); d != nullptr) {
    require(d->is_number(),
            "fault schedule: 'slow_delay_ps' must be a number");
    schedule.set_slow_delay(d->as_int());
  }

  const Json* events = doc.find("events");
  require(events != nullptr && events->is_array(),
          "fault schedule: 'events' array is required");
  for (const Json& event : events->items()) {
    require(event.is_object(), "fault schedule: events must be objects");
    const Json* kind_member = event.find("kind");
    require(kind_member != nullptr && kind_member->is_string(),
            "fault schedule: every event needs a string 'kind'");
    const std::string_view kind = kind_member->as_string();
    if (kind == "node_fault" || kind == "degrade") {
      const auto node =
          static_cast<NodeId>(event_int(event, "node", kind));
      const SimTime at = event_int(event, "at_ps", kind);
      SimTime duration = kForever;
      if (const Json* d = event.find("duration_ps"); d != nullptr)
        duration = d->as_int();
      FaultMode mode = FaultMode::kSlow;  // "degrade" sugar
      if (kind == "node_fault") {
        const Json* m = event.find("mode");
        require(m != nullptr && m->is_string(),
                "fault schedule: 'node_fault' needs a string 'mode'");
        mode = mode_from_name(m->as_string());
      }
      schedule.fault_node(node, mode, at, duration);
    } else if (kind == "node_repair") {
      schedule.repair_node(
          static_cast<NodeId>(event_int(event, "node", kind)),
          event_int(event, "at_ps", kind));
    } else if (kind == "link_fail") {
      schedule.fail_link(static_cast<LinkId>(event_int(event, "link", kind)),
                         event_int(event, "at_ps", kind));
    } else if (kind == "link_glitch") {
      schedule.glitch_link(
          static_cast<LinkId>(event_int(event, "link", kind)),
          event_int(event, "at_ps", kind),
          event_int(event, "duration_ps", kind));
    } else {
      detail::throw_config(
          "fault schedule: unknown event kind '" + std::string(kind) +
          "' (known: node_fault, node_repair, link_fail, link_glitch, "
          "degrade)");
    }
  }
  return schedule;
}

Json FaultSchedule::to_json() const {
  Json events = Json::array();
  // Repairs are applied at build time as window truncations, so the
  // round-trip serializes bounded node_fault windows instead.
  for (const NodeWindow& w : node_windows_) {
    Json event = Json::object();
    event.set("kind", "node_fault");
    event.set("node", static_cast<std::int64_t>(w.node));
    event.set("mode", mode_name(w.mode));
    event.set("at_ps", w.from);
    if (w.until != kForever) event.set("duration_ps", w.until - w.from);
    events.push(std::move(event));
  }
  for (const LinkWindow& w : link_windows_) {
    Json event = Json::object();
    event.set("kind", w.until == kForever ? "link_fail" : "link_glitch");
    event.set("link", static_cast<std::int64_t>(w.link));
    event.set("at_ps", w.from);
    if (w.until != kForever) event.set("duration_ps", w.until - w.from);
    events.push(std::move(event));
  }
  Json doc = Json::object();
  doc.set("schema", std::string(kSchema));
  doc.set("seed", seed_);
  if (slow_delay_ != 0) doc.set("slow_delay_ps", slow_delay_);
  doc.set("events", std::move(events));
  return doc;
}

}  // namespace ihc
