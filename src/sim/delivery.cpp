#include "sim/delivery.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ihc {

DeliveryLedger::DeliveryLedger(NodeId node_count, Granularity granularity)
    : n_(node_count), granularity_(granularity) {
  // kAggregate keeps no per-pair state: at million-node scale the N^2
  // counter arrays alone would not fit in memory.
  if (granularity_ == Granularity::kAggregate) return;
  const std::size_t pairs = static_cast<std::size_t>(n_) * n_;
  counts_.assign(pairs, 0);
  intact_counts_.assign(pairs, 0);
  if (granularity_ == Granularity::kFull) full_.resize(pairs);
}

void DeliveryLedger::reset(Granularity granularity) {
  granularity_ = granularity;
  finish_ = 0;
  total_ = 0;
  if (granularity_ == Granularity::kAggregate) {
    counts_.clear();
    intact_counts_.clear();
    full_.clear();
    return;
  }
  // Drivers move the ledger into their AtaResult, so a pooled Network may
  // reset a moved-from ledger: restore the arrays when they are gone.
  const std::size_t pairs = static_cast<std::size_t>(n_) * n_;
  if (counts_.size() != pairs) {
    counts_.assign(pairs, 0);
    intact_counts_.assign(pairs, 0);
  } else {
    std::fill(counts_.begin(), counts_.end(), 0);
    std::fill(intact_counts_.begin(), intact_counts_.end(), 0);
  }
  if (granularity_ == Granularity::kFull) {
    full_.resize(counts_.size());
    for (auto& records : full_) records.clear();
  }
}

void DeliveryLedger::record(NodeId origin, NodeId dest,
                            const CopyRecord& copy) {
  IHC_ENSURE(origin < n_ && dest < n_, "delivery endpoint out of range");
  finish_ = std::max(finish_, copy.time);
  ++total_;
  if (granularity_ == Granularity::kAggregate) return;
  const std::size_t i = index(origin, dest);
  ++counts_[i];
  if (copy.corrupted_by == kInvalidNode) ++intact_counts_[i];
  if (granularity_ == Granularity::kFull) full_[i].push_back(copy);
}

std::uint32_t DeliveryLedger::copies(NodeId origin, NodeId dest) const {
  IHC_ENSURE(granularity_ != Granularity::kAggregate,
             "per-pair counts require kCounts or kFull granularity");
  return counts_[index(origin, dest)];
}

std::uint32_t DeliveryLedger::intact_copies(NodeId origin,
                                            NodeId dest) const {
  IHC_ENSURE(granularity_ != Granularity::kAggregate,
             "per-pair counts require kCounts or kFull granularity");
  return intact_counts_[index(origin, dest)];
}

const std::vector<CopyRecord>& DeliveryLedger::records(NodeId origin,
                                                       NodeId dest) const {
  IHC_ENSURE(granularity_ == Granularity::kFull,
             "full records require kFull granularity");
  return full_[index(origin, dest)];
}

bool DeliveryLedger::all_pairs_have(std::uint32_t required) const {
  IHC_ENSURE(granularity_ != Granularity::kAggregate,
             "per-pair counts require kCounts or kFull granularity");
  for (NodeId o = 0; o < n_; ++o)
    for (NodeId d = 0; d < n_; ++d)
      if (o != d && counts_[index(o, d)] < required) return false;
  return true;
}

void DeliveryLedger::merge_from(const DeliveryLedger& other) {
  IHC_ENSURE(other.n_ == n_, "ledger merge needs matching node counts");
  IHC_ENSURE(other.granularity_ == granularity_,
             "ledger merge needs matching granularities");
  finish_ = std::max(finish_, other.finish_);
  total_ += other.total_;
  if (granularity_ == Granularity::kAggregate) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] = static_cast<std::uint16_t>(counts_[i] + other.counts_[i]);
    intact_counts_[i] =
        static_cast<std::uint16_t>(intact_counts_[i] + other.intact_counts_[i]);
  }
  if (granularity_ == Granularity::kFull) {
    for (std::size_t i = 0; i < full_.size(); ++i)
      full_[i].insert(full_[i].end(), other.full_[i].begin(),
                      other.full_[i].end());
  }
}

}  // namespace ihc
