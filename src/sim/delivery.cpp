#include "sim/delivery.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ihc {

DeliveryLedger::DeliveryLedger(NodeId node_count, Granularity granularity)
    : n_(node_count), granularity_(granularity) {
  const std::size_t pairs = static_cast<std::size_t>(n_) * n_;
  counts_.assign(pairs, 0);
  intact_counts_.assign(pairs, 0);
  if (granularity_ == Granularity::kFull) full_.resize(pairs);
}

void DeliveryLedger::reset(Granularity granularity) {
  granularity_ = granularity;
  // Drivers move the ledger into their AtaResult, so a pooled Network may
  // reset a moved-from ledger: restore the arrays when they are gone.
  const std::size_t pairs = static_cast<std::size_t>(n_) * n_;
  if (counts_.size() != pairs) {
    counts_.assign(pairs, 0);
    intact_counts_.assign(pairs, 0);
  } else {
    std::fill(counts_.begin(), counts_.end(), 0);
    std::fill(intact_counts_.begin(), intact_counts_.end(), 0);
  }
  if (granularity_ == Granularity::kFull) {
    full_.resize(counts_.size());
    for (auto& records : full_) records.clear();
  }
  finish_ = 0;
  total_ = 0;
}

void DeliveryLedger::record(NodeId origin, NodeId dest,
                            const CopyRecord& copy) {
  IHC_ENSURE(origin < n_ && dest < n_, "delivery endpoint out of range");
  const std::size_t i = index(origin, dest);
  ++counts_[i];
  if (copy.corrupted_by == kInvalidNode) ++intact_counts_[i];
  if (granularity_ == Granularity::kFull) full_[i].push_back(copy);
  finish_ = std::max(finish_, copy.time);
  ++total_;
}

std::uint32_t DeliveryLedger::copies(NodeId origin, NodeId dest) const {
  return counts_[index(origin, dest)];
}

std::uint32_t DeliveryLedger::intact_copies(NodeId origin,
                                            NodeId dest) const {
  return intact_counts_[index(origin, dest)];
}

const std::vector<CopyRecord>& DeliveryLedger::records(NodeId origin,
                                                       NodeId dest) const {
  IHC_ENSURE(granularity_ == Granularity::kFull,
             "full records require kFull granularity");
  return full_[index(origin, dest)];
}

bool DeliveryLedger::all_pairs_have(std::uint32_t required) const {
  for (NodeId o = 0; o < n_; ++o)
    for (NodeId d = 0; d < n_; ++d)
      if (o != d && counts_[index(o, d)] < required) return false;
  return true;
}

}  // namespace ihc
