/// \file fault.hpp
/// \brief Byzantine fault injection for the reliability experiments.
///
/// The paper's setting (Section I): up to t nodes may behave "in any manner
/// whatsoever".  The injector models the behaviours that matter for the
/// delivery machinery:
///   * Silent     - the node drops every packet it should relay;
///   * Corrupt    - the node alters the payload of every packet it relays;
///   * Random     - per-packet coin flip between dropping, corrupting and
///                  relaying faithfully (an intermittent fault, the case
///                  motivating distributed diagnosis [25]);
///   * Equivocate - the node relays faithfully but, as an *origin*, signs
///                  different values on different routes (a two-faced
///                  Byzantine source; only meaningful with signatures).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ihc {

enum class FaultMode : std::uint8_t {
  kSilent,
  kCorrupt,
  kRandom,
  kEquivocate,
  /// A slow (degraded) node: relays faithfully but every relay pays an
  /// extra fixed delay - a timing fault that harms latency, not
  /// correctness.
  kSlow,
};

/// What the injector decides for one relay operation.
enum class RelayAction : std::uint8_t { kFaithful, kDrop, kCorrupt, kDelay };

class FaultPlan {
 public:
  /// Every plan takes an explicit seed: a shared default would correlate
  /// the kRandom coin flips of independently built plans.  Derive one per
  /// plan (util/rng.hpp derive_seed) as the campaigns do.
  explicit FaultPlan(std::uint64_t seed) : rng_(seed) {}

  void add(NodeId node, FaultMode mode) { faults_[node] = mode; }
  [[nodiscard]] bool is_faulty(NodeId node) const {
    return faults_.contains(node);
  }
  /// The node's configured mode, or nullopt for a healthy node.  Lets
  /// callers inspect a fault without consuming kRandom RNG draws (which
  /// on_relay would).
  [[nodiscard]] std::optional<FaultMode> mode_of(NodeId node) const {
    const auto it = faults_.find(node);
    if (it == faults_.end()) return std::nullopt;
    return it->second;
  }

  /// Marks a directed link as failed: every packet that would cross it is
  /// lost (with its downstream deliveries).  Use both directions for a
  /// severed cable.
  void fail_link(LinkId link) { dead_links_.insert(link); }
  [[nodiscard]] bool link_failed(LinkId link) const {
    return dead_links_.contains(link);
  }
  [[nodiscard]] std::size_t failed_link_count() const {
    return dead_links_.size();
  }

  /// Extra relay delay applied by kSlow nodes (picoseconds).
  void set_slow_delay(std::int64_t delay_ps) { slow_delay_ = delay_ps; }
  [[nodiscard]] std::int64_t slow_delay() const { return slow_delay_; }
  [[nodiscard]] std::size_t fault_count() const { return faults_.size(); }
  [[nodiscard]] std::vector<NodeId> faulty_nodes() const;

  /// Decides the fate of a packet relayed through `node`.
  [[nodiscard]] RelayAction on_relay(NodeId node);

  /// Payload that faulty origin `node` presents on route `route` (models
  /// equivocation); honest value for non-equivocating nodes.
  [[nodiscard]] std::uint64_t origin_payload(NodeId node,
                                             std::uint64_t honest_value,
                                             std::uint32_t route) const;

 private:
  std::unordered_map<NodeId, FaultMode> faults_;
  std::unordered_set<LinkId> dead_links_;
  std::int64_t slow_delay_ = 0;
  SplitMix64 rng_;  // always seeded by the constructor
};

}  // namespace ihc
