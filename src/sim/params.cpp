// params.hpp is header-only; this translation unit exists so the build
// system has a stable anchor for the sim/ module.
#include "sim/params.hpp"
