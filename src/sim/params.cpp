#include "sim/params.hpp"

namespace ihc {

namespace {
bool g_engine_legacy = false;
}  // namespace

void set_default_engine_legacy(bool legacy) noexcept {
  g_engine_legacy = legacy;
}

bool default_engine_legacy() noexcept { return g_engine_legacy; }

}  // namespace ihc
