#include "sim/params.hpp"

namespace ihc {

namespace {
bool g_engine_legacy = false;
std::uint32_t g_shards = 0;
}  // namespace

void set_default_engine_legacy(bool legacy) noexcept {
  g_engine_legacy = legacy;
}

bool default_engine_legacy() noexcept { return g_engine_legacy; }

void set_default_shards(std::uint32_t shards) noexcept { g_shards = shards; }

std::uint32_t default_shards() noexcept { return g_shards; }

}  // namespace ihc
