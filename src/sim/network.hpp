/// \file network.hpp
/// \brief Discrete-event simulator of a point-to-point network with
/// store-and-forward, virtual cut-through, and wormhole switching.
///
/// The simulator executes *flows*: tree- or cycle-shaped disseminations of
/// one packet from an origin node.  It implements the paper's timing model
/// exactly (Section VI):
///
///  * source injection and every buffered relay cost
///      tau_S + len*alpha (+ queueing: natural transmitter contention plus
///      the fixed worst-case knob D);
///  * a cut-through relay advances the header by alpha; the packet body
///    pipelines behind it, so a chain of c cut-throughs after injection
///    delivers its tail at  tau_S + len*alpha + c*alpha  - reproducing the
///    IHC stage time tau_S + mu*alpha + (N-2)*alpha of Table II;
///  * every node a packet passes through receives a copy ("tee" operation
///    of the HARTS controller, Fig. 1) - recorded in the DeliveryLedger;
///  * each directed link has one transmitter; reservations serialize on a
///    busy-until time per link.  Virtual cut-through buffers a blocked
///    packet at the node; wormhole stalls it in the network, holding its
///    incoming link (packet-granularity approximation of flit stalling);
///  * optional background traffic loads every link to utilization rho;
///  * a FaultPlan may drop or corrupt packets at relay time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/cycle.hpp"
#include "graph/graph.hpp"
#include "sim/delivery.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/params.hpp"
#include "sim/routing.hpp"
#include "util/rng.hpp"

namespace ihc {

class FaultSchedule;

namespace obs {
class MetricsRegistry;
class Tracer;
}  // namespace obs

using FlowId = std::uint32_t;

/// Path along a directed Hamiltonian cycle: `hops` hops starting at the
/// cycle position `start` (the origin's position).
struct CyclePathRoute {
  const DirectedCycle* cycle = nullptr;
  std::uint32_t start = 0;
  std::uint32_t hops = 0;
};

/// Node of an explicit dissemination tree, parent-before-child order;
/// tree[0] is the source (parent == -1).  At a fork, at most one child
/// should be marked cut_through_preferred: it continues the incoming
/// pipeline (a *forward*); the others are *redirects* and always pay the
/// store-and-forward cost (Section V).
struct FlowTreeNode {
  NodeId node = kInvalidNode;
  std::int32_t parent = -1;
  bool cut_through_preferred = false;
};

struct FlowSpec {
  NodeId origin = kInvalidNode;   ///< ledger key: whose message this is
  std::uint16_t route_tag = 0;    ///< ledger key: which copy/route
  SimTime inject_time = 0;
  std::uint32_t length_units = 0; ///< packet length in FIFO units (0 -> mu)
  std::uint64_t payload = 0;
  std::uint64_t mac = 0;

  /// Exactly one of the two routes must be set.
  CyclePathRoute cycle_path;
  std::vector<FlowTreeNode> tree;

  /// Background ("normal task") traffic: reserves links and contends like
  /// any packet, but its deliveries are not recorded in the ledger and do
  /// not advance the finish time.
  bool background = false;
};

struct NetStats {
  std::uint64_t injections = 0;
  std::uint64_t cut_throughs = 0;
  std::uint64_t buffered_relays = 0;   ///< VCT buffering or forced SAF
  std::uint64_t wormhole_stalls = 0;
  std::uint64_t redirects = 0;         ///< tree-branch SAF sends
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_corruptions = 0;
  std::uint64_t link_drops = 0;        ///< packets lost to failed links
  std::uint64_t background_packets = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t events_processed = 0;  ///< event-queue pops in run()
  SimTime total_queue_wait = 0;        ///< natural contention wait
  SimTime finish_time = 0;             ///< latest delivery tail arrival
  double link_busy_time = 0.0;         ///< sum of reserved link time (ps)
  /// Largest number of packets simultaneously held in any single node's
  /// intermediate storage buffer (Fig. 7).  Zero in a contention-free IHC
  /// run - the paper's eta >= mu capacity argument, measured.
  std::uint32_t max_node_buffer_occupancy = 0;
};

class Network {
 public:
  /// \param g       host graph (must outlive the network)
  /// \param params  timing model; validated here
  /// \param granularity ledger detail level
  Network(const Graph& g, const NetworkParams& params,
          DeliveryLedger::Granularity granularity =
              DeliveryLedger::Granularity::kCounts);

  /// Returns the network to its freshly-constructed state - flows,
  /// events, statistics, ledger, background state, and attached hooks all
  /// cleared; RNG reseeded - while keeping every arena's storage (event
  /// buckets, per-link busy times, node buffers, ledger counters).  The
  /// overload takes new timing parameters (and ledger granularity) so a
  /// pooled network can serve successive campaign trials on the same
  /// graph without reallocating.
  void reset();
  void reset(const NetworkParams& params,
             DeliveryLedger::Granularity granularity =
                 DeliveryLedger::Granularity::kCounts);

  /// Shares a prebuilt routing table for multi-hop background traffic
  /// (not owned; may be nullptr; must be built over the same graph).
  /// RoutingTable is immutable after construction, so one instance may
  /// back any number of concurrent trials; without this the network
  /// builds a private table per instance.  Survives reset().
  void set_routes(const RoutingTable* routes) { shared_routes_ = routes; }

  /// Optional Byzantine fault plan (not owned; may be nullptr).
  void set_fault_plan(FaultPlan* plan) { faults_ = plan; }

  /// Optional dynamic fault schedule (not owned; may be nullptr),
  /// consulted at event time (picoseconds).  Composes with the static
  /// plan: while a node's schedule window is active it overrides the
  /// node's static mode; link death is the union of both sources.
  void set_fault_schedule(FaultSchedule* schedule) { schedule_ = schedule; }

  /// Attaches a structured-event tracer (not owned; nullptr detaches) and
  /// announces the topology's track layout.  With no tracer attached
  /// every instrumentation site is a branch-on-null no-op, so timing
  /// results are bit-identical to an uninstrumented build.
  void set_tracer(obs::Tracer* tracer);

  /// Attaches a metrics registry (not owned; nullptr detaches) and
  /// enables per-link busy-time accounting for flush_metrics().
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Exports the accumulated NetStats counters plus the per-link
  /// utilization histogram into the attached registry (no-op when none
  /// is attached).  Drivers call this once, after the last run().
  void flush_metrics();

  /// Registers a flow; events fire when run() is called.  Flows may be
  /// added between run() calls (stage barriers).
  FlowId add_flow(FlowSpec spec);

  /// Processes all pending events (plus background traffic while flow
  /// events remain).
  void run();

  [[nodiscard]] const NetStats& stats() const { return stats_; }
  [[nodiscard]] const DeliveryLedger& ledger() const { return ledger_; }
  [[nodiscard]] DeliveryLedger& ledger() { return ledger_; }
  [[nodiscard]] const Graph& graph() const { return *g_; }
  [[nodiscard]] const NetworkParams& params() const { return params_; }

  /// Mean utilization of all directed links over [0, finish_time].
  [[nodiscard]] double mean_link_utilization() const;

  /// Latest delivery time of one flow's packet (0 when it delivered
  /// nothing) - lets drivers implement per-cycle stage barriers.
  [[nodiscard]] SimTime flow_finish(FlowId flow) const {
    return flow_finish_.at(flow);
  }

  /// Completion hook: invoked (during run()) when a flow has finished,
  /// with the finish time.  A cycle-path flow finishes when its tail is
  /// delivered at the route's final node; a tree flow finishes when its
  /// last in-flight packet event drains (all branches delivered - or
  /// dropped by faults, so a faulty tree still reports completion of
  /// whatever survived).  The hook may add_flow() - this is how drivers
  /// implement asynchronous per-cycle stage progression (Section IV) and
  /// how the workload engine chains continuous broadcast sessions,
  /// without draining the event queue between stages.
  using CompletionHook = std::function<void(FlowId, SimTime)>;
  void set_completion_hook(CompletionHook hook) {
    completion_hook_ = std::move(hook);
  }

 private:
  enum class EventKind : std::uint8_t {
    kHeader,          // a flow packet's header reaches a route position
    kBackgroundLink,  // single-link background occupancy
    kBackgroundFlow,  // a node generates a multi-hop background packet
  };

  /// 24 bytes; `aux` is the corrupting relay for header events and the
  /// background link / source-node id for background events (a header
  /// never needs the latter, so the fields share a slot).  seq is a
  /// per-run counter; 32 bits cover > 4e9 events per trial, far beyond
  /// any simulated workload.
  struct Event {
    SimTime time;
    std::uint32_t seq;  // tie-break for determinism
    FlowId flow;
    std::uint32_t pos;  // route position (hop index / tree index)
    std::uint32_t aux;  // corrupted_by (header) / bg link or source (bg)
    EventKind kind;
  };

  const Graph* g_;
  NetworkParams params_;
  FaultPlan* faults_ = nullptr;
  FaultSchedule* schedule_ = nullptr;
  std::vector<FlowSpec> flows_;
  std::vector<SimTime> flow_finish_;  // last delivery per flow
  /// In-flight header events per foreground *tree* flow (0 for cycle
  /// flows, which detect completion positionally): when a tree flow's
  /// count returns to zero every branch has delivered or dropped, and
  /// the completion hook fires.
  std::vector<std::uint32_t> tree_outstanding_;
  std::vector<SimTime> busy_until_;
  CalendarQueue<Event> queue_;
  std::uint32_t seq_ = 0;
  std::uint64_t pending_foreground_events_ = 0;
  DeliveryLedger ledger_;
  NetStats stats_;
  SplitMix64 bg_rng_;
  CompletionHook completion_hook_;
  bool bg_started_ = false;
  std::uint64_t bg_alive_ = 0;  // generator events currently in the queue
  /// Multi-hop background routing: the shared table when one is attached,
  /// else a privately built one (kept across reset() - it depends only on
  /// the graph).  active_routes_ caches whichever is in use.
  const RoutingTable* shared_routes_ = nullptr;
  std::unique_ptr<RoutingTable> routes_;
  const RoutingTable* active_routes_ = nullptr;
  /// Flat (u, v) -> LinkId table replacing Graph::link's adjacency scan on
  /// the relay hot path: the shared routing table's when one is attached,
  /// else a privately built copy (graph-derived, so it survives reset()).
  /// Null for the legacy baseline engine (which keeps the seed's scan) and
  /// for graphs too large to tabulate.
  std::vector<LinkId> link_map_;
  const LinkId* link_flat_ = nullptr;
  double bg_mean_distance_ = 0.0;
  double bg_link_mean_gap_ = 0.0;     // hoisted single-link arrival mean
  std::vector<NodeId> bg_path_;       // scratch for path_into()
  /// Outstanding intermediate-buffer residencies per node: release times
  /// of packets currently stored (purged lazily in event-time order).
  std::vector<std::vector<SimTime>> node_buffer_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::vector<double> link_busy_;  ///< per-link reserved time (ps); only
                                   ///< accounted while a registry is attached

  void push_header(SimTime time, FlowId flow, std::uint32_t pos,
                   NodeId corrupted_by);
  void process_header(const Event& ev);
  void process_header_impl(const Event& ev);
  void process_background_link(const Event& ev);
  void process_background_flow(const Event& ev);
  void start_background_if_needed();
  /// Background arrivals stop when the foreground drains; when new flows
  /// arrive in a later run() the process must resume from the current
  /// simulated time - otherwise only the first stage of a multi-stage
  /// algorithm would see load.
  void restart_background_if_needed();
  void schedule_background_link(LinkId link, SimTime after);
  void schedule_background_flow(NodeId source, SimTime after);
  [[nodiscard]] SimTime background_flow_gap();

  [[nodiscard]] std::uint32_t flow_length(const FlowSpec& f) const {
    return f.length_units ? f.length_units : params_.mu;
  }

  void ensure_link_table();
  [[nodiscard]] LinkId link_between(NodeId u, NodeId v) const {
    if (link_flat_ == nullptr) return g_->link(u, v);
    return link_flat_[static_cast<std::size_t>(u) * g_->node_count() + v];
  }

  /// Store-and-forward transmission timing on one link.
  struct SafTiming {
    SimTime start;       ///< transmitter acquired (after queueing)
    SimTime header_out;  ///< header arrival at the far node
    SimTime tail;        ///< tail leaves the link (reservation end)
  };

  /// Reserves link l for a store-and-forward send of a packet that is
  /// ready at the sending node at `ready_time`.
  SafTiming send_saf(LinkId l, SimTime ready_time, std::uint32_t len);
  void reserve(LinkId l, SimTime from, SimTime until);

  /// Records that `node` holds a stored packet during [from, until];
  /// returns the node's buffer occupancy including this packet.
  std::uint32_t occupy_buffer(NodeId node, SimTime from, SimTime until);

  void deliver(FlowId flow, NodeId dest, SimTime header_time,
               std::uint32_t len, NodeId corrupted_by, std::uint32_t pos);
};

/// Exports one run's NetStats as `net.*` metrics (counters plus the
/// node-buffer high-watermark).  Shared by Network::flush_metrics() and
/// the analytic FRS runner, which fills a NetStats without a Network.
void export_net_stats(const NetStats& stats, obs::MetricsRegistry& metrics);

}  // namespace ihc
