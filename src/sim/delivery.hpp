/// \file delivery.hpp
/// \brief Ledger of packet deliveries: who received which copy of whose
/// message, when, and in what condition.
///
/// All reliability verdicts (majority voting, signed-message acceptance)
/// are computed from this ledger, never from algorithm-internal state, so
/// an algorithm cannot accidentally "self-certify" deliveries.
///
/// Three granularities:
///  * kCounts    - per (origin, dest) counters only; O(N^2) bytes, used
///    for the large timing runs;
///  * kFull      - every copy's payload/MAC/route/timestamp; used by the
///    fault-injection and voting experiments;
///  * kAggregate - totals and finish time only, O(1) bytes.  The only
///    granularity that fits million-node topologies (Q_20's N^2 pair
///    space would need terabytes), used by the parallel engine's
///    origin-limited scale trials (docs/PARALLEL.md).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sim/params.hpp"

namespace ihc {

struct CopyRecord {
  std::uint64_t payload = 0;
  std::uint64_t mac = 0;
  SimTime time = 0;
  std::uint16_t route = 0;
  NodeId corrupted_by = kInvalidNode;  ///< relay that tampered, if any
};

class DeliveryLedger {
 public:
  enum class Granularity { kCounts, kFull, kAggregate };

  DeliveryLedger() = default;
  DeliveryLedger(NodeId node_count, Granularity granularity);

  /// Forgets every recorded copy (and switches granularity) while keeping
  /// the flat counter arrays' storage - the arena-reuse path behind
  /// Network::reset().
  void reset(Granularity granularity);

  void record(NodeId origin, NodeId dest, const CopyRecord& copy);

  [[nodiscard]] NodeId node_count() const { return n_; }
  [[nodiscard]] Granularity granularity() const { return granularity_; }

  /// Number of copies dest received of origin's message.
  [[nodiscard]] std::uint32_t copies(NodeId origin, NodeId dest) const;

  /// Copies dest received whose relays did not tamper with them.
  [[nodiscard]] std::uint32_t intact_copies(NodeId origin, NodeId dest) const;

  /// Full records for a pair (kFull granularity only).
  [[nodiscard]] const std::vector<CopyRecord>& records(NodeId origin,
                                                       NodeId dest) const;

  /// Latest delivery time across all recorded copies (0 when empty).
  [[nodiscard]] SimTime finish_time() const { return finish_; }

  /// True when every ordered pair (origin != dest) has at least `required`
  /// copies recorded.
  [[nodiscard]] bool all_pairs_have(std::uint32_t required) const;

  [[nodiscard]] std::uint64_t total_copies() const { return total_; }

  /// Folds another ledger's recordings into this one (same node count and
  /// granularity required).  Used by the parallel engine: each shard
  /// records the deliveries of the nodes it owns into a private ledger,
  /// and the coordinator merges them after the run.  Because every
  /// (origin, dest) pair is recorded by exactly one shard (dest's owner),
  /// the merged kFull record lists are the shards' lists verbatim -
  /// already in canonical time order, independent of the shard count.
  void merge_from(const DeliveryLedger& other);

 private:
  NodeId n_ = 0;
  Granularity granularity_ = Granularity::kCounts;
  std::vector<std::uint16_t> counts_;         // per pair
  std::vector<std::uint16_t> intact_counts_;  // per pair
  std::vector<std::vector<CopyRecord>> full_;
  SimTime finish_ = 0;
  std::uint64_t total_ = 0;

  [[nodiscard]] std::size_t index(NodeId o, NodeId d) const {
    return static_cast<std::size_t>(o) * n_ + d;
  }
};

}  // namespace ihc
