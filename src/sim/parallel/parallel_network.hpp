/// \file parallel_network.hpp
/// \brief Conservative time-sharded parallel packet engine.
///
/// Partitions the network's nodes across worker shards (partition.hpp)
/// and advances simulated time in lookahead windows of width
/// W = min(alpha, tau_S): within window k = [k*W, (k+1)*W) every shard
/// drains its own calendar queue independently, because no event inside
/// the window can schedule a cross-shard event before (k+1)*W (every
/// inter-node hand-off costs at least W).  A barrier per window then
/// exchanges cross-shard events through mailboxes, applies wormhole
/// link holds, fires completion hooks, and picks the next non-empty
/// window from the global queue minimum - so empty windows are skipped
/// in O(shards), not simulated.
///
/// Determinism contract (docs/PARALLEL.md): all simulated results -
/// stats, ledger, flow finish times, trace streams, metrics - are
/// byte-identical for any shard count >= 1, including `--shards 1`,
/// which runs the same windowed schedule inline on the calling thread.
/// The three pillars:
///
///  1. canonical event keys (mailbox.hpp) replace the sequential
///     engine's push-order tie-break, so per-shard (time, key) pop order
///     composes into one global order independent of the partition;
///  2. all shared-state writes are either shard-local (a link's
///     transmitter is only reserved by its source-node's owner) or
///     commutative and applied at the barrier (wormhole in-link holds
///     take a max; completions are sorted by (finish time, flow) before
///     hooks fire);
///  3. background traffic draws from per-generator RNG streams seeded
///     from (params.seed, generator id) instead of one shared stream
///     consumed in pop order.
///
/// The windowed schedule is *semantically equivalent but not pop-order
/// identical* to the sequential Network under contention: wormhole
/// in-link holds land at the window barrier instead of instantly, hooks
/// fire at barriers, and background streams differ.  On dedicated
/// contention-free runs the windowed engine reproduces the sequential
/// engine's results exactly (asserted in tests/test_parallel_engine.cpp);
/// the seed goldens keep running the sequential Network unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/cycle.hpp"
#include "graph/graph.hpp"
#include "obs/prof/profiler.hpp"
#include "sim/delivery.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/parallel/mailbox.hpp"
#include "sim/parallel/partition.hpp"
#include "sim/params.hpp"
#include "sim/routing.hpp"
#include "util/rng.hpp"

namespace ihc {

class FaultSchedule;

namespace obs {
class MetricsRegistry;
class Tracer;
}  // namespace obs

/// Drop-in parallel counterpart of Network: same public surface, same
/// flow model (cycle paths and explicit trees), same timing rules.
/// params.shards (>= 1) sets the worker count; the graph partition and
/// all results are independent of it.
class ParallelNetwork {
 public:
  using CompletionHook = Network::CompletionHook;

  ParallelNetwork(const Graph& g, const NetworkParams& params,
                  DeliveryLedger::Granularity granularity =
                      DeliveryLedger::Granularity::kCounts);

  void set_routes(const RoutingTable* routes) { shared_routes_ = routes; }
  void set_fault_plan(FaultPlan* plan) { faults_ = plan; }
  void set_fault_schedule(FaultSchedule* schedule) { schedule_ = schedule; }
  void set_tracer(obs::Tracer* tracer);
  void set_metrics(obs::MetricsRegistry* metrics);
  void flush_metrics();

  FlowId add_flow(FlowSpec spec);
  void run();

  [[nodiscard]] const NetStats& stats() const { return stats_; }
  [[nodiscard]] const DeliveryLedger& ledger() const { return ledger_; }
  [[nodiscard]] DeliveryLedger& ledger() { return ledger_; }
  [[nodiscard]] const Graph& graph() const { return *g_; }
  [[nodiscard]] const NetworkParams& params() const { return params_; }
  [[nodiscard]] double mean_link_utilization() const;
  [[nodiscard]] SimTime flow_finish(FlowId flow) const {
    return flow_finish_.at(flow);
  }
  void set_completion_hook(CompletionHook hook) {
    completion_hook_ = std::move(hook);
  }

  // -- parallel-engine introspection ---------------------------------------
  [[nodiscard]] const ShardPartition& partition() const { return part_; }
  [[nodiscard]] std::uint32_t shard_count() const {
    return part_.shard_count();
  }
  /// Lookahead-window width W = min(alpha, tau_S), picoseconds.
  [[nodiscard]] SimTime window_width() const { return window_; }
  /// Barriers executed across all run() calls so far.
  [[nodiscard]] std::uint64_t window_count() const { return windows_; }

 private:
  /// One deferred tracer call, tagged with the canonical (event time,
  /// event key, emission index) of the event whose processing emitted
  /// it, so the coordinator can replay every shard's calls through the
  /// real Tracer in one global order.
  struct TraceCall {
    enum class Fn : std::uint8_t {
      kInjected, kAdvanced, kDelivered, kFault, kLinkDrop,
      kXmit, kStalled, kBuffered,
    };
    Fn fn;
    SimTime t0 = 0;
    SimTime t1 = 0;
    std::int64_t flow = 0;    // kUnset for flow-less background xmits
    std::uint64_t a = 0;      // node / link / origin
    std::uint64_t b = 0;      // pos / route / depth / len
    std::uint64_t c = 0;      // pos (secondary) / route
    std::uint64_t d = 0;      // pos (tertiary, delivered only)
    const char* label = nullptr;
    // canonical replay order:
    SimTime ev_time = 0;
    std::uint64_t key = 0;
    std::uint32_t sub = 0;
  };

  /// A finished flow: a cycle path whose tail was delivered at the route
  /// end, or a tree flow whose last in-flight event drained.  Hooks fire
  /// at the barrier, sorted by (finish time, flow id).
  struct Completion {
    SimTime at;
    FlowId flow;
  };

  /// Per-window in-flight accounting of one foreground tree flow on one
  /// shard: +1 per pushed event, -1 per consumed event; `tail` is the
  /// consumed event's tail time (ev.time + len*alpha, 0 for pushes).
  /// The coordinator folds all shards' deltas into tree_outstanding_;
  /// a flow whose balance returns to zero has fully drained.
  struct TreeDelta {
    FlowId flow;
    std::int32_t delta;
    SimTime tail;
  };

  /// Store-and-forward transmission timing on one link (the sequential
  /// engine's SafTiming, duplicated because Network keeps it private).
  struct SafTiming {
    SimTime start;
    SimTime header_out;
    SimTime tail;
  };

  struct Shard {
    CalendarQueue<PEvent> queue;
    NetStats stats;                         // merged + cleared per run()
    DeliveryLedger ledger;                  // merged + cleared per run()
    std::vector<SimTime> flow_finish;       // merged + cleared per run()
    std::vector<BgFlow> bg_arena;           // in-flight background flows
    std::vector<std::uint32_t> bg_free;     // arena freelist
    ShardMailbox mail;
    std::vector<std::pair<LinkId, SimTime>> link_holds;
    std::vector<Completion> completions;
    std::vector<TreeDelta> tree_deltas;
    std::int64_t fg_delta = 0;              // window's fg event-count change
    std::vector<TraceCall> trace;
    std::vector<NodeId> bg_path;            // scratch for path_into()
    std::uint64_t lifetime_events = 0;      // survives the per-run merge
    std::uint64_t idle_windows = 0;         // windows with zero pops
    std::uint64_t pops = 0;                 // scratch, per window
    std::uint32_t trace_sub = 0;            // scratch, per event
    bool bg_kept = false;                   // scratch, per arena-flow event

    // Wall-clock accounting, touched only while a WallProfiler is
    // installed (docs/PROFILING.md); never feeds simulated results.
    obs::prof::ShardWindowStats prof;       // reset per run()
    std::uint64_t prof_busy_total = 0;      // across runs (flush_metrics)
    std::uint64_t prof_barrier_total = 0;   // across runs (flush_metrics)
    std::uint64_t prof_window_busy = 0;     // scratch, per window
    std::uint64_t prof_events_base = 0;     // lifetime_events at run() start
    std::uint64_t prof_idle_base = 0;       // idle_windows at run() start

    Shard(SimTime width_hint, NodeId nodes,
          DeliveryLedger::Granularity granularity, std::uint32_t shards)
        : queue(width_hint), ledger(nodes, granularity), mail(shards) {}
  };

  /// What the header-processing core needs to know about a route,
  /// uniform over foreground FlowSpecs and arena background flows.
  struct RouteView {
    const FlowSpec* fg = nullptr;   // null for arena background flows
    const BgFlow* bg = nullptr;
    FlowId fg_id = 0;
    std::uint32_t arena_slot = 0;
    std::uint32_t len = 0;
    bool background = false;        // suppresses ledger/trace like Network
    bool is_tree = false;           // explicit foreground tree
    std::uint32_t hops = 0;         // cycle/bg-path relay horizon
  };

  const Graph* g_;
  NetworkParams params_;
  ShardPartition part_;
  SimTime window_;
  DeliveryLedger::Granularity granularity_;
  FaultPlan* faults_ = nullptr;
  FaultSchedule* schedule_ = nullptr;
  std::vector<FlowSpec> flows_;
  std::vector<SimTime> flow_finish_;
  std::vector<std::int64_t> tree_outstanding_;
  std::vector<SimTime> busy_until_;        // owner-shard written
  std::vector<std::vector<SimTime>> node_buffer_;  // owner-shard written
  DeliveryLedger ledger_;
  NetStats stats_;
  CompletionHook completion_hook_;
  const RoutingTable* shared_routes_ = nullptr;
  std::unique_ptr<RoutingTable> routes_;
  const RoutingTable* active_routes_ = nullptr;
  std::vector<LinkId> link_map_;
  const LinkId* link_flat_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::vector<double> link_busy_;          // owner-shard written
  /// Background generator state, indexed by generator id (link id in
  /// kSingleLink mode, source node in kMultiHopFlows mode); only the
  /// generator's owning shard ever touches its entry.
  std::vector<SplitMix64> bg_rng_;
  std::vector<std::uint64_t> bg_occurrence_;
  double bg_mean_distance_ = 0.0;
  double bg_link_mean_gap_ = 0.0;
  bool bg_started_ = false;
  std::uint64_t pending_fg_ = 0;   // fg header events queued, all shards
  std::uint64_t fg_snapshot_ = 0;  // pending_fg_ at the window start
  std::uint64_t windows_ = 0;
  SimTime window_end_ = 0;
  bool done_ = true;

  // Run-scoped wall-clock profiling state: prof_ caches the process
  // profiler for the duration of one run() (null = every prof site is a
  // branch); the counters accumulate coordinator-side host time and are
  // folded into a ParallelRunRecord by finalize_run().
  obs::prof::WallProfiler* prof_ = nullptr;
  std::uint64_t prof_coord_ns_ = 0;
  std::uint64_t prof_mailbox_ns_ = 0;
  std::uint64_t prof_replay_ns_ = 0;
  std::uint64_t prof_wmax_ns_ = 0;
  std::uint64_t prof_wmin_ns_ = 0;
  std::uint64_t prof_windows_base_ = 0;

  std::vector<Shard> shards_;

  // Coordinator scratch, reused across barriers to avoid churn.
  std::vector<Completion> tree_touch_;        // consumed-event tree deltas
  std::vector<Completion> tree_completions_;  // drained tree flows
  std::vector<Completion> fire_list_;
  std::vector<TraceCall> replay_;

  // -- worker side (one shard, inside a window) ----------------------------
  void run_window(std::uint32_t sid);
  void process_header(Shard& sh, std::uint32_t sid, const PEvent& ev);
  void process_header_impl(Shard& sh, std::uint32_t sid, const PEvent& ev,
                           const RouteView& view);
  void process_background_link(Shard& sh, const PEvent& ev);
  void process_background_flow(Shard& sh, const PEvent& ev);
  void schedule_background_link(Shard& sh, LinkId link, SimTime after);
  void schedule_background_flow(Shard& sh, NodeId source, SimTime after);
  [[nodiscard]] SimTime background_flow_gap(SplitMix64& rng);
  void push_header(Shard& sh, std::uint32_t sid, const RouteView& view,
                   SimTime time, std::uint32_t pos, NodeId corrupted_by);
  void reserve(Shard& sh, LinkId l, SimTime from, SimTime until);
  SafTiming send_saf(Shard& sh, LinkId l, SimTime ready_time,
                     std::uint32_t len);
  std::uint32_t occupy_buffer(Shard& sh, NodeId node, SimTime from,
                              SimTime until);
  void deliver(Shard& sh, const RouteView& view, const PEvent& ev,
               NodeId dest, NodeId corrupted_by);
  [[nodiscard]] NodeId route_node(const RouteView& view,
                                  std::uint32_t pos) const;
  [[nodiscard]] std::uint64_t event_key(const RouteView& view,
                                        std::uint32_t pos) const;
  [[nodiscard]] std::uint32_t alloc_bg_slot(Shard& sh);
  void record_trace(Shard& sh, const PEvent& ev, TraceCall call);

  // -- coordinator side (between windows) ----------------------------------
  void coordinate();
  void drain_mailboxes();
  void fold_accounting();
  void fire_completions();
  void replay_trace();
  void schedule_next_window();
  void start_background_if_needed();
  void restart_background_if_needed();
  void check_parallel_support() const;
  void finalize_run();
  void grow_flow_state();

  [[nodiscard]] std::uint32_t flow_length(const FlowSpec& f) const {
    return f.length_units ? f.length_units : params_.mu;
  }
  void ensure_link_table();
  [[nodiscard]] LinkId link_between(NodeId u, NodeId v) const {
    if (link_flat_ == nullptr) return g_->link(u, v);
    return link_flat_[static_cast<std::size_t>(u) * g_->node_count() + v];
  }
  /// Seed of background generator `gen`'s private stream: a mix of the
  /// run seed and the generator id, so streams are mutually independent
  /// and identical for every shard count.
  [[nodiscard]] std::uint64_t generator_seed(std::uint32_t gen) const {
    return mix64(params_.seed ^
                 (0xd1342543de82ef95ULL *
                  (static_cast<std::uint64_t>(gen) + 1)));
  }
};

}  // namespace ihc
