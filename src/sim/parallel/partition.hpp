/// \file partition.hpp
/// \brief Static node partition and lookahead-window math for the
/// conservative time-sharded parallel engine (docs/PARALLEL.md).
///
/// Nodes are split into contiguous id blocks, one per shard; a directed
/// link belongs to the shard that owns its *source* node, because only
/// events processed at the source ever reserve that link's transmitter.
/// The block map is a pure function of (node_count, shard_count), so the
/// ownership of every node and link - and with it the canonical event
/// order - is identical however many worker threads actually run.
///
/// The lookahead window W is the minimum simulated-time distance between
/// an event at one node and any event it can schedule at a *different*
/// node.  In the paper's timing model every inter-node hand-off costs at
/// least one of:
///
///   * a cut-through relay:      alpha                     (>= alpha)
///   * a wormhole stall:         busy wait + alpha         (>= alpha)
///   * an injection or SAF hop:  tau_S (+ len*alpha, ...)  (>= tau_S)
///
/// so W = min(alpha, tau_S) is a safe lookahead: every event a shard
/// processes inside window k = [k*W, (k+1)*W) schedules cross-shard
/// events no earlier than (k+1)*W, and a barrier per window suffices for
/// conservative synchronization.  tau_S = 0 would give zero injection
/// lookahead, so the parallel engine requires tau_S > 0.
#pragma once

#include <cstdint>
#include <utility>

#include "graph/graph.hpp"
#include "sim/params.hpp"
#include "util/error.hpp"

namespace ihc {

class ShardPartition {
 public:
  /// \param g       host graph (must outlive the partition)
  /// \param shards  worker count, in [1, min(1024, node_count)]
  ShardPartition(const Graph& g, std::uint32_t shards)
      : g_(&g), shards_(shards), nodes_(g.node_count()) {
    require(shards >= 1, "shard count must be at least 1");
    require(shards <= nodes_, "more shards than nodes");
  }

  [[nodiscard]] std::uint32_t shard_count() const { return shards_; }

  /// Owning shard of a node: contiguous blocks of floor/ceil(N/S) ids.
  [[nodiscard]] std::uint32_t owner(NodeId v) const {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(v) * shards_) / nodes_);
  }

  /// Owning shard of a directed link: the shard of its source node (the
  /// only node whose events reserve this transmitter).
  [[nodiscard]] std::uint32_t link_owner(LinkId l) const {
    return owner(g_->link_source(l));
  }

  /// Node-id range [first, last) owned by shard s.  The first node of
  /// shard s is the smallest v with v*S >= s*N, i.e. ceil(s*N/S).
  [[nodiscard]] std::pair<NodeId, NodeId> node_range(std::uint32_t s) const {
    const auto lo = static_cast<NodeId>(
        (static_cast<std::uint64_t>(s) * nodes_ + shards_ - 1) / shards_);
    const auto hi = static_cast<NodeId>(
        (static_cast<std::uint64_t>(s + 1) * nodes_ + shards_ - 1) / shards_);
    return {lo, hi};
  }

 private:
  const Graph* g_;
  std::uint32_t shards_;
  NodeId nodes_;
};

/// Conservative lookahead window width for the given timing parameters:
/// min(alpha, tau_S).  Requires tau_S > 0 (see file comment).
[[nodiscard]] inline SimTime lookahead_window(const NetworkParams& p) {
  require(p.tau_s > 0,
          "the parallel engine needs tau_s > 0 for a positive lookahead");
  return p.alpha < p.tau_s ? p.alpha : p.tau_s;
}

}  // namespace ihc
