#include "sim/parallel/parallel_network.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <exception>
#include <optional>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/fault_schedule.hpp"
#include "util/error.hpp"

namespace ihc {

namespace {

/// Same bucket-width policy as the sequential Network: alpha/8, rounded
/// up to a power of two by the queue (see docs/PERFORMANCE.md).
constexpr SimTime bucket_width_hint(const NetworkParams& p) {
  return p.alpha / 8;
}

/// The relay action a fault mode implies, mirroring FaultPlan::on_relay
/// and FaultSchedule::on_relay without touching their RNG.  kRandom's
/// coin flips are consumed in relay-processing order - well-defined
/// sequentially, not partition-invariant - so the parallel engine
/// rejects kRandom up front (check_parallel_support) and every mode
/// reaching this point maps statically.
RelayAction action_of(FaultMode mode) {
  switch (mode) {
    case FaultMode::kSilent:
      return RelayAction::kDrop;
    case FaultMode::kCorrupt:
      return RelayAction::kCorrupt;
    case FaultMode::kEquivocate:
      return RelayAction::kFaithful;
    case FaultMode::kSlow:
      return RelayAction::kDelay;
    case FaultMode::kRandom:
      break;
  }
  IHC_ENSURE(false, "kRandom fault reached the parallel relay path");
  return RelayAction::kFaithful;
}

}  // namespace

ParallelNetwork::ParallelNetwork(const Graph& g, const NetworkParams& params,
                                 DeliveryLedger::Granularity granularity)
    : g_(&g),
      params_(params),
      part_(g, std::min<std::uint32_t>(std::max<std::uint32_t>(params.shards, 1),
                                       g.node_count())),
      window_(lookahead_window(params_)),
      granularity_(granularity),
      busy_until_(g.link_count(), 0),
      node_buffer_(g.node_count()),
      ledger_(g.node_count(), granularity) {
  params_.validate();
  const SimTime width = bucket_width_hint(params_);
  shards_.reserve(part_.shard_count());
  for (std::uint32_t s = 0; s < part_.shard_count(); ++s)
    shards_.emplace_back(width, g.node_count(), granularity,
                         part_.shard_count());
}

void ParallelNetwork::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) tracer_->announce_topology(*g_);
}

void ParallelNetwork::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ != nullptr && link_busy_.empty())
    link_busy_.assign(g_->link_count(), 0.0);
}

void ParallelNetwork::flush_metrics() {
  if (metrics_ == nullptr) return;
  export_net_stats(stats_, *metrics_);
  if (stats_.finish_time > 0) {
    const auto horizon = static_cast<double>(stats_.finish_time);
    for (LinkId l = 0; l < g_->link_count(); ++l)
      metrics_->observe("net.link_utilization", link_busy_[l] / horizon);
  }
  // Per-shard load balance (docs/PARALLEL.md): events each shard
  // processed, windows it sat idle in, and the barrier count.
  for (const Shard& sh : shards_) {
    metrics_->observe("shard.events",
                      static_cast<double>(sh.lifetime_events));
    metrics_->observe("shard.stalls", static_cast<double>(sh.idle_windows));
  }
  metrics_->count("shard.window_count", static_cast<std::int64_t>(windows_));
  if (obs::prof::global_profiler() != nullptr) {
    // Host-time counters (docs/PROFILING.md): emitted only while a
    // profiler is installed, so unprofiled reports stay byte-identical.
    for (const Shard& sh : shards_) {
      metrics_->observe("shard.busy_ns",
                        static_cast<double>(sh.prof_busy_total));
      metrics_->observe("shard.barrier_wait_ns",
                        static_cast<double>(sh.prof_barrier_total));
    }
  }
}

void ParallelNetwork::ensure_link_table() {
  // Same policy as the sequential engine, minus its legacy-baseline
  // escape: the flat table is bounded at 4 MiB, huge graphs (Q_20) fall
  // back to Graph::link's adjacency scan.
  if (link_flat_ != nullptr) return;
  if (shared_routes_ != nullptr) {
    link_flat_ = shared_routes_->link_table();
    return;
  }
  constexpr std::size_t kMaxEntries = std::size_t{1} << 20;
  const std::size_t n = g_->node_count();
  if (n * n > kMaxEntries) return;
  if (link_map_.empty()) {
    link_map_.assign(n * n, kInvalidLink);
    for (LinkId l = 0; l < g_->link_count(); ++l)
      link_map_[static_cast<std::size_t>(g_->link_source(l)) * n +
                g_->link_target(l)] = l;
  }
  link_flat_ = link_map_.data();
}

void ParallelNetwork::check_parallel_support() const {
  if (faults_ != nullptr) {
    for (const NodeId v : faults_->faulty_nodes())
      require(faults_->mode_of(v) != FaultMode::kRandom,
              "kRandom faults draw their RNG in relay order and cannot run "
              "on the parallel engine; use the sequential engine "
              "(--shards 0)");
  }
  if (schedule_ != nullptr)
    require(!schedule_->uses_random(),
            "kRandom fault windows draw their RNG in relay order and "
            "cannot run on the parallel engine; use the sequential engine "
            "(--shards 0)");
}

FlowId ParallelNetwork::add_flow(FlowSpec spec) {
  require(spec.origin < g_->node_count(), "flow origin out of range");
  const bool has_tree = !spec.tree.empty();
  const bool has_cycle = spec.cycle_path.cycle != nullptr;
  require(has_tree != has_cycle,
          "a flow needs exactly one route (tree or cycle path)");
  if (has_tree) {
    require(spec.tree[0].parent == -1 && spec.tree[0].node == spec.origin,
            "tree root must be the origin");
    for (std::size_t i = 1; i < spec.tree.size(); ++i) {
      require(spec.tree[i].parent >= 0 &&
                  static_cast<std::size_t>(spec.tree[i].parent) < i,
              "tree must be in parent-before-child order");
    }
  } else {
    require(spec.cycle_path.hops < spec.cycle_path.cycle->length(),
            "cycle path longer than the cycle");
    require(spec.cycle_path.cycle->at(spec.cycle_path.start) == spec.origin,
            "cycle path must start at the origin");
  }
  const auto id = static_cast<FlowId>(flows_.size());
  flows_.push_back(std::move(spec));
  flow_finish_.push_back(0);
  tree_outstanding_.push_back(0);
  const FlowSpec& f = flows_.back();
  // The injection event: position 0 at the origin, pushed straight into
  // the owning shard's queue.  add_flow only runs between windows (from
  // drivers before run(), or from a completion hook at a barrier), so
  // the push is race-free; the canonical key makes its eventual pop
  // position independent of when it was pushed.
  Shard& sh = shards_[part_.owner(f.origin)];
  sh.queue.push(PEvent{f.inject_time, fg_event_key(id, 0), id, 0,
                       kInvalidNode, PEventKind::kHeader, false});
  if (!f.background) {
    ++pending_fg_;
    if (!f.tree.empty()) ++tree_outstanding_[id];
  }
  return id;
}

// ---------------------------------------------------------------------------
// Worker side: one shard draining its queue inside one lookahead window.
// ---------------------------------------------------------------------------

void ParallelNetwork::run_window(std::uint32_t sid) {
  Shard& sh = shards_[sid];
  const std::uint64_t prof_t0 =
      prof_ != nullptr ? obs::prof::now_ns() : 0;
  sh.pops = 0;
  PEvent ev;
  while (sh.queue.pop_min_before(window_end_, ev)) {
    ++sh.pops;
    ++sh.stats.events_processed;
    switch (ev.kind) {
      case PEventKind::kBackgroundLink:
        // The foreground gate is the window-start snapshot, uniform for
        // every shard; a generator popped with no foreground left does
        // not re-arm and so dies individually.
        if (fg_snapshot_ > 0) process_background_link(sh, ev);
        break;
      case PEventKind::kBackgroundFlow:
        if (fg_snapshot_ > 0) process_background_flow(sh, ev);
        break;
      case PEventKind::kHeader:
        process_header(sh, sid, ev);
        break;
    }
  }
  sh.lifetime_events += sh.pops;
  if (sh.pops == 0) ++sh.idle_windows;
  if (prof_ != nullptr) {
    const std::uint64_t busy = obs::prof::now_ns() - prof_t0;
    sh.prof.busy_ns += busy;
    // The coordinator reads this window's scratch at the barrier for the
    // per-window imbalance integral; the barrier orders the accesses.
    sh.prof_window_busy = busy;
  }
}

NodeId ParallelNetwork::route_node(const RouteView& view,
                                   std::uint32_t pos) const {
  if (view.bg != nullptr) return view.bg->path[pos];
  const FlowSpec& f = *view.fg;
  if (!f.tree.empty()) return f.tree[pos].node;
  const auto& cp = f.cycle_path;
  return cp.cycle->at((cp.start + pos) % cp.cycle->length());
}

std::uint64_t ParallelNetwork::event_key(const RouteView& view,
                                         std::uint32_t pos) const {
  if (view.bg != nullptr) {
    IHC_ENSURE(pos < (1u << 12), "background path exceeds the key space");
    return view.bg->key_base | pos;
  }
  return fg_event_key(view.fg_id, pos);
}

std::uint32_t ParallelNetwork::alloc_bg_slot(Shard& sh) {
  if (!sh.bg_free.empty()) {
    const std::uint32_t slot = sh.bg_free.back();
    sh.bg_free.pop_back();
    return slot;
  }
  sh.bg_arena.emplace_back();
  return static_cast<std::uint32_t>(sh.bg_arena.size() - 1);
}

void ParallelNetwork::record_trace(Shard& sh, const PEvent& ev,
                                   TraceCall call) {
  if (tracer_ == nullptr) return;
  call.ev_time = ev.time;
  call.key = ev.seq;
  call.sub = sh.trace_sub++;
  sh.trace.push_back(call);
}

void ParallelNetwork::reserve(Shard& sh, LinkId l, SimTime from,
                              SimTime until) {
  IHC_ENSURE(from >= busy_until_[l], "link reservation overlaps");
  busy_until_[l] = until;
  sh.stats.link_busy_time += static_cast<double>(until - from);
  if (!link_busy_.empty()) link_busy_[l] += static_cast<double>(until - from);
}

ParallelNetwork::SafTiming ParallelNetwork::send_saf(Shard& sh, LinkId l,
                                                     SimTime ready_time,
                                                     std::uint32_t len) {
  const SimTime start =
      std::max(ready_time, busy_until_[l]) + params_.queueing_delay;
  sh.stats.total_queue_wait += start - params_.queueing_delay - ready_time;
  const SimTime header_out = start + params_.tau_s;
  const SimTime tail = header_out + static_cast<SimTime>(len) * params_.alpha;
  reserve(sh, l, start, tail);
  return SafTiming{start, header_out, tail};
}

std::uint32_t ParallelNetwork::occupy_buffer(Shard& sh, NodeId node,
                                             SimTime from, SimTime until) {
  auto& held = node_buffer_[node];
  std::erase_if(held, [from](SimTime release) { return release <= from; });
  held.push_back(until);
  const auto depth = static_cast<std::uint32_t>(held.size());
  sh.stats.max_node_buffer_occupancy =
      std::max(sh.stats.max_node_buffer_occupancy, depth);
  return depth;
}

void ParallelNetwork::deliver(Shard& sh, const RouteView& view,
                              const PEvent& ev, NodeId dest,
                              NodeId corrupted_by) {
  if (view.background) return;  // normal-task traffic is not broadcast state
  const FlowSpec& f = *view.fg;
  CopyRecord copy;
  copy.payload = corrupted_by == kInvalidNode
                     ? f.payload
                     : f.payload ^ 0xC0DEC0DEDEADBEEFULL;
  copy.mac = f.mac;
  copy.time = ev.time + static_cast<SimTime>(view.len) * params_.alpha;
  copy.route = f.route_tag;
  copy.corrupted_by = corrupted_by;
  sh.ledger.record(f.origin, dest, copy);
  record_trace(sh, ev,
               {.fn = TraceCall::Fn::kDelivered,
                .t0 = copy.time,
                .flow = static_cast<std::int64_t>(view.fg_id),
                .a = dest,
                .b = f.origin,
                .c = f.route_tag,
                .d = ev.pos});
  ++sh.stats.deliveries;
  sh.stats.finish_time = std::max(sh.stats.finish_time, copy.time);
  sh.flow_finish[view.fg_id] = std::max(sh.flow_finish[view.fg_id], copy.time);
}

void ParallelNetwork::process_header(Shard& sh, std::uint32_t sid,
                                     const PEvent& ev) {
  RouteView view;
  if (ev.arena_flow) {
    view.bg = &sh.bg_arena[ev.flow];
    view.arena_slot = ev.flow;
    view.len = view.bg->len;
    view.background = true;
    view.hops = static_cast<std::uint32_t>(view.bg->path.size()) - 1;
    sh.bg_kept = false;
  } else {
    const FlowSpec& f = flows_[ev.flow];
    view.fg = &f;
    view.fg_id = ev.flow;
    view.len = flow_length(f);
    view.background = f.background;
    view.is_tree = !f.tree.empty();
    view.hops = view.is_tree ? 0 : f.cycle_path.hops;
    if (!f.background) {
      --sh.fg_delta;
      // Tree flows detect completion by event drain: this event is
      // consumed now, onward sends record +1 deltas in push_header, and
      // the coordinator folds the balance at the barrier.
      if (view.is_tree)
        sh.tree_deltas.push_back(TreeDelta{
            ev.flow, -1,
            ev.time + static_cast<SimTime>(view.len) * params_.alpha});
    }
  }
  sh.trace_sub = 0;
  process_header_impl(sh, sid, ev, view);
  // A background path flow keeps exactly one event in flight, so a slot
  // whose event produced no local continuation (it crossed a shard, was
  // dropped, or reached the path end) is dead.
  if (ev.arena_flow && !sh.bg_kept) {
    sh.bg_arena[ev.flow].path.clear();
    sh.bg_free.push_back(ev.flow);
  }
}

void ParallelNetwork::process_header_impl(Shard& sh, std::uint32_t sid,
                                          const PEvent& ev,
                                          const RouteView& view) {
  const std::uint32_t len = view.len;
  const NodeId here = route_node(view, ev.pos);
  // Arena-flow xmits carry no flow id: the slot is shard-local and would
  // leak partition layout into the trace (docs/PARALLEL.md).
  const std::int64_t xmit_flow = view.bg != nullptr
                                     ? obs::TraceEvent::kUnset
                                     : static_cast<std::int64_t>(view.fg_id);
  NodeId corrupted_by = ev.aux;
  SimTime slow_penalty = 0;  // extra relay delay of a kSlow node

  if (ev.pos > 0) {
    if (!view.background)
      record_trace(sh, ev,
                   {.fn = TraceCall::Fn::kAdvanced,
                    .t0 = ev.time,
                    .flow = static_cast<std::int64_t>(view.fg_id),
                    .a = here,
                    .b = ev.pos});

    // Tee: every visited node receives a copy.
    deliver(sh, view, ev, here, corrupted_by);

    // Fault behaviour applies to the relay operation at this node.  An
    // active schedule window overrides the node's static mode.  The
    // action derives from the mode alone (action_of) - kRandom, the one
    // mode that draws, was rejected before the run.
    RelayAction action = RelayAction::kFaithful;
    std::int64_t delay = 0;
    std::optional<FaultMode> mode;
    if (schedule_ != nullptr) mode = schedule_->mode_at(here, ev.time);
    if (mode.has_value()) {
      action = action_of(*mode);
      delay = schedule_->slow_delay();
    } else if (faults_ != nullptr && faults_->is_faulty(here)) {
      action = action_of(*faults_->mode_of(here));
      delay = faults_->slow_delay();
    }
    if (action == RelayAction::kDrop) {
      if (!view.background)
        record_trace(sh, ev,
                     {.fn = TraceCall::Fn::kFault,
                      .t0 = ev.time,
                      .flow = static_cast<std::int64_t>(view.fg_id),
                      .a = here,
                      .b = ev.pos,
                      .label = "drop"});
      ++sh.stats.fault_drops;
      return;
    }
    if (action == RelayAction::kCorrupt && corrupted_by == kInvalidNode) {
      if (!view.background)
        record_trace(sh, ev,
                     {.fn = TraceCall::Fn::kFault,
                      .t0 = ev.time,
                      .flow = static_cast<std::int64_t>(view.fg_id),
                      .a = here,
                      .b = ev.pos,
                      .label = "corrupt"});
      ++sh.stats.fault_corruptions;
      corrupted_by = here;
    }
    if (action == RelayAction::kDelay) {
      if (!view.background)
        record_trace(sh, ev,
                     {.fn = TraceCall::Fn::kFault,
                      .t0 = ev.time,
                      .flow = static_cast<std::int64_t>(view.fg_id),
                      .a = here,
                      .b = ev.pos,
                      .label = "delay"});
      slow_penalty = delay;
    }
  } else {
    // A degraded (kSlow) node's *origin* transmissions pay the same
    // penalty as its relays; only the mode is inspected.
    std::int64_t origin_delay = 0;
    if (schedule_ != nullptr &&
        schedule_->mode_at(here, ev.time) == FaultMode::kSlow)
      origin_delay = schedule_->slow_delay();
    else if (faults_ != nullptr && faults_->mode_of(here) == FaultMode::kSlow)
      origin_delay = faults_->slow_delay();
    if (origin_delay > 0) {
      if (!view.background)
        record_trace(sh, ev,
                     {.fn = TraceCall::Fn::kFault,
                      .t0 = ev.time,
                      .flow = static_cast<std::int64_t>(view.fg_id),
                      .a = here,
                      .b = ev.pos,
                      .label = "delay"});
      slow_penalty = origin_delay;
    }
  }

  // Onward sends - a line-by-line mirror of the sequential relay, with
  // two deviations: wormhole in-link holds are deferred to the barrier
  // (they cross shard ownership), and trace calls are buffered.
  const bool force_saf = params_.switching == Switching::kStoreAndForward;
  auto relay = [&](NodeId next, std::uint32_t next_pos, bool ct_allowed,
                   LinkId in_link) {
    const LinkId l = link_between(here, next);
    if ((faults_ != nullptr && faults_->link_failed(l)) ||
        (schedule_ != nullptr && schedule_->link_dead(l, ev.time))) {
      if (!view.background)
        record_trace(sh, ev,
                     {.fn = TraceCall::Fn::kLinkDrop,
                      .t0 = ev.time,
                      .flow = static_cast<std::int64_t>(view.fg_id),
                      .a = here,
                      .b = l,
                      .c = ev.pos});
      ++sh.stats.link_drops;
      return;
    }
    const bool injection = ev.pos == 0;
    if (injection) {
      ++sh.stats.injections;
      const SafTiming t = send_saf(sh, l, ev.time + slow_penalty, len);
      if (!view.background)
        record_trace(sh, ev,
                     {.fn = TraceCall::Fn::kInjected,
                      .t0 = ev.time,
                      .flow = static_cast<std::int64_t>(view.fg_id),
                      .a = view.fg->origin,
                      .b = view.fg->route_tag,
                      .c = len});
      record_trace(sh, ev,
                   {.fn = TraceCall::Fn::kXmit,
                    .t0 = t.start,
                    .t1 = t.tail,
                    .flow = xmit_flow,
                    .a = l,
                    .b = next_pos,
                    .label = view.background ? "background" : "inject"});
      push_header(sh, sid, view, t.header_out, next_pos, corrupted_by);
      return;
    }
    if (ct_allowed && !force_saf && slow_penalty == 0) {
      const SimTime header_ready = ev.time + params_.alpha;
      if (busy_until_[l] <= header_ready) {
        ++sh.stats.cut_throughs;
        const SimTime tail =
            header_ready + static_cast<SimTime>(len) * params_.alpha;
        reserve(sh, l, header_ready, tail);
        record_trace(sh, ev,
                     {.fn = TraceCall::Fn::kXmit,
                      .t0 = header_ready,
                      .t1 = tail,
                      .flow = xmit_flow,
                      .a = l,
                      .b = next_pos,
                      .label =
                          view.background ? "background" : "cut_through"});
        push_header(sh, sid, view, header_ready, next_pos, corrupted_by);
        return;
      }
      if (params_.switching == Switching::kWormhole) {
        // Stall in the network: the header waits for the transmitter;
        // the incoming link stays held until the tail can move on.  The
        // hold lands on another shard's link, so it is collected here
        // and applied at the barrier (max is commutative, so the merged
        // result is shard-count-invariant).
        ++sh.stats.wormhole_stalls;
        const SimTime start = busy_until_[l];
        sh.stats.total_queue_wait += start - header_ready;
        const SimTime out = start + params_.alpha;
        const SimTime tail = out + static_cast<SimTime>(len) * params_.alpha;
        reserve(sh, l, start, tail);
        if (!view.background)
          record_trace(sh, ev,
                       {.fn = TraceCall::Fn::kStalled,
                        .t0 = header_ready,
                        .t1 = start,
                        .flow = static_cast<std::int64_t>(view.fg_id),
                        .a = here});
        record_trace(sh, ev,
                     {.fn = TraceCall::Fn::kXmit,
                      .t0 = start,
                      .t1 = tail,
                      .flow = xmit_flow,
                      .a = l,
                      .b = next_pos,
                      .label = view.background ? "background" : "stall"});
        if (in_link != kInvalidLink) sh.link_holds.emplace_back(in_link, tail);
        push_header(sh, sid, view, out, next_pos, corrupted_by);
        return;
      }
    }
    // Buffered relay (VCT blocking, forced SAF, or a tree redirect).
    ++sh.stats.buffered_relays;
    const SimTime stored =
        ev.time + static_cast<SimTime>(len) * params_.alpha + slow_penalty;
    const SafTiming t = send_saf(sh, l, stored, len);
    const std::uint32_t depth = occupy_buffer(sh, here, stored, t.tail);
    if (!view.background)
      record_trace(sh, ev,
                   {.fn = TraceCall::Fn::kBuffered,
                    .t0 = stored,
                    .t1 = t.tail,
                    .flow = static_cast<std::int64_t>(view.fg_id),
                    .a = here,
                    .b = depth});
    record_trace(sh, ev,
                 {.fn = TraceCall::Fn::kXmit,
                  .t0 = t.start,
                  .t1 = t.tail,
                  .flow = xmit_flow,
                  .a = l,
                  .b = next_pos,
                  .label = view.background ? "background" : "saf"});
    push_header(sh, sid, view, t.header_out, next_pos, corrupted_by);
  };

  if (view.is_tree) {
    const FlowSpec& f = *view.fg;
    for (std::uint32_t c = ev.pos + 1; c < f.tree.size(); ++c) {
      if (f.tree[c].parent != static_cast<std::int32_t>(ev.pos)) continue;
      const bool ct = f.tree[c].cut_through_preferred;
      if (!ct && ev.pos != 0) ++sh.stats.redirects;
      LinkId in_link = kInvalidLink;
      if (ev.pos > 0) {
        const NodeId parent_node =
            f.tree[static_cast<std::size_t>(f.tree[ev.pos].parent)].node;
        in_link = link_between(parent_node, here);
      }
      relay(f.tree[c].node, c, ct, in_link);
    }
  } else if (view.bg != nullptr) {
    // Linear background path; mirrors the path-shaped tree the
    // sequential engine builds (first hop injected, later hops
    // cut-through preferred).
    if (ev.pos < view.hops) {
      const NodeId next = view.bg->path[ev.pos + 1];
      LinkId in_link = kInvalidLink;
      if (ev.pos > 0) in_link = link_between(view.bg->path[ev.pos - 1], here);
      relay(next, ev.pos + 1, /*ct_allowed=*/ev.pos > 0, in_link);
    }
  } else {
    const auto& cp = view.fg->cycle_path;
    if (ev.pos < cp.hops) {
      const NodeId next =
          cp.cycle->at((cp.start + ev.pos + 1) % cp.cycle->length());
      LinkId in_link = kInvalidLink;
      if (ev.pos > 0) {
        const NodeId prev_node =
            cp.cycle->at((cp.start + ev.pos - 1) % cp.cycle->length());
        in_link = link_between(prev_node, here);
      }
      relay(next, ev.pos + 1, /*ct_allowed=*/true, in_link);
    } else if (!view.background) {
      // Tail delivered at the route's end: complete.  The hook fires at
      // the barrier, in (finish, flow) order across all shards.
      sh.completions.push_back(Completion{
          ev.time + static_cast<SimTime>(len) * params_.alpha, view.fg_id});
    }
  }
}

void ParallelNetwork::push_header(Shard& sh, std::uint32_t sid,
                                  const RouteView& view, SimTime time,
                                  std::uint32_t pos, NodeId corrupted_by) {
  const NodeId dest = route_node(view, pos);
  const std::uint32_t dst = part_.owner(dest);
  const PEvent ev{time,
                  event_key(view, pos),
                  view.bg != nullptr ? view.arena_slot : view.fg_id,
                  pos,
                  corrupted_by,
                  PEventKind::kHeader,
                  view.bg != nullptr};
  if (view.fg != nullptr && !view.background) {
    ++sh.fg_delta;
    if (view.is_tree) sh.tree_deltas.push_back(TreeDelta{view.fg_id, 1, 0});
  }
  if (dst == sid) {
    sh.queue.push(ev);
    if (view.bg != nullptr) sh.bg_kept = true;
    return;
  }
  // Conservative-lookahead invariant: every relay advances simulated
  // time by at least W, so a cross-shard event always lands at or past
  // the receiver's window end.
  IHC_ENSURE(time >= window_end_,
             "cross-shard event violates the lookahead window");
  RemoteMsg msg;
  msg.ev = ev;
  // An arena flow travels whole: the spec moves into the mailbox (the
  // route was already read above) and the sender's slot is freed by
  // process_header once this event is fully handled.
  if (view.bg != nullptr) msg.spec = std::move(sh.bg_arena[view.arena_slot]);
  sh.mail.send(dst, std::move(msg));
}

// ---------------------------------------------------------------------------
// Background traffic: per-generator Poisson streams.
// ---------------------------------------------------------------------------

void ParallelNetwork::start_background_if_needed() {
  if (bg_started_ || params_.rho <= 0.0) return;
  bg_started_ = true;
  bg_link_mean_gap_ = static_cast<double>(params_.background_mu) *
                      static_cast<double>(params_.alpha) / params_.rho;
  const bool multihop =
      params_.background_mode == BackgroundMode::kMultiHopFlows;
  if (multihop) {
    active_routes_ = shared_routes_;
    if (active_routes_ == nullptr) {
      if (!routes_) routes_ = std::make_unique<RoutingTable>(*g_);
      active_routes_ = routes_.get();
    }
    bg_mean_distance_ =
        active_routes_->mean_distance_estimate(256, params_.seed ^ 0xD157ull);
    if (bg_mean_distance_ <= 0.0) bg_mean_distance_ = 1.0;
  }
  // One private stream per generator (node in kMultiHopFlows mode, link
  // in kSingleLink mode), seeded from (run seed, generator id): unlike
  // the sequential engine's single stream consumed in pop order, the
  // draws a generator sees do not depend on how the network partitions.
  const std::uint32_t gens = multihop ? g_->node_count() : g_->link_count();
  bg_rng_.reserve(gens);
  for (std::uint32_t gen = 0; gen < gens; ++gen)
    bg_rng_.emplace_back(generator_seed(gen));
  bg_occurrence_.assign(gens, 0);
}

void ParallelNetwork::restart_background_if_needed() {
  if (!bg_started_ || params_.rho <= 0.0) return;
  if (pending_fg_ == 0) return;
  // Every generator died by the end of the previous run() (a generator
  // popped with no foreground left does not re-arm), so a new run()
  // resumes all arrival processes from the latest simulated time.
  const SimTime from = stats_.finish_time;
  if (params_.background_mode == BackgroundMode::kSingleLink) {
    for (LinkId l = 0; l < g_->link_count(); ++l)
      schedule_background_link(shards_[part_.link_owner(l)], l, from);
  } else {
    for (NodeId v = 0; v < g_->node_count(); ++v)
      schedule_background_flow(shards_[part_.owner(v)], v, from);
  }
}

void ParallelNetwork::schedule_background_link(Shard& sh, LinkId link,
                                               SimTime after) {
  const auto gap =
      static_cast<SimTime>(bg_rng_[link].exponential(bg_link_mean_gap_));
  const std::uint64_t occ = bg_occurrence_[link]++;
  sh.queue.push(PEvent{after + gap, bg_arrival_key(link, occ), 0, link, 0,
                       PEventKind::kBackgroundLink, false});
}

SimTime ParallelNetwork::background_flow_gap(SplitMix64& rng) {
  // Same calibration as the sequential engine (see its comment): N
  // sources at rate lambda fill a fraction rho of the links.
  const double transmission = static_cast<double>(params_.background_mu) *
                              static_cast<double>(params_.alpha);
  const double per_flow_link_time =
      static_cast<double>(params_.tau_s) + bg_mean_distance_ * transmission;
  const double lambda =
      params_.rho * static_cast<double>(g_->link_count()) /
      (static_cast<double>(g_->node_count()) * per_flow_link_time);
  return static_cast<SimTime>(rng.exponential(1.0 / lambda));
}

void ParallelNetwork::schedule_background_flow(Shard& sh, NodeId source,
                                               SimTime after) {
  const SimTime gap = background_flow_gap(bg_rng_[source]);
  const std::uint64_t occ = bg_occurrence_[source]++;
  sh.queue.push(PEvent{after + gap, bg_arrival_key(source, occ), 0, source,
                       0, PEventKind::kBackgroundFlow, false});
}

void ParallelNetwork::process_background_link(Shard& sh, const PEvent& ev) {
  const LinkId link = ev.pos;
  const SimTime start = std::max(ev.time, busy_until_[link]);
  const SimTime until =
      start + static_cast<SimTime>(params_.background_mu) * params_.alpha;
  reserve(sh, link, start, until);
  record_trace(sh, ev,
               {.fn = TraceCall::Fn::kXmit,
                .t0 = start,
                .t1 = until,
                .flow = obs::TraceEvent::kUnset,
                .a = link,
                .b = static_cast<std::uint64_t>(obs::TraceEvent::kUnset),
                .label = "background"});
  ++sh.stats.background_packets;
  schedule_background_link(sh, link, ev.time);
}

void ParallelNetwork::process_background_flow(Shard& sh, const PEvent& ev) {
  const auto source = static_cast<NodeId>(ev.pos);
  SplitMix64& rng = bg_rng_[source];
  NodeId dest = source;
  while (dest == source)
    dest = static_cast<NodeId>(rng.below(g_->node_count()));
  sh.bg_path.clear();
  active_routes_->path_into(source, dest, sh.bg_path);
  const std::uint32_t slot = alloc_bg_slot(sh);
  BgFlow& flow = sh.bg_arena[slot];
  flow.path.assign(sh.bg_path.begin(), sh.bg_path.end());
  // The canonical identity rides the arrival's occurrence counter (the
  // low 36 bits of its key).
  flow.key_base = bg_header_key(source, ev.seq & ((1ull << 36) - 1), 0);
  flow.len = params_.background_mu;
  ++sh.stats.background_packets;
  // Inject now, at this node (always shard-local: the generator is the
  // source node itself).
  sh.queue.push(PEvent{ev.time, flow.key_base, slot, 0, kInvalidNode,
                       PEventKind::kHeader, true});
  schedule_background_flow(sh, source, ev.time);
}

// ---------------------------------------------------------------------------
// Coordinator side: the per-window barrier.
// ---------------------------------------------------------------------------

void ParallelNetwork::drain_mailboxes() {
  for (Shard& from : shards_) {
    for (std::uint32_t dst = 0; dst < shards_.size(); ++dst) {
      auto& box = from.mail.outbox(dst);
      if (box.empty()) continue;
      Shard& to = shards_[dst];
      for (RemoteMsg& msg : box) {
        PEvent ev = msg.ev;
        if (ev.arena_flow) {
          // Re-intern the travelling background flow; the canonical key
          // (not the slot) defines its ordering, so the drain order of
          // the boxes is irrelevant.
          const std::uint32_t slot = alloc_bg_slot(to);
          to.bg_arena[slot] = std::move(msg.spec);
          ev.flow = slot;
        }
        to.queue.push(ev);
      }
      box.clear();
    }
  }
}

void ParallelNetwork::fold_accounting() {
  for (Shard& sh : shards_) {
    IHC_ENSURE(sh.fg_delta >= 0 ||
                   pending_fg_ >= static_cast<std::uint64_t>(-sh.fg_delta),
               "foreground event accounting broke");
    pending_fg_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(pending_fg_) + sh.fg_delta);
    sh.fg_delta = 0;
  }
  // Tree flows complete when their in-flight balance returns to zero.
  // The completion time is the max consumed tail, which belongs to this
  // window (all earlier windows hold strictly earlier events).
  tree_touch_.clear();
  for (Shard& sh : shards_) {
    for (const TreeDelta& d : sh.tree_deltas) {
      tree_outstanding_[d.flow] += d.delta;
      IHC_ENSURE(tree_outstanding_[d.flow] >= 0,
                 "tree flow event accounting broke");
      if (d.delta < 0) tree_touch_.push_back(Completion{d.tail, d.flow});
    }
    sh.tree_deltas.clear();
  }
  if (tree_touch_.empty()) return;
  std::sort(tree_touch_.begin(), tree_touch_.end(),
            [](const Completion& a, const Completion& b) {
              return a.flow != b.flow ? a.flow < b.flow : a.at < b.at;
            });
  for (std::size_t i = 0; i < tree_touch_.size(); ++i) {
    const bool last_of_flow = i + 1 == tree_touch_.size() ||
                              tree_touch_[i + 1].flow != tree_touch_[i].flow;
    if (last_of_flow && tree_outstanding_[tree_touch_[i].flow] == 0)
      tree_completions_.push_back(tree_touch_[i]);
  }
}

void ParallelNetwork::fire_completions() {
  fire_list_.clear();
  for (Shard& sh : shards_) {
    fire_list_.insert(fire_list_.end(), sh.completions.begin(),
                      sh.completions.end());
    sh.completions.clear();
  }
  fire_list_.insert(fire_list_.end(), tree_completions_.begin(),
                    tree_completions_.end());
  tree_completions_.clear();
  if (fire_list_.empty() || !completion_hook_) return;
  std::sort(fire_list_.begin(), fire_list_.end(),
            [](const Completion& a, const Completion& b) {
              return a.at != b.at ? a.at < b.at : a.flow < b.flow;
            });
  for (const Completion& c : fire_list_) completion_hook_(c.flow, c.at);
  grow_flow_state();  // the hook may have add_flow()ed
}

void ParallelNetwork::replay_trace() {
  if (tracer_ == nullptr) return;
  replay_.clear();
  for (Shard& sh : shards_) {
    replay_.insert(replay_.end(), sh.trace.begin(), sh.trace.end());
    sh.trace.clear();
  }
  if (replay_.empty()) return;
  // Replay in the canonical global order: (event time, event key,
  // emission index).  This is the order a single-shard run would have
  // emitted, so the stream is identical for every shard count.
  std::sort(replay_.begin(), replay_.end(),
            [](const TraceCall& x, const TraceCall& y) {
              if (x.ev_time != y.ev_time) return x.ev_time < y.ev_time;
              if (x.key != y.key) return x.key < y.key;
              return x.sub < y.sub;
            });
  for (const TraceCall& c : replay_) {
    switch (c.fn) {
      case TraceCall::Fn::kInjected:
        tracer_->packet_injected(c.t0, static_cast<std::uint32_t>(c.flow),
                                 static_cast<NodeId>(c.a),
                                 static_cast<std::uint16_t>(c.b),
                                 static_cast<std::uint32_t>(c.c));
        break;
      case TraceCall::Fn::kAdvanced:
        tracer_->header_advanced(c.t0, static_cast<std::uint32_t>(c.flow),
                                 static_cast<NodeId>(c.a),
                                 static_cast<std::uint32_t>(c.b));
        break;
      case TraceCall::Fn::kDelivered:
        tracer_->delivered(c.t0, static_cast<std::uint32_t>(c.flow),
                           static_cast<NodeId>(c.a),
                           static_cast<NodeId>(c.b),
                           static_cast<std::uint16_t>(c.c),
                           static_cast<std::int64_t>(c.d));
        break;
      case TraceCall::Fn::kFault:
        tracer_->fault_fired(c.t0, static_cast<NodeId>(c.a),
                             static_cast<std::uint32_t>(c.flow), c.label,
                             static_cast<std::int64_t>(c.b));
        break;
      case TraceCall::Fn::kLinkDrop:
        tracer_->link_dropped(c.t0, static_cast<NodeId>(c.a),
                              static_cast<std::uint32_t>(c.flow),
                              static_cast<LinkId>(c.b),
                              static_cast<std::int64_t>(c.c));
        break;
      case TraceCall::Fn::kXmit:
        tracer_->xmit(c.t0, c.t1, static_cast<LinkId>(c.a), c.label, c.flow,
                      static_cast<std::int64_t>(c.b));
        break;
      case TraceCall::Fn::kStalled:
        tracer_->stalled(c.t0, c.t1, static_cast<NodeId>(c.a),
                         static_cast<std::uint32_t>(c.flow));
        break;
      case TraceCall::Fn::kBuffered:
        tracer_->buffered(c.t0, c.t1, static_cast<NodeId>(c.a),
                          static_cast<std::uint32_t>(c.flow),
                          static_cast<std::uint32_t>(c.b));
        break;
    }
  }
}

void ParallelNetwork::schedule_next_window() {
  SimTime min_time = 0;
  bool any = false;
  for (Shard& sh : shards_) {
    if (sh.queue.empty()) continue;
    const SimTime t = sh.queue.peek_min_time();
    if (!any || t < min_time) {
      min_time = t;
      any = true;
    }
  }
  if (!any) {
    done_ = true;
    return;
  }
  done_ = false;
  // Jump straight to the window holding the global minimum: empty
  // windows cost O(shards), not a simulated barrier each.
  const std::uint64_t idx = static_cast<std::uint64_t>(min_time) /
                            static_cast<std::uint64_t>(window_);
  window_end_ = static_cast<SimTime>((idx + 1) *
                                     static_cast<std::uint64_t>(window_));
  ++windows_;
  // The background gate for the coming window: one globally consistent
  // snapshot instead of the sequential engine's live count.
  fg_snapshot_ = pending_fg_;
}

void ParallelNetwork::coordinate() {
  const bool prof = prof_ != nullptr;
  const std::uint64_t prof_c0 = prof ? obs::prof::now_ns() : 0;
  drain_mailboxes();
  if (prof) prof_mailbox_ns_ += obs::prof::now_ns() - prof_c0;
  // Deferred wormhole in-link holds: max is commutative, so the merged
  // busy time is independent of shard count and application order.
  for (Shard& sh : shards_) {
    for (const auto& [link, until] : sh.link_holds)
      busy_until_[link] = std::max(busy_until_[link], until);
    sh.link_holds.clear();
  }
  fold_accounting();
  fire_completions();
  const std::uint64_t prof_r0 = prof ? obs::prof::now_ns() : 0;
  replay_trace();
  if (prof) prof_replay_ns_ += obs::prof::now_ns() - prof_r0;
  schedule_next_window();
  if (prof) {
    std::uint64_t wmax = 0;
    std::uint64_t wmin = ~std::uint64_t{0};
    std::uint64_t events = 0;
    for (const Shard& sh : shards_) {
      wmax = std::max(wmax, sh.prof_window_busy);
      wmin = std::min(wmin, sh.prof_window_busy);
      events += sh.lifetime_events;
    }
    prof_wmax_ns_ += wmax;
    prof_wmin_ns_ += wmin;
    prof_coord_ns_ += obs::prof::now_ns() - prof_c0;
    prof_->heartbeat("event_loop", events, window_end_,
                     windows_ - prof_windows_base_);
  }
}

void ParallelNetwork::grow_flow_state() {
  for (Shard& sh : shards_)
    if (sh.flow_finish.size() < flows_.size())
      sh.flow_finish.resize(flows_.size(), 0);
}

void ParallelNetwork::finalize_run() {
  for (Shard& sh : shards_) {
    const NetStats& s = sh.stats;
    stats_.injections += s.injections;
    stats_.cut_throughs += s.cut_throughs;
    stats_.buffered_relays += s.buffered_relays;
    stats_.wormhole_stalls += s.wormhole_stalls;
    stats_.redirects += s.redirects;
    stats_.fault_drops += s.fault_drops;
    stats_.fault_corruptions += s.fault_corruptions;
    stats_.link_drops += s.link_drops;
    stats_.background_packets += s.background_packets;
    stats_.deliveries += s.deliveries;
    stats_.events_processed += s.events_processed;
    stats_.total_queue_wait += s.total_queue_wait;
    stats_.finish_time = std::max(stats_.finish_time, s.finish_time);
    stats_.link_busy_time += s.link_busy_time;
    stats_.max_node_buffer_occupancy = std::max(
        stats_.max_node_buffer_occupancy, s.max_node_buffer_occupancy);
    sh.stats = NetStats{};
    ledger_.merge_from(sh.ledger);
    sh.ledger.reset(granularity_);
    for (std::size_t i = 0; i < sh.flow_finish.size(); ++i) {
      if (sh.flow_finish[i] > flow_finish_[i])
        flow_finish_[i] = sh.flow_finish[i];
      sh.flow_finish[i] = 0;
    }
  }
  if (prof_ != nullptr) {
    // Fold this run()'s host-time record into the process profiler; the
    // workers have joined, so every shard's accumulators are quiescent.
    obs::prof::ParallelRunRecord rec;
    rec.shard_count = part_.shard_count();
    rec.windows = windows_ - prof_windows_base_;
    rec.coordinator_ns = prof_coord_ns_;
    rec.mailbox_drain_ns = prof_mailbox_ns_;
    rec.trace_replay_ns = prof_replay_ns_;
    rec.window_max_busy_ns = prof_wmax_ns_;
    rec.window_min_busy_ns = prof_wmin_ns_;
    rec.shards.reserve(shards_.size());
    for (Shard& sh : shards_) {
      obs::prof::ShardWindowStats s = sh.prof;
      s.events = sh.lifetime_events - sh.prof_events_base;
      s.idle_windows = sh.idle_windows - sh.prof_idle_base;
      rec.shards.push_back(s);
      sh.prof_busy_total += sh.prof.busy_ns;
      sh.prof_barrier_total += sh.prof.barrier_wait_ns;
    }
    if (prof_replay_ns_ != 0)
      prof_->add_phase(obs::prof::Phase::kTraceReplay, prof_replay_ns_, 0, 1);
    prof_->record_parallel_run(rec);
  }
}

void ParallelNetwork::run() {
  const obs::prof::ScopedPhase prof_scope(obs::prof::Phase::kEventLoop);
  prof_ = obs::prof::global_profiler();
  if (prof_ != nullptr) {
    prof_coord_ns_ = prof_mailbox_ns_ = prof_replay_ns_ = 0;
    prof_wmax_ns_ = prof_wmin_ns_ = 0;
    prof_windows_base_ = windows_;
    for (Shard& sh : shards_) {
      sh.prof = obs::prof::ShardWindowStats{};
      sh.prof_window_busy = 0;
      sh.prof_events_base = sh.lifetime_events;
      sh.prof_idle_base = sh.idle_windows;
    }
  }
  check_parallel_support();
  ensure_link_table();
  grow_flow_state();
  start_background_if_needed();
  restart_background_if_needed();
  schedule_next_window();
  const std::uint32_t shard_n = part_.shard_count();
  if (shard_n == 1) {
    // One shard runs the identical windowed schedule inline - same code
    // path, same barriers, no threads: the `--shards 1` baseline every
    // multi-shard run must reproduce byte for byte.
    while (!done_) {
      run_window(0);
      coordinate();
    }
  } else {
    // The error machinery lives here, not in the object, so the engine
    // stays movable; the barrier's completion step must be noexcept, so
    // coordinate() errors are parked and rethrown after the join.
    std::exception_ptr coordinator_error;
    std::vector<std::exception_ptr> worker_errors(shard_n);
    std::atomic<bool> failed{false};
    auto on_cycle = [&]() noexcept {
      if (failed.load(std::memory_order_acquire)) {
        done_ = true;
        return;
      }
      try {
        coordinate();
      } catch (...) {
        coordinator_error = std::current_exception();
        done_ = true;
      }
    };
    std::barrier barrier(static_cast<std::ptrdiff_t>(shard_n), on_cycle);
    std::vector<std::thread> workers;
    workers.reserve(shard_n);
    for (std::uint32_t sid = 0; sid < shard_n; ++sid) {
      workers.emplace_back([this, sid, &barrier, &worker_errors, &failed] {
        // done_ / window_end_ reads are ordered by the barrier: the
        // completion step writes them, arrive_and_wait publishes them.
        while (!done_) {
          try {
            run_window(sid);
          } catch (...) {
            worker_errors[sid] = std::current_exception();
            failed.store(true, std::memory_order_release);
          }
          if (prof_ != nullptr) {
            // Barrier wait = imbalance (waiting for the slowest shard)
            // plus the completion step itself, which runs coordinate()
            // on one of the waiting threads (docs/PROFILING.md).
            const std::uint64_t w0 = obs::prof::now_ns();
            barrier.arrive_and_wait();
            const std::uint64_t wait = obs::prof::now_ns() - w0;
            Shard& sh = shards_[sid];
            sh.prof.barrier_wait_ns += wait;
            ++sh.prof.stall_hist[obs::prof::stall_bucket(wait)];
          } else {
            barrier.arrive_and_wait();
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    for (auto& e : worker_errors)
      if (e) std::rethrow_exception(e);
    if (coordinator_error) std::rethrow_exception(coordinator_error);
  }
  finalize_run();
}

double ParallelNetwork::mean_link_utilization() const {
  if (stats_.finish_time <= 0) return 0.0;
  const double horizon = static_cast<double>(stats_.finish_time) *
                         static_cast<double>(g_->link_count());
  return stats_.link_busy_time / horizon;
}

}  // namespace ihc
