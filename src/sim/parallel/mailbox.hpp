/// \file mailbox.hpp
/// \brief Shard-local events, canonical ordering keys, and cross-shard
/// event mailboxes for the time-sharded parallel engine.
///
/// The sequential Network breaks (time) ties with a push-order sequence
/// number, which depends on global processing order and therefore cannot
/// survive partitioning.  The parallel engine instead gives every event a
/// *canonical* 64-bit key derived only from what the event is - never
/// from when or where it was created:
///
///   foreground header:   [0 | flow(39) | pos(24)]
///   background arrival:  [1 | 0 | generator(26) | occurrence(36)]
///   background header:   [1 | 1 | source(20) | occurrence(30) | pos(12)]
///
/// Two shards (or one) pushing the same logical events in any order pop
/// them in the same (time, key) order, so per-shard calendar queues plus
/// a deterministic key make the simulation partition-invariant.  The top
/// bit orders all foreground events before background events at equal
/// times, matching the sequential engine's add-flows-first push order on
/// dedicated runs.
///
/// Cross-shard sends travel through per-destination mailboxes: a shard
/// appends RemoteMsg entries during its window, and the coordinator
/// drains every (source, dest) box into the destination queue at the
/// barrier.  The drain order is irrelevant - keys are unique, so the
/// queue's (time, key) order is the same for every arrival permutation
/// (asserted in tests/test_parallel_engine.cpp).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sim/params.hpp"
#include "util/error.hpp"

namespace ihc {

enum class PEventKind : std::uint8_t {
  kHeader,          // a flow packet's header reaches a route position
  kBackgroundLink,  // single-link background occupancy
  kBackgroundFlow,  // a node generates a multi-hop background packet
};

/// Event of the parallel engine.  `seq` is the canonical ordering key
/// (the calendar queue only needs operator< over it); `flow` is a global
/// FlowId for foreground headers and a shard-local arena slot for
/// background headers (the canonical key, not the slot, defines order).
struct PEvent {
  SimTime time;
  std::uint64_t seq;
  std::uint32_t flow;
  std::uint32_t pos;   // route position (header) / generator id (arrival)
  std::uint32_t aux;   // corrupting relay for headers
  PEventKind kind;
  bool arena_flow;     // header belongs to a shard-local background flow
};

/// Canonical key of a foreground header event.
[[nodiscard]] inline std::uint64_t fg_event_key(std::uint32_t flow,
                                                std::uint32_t pos) {
  IHC_ENSURE(pos < (1u << 24), "route position exceeds the key space");
  IHC_ENSURE(flow < (1ull << 39), "flow id exceeds the key space");
  return (static_cast<std::uint64_t>(flow) << 24) | pos;
}

/// Canonical key of the k-th arrival event of background generator `gen`
/// (a link id in kSingleLink mode, a source node in kMultiHopFlows mode).
[[nodiscard]] inline std::uint64_t bg_arrival_key(std::uint32_t gen,
                                                  std::uint64_t occurrence) {
  IHC_ENSURE(gen < (1u << 26), "background generator exceeds the key space");
  return (1ull << 63) | (static_cast<std::uint64_t>(gen) << 36) |
         (occurrence & ((1ull << 36) - 1));
}

/// Canonical key base of the occurrence-th background flow emitted by
/// `source`; or the key itself with the route position.
[[nodiscard]] inline std::uint64_t bg_header_key(std::uint32_t source,
                                                 std::uint64_t occurrence,
                                                 std::uint32_t pos) {
  IHC_ENSURE(source < (1u << 20), "background source exceeds the key space");
  IHC_ENSURE(pos < (1u << 12), "background path exceeds the key space");
  return (1ull << 63) | (1ull << 62) |
         (static_cast<std::uint64_t>(source) << 42) |
         ((occurrence & ((1ull << 30) - 1)) << 12) | pos;
}

/// A multi-hop background flow, interned in the shard that is currently
/// processing it.  When its header crosses a shard boundary the whole
/// spec travels in the mailbox message and is re-interned by the
/// receiver; `key_base` carries the canonical identity along.
struct BgFlow {
  std::vector<NodeId> path;   // shortest path, path[0] = source
  std::uint64_t key_base = 0; // bg_header_key(source, occurrence, 0)
  std::uint32_t len = 0;      // packet length in FIFO units
};

/// One cross-shard hand-off: the event, plus the background-flow spec
/// when the event is an arena-flow header (empty path otherwise).
struct RemoteMsg {
  PEvent ev;
  BgFlow spec;
};

/// Outboxes of one shard, indexed by destination shard.  Written by the
/// owning worker during a window, drained by the coordinator at the
/// barrier (the barrier's happens-before makes this race-free).
class ShardMailbox {
 public:
  ShardMailbox() = default;
  explicit ShardMailbox(std::uint32_t shards) : out_(shards) {}

  void send(std::uint32_t dst, RemoteMsg msg) {
    out_[dst].push_back(std::move(msg));
  }

  [[nodiscard]] std::vector<RemoteMsg>& outbox(std::uint32_t dst) {
    return out_[dst];
  }
  [[nodiscard]] std::uint32_t box_count() const {
    return static_cast<std::uint32_t>(out_.size());
  }

 private:
  std::vector<std::vector<RemoteMsg>> out_;
};

}  // namespace ihc
