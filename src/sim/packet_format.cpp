#include "sim/packet_format.hpp"

#include "util/error.hpp"

namespace ihc {

std::uint16_t crc16_ccitt(const std::uint8_t* data, std::size_t size) {
  std::uint16_t crc = 0xFFFF;
  for (std::size_t i = 0; i < size; ++i) {
    crc = static_cast<std::uint16_t>(crc ^ (data[i] << 8));
    for (int bit = 0; bit < 8; ++bit) {
      crc = static_cast<std::uint16_t>(
          (crc & 0x8000) ? (crc << 1) ^ 0x1021 : crc << 1);
    }
  }
  return crc;
}

namespace {
std::uint16_t header_crc(std::uint64_t upper48) {
  std::uint8_t bytes[6];
  for (int i = 0; i < 6; ++i)
    bytes[i] = static_cast<std::uint8_t>((upper48 >> (8 * (5 - i))) & 0xFF);
  return crc16_ccitt(bytes, sizeof bytes);
}
}  // namespace

std::uint64_t encode_header(const PacketHeader& header) {
  require(header.origin < (1u << 16), "origin needs 16 bits");
  require(header.route < (1u << 6), "route needs 6 bits");
  require(header.seq < (1u << 12), "seq needs 12 bits");
  require(header.total >= 1 && header.total < (1u << 12),
          "total needs 12 bits and must be positive");
  require(header.seq < header.total, "seq must be below total");
  const std::uint64_t upper48 =
      (static_cast<std::uint64_t>(header.origin) << 32) |
      (static_cast<std::uint64_t>(header.route) << 26) |
      (static_cast<std::uint64_t>(header.seq) << 14) |
      (static_cast<std::uint64_t>(header.total) << 2) |
      static_cast<std::uint64_t>(header.kind);
  return (upper48 << 16) | header_crc(upper48);
}

std::optional<PacketHeader> decode_header(std::uint64_t word) {
  const std::uint64_t upper48 = word >> 16;
  const auto crc = static_cast<std::uint16_t>(word & 0xFFFF);
  if (header_crc(upper48) != crc) return std::nullopt;
  PacketHeader header;
  header.origin = static_cast<NodeId>((upper48 >> 32) & 0xFFFF);
  header.route = static_cast<std::uint8_t>((upper48 >> 26) & 0x3F);
  header.seq = static_cast<std::uint16_t>((upper48 >> 14) & 0xFFF);
  header.total = static_cast<std::uint16_t>((upper48 >> 2) & 0xFFF);
  header.kind = static_cast<PacketKind>(upper48 & 0x3);
  if (header.total == 0 || header.seq >= header.total) return std::nullopt;
  if (header.kind != PacketKind::kData &&
      header.kind != PacketKind::kControl)
    return std::nullopt;
  return header;
}

}  // namespace ihc
