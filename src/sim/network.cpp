#include "sim/network.hpp"

#include <algorithm>

#include "sim/fault_schedule.hpp"
#include "obs/metrics.hpp"
#include "obs/prof/profiler.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace ihc {

namespace {

/// Calendar-queue bucket width: alpha/8, rounded up to a power of two by
/// the queue (4096 ps at the default alpha = 20 ns).  Measured optimum
/// for the event mix of the builtin campaigns - narrow enough that a
/// bucket rarely holds more than a handful of events, wide enough that
/// pops rarely cross empty buckets (see docs/PERFORMANCE.md).
constexpr SimTime bucket_width_hint(const NetworkParams& p) {
  return p.alpha / 8;
}

}  // namespace

Network::Network(const Graph& g, const NetworkParams& params,
                 DeliveryLedger::Granularity granularity)
    : g_(&g),
      params_(params),
      busy_until_(g.link_count(), 0),
      queue_(bucket_width_hint(params), params.legacy_engine),
      ledger_(g.node_count(), granularity),
      bg_rng_(params.seed),
      node_buffer_(g.node_count()) {
  params_.validate();
}

void Network::ensure_link_table() {
  // The legacy baseline keeps the seed's adjacency scan; the table is
  // bounded at 4 MiB so huge graphs fall back to the scan too.
  if (link_flat_ != nullptr || params_.legacy_engine) return;
  if (shared_routes_ != nullptr) {
    link_flat_ = shared_routes_->link_table();
    return;
  }
  constexpr std::size_t kMaxEntries = std::size_t{1} << 20;
  const std::size_t n = g_->node_count();
  if (n * n > kMaxEntries) return;
  if (link_map_.empty()) {
    link_map_.assign(n * n, kInvalidLink);
    for (LinkId l = 0; l < g_->link_count(); ++l)
      link_map_[static_cast<std::size_t>(g_->link_source(l)) * n +
                g_->link_target(l)] = l;
  }
  link_flat_ = link_map_.data();
}

void Network::reset() { reset(params_, ledger_.granularity()); }

void Network::reset(const NetworkParams& params,
                    DeliveryLedger::Granularity granularity) {
  params_ = params;
  params_.validate();
  faults_ = nullptr;
  schedule_ = nullptr;
  flows_.clear();
  flow_finish_.clear();
  tree_outstanding_.clear();
  std::fill(busy_until_.begin(), busy_until_.end(), 0);
  queue_.reset(bucket_width_hint(params_), params_.legacy_engine);
  link_flat_ = nullptr;  // re-resolved on the next run() (engine may change)
  seq_ = 0;
  pending_foreground_events_ = 0;
  ledger_.reset(granularity);
  stats_ = NetStats{};
  bg_rng_ = SplitMix64(params_.seed);
  completion_hook_ = nullptr;
  bg_started_ = false;
  bg_alive_ = 0;
  active_routes_ = nullptr;  // routes_/shared_routes_ are graph-derived: kept
  bg_mean_distance_ = 0.0;
  bg_link_mean_gap_ = 0.0;
  for (auto& held : node_buffer_) held.clear();
  tracer_ = nullptr;
  metrics_ = nullptr;
  link_busy_.clear();
}

FlowId Network::add_flow(FlowSpec spec) {
  require(spec.origin < g_->node_count(), "flow origin out of range");
  const bool has_tree = !spec.tree.empty();
  const bool has_cycle = spec.cycle_path.cycle != nullptr;
  require(has_tree != has_cycle,
          "a flow needs exactly one route (tree or cycle path)");
  if (has_tree) {
    require(spec.tree[0].parent == -1 && spec.tree[0].node == spec.origin,
            "tree root must be the origin");
    for (std::size_t i = 1; i < spec.tree.size(); ++i) {
      require(spec.tree[i].parent >= 0 &&
                  static_cast<std::size_t>(spec.tree[i].parent) < i,
              "tree must be in parent-before-child order");
    }
  } else {
    require(spec.cycle_path.hops < spec.cycle_path.cycle->length(),
            "cycle path longer than the cycle");
    require(spec.cycle_path.cycle->at(spec.cycle_path.start) == spec.origin,
            "cycle path must start at the origin");
  }
  const auto id = static_cast<FlowId>(flows_.size());
  flows_.push_back(std::move(spec));
  flow_finish_.push_back(0);
  tree_outstanding_.push_back(0);
  push_header(flows_.back().inject_time, id, 0, kInvalidNode);
  return id;
}

void Network::push_header(SimTime time, FlowId flow, std::uint32_t pos,
                          NodeId corrupted_by) {
  queue_.push(Event{time, seq_++, flow, pos, corrupted_by,
                    EventKind::kHeader});
  if (!flows_[flow].background) {
    ++pending_foreground_events_;
    if (!flows_[flow].tree.empty()) ++tree_outstanding_[flow];
  }
}

void Network::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) tracer_->announce_topology(*g_);
}

void Network::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ != nullptr && link_busy_.empty())
    link_busy_.assign(g_->link_count(), 0.0);
}

void Network::flush_metrics() {
  if (metrics_ == nullptr) return;
  export_net_stats(stats_, *metrics_);
  if (stats_.finish_time > 0) {
    const auto horizon = static_cast<double>(stats_.finish_time);
    for (LinkId l = 0; l < g_->link_count(); ++l)
      metrics_->observe("net.link_utilization", link_busy_[l] / horizon);
  }
}

void export_net_stats(const NetStats& stats, obs::MetricsRegistry& metrics) {
  metrics.count("net.injections",
                static_cast<std::int64_t>(stats.injections));
  metrics.count("net.cut_throughs",
                static_cast<std::int64_t>(stats.cut_throughs));
  metrics.count("net.buffered_relays",
                static_cast<std::int64_t>(stats.buffered_relays));
  metrics.count("net.wormhole_stalls",
                static_cast<std::int64_t>(stats.wormhole_stalls));
  metrics.count("net.redirects", static_cast<std::int64_t>(stats.redirects));
  metrics.count("net.fault_drops",
                static_cast<std::int64_t>(stats.fault_drops));
  metrics.count("net.fault_corruptions",
                static_cast<std::int64_t>(stats.fault_corruptions));
  metrics.count("net.link_drops",
                static_cast<std::int64_t>(stats.link_drops));
  metrics.count("net.background_packets",
                static_cast<std::int64_t>(stats.background_packets));
  metrics.count("net.deliveries",
                static_cast<std::int64_t>(stats.deliveries));
  metrics.count("net.events_processed",
                static_cast<std::int64_t>(stats.events_processed));
  metrics.count("net.queue_wait_ps",
                static_cast<std::int64_t>(stats.total_queue_wait));
  metrics.maximum("net.max_node_buffer_occupancy",
                  static_cast<std::int64_t>(stats.max_node_buffer_occupancy));
}

void Network::reserve(LinkId l, SimTime from, SimTime until) {
  IHC_ENSURE(from >= busy_until_[l], "link reservation overlaps");
  busy_until_[l] = until;
  stats_.link_busy_time += static_cast<double>(until - from);
  if (!link_busy_.empty()) link_busy_[l] += static_cast<double>(until - from);
}

Network::SafTiming Network::send_saf(LinkId l, SimTime ready_time,
                                     std::uint32_t len) {
  const SimTime start =
      std::max(ready_time, busy_until_[l]) + params_.queueing_delay;
  stats_.total_queue_wait += start - params_.queueing_delay - ready_time;
  const SimTime header_out = start + params_.tau_s;
  const SimTime tail = header_out + static_cast<SimTime>(len) * params_.alpha;
  reserve(l, start, tail);
  return SafTiming{start, header_out, tail};
}

std::uint32_t Network::occupy_buffer(NodeId node, SimTime from,
                                     SimTime until) {
  auto& held = node_buffer_[node];
  // Events are processed in time order, so residencies that ended before
  // `from` can be purged now.
  std::erase_if(held, [from](SimTime release) { return release <= from; });
  held.push_back(until);
  const auto depth = static_cast<std::uint32_t>(held.size());
  stats_.max_node_buffer_occupancy =
      std::max(stats_.max_node_buffer_occupancy, depth);
  return depth;
}

void Network::deliver(FlowId flow, NodeId dest, SimTime header_time,
                      std::uint32_t len, NodeId corrupted_by,
                      std::uint32_t pos) {
  const FlowSpec& f = flows_[flow];
  if (f.background) return;  // normal-task traffic is not broadcast state
  CopyRecord copy;
  copy.payload = corrupted_by == kInvalidNode
                     ? f.payload
                     : f.payload ^ 0xC0DEC0DEDEADBEEFULL;
  copy.mac = f.mac;
  copy.time = header_time + static_cast<SimTime>(len) * params_.alpha;
  copy.route = f.route_tag;
  copy.corrupted_by = corrupted_by;
  ledger_.record(f.origin, dest, copy);
  if (tracer_ != nullptr)
    tracer_->delivered(copy.time, flow, dest, f.origin, f.route_tag, pos);
  ++stats_.deliveries;
  stats_.finish_time = std::max(stats_.finish_time, copy.time);
  flow_finish_[flow] = std::max(flow_finish_[flow], copy.time);
}

void Network::process_header(const Event& ev) {
  // Tree flows detect completion by event drain: this event is consumed
  // now, any onward sends re-increment the counter inside the impl, and
  // a zero balance afterwards means no packet of the flow is in flight
  // anywhere.  The hook call must stay outside the impl because it may
  // add_flow(), which can reallocate flows_ under the impl's references.
  const bool tracked = !flows_[ev.flow].tree.empty() &&
                       !flows_[ev.flow].background;
  SimTime tail_time = 0;
  if (tracked) {
    IHC_ENSURE(tree_outstanding_[ev.flow] > 0,
               "tree flow event accounting broke");
    --tree_outstanding_[ev.flow];
    tail_time = ev.time + static_cast<SimTime>(flow_length(flows_[ev.flow])) *
                              params_.alpha;
  }
  process_header_impl(ev);
  if (tracked && tree_outstanding_[ev.flow] == 0 && completion_hook_)
    completion_hook_(ev.flow, tail_time);
}

void Network::process_header_impl(const Event& ev) {
  const FlowSpec& f = flows_[ev.flow];
  const std::uint32_t len = flow_length(f);
  const bool is_tree = !f.tree.empty();
  NodeId here;
  if (is_tree) {
    here = f.tree[ev.pos].node;
  } else {
    const auto& cp = f.cycle_path;
    here = cp.cycle->at((cp.start + ev.pos) % cp.cycle->length());
  }

  NodeId corrupted_by = ev.aux;
  SimTime slow_penalty = 0;  // extra relay delay of a kSlow node

  if (ev.pos > 0) {
    if (tracer_ != nullptr && !f.background)
      tracer_->header_advanced(ev.time, ev.flow, here, ev.pos);

    // Tee: every visited node receives a copy.
    deliver(ev.flow, here, ev.time, len, corrupted_by, ev.pos);

    // Fault behaviour applies to the relay operation at this node.  An
    // active schedule window overrides the node's static mode.
    RelayAction action = RelayAction::kFaithful;
    std::int64_t delay = 0;
    if (schedule_ != nullptr &&
        schedule_->mode_at(here, ev.time).has_value()) {
      action = schedule_->on_relay(here, ev.time);
      delay = schedule_->slow_delay();
    } else if (faults_ != nullptr && faults_->is_faulty(here)) {
      action = faults_->on_relay(here);
      delay = faults_->slow_delay();
    }
    if (action == RelayAction::kDrop) {
      if (tracer_ != nullptr)
        tracer_->fault_fired(ev.time, here, ev.flow, "drop", ev.pos);
      ++stats_.fault_drops;
      return;
    }
    if (action == RelayAction::kCorrupt && corrupted_by == kInvalidNode) {
      if (tracer_ != nullptr)
        tracer_->fault_fired(ev.time, here, ev.flow, "corrupt", ev.pos);
      ++stats_.fault_corruptions;
      corrupted_by = here;
    }
    if (action == RelayAction::kDelay) {
      if (tracer_ != nullptr)
        tracer_->fault_fired(ev.time, here, ev.flow, "delay", ev.pos);
      slow_penalty = delay;
    }
  } else {
    // A degraded (kSlow) node's *origin* transmissions pay the same
    // penalty as its relays.  Only the mode is inspected here - drawing
    // on_relay for an injection would consume kRandom stream draws that
    // belong to relays.
    std::int64_t origin_delay = 0;
    if (schedule_ != nullptr &&
        schedule_->mode_at(here, ev.time) == FaultMode::kSlow)
      origin_delay = schedule_->slow_delay();
    else if (faults_ != nullptr &&
             faults_->mode_of(here) == FaultMode::kSlow)
      origin_delay = faults_->slow_delay();
    if (origin_delay > 0) {
      if (tracer_ != nullptr)
        tracer_->fault_fired(ev.time, here, ev.flow, "delay", ev.pos);
      slow_penalty = origin_delay;
    }
  }

  // Onward sends.
  const bool force_saf = params_.switching == Switching::kStoreAndForward;
  auto relay = [&](NodeId next, std::uint32_t next_pos, bool ct_allowed,
                   LinkId in_link) {
    const LinkId l = link_between(here, next);
    // A failed link loses the packet (and its downstream deliveries).
    // Glitch windows are evaluated at the moment the packet commits to
    // the link.
    if ((faults_ != nullptr && faults_->link_failed(l)) ||
        (schedule_ != nullptr && schedule_->link_dead(l, ev.time))) {
      if (tracer_ != nullptr)
        tracer_->link_dropped(ev.time, here, ev.flow, l, ev.pos);
      ++stats_.link_drops;
      return;
    }
    const bool injection = ev.pos == 0;
    if (injection) {
      ++stats_.injections;
      const SafTiming t = send_saf(l, ev.time + slow_penalty, len);
      if (tracer_ != nullptr) {
        if (!f.background)
          tracer_->packet_injected(ev.time, ev.flow, f.origin, f.route_tag,
                                   len);
        tracer_->xmit(t.start, t.tail, l,
                      f.background ? "background" : "inject", ev.flow,
                      next_pos);
      }
      push_header(t.header_out, ev.flow, next_pos, corrupted_by);
      return;
    }
    if (ct_allowed && !force_saf && slow_penalty == 0) {
      const SimTime header_ready = ev.time + params_.alpha;
      if (busy_until_[l] <= header_ready) {
        ++stats_.cut_throughs;
        const SimTime tail =
            header_ready + static_cast<SimTime>(len) * params_.alpha;
        reserve(l, header_ready, tail);
        if (tracer_ != nullptr)
          tracer_->xmit(header_ready, tail, l,
                        f.background ? "background" : "cut_through", ev.flow,
                        next_pos);
        push_header(header_ready, ev.flow, next_pos, corrupted_by);
        return;
      }
      if (params_.switching == Switching::kWormhole) {
        // Stall in the network: the header waits for the transmitter; the
        // incoming link stays held until the tail can move on.
        ++stats_.wormhole_stalls;
        const SimTime start = busy_until_[l];
        stats_.total_queue_wait += start - header_ready;
        const SimTime out = start + params_.alpha;
        const SimTime tail = out + static_cast<SimTime>(len) * params_.alpha;
        reserve(l, start, tail);
        if (tracer_ != nullptr) {
          if (!f.background)
            tracer_->stalled(header_ready, start, here, ev.flow);
          tracer_->xmit(start, tail, l,
                        f.background ? "background" : "stall", ev.flow,
                        next_pos);
        }
        if (in_link != kInvalidLink)
          busy_until_[in_link] = std::max(busy_until_[in_link], tail);
        push_header(out, ev.flow, next_pos, corrupted_by);
        return;
      }
    }
    // Buffered relay (VCT blocking, forced SAF, or a tree redirect):
    // the packet must be fully stored before retransmission.
    ++stats_.buffered_relays;
    const SimTime stored =
        ev.time + static_cast<SimTime>(len) * params_.alpha + slow_penalty;
    const SafTiming t = send_saf(l, stored, len);
    // The packet occupies this node's intermediate storage from the
    // moment it is fully received until its retransmitted tail leaves.
    const std::uint32_t depth = occupy_buffer(here, stored, t.tail);
    if (tracer_ != nullptr) {
      if (!f.background) tracer_->buffered(stored, t.tail, here, ev.flow, depth);
      tracer_->xmit(t.start, t.tail, l, f.background ? "background" : "saf",
                    ev.flow, next_pos);
    }
    push_header(t.header_out, ev.flow, next_pos, corrupted_by);
  };

  if (is_tree) {
    // Children of this tree position, in order.
    for (std::uint32_t c = ev.pos + 1; c < f.tree.size(); ++c) {
      if (f.tree[c].parent != static_cast<std::int32_t>(ev.pos)) continue;
      const bool ct = f.tree[c].cut_through_preferred;
      if (!ct && ev.pos != 0) ++stats_.redirects;
      LinkId in_link = kInvalidLink;
      if (ev.pos > 0) {
        const NodeId parent_node =
            f.tree[static_cast<std::size_t>(f.tree[ev.pos].parent)].node;
        in_link = link_between(parent_node, here);
      }
      relay(f.tree[c].node, c, ct, in_link);
    }
  } else {
    const auto& cp = f.cycle_path;
    if (ev.pos < cp.hops) {
      const NodeId next =
          cp.cycle->at((cp.start + ev.pos + 1) % cp.cycle->length());
      LinkId in_link = kInvalidLink;
      if (ev.pos > 0) {
        const NodeId prev_node =
            cp.cycle->at((cp.start + ev.pos - 1) % cp.cycle->length());
        in_link = link_between(prev_node, here);
      }
      relay(next, ev.pos + 1, /*ct_allowed=*/true, in_link);
    } else if (completion_hook_ && !f.background) {
      // Tail delivered at the route's end: the flow is complete.  NOTE:
      // the hook may add_flow(), which can reallocate flows_ and
      // invalidate `f`/`cp`; it must therefore remain the LAST statement
      // that runs in this function.
      completion_hook_(ev.flow,
                       ev.time + static_cast<SimTime>(len) * params_.alpha);
      return;
    }
  }
}

void Network::start_background_if_needed() {
  if (bg_started_ || params_.rho <= 0.0) return;
  bg_started_ = true;
  bg_link_mean_gap_ = static_cast<double>(params_.background_mu) *
                      static_cast<double>(params_.alpha) / params_.rho;
  if (params_.background_mode == BackgroundMode::kMultiHopFlows) {
    active_routes_ = shared_routes_;
    if (active_routes_ == nullptr) {
      if (!routes_) routes_ = std::make_unique<RoutingTable>(*g_);
      active_routes_ = routes_.get();
    }
    bg_mean_distance_ =
        active_routes_->mean_distance_estimate(256, params_.seed ^ 0xD157ull);
    if (bg_mean_distance_ <= 0.0) bg_mean_distance_ = 1.0;
  }
  restart_background_if_needed();
}

void Network::restart_background_if_needed() {
  if (!bg_started_ || params_.rho <= 0.0) return;
  if (bg_alive_ > 0 || pending_foreground_events_ == 0) return;
  // Resume the arrival processes from the latest simulated time.
  const SimTime from = stats_.finish_time;
  if (params_.background_mode == BackgroundMode::kSingleLink) {
    for (LinkId l = 0; l < g_->link_count(); ++l)
      schedule_background_link(l, from);
  } else {
    for (NodeId v = 0; v < g_->node_count(); ++v)
      schedule_background_flow(v, from);
  }
}

void Network::schedule_background_link(LinkId link, SimTime after) {
  // bg_link_mean_gap_ = background_mu * alpha / rho, hoisted out of the
  // per-arrival path (bitwise the same value every call).
  const auto gap =
      static_cast<SimTime>(bg_rng_.exponential(bg_link_mean_gap_));
  queue_.push(Event{after + gap, seq_++, 0, 0, link,
                    EventKind::kBackgroundLink});
  ++bg_alive_;
}

SimTime Network::background_flow_gap() {
  // Calibration: a flow consumes link-time tau_S + mu_bg alpha on its
  // first link (the injection reserves the transmitter through the
  // startup, matching the paper's serial per-op accounting) and
  // mu_bg alpha on each of the remaining dbar - 1 links it cuts through.
  // N sources at rate lambda must fill a fraction rho of the 2E links:
  //   rho = N * lambda * (tau_S + dbar * mu_bg alpha) / link_count.
  const double transmission =
      static_cast<double>(params_.background_mu) *
      static_cast<double>(params_.alpha);
  const double per_flow_link_time =
      static_cast<double>(params_.tau_s) +
      bg_mean_distance_ * transmission;
  const double lambda = params_.rho *
                        static_cast<double>(g_->link_count()) /
                        (static_cast<double>(g_->node_count()) *
                         per_flow_link_time);
  return static_cast<SimTime>(bg_rng_.exponential(1.0 / lambda));
}

void Network::schedule_background_flow(NodeId source, SimTime after) {
  queue_.push(Event{after + background_flow_gap(), seq_++, 0, 0, source,
                    EventKind::kBackgroundFlow});
  ++bg_alive_;
}

void Network::process_background_link(const Event& ev) {
  // Background packets occupy just their link for one transmission.
  const LinkId link = ev.aux;
  const SimTime start = std::max(ev.time, busy_until_[link]);
  const SimTime until =
      start + static_cast<SimTime>(params_.background_mu) * params_.alpha;
  reserve(link, start, until);
  if (tracer_ != nullptr)
    tracer_->xmit(start, until, link, "background",
                  obs::TraceEvent::kUnset);
  ++stats_.background_packets;
  // Keep the process alive only while flow traffic remains.
  if (pending_foreground_events_ > 0)
    schedule_background_link(link, ev.time);
}

void Network::process_background_flow(const Event& ev) {
  const auto source = static_cast<NodeId>(ev.aux);
  NodeId dest = source;
  while (dest == source)
    dest = static_cast<NodeId>(bg_rng_.below(g_->node_count()));
  bg_path_.clear();
  active_routes_->path_into(source, dest, bg_path_);

  FlowSpec flow;
  flow.origin = source;
  flow.background = true;
  flow.inject_time = ev.time;
  flow.length_units = params_.background_mu;
  flow.tree.reserve(bg_path_.size());
  for (std::size_t i = 0; i < bg_path_.size(); ++i) {
    flow.tree.push_back(FlowTreeNode{
        bg_path_[i], static_cast<std::int32_t>(i) - 1, i > 1});
  }
  add_flow(std::move(flow));
  ++stats_.background_packets;
  if (pending_foreground_events_ > 0)
    schedule_background_flow(source, ev.time);
}

void Network::run() {
  const obs::prof::ScopedPhase prof_scope(obs::prof::Phase::kEventLoop);
  obs::prof::WallProfiler* const prof = obs::prof::global_profiler();
  ensure_link_table();
  start_background_if_needed();
  restart_background_if_needed();
  while (!queue_.empty()) {
    const Event ev = queue_.pop_min();
    ++stats_.events_processed;
    // Progress heartbeat every 64k events; rate-limited inside.
    if (prof != nullptr && (stats_.events_processed & 0xFFFFu) == 0)
      prof->heartbeat("event_loop", stats_.events_processed, ev.time, 0);
    switch (ev.kind) {
      case EventKind::kBackgroundLink:
        --bg_alive_;
        if (pending_foreground_events_ > 0) process_background_link(ev);
        break;
      case EventKind::kBackgroundFlow:
        --bg_alive_;
        if (pending_foreground_events_ > 0) process_background_flow(ev);
        break;
      case EventKind::kHeader:
        if (!flows_[ev.flow].background) --pending_foreground_events_;
        process_header(ev);
        break;
    }
  }
}

double Network::mean_link_utilization() const {
  if (stats_.finish_time <= 0) return 0.0;
  const double horizon = static_cast<double>(stats_.finish_time) *
                         static_cast<double>(g_->link_count());
  return stats_.link_busy_time / horizon;
}

}  // namespace ihc
