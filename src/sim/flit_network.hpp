/// \file flit_network.hpp
/// \brief Flit-granularity wormhole simulator with virtual channels.
///
/// The packet-level simulator (network.hpp) is the timing-faithful model
/// of the paper's Tables; what it cannot exhibit is *deadlock* - its
/// busy-until reservations always resolve in time order.  Wormhole
/// routing really can deadlock: packets hold buffer space in several
/// routers while waiting for space ahead (Section IV, remedied by Dally &
/// Seitz's virtual channels [7]).  This module models exactly that
/// mechanism:
///
///  * time advances in synchronous flit cycles (one flit crosses one
///    physical link per cycle; virtual channels share the link by
///    round-robin arbitration);
///  * each (link, virtual channel) has a small input FIFO at its
///    receiving router; a flit advances only when the next channel's FIFO
///    has space - wormhole back-pressure;
///  * packets follow static routes with a static per-hop VC assignment,
///    so the channel dependency graph of deadlock.hpp applies verbatim:
///    a cyclic CDG can (and, under the right load, does) deadlock here,
///    an acyclic one provably cannot;
///  * a run reports completion or deadlock (no flit moved while packets
///    remain).
///
/// The tests drive both outcomes: single-channel Hamiltonian-cycle routes
/// deadlock under saturation, the Dally-Seitz dateline assignment never
/// does - demonstrating in simulation what the CDG analysis predicts.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "topology/topology.hpp"

namespace ihc {

class FaultSchedule;

namespace obs {
class MetricsRegistry;
class Tracer;
}  // namespace obs

struct FlitParams {
  std::uint8_t vc_count = 1;        ///< virtual channels per link
  std::uint32_t buffer_flits = 2;   ///< FIFO depth per (link, vc)
  /// A run is declared deadlocked after this many consecutive cycles
  /// without any flit movement while packets remain.
  std::uint32_t stall_threshold = 1000;
};

/// One wormhole packet: a static route (directed links) with a per-hop
/// virtual-channel assignment and a length in flits.
struct FlitPacketSpec {
  std::vector<LinkId> route;        ///< consecutive directed links
  std::vector<std::uint8_t> vc;     ///< VC per hop (size == route size)
  std::uint32_t length_flits = 4;
  std::uint64_t inject_cycle = 0;
};

struct FlitRunResult {
  bool deadlocked = false;
  std::uint64_t cycles = 0;          ///< cycles simulated
  std::uint64_t delivered = 0;       ///< packets fully delivered
  std::uint64_t flit_hops = 0;       ///< total flit-link traversals
  std::uint64_t blocked_packets = 0; ///< packets alive at deadlock
};

class FlitNetwork {
 public:
  FlitNetwork(const Graph& g, const FlitParams& params);

  /// Returns the network to its freshly-constructed state - packets,
  /// channel state, and attached hooks cleared - while keeping the flit
  /// slab and per-channel arrays allocated, so a pooled instance can run
  /// successive trials without reallocating.  The overload takes new
  /// parameters (validated; the slab regrows only if capacity increases).
  void reset();
  void reset(const FlitParams& params);

  /// Registers a packet; validated against the graph (consecutive links
  /// must chain head-to-tail).
  void add_packet(FlitPacketSpec spec);

  /// Runs until everything is delivered, deadlock is detected, or
  /// `max_cycles` elapse (the latter reports deadlocked = false with
  /// packets outstanding - treat as "did not finish").
  [[nodiscard]] FlitRunResult run(std::uint64_t max_cycles = 1'000'000);

  /// Attaches a structured-event tracer (not owned; nullptr detaches).
  /// Switches the tracer to the flit-cycle timebase and announces the
  /// topology - do not share one tracer between a FlitNetwork and a
  /// packet-level Network.
  void set_tracer(obs::Tracer* tracer);

  /// Attaches a metrics registry (not owned): `flit.blocked`
  /// blocked-candidate cycles and the `flit.max_fifo_depth` watermark
  /// accumulate live.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Optional dynamic fault schedule (not owned; may be nullptr),
  /// consulted in the flit-cycle timebase: a dead link blocks flits for
  /// the window (wormhole back-pressure holds the worm in place - the
  /// lossless counterpart of the packet engine's drop), and a degraded
  /// (kSlow) node delays both its packet injections and every relay
  /// through it by slow_delay() cycles.  A permanent link death can
  /// legitimately trip the deadlock detector: nothing can move.
  void set_fault_schedule(const FaultSchedule* schedule) {
    schedule_ = schedule;
  }

 private:
  struct Packet {
    FlitPacketSpec spec;
    std::uint32_t flits_injected = 0;  ///< flits that left the source
    std::uint32_t flits_consumed = 0;  ///< flits absorbed at destination
    bool done = false;
  };

  /// A flit in a channel FIFO: which packet, which hop it sits at, and
  /// whether it is the worm's tail (which releases channels as it goes).
  struct Flit {
    std::uint32_t packet = 0;
    std::uint32_t hop = 0;  ///< index of the channel it currently sits in
    bool is_tail = false;
    /// Cycle the flit entered its current channel: a flit moves at most
    /// one hop per cycle (synchronous semantics).
    std::uint64_t arrived_cycle = 0;
  };

  const Graph* g_;
  FlitParams params_;
  std::vector<Packet> packets_;
  /// Channel FIFOs (vc-major, like ChannelDependencyGraph) as fixed-size
  /// ring buffers in one contiguous slab: channel c owns slots
  /// [c * buffer_flits, (c + 1) * buffer_flits), indexed circularly from
  /// fifo_head_[c] over fifo_count_[c] occupied slots.  FIFO depth is
  /// bounded by buffer_flits, so this replaces a deque per channel (and
  /// its allocation churn) with flat arrays a reset() can reuse.
  std::vector<Flit> fifo_slots_;
  std::vector<std::uint32_t> fifo_head_;
  std::vector<std::uint32_t> fifo_count_;
  /// Head-of-line channel ownership: a channel accepts flits of only one
  /// packet at a time (wormhole: the worm occupies the channel from its
  /// head's allocation until its tail passes).
  std::vector<std::int32_t> owner_;
  /// Round-robin arbitration pointer per physical link.
  std::vector<std::uint8_t> rr_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  const FaultSchedule* schedule_ = nullptr;

  [[nodiscard]] std::size_t channel_of(LinkId link, std::uint8_t vc) const {
    return static_cast<std::size_t>(vc) * g_->link_count() + link;
  }

  [[nodiscard]] std::size_t channel_count() const {
    return static_cast<std::size_t>(params_.vc_count) * g_->link_count();
  }
  [[nodiscard]] std::uint32_t fifo_size(std::size_t c) const {
    return fifo_count_[c];
  }
  [[nodiscard]] const Flit& fifo_front(std::size_t c) const {
    return fifo_slots_[c * params_.buffer_flits + fifo_head_[c]];
  }
  void fifo_pop_front(std::size_t c) {
    fifo_head_[c] = (fifo_head_[c] + 1) % params_.buffer_flits;
    --fifo_count_[c];
  }
  void fifo_push_back(std::size_t c, const Flit& f) {
    const std::uint32_t slot =
        (fifo_head_[c] + fifo_count_[c]) % params_.buffer_flits;
    fifo_slots_[c * params_.buffer_flits + slot] = f;
    ++fifo_count_[c];
  }

  /// Attempts to move one flit across physical link `l`; returns true on
  /// movement.
  bool advance_link(LinkId l, std::uint64_t cycle);
  /// Attempts to inject the next flit of packet `p`; returns true on
  /// movement.
  bool inject(std::uint32_t p, std::uint64_t cycle);
  /// Consumes deliverable flits at route ends; returns number consumed.
  std::uint64_t consume(std::uint64_t cycle);

  // Observability hooks; no-ops while nothing is attached.
  void note_blocked(std::uint64_t cycle, LinkId link, std::uint8_t vc,
                    std::uint32_t packet, std::uint32_t hop,
                    const char* reason);
  void note_enqueue(std::uint64_t cycle, LinkId link, std::uint8_t vc,
                    std::uint32_t packet, std::uint32_t hop,
                    std::size_t depth);
};

/// Builds the IHC packet set over a topology's directed Hamiltonian
/// cycles (every node one packet per cycle, eta-interleaved stage 0 only:
/// initiators at positions 0, eta, 2 eta, ...), with either the naive
/// single-channel assignment or the Dally-Seitz dateline scheme.
[[nodiscard]] std::vector<FlitPacketSpec> ihc_flit_packets(
    const Topology& topo, std::uint32_t eta, std::uint32_t length_flits,
    bool dally_seitz);

}  // namespace ihc
