#include "sim/signature.hpp"

namespace ihc {
namespace {
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

std::uint64_t KeyRing::key_of(NodeId node) const {
  return mix(seed_ + 0x9e3779b97f4a7c15ULL * (node + 1));
}

std::uint64_t KeyRing::sign(NodeId origin, std::uint64_t payload) const {
  return mix(key_of(origin) ^ mix(payload + 0x2545F4914F6CDD1DULL));
}

bool KeyRing::verify(NodeId origin, std::uint64_t payload,
                     std::uint64_t mac) const {
  return mac == sign(origin, payload);
}

}  // namespace ihc
