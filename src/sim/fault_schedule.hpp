/// \file fault_schedule.hpp
/// \brief Dynamic (timestamped) fault injection: faults that arrive,
/// glitch, and are repaired *while* a broadcast is in flight.
///
/// The static FaultPlan freezes the adversary before the run starts; the
/// paper's setting ("in any manner whatsoever", Section I) and the
/// clock-sync / distributed-diagnosis applications built on ATA broadcast
/// both assume the service keeps running across fault arrival and repair.
/// A FaultSchedule is a set of validity *windows* the simulators consult
/// as simulated time advances:
///
///  * node fault onset/repair: a node behaves per a FaultMode during
///    [at, at + duration) and is healthy outside the window;
///  * transient link glitches: a directed link is dead for a bounded
///    interval (packets crossing it during the window are lost);
///  * permanent link death: a glitch with no end;
///  * degradation windows: a kSlow node pays its extra delay only while
///    degraded.
///
/// Both engines consult the same schedule in their own timebase: the
/// packet engine (sim/network) in picoseconds of simulated time, the flit
/// engine (sim/flit_network) in flit cycles.  Schedules round-trip
/// through JSON (schema `ihc-fault-schedule-v1`, docs/FAULTS.md) for the
/// `ihc_cli run --fault-schedule` input.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "sim/fault.hpp"
#include "sim/params.hpp"
#include "util/rng.hpp"

namespace ihc {

class Json;

class FaultSchedule {
 public:
  /// Open-ended window sentinel (a fault never repaired).
  static constexpr SimTime kForever = std::numeric_limits<SimTime>::max();

  /// Like FaultPlan, every schedule takes an explicit seed (used by the
  /// kRandom coin flips); derive one per schedule via derive_seed.
  explicit FaultSchedule(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  // --- builders ----------------------------------------------------------

  /// Node `node` behaves per `mode` during [at, at + duration).
  void fault_node(NodeId node, FaultMode mode, SimTime at,
                  SimTime duration = kForever);
  /// Truncates every window of `node` that is open at `at` (a repair);
  /// windows starting later (a re-fault) are untouched.
  void repair_node(NodeId node, SimTime at);
  /// The directed link is dead during [at, at + duration): every packet
  /// or flit that would cross it during the window is lost / blocked.
  void glitch_link(LinkId link, SimTime at, SimTime duration);
  /// Permanent variant: dead from `at` onward.
  void fail_link(LinkId link, SimTime at) { glitch_link(link, at, kForever); }
  /// Extra delay paid by a node while degraded (kSlow window) - applied
  /// to its *origin* transmissions as well as its relays.  Picoseconds in
  /// the packet engine, cycles in the flit engine.
  void set_slow_delay(std::int64_t delay) { slow_delay_ = delay; }

  // --- queries at simulated time t ---------------------------------------

  /// The mode active at `node` at time t (the latest-added matching
  /// window wins), or nullopt for a healthy node.
  [[nodiscard]] std::optional<FaultMode> mode_at(NodeId node, SimTime t) const;
  [[nodiscard]] bool link_dead(LinkId link, SimTime t) const;
  /// Extra delay `node` imposes at time t: slow_delay() inside a kSlow
  /// window, 0 otherwise.
  [[nodiscard]] SimTime slow_penalty(NodeId node, SimTime t) const {
    return mode_at(node, t) == FaultMode::kSlow ? slow_delay_ : 0;
  }
  /// Decides the fate of a relay through `node` at time t.  Draws the RNG
  /// only inside an active kRandom window, so consulting the schedule for
  /// healthy nodes never perturbs the stream.
  [[nodiscard]] RelayAction on_relay(NodeId node, SimTime t);

  /// All times > `after` at which `node`'s effective mode can change: the
  /// starts and (finite) ends of its windows, sorted and deduplicated.
  /// mode_at(node, .) is piecewise constant between consecutive change
  /// points, so sampling `after` plus every change point covers every
  /// regime from `after` to infinity - the recovery layer uses this to
  /// classify never-again-alive destinations (core/retransmit.hpp).
  [[nodiscard]] std::vector<SimTime> node_change_points(NodeId node,
                                                        SimTime after) const;
  /// True when the link is dead at *every* time >= t, i.e. the union of
  /// its windows covers [t, infinity).  Only an unrepaired window
  /// (until == kForever) can close the cover.
  [[nodiscard]] bool link_dead_from(LinkId link, SimTime t) const;

  [[nodiscard]] std::int64_t slow_delay() const { return slow_delay_; }
  /// True when any window uses kRandom coin flips.  kRandom draws its RNG
  /// in relay-processing order, which depends on the event interleaving -
  /// well-defined sequentially but not partition-invariant, so the
  /// time-sharded parallel engine rejects schedules that use it
  /// (docs/PARALLEL.md).
  [[nodiscard]] bool uses_random() const {
    for (const auto& w : node_windows_)
      if (w.mode == FaultMode::kRandom) return true;
    return false;
  }
  [[nodiscard]] bool empty() const {
    return node_windows_.empty() && link_windows_.empty();
  }
  [[nodiscard]] std::size_t window_count() const {
    return node_windows_.size() + link_windows_.size();
  }

  // --- JSON round-trip (schema ihc-fault-schedule-v1) --------------------

  /// Parses a schedule document; throws ConfigError with a field-level
  /// diagnostic on schema violations.  `default_seed` is used when the
  /// document carries no "seed" member.
  [[nodiscard]] static FaultSchedule from_json(const Json& doc,
                                               std::uint64_t default_seed);
  [[nodiscard]] Json to_json() const;

 private:
  struct NodeWindow {
    NodeId node;
    FaultMode mode;
    SimTime from;
    SimTime until;  // exclusive; kForever = never repaired
  };
  struct LinkWindow {
    LinkId link;
    SimTime from;
    SimTime until;
  };

  std::vector<NodeWindow> node_windows_;
  std::vector<LinkWindow> link_windows_;
  std::int64_t slow_delay_ = 0;
  std::uint64_t seed_;  // kept for to_json round-trips
  SplitMix64 rng_;
};

}  // namespace ihc
