#include "sim/routing.hpp"

#include <queue>

#include "obs/prof/profiler.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ihc {

RoutingTable::RoutingTable(const Graph& g)
    : g_(&g),
      n_(g.node_count()),
      towards_(static_cast<std::size_t>(n_) * n_, kInvalidNode),
      dist_(static_cast<std::size_t>(n_) * n_,
            static_cast<std::uint16_t>(-1)),
      links_(static_cast<std::size_t>(n_) * n_, kInvalidLink) {
  const obs::prof::ScopedPhase prof_scope(obs::prof::Phase::kRouteBuild);
  // BFS from each destination; towards[(v, dst)] = the neighbor of v that
  // is closer to dst (lowest id among equals, fixed by sorted adjacency +
  // FIFO order).  Unreachable pairs keep kInvalidNode / distance 0xFFFF.
  std::queue<NodeId> queue;
  for (NodeId dst = 0; dst < n_; ++dst) {
    dist_[index(dst, dst)] = 0;
    queue.push(dst);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop();
      for (const auto& a : g_->neighbors(v)) {
        if (dist_[index(a.neighbor, dst)] !=
            static_cast<std::uint16_t>(-1))
          continue;
        dist_[index(a.neighbor, dst)] =
            static_cast<std::uint16_t>(dist_[index(v, dst)] + 1);
        towards_[index(a.neighbor, dst)] = v;
        queue.push(a.neighbor);
      }
    }
  }
  // Directed link-id cache: one load replaces Graph::link()'s scan.
  for (LinkId l = 0; l < g_->link_count(); ++l)
    links_[index(g_->link_source(l), g_->link_target(l))] = l;
}

std::vector<NodeId> RoutingTable::shortest_path(NodeId src,
                                                NodeId dst) const {
  std::vector<NodeId> path;
  path_into(src, dst, path);
  return path;
}

void RoutingTable::path_into(NodeId src, NodeId dst,
                             std::vector<NodeId>& out) const {
  require(src < n_ && dst < n_, "endpoint out of range");
  out.push_back(src);
  NodeId cur = src;
  while (cur != dst) {
    cur = towards_[index(cur, dst)];
    IHC_ENSURE(cur != kInvalidNode, "graph is disconnected");
    out.push_back(cur);
  }
}

double RoutingTable::mean_distance_estimate(std::size_t samples,
                                            std::uint64_t seed) const {
  SplitMix64 rng(seed);
  double total = 0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto a = static_cast<NodeId>(rng.below(n_));
    const auto b = static_cast<NodeId>(rng.below(n_));
    if (a == b) continue;
    total += distance(a, b);
    ++counted;
  }
  return counted ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace ihc
