#include "sim/routing.hpp"

#include <queue>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ihc {

RoutingTable::RoutingTable(const Graph& g)
    : g_(&g),
      towards_(g.node_count()),
      dist_(g.node_count()) {}

void RoutingTable::build_for(NodeId dst) {
  auto& next = towards_[dst];
  if (!next.empty()) return;
  const NodeId n = g_->node_count();
  next.assign(n, kInvalidNode);
  auto& dist = dist_[dst];
  dist.assign(n, static_cast<std::uint32_t>(-1));
  // BFS from dst; next[v] = the neighbor of v that is closer to dst
  // (lowest id among equals, fixed by sorted adjacency + FIFO order).
  std::queue<NodeId> queue;
  dist[dst] = 0;
  queue.push(dst);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    for (const auto& a : g_->neighbors(v)) {
      if (dist[a.neighbor] != static_cast<std::uint32_t>(-1)) continue;
      dist[a.neighbor] = dist[v] + 1;
      next[a.neighbor] = v;
      queue.push(a.neighbor);
    }
  }
}

std::vector<NodeId> RoutingTable::shortest_path(NodeId src, NodeId dst) {
  require(src < g_->node_count() && dst < g_->node_count(),
          "endpoint out of range");
  build_for(dst);
  std::vector<NodeId> path{src};
  NodeId cur = src;
  while (cur != dst) {
    cur = towards_[dst][cur];
    IHC_ENSURE(cur != kInvalidNode, "graph is disconnected");
    path.push_back(cur);
  }
  return path;
}

NodeId RoutingTable::next_hop(NodeId at, NodeId dst) {
  build_for(dst);
  return towards_[dst][at];
}

std::uint32_t RoutingTable::distance(NodeId src, NodeId dst) {
  build_for(dst);
  return dist_[dst][src];
}

double RoutingTable::mean_distance_estimate(std::size_t samples,
                                            std::uint64_t seed) {
  SplitMix64 rng(seed);
  const NodeId n = g_->node_count();
  double total = 0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto a = static_cast<NodeId>(rng.below(n));
    const auto b = static_cast<NodeId>(rng.below(n));
    if (a == b) continue;
    total += distance(a, b);
    ++counted;
  }
  return counted ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace ihc
