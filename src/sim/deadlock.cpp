#include "sim/deadlock.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ihc {

ChannelDependencyGraph::ChannelDependencyGraph(LinkId link_count,
                                               std::uint8_t vc_count)
    : link_count_(link_count), vc_count_(vc_count) {
  require(vc_count >= 1, "need at least one virtual channel");
  out_.resize(channel_count());
}

std::size_t ChannelDependencyGraph::channel_index(const Channel& c) const {
  IHC_ENSURE(c.link < link_count_ && c.vc < vc_count_,
             "channel out of range");
  return static_cast<std::size_t>(c.vc) * link_count_ + c.link;
}

void ChannelDependencyGraph::add_dependency(const Channel& from,
                                            const Channel& to) {
  out_[channel_index(from)].push_back(
      static_cast<std::uint32_t>(channel_index(to)));
  ++arcs_;
}

bool ChannelDependencyGraph::is_acyclic() const { return find_cycle().empty(); }

std::vector<std::size_t> ChannelDependencyGraph::find_cycle() const {
  // Iterative DFS with tri-coloring; returns the nodes of the first cycle
  // found (stack segment from the back edge's target).
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(channel_count(), kWhite);
  std::vector<std::size_t> stack;        // DFS path
  std::vector<std::size_t> iter;         // per-path-node out index
  for (std::size_t root = 0; root < channel_count(); ++root) {
    if (color[root] != kWhite) continue;
    stack.assign(1, root);
    iter.assign(1, 0);
    color[root] = kGray;
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      if (iter.back() < out_[v].size()) {
        const std::size_t w = out_[v][iter.back()++];
        if (color[w] == kGray) {
          // Back edge: the cycle is the stack from w onwards.
          auto it = std::find(stack.begin(), stack.end(), w);
          return {it, stack.end()};
        }
        if (color[w] == kWhite) {
          color[w] = kGray;
          stack.push_back(w);
          iter.push_back(0);
        }
      } else {
        color[v] = kBlack;
        stack.pop_back();
        iter.pop_back();
      }
    }
  }
  return {};
}

namespace {

/// Applies fn(from_channel, to_channel) for every consecutive link pair
/// of every packet route of the IHC algorithm, with the given VC rule.
template <typename VcRule, typename Fn>
void for_ihc_dependencies(const Topology& topo, VcRule&& vc_of, Fn&& fn) {
  const Graph& g = topo.graph();
  const NodeId n = topo.node_count();
  for (const DirectedCycle& hc : topo.directed_cycles()) {
    // Link index i of a cycle: from the node at position i to position
    // i+1.  A packet from origin position p uses links p .. p+N-2.
    std::vector<LinkId> link_at(n);
    for (NodeId i = 0; i < n; ++i)
      link_at[i] = g.link(hc.at(i), hc.at((i + 1) % n));
    for (NodeId p = 0; p < n; ++p) {
      // The route's links are p, p+1, ..., p+N-2 (mod N); a packet holds
      // link p+step while waiting for link p+step+1.
      for (NodeId step = 0; step + 2 <= n - 1; ++step) {
        const NodeId i = (p + step) % n;
        const NodeId j = (p + step + 1) % n;
        fn(Channel{link_at[i], vc_of(p, i)},
           Channel{link_at[j], vc_of(p, j)});
      }
    }
  }
}

}  // namespace

ChannelDependencyGraph ihc_cdg_single_channel(const Topology& topo) {
  ChannelDependencyGraph cdg(topo.graph().link_count(), 1);
  for_ihc_dependencies(
      topo, [](NodeId, NodeId) -> std::uint8_t { return 0; },
      [&cdg](const Channel& a, const Channel& b) {
        cdg.add_dependency(a, b);
      });
  return cdg;
}

ChannelDependencyGraph ihc_cdg_dally_seitz(const Topology& topo) {
  ChannelDependencyGraph cdg(topo.graph().link_count(), 2);
  // A packet from origin position p travels on the high channel (VC 1)
  // on links at-or-after its origin (i >= p, including the wrap link
  // N-1 -> 0) and on the low channel (VC 0) once it has wrapped past the
  // dateline at position 0.
  for_ihc_dependencies(
      topo,
      [](NodeId p, NodeId i) -> std::uint8_t { return i >= p ? 1 : 0; },
      [&cdg](const Channel& a, const Channel& b) {
        cdg.add_dependency(a, b);
      });
  return cdg;
}

}  // namespace ihc
