/// \file routing.hpp
/// \brief Deterministic shortest-path routing for background traffic.
///
/// The paper's rho measures link utilization by "normal system tasks" -
/// point-to-point traffic that itself uses cut-through switching.  To
/// model it faithfully the simulator routes background packets along
/// shortest paths (BFS with lowest-neighbor-id tie-breaking, which on a
/// hypercube reproduces dimension-ordered / e-cube routes).  Per-
/// destination next-hop tables are computed lazily and cached.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace ihc {

class RoutingTable {
 public:
  /// \param g host graph (must outlive the table)
  explicit RoutingTable(const Graph& g);

  /// Shortest path from src to dst (inclusive of both endpoints).
  [[nodiscard]] std::vector<NodeId> shortest_path(NodeId src, NodeId dst);

  /// The neighbor of `at` on the canonical shortest path towards `dst`.
  [[nodiscard]] NodeId next_hop(NodeId at, NodeId dst);

  /// Hop distance between two nodes.
  [[nodiscard]] std::uint32_t distance(NodeId src, NodeId dst);

  /// Mean shortest-path length over sampled pairs (used to calibrate
  /// background-traffic injection rates).
  [[nodiscard]] double mean_distance_estimate(std::size_t samples,
                                              std::uint64_t seed);

 private:
  const Graph* g_;
  /// towards_[dst][v] = next hop from v towards dst (kInvalidNode at dst).
  std::vector<std::vector<NodeId>> towards_;
  std::vector<std::vector<std::uint32_t>> dist_;

  void build_for(NodeId dst);
};

}  // namespace ihc
