/// \file routing.hpp
/// \brief Deterministic shortest-path routing for background traffic.
///
/// The paper's rho measures link utilization by "normal system tasks" -
/// point-to-point traffic that itself uses cut-through switching.  To
/// model it faithfully the simulator routes background packets along
/// shortest paths (BFS with lowest-neighbor-id tie-breaking, which on a
/// hypercube reproduces dimension-ordered / e-cube routes).
///
/// The table is built eagerly: one BFS per destination fills flat
/// (src, dst)-indexed next-hop, distance, and link-id arrays - a plain
/// dense cache with no eviction, so every lookup is one array load.
/// After construction the table is immutable and every accessor is
/// const, which makes a single instance safely shareable across
/// concurrent campaign trials (see AtaOptions::routes); the shared-table
/// path is exercised under TSan in tests/test_route_share.cpp.
///
/// Memory is Theta(node_count^2): ~10 bytes per ordered pair, i.e. ~10 MB
/// for the 1024-node Q_10 - paid once per topology instead of per trial.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ihc {

class RoutingTable {
 public:
  /// Builds the all-pairs tables; O(node_count * (nodes + links)).
  /// \param g host graph (must outlive the table)
  explicit RoutingTable(const Graph& g);

  /// Shortest path from src to dst (inclusive of both endpoints).
  [[nodiscard]] std::vector<NodeId> shortest_path(NodeId src,
                                                  NodeId dst) const;

  /// Appends the shortest path from src to dst (inclusive) to `out`
  /// without clearing it - the allocation-free form of shortest_path()
  /// for hot paths that reuse a scratch vector.
  void path_into(NodeId src, NodeId dst, std::vector<NodeId>& out) const;

  /// The neighbor of `at` on the canonical shortest path towards `dst`.
  [[nodiscard]] NodeId next_hop(NodeId at, NodeId dst) const {
    return towards_[index(at, dst)];
  }

  /// Hop distance between two nodes.
  [[nodiscard]] std::uint32_t distance(NodeId src, NodeId dst) const {
    return dist_[index(src, dst)];
  }

  /// The directed link u -> v, or kInvalidLink when not adjacent -
  /// replaces Graph::link()'s adjacency scan with one array load.
  [[nodiscard]] LinkId link(NodeId u, NodeId v) const {
    return links_[index(u, v)];
  }

  /// Raw row-major (src, dst) -> LinkId table (n*n entries) - lets the
  /// simulator's relay hot path index links with a single load.
  [[nodiscard]] const LinkId* link_table() const { return links_.data(); }

  /// Mean shortest-path length over sampled pairs (used to calibrate
  /// background-traffic injection rates).
  [[nodiscard]] double mean_distance_estimate(std::size_t samples,
                                              std::uint64_t seed) const;

 private:
  const Graph* g_;
  NodeId n_;
  /// Flat (src, dst) tables: row = first index, column = second.
  std::vector<NodeId> towards_;        ///< next hop from src towards dst
  std::vector<std::uint16_t> dist_;    ///< hop distance
  std::vector<LinkId> links_;          ///< directed link id u -> v

  [[nodiscard]] std::size_t index(NodeId a, NodeId b) const {
    return static_cast<std::size_t>(a) * n_ + b;
  }
};

}  // namespace ihc
