/// \file signature.hpp
/// \brief Keyed message authentication, standing in for the signed-message
/// scheme of Rivest et al. [22].
///
/// The paper uses signatures purely as an oracle: "any disruption of the
/// contents of the message will be detected upon receipt".  We provide that
/// oracle with a keyed 64-bit MAC built from SplitMix64 mixing.  It is
/// deliberately NOT cryptographically secure - it is a simulation artifact
/// whose role is to let the fault-injection machinery distinguish
/// relay-corrupted packets (invalid MAC: the relay does not know the
/// origin's key) from origin-equivocation (valid MAC on a wrong value).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace ihc {

/// Per-node signing keys derived from a network-wide seed.
class KeyRing {
 public:
  explicit KeyRing(std::uint64_t network_seed = 0xC0FFEEULL)
      : seed_(network_seed) {}

  [[nodiscard]] std::uint64_t key_of(NodeId node) const;

  /// MAC over (origin, payload) with origin's key.
  [[nodiscard]] std::uint64_t sign(NodeId origin, std::uint64_t payload) const;

  /// True when `mac` matches sign(origin, payload).
  [[nodiscard]] bool verify(NodeId origin, std::uint64_t payload,
                            std::uint64_t mac) const;

 private:
  std::uint64_t seed_;
};

}  // namespace ihc
