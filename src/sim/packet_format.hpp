/// \file packet_format.hpp
/// \brief Concrete broadcast packet header format.
///
/// The paper's conclusion defers "several practical issues such as the
/// packet format, timing message reconstruction, and control" - this
/// module and core/reassembly.hpp supply them.  A broadcast packet header
/// is one 64-bit word:
///
///   bits 63..48  origin node id          (16 bits, networks up to 64K)
///   bits 47..42  route / directed cycle  (6 bits, gamma <= 64)
///   bits 41..30  sequence number         (12 bits: packet index within
///                                         a long message)
///   bits 29..18  total packet count      (12 bits)
///   bits 17..16  kind                    (2 bits: data / control)
///   bits 15..0   CRC-16/CCITT over bits 63..16
///
/// The CRC makes header corruption detectable independently of the
/// payload MAC; decode_header rejects damaged words.
#pragma once

#include <cstdint>
#include <optional>

#include "graph/graph.hpp"

namespace ihc {

/// Width of the header's route field: 6 bits, so a packetized broadcast
/// can address at most 64 directed routes (gamma <= 64).  Callers that
/// map route tags into headers must require this bound instead of
/// silently aliasing route ids (core/retransmit.cpp).
inline constexpr std::size_t kMaxHeaderRoutes = 64;

enum class PacketKind : std::uint8_t {
  kData = 0,
  kControl = 1,  ///< e.g. the stop-relaying address tags of Section IV
};

struct PacketHeader {
  NodeId origin = 0;          ///< < 65536
  std::uint8_t route = 0;     ///< < 64
  std::uint16_t seq = 0;      ///< < 4096
  std::uint16_t total = 1;    ///< < 4096, >= 1, seq < total
  PacketKind kind = PacketKind::kData;

  friend bool operator==(const PacketHeader&, const PacketHeader&) = default;
};

/// CRC-16/CCITT-FALSE over a byte span (polynomial 0x1021, init 0xFFFF).
[[nodiscard]] std::uint16_t crc16_ccitt(const std::uint8_t* data,
                                        std::size_t size);

/// Packs the header into its 64-bit wire word (computes the CRC).
/// Throws ConfigError when a field exceeds its width.
[[nodiscard]] std::uint64_t encode_header(const PacketHeader& header);

/// Unpacks a wire word; nullopt when the CRC does not match (corrupted
/// in transit) or the fields are inconsistent.
[[nodiscard]] std::optional<PacketHeader> decode_header(std::uint64_t word);

}  // namespace ihc
