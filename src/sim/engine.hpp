/// \file engine.hpp
/// \brief Engine facade: one construction point that dispatches between
/// the sequential Network and the time-sharded ParallelNetwork.
///
/// NetworkParams::shards selects the engine: 0 (the default) is the
/// classic sequential Network - the engine behind every seed golden -
/// and >= 1 is the windowed parallel engine with that many worker
/// shards (sim/parallel/, docs/PARALLEL.md).  The facade forwards the
/// narrow surface the ATA drivers use, so `ihc_cli --shards N` can flip
/// every driver onto the parallel engine without touching them.
///
/// Forwarding calls, not virtual dispatch: the drivers make a handful
/// of calls per *run*, so the branch is irrelevant, and keeping both
/// engines as concrete types preserves their individually-tested
/// surfaces (tests/test_sim_network.cpp, tests/test_parallel_engine.cpp).
#pragma once

#include <memory>
#include <utility>

#include "sim/network.hpp"
#include "sim/parallel/parallel_network.hpp"

namespace ihc {

class SimEngine {
 public:
  using CompletionHook = Network::CompletionHook;

  SimEngine(const Graph& g, const NetworkParams& params,
            DeliveryLedger::Granularity granularity =
                DeliveryLedger::Granularity::kCounts) {
    if (params.shards == 0)
      seq_ = std::make_unique<Network>(g, params, granularity);
    else
      par_ = std::make_unique<ParallelNetwork>(g, params, granularity);
  }

  void set_routes(const RoutingTable* routes) {
    seq_ ? seq_->set_routes(routes) : par_->set_routes(routes);
  }
  void set_fault_plan(FaultPlan* plan) {
    seq_ ? seq_->set_fault_plan(plan) : par_->set_fault_plan(plan);
  }
  void set_fault_schedule(FaultSchedule* schedule) {
    seq_ ? seq_->set_fault_schedule(schedule)
         : par_->set_fault_schedule(schedule);
  }
  void set_tracer(obs::Tracer* tracer) {
    seq_ ? seq_->set_tracer(tracer) : par_->set_tracer(tracer);
  }
  void set_metrics(obs::MetricsRegistry* metrics) {
    seq_ ? seq_->set_metrics(metrics) : par_->set_metrics(metrics);
  }
  void set_completion_hook(CompletionHook hook) {
    seq_ ? seq_->set_completion_hook(std::move(hook))
         : par_->set_completion_hook(std::move(hook));
  }
  void flush_metrics() { seq_ ? seq_->flush_metrics() : par_->flush_metrics(); }

  FlowId add_flow(FlowSpec spec) {
    return seq_ ? seq_->add_flow(std::move(spec))
                : par_->add_flow(std::move(spec));
  }
  void run() { seq_ ? seq_->run() : par_->run(); }

  [[nodiscard]] const NetStats& stats() const {
    return seq_ ? seq_->stats() : par_->stats();
  }
  [[nodiscard]] const DeliveryLedger& ledger() const {
    return seq_ ? seq_->ledger() : par_->ledger();
  }
  [[nodiscard]] DeliveryLedger& ledger() {
    return seq_ ? seq_->ledger() : par_->ledger();
  }
  [[nodiscard]] const Graph& graph() const {
    return seq_ ? seq_->graph() : par_->graph();
  }
  [[nodiscard]] const NetworkParams& params() const {
    return seq_ ? seq_->params() : par_->params();
  }
  [[nodiscard]] double mean_link_utilization() const {
    return seq_ ? seq_->mean_link_utilization()
                : par_->mean_link_utilization();
  }
  [[nodiscard]] SimTime flow_finish(FlowId flow) const {
    return seq_ ? seq_->flow_finish(flow) : par_->flow_finish(flow);
  }

  /// The windowed engine behind the facade, or nullptr when sequential -
  /// for the parallel-only introspection (partition, window counts).
  [[nodiscard]] ParallelNetwork* parallel() { return par_.get(); }
  [[nodiscard]] const ParallelNetwork* parallel() const { return par_.get(); }
  /// The sequential engine behind the facade, or nullptr when sharded.
  [[nodiscard]] Network* sequential() { return seq_.get(); }

 private:
  std::unique_ptr<Network> seq_;
  std::unique_ptr<ParallelNetwork> par_;
};

}  // namespace ihc
