#include "workload/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <string_view>
#include <vector>

#include "exp/campaigns.hpp"
#include "util/error.hpp"

namespace ihc::workload {

namespace {

struct Point {
  double rate = 0.0;
  const exp::TrialResult* trial = nullptr;
};

double metric(const exp::TrialResult& r, std::string_view name) {
  return r.metric(name);  // throws ConfigError when absent
}

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, v);
  return buf;
}

}  // namespace

Json workload_report(const exp::CampaignResult& result,
                     const SaturationThresholds& thresholds) {
  // algo -> points, in first-seen (axis) order.
  std::vector<std::string> algo_order;
  std::map<std::string, std::vector<Point>> by_algo;
  for (const exp::TrialResult& r : result.trials) {
    require(r.ok, "workload report needs every trial to succeed; trial '" +
                      r.trial.id + "' failed: " + r.error);
    const std::string& algo = r.trial.get_str("algo");
    if (by_algo.find(algo) == by_algo.end()) algo_order.push_back(algo);
    by_algo[algo].push_back({r.trial.get_double("rate_per_us"), &r});
  }

  Json doc = Json::object();
  doc.set("schema", "ihc-workload-v1");
  doc.set("campaign", result.spec.name);
  doc.set("description", result.spec.description);
  Json config = Json::object();
  config.set("accepted_fraction", thresholds.accepted_fraction);
  config.set("latency_blowup", thresholds.latency_blowup);
  doc.set("saturation_thresholds", std::move(config));

  Json curves = Json::array();
  for (const std::string& algo : algo_order) {
    std::vector<Point>& points = by_algo[algo];
    std::sort(points.begin(), points.end(),
              [](const Point& a, const Point& b) { return a.rate < b.rate; });

    const double zero_load =
        metric(*points.front().trial, "latency_mean_ps");
    double saturation_rate = 0.0;
    bool reached = false;

    Json curve = Json::object();
    curve.set("algorithm", algo);
    curve.set("topology",
              std::string(exp::saturation_sweep_topology(algo)));
    Json arr = Json::array();
    for (const Point& p : points) {
      const exp::TrialResult& r = *p.trial;
      const double offered = metric(r, "offered_per_us");
      const double accepted = metric(r, "accepted_per_us");
      const double mean = metric(r, "latency_mean_ps");
      const bool saturated =
          accepted < thresholds.accepted_fraction * offered ||
          (zero_load > 0.0 && mean > thresholds.latency_blowup * zero_load);
      if (saturated && !reached) {
        reached = true;
        saturation_rate = p.rate;
      }
      Json point = Json::object();
      point.set("rate_per_us", p.rate);
      point.set("saturated", saturated);
      for (const exp::Metric& m : r.metrics)
        point.set(m.name, std::isfinite(m.value) ? Json(m.value)
                                                 : Json(nullptr));
      arr.push(std::move(point));
    }
    curve.set("points", std::move(arr));

    Json sat = Json::object();
    sat.set("reached", reached);
    sat.set("rate_per_us", reached ? Json(saturation_rate) : Json(nullptr));
    sat.set("zero_load_latency_ps",
            std::isfinite(zero_load) ? Json(zero_load) : Json(nullptr));
    curve.set("saturation", std::move(sat));
    curves.push(std::move(curve));
  }
  doc.set("curves", std::move(curves));
  return doc;
}

std::string workload_ascii(const Json& report) {
  std::string out;
  const Json* campaign = report.find("campaign");
  out += "workload sweep: ";
  out += campaign != nullptr ? std::string(campaign->as_string())
                             : std::string("?");
  out += " (rate-vs-latency, per-origin offered rate in sessions/us)\n";

  const Json* curves = report.find("curves");
  require(curves != nullptr && curves->is_array(),
          "workload report has no curves");
  for (const Json& curve : curves->items()) {
    const Json* algo = curve.find("algorithm");
    const Json* topo = curve.find("topology");
    const Json* sat = curve.find("saturation");
    out += "\n";
    out += algo != nullptr ? std::string(algo->as_string()) : "?";
    out += " on ";
    out += topo != nullptr ? std::string(topo->as_string()) : "?";
    if (sat != nullptr) {
      const Json* reached = sat->find("reached");
      const Json* at = sat->find("rate_per_us");
      if (reached != nullptr && reached->as_bool() && at != nullptr &&
          at->is_number()) {
        out += "  [saturates at rate " + fmt("%.3g", at->as_double()) + "]";
      } else {
        out += "  [no saturation in swept range]";
      }
    }
    out += "\n";
    out += "    rate   offer/us  accept/us   mean_us    p95_us    p99_us"
           "   rej  fairness\n";
    const Json* points = curve.find("points");
    if (points == nullptr || !points->is_array()) continue;
    for (const Json& p : points->items()) {
      auto num = [&](const char* key) {
        const Json* v = p.find(key);
        return v != nullptr && v->is_number()
                   ? v->as_double()
                   : std::numeric_limits<double>::quiet_NaN();
      };
      const Json* saturated = p.find("saturated");
      out += (saturated != nullptr && saturated->as_bool()) ? "  * " : "    ";
      out += fmt("%-7.3g", num("rate_per_us"));
      out += fmt("%9.3f", num("offered_per_us"));
      out += fmt("%11.3f", num("accepted_per_us"));
      out += fmt("%10.3f", num("latency_mean_ps") / 1e6);
      out += fmt("%10.3f", num("latency_p95_ps") / 1e6);
      out += fmt("%10.3f", num("latency_p99_ps") / 1e6);
      out += fmt("%6.0f", num("rejected_sessions"));
      out += fmt("%10.3f", num("fairness_jain"));
      out += "\n";
    }
  }
  return out;
}

}  // namespace ihc::workload
