#include "workload/engine.hpp"

#include <algorithm>
#include <deque>

#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"

namespace ihc::workload {

namespace {

struct OriginState {
  std::size_t next = 0;            ///< next unprocessed arrival index
  std::deque<std::size_t> queue;   ///< admitted, waiting (global sids)
  std::vector<std::size_t> batch;  ///< sids of the in-flight broadcast
  std::uint32_t pending_flows = 0; ///< route copies still in flight
};

double jain_index(const std::vector<std::uint64_t>& shares) {
  double sum = 0.0;
  double sq = 0.0;
  for (const std::uint64_t x : shares) {
    const auto v = static_cast<double>(x);
    sum += v;
    sq += v * v;
  }
  if (sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(shares.size()) * sq);
}

}  // namespace

MeasurementStats summarize_measurement(const WorkloadResult& result,
                                       const WarmupConfig& config) {
  MeasurementStats m;
  if (result.sessions.empty() || result.horizon <= 0) return m;

  // The measurement cohort is arrival-based (the booksim convention): a
  // session belongs to the window its ARRIVAL falls in, and its
  // completion counts wherever it lands.  Under overload the queues
  // keep draining long past the arrivals, and folding that tail into
  // the window would dilute the rates - so the window ends with the
  // arrivals, not the completions.  Specifically it ends at the
  // NOMINAL stream duration (sessions_per_origin x mean gap), a fixed
  // observation interval identical for every algorithm and topology at
  // a given rate: ending at any realized arrival instead would tie the
  // window to one stream's sampling luck and skew rate comparisons.
  const NodeId origins =
      result.sessions.back().origin + 1;  // origin-major id order
  const SimTime arrival_horizon = result.nominal_horizon;
  if (arrival_horizon <= 0) return m;

  std::vector<SimTime> completions;
  completions.reserve(result.sessions.size());
  for (const SessionRecord& s : result.sessions)
    if (s.completion > 0 && s.completion <= arrival_horizon)
      completions.push_back(s.completion);
  m.warmup_end = detect_warmup_end(completions, arrival_horizon, config);
  m.window_ps = arrival_horizon - m.warmup_end;
  if (m.window_ps <= 0) return m;

  std::vector<std::uint64_t> per_origin_completed(origins, 0);
  std::vector<double> latencies;
  for (const SessionRecord& s : result.sessions) {
    if (s.arrival < m.warmup_end || s.arrival > arrival_horizon) continue;
    ++m.offered;
    if (s.rejected) {
      ++m.rejected;
    } else if (s.completion > 0) {
      ++m.completed;
      ++per_origin_completed[s.origin];
      latencies.push_back(static_cast<double>(s.completion - s.arrival));
    }
  }

  const double window_us =
      static_cast<double>(m.window_ps) / static_cast<double>(sim_us(1));
  const double n = static_cast<double>(origins);
  m.offered_per_us = static_cast<double>(m.offered) / (window_us * n);
  m.accepted_per_us = static_cast<double>(m.completed) / (window_us * n);
  if (!latencies.empty()) {
    Summary summary;
    for (const double x : latencies) summary.add(x);
    m.mean_latency_ps = summary.mean();
    m.latency_ps = percentiles(std::move(latencies));
  }
  m.fairness_jain = jain_index(per_origin_completed);
  return m;
}

WorkloadResult run_workload(const SessionPlanner& planner,
                            const WorkloadOptions& options) {
  require(options.batch_max >= 1, "batch_max must be at least 1");
  require(options.arrivals.sessions_per_origin >= 1,
          "need at least one session per origin");

  const Topology& topo = planner.topology();
  const NodeId origins = topo.node_count();
  const std::size_t per_origin = options.arrivals.sessions_per_origin;

  WorkloadResult result;
  result.algorithm = planner.algorithm();
  result.nominal_horizon =
      static_cast<SimTime>(per_origin) * options.arrivals.mean_gap_ps;
  result.sessions.resize(static_cast<std::size_t>(origins) * per_origin);

  std::vector<std::vector<SimTime>> arrivals(origins);
  for (NodeId o = 0; o < origins; ++o) {
    arrivals[o] = generate_arrivals(options.arrivals, options.seed, o);
    for (std::size_t i = 0; i < per_origin; ++i) {
      SessionRecord& rec = result.sessions[o * per_origin + i];
      rec.id = static_cast<std::int64_t>(o * per_origin + i);
      rec.origin = o;
      rec.arrival = arrivals[o][i];
    }
  }
  result.offered = result.sessions.size();

  SimEngine net(topo.graph(), options.net);
  if (options.tracer != nullptr) net.set_tracer(options.tracer);
  if (options.metrics != nullptr) net.set_metrics(options.metrics);
  if (options.routes != nullptr) net.set_routes(options.routes);

  // The offered stream is known a priori (open loop), so arrival events
  // go out up front in global time order - the trace then carries the
  // full offered/accepted ledger regardless of how service interleaves.
  if (options.tracer != nullptr && options.tracer->active()) {
    std::vector<std::size_t> order(result.sessions.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                const SessionRecord& ra = result.sessions[a];
                const SessionRecord& rb = result.sessions[b];
                if (ra.arrival != rb.arrival) return ra.arrival < rb.arrival;
                return ra.id < rb.id;
              });
    for (const std::size_t i : order) {
      const SessionRecord& rec = result.sessions[i];
      options.tracer->session_arrived(rec.arrival, rec.id, rec.origin);
    }
  }

  std::vector<OriginState> state(origins);
  std::vector<NodeId> origin_of_flow;
  const std::uint32_t unit_len =
      options.net.mu;  // one session's packet length

  auto start_service = [&](NodeId o, std::vector<std::size_t> sids,
                           SimTime at) {
    OriginState& st = state[o];
    IHC_ENSURE(st.pending_flows == 0 && st.batch.empty(),
               "origin started service while busy");
    const auto batch_size = static_cast<std::uint32_t>(sids.size());
    for (const std::size_t sid : sids) {
      SessionRecord& rec = result.sessions[sid];
      rec.service_start = at;
      rec.batch = batch_size;
    }
    const std::vector<FlowSpec>& plan = planner.flows(o);
    for (const FlowSpec& tmpl : plan) {
      FlowSpec flow = tmpl;  // route storage is shared via the planner
      flow.inject_time = at;
      flow.length_units = batch_size * unit_len;
      const FlowId id = net.add_flow(std::move(flow));
      IHC_ENSURE(id == origin_of_flow.size(), "flow ids must be dense");
      origin_of_flow.push_back(o);
    }
    st.pending_flows = static_cast<std::uint32_t>(plan.size());
    st.batch = std::move(sids);
    ++result.batches;
    result.merged_sessions += batch_size - 1;
  };

  // Replays origin o's arrivals up to `now` against the bounded queue.
  // Queue occupancy only changes at this origin's completions, so the
  // deferred replay reproduces the per-arrival admission decisions
  // exactly (arrivals admitted in order until the bound, then rejected).
  auto absorb_arrivals = [&](NodeId o, SimTime now) {
    OriginState& st = state[o];
    while (st.next < per_origin && arrivals[o][st.next] <= now) {
      const std::size_t sid = o * per_origin + st.next;
      if (st.queue.size() < options.queue_capacity) {
        st.queue.push_back(sid);
        ++result.admitted;
        result.max_queue_depth = std::max(
            result.max_queue_depth,
            static_cast<std::uint32_t>(st.queue.size()));
      } else {
        SessionRecord& rec = result.sessions[sid];
        rec.rejected = true;
        ++result.rejected;
        if (options.tracer != nullptr)
          options.tracer->session_rejected(
              rec.arrival, rec.id, o,
              static_cast<std::uint32_t>(st.queue.size()));
      }
      ++st.next;
    }
  };

  net.set_completion_hook([&](FlowId flow, SimTime at) {
    const NodeId o = origin_of_flow[flow];
    OriginState& st = state[o];
    IHC_ENSURE(st.pending_flows > 0, "completion accounting broke");
    if (--st.pending_flows > 0) return;

    const std::uint32_t batch_size =
        static_cast<std::uint32_t>(st.batch.size());
    for (const std::size_t sid : st.batch) {
      SessionRecord& rec = result.sessions[sid];
      rec.completion = at;
      ++result.completed;
      if (options.tracer != nullptr)
        options.tracer->session_span(rec.arrival, at, rec.id, o, batch_size);
    }
    st.batch.clear();

    absorb_arrivals(o, at);
    if (!st.queue.empty()) {
      // FRS merge: up to batch_max waiting sessions ride one broadcast.
      std::vector<std::size_t> sids;
      while (!st.queue.empty() && sids.size() < options.batch_max) {
        sids.push_back(st.queue.front());
        st.queue.pop_front();
      }
      start_service(o, std::move(sids), at);
    } else if (st.next < per_origin) {
      // Idle origin: chain the next arrival directly.  No arrival of o
      // precedes it (absorb_arrivals drained everything <= `at`), so
      // serving it the instant it arrives is exact.
      const std::size_t sid = o * per_origin + st.next;
      const SimTime when = arrivals[o][st.next];
      ++st.next;
      ++result.admitted;
      start_service(o, {sid}, when);
    }
  });

  for (NodeId o = 0; o < origins; ++o) {
    const std::size_t sid = o * per_origin;
    state[o].next = 1;
    ++result.admitted;
    start_service(o, {sid}, arrivals[o][0]);
  }

  net.run();
  net.set_completion_hook(nullptr);

  result.stats = net.stats();
  result.inflight_at_drain = result.admitted - result.completed;
  for (const SessionRecord& s : result.sessions)
    result.horizon =
        std::max({result.horizon, s.arrival, s.completion});

  result.measurement = summarize_measurement(result, options.warmup);

  if (options.tracer != nullptr && result.horizon > 0) {
    options.tracer->stage_span(0, result.measurement.warmup_end, "warmup",
                               0);
    options.tracer->stage_span(result.measurement.warmup_end,
                               result.horizon, "measurement", 1);
  }

  if (options.metrics != nullptr) {
    obs::MetricsRegistry& m = *options.metrics;
    m.count("workload.offered_sessions",
            static_cast<std::int64_t>(result.offered));
    m.count("workload.admitted_sessions",
            static_cast<std::int64_t>(result.admitted));
    m.count("workload.rejected_sessions",
            static_cast<std::int64_t>(result.rejected));
    m.count("workload.completed_sessions",
            static_cast<std::int64_t>(result.completed));
    m.count("workload.batches", static_cast<std::int64_t>(result.batches));
    m.count("workload.merged_sessions",
            static_cast<std::int64_t>(result.merged_sessions));
    m.count("workload.inflight_at_drain",
            static_cast<std::int64_t>(result.inflight_at_drain));
    m.maximum("workload.max_queue_depth",
              static_cast<std::int64_t>(result.max_queue_depth));
    // Measurement-phase latencies only: the transient would bias the
    // histogram low (see docs/WORKLOADS.md).
    for (const SessionRecord& s : result.sessions) {
      if (s.arrival < result.measurement.warmup_end) continue;
      if (s.rejected || s.completion == 0) continue;
      m.observe("workload.session_latency_ps",
                static_cast<double>(s.completion - s.arrival));
    }
    net.flush_metrics();
  }

  return result;
}

}  // namespace ihc::workload
