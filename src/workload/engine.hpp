/// \file engine.hpp
/// \brief Continuous-service workload engine: open-loop broadcast
/// sessions through the packet-level simulator.
///
/// One Network, one event-driven run.  Every origin offers an arrival
/// stream of broadcast sessions (arrivals.hpp); each session is the
/// gamma-copy single-origin broadcast planned by a SessionPlanner.  The
/// scheduler keeps a bounded admission queue per origin:
///
///  * an arrival while the origin is idle starts service immediately;
///  * an arrival behind an in-flight broadcast queues, up to
///    queue_capacity - beyond that it is *rejected* (counted, traced,
///    never serviced): bounded-queue admission control;
///  * when a broadcast completes, up to batch_max queued sessions merge
///    into ONE broadcast carrying their combined payload (length_units
///    scales with the batch) - the paper's FRS merging idea applied as a
///    batching policy, amortizing the tau_S startup across the batch.
///
/// Service chaining rides the simulator's completion hook, so the whole
/// run is a single net.run() and stays deterministic under any --jobs
/// count (nothing here depends on wall-clock or thread scheduling).
/// Faults are honored (a dropped tree branch still completes its
/// session's flow accounting; a dropped cycle flow stalls its origin,
/// surfacing as in-flight-at-drain in the conservation ledger).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "sim/network.hpp"
#include "util/stats.hpp"
#include "workload/arrivals.hpp"
#include "workload/warmup.hpp"

namespace ihc::obs {
class MetricsRegistry;
class Tracer;
}  // namespace ihc::obs

namespace ihc::workload {

struct WorkloadOptions {
  ArrivalConfig arrivals;
  /// Sessions that may wait per origin behind the in-flight broadcast;
  /// an arrival finding the queue full is rejected.
  std::uint32_t queue_capacity = 8;
  /// Most queued sessions one completed broadcast may merge into its
  /// successor (FRS batching bound; >= 1).
  std::uint32_t batch_max = 4;
  /// Arrival-stream seed.  Campaigns share it across the algorithm axis
  /// so every algorithm serves the identical offered traffic.
  std::uint64_t seed = 1;
  NetworkParams net;
  WarmupConfig warmup;
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  const RoutingTable* routes = nullptr;
};

/// One offered session's lifecycle, id = origin * sessions_per_origin +
/// per-origin arrival index.
struct SessionRecord {
  std::int64_t id = 0;
  NodeId origin = kInvalidNode;
  SimTime arrival = 0;
  SimTime service_start = 0;  ///< batch injection time (admitted only)
  SimTime completion = 0;     ///< 0 while in flight / rejected
  std::uint32_t batch = 0;    ///< sessions merged into its broadcast
  bool rejected = false;
};

/// Measurement-phase summary.  The cohort is arrival-based: sessions
/// whose ARRIVAL falls in [warmup_end, horizon] belong to the window,
/// and their completions count wherever they land (the queues keep
/// draining past the last arrival under overload; that tail must not
/// dilute the rates).  The horizon is the NOMINAL stream duration
/// (sessions_per_origin x mean gap, WorkloadResult::nominal_horizon) -
/// a fixed observation interval that is identical for every algorithm
/// and every topology at a given rate, so rate comparisons are never
/// skewed by whichever fixed-count stream happens to straggle or
/// finish early.
struct MeasurementStats {
  SimTime warmup_end = 0;
  SimTime window_ps = 0;  ///< nominal_horizon - warmup_end
  std::uint64_t offered = 0;    ///< arrivals in the window
  std::uint64_t completed = 0;  ///< completions of those arrivals
  std::uint64_t rejected = 0;   ///< rejections of those arrivals
  double offered_per_us = 0.0;   ///< per origin
  double accepted_per_us = 0.0;  ///< per origin
  double mean_latency_ps = 0.0;
  Percentiles latency_ps;
  /// Jain fairness index over per-origin completed counts (1 = perfectly
  /// fair, 1/N = one origin got everything).
  double fairness_jain = 0.0;
};

struct WorkloadResult {
  std::string algorithm;
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;           ///< broadcasts injected
  std::uint64_t merged_sessions = 0;   ///< sessions beyond the first of a batch
  std::uint64_t inflight_at_drain = 0; ///< admitted but never completed
  std::uint32_t max_queue_depth = 0;
  SimTime horizon = 0;                 ///< last completion (or arrival)
  /// Nominal stream duration: sessions_per_origin x mean_gap_ps.  The
  /// measurement window ends here (see MeasurementStats).
  SimTime nominal_horizon = 0;
  MeasurementStats measurement;
  std::vector<SessionRecord> sessions; ///< id order (origin-major)
  NetStats stats;
};

/// Runs the open-loop workload to drain.  Exports `workload.*` metrics
/// (and the simulator's `net.*`) into options.metrics when attached;
/// emits session_arrive / session_reject / session trace events when
/// options.tracer is attached.
[[nodiscard]] WorkloadResult run_workload(const SessionPlanner& planner,
                                          const WorkloadOptions& options);

/// Recomputes the measurement-phase summary of a result under a
/// different warmup configuration (pure function of result.sessions).
[[nodiscard]] MeasurementStats summarize_measurement(
    const WorkloadResult& result, const WarmupConfig& config);

}  // namespace ihc::workload
