#include "workload/arrivals.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ihc::workload {

std::vector<SimTime> generate_arrivals(const ArrivalConfig& config,
                                       std::uint64_t seed, NodeId origin) {
  require(config.mean_gap_ps > 0, "mean arrival gap must be positive");
  require(config.burst_skew >= 0.0 && config.burst_skew < 1.0,
          "burst_skew must lie in [0, 1)");
  require(config.dwell_gaps > 0.0, "dwell_gaps must be positive");

  // Per-origin stream: same derivation shape as SplitMix64::fork, keyed
  // on the origin id so streams are independent and order-free.
  SplitMix64 rng(mix64(seed ^ (0xd1342543de82ef95ULL * (origin + 1))));

  std::vector<SimTime> arrivals;
  arrivals.reserve(config.sessions_per_origin);
  SimTime now = 0;
  if (config.model == ArrivalModel::kPoisson) {
    for (std::size_t i = 0; i < config.sessions_per_origin; ++i) {
      now += exponential_gap_ps(rng, config.mean_gap_ps);
      arrivals.push_back(now);
    }
    return arrivals;
  }

  const double mean = static_cast<double>(config.mean_gap_ps);
  const auto fast =
      static_cast<SimTime>(mean / (1.0 + config.burst_skew) + 0.5);
  const auto slow =
      static_cast<SimTime>(mean / (1.0 - config.burst_skew) + 0.5);
  const auto dwell = static_cast<SimTime>(mean * config.dwell_gaps + 0.5);
  MmppGaps gaps(rng, fast < 1 ? 1 : fast, slow < 1 ? 1 : slow,
                dwell < 1 ? 1 : dwell);
  for (std::size_t i = 0; i < config.sessions_per_origin; ++i) {
    now += gaps.next();
    arrivals.push_back(now);
  }
  return arrivals;
}

}  // namespace ihc::workload
