/// \file sweep.hpp
/// \brief `ihc-workload-v1` reports: rate-vs-latency curves + saturation.
///
/// Post-processes a saturation-sweep CampaignResult into the booksim-style
/// artifact: one curve per algorithm (points sorted by offered rate) and
/// a detected saturation point.  A point is saturated when its measured
/// accepted throughput falls below `accepted_fraction` of its measured
/// offered throughput (the network can no longer keep up and the bounded
/// queues shed load), or when its mean measurement-phase latency exceeds
/// `latency_blowup` times the curve's zero-load latency (the lowest-rate
/// point's mean) - whichever rate comes first.  The JSON document is a
/// pure function of the trial parameters and metrics, with no timing or
/// job-count fields, so `--jobs 1` and `--jobs 8` runs serialize
/// byte-identically.
#pragma once

#include <string>

#include "exp/runner.hpp"
#include "util/json.hpp"

namespace ihc::workload {

struct SaturationThresholds {
  double accepted_fraction = 0.95;
  double latency_blowup = 3.0;
};

/// Builds the `ihc-workload-v1` document from a campaign run whose trials
/// carry the saturation_sweep metric set (exp/campaigns.cpp).  Throws
/// ConfigError when a trial failed or the metric set is incomplete.
[[nodiscard]] Json workload_report(const exp::CampaignResult& result,
                                   const SaturationThresholds& thresholds =
                                       {});

/// ASCII rendering of a workload_report() document: one rate-vs-latency
/// table per algorithm, saturated points flagged with '*'.
[[nodiscard]] std::string workload_ascii(const Json& report);

}  // namespace ihc::workload
