/// \file arrivals.hpp
/// \brief Deterministic open-loop session arrival processes.
///
/// The workload engine drives continuous broadcast service: every origin
/// generates a stream of session arrivals independent of the network's
/// state (open-loop, the booksim traffic-sweep methodology), so offered
/// load is a free parameter and saturation shows up as divergence between
/// offered and accepted throughput.  Two models:
///
///  * Poisson - exponential inter-arrival gaps with the configured mean;
///  * MMPP    - a two-state Markov-modulated Poisson process alternating
///    between a burst state (gaps shrunk by 1 + burst_skew) and a lull
///    state (gaps stretched by the matching factor), state dwell times
///    exponential.  The skew is rate-preserving in expectation, so a
///    Poisson and an MMPP sweep at the same mean gap offer the same
///    long-run load and differ only in burstiness.
///
/// Streams are pure functions of (seed, origin): integer-picosecond gaps
/// from util/rng's platform-stable samplers, so a sweep is byte-identical
/// across --jobs and across machines.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sim/params.hpp"

namespace ihc::workload {

enum class ArrivalModel : std::uint8_t { kPoisson, kMmpp };

struct ArrivalConfig {
  ArrivalModel model = ArrivalModel::kPoisson;
  /// Mean inter-arrival gap per origin, picoseconds (> 0).
  SimTime mean_gap_ps = sim_us(1);
  /// Sessions offered per origin over the run (the open-loop horizon).
  std::size_t sessions_per_origin = 64;
  /// MMPP shape: burst gaps = mean / (1 + skew), lull gaps =
  /// mean / (1 - skew); skew in [0, 1).  Ignored by Poisson.
  double burst_skew = 0.6;
  /// MMPP mean state dwell time as a multiple of mean_gap_ps.
  double dwell_gaps = 10.0;
};

/// The arrival times (strictly increasing, picoseconds from 0) of one
/// origin's session stream.  Deterministic in (config, seed, origin).
[[nodiscard]] std::vector<SimTime> generate_arrivals(
    const ArrivalConfig& config, std::uint64_t seed, NodeId origin);

}  // namespace ihc::workload
