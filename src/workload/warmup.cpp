#include "workload/warmup.hpp"

#include <cmath>
#include <cstddef>

#include "util/error.hpp"

namespace ihc::workload {

SimTime detect_warmup_end(const std::vector<SimTime>& completion_times,
                          SimTime horizon, const WarmupConfig& config) {
  require(horizon > 0, "warmup detection needs a positive horizon");
  require(config.windows >= 2 && config.stable_windows >= 1 &&
              config.stable_windows <= config.windows,
          "warmup windows misconfigured");
  require(config.tolerance > 0.0, "warmup tolerance must be positive");

  const auto fallback = static_cast<SimTime>(
      static_cast<double>(horizon) * config.fallback_fraction + 0.5);
  if (config.mode == WarmupMode::kFixedFraction) return fallback;
  if (completion_times.empty()) return fallback;

  const std::uint32_t w = config.windows;
  // Ceiling division so the last window covers the horizon endpoint.
  const SimTime window_len = (horizon + w - 1) / w;
  std::vector<std::uint64_t> counts(w, 0);
  for (const SimTime t : completion_times) {
    auto idx = static_cast<std::size_t>(t / window_len);
    if (idx >= w) idx = w - 1;
    ++counts[idx];
  }

  for (std::uint32_t start = 0; start + config.stable_windows <= w;
       ++start) {
    double sum = 0.0;
    for (std::uint32_t i = 0; i < config.stable_windows; ++i)
      sum += static_cast<double>(counts[start + i]);
    const double mean = sum / static_cast<double>(config.stable_windows);
    if (mean <= 0.0) continue;
    bool stable = true;
    for (std::uint32_t i = 0; i < config.stable_windows && stable; ++i) {
      const double dev =
          std::abs(static_cast<double>(counts[start + i]) - mean);
      if (dev > config.tolerance * mean) stable = false;
    }
    if (stable) return static_cast<SimTime>(start) * window_len;
  }
  return fallback;
}

}  // namespace ihc::workload
