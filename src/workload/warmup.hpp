/// \file warmup.hpp
/// \brief Steady-state warmup detection for streaming runs.
///
/// Open-loop measurements must discard the initial transient (empty
/// queues, first-session pipelining) or latency statistics are biased
/// low.  The detector splits the run horizon into equal windows, counts
/// session completions per window, and declares warmup over at the first
/// window that starts a run of `stable_windows` windows whose throughput
/// stays within `tolerance` of their joint mean - windowed throughput
/// convergence, evaluated post-hoc on the completion record so it is a
/// pure deterministic function of the run.  When no stable run exists
/// (wildly bursty or saturated-beyond-recovery traffic) it falls back to
/// discarding a fixed fraction of the horizon.
///
/// Cross-algorithm sweeps should use kFixedFraction instead: adaptive
/// detection reads each algorithm's own completion record, so two
/// algorithms serving the identical arrival streams end up measured
/// over *different* windows and sub-saturation throughput comparisons
/// turn into window artifacts.  A fixed fraction of the (shared)
/// arrival horizon gives every algorithm the same cohort, so accepted
/// throughput differs only by genuine rejections and in-flight loss.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/params.hpp"

namespace ihc::workload {

enum class WarmupMode {
  kAdaptive,       ///< windowed throughput convergence, fallback below
  kFixedFraction,  ///< always drop fallback_fraction of the horizon
};

struct WarmupConfig {
  WarmupMode mode = WarmupMode::kAdaptive;
  std::uint32_t windows = 24;         ///< horizon subdivisions (>= 2)
  std::uint32_t stable_windows = 4;   ///< consecutive windows that must agree
  double tolerance = 0.25;            ///< relative deviation allowed
  double fallback_fraction = 0.25;    ///< horizon share dropped when no
                                      ///< convergence is found (always,
                                      ///< under kFixedFraction)
};

/// End of the warmup transient (picoseconds): the start of the first
/// stable window run, or fallback_fraction * horizon when none exists.
/// `completion_times` need not be sorted; horizon must be positive and
/// cover every completion.
[[nodiscard]] SimTime detect_warmup_end(
    const std::vector<SimTime>& completion_times, SimTime horizon,
    const WarmupConfig& config = {});

}  // namespace ihc::workload
