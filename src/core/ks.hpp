/// \file ks.hpp
/// \brief KS: Kandlur-Shin reliable broadcast on C-wrapped hexagonal
/// meshes, and KS-ATA (Section V-B, Fig. 8).
///
/// The source sends a copy in each of the six oriented directions; the
/// copy entering through direction i disseminates to all nodes from the
/// root r_i = s + e_i using the hexagonal sector structure: six spokes
/// radiate from r_i (the spoke continuing direction i cuts through), and
/// each spoke node fills its 60-degree sector by turning once.  Each path
/// therefore pays at most 3 store-and-forward operations (injection and up
/// to two turns) and otherwise cuts through - the cost structure of
/// Fig. 8.  The exact fork placement of Kandlur and Shin's pattern [15] is
/// not reproduced (that construction is the subject of its own paper);
/// DESIGN.md documents this reconstruction and the benches report both the
/// analytical KS cost and the measured cost of this pattern.
#pragma once

#include "core/ata.hpp"
#include "sim/network.hpp"
#include "topology/hex_mesh.hpp"

namespace ihc {

/// Fork-placement variant of the reconstructed pattern.
enum class KsVariant : std::uint8_t {
  /// Six spokes from the root, one 60-degree sector fill per spoke;
  /// every path pays <= 3 store-and-forwards (the paper's cost
  /// structure), but the "back" spoke of tree i runs along the same axis
  /// line as tree (i+3)'s continuing spoke, so the six trees of one
  /// broadcast contend there.
  kClassic,
  /// Five spokes (the back spoke is dropped); the missing sector is
  /// covered by double fills from the neighboring spoke and the axis
  /// nodes hang off adjacent sector fills.  Paths to the m-1 axis nodes
  /// pay a 4th store-and-forward.  Removing the axis collision halves
  /// the aggregate queueing of one broadcast, though the critical path
  /// is still set by the remaining fill/spoke line coincidences (the
  /// original pattern's per-direction asymmetry is what eliminates
  /// those; see DESIGN.md).
  kAxisAvoiding,
};

/// The six dissemination trees of a KS broadcast from `source`.
[[nodiscard]] std::vector<std::vector<FlowTreeNode>> ks_trees(
    const HexMesh& hex, NodeId source,
    KsVariant variant = KsVariant::kClassic);

[[nodiscard]] AtaResult run_ks_single(const HexMesh& hex, NodeId source,
                                      const AtaOptions& options,
                                      KsVariant variant = KsVariant::kClassic);

/// KS-ATA: one KS broadcast per node, sequentially.
[[nodiscard]] AtaResult run_ks_ata(const HexMesh& hex,
                                   const AtaOptions& options,
                                   KsVariant variant = KsVariant::kClassic);

}  // namespace ihc
