#include "core/hc_broadcast.hpp"

#include "core/runner.hpp"
#include "obs/obs.hpp"

namespace ihc {
namespace {

void add_hc_broadcast(SimEngine& net, const Topology& topo, NodeId source,
                      SimTime start, const AtaOptions& options) {
  const auto& cycles = topo.directed_cycles();
  for (std::size_t j = 0; j < cycles.size(); ++j) {
    FlowSpec flow =
        make_flow(source, static_cast<std::uint16_t>(j), start, options);
    flow.cycle_path =
        CyclePathRoute{&cycles[j],
                       static_cast<std::uint32_t>(cycles[j].id(source)),
                       topo.node_count() - 1};
    net.add_flow(std::move(flow));
  }
}

AtaResult finish(std::string name, SimEngine&& net) {
  net.flush_metrics();
  AtaResult result;
  result.algorithm = std::move(name);
  result.finish = net.stats().finish_time;
  result.stats = net.stats();
  result.mean_link_utilization = net.mean_link_utilization();
  result.ledger = std::move(net.ledger());
  return result;
}

}  // namespace

AtaResult run_hc_broadcast(const Topology& topo, NodeId source,
                           const AtaOptions& options) {
  SimEngine net(topo.graph(), options.net, options.granularity);
  net.set_fault_plan(options.faults);
  net.set_fault_schedule(options.schedule);
  attach_observability(net, options);
  add_hc_broadcast(net, topo, source, 0, options);
  net.run();
  return finish("HC", std::move(net));
}

AtaResult run_hc_ata(const Topology& topo, const AtaOptions& options) {
  SimEngine net(topo.graph(), options.net, options.granularity);
  net.set_fault_plan(options.faults);
  net.set_fault_schedule(options.schedule);
  attach_observability(net, options);
  SimTime start = 0;
  for (NodeId source = 0; source < topo.node_count(); ++source) {
    add_hc_broadcast(net, topo, source, start, options);
    net.run();
    const SimTime finish_time = net.stats().finish_time;
    if (options.tracer != nullptr)
      options.tracer->stage_span(start, finish_time, "broadcast", source,
                                 source);
    start = finish_time;
  }
  return finish("HC-ATA", std::move(net));
}

}  // namespace ihc
