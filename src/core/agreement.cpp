#include "core/agreement.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "core/hc_broadcast.hpp"
#include "core/ihc.hpp"
#include "core/runner.hpp"
#include "util/error.hpp"

namespace ihc {
namespace {

/// Accepted values per node: value -> the commander-signed MAC proving it.
using ValueSet = std::map<std::uint64_t, std::uint64_t>;

/// Harvests validly-commander-signed values from a ledger round.
void harvest(const DeliveryLedger& ledger, const KeyRing& keys,
             NodeId commander, std::vector<ValueSet>& values) {
  const NodeId n = ledger.node_count();
  for (NodeId o = 0; o < n; ++o) {
    for (NodeId d = 0; d < n; ++d) {
      if (o == d) continue;
      for (const CopyRecord& copy : ledger.records(o, d)) {
        if (keys.verify(commander, copy.payload, copy.mac))
          values[d].emplace(copy.payload, copy.mac);
      }
    }
  }
}

}  // namespace

AgreementResult run_signed_agreement(const Topology& topo,
                                     const KeyRing& keys, FaultPlan& faults,
                                     const AtaOptions& base_options,
                                     const AgreementConfig& config) {
  const NodeId n = topo.node_count();
  require(config.commander < n, "commander out of range");
  const std::uint32_t rounds =
      config.rounds != 0
          ? config.rounds
          : static_cast<std::uint32_t>(faults.fault_count()) + 1;

  AtaOptions opt = base_options;
  opt.granularity = DeliveryLedger::Granularity::kFull;
  opt.faults = &faults;
  opt.keys = &keys;

  AgreementResult result;
  std::vector<ValueSet> values(n);
  // What each node has already re-broadcast (loyal nodes announce each
  // value once).
  std::vector<std::set<std::uint64_t>> announced(n);

  // Round 0: the commander's signed reliable broadcast.  An equivocating
  // commander signs different orders per route (FaultPlan::origin_payload
  // through the default make_flow path).
  {
    const AtaResult round = run_hc_broadcast(topo, config.commander, opt);
    result.network_time += round.finish;
    harvest(round.ledger, keys, config.commander, values);
    // The commander knows its own order(s).
    const std::uint64_t own = honest_payload(config.commander);
    values[config.commander].emplace(
        faults.origin_payload(config.commander, own, 0),
        keys.sign(config.commander,
                  faults.origin_payload(config.commander, own, 0)));
  }

  // Relay rounds: every node re-broadcasts one learned value, carrying
  // the COMMANDER's signature.  Traitors re-broadcast the value most
  // likely to split views (their newest); loyal nodes announce values
  // they have not yet shared.
  std::vector<PayloadOverride> overrides(n);
  for (std::uint32_t r = 1; r <= rounds; ++r) {
    for (NodeId v = 0; v < n; ++v) {
      PayloadOverride& o = overrides[v];
      o = PayloadOverride{0xD0, 0};  // nothing to say: invalid MAC, ignored
      const bool traitor = faults.is_faulty(v);
      if (traitor && !values[v].empty()) {
        // Replay the largest-keyed value (maximally different from the
        // loyal nodes' smallest-first announcements).
        const auto it = std::prev(values[v].end());
        o = PayloadOverride{it->first, it->second};
        continue;
      }
      for (const auto& [value, mac] : values[v]) {
        if (announced[v].insert(value).second) {
          o = PayloadOverride{value, mac};
          break;
        }
      }
    }
    opt.payload_override = &overrides;
    const AtaResult round = run_ihc(
        topo,
        IhcOptions{.eta = smallest_contention_free_eta(n, opt.net.mu)},
        opt);
    opt.payload_override = nullptr;
    result.network_time += round.finish;
    harvest(round.ledger, keys, config.commander, values);
    ++result.rounds_used;
  }

  // Decision rule.
  result.decision.assign(n, config.default_order);
  result.values_seen.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    result.values_seen[v] = static_cast<std::uint32_t>(values[v].size());
    if (values[v].size() == 1)
      result.decision[v] = values[v].begin()->first;
  }

  // Verdicts over loyal lieutenants.
  result.agreement = true;
  std::uint64_t reference = 0;
  bool have_reference = false;
  for (NodeId v = 0; v < n; ++v) {
    if (faults.is_faulty(v) || v == config.commander) continue;
    if (!have_reference) {
      reference = result.decision[v];
      have_reference = true;
    } else if (result.decision[v] != reference) {
      result.agreement = false;
    }
  }
  result.validity = true;
  if (!faults.is_faulty(config.commander)) {
    const std::uint64_t order = honest_payload(config.commander);
    for (NodeId v = 0; v < n; ++v) {
      if (faults.is_faulty(v) || v == config.commander) continue;
      if (result.decision[v] != order) result.validity = false;
    }
  }
  return result;
}

}  // namespace ihc
