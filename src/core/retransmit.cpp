#include "core/retransmit.hpp"

#include <algorithm>
#include <set>

#include "core/reassembly.hpp"
#include "core/runner.hpp"
#include "util/error.hpp"

namespace ihc {
namespace {

/// Fragment payload packing: 12-bit sequence number in the top bits, the
/// fragment content below (deterministic per (origin, seq)).
std::uint64_t fragment_payload(NodeId origin, std::uint16_t seq) {
  const std::uint64_t content =
      (honest_payload(origin) ^ (0x9e3779b97f4a7c15ULL * (seq + 1))) &
      ((1ull << 52) - 1);
  return (static_cast<std::uint64_t>(seq) << 52) | content;
}

std::uint16_t payload_seq(std::uint64_t payload) {
  return static_cast<std::uint16_t>(payload >> 52);
}

}  // namespace

RetransmitReport run_with_retransmission(const Topology& topo,
                                         const AtaOptions& base_options,
                                         const RetransmitConfig& config) {
  require(config.message_units >= 1 && config.message_units < 4096,
          "message_units must fit the 12-bit sequence space");
  require(config.max_rounds >= 1, "need at least one round");
  require(base_options.keys != nullptr,
          "retransmission uses signed fragments (set options.keys)");

  const NodeId n = topo.node_count();
  const auto total =
      static_cast<std::uint16_t>(ihc_packet_count(
          config.message_units, base_options.net.mu));
  const auto& cycles = topo.directed_cycles();
  const KeyRing& keys = *base_options.keys;

  // Per-destination reassembly state, fed across rounds.
  std::vector<MessageReassembler> at(n);

  // pending[o] = fragments origin o still needs to (re)broadcast.
  std::vector<std::vector<std::uint16_t>> pending(n);
  for (NodeId o = 0; o < n; ++o)
    for (std::uint16_t s = 0; s < total; ++s) pending[o].push_back(s);

  RetransmitReport report;
  Network net(topo.graph(), base_options.net, DeliveryLedger::Granularity::kFull);
  net.set_fault_plan(base_options.faults);
  attach_observability(net, base_options);
  SimTime start = 0;

  for (std::uint32_t round = 0; round < config.max_rounds; ++round) {
    std::size_t max_slots = 0;
    for (NodeId o = 0; o < n; ++o)
      max_slots = std::max(max_slots, pending[o].size());
    if (max_slots == 0) break;
    ++report.rounds_used;

    for (NodeId o = 0; o < n; ++o) {
      const auto pending_count =
          static_cast<std::uint64_t>(pending[o].size());
      report.fragments_sent += pending_count;
      if (round > 0) report.fragments_retransmitted += pending_count;
    }
    for (std::size_t slot = 0; slot < max_slots; ++slot) {
      for (std::uint32_t stage = 0; stage < config.ihc.eta; ++stage) {
        for (std::size_t j = 0; j < cycles.size(); ++j) {
          const DirectedCycle& hc = cycles[j];
          for (std::size_t pos = stage; pos < hc.length();
               pos += config.ihc.eta) {
            const NodeId origin = hc.at(pos);
            if (slot >= pending[origin].size()) continue;
            const std::uint16_t seq = pending[origin][slot];
            FlowSpec flow;
            flow.origin = origin;
            flow.route_tag = static_cast<std::uint16_t>(j);
            flow.inject_time = start;
            flow.payload = fragment_payload(origin, seq);
            flow.mac = keys.sign(origin, flow.payload);
            flow.cycle_path = CyclePathRoute{
                &hc, static_cast<std::uint32_t>(pos), n - 1};
            net.add_flow(std::move(flow));
          }
        }
        net.run();
        start = net.stats().finish_time;
      }
    }
    report.network_time = net.stats().finish_time;

    // Harvest this round's deliveries into the reassemblers (duplicates
    // from earlier rounds are idempotent).
    const DeliveryLedger& ledger = net.ledger();
    for (NodeId o = 0; o < n; ++o) {
      for (NodeId d = 0; d < n; ++d) {
        if (o == d) continue;
        for (const CopyRecord& copy : ledger.records(o, d)) {
          if (!keys.verify(o, copy.payload, copy.mac)) continue;  // tampered
          const std::uint16_t seq = payload_seq(copy.payload);
          if (seq >= total) continue;
          at[d].feed(PacketHeader{o, static_cast<std::uint8_t>(
                                         copy.route % 64),
                                  seq, total, PacketKind::kData},
                     copy.payload);
        }
      }
    }

    // Recompute pending sets: union over destinations of missing
    // fragments per origin (the modeled control channel).
    for (NodeId o = 0; o < n; ++o) {
      std::set<std::uint16_t> missing_union;
      for (NodeId d = 0; d < n; ++d) {
        if (o == d) continue;
        for (const std::uint16_t s : at[d].missing(o))
          missing_union.insert(s);
        if (at[d].state(o) == MessageState::kIncomplete &&
            at[d].missing(o).empty()) {
          // Nothing arrived at all yet: everything is missing.
          for (std::uint16_t s = 0; s < total; ++s)
            missing_union.insert(s);
        }
      }
      pending[o].assign(missing_union.begin(), missing_union.end());
    }
  }

  report.complete = true;
  for (NodeId o = 0; o < n && report.complete; ++o)
    for (NodeId d = 0; d < n; ++d) {
      if (o == d) continue;
      if (at[d].state(o) != MessageState::kComplete) {
        report.complete = false;
        break;
      }
    }
  return report;
}

}  // namespace ihc
