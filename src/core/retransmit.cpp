#include "core/retransmit.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "core/reassembly.hpp"
#include "core/runner.hpp"
#include "graph/connectivity.hpp"
#include "graph/ham_search.hpp"
#include "obs/obs.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/packet_format.hpp"
#include "util/error.hpp"
#include "util/memo_cache.hpp"

namespace ihc {
namespace {

/// Fragment payload packing: 12-bit sequence number in the top bits, the
/// fragment content below (deterministic per (origin, seq)).
std::uint64_t fragment_payload(NodeId origin, std::uint16_t seq) {
  const std::uint64_t content =
      (honest_payload(origin) ^ (0x9e3779b97f4a7c15ULL * (seq + 1))) &
      ((1ull << 52) - 1);
  return (static_cast<std::uint64_t>(seq) << 52) | content;
}

std::uint16_t payload_seq(std::uint64_t payload) {
  return static_cast<std::uint16_t>(payload >> 52);
}

/// True when a drop is certain or possible through this mode.
bool drops_relays(std::optional<FaultMode> mode) {
  return mode == FaultMode::kSilent || mode == FaultMode::kRandom;
}

/// Conservative both-layers liveness guess: the node is suspect when
/// EITHER the dynamic schedule has an active drop-capable window at t OR
/// the static plan makes it drop-capable.  The simulator itself gives an
/// active window precedence over the plan (sim/network.cpp), but a
/// benign window (kSlow) can close while a reissue is still in flight,
/// at which point the static mode takes back over - so a prediction must
/// fear both layers.
bool node_drop_capable_at(const AtaOptions& options, NodeId node, SimTime t) {
  if (options.schedule != nullptr &&
      drops_relays(options.schedule->mode_at(node, t)))
    return true;
  if (options.faults != nullptr && drops_relays(options.faults->mode_of(node)))
    return true;
  return false;
}

/// The mode the simulator would actually apply at `node` at time t: an
/// active schedule window wins over the static plan (sim/network.cpp).
std::optional<FaultMode> effective_mode(const AtaOptions& options, NodeId node,
                                        SimTime t) {
  if (options.schedule != nullptr) {
    if (const auto mode = options.schedule->mode_at(node, t)) return mode;
  }
  if (options.faults != nullptr) return options.faults->mode_of(node);
  return std::nullopt;
}

bool link_dead_at(const AtaOptions& options, LinkId l, SimTime t) {
  if (options.faults != nullptr && options.faults->link_failed(l)) return true;
  if (options.schedule != nullptr && options.schedule->link_dead(l, t))
    return true;
  return false;
}

/// True when destination d can be written off from time t onward: its
/// effective mode is drop-capable at t and at every later change point
/// (mode_at is piecewise constant between change points, so those samples
/// cover every regime in [t, infinity)), or every in-link is permanently
/// dead.  A protocol-level classification - the paper's reliability
/// guarantees cover healthy destinations only - used to stop the retry
/// budget from burning on pairs that can never reach the copy target.
bool destination_unreachable(const Graph& g, const AtaOptions& options,
                             NodeId d, SimTime t) {
  bool dead_forever = drops_relays(effective_mode(options, d, t));
  if (dead_forever && options.schedule != nullptr) {
    for (const SimTime s : options.schedule->node_change_points(d, t)) {
      if (!drops_relays(effective_mode(options, d, s))) {
        dead_forever = false;
        break;
      }
    }
  }
  if (dead_forever) return true;

  bool all_in_links_dead = g.degree(d) > 0;
  for (const Adjacency& adj : g.neighbors(d)) {
    const LinkId l = g.link(adj.neighbor, d);
    const bool dead =
        (options.faults != nullptr && options.faults->link_failed(l)) ||
        (options.schedule != nullptr && options.schedule->link_dead_from(l, t));
    if (!dead) {
      all_in_links_dead = false;
      break;
    }
  }
  return all_in_links_dead;
}

MemoCache<std::string, std::shared_ptr<const detail::RerootPlan>>&
reroot_cache() {
  static MemoCache<std::string, std::shared_ptr<const detail::RerootPlan>>
      cache;
  return cache;
}

/// Full-structure cache key: two topologies can share node and edge
/// counts (Q_4 and TQ_4 both have 16 nodes / 32 edges), so the edge list
/// itself is part of the key, alongside both alive masks and the cycle
/// budget.
std::string reroot_key(const Graph& g,
                       const std::vector<std::uint8_t>& node_alive,
                       const std::vector<std::uint8_t>& edge_alive,
                       std::uint32_t max_cycles) {
  std::string key = std::to_string(g.node_count());
  key += '/';
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto [u, v] = g.edge(e);
    key += std::to_string(u);
    key += ',';
    key += std::to_string(v);
    key += ';';
  }
  key += '/';
  for (const std::uint8_t a : node_alive) key += a != 0 ? '1' : '0';
  key += '/';
  for (const std::uint8_t a : edge_alive) key += a != 0 ? '1' : '0';
  key += '/';
  key += std::to_string(max_cycles);
  return key;
}

}  // namespace

const char* to_string(RecoveryLadder ladder) {
  switch (ladder) {
    case RecoveryLadder::kStatic: return "static";
    case RecoveryLadder::kReroot: return "reroot";
    case RecoveryLadder::kPaths: return "paths";
  }
  return "static";
}

namespace detail {

bool recovery_route_alive(const Graph& g, const DirectedCycle& hc,
                          std::size_t pos, const AtaOptions& options,
                          SimTime at) {
  const std::size_t n = hc.length();
  for (std::size_t step = 0; step + 1 < n; ++step) {
    const std::size_t i = (pos + step) % n;
    const LinkId l = g.link(hc.at(i), hc.at((i + 1) % n));
    if (link_dead_at(options, l, at)) return false;
    if (step > 0 && node_drop_capable_at(options, hc.at(i), at)) return false;
  }
  return true;
}

std::shared_ptr<const RerootPlan> rerooted_decomposition(
    const Graph& g, const std::vector<std::uint8_t>& node_alive,
    const std::vector<std::uint8_t>& edge_alive, std::uint32_t max_cycles) {
  require(node_alive.size() == g.node_count() &&
              edge_alive.size() == g.edge_count(),
          "rerooted_decomposition: alive masks must match the graph");
  require(max_cycles >= 1, "rerooted_decomposition: need max_cycles >= 1");
  return reroot_cache().get_or_compute(
      reroot_key(g, node_alive, edge_alive, max_cycles),
      [&]() -> std::shared_ptr<const RerootPlan> {
        auto plan = std::make_shared<RerootPlan>();

        // Compact the survivor subgraph: only alive nodes, only alive
        // edges with both endpoints alive.
        std::vector<NodeId> to_sub(g.node_count(), kInvalidNode);
        std::vector<NodeId> to_orig;
        for (NodeId v = 0; v < g.node_count(); ++v) {
          if (node_alive[v] != 0) {
            to_sub[v] = static_cast<NodeId>(to_orig.size());
            to_orig.push_back(v);
          }
        }
        if (to_orig.size() < 3) {
          plan->detail = "survivor subgraph has fewer than 3 nodes";
          return plan;
        }
        std::vector<std::pair<NodeId, NodeId>> edges;
        for (EdgeId e = 0; e < g.edge_count(); ++e) {
          if (edge_alive[e] == 0) continue;
          const auto [u, v] = g.edge(e);
          if (to_sub[u] == kInvalidNode || to_sub[v] == kInvalidNode) continue;
          edges.emplace_back(to_sub[u], to_sub[v]);
        }
        const Graph sub(static_cast<NodeId>(to_orig.size()), std::move(edges));

        std::uint32_t min_degree = sub.degree(0);
        for (NodeId v = 1; v < sub.node_count(); ++v)
          min_degree = std::min(min_degree, sub.degree(v));
        const std::uint32_t top = std::min(max_cycles, min_degree / 2);
        if (top == 0) {
          plan->detail = "survivor min degree below 2";
          return plan;
        }

        // Richest decomposition first: each extra edge-disjoint cycle is
        // another copy per pair, so try floor(min_degree/2) cycles and
        // step down to a single Hamiltonian cycle before giving up.
        for (std::uint32_t k = top; k >= 1; --k) {
          const HamSearchResult result = search_hamiltonian_cycles(sub, k);
          plan->detail = result.detail;
          if (result.status != SearchStatus::kFound) continue;
          plan->found = true;
          plan->cycles.reserve(result.cycles.size());
          for (const Cycle& c : result.cycles) {
            std::vector<NodeId> orig;
            orig.reserve(c.length());
            for (const NodeId v : c.nodes()) orig.push_back(to_orig[v]);
            plan->cycles.emplace_back(std::move(orig));
          }
          for (const Cycle& c : plan->cycles) {
            plan->directed.emplace_back(c, false, g.node_count());
            plan->directed.emplace_back(c, true, g.node_count());
          }
          break;
        }
        return plan;
      });
}

}  // namespace detail

RetransmitReport run_with_retransmission(const Topology& topo,
                                         const AtaOptions& base_options,
                                         const RetransmitConfig& config) {
  require(config.message_units >= 1 && config.message_units < 4096,
          "message_units must fit the 12-bit sequence space");
  require(config.max_rounds >= 1, "need at least one round");
  require(base_options.keys != nullptr,
          "retransmission uses signed fragments (set options.keys)");

  const NodeId n = topo.node_count();
  const auto total =
      static_cast<std::uint16_t>(ihc_packet_count(
          config.message_units, base_options.net.mu));
  const auto& cycles = topo.directed_cycles();
  require(cycles.size() <= kMaxHeaderRoutes,
          "gamma exceeds the packet header's 6-bit route field");
  const KeyRing& keys = *base_options.keys;

  // Per-destination reassembly state, fed across rounds.
  std::vector<MessageReassembler> at(n);

  // pending[o] = fragments origin o still needs to (re)broadcast.
  std::vector<std::vector<std::uint16_t>> pending(n);
  for (NodeId o = 0; o < n; ++o)
    for (std::uint16_t s = 0; s < total; ++s) pending[o].push_back(s);

  RetransmitReport report;
  SimEngine net(topo.graph(), base_options.net, DeliveryLedger::Granularity::kFull);
  net.set_fault_plan(base_options.faults);
  net.set_fault_schedule(base_options.schedule);
  attach_observability(net, base_options);
  SimTime start = 0;

  for (std::uint32_t round = 0; round < config.max_rounds; ++round) {
    std::size_t max_slots = 0;
    for (NodeId o = 0; o < n; ++o)
      max_slots = std::max(max_slots, pending[o].size());
    if (max_slots == 0) break;
    ++report.rounds_used;

    for (NodeId o = 0; o < n; ++o) {
      const auto pending_count =
          static_cast<std::uint64_t>(pending[o].size());
      report.fragments_sent += pending_count;
      if (round > 0) report.fragments_retransmitted += pending_count;
    }
    for (std::size_t slot = 0; slot < max_slots; ++slot) {
      for (std::uint32_t stage = 0; stage < config.ihc.eta; ++stage) {
        for (std::size_t j = 0; j < cycles.size(); ++j) {
          const DirectedCycle& hc = cycles[j];
          for (std::size_t pos = stage; pos < hc.length();
               pos += config.ihc.eta) {
            const NodeId origin = hc.at(pos);
            if (slot >= pending[origin].size()) continue;
            const std::uint16_t seq = pending[origin][slot];
            FlowSpec flow;
            flow.origin = origin;
            flow.route_tag = static_cast<std::uint16_t>(j);
            flow.inject_time = start;
            flow.payload = fragment_payload(origin, seq);
            flow.mac = keys.sign(origin, flow.payload);
            flow.cycle_path = CyclePathRoute{
                &hc, static_cast<std::uint32_t>(pos), n - 1};
            net.add_flow(std::move(flow));
          }
        }
        net.run();
        start = net.stats().finish_time;
      }
    }
    report.network_time = net.stats().finish_time;

    // Harvest this round's deliveries into the reassemblers (duplicates
    // from earlier rounds are idempotent).  Route tags are < gamma <=
    // kMaxHeaderRoutes (required at entry), so they pack into the 6-bit
    // header field without aliasing.
    const DeliveryLedger& ledger = net.ledger();
    for (NodeId o = 0; o < n; ++o) {
      for (NodeId d = 0; d < n; ++d) {
        if (o == d) continue;
        for (const CopyRecord& copy : ledger.records(o, d)) {
          if (!keys.verify(o, copy.payload, copy.mac)) continue;  // tampered
          const std::uint16_t seq = payload_seq(copy.payload);
          if (seq >= total) continue;
          at[d].feed(PacketHeader{o, static_cast<std::uint8_t>(copy.route),
                                  seq, total, PacketKind::kData},
                     copy.payload);
        }
      }
    }

    // Recompute pending sets: union over destinations of missing
    // fragments per origin (the modeled control channel).
    for (NodeId o = 0; o < n; ++o) {
      std::set<std::uint16_t> missing_union;
      for (NodeId d = 0; d < n; ++d) {
        if (o == d) continue;
        for (const std::uint16_t s : at[d].missing(o))
          missing_union.insert(s);
        if (at[d].state(o) == MessageState::kIncomplete &&
            at[d].missing(o).empty()) {
          // Nothing arrived at all yet: everything is missing.
          for (std::uint16_t s = 0; s < total; ++s)
            missing_union.insert(s);
        }
      }
      pending[o].assign(missing_union.begin(), missing_union.end());
    }
  }

  report.complete = true;
  for (NodeId o = 0; o < n && report.complete; ++o)
    for (NodeId d = 0; d < n; ++d) {
      if (o == d) continue;
      if (at[d].state(o) != MessageState::kComplete) {
        report.complete = false;
        break;
      }
    }
  return report;
}

RecoveryReport run_ihc_with_recovery(const Topology& topo,
                                     const IhcOptions& ihc,
                                     const AtaOptions& options,
                                     const RecoveryPolicy& policy) {
  require(ihc.eta >= 1 && ihc.eta <= topo.node_count(),
          "eta must lie in [1, N]");
  require(policy.max_retries >= 1, "need at least one recovery retry");
  require(policy.detection_timeout >= 0,
          "detection timeout must be >= 0");
  require(policy.path_attempts >= 1,
          "need at least one fallback path attempt");
  const auto& cycles = topo.directed_cycles();
  require(policy.min_copies >= 1 && policy.min_copies <= cycles.size(),
          "min_copies must lie in [1, gamma]");

  const NodeId n = topo.node_count();
  const Graph& g = topo.graph();
  SimEngine net(g, options.net, options.granularity);
  net.set_fault_plan(options.faults);
  net.set_fault_schedule(options.schedule);
  attach_observability(net, options);

  RecoveryReport report;
  SimTime start = 0;
  std::int64_t stage_counter = 0;

  // Initial broadcast: eta-interleaved stages, global barrier (the
  // detection step below needs the drained network between rounds
  // anyway, exactly like selective retransmission).
  const std::uint32_t rounds =
      ihc_packet_count(ihc.message_units, options.net.mu);
  for (std::uint32_t round = 0; round < rounds; ++round) {
    for (std::uint32_t stage = 0; stage < ihc.eta; ++stage) {
      const SimTime stage_begin = start;
      for (std::size_t j = 0; j < cycles.size(); ++j) {
        const DirectedCycle& hc = cycles[j];
        for (std::size_t pos = stage; pos < hc.length(); pos += ihc.eta) {
          const NodeId origin = hc.at(pos);
          FlowSpec flow = make_flow(origin, static_cast<std::uint16_t>(j),
                                    start, options);
          flow.cycle_path = CyclePathRoute{
              &hc, static_cast<std::uint32_t>(pos), n - 1};
          net.add_flow(std::move(flow));
        }
      }
      net.run();
      start = net.stats().finish_time;
      if (options.tracer != nullptr)
        options.tracer->stage_span(stage_begin, start, "stage",
                                   stage_counter);
      if (options.metrics != nullptr)
        options.metrics->observe("ihc.stage_latency_ps",
                                 static_cast<double>(start - stage_begin));
      ++stage_counter;
    }
  }
  report.initial_finish = net.stats().finish_time;
  report.finish = report.initial_finish;

  // Classify never-again-alive destinations once, at the first possible
  // retry time: their pairs are written off (unreachable_pairs) instead
  // of burning the retry budget on broadcasts that can never land.
  const SimTime first_retry_at =
      report.initial_finish + policy.detection_timeout;
  std::vector<std::uint8_t> unreachable_dest(n, 0);
  for (NodeId d = 0; d < n; ++d)
    if (destination_unreachable(g, options, d, first_retry_at))
      unreachable_dest[d] = 1;

  auto count_below = [&](bool reachable_only) {
    std::uint64_t count = 0;
    for (NodeId o = 0; o < n; ++o)
      for (NodeId d = 0; d < n; ++d) {
        if (o == d || net.ledger().copies(o, d) >= policy.min_copies)
          continue;
        if (reachable_only && unreachable_dest[d] != 0) continue;
        ++count;
      }
    return count;
  };
  report.initial_complete = count_below(false) == 0;

  // needs[o] = 1 when origin o has a reachable pair below target.
  auto compute_needs = [&]() {
    std::vector<std::uint8_t> needs(n, 0);
    for (NodeId o = 0; o < n; ++o)
      for (NodeId d = 0; d < n; ++d)
        if (o != d && unreachable_dest[d] == 0 &&
            net.ledger().copies(o, d) < policy.min_copies)
          needs[o] = 1;
    return needs;
  };

  // Reissues a retry round of eta-interleaved waves for the needy
  // origins over `routes`, filtered through the route-liveness guess.
  // Returns {flows reissued, injection time of the first staged wave}.
  // The span begin is the first actual injection, not the nominal retry
  // time, so traces stay honest when early stages staged nothing.
  auto reissue_round = [&](const std::vector<DirectedCycle>& routes,
                           std::uint16_t tag_base, SimTime at) {
    const std::vector<std::uint8_t> needs = compute_needs();
    std::uint64_t reissued = 0;
    SimTime reissue_start = at;
    SimTime span_begin = at;
    for (std::uint32_t stage = 0; stage < ihc.eta; ++stage) {
      std::uint64_t staged = 0;
      for (std::size_t j = 0; j < routes.size(); ++j) {
        const DirectedCycle& hc = routes[j];
        for (std::size_t pos = stage; pos < hc.length(); pos += ihc.eta) {
          const NodeId origin = hc.at(pos);
          if (needs[origin] == 0) continue;
          if (!detail::recovery_route_alive(g, hc, pos, options,
                                            reissue_start))
            continue;
          FlowSpec flow = make_flow(
              origin, static_cast<std::uint16_t>(tag_base + j),
              reissue_start, options);
          flow.cycle_path = CyclePathRoute{
              &hc, static_cast<std::uint32_t>(pos),
              static_cast<std::uint32_t>(hc.length() - 1)};
          net.add_flow(std::move(flow));
          ++staged;
        }
      }
      if (staged == 0) continue;
      if (reissued == 0) span_begin = reissue_start;
      reissued += staged;
      net.run();
      reissue_start = net.stats().finish_time;
    }
    return std::pair<std::uint64_t, SimTime>(reissued, span_begin);
  };

  // --- Stage 1 (kStatic): reissue on surviving static cycles ------------
  //
  // Reissues stay eta-interleaved so the paper's intermediate-storage
  // capacity argument (eta >= mu) keeps holding during recovery -
  // TraceLint's buffer_bound check gates that.  A mispredicted glitch
  // simply feeds the next retry.
  for (std::uint32_t retry = 1;
       retry <= policy.max_retries && count_below(true) > 0; ++retry) {
    const SimTime at = report.finish + policy.detection_timeout;
    const auto [reissued, span_begin] = reissue_round(cycles, 0, at);
    if (reissued == 0) break;  // nothing alive to reissue on - escalate
    ++report.retries_used;
    report.flows_reissued += reissued;
    report.finish = net.stats().finish_time;
    if (options.tracer != nullptr)
      options.tracer->stage_span(span_begin, report.finish, "recovery",
                                 retry);
  }

  // --- Stage 2 (kReroot): re-rooted survivor decomposition ---------------
  if (policy.ladder >= RecoveryLadder::kReroot && count_below(true) > 0) {
    ++report.escalations;
    const SimTime reroot_at = report.finish + policy.detection_timeout;
    std::vector<std::uint8_t> node_alive(n, 1);
    for (NodeId v = 0; v < n; ++v)
      if (node_drop_capable_at(options, v, reroot_at)) node_alive[v] = 0;
    std::vector<std::uint8_t> edge_alive(g.edge_count(), 1);
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const auto [u, v] = g.edge(e);
      if (link_dead_at(options, g.link(u, v), reroot_at) ||
          link_dead_at(options, g.link(v, u), reroot_at))
        edge_alive[e] = 0;
    }
    const auto undirected =
        std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(cycles.size()) / 2);
    const std::shared_ptr<const detail::RerootPlan> plan =
        detail::rerooted_decomposition(g, node_alive, edge_alive, undirected);
    if (plan->found) {
      report.rerooted_cycles =
          static_cast<std::uint32_t>(plan->directed.size());
      for (std::uint32_t retry = 1;
           retry <= policy.max_retries && count_below(true) > 0; ++retry) {
        const SimTime at = report.finish + policy.detection_timeout;
        const auto [reissued, span_begin] = reissue_round(
            plan->directed, static_cast<std::uint16_t>(cycles.size()), at);
        if (reissued == 0) break;
        ++report.retries_used;
        report.flows_reissued += reissued;
        report.reroot_reissues += reissued;
        report.finish = net.stats().finish_time;
        if (options.tracer != nullptr)
          options.tracer->stage_span(span_begin, report.finish,
                                     "recovery_reroot", retry);
      }
    }
  }

  // --- Stage 3 (kPaths): node-disjoint-path unicast fallback -------------
  //
  // Meshtastic-style ack ladder: at most path_attempts tries per run,
  // each waiting one more detection_timeout than the last (growing
  // backoff).  Each needy pair gets its missing copies unicast over
  // node-disjoint paths of the survivor graph; one wave per pair, and
  // the paths within a wave share no relay, so fallback traffic never
  // contends with itself (buffer_bound stays clean).
  if (policy.ladder >= RecoveryLadder::kPaths && count_below(true) > 0) {
    ++report.escalations;
    const auto path_tag_base = static_cast<std::uint16_t>(
        cycles.size() + report.rerooted_cycles);
    for (std::uint32_t attempt = 1;
         attempt <= policy.path_attempts && count_below(true) > 0;
         ++attempt) {
      const SimTime at =
          report.finish + policy.detection_timeout * attempt;
      ++report.path_attempts_used;
      std::uint64_t paths_sent = 0;
      SimTime wave_start = at;
      SimTime span_begin = at;
      for (NodeId o = 0; o < n; ++o) {
        for (NodeId d = 0; d < n; ++d) {
          if (o == d || unreachable_dest[d] != 0) continue;
          const std::uint32_t have = net.ledger().copies(o, d);
          if (have >= policy.min_copies) continue;
          // The pair's survivor graph: relays must be alive, but o and d
          // themselves stay in - a drop-capable origin still injects and
          // the destination tee fires before the relay fault action.
          std::vector<std::pair<NodeId, NodeId>> edges;
          for (EdgeId e = 0; e < g.edge_count(); ++e) {
            const auto [u, v] = g.edge(e);
            if ((u != o && u != d &&
                 node_drop_capable_at(options, u, wave_start)) ||
                (v != o && v != d &&
                 node_drop_capable_at(options, v, wave_start)))
              continue;
            if (link_dead_at(options, g.link(u, v), wave_start) ||
                link_dead_at(options, g.link(v, u), wave_start))
              continue;
            edges.emplace_back(u, v);
          }
          const Graph alive(n, std::move(edges));
          std::vector<std::vector<NodeId>> paths =
              node_disjoint_paths(alive, o, d);
          if (paths.empty()) continue;
          std::sort(paths.begin(), paths.end(),
                    [](const std::vector<NodeId>& a,
                       const std::vector<NodeId>& b) {
                      return a.size() != b.size() ? a.size() < b.size()
                                                  : a < b;
                    });
          const std::size_t take = std::min<std::size_t>(
              policy.min_copies - have, paths.size());
          for (std::size_t p = 0; p < take; ++p) {
            FlowSpec flow = make_flow(
                o, static_cast<std::uint16_t>(path_tag_base + p),
                wave_start, options);
            flow.tree.reserve(paths[p].size());
            flow.tree.push_back(FlowTreeNode{o, -1, false});
            for (std::size_t i = 1; i < paths[p].size(); ++i)
              flow.tree.push_back(FlowTreeNode{
                  paths[p][i], static_cast<std::int32_t>(i - 1), true});
            net.add_flow(std::move(flow));
          }
          if (take == 0) continue;
          if (paths_sent == 0) span_begin = wave_start;
          paths_sent += take;
          net.run();
          wave_start = net.stats().finish_time;
        }
      }
      if (paths_sent == 0) break;  // no usable path anywhere - give up
      report.fallback_paths += paths_sent;
      report.finish = net.stats().finish_time;
      if (options.tracer != nullptr)
        options.tracer->stage_span(span_begin, report.finish,
                                   "recovery_paths", attempt);
    }
  }

  report.unrecovered_pairs = count_below(true);
  report.unreachable_pairs = count_below(false) - report.unrecovered_pairs;
  report.complete = report.unrecovered_pairs == 0;
  report.recovery_latency = report.finish - report.initial_finish;
  if (options.metrics != nullptr) {
    options.metrics->count(
        "ihc.recovery_retries",
        static_cast<std::int64_t>(report.retries_used));
    options.metrics->count(
        "ihc.recovery_reissues",
        static_cast<std::int64_t>(report.flows_reissued));
    options.metrics->count(
        "ihc.recovery_unrecovered_pairs",
        static_cast<std::int64_t>(report.unrecovered_pairs));
    options.metrics->count(
        "ihc.recovery_unreachable_pairs",
        static_cast<std::int64_t>(report.unreachable_pairs));
    options.metrics->count(
        "ihc.recovery_escalations",
        static_cast<std::int64_t>(report.escalations));
    options.metrics->count(
        "ihc.recovery_rerooted",
        static_cast<std::int64_t>(report.rerooted_cycles));
    options.metrics->count(
        "ihc.recovery_fallback_paths",
        static_cast<std::int64_t>(report.fallback_paths));
    if (report.retries_used > 0 || report.path_attempts_used > 0)
      options.metrics->observe(
          "ihc.recovery_latency_ps",
          static_cast<double>(report.recovery_latency));
  }
  net.flush_metrics();
  report.stats = net.stats();
  report.ledger = std::move(net.ledger());
  return report;
}

}  // namespace ihc
