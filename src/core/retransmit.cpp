#include "core/retransmit.hpp"

#include <algorithm>
#include <set>

#include "core/reassembly.hpp"
#include "core/runner.hpp"
#include "obs/obs.hpp"
#include "sim/fault_schedule.hpp"
#include "util/error.hpp"

namespace ihc {
namespace {

/// Fragment payload packing: 12-bit sequence number in the top bits, the
/// fragment content below (deterministic per (origin, seq)).
std::uint64_t fragment_payload(NodeId origin, std::uint16_t seq) {
  const std::uint64_t content =
      (honest_payload(origin) ^ (0x9e3779b97f4a7c15ULL * (seq + 1))) &
      ((1ull << 52) - 1);
  return (static_cast<std::uint64_t>(seq) << 52) | content;
}

std::uint16_t payload_seq(std::uint64_t payload) {
  return static_cast<std::uint16_t>(payload >> 52);
}

/// True when a drop is certain or possible through this mode.
bool drops_relays(std::optional<FaultMode> mode) {
  return mode == FaultMode::kSilent || mode == FaultMode::kRandom;
}

/// True when every hop of origin's route along `hc` (position `pos`,
/// N-1 hops) is usable at time `at`: no dead link and no drop-capable
/// relay.  `at` is the reissue injection time; a glitch that starts or
/// ends while the reissue is in flight can still invalidate the guess -
/// the capped retry loop absorbs that.
bool route_alive(const Graph& g, const DirectedCycle& hc, std::size_t pos,
                 const AtaOptions& options, SimTime at) {
  const std::size_t n = hc.length();
  for (std::size_t step = 0; step + 1 < n; ++step) {
    const std::size_t i = (pos + step) % n;
    const LinkId l = g.link(hc.at(i), hc.at((i + 1) % n));
    if (options.faults != nullptr && options.faults->link_failed(l))
      return false;
    if (options.schedule != nullptr && options.schedule->link_dead(l, at))
      return false;
    if (step > 0) {
      const NodeId relay = hc.at(i);
      if (options.schedule != nullptr &&
          options.schedule->mode_at(relay, at).has_value()) {
        if (drops_relays(options.schedule->mode_at(relay, at))) return false;
      } else if (options.faults != nullptr &&
                 drops_relays(options.faults->mode_of(relay))) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

RetransmitReport run_with_retransmission(const Topology& topo,
                                         const AtaOptions& base_options,
                                         const RetransmitConfig& config) {
  require(config.message_units >= 1 && config.message_units < 4096,
          "message_units must fit the 12-bit sequence space");
  require(config.max_rounds >= 1, "need at least one round");
  require(base_options.keys != nullptr,
          "retransmission uses signed fragments (set options.keys)");

  const NodeId n = topo.node_count();
  const auto total =
      static_cast<std::uint16_t>(ihc_packet_count(
          config.message_units, base_options.net.mu));
  const auto& cycles = topo.directed_cycles();
  const KeyRing& keys = *base_options.keys;

  // Per-destination reassembly state, fed across rounds.
  std::vector<MessageReassembler> at(n);

  // pending[o] = fragments origin o still needs to (re)broadcast.
  std::vector<std::vector<std::uint16_t>> pending(n);
  for (NodeId o = 0; o < n; ++o)
    for (std::uint16_t s = 0; s < total; ++s) pending[o].push_back(s);

  RetransmitReport report;
  SimEngine net(topo.graph(), base_options.net, DeliveryLedger::Granularity::kFull);
  net.set_fault_plan(base_options.faults);
  net.set_fault_schedule(base_options.schedule);
  attach_observability(net, base_options);
  SimTime start = 0;

  for (std::uint32_t round = 0; round < config.max_rounds; ++round) {
    std::size_t max_slots = 0;
    for (NodeId o = 0; o < n; ++o)
      max_slots = std::max(max_slots, pending[o].size());
    if (max_slots == 0) break;
    ++report.rounds_used;

    for (NodeId o = 0; o < n; ++o) {
      const auto pending_count =
          static_cast<std::uint64_t>(pending[o].size());
      report.fragments_sent += pending_count;
      if (round > 0) report.fragments_retransmitted += pending_count;
    }
    for (std::size_t slot = 0; slot < max_slots; ++slot) {
      for (std::uint32_t stage = 0; stage < config.ihc.eta; ++stage) {
        for (std::size_t j = 0; j < cycles.size(); ++j) {
          const DirectedCycle& hc = cycles[j];
          for (std::size_t pos = stage; pos < hc.length();
               pos += config.ihc.eta) {
            const NodeId origin = hc.at(pos);
            if (slot >= pending[origin].size()) continue;
            const std::uint16_t seq = pending[origin][slot];
            FlowSpec flow;
            flow.origin = origin;
            flow.route_tag = static_cast<std::uint16_t>(j);
            flow.inject_time = start;
            flow.payload = fragment_payload(origin, seq);
            flow.mac = keys.sign(origin, flow.payload);
            flow.cycle_path = CyclePathRoute{
                &hc, static_cast<std::uint32_t>(pos), n - 1};
            net.add_flow(std::move(flow));
          }
        }
        net.run();
        start = net.stats().finish_time;
      }
    }
    report.network_time = net.stats().finish_time;

    // Harvest this round's deliveries into the reassemblers (duplicates
    // from earlier rounds are idempotent).
    const DeliveryLedger& ledger = net.ledger();
    for (NodeId o = 0; o < n; ++o) {
      for (NodeId d = 0; d < n; ++d) {
        if (o == d) continue;
        for (const CopyRecord& copy : ledger.records(o, d)) {
          if (!keys.verify(o, copy.payload, copy.mac)) continue;  // tampered
          const std::uint16_t seq = payload_seq(copy.payload);
          if (seq >= total) continue;
          at[d].feed(PacketHeader{o, static_cast<std::uint8_t>(
                                         copy.route % 64),
                                  seq, total, PacketKind::kData},
                     copy.payload);
        }
      }
    }

    // Recompute pending sets: union over destinations of missing
    // fragments per origin (the modeled control channel).
    for (NodeId o = 0; o < n; ++o) {
      std::set<std::uint16_t> missing_union;
      for (NodeId d = 0; d < n; ++d) {
        if (o == d) continue;
        for (const std::uint16_t s : at[d].missing(o))
          missing_union.insert(s);
        if (at[d].state(o) == MessageState::kIncomplete &&
            at[d].missing(o).empty()) {
          // Nothing arrived at all yet: everything is missing.
          for (std::uint16_t s = 0; s < total; ++s)
            missing_union.insert(s);
        }
      }
      pending[o].assign(missing_union.begin(), missing_union.end());
    }
  }

  report.complete = true;
  for (NodeId o = 0; o < n && report.complete; ++o)
    for (NodeId d = 0; d < n; ++d) {
      if (o == d) continue;
      if (at[d].state(o) != MessageState::kComplete) {
        report.complete = false;
        break;
      }
    }
  return report;
}

RecoveryReport run_ihc_with_recovery(const Topology& topo,
                                     const IhcOptions& ihc,
                                     const AtaOptions& options,
                                     const RecoveryPolicy& policy) {
  require(ihc.eta >= 1 && ihc.eta <= topo.node_count(),
          "eta must lie in [1, N]");
  require(policy.max_retries >= 1, "need at least one recovery retry");
  require(policy.detection_timeout >= 0,
          "detection timeout must be >= 0");
  const auto& cycles = topo.directed_cycles();
  require(policy.min_copies >= 1 && policy.min_copies <= cycles.size(),
          "min_copies must lie in [1, gamma]");

  const NodeId n = topo.node_count();
  SimEngine net(topo.graph(), options.net, options.granularity);
  net.set_fault_plan(options.faults);
  net.set_fault_schedule(options.schedule);
  attach_observability(net, options);

  RecoveryReport report;
  SimTime start = 0;
  std::int64_t stage_counter = 0;

  // Initial broadcast: eta-interleaved stages, global barrier (the
  // detection step below needs the drained network between rounds
  // anyway, exactly like selective retransmission).
  const std::uint32_t rounds =
      ihc_packet_count(ihc.message_units, options.net.mu);
  for (std::uint32_t round = 0; round < rounds; ++round) {
    for (std::uint32_t stage = 0; stage < ihc.eta; ++stage) {
      const SimTime stage_begin = start;
      for (std::size_t j = 0; j < cycles.size(); ++j) {
        const DirectedCycle& hc = cycles[j];
        for (std::size_t pos = stage; pos < hc.length(); pos += ihc.eta) {
          const NodeId origin = hc.at(pos);
          FlowSpec flow = make_flow(origin, static_cast<std::uint16_t>(j),
                                    start, options);
          flow.cycle_path = CyclePathRoute{
              &hc, static_cast<std::uint32_t>(pos), n - 1};
          net.add_flow(std::move(flow));
        }
      }
      net.run();
      start = net.stats().finish_time;
      if (options.tracer != nullptr)
        options.tracer->stage_span(stage_begin, start, "stage",
                                   stage_counter);
      if (options.metrics != nullptr)
        options.metrics->observe("ihc.stage_latency_ps",
                                 static_cast<double>(start - stage_begin));
      ++stage_counter;
    }
  }
  report.initial_finish = net.stats().finish_time;
  report.finish = report.initial_finish;

  auto pairs_below_target = [&]() {
    std::uint64_t count = 0;
    for (NodeId o = 0; o < n; ++o)
      for (NodeId d = 0; d < n; ++d)
        if (o != d && net.ledger().copies(o, d) < policy.min_copies)
          ++count;
    return count;
  };
  report.initial_complete = pairs_below_target() == 0;

  // Recovery rounds: wait out the detection timeout, then re-issue every
  // missing origin's broadcast on the cycles whose routes are still
  // alive.  Reissues stay eta-interleaved so the paper's intermediate-
  // storage capacity argument (eta >= mu) keeps holding during recovery -
  // TraceLint's buffer_bound check gates that.  A mispredicted glitch
  // simply feeds the next retry.
  for (std::uint32_t retry = 1;
       retry <= policy.max_retries && pairs_below_target() > 0; ++retry) {
    const SimTime at = report.finish + policy.detection_timeout;
    std::vector<std::uint8_t> needs(n, 0);
    for (NodeId o = 0; o < n; ++o)
      for (NodeId d = 0; d < n; ++d)
        if (o != d && net.ledger().copies(o, d) < policy.min_copies)
          needs[o] = 1;
    std::uint64_t reissued = 0;
    SimTime reissue_start = at;
    for (std::uint32_t stage = 0; stage < ihc.eta; ++stage) {
      std::uint64_t staged = 0;
      for (std::size_t j = 0; j < cycles.size(); ++j) {
        const DirectedCycle& hc = cycles[j];
        for (std::size_t pos = stage; pos < hc.length(); pos += ihc.eta) {
          const NodeId origin = hc.at(pos);
          if (needs[origin] == 0) continue;
          if (!route_alive(topo.graph(), hc, pos, options, reissue_start))
            continue;
          FlowSpec flow = make_flow(origin, static_cast<std::uint16_t>(j),
                                    reissue_start, options);
          flow.cycle_path = CyclePathRoute{
              &hc, static_cast<std::uint32_t>(pos), n - 1};
          net.add_flow(std::move(flow));
          ++staged;
        }
      }
      if (staged == 0) continue;
      reissued += staged;
      net.run();
      reissue_start = net.stats().finish_time;
    }
    if (reissued == 0) break;  // nothing alive to reissue on - give up
    ++report.retries_used;
    report.flows_reissued += reissued;
    report.finish = net.stats().finish_time;
    if (options.tracer != nullptr)
      options.tracer->stage_span(at, report.finish, "recovery", retry);
  }

  report.unrecovered_pairs = pairs_below_target();
  report.complete = report.unrecovered_pairs == 0;
  report.recovery_latency = report.finish - report.initial_finish;
  if (options.metrics != nullptr) {
    options.metrics->count(
        "ihc.recovery_retries",
        static_cast<std::int64_t>(report.retries_used));
    options.metrics->count(
        "ihc.recovery_reissues",
        static_cast<std::int64_t>(report.flows_reissued));
    options.metrics->count(
        "ihc.recovery_unrecovered_pairs",
        static_cast<std::int64_t>(report.unrecovered_pairs));
    if (report.retries_used > 0)
      options.metrics->observe(
          "ihc.recovery_latency_ps",
          static_cast<double>(report.recovery_latency));
  }
  net.flush_metrics();
  report.stats = net.stats();
  report.ledger = std::move(net.ledger());
  return report;
}

}  // namespace ihc
