/// \file retransmit.hpp
/// \brief Selective-retransmission control for packetized broadcasts -
/// the "control" element of the practical issues the paper's conclusion
/// defers (packet format / message reconstruction / control).
///
/// A long message travels as ceil(L/mu) fragments, each over gamma
/// routes.  Intermittent faults can erase every copy of a fragment for
/// some destination; the reassembly layer (core/reassembly.hpp) knows
/// exactly which sequence numbers are missing.  This module closes the
/// loop: it runs broadcast rounds, collects the union of missing
/// fragments per origin, and re-broadcasts only those until every
/// destination can reassemble or the round budget is exhausted.
///
/// The "control channel" (reporting missing sets back to origins) is
/// modeled as reliable and free - in a real system it would ride the same
/// ATA primitive; its cost is the retransmitted fragments, which the
/// report accounts.
#pragma once

#include <memory>

#include "core/ata.hpp"
#include "core/ihc.hpp"
#include "topology/topology.hpp"

namespace ihc {

struct RetransmitConfig {
  std::uint32_t message_units = 8;  ///< message length per node
  std::uint32_t max_rounds = 5;     ///< initial + retransmission rounds
  IhcOptions ihc{.eta = 2};
};

struct RetransmitReport {
  bool complete = false;           ///< every pair can reassemble
  std::uint32_t rounds_used = 0;   ///< including the initial broadcast
  std::uint64_t fragments_sent = 0;     ///< fragment-broadcasts performed
  std::uint64_t fragments_retransmitted = 0;
  SimTime network_time = 0;
};

/// Runs the broadcast-with-selective-retransmission protocol under the
/// given fault plan.
[[nodiscard]] RetransmitReport run_with_retransmission(
    const Topology& topo, const AtaOptions& base_options,
    const RetransmitConfig& config);

// --- Mid-broadcast fault recovery ----------------------------------------
//
// Graceful degradation at the IHC layer (docs/FAULTS.md): when a
// Hamiltonian-cycle edge dies mid-stage (AtaOptions::schedule), the
// affected routes' traffic is re-issued on the surviving edge-disjoint
// cycles, using the same round machinery as selective retransmission -
// run, detect (pairs below the per-pair copy target), wait a detection
// timeout, reissue on routes still alive, repeat up to a retry cap.
//
// When surviving-cycle reissue is not enough (a dead *node* kills every
// static cycle through it), the adaptive escalation ladder takes over:
//
//   1. kStatic - surviving-cycle reissue only (the PR 5 behavior);
//   2. kReroot - recompute a Hamiltonian decomposition of the subgraph
//      induced by the nodes not dead at the retry time
//      (graph/ham_search exact + Posa stages, memoized per dead-set)
//      and re-issue the needy origins' broadcasts on the fresh cycles;
//   3. kPaths  - for pairs still uncovered (e.g. the survivor subgraph
//      has no Hamiltonian cycle at all), extract node-disjoint paths
//      (graph/connectivity Menger machinery) and unicast the missing
//      copies, under a capped attempt/backoff ladder modeled on
//      meshtastic's ack ladder.
//
// Each stage only engages when the previous one leaves reachable pairs
// below min_copies, so on fault-free or statically recoverable runs the
// full ladder behaves exactly like kStatic.

/// Highest escalation stage recovery may climb to.  Later stages imply
/// the earlier ones.
enum class RecoveryLadder {
  kStatic,  ///< reissue on surviving static cycles only (PR 5)
  kReroot,  ///< + re-rooted decomposition of the survivor subgraph
  kPaths,   ///< + per-pair node-disjoint-path unicast fallback
};

[[nodiscard]] const char* to_string(RecoveryLadder ladder);

struct RecoveryPolicy {
  /// Simulated time between a round draining and the reissue injections
  /// (models failure detection plus the control round-trip).
  SimTime detection_timeout = sim_us(5);
  std::uint32_t max_retries = 3;
  /// Per-pair delivery target: a pair with fewer ledger copies than this
  /// counts as missing.  Use the topology's gamma to demand the full
  /// edge-disjoint redundancy, 1 for plain delivery.
  std::uint32_t min_copies = 1;
  /// Highest escalation stage this run may use.  Defaults to the full
  /// adaptive ladder; kStatic reproduces PR 5's surviving-cycle-only
  /// behavior (the chaos_soak comparison axis).
  RecoveryLadder ladder = RecoveryLadder::kPaths;
  /// Fallback-path attempt cap (meshtastic sends a packet at most three
  /// times before declaring no-ack); each attempt waits one more
  /// detection_timeout than the previous (the growing backoff delay).
  std::uint32_t path_attempts = 3;
};

struct RecoveryReport {
  bool complete = false;          ///< every reachable pair reached min_copies
  bool initial_complete = false;  ///< ... already before any retry
  std::uint32_t retries_used = 0;
  std::uint64_t flows_reissued = 0;
  /// Reachable ordered pairs still below min_copies when the ladder gave
  /// up.  complete == (unrecovered_pairs == 0).
  std::uint64_t unrecovered_pairs = 0;
  /// Ordered pairs written off because the destination can never receive
  /// again: its node is drop-faulted from the first retry time through
  /// the end of the schedule (never-again-alive), or every in-link is
  /// permanently dead.  Distinct from unrecovered_pairs; the retry
  /// budget is never spent on them (the paper's reliability guarantees
  /// cover healthy destinations only).
  std::uint64_t unreachable_pairs = 0;
  /// Ladder stages escalated into (0 = static reissue sufficed; counts
  /// kReroot and kPaths activations).
  std::uint32_t escalations = 0;
  /// Directed cycles of the re-rooted survivor decomposition (0 when the
  /// reroot stage never ran or the survivor subgraph had none).
  std::uint32_t rerooted_cycles = 0;
  /// Flows reissued on re-rooted cycles (also counted in flows_reissued).
  std::uint64_t reroot_reissues = 0;
  /// Node-disjoint fallback paths unicast by the kPaths stage.
  std::uint64_t fallback_paths = 0;
  /// Fallback attempt rounds consumed (<= policy.path_attempts).
  std::uint32_t path_attempts_used = 0;
  SimTime initial_finish = 0;
  SimTime finish = 0;
  /// finish - initial_finish: the simulated time recovery added (0 for a
  /// clean run).
  SimTime recovery_latency = 0;
  NetStats stats;
  DeliveryLedger ledger;
};

/// Runs an eta-interleaved IHC broadcast (global stage barrier) under the
/// options' static faults and dynamic schedule, then applies the recovery
/// policy until every reachable ordered pair holds min_copies copies or
/// the ladder is exhausted.  Exports ihc.recovery_* metrics and
/// "recovery" / "recovery_reroot" / "recovery_paths" stage spans through
/// the attached observability.
[[nodiscard]] RecoveryReport run_ihc_with_recovery(
    const Topology& topo, const IhcOptions& ihc, const AtaOptions& options,
    const RecoveryPolicy& policy);

namespace detail {

/// Testable core of the reissue route filter: true when every hop of the
/// route starting at cycle position `pos` (N-1 hops along `hc`) is usable
/// at time `at` - no dead link and no drop-capable relay.  A relay is
/// judged dead when EITHER layer can drop it: an active drop-capable
/// schedule window, or a drop-capable static FaultPlan mode (a statically
/// silent relay stays suspect even while a benign dynamic window, e.g.
/// kSlow, is momentarily active - the window may close mid-flight).
[[nodiscard]] bool recovery_route_alive(const Graph& g,
                                        const DirectedCycle& hc,
                                        std::size_t pos,
                                        const AtaOptions& options,
                                        SimTime at);

/// Survivor-subgraph re-rooted decomposition, memoized process-wide per
/// (graph, alive-node-set, dead-edge-set) via util/memo_cache.  Searches
/// for floor(min_degree/2) down to 1 edge-disjoint Hamiltonian cycles of
/// the alive-induced subgraph (graph/ham_search exact + Posa stages) and
/// returns the found cycles in ORIGINAL node ids, together with directed
/// traversals indexed for the original graph.  `found` is false when the
/// search refuted or gave up.
struct RerootPlan {
  bool found = false;
  std::string detail;             ///< refutation / give-up diagnostic
  std::vector<Cycle> cycles;      ///< original-id survivor cycles
  std::vector<DirectedCycle> directed;  ///< 2 per cycle (both traversals)
};

[[nodiscard]] std::shared_ptr<const RerootPlan> rerooted_decomposition(
    const Graph& g, const std::vector<std::uint8_t>& node_alive,
    const std::vector<std::uint8_t>& edge_alive, std::uint32_t max_cycles);

}  // namespace detail

}  // namespace ihc
