/// \file retransmit.hpp
/// \brief Selective-retransmission control for packetized broadcasts -
/// the "control" element of the practical issues the paper's conclusion
/// defers (packet format / message reconstruction / control).
///
/// A long message travels as ceil(L/mu) fragments, each over gamma
/// routes.  Intermittent faults can erase every copy of a fragment for
/// some destination; the reassembly layer (core/reassembly.hpp) knows
/// exactly which sequence numbers are missing.  This module closes the
/// loop: it runs broadcast rounds, collects the union of missing
/// fragments per origin, and re-broadcasts only those until every
/// destination can reassemble or the round budget is exhausted.
///
/// The "control channel" (reporting missing sets back to origins) is
/// modeled as reliable and free - in a real system it would ride the same
/// ATA primitive; its cost is the retransmitted fragments, which the
/// report accounts.
#pragma once

#include "core/ata.hpp"
#include "core/ihc.hpp"
#include "topology/topology.hpp"

namespace ihc {

struct RetransmitConfig {
  std::uint32_t message_units = 8;  ///< message length per node
  std::uint32_t max_rounds = 5;     ///< initial + retransmission rounds
  IhcOptions ihc{.eta = 2};
};

struct RetransmitReport {
  bool complete = false;           ///< every pair can reassemble
  std::uint32_t rounds_used = 0;   ///< including the initial broadcast
  std::uint64_t fragments_sent = 0;     ///< fragment-broadcasts performed
  std::uint64_t fragments_retransmitted = 0;
  SimTime network_time = 0;
};

/// Runs the broadcast-with-selective-retransmission protocol under the
/// given fault plan.
[[nodiscard]] RetransmitReport run_with_retransmission(
    const Topology& topo, const AtaOptions& base_options,
    const RetransmitConfig& config);

}  // namespace ihc
