/// \file retransmit.hpp
/// \brief Selective-retransmission control for packetized broadcasts -
/// the "control" element of the practical issues the paper's conclusion
/// defers (packet format / message reconstruction / control).
///
/// A long message travels as ceil(L/mu) fragments, each over gamma
/// routes.  Intermittent faults can erase every copy of a fragment for
/// some destination; the reassembly layer (core/reassembly.hpp) knows
/// exactly which sequence numbers are missing.  This module closes the
/// loop: it runs broadcast rounds, collects the union of missing
/// fragments per origin, and re-broadcasts only those until every
/// destination can reassemble or the round budget is exhausted.
///
/// The "control channel" (reporting missing sets back to origins) is
/// modeled as reliable and free - in a real system it would ride the same
/// ATA primitive; its cost is the retransmitted fragments, which the
/// report accounts.
#pragma once

#include "core/ata.hpp"
#include "core/ihc.hpp"
#include "topology/topology.hpp"

namespace ihc {

struct RetransmitConfig {
  std::uint32_t message_units = 8;  ///< message length per node
  std::uint32_t max_rounds = 5;     ///< initial + retransmission rounds
  IhcOptions ihc{.eta = 2};
};

struct RetransmitReport {
  bool complete = false;           ///< every pair can reassemble
  std::uint32_t rounds_used = 0;   ///< including the initial broadcast
  std::uint64_t fragments_sent = 0;     ///< fragment-broadcasts performed
  std::uint64_t fragments_retransmitted = 0;
  SimTime network_time = 0;
};

/// Runs the broadcast-with-selective-retransmission protocol under the
/// given fault plan.
[[nodiscard]] RetransmitReport run_with_retransmission(
    const Topology& topo, const AtaOptions& base_options,
    const RetransmitConfig& config);

// --- Mid-broadcast fault recovery ----------------------------------------
//
// Graceful degradation at the IHC layer (docs/FAULTS.md): when a
// Hamiltonian-cycle edge dies mid-stage (AtaOptions::schedule), the
// affected routes' traffic is re-issued on the surviving edge-disjoint
// cycles, using the same round machinery as selective retransmission -
// run, detect (pairs below the per-pair copy target), wait a detection
// timeout, reissue on routes still alive, repeat up to a retry cap.

struct RecoveryPolicy {
  /// Simulated time between a round draining and the reissue injections
  /// (models failure detection plus the control round-trip).
  SimTime detection_timeout = sim_us(5);
  std::uint32_t max_retries = 3;
  /// Per-pair delivery target: a pair with fewer ledger copies than this
  /// counts as missing.  Use the topology's gamma to demand the full
  /// edge-disjoint redundancy, 1 for plain delivery.
  std::uint32_t min_copies = 1;
};

struct RecoveryReport {
  bool complete = false;          ///< every pair reached min_copies
  bool initial_complete = false;  ///< ... already before any retry
  std::uint32_t retries_used = 0;
  std::uint64_t flows_reissued = 0;
  std::uint64_t unrecovered_pairs = 0;
  SimTime initial_finish = 0;
  SimTime finish = 0;
  /// finish - initial_finish: the simulated time recovery added (0 for a
  /// clean run).
  SimTime recovery_latency = 0;
  NetStats stats;
  DeliveryLedger ledger;
};

/// Runs an eta-interleaved IHC broadcast (global stage barrier) under the
/// options' static faults and dynamic schedule, then applies the recovery
/// policy until every ordered pair holds min_copies copies or the retry
/// budget is exhausted.  Exports ihc.recovery_* metrics and "recovery"
/// stage spans through the attached observability.
[[nodiscard]] RecoveryReport run_ihc_with_recovery(
    const Topology& topo, const IhcOptions& ihc, const AtaOptions& options,
    const RecoveryPolicy& policy);

}  // namespace ihc
