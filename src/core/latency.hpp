/// \file latency.hpp
/// \brief Delivery-latency analytics over the ledger.
///
/// The paper's tables report only the total ATA completion time.  Two
/// finer metrics distinguish the algorithms sharply and matter to the
/// applications (a clock-sync round can proceed once ONE intact copy per
/// origin has arrived; full Byzantine tolerance needs all gamma):
///
///  * first-copy completion - the time by which every ordered pair has
///    received at least one copy;
///  * full completion       - the time by which every pair has all gamma
///    (identical to the tables' finish time).
///
/// Per-pair first/last copy times are also summarized (mean/min/max/
/// stddev) for distribution-shape comparisons.
#pragma once

#include "sim/delivery.hpp"
#include "util/stats.hpp"

namespace ihc {

struct LatencyReport {
  /// max over pairs of the earliest copy's arrival (0 if some pair got
  /// nothing).
  SimTime first_copy_completion = 0;
  /// max over pairs of the latest copy's arrival.
  SimTime full_completion = 0;
  /// Whether every ordered pair received at least one copy.
  bool all_pairs_reached = false;
  Summary first_copy_times;  ///< distribution of per-pair earliest arrivals
  Summary last_copy_times;   ///< distribution of per-pair latest arrivals
};

/// Computes latency statistics; requires a kFull-granularity ledger.
[[nodiscard]] LatencyReport delivery_latency(const DeliveryLedger& ledger);

}  // namespace ihc
