/// \file verify.hpp
/// \brief Reliability verdicts: majority voting and signed-message
/// acceptance over the delivery ledger (Section I).
///
/// The paper's fault-tolerance claims, which these verdicts let the tests
/// and benches measure:
///  * without signatures, correct delivery is guaranteed for
///    t <= ceil(gamma/2) - 1 Byzantine nodes (majority of the gamma
///    copies);
///  * with signed messages, the bound rises to t <= gamma - 1 (one intact
///    copy suffices, because relays cannot forge the origin's signature).
#pragma once

#include <cstdint>
#include <optional>

#include "sim/delivery.hpp"
#include "sim/signature.hpp"

namespace ihc {

enum class Verdict : std::uint8_t {
  kCorrect,         ///< decided on the origin's true value
  kWrong,           ///< decided on a different value
  kUndecided,       ///< no value reached the acceptance threshold
  kSourceDetected,  ///< signed mode: conflicting validly-signed values
};

/// Voting rule for unsigned copies.
enum class VoteRule : std::uint8_t {
  /// A value needs a strict majority of the gamma *expected* copies
  /// (> gamma/2).  Never wrong under <= ceil(gamma/2)-1 corruptions on
  /// node-disjoint routes, but missing copies can force kUndecided.
  kStrictMajority,
  /// A value needs a strict majority of the *received* copies.  Decides
  /// through silent faults, but a corrupting coalition that outnumbers the
  /// surviving intact copies can turn the verdict kWrong.
  kReceivedMajority,
};

/// Majority vote over the copies dest received of origin's message.
[[nodiscard]] Verdict majority_vote(const DeliveryLedger& ledger,
                                    NodeId origin, NodeId dest,
                                    std::uint32_t gamma,
                                    std::uint64_t true_value,
                                    VoteRule rule = VoteRule::kStrictMajority);

/// The value that wins the vote (when one does) - for protocols that use
/// the broadcast to *transport* application values (clock readings,
/// diagnoses) rather than to check a known truth.
[[nodiscard]] std::optional<std::uint64_t> majority_value(
    const DeliveryLedger& ledger, NodeId origin, NodeId dest,
    std::uint32_t gamma, VoteRule rule = VoteRule::kStrictMajority);

/// Signed-message acceptance: any copy with a valid MAC is trusted; if
/// valid copies conflict, the origin itself must be faulty
/// (kSourceDetected).
[[nodiscard]] Verdict signed_accept(const DeliveryLedger& ledger,
                                    const KeyRing& keys, NodeId origin,
                                    NodeId dest, std::uint64_t true_value);

/// Aggregate assessment across all ordered pairs with non-faulty origins.
struct ReliabilityReport {
  std::uint64_t pairs = 0;
  std::uint64_t correct = 0;
  std::uint64_t wrong = 0;
  std::uint64_t undecided = 0;
  std::uint64_t source_detected = 0;

  [[nodiscard]] bool all_correct() const { return correct == pairs; }
};

/// Runs the verdict for every ordered (origin, dest) pair whose origin and
/// dest are non-faulty (faulty participants are outside the guarantee).
/// `keys == nullptr` selects majority voting, otherwise signed acceptance.
[[nodiscard]] ReliabilityReport assess_reliability(
    const DeliveryLedger& ledger, const KeyRing* keys, std::uint32_t gamma,
    const std::vector<NodeId>& faulty_nodes,
    VoteRule rule = VoteRule::kStrictMajority);

}  // namespace ihc
