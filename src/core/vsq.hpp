/// \file vsq.hpp
/// \brief VSQ: cut-through reliable broadcast on torus-wrapped square
/// meshes, and VSQ-ATA (Section V-C, Fig. 9).
///
/// The source sends a copy in each of the four directions; the copy
/// entering through direction i spreads from the root r_i = s + e_i by a
/// spoke along direction i (cut-through) that wraps the full row/column,
/// each spoke node then filling its perpendicular line (one turn, then
/// cut-throughs).  Each path pays at most 3 store-and-forward operations,
/// matching the cost structure the paper derives from Fig. 9 (the figure's
/// exact fork placement is reconstructed, not copied; see DESIGN.md).
#pragma once

#include "core/ata.hpp"
#include "sim/network.hpp"
#include "topology/square_mesh.hpp"

namespace ihc {

/// The four dissemination trees of a VSQ broadcast from `source`.
[[nodiscard]] std::vector<std::vector<FlowTreeNode>> vsq_trees(
    const SquareMesh& mesh, NodeId source);

[[nodiscard]] AtaResult run_vsq_single(const SquareMesh& mesh, NodeId source,
                                       const AtaOptions& options);

/// VSQ-ATA: one VSQ broadcast per node, sequentially.
[[nodiscard]] AtaResult run_vsq_ata(const SquareMesh& mesh,
                                    const AtaOptions& options);

}  // namespace ihc
