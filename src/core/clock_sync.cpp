#include "core/clock_sync.hpp"

#include <algorithm>
#include <cmath>

#include "core/verify.hpp"
#include "util/error.hpp"

namespace ihc {

std::uint64_t encode_clock(double clock_us) {
  require(clock_us >= 0.0 && clock_us < 1e12, "clock out of range");
  return static_cast<std::uint64_t>(std::llround(clock_us * 1e6));  // ps
}

double decode_clock(std::uint64_t payload) {
  return static_cast<double>(payload) / 1e6;
}

ClockSynchronizer::ClockSynchronizer(const Topology& topo,
                                     std::vector<double> clocks,
                                     ClockSyncConfig config)
    : topo_(&topo), clocks_(std::move(clocks)), config_(config) {
  require(clocks_.size() == topo.node_count(),
          "one clock per node required");
  require(topo.node_count() > 3 * config_.fault_tolerance,
          "fault-tolerant midpoint requires N > 3t");
}

double ClockSynchronizer::spread_us(
    const std::vector<NodeId>& exclude) const {
  double lo = 1e300, hi = -1e300;
  for (NodeId v = 0; v < clocks_.size(); ++v) {
    if (std::find(exclude.begin(), exclude.end(), v) != exclude.end())
      continue;
    lo = std::min(lo, clocks_[v]);
    hi = std::max(hi, clocks_[v]);
  }
  return hi - lo;
}

ClockSyncRound ClockSynchronizer::run_round(const AtaOptions& options) {
  const NodeId n = topo_->node_count();
  const std::vector<NodeId> faulty =
      options.faults != nullptr ? options.faults->faulty_nodes()
                                : std::vector<NodeId>{};

  ClockSyncRound round;
  round.spread_before_us = spread_us(faulty);

  // Broadcast every clock as the packet payload.  An equivocating node's
  // per-route lies are produced by the fault plan below; honest payloads
  // are the encoded clocks.
  std::vector<PayloadOverride> overrides(n);
  for (NodeId v = 0; v < n; ++v)
    overrides[v] = PayloadOverride{encode_clock(clocks_[v]), 0};
  AtaOptions opt = options;
  opt.granularity = DeliveryLedger::Granularity::kFull;
  opt.payload_override = &overrides;
  // A Byzantine clock broadcasts an arbitrary (wrong) value; the
  // fault-tolerant midpoint's extreme-trimming absorbs it.  (Per-route
  // equivocation detection is the voting/agreement layer's job.)
  if (opt.faults != nullptr) {
    for (const NodeId f : faulty) {
      overrides[f].payload =
          opt.faults->origin_payload(f, overrides[f].payload, 0);
    }
  }
  const AtaResult result = run_ihc(*topo_, config_.ihc, opt);
  round.network_time = result.finish;

  // Every healthy node votes per origin and applies the midpoint rule.
  std::vector<double> next = clocks_;
  const std::uint32_t t = config_.fault_tolerance;
  for (NodeId v = 0; v < n; ++v) {
    if (std::find(faulty.begin(), faulty.end(), v) != faulty.end())
      continue;
    // Use the quantized self-reading so every node computes from the
    // same numbers the network carried.
    std::vector<double> readings{decode_clock(encode_clock(clocks_[v]))};
    for (NodeId o = 0; o < n; ++o) {
      if (o == v) continue;
      const auto value =
          majority_value(result.ledger, o, v, topo_->gamma(),
                         VoteRule::kReceivedMajority);
      if (!value.has_value()) {
        ++round.rejected_origins;
        continue;
      }
      readings.push_back(decode_clock(*value));
    }
    std::sort(readings.begin(), readings.end());
    IHC_ENSURE(readings.size() > 2 * t, "too few readings for the rule");
    double sum = 0;
    std::size_t count = 0;
    for (std::size_t i = t; i + t < readings.size(); ++i) {
      sum += readings[i];
      ++count;
    }
    next[v] = sum / static_cast<double>(count);
  }
  clocks_ = std::move(next);
  round.spread_after_us = spread_us(faulty);
  return round;
}

void ClockSynchronizer::advance(double interval_us,
                                const std::vector<double>& drift_ppm) {
  for (NodeId v = 0; v < clocks_.size(); ++v) {
    const double drift =
        drift_ppm.empty() ? 0.0 : drift_ppm[v] * 1e-6 * interval_us;
    clocks_[v] += interval_us + drift;
  }
}

}  // namespace ihc
