#include "core/diagnosis.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ihc {

DiagnosisResult run_distributed_diagnosis(const Topology& topo,
                                          FaultPlan& faults,
                                          const AtaOptions& base_options,
                                          const DiagnosisConfig& config) {
  const NodeId n = topo.node_count();
  const auto faulty = faults.faulty_nodes();
  auto is_faulty = [&faulty](NodeId v) {
    return std::find(faulty.begin(), faulty.end(), v) != faulty.end();
  };

  DiagnosisResult result;
  result.suspicion.assign(n, 0);
  // suspicion_by[v][w]: observer v's evidence against w.
  std::vector<std::vector<std::uint64_t>> suspicion_by(
      n, std::vector<std::uint64_t>(n, 0));

  const auto& cycles = topo.directed_cycles();
  for (std::uint32_t round = 0; round < config.rounds; ++round) {
    AtaOptions opt = base_options;
    opt.granularity = DeliveryLedger::Granularity::kFull;
    opt.faults = &faults;
    const AtaResult run = run_ihc(topo, config.ihc, opt);
    result.network_time += run.finish;
    ++result.rounds_run;

    for (NodeId v = 0; v < n; ++v) {
      if (is_faulty(v)) continue;
      for (NodeId o = 0; o < n; ++o) {
        if (o == v || is_faulty(o)) continue;
        const auto& copies = run.ledger.records(o, v);
        if (copies.empty()) continue;
        // The presumed-true value: the median payload (majority of the
        // copies are intact as long as the culprits are a minority of
        // the routes).
        std::vector<std::uint64_t> values;
        values.reserve(copies.size());
        for (const auto& c : copies) values.push_back(c.payload);
        std::sort(values.begin(), values.end());
        const std::uint64_t truth = values[values.size() / 2];

        std::vector<bool> route_clean(cycles.size(), false);
        for (const auto& c : copies)
          if (c.payload == truth) route_clean[c.route] = true;
        for (std::size_t j = 0; j < cycles.size(); ++j) {
          if (route_clean[j]) continue;
          // Missing or divergent: every interior relay is a suspect.
          for (NodeId w = cycles[j].next(o); w != v; w = cycles[j].next(w))
            ++suspicion_by[v][w];
        }
      }
    }
  }

  // Aggregate and vote.
  result.votes.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (is_faulty(v)) continue;
    NodeId best = 0;
    for (NodeId w = 0; w < n; ++w) {
      result.suspicion[w] += suspicion_by[v][w];
      if (suspicion_by[v][w] > suspicion_by[v][best]) best = w;
    }
    ++result.votes[best];
  }
  result.convicted = static_cast<NodeId>(
      std::max_element(result.votes.begin(), result.votes.end()) -
      result.votes.begin());
  return result;
}

}  // namespace ihc
