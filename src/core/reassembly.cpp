#include "core/reassembly.hpp"

namespace ihc {

bool MessageReassembler::feed(const PacketHeader& header,
                              std::uint64_t payload_unit) {
  Assembly& a = by_origin_[header.origin];
  if (a.total == 0) a.total = header.total;
  if (a.total != header.total) {
    a.inconsistent = true;
    return false;
  }
  const auto [it, inserted] = a.fragments.emplace(header.seq, payload_unit);
  if (!inserted && it->second != payload_unit) {
    a.inconsistent = true;  // duplicate fragments disagree
    return false;
  }
  return true;
}

bool MessageReassembler::feed_wire(std::uint64_t header_word,
                                   std::uint64_t payload_unit) {
  const auto header = decode_header(header_word);
  if (!header.has_value()) return false;  // damaged header: dropped
  return feed(*header, payload_unit);
}

MessageState MessageReassembler::state(NodeId origin) const {
  const auto it = by_origin_.find(origin);
  if (it == by_origin_.end()) return MessageState::kIncomplete;
  if (it->second.inconsistent) return MessageState::kInconsistent;
  return it->second.fragments.size() == it->second.total
             ? MessageState::kComplete
             : MessageState::kIncomplete;
}

std::vector<std::uint64_t> MessageReassembler::message(NodeId origin) const {
  std::vector<std::uint64_t> out;
  const auto it = by_origin_.find(origin);
  if (it == by_origin_.end() ||
      state(origin) != MessageState::kComplete)
    return out;
  out.reserve(it->second.fragments.size());
  for (const auto& [seq, payload] : it->second.fragments)
    out.push_back(payload);
  return out;
}

std::vector<std::uint16_t> MessageReassembler::missing(NodeId origin) const {
  std::vector<std::uint16_t> out;
  const auto it = by_origin_.find(origin);
  if (it == by_origin_.end()) return out;
  const Assembly& a = it->second;
  for (std::uint16_t seq = 0; seq < a.total; ++seq)
    if (!a.fragments.contains(seq)) out.push_back(seq);
  return out;
}

std::vector<NodeId> MessageReassembler::origins() const {
  std::vector<NodeId> out;
  out.reserve(by_origin_.size());
  for (const auto& [origin, assembly] : by_origin_) out.push_back(origin);
  return out;
}

}  // namespace ihc
