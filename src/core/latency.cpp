#include "core/latency.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ihc {

LatencyReport delivery_latency(const DeliveryLedger& ledger) {
  require(ledger.granularity() == DeliveryLedger::Granularity::kFull,
          "latency analysis requires a kFull-granularity ledger");
  LatencyReport report;
  report.all_pairs_reached = true;
  const NodeId n = ledger.node_count();
  for (NodeId o = 0; o < n; ++o) {
    for (NodeId d = 0; d < n; ++d) {
      if (o == d) continue;
      const auto& copies = ledger.records(o, d);
      if (copies.empty()) {
        report.all_pairs_reached = false;
        continue;
      }
      SimTime first = copies.front().time;
      SimTime last = copies.front().time;
      for (const CopyRecord& c : copies) {
        first = std::min(first, c.time);
        last = std::max(last, c.time);
      }
      report.first_copy_completion =
          std::max(report.first_copy_completion, first);
      report.full_completion = std::max(report.full_completion, last);
      report.first_copy_times.add(static_cast<double>(first));
      report.last_copy_times.add(static_cast<double>(last));
    }
  }
  return report;
}

}  // namespace ihc
