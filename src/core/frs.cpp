#include "core/frs.hpp"

#include <unordered_map>

#include "core/runner.hpp"
#include "obs/obs.hpp"
#include "sched/rs_schedule.hpp"
#include "util/error.hpp"

namespace ihc {
namespace {

/// Message length (in FIFO units of mu) sent at step t of FRS.
std::uint64_t frs_step_length_units(const NetworkParams& net, unsigned gamma,
                                    unsigned step) {
  IHC_ENSURE(step >= 1 && step <= gamma + 1, "step out of range");
  const std::uint64_t mu = net.mu;
  if (step == 1 || step == 2) return mu;
  if (step == gamma + 1) return ((1ull << (gamma - 1)) - 1) * mu;
  return (1ull << (step - 2)) * mu;
}

}  // namespace

SimTime frs_step_finish(const NetworkParams& net, unsigned gamma,
                        unsigned step) {
  SimTime t = 0;
  for (unsigned s = 1; s <= step; ++s) {
    t += net.tau_s + net.queueing_delay +
         static_cast<SimTime>(frs_step_length_units(net, gamma, s)) *
             net.alpha;
  }
  return t;
}

AtaResult run_frs(const Hypercube& cube, const AtaOptions& options) {
  const unsigned gamma = cube.dimension();
  const NodeId n = cube.node_count();

  AtaResult result;
  result.algorithm = "FRS";
  result.ledger = DeliveryLedger(n, options.granularity);

  // Precompute step completion times.
  std::vector<SimTime> step_finish(gamma + 2, 0);
  for (unsigned t = 1; t <= gamma + 1; ++t)
    step_finish[t] = frs_step_finish(options.net, gamma, t);

  // Per-source deliveries follow the RS trees; the merged-message timing
  // assigns each hop the completion time of its step.
  std::uint64_t sends = 0;
  for (NodeId source = 0; source < n; ++source) {
    // Walk the flat send list once, carrying per-(copy, node) state.
    std::unordered_map<std::uint64_t, NodeId> state;  // (copy<<32|node)
    auto key = [](std::uint16_t copy, NodeId v) {
      return (static_cast<std::uint64_t>(copy) << 32) | v;
    };
    const std::uint64_t base = make_flow(source, 0, 0, options).payload;
    for (const RsSend& s : rs_broadcast_sends(cube, source)) {
      if (s.returns_to_source) continue;
      ++sends;
      NodeId corrupted_by = kInvalidNode;
      if (s.from != source) {
        const auto it = state.find(key(s.copy, s.from));
        // An upstream drop means this sender never received the copy:
        // the whole subtree of sends vanishes with it.
        if (it == state.end()) continue;
        corrupted_by = it->second;
        // Fault behaviour of the relaying node.
        if (options.faults != nullptr && options.faults->is_faulty(s.from)) {
          const RelayAction action = options.faults->on_relay(s.from);
          if (action == RelayAction::kDrop) continue;
          if (action == RelayAction::kCorrupt &&
              corrupted_by == kInvalidNode)
            corrupted_by = s.from;
        }
      }
      state.emplace(key(s.copy, s.to), corrupted_by);

      std::uint64_t payload = base;
      if (options.faults != nullptr)
        payload = options.faults->origin_payload(source, base, s.copy);
      CopyRecord copy;
      copy.payload = corrupted_by == kInvalidNode
                         ? payload
                         : payload ^ 0xC0DEC0DEDEADBEEFULL;
      copy.mac = options.keys != nullptr
                     ? options.keys->sign(source, payload)
                     : 0;
      copy.time = step_finish[s.step];
      copy.route = s.copy;
      copy.corrupted_by = corrupted_by;
      result.ledger.record(source, s.to, copy);
    }
  }

  result.finish = step_finish[gamma + 1];
  result.stats.finish_time = result.finish;
  result.stats.injections = n * static_cast<std::uint64_t>(gamma);
  result.stats.buffered_relays = sends - result.stats.injections;
  result.stats.deliveries = result.ledger.total_copies();
  // FRS keeps every link fully busy for the whole operation (Section II).
  result.mean_link_utilization = 1.0;

  // FRS is analytic (no Network behind it): the observability view is the
  // closed-form step timeline plus the derived NetStats.
  if (options.tracer != nullptr) {
    options.tracer->announce_topology(cube.graph());
    for (unsigned t = 1; t <= gamma + 1; ++t)
      options.tracer->stage_span(step_finish[t - 1], step_finish[t],
                                 "frs_step", t);
  }
  if (options.metrics != nullptr) {
    export_net_stats(result.stats, *options.metrics);
    for (unsigned t = 1; t <= gamma + 1; ++t)
      options.metrics->observe(
          "frs.step_latency_ps",
          static_cast<double>(step_finish[t] - step_finish[t - 1]));
  }
  return result;
}

}  // namespace ihc
