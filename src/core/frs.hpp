/// \file frs.hpp
/// \brief FRS: Fraigniaud's store-and-forward all-to-all reliable
/// broadcast for hypercubes [12] (Sections II and V).
///
/// Every node executes the RS reliable broadcast *in lock step*; at every
/// step each node merges the messages received in the previous step and
/// sends one (doubled) message per link.  The algorithm proceeds in
/// gamma+1 globally synchronized steps with message lengths
///   L, L, 2L, 4L, ..., 2^{gamma-2} L, (2^{gamma-1}-1) L
/// giving the total time (gamma+1) tau_S + (N-1) L tau_L, the paper's
/// Table II entry - and, with queueing delay D added per step, the Table
/// IV worst case it wins.
///
/// Because messages are merged, the simulation is step-synchronous at
/// message granularity rather than per-packet: delivery *contents* follow
/// the per-source RS trees, delivery *times* are the step completion
/// times.  Relay faults are applied per tree hop (a faulty node corrupts or
/// drops the portion of the merged message it relays).
#pragma once

#include "core/ata.hpp"
#include "topology/hypercube.hpp"

namespace ihc {

/// Completion time of step t (1-based) of FRS under the given parameters.
[[nodiscard]] SimTime frs_step_finish(const NetworkParams& net, unsigned gamma,
                                      unsigned step);

/// Runs FRS all-to-all reliable broadcast.
[[nodiscard]] AtaResult run_frs(const Hypercube& cube,
                                const AtaOptions& options);

}  // namespace ihc
