#include "core/ihc.hpp"

#include <algorithm>

#include "core/runner.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace ihc {
namespace {

/// Number of hops a packet travels: with either stop policy it visits the
/// N-1 other nodes on its cycle; the policies differ only in how a relay
/// recognizes the end (hop counter vs. address match), which the simulator
/// models identically.  Kept explicit for documentation value.
std::uint32_t route_hops(const Topology& topo, IhcStopPolicy policy,
                         const DirectedCycle& cycle, NodeId origin) {
  const NodeId n = topo.node_count();
  if (policy == IhcStopPolicy::kHopCount) return n - 1;
  // Last-node-address policy: stop at prev_j(origin) - the node at
  // distance N-1 along the cycle, i.e. the same hop count.
  const NodeId last = cycle.prev(origin);
  const std::size_t d = (cycle.id(last) + n - cycle.id(origin)) % n;
  return static_cast<std::uint32_t>(d);
}

}  // namespace

std::uint32_t smallest_contention_free_eta(NodeId n, std::uint32_t mu,
                                           std::uint32_t at_least) {
  require(mu >= 1 && n >= 1, "need mu >= 1 and n >= 1");
  for (std::uint32_t eta = std::max(mu, at_least); eta <= n; ++eta)
    if (eta_is_contention_free(n, mu, eta)) return eta;
  return n;
}

AtaResult run_ihc(const Topology& topo, const IhcOptions& ihc,
                  const AtaOptions& options) {
  require(ihc.eta >= 1 && ihc.eta <= topo.node_count(),
          "eta must lie in [1, N]");
  const auto& cycles = topo.directed_cycles();
  const std::size_t used_cycles =
      ihc.cycles_to_use == 0 ? cycles.size() : ihc.cycles_to_use;
  require(used_cycles >= 1 && used_cycles <= cycles.size(),
          "cycles_to_use must lie in [1, gamma]");

  SimEngine net(topo.graph(), options.net, options.granularity);
  net.set_fault_plan(options.faults);
  net.set_fault_schedule(options.schedule);
  attach_observability(net, options);
  const auto overlap =
      static_cast<SimTime>(options.net.mu - 1) * options.net.alpha;

  // Stage order: the overlapped variant iterates eta-1 down to 0 (the
  // paper's note on the modified algorithm); the plain variant 0 upward.
  std::vector<std::uint32_t> stage_order(ihc.eta);
  for (std::uint32_t i = 0; i < ihc.eta; ++i)
    stage_order[i] = ihc.overlap_stages ? ihc.eta - 1 - i : i;

  // With all links usable concurrently, one invocation carries all the
  // cycles at once; in single-link-per-node mode, each directed cycle
  // gets its own sequential invocation (Section IV).
  std::vector<std::vector<std::size_t>> invocations;
  if (ihc.concurrency == LinkConcurrency::kAllLinks) {
    invocations.emplace_back();
    for (std::size_t j = 0; j < used_cycles; ++j)
      invocations.back().push_back(j);
  } else {
    for (std::size_t j = 0; j < used_cycles; ++j)
      invocations.push_back({j});
  }

  const std::uint32_t rounds =
      ihc_packet_count(ihc.message_units, options.net.mu);

  if (ihc.barrier == StageBarrier::kPerCycle) {
    // Asynchronous per-cycle progression (Section IV): when cycle j's
    // stage i packets have all drained, cycle j's stage i+1 initiators
    // inject immediately - implemented with the simulator's completion
    // hook, inside ONE event-driven run.
    require(ihc.concurrency == LinkConcurrency::kAllLinks &&
                !ihc.overlap_stages,
            "per-cycle barriers combine only with all-links, non-"
            "overlapped operation");
    const std::uint32_t total_stages = rounds * ihc.eta;
    struct CycleProgress {
      std::uint32_t stage = 0;    // stages completed injections for
      std::uint32_t pending = 0;  // flows of the current stage in flight
    };
    std::vector<CycleProgress> progress(used_cycles);
    std::vector<std::size_t> cycle_of_flow;
    std::vector<SimTime> stage_started(used_cycles, 0);

    auto inject_stage = [&](std::size_t j, std::uint32_t stage_index,
                            SimTime at) {
      stage_started[j] = at;
      const DirectedCycle& hc = cycles[j];
      const std::uint32_t stage = stage_index % ihc.eta;
      for (std::size_t pos = stage; pos < hc.length(); pos += ihc.eta) {
        const NodeId origin = hc.at(pos);
        if (ihc.origin_limit != 0 && origin >= ihc.origin_limit) continue;
        FlowSpec flow =
            make_flow(origin, static_cast<std::uint16_t>(j), at, options);
        flow.cycle_path =
            CyclePathRoute{&hc, static_cast<std::uint32_t>(pos),
                           route_hops(topo, ihc.stop_policy, hc, origin)};
        const FlowId id = net.add_flow(std::move(flow));
        IHC_ENSURE(id == cycle_of_flow.size(), "flow ids must be dense");
        cycle_of_flow.push_back(j);
        ++progress[j].pending;
      }
    };

    // An origin_limit can leave a stage with no initiators on this cycle;
    // such a stage is over the moment it starts, so skip ahead until one
    // actually injects (or the schedule ends).
    auto inject_from = [&](std::size_t j, std::uint32_t stage_index,
                           SimTime at) {
      inject_stage(j, stage_index, at);
      while (progress[j].pending == 0 &&
             ++progress[j].stage < total_stages)
        inject_stage(j, progress[j].stage, at);
    };

    net.set_completion_hook([&](FlowId flow, SimTime at) {
      const std::size_t j = cycle_of_flow[flow];
      IHC_ENSURE(progress[j].pending > 0, "completion accounting broke");
      if (--progress[j].pending == 0) {
        if (options.tracer != nullptr)
          options.tracer->stage_span(stage_started[j], at, "stage",
                                     progress[j].stage,
                                     static_cast<std::int64_t>(j));
        if (options.metrics != nullptr)
          options.metrics->observe(
              "ihc.stage_latency_ps",
              static_cast<double>(at - stage_started[j]));
        if (++progress[j].stage < total_stages)
          inject_from(j, progress[j].stage, at);
      }
    });
    for (std::size_t j = 0; j < used_cycles; ++j) inject_from(j, 0, 0);
    net.run();
    net.set_completion_hook(nullptr);
    net.flush_metrics();

    AtaResult result;
    result.algorithm =
        "IHC(eta=" + std::to_string(ihc.eta) + ",per-cycle)";
    result.finish = net.stats().finish_time;
    result.stats = net.stats();
    result.mean_link_utilization = net.mean_link_utilization();
    result.ledger = std::move(net.ledger());
    return result;
  }

  // Per-cycle stage starts (kPerCycle lets a cycle whose stage drained
  // early advance immediately; kGlobal keeps every cycle's start equal).
  std::vector<SimTime> cycle_start(cycles.size(), 0);
  SimTime start = 0;
  std::int64_t stage_counter = 0;
  for (std::uint32_t round = 0; round < rounds; ++round)
  for (const auto& cycle_set : invocations) {
    for (std::size_t s = 0; s < stage_order.size(); ++s) {
      const std::uint32_t stage = stage_order[s];
      const SimTime stage_begin = start;
      std::vector<std::vector<FlowId>> stage_flows(cycles.size());
      for (const std::size_t j : cycle_set) {
        const DirectedCycle& hc = cycles[j];
        const SimTime inject = ihc.barrier == StageBarrier::kPerCycle
                                   ? cycle_start[j]
                                   : start;
        for (std::size_t pos = stage; pos < hc.length(); pos += ihc.eta) {
          const NodeId origin = hc.at(pos);
          if (ihc.origin_limit != 0 && origin >= ihc.origin_limit) continue;
          FlowSpec flow = make_flow(origin, static_cast<std::uint16_t>(j),
                                    inject, options);
          flow.cycle_path = CyclePathRoute{
              &hc, static_cast<std::uint32_t>(pos),
              route_hops(topo, ihc.stop_policy, hc, origin)};
          stage_flows[j].push_back(net.add_flow(std::move(flow)));
        }
      }
      net.run();
      start = net.stats().finish_time;
      if (options.tracer != nullptr)
        options.tracer->stage_span(stage_begin, start, "stage",
                                   stage_counter);
      if (options.metrics != nullptr)
        options.metrics->observe("ihc.stage_latency_ps",
                                 static_cast<double>(start - stage_begin));
      ++stage_counter;
      for (const std::size_t j : cycle_set) {
        SimTime finish = cycle_start[j];
        for (const FlowId f : stage_flows[j])
          finish = std::max(finish, net.flow_finish(f));
        cycle_start[j] = finish;
      }

      if (ihc.overlap_stages && s + 1 < stage_order.size()) {
        start = std::max<SimTime>(0, start - overlap);
        for (auto& cs : cycle_start) cs = std::max<SimTime>(0, cs - overlap);
      }
    }
  }

  net.flush_metrics();
  AtaResult result;
  result.algorithm = "IHC(eta=" + std::to_string(ihc.eta) +
                     (ihc.overlap_stages ? ",overlap" : "") +
                     (ihc.concurrency == LinkConcurrency::kSingleLinkPerNode
                          ? ",single-link"
                          : "") +
                     (ihc.cycles_to_use != 0
                          ? ",k=" + std::to_string(ihc.cycles_to_use)
                          : "") +
                     ")";
  result.finish = net.stats().finish_time;
  result.stats = net.stats();
  result.mean_link_utilization = net.mean_link_utilization();
  result.ledger = std::move(net.ledger());
  return result;
}

}  // namespace ihc
