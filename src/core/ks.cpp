#include "core/ks.hpp"

#include "core/runner.hpp"
#include "util/error.hpp"

namespace ihc {
namespace {

/// The six oriented hex directions in 60-degree rotational order, as
/// signed circulant jumps: e_{j+1} is e_j rotated by 60 degrees, so
/// e_j + e_{j+2} = e_{j+1} (using the raw jumps 1, 3m-1, 3m-2).
std::array<NodeId, 6> rotational_jumps(const HexMesh& hex) {
  const NodeId n = hex.node_count();
  const NodeId m = hex.size();
  const NodeId d0 = 1;
  const NodeId d1 = 3 * m - 2;
  const NodeId d2 = 3 * m - 1;  // = d0 + d1
  return {d0 % n, d2 % n, d1 % n, n - d0 % n, n - d2 % n, n - d1 % n};
}

/// Classic reconstruction: six spokes from the root, one 60-degree
/// sector fill per spoke; <= 3 store-and-forwards per path.
std::vector<FlowTreeNode> classic_tree(const HexMesh& hex, NodeId source,
                                       unsigned i,
                                       const std::array<NodeId, 6>& e) {
  const NodeId n = hex.node_count();
  const NodeId m = hex.size();
  auto step = [n](NodeId v, NodeId jump) { return (v + jump) % n; };

  std::vector<FlowTreeNode> tree;
  tree.push_back(FlowTreeNode{source, -1, false});
  const NodeId root = step(source, e[i]);
  tree.push_back(FlowTreeNode{root, 0, false});
  const std::int32_t root_idx = 1;
  for (unsigned j = 0; j < 6; ++j) {
    std::int32_t prev = root_idx;
    for (NodeId a = 1; a <= m - 1; ++a) {
      const NodeId spoke_node =
          step(tree[static_cast<std::size_t>(prev)].node, e[j]);
      const bool ct = (j == i) || a > 1;
      tree.push_back(FlowTreeNode{spoke_node, prev, ct});
      const auto spoke_idx = static_cast<std::int32_t>(tree.size() - 1);
      std::int32_t fill_prev = spoke_idx;
      for (NodeId b = 1; a + b <= m - 1; ++b) {
        const NodeId fill_node =
            step(tree[static_cast<std::size_t>(fill_prev)].node,
                 e[(j + 1) % 6]);
        tree.push_back(FlowTreeNode{fill_node, fill_prev, b > 1});
        fill_prev = static_cast<std::int32_t>(tree.size() - 1);
      }
      prev = spoke_idx;
    }
  }
  return tree;
}

/// Axis-avoiding reconstruction: the back spoke (direction i+3) would run
/// along the same axis line as tree (i+3)'s continuing spoke, so it is
/// dropped; its sector is covered by double fills from spoke i+4 and the
/// axis nodes themselves hang off adjacent fills (one extra redirect).
std::vector<FlowTreeNode> axis_avoiding_tree(
    const HexMesh& hex, NodeId source, unsigned i,
    const std::array<NodeId, 6>& e) {
  const NodeId n = hex.node_count();
  const NodeId m = hex.size();
  auto step = [n](NodeId v, NodeId jump) { return (v + jump) % n; };

  std::vector<FlowTreeNode> tree;
  tree.push_back(FlowTreeNode{source, -1, false});
  const NodeId root = step(source, e[i]);
  tree.push_back(FlowTreeNode{root, 0, false});
  const std::int32_t root_idx = 1;

  // Parents for the axis nodes r + a e_{i+3}:
  //  * a <= m-2: the double-fill node r + e_{i+4} + a e_{i+3}
  //  * a  = m-1: the end of spoke (i+2)'s a=1 fill chain,
  //              r + e_{i+2} + (m-2) e_{i+3}
  std::vector<std::int32_t> inner_axis_parent(m, -1);
  std::int32_t rim_axis_parent = -1;

  for (const unsigned j :
       {i % 6, (i + 1) % 6, (i + 2) % 6, (i + 4) % 6, (i + 5) % 6}) {
    std::int32_t prev = root_idx;
    for (NodeId a = 1; a <= m - 1; ++a) {
      const NodeId spoke_node =
          step(tree[static_cast<std::size_t>(prev)].node, e[j]);
      const bool ct = (j == i % 6) || a > 1;
      tree.push_back(FlowTreeNode{spoke_node, prev, ct});
      const auto spoke_idx = static_cast<std::int32_t>(tree.size() - 1);
      if (j == (i + 2) % 6 && a == 1 && m == 2)
        rim_axis_parent = spoke_idx;  // fill chain is empty for m = 2

      // Standard sector fill in direction e_{j+1}.
      std::int32_t fill_prev = spoke_idx;
      for (NodeId b = 1; a + b <= m - 1; ++b) {
        const NodeId fill_node =
            step(tree[static_cast<std::size_t>(fill_prev)].node,
                 e[(j + 1) % 6]);
        tree.push_back(FlowTreeNode{fill_node, fill_prev, b > 1});
        fill_prev = static_cast<std::int32_t>(tree.size() - 1);
        if (j == (i + 2) % 6 && a == 1 && b == m - 2)
          rim_axis_parent = fill_prev;
      }

      // Double fill from spoke i+4 in direction e_{i+3}: covers the
      // sector the dropped back spoke would have owned.
      if (j == (i + 4) % 6) {
        std::int32_t second_prev = spoke_idx;
        for (NodeId b = 1; a + b <= m - 1; ++b) {
          const NodeId fill_node =
              step(tree[static_cast<std::size_t>(second_prev)].node,
                   e[(i + 3) % 6]);
          tree.push_back(FlowTreeNode{fill_node, second_prev, b > 1});
          second_prev = static_cast<std::int32_t>(tree.size() - 1);
          if (a == 1) inner_axis_parent[b] = second_prev;
        }
      }
      prev = spoke_idx;
    }
  }

  // Axis nodes r + a e_{i+3}.
  NodeId axis = root;
  for (NodeId a = 1; a <= m - 1; ++a) {
    axis = step(axis, e[(i + 3) % 6]);
    if (a <= m - 2) {
      IHC_ENSURE(inner_axis_parent[a] >= 0, "axis parent missing");
      // parent = r + e_{i+4} + a e_{i+3}; the hop to the axis is -e_{i+4}
      // = e_{i+1}.
      tree.push_back(FlowTreeNode{axis, inner_axis_parent[a], false});
    } else {
      IHC_ENSURE(rim_axis_parent >= 0, "rim axis parent missing");
      // parent = r + e_{i+2} + (m-2) e_{i+3}; the hop is e_{i+4}.
      tree.push_back(FlowTreeNode{axis, rim_axis_parent, false});
    }
  }
  return tree;
}

}  // namespace

std::vector<std::vector<FlowTreeNode>> ks_trees(const HexMesh& hex,
                                                NodeId source,
                                                KsVariant variant) {
  const NodeId n = hex.node_count();
  const auto e = rotational_jumps(hex);
  std::vector<std::vector<FlowTreeNode>> trees;
  trees.reserve(6);
  for (unsigned i = 0; i < 6; ++i) {
    std::vector<FlowTreeNode> tree =
        variant == KsVariant::kClassic
            ? classic_tree(hex, source, i, e)
            : axis_avoiding_tree(hex, source, i, e);
    IHC_ENSURE(tree.size() == static_cast<std::size_t>(n) + 1,
               "KS tree must reach every node exactly once (plus source)");
    trees.push_back(std::move(tree));
  }
  return trees;
}

AtaResult run_ks_single(const HexMesh& hex, NodeId source,
                        const AtaOptions& options, KsVariant variant) {
  return run_single_tree_broadcast(
      variant == KsVariant::kClassic ? "KS" : "KS(axis-avoiding)", hex,
      source,
      [&hex, variant](NodeId s) { return ks_trees(hex, s, variant); },
      options);
}

AtaResult run_ks_ata(const HexMesh& hex, const AtaOptions& options,
                     KsVariant variant) {
  return run_sequential_tree_ata(
      variant == KsVariant::kClassic ? "KS-ATA" : "KS-ATA(axis-avoiding)",
      hex,
      [&hex, variant](NodeId s) { return ks_trees(hex, s, variant); },
      options);
}

}  // namespace ihc
