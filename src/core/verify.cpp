#include "core/verify.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/runner.hpp"
#include "util/error.hpp"

namespace ihc {

Verdict majority_vote(const DeliveryLedger& ledger, NodeId origin,
                      NodeId dest, std::uint32_t gamma,
                      std::uint64_t true_value, VoteRule rule) {
  const auto& copies = ledger.records(origin, dest);
  std::unordered_map<std::uint64_t, std::uint32_t> tally;
  for (const CopyRecord& c : copies) ++tally[c.payload];
  const std::uint32_t base = rule == VoteRule::kStrictMajority
                                 ? gamma
                                 : static_cast<std::uint32_t>(copies.size());
  const std::uint32_t threshold = base / 2 + 1;
  for (const auto& [value, count] : tally) {
    if (count >= threshold)
      return value == true_value ? Verdict::kCorrect : Verdict::kWrong;
  }
  return Verdict::kUndecided;
}

std::optional<std::uint64_t> majority_value(const DeliveryLedger& ledger,
                                            NodeId origin, NodeId dest,
                                            std::uint32_t gamma,
                                            VoteRule rule) {
  const auto& copies = ledger.records(origin, dest);
  std::unordered_map<std::uint64_t, std::uint32_t> tally;
  for (const CopyRecord& c : copies) ++tally[c.payload];
  const std::uint32_t base = rule == VoteRule::kStrictMajority
                                 ? gamma
                                 : static_cast<std::uint32_t>(copies.size());
  const std::uint32_t threshold = base / 2 + 1;
  for (const auto& [value, count] : tally)
    if (count >= threshold) return value;
  return std::nullopt;
}

Verdict signed_accept(const DeliveryLedger& ledger, const KeyRing& keys,
                      NodeId origin, NodeId dest, std::uint64_t true_value) {
  const auto& copies = ledger.records(origin, dest);
  bool have_valid = false;
  std::uint64_t accepted = 0;
  for (const CopyRecord& c : copies) {
    if (!keys.verify(origin, c.payload, c.mac)) continue;  // tampered
    if (have_valid && c.payload != accepted) return Verdict::kSourceDetected;
    have_valid = true;
    accepted = c.payload;
  }
  if (!have_valid) return Verdict::kUndecided;
  return accepted == true_value ? Verdict::kCorrect : Verdict::kWrong;
}

ReliabilityReport assess_reliability(const DeliveryLedger& ledger,
                                     const KeyRing* keys, std::uint32_t gamma,
                                     const std::vector<NodeId>& faulty_nodes,
                                     VoteRule rule) {
  const NodeId n = ledger.node_count();
  std::vector<bool> faulty(n, false);
  for (const NodeId f : faulty_nodes) faulty[f] = true;

  ReliabilityReport report;
  for (NodeId o = 0; o < n; ++o) {
    if (faulty[o]) continue;
    const std::uint64_t truth = honest_payload(o);
    for (NodeId d = 0; d < n; ++d) {
      if (d == o || faulty[d]) continue;
      ++report.pairs;
      const Verdict v = keys != nullptr
                            ? signed_accept(ledger, *keys, o, d, truth)
                            : majority_vote(ledger, o, d, gamma, truth, rule);
      switch (v) {
        case Verdict::kCorrect: ++report.correct; break;
        case Verdict::kWrong: ++report.wrong; break;
        case Verdict::kUndecided: ++report.undecided; break;
        case Verdict::kSourceDetected: ++report.source_detected; break;
      }
    }
  }
  return report;
}

}  // namespace ihc
