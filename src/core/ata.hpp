/// \file ata.hpp
/// \brief Common interface of the all-to-all reliable broadcast algorithms.
///
/// Every algorithm (IHC and the four comparison algorithms of Section V)
/// is a driver that installs flows into the simulator and returns an
/// AtaResult: the finish time, the simulator statistics, and the delivery
/// ledger from which all reliability verdicts are computed.
#pragma once

#include <string>

#include "sim/delivery.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/signature.hpp"

namespace ihc {

/// An explicit (payload, MAC) pair for one origin's packets - used by
/// protocols (e.g. signed Byzantine agreement) whose packets carry values
/// signed by a *third party* rather than the origin itself.
struct PayloadOverride {
  std::uint64_t payload = 0;
  std::uint64_t mac = 0;
};

/// Options shared by all ATA algorithm drivers.
struct AtaOptions {
  NetworkParams net;
  DeliveryLedger::Granularity granularity =
      DeliveryLedger::Granularity::kCounts;
  /// Optional Byzantine faults (not owned; may be nullptr).
  FaultPlan* faults = nullptr;
  /// Optional dynamic fault schedule (not owned; may be nullptr):
  /// timestamped fault onset / repair / link glitches consulted as
  /// simulated time advances (sim/fault_schedule.hpp, docs/FAULTS.md).
  FaultSchedule* schedule = nullptr;
  /// Optional signing keys; when set, every packet carries a MAC.
  const KeyRing* keys = nullptr;
  /// Optional per-origin packet contents, indexed by NodeId (not owned;
  /// may be nullptr; must cover all nodes when set).  Overrides the
  /// default honest_payload/keys signing entirely - including for
  /// equivocating origins.
  const std::vector<PayloadOverride>* payload_override = nullptr;
  /// Optional observability (not owned; may be nullptr): structured event
  /// tracing and metrics export (see obs/obs.hpp, docs/TRACING.md).  When
  /// unset every instrumentation site is a branch-on-null no-op.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional prebuilt routing table over the run's topology (not owned;
  /// may be nullptr).  Immutable after construction, so one table can be
  /// shared by concurrent campaign trials on the same graph instead of
  /// each Network building its own (see docs/PERFORMANCE.md).
  const RoutingTable* routes = nullptr;
};

struct AtaResult {
  std::string algorithm;
  SimTime finish = 0;
  NetStats stats;
  DeliveryLedger ledger;
  double mean_link_utilization = 0.0;
};

/// The honest broadcast value of a node (a deterministic 64-bit tag).
[[nodiscard]] std::uint64_t honest_payload(NodeId v);

}  // namespace ihc
