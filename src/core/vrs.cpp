#include "core/vrs.hpp"

#include <unordered_map>

#include "core/runner.hpp"
#include "sched/rs_schedule.hpp"
#include "util/error.hpp"

namespace ihc {

std::vector<std::vector<FlowTreeNode>> vrs_trees(const Hypercube& cube,
                                                 NodeId source) {
  const unsigned m = cube.dimension();
  std::vector<std::vector<FlowTreeNode>> trees(m);
  // Per-copy map node -> index in that copy's tree.
  std::vector<std::unordered_map<NodeId, std::int32_t>> where(m);
  for (unsigned c = 0; c < m; ++c) {
    trees[c].push_back(FlowTreeNode{source, -1, false});
    where[c][source] = 0;
  }
  for (const RsSend& s : rs_broadcast_sends(cube, source)) {
    if (s.returns_to_source) continue;  // optional sends omitted (Table I)
    auto& tree = trees[s.copy];
    auto& idx = where[s.copy];
    const auto parent = idx.at(s.from);
    idx.emplace(s.to, static_cast<std::int32_t>(tree.size()));
    tree.push_back(FlowTreeNode{s.to, parent, s.forward});
  }
  return trees;
}

AtaResult run_vrs_single(const Hypercube& cube, NodeId source,
                         const AtaOptions& options) {
  return run_single_tree_broadcast(
      "VRS", cube, source,
      [&cube](NodeId s) { return vrs_trees(cube, s); }, options);
}

AtaResult run_vrs_ata(const Hypercube& cube, const AtaOptions& options) {
  return run_sequential_tree_ata(
      "VRS-ATA", cube,
      [&cube](NodeId s) { return vrs_trees(cube, s); }, options);
}

}  // namespace ihc
