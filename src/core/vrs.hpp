/// \file vrs.hpp
/// \brief VRS: the Ramanathan-Shin reliable broadcast modified for virtual
/// cut-through, and VRS-ATA (Section V-A).
///
/// Every *forwarded* send of the RS schedule (sender received the copy on
/// the previous step) is implemented as a cut-through; every initiation or
/// *redirect* is a store-and-forward operation.  VRS-ATA executes the VRS
/// broadcast for each node in turn.
#pragma once

#include "core/ata.hpp"
#include "sim/network.hpp"
#include "topology/hypercube.hpp"

namespace ihc {

/// The gamma dissemination trees (one per copy) of a VRS broadcast from
/// `source`, with cut-through marked on forwarded sends.
[[nodiscard]] std::vector<std::vector<FlowTreeNode>> vrs_trees(
    const Hypercube& cube, NodeId source);

/// Single VRS reliable broadcast (pattern experiments).
[[nodiscard]] AtaResult run_vrs_single(const Hypercube& cube, NodeId source,
                                       const AtaOptions& options);

/// VRS-ATA: one VRS broadcast per node, sequentially.
[[nodiscard]] AtaResult run_vrs_ata(const Hypercube& cube,
                                    const AtaOptions& options);

}  // namespace ihc
