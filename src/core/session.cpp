#include "core/session.hpp"

#include "core/ks.hpp"
#include "core/runner.hpp"
#include "core/vrs.hpp"
#include "core/vsq.hpp"
#include "topology/hex_mesh.hpp"
#include "topology/hypercube.hpp"
#include "topology/square_mesh.hpp"
#include "util/error.hpp"

namespace ihc {

namespace {

/// IHC session: one flow per directed Hamiltonian cycle, N-1 hops from
/// the origin's cycle position - the same routes run_ihc() uses, minus
/// the stage interleaving (a session is a single-origin broadcast, so
/// there is nothing to interleave with inside it; concurrency comes from
/// other in-flight sessions).
std::vector<FlowSpec> ihc_session(const Topology& topo, NodeId origin) {
  std::vector<FlowSpec> flows;
  const auto& cycles = topo.directed_cycles();
  const auto hops = static_cast<std::uint32_t>(topo.node_count() - 1);
  for (std::size_t j = 0; j < cycles.size(); ++j) {
    FlowSpec flow;
    flow.origin = origin;
    flow.route_tag = static_cast<std::uint16_t>(j);
    flow.payload = honest_payload(origin);
    flow.cycle_path = CyclePathRoute{
        &cycles[j], static_cast<std::uint32_t>(cycles[j].id(origin)), hops};
    flows.push_back(std::move(flow));
  }
  return flows;
}

std::vector<FlowSpec> tree_session(
    NodeId origin, std::vector<std::vector<FlowTreeNode>> trees) {
  std::vector<FlowSpec> flows;
  for (std::size_t copy = 0; copy < trees.size(); ++copy) {
    FlowSpec flow;
    flow.origin = origin;
    flow.route_tag = static_cast<std::uint16_t>(copy);
    flow.payload = honest_payload(origin);
    flow.tree = std::move(trees[copy]);
    flows.push_back(std::move(flow));
  }
  return flows;
}

}  // namespace

SessionPlanner SessionPlanner::build(std::string_view algorithm,
                                     std::shared_ptr<const Topology> topo) {
  require(topo != nullptr, "session planner needs a topology");
  SessionPlanner planner;
  planner.algorithm_ = std::string(algorithm);
  planner.topo_ = std::move(topo);
  const Topology& t = *planner.topo_;
  planner.per_origin_.reserve(t.node_count());
  for (NodeId origin = 0; origin < t.node_count(); ++origin) {
    if (algorithm == "ihc") {
      planner.per_origin_.push_back(ihc_session(t, origin));
    } else if (algorithm == "vrs") {
      const auto* cube = dynamic_cast<const Hypercube*>(&t);
      require(cube != nullptr, "vrs sessions need a hypercube");
      planner.per_origin_.push_back(
          tree_session(origin, vrs_trees(*cube, origin)));
    } else if (algorithm == "ks") {
      const auto* hex = dynamic_cast<const HexMesh*>(&t);
      require(hex != nullptr, "ks sessions need a hexagonal mesh");
      planner.per_origin_.push_back(
          tree_session(origin, ks_trees(*hex, origin)));
    } else if (algorithm == "vsq") {
      const auto* mesh = dynamic_cast<const SquareMesh*>(&t);
      require(mesh != nullptr, "vsq sessions need a square mesh");
      planner.per_origin_.push_back(
          tree_session(origin, vsq_trees(*mesh, origin)));
    } else {
      require(false, "unknown session algorithm: " + planner.algorithm_ +
                         " (expected ihc, vrs, ks or vsq)");
    }
  }
  return planner;
}

}  // namespace ihc
