/// \file session.hpp
/// \brief Single-origin broadcast session plans for the workload engine.
///
/// The ATA drivers (core/ihc.cpp, core/runner.cpp) orchestrate one-shot
/// all-to-all collectives; the continuous-service workload engine
/// (src/workload/) instead injects *sessions* - independent single-origin
/// reliable broadcasts arriving over time.  A SessionPlanner precomputes,
/// for every origin, the gamma route-disjoint flow templates of one
/// session: cycle paths along the directed Hamiltonian cycles for IHC,
/// or the per-source dissemination trees of the VRS / KS / VSQ baselines.
/// The engine stamps each template with an injection time and a (possibly
/// FRS-merged) packet length and hands it to the simulator; the templates
/// themselves are immutable after construction, so one planner is safely
/// shared by everything a trial does.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/network.hpp"
#include "topology/topology.hpp"

namespace ihc {

class SessionPlanner {
 public:
  /// Builds the per-origin flow templates for `algorithm` on `topo`:
  ///   "ihc"  - gamma cycle paths (any topology with directed cycles);
  ///   "vrs"  - Ramanathan-Shin trees (topo must be a Hypercube);
  ///   "ks"   - Kandlur-Shin trees (topo must be a HexMesh);
  ///   "vsq"  - square-mesh trees (topo must be a SquareMesh).
  /// The topology is retained (shared ownership) because IHC templates
  /// point into its directed-cycle storage.
  static SessionPlanner build(std::string_view algorithm,
                              std::shared_ptr<const Topology> topo);

  /// The flow templates of one session from `origin` (inject_time = 0,
  /// length_units = 0; the caller overrides both).
  [[nodiscard]] const std::vector<FlowSpec>& flows(NodeId origin) const {
    return per_origin_.at(origin);
  }

  [[nodiscard]] const std::string& algorithm() const { return algorithm_; }
  [[nodiscard]] const Topology& topology() const { return *topo_; }

 private:
  std::string algorithm_;
  std::shared_ptr<const Topology> topo_;
  std::vector<std::vector<FlowSpec>> per_origin_;
};

}  // namespace ihc
