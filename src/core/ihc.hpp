/// \file ihc.hpp
/// \brief The IHC algorithm - the paper's contribution (Section IV).
///
/// All-to-all reliable broadcast by interleaving: in stage i, every node v
/// with ID_j(v) mod eta == i injects its packet on directed Hamiltonian
/// cycle HC_j (for all gamma cycles in parallel); packets then flow N-1
/// hops along their cycle, every intermediate node "tee"-ing a copy as the
/// packet cuts through.  Initiators being eta apart, a link carries a new
/// packet at most every eta*alpha - so with eta >= mu no packet ever finds
/// a busy transmitter and every relay is a cut-through.
///
/// Options cover the paper's variants:
///  * eta            - the interleaving distance (Section IV);
///  * overlap_stages - the modified algorithm that starts each stage
///    (mu-1) alpha early, saving (mu-1)^2 alpha overall when eta == mu;
///    stages are then run in the reversed order the paper prescribes;
///  * stop_policy    - how relays know when to stop forwarding a packet
///    (hop counting vs. the last-node address carried in the routing tag;
///    functionally identical, both implemented for completeness).
#pragma once

#include "core/ata.hpp"
#include "topology/topology.hpp"

namespace ihc {

enum class IhcStopPolicy : std::uint8_t {
  kHopCount,        ///< relay exactly N-1 hops
  kLastNodeAddress, ///< stop when the packet reaches prev_j(origin)
};

/// How many of a node's links may be driven concurrently (Section IV).
enum class LinkConcurrency : std::uint8_t {
  /// The HARTS-style assumption: all receivers and transmitters at once.
  kAllLinks,
  /// One incoming + one outgoing link per node: the gamma directed cycles
  /// are then run as sequential IHC invocations, one cycle at a time.
  kSingleLinkPerNode,
};

/// How stage barriers are enforced (Section IV: "if normal network
/// traffic or synchronization inaccuracies cause one HC_j^i-cycle to
/// complete before the other HC_k^i-cycles, then the nodes on cycle HC_j
/// can start on stage i+1 immediately").
enum class StageBarrier : std::uint8_t {
  kGlobal,    ///< stage i+1 starts when every cycle finished stage i
  kPerCycle,  ///< each cycle advances as soon as ITS stage i drains
};

struct IhcOptions {
  std::uint32_t eta = 2;
  bool overlap_stages = false;
  StageBarrier barrier = StageBarrier::kGlobal;
  IhcStopPolicy stop_policy = IhcStopPolicy::kHopCount;
  LinkConcurrency concurrency = LinkConcurrency::kAllLinks;
  /// Use only the first k of the gamma directed Hamiltonian cycles
  /// (0 = all).  Fewer cycles deliver fewer copies - lower reliability -
  /// but finish k/gamma as fast in single-link mode (Section IV's noted
  /// trade).
  std::uint32_t cycles_to_use = 0;
  /// Total message length per node in FIFO units.  0 (or <= mu) means one
  /// packet; larger messages are split into ceil(units / mu) fixed-size
  /// packets (Section IV) broadcast in consecutive IHC rounds.
  std::uint32_t message_units = 0;
  /// Only nodes with id < origin_limit inject (0 = all N origins).  The
  /// stage schedule, relay horizon and per-packet delivery pattern are
  /// unchanged - the run is the chosen origins' slice of the full ATA -
  /// so huge-topology trials (Q_20, docs/PARALLEL.md) can measure the
  /// per-broadcast machinery without the N^2 delivery volume.
  std::uint32_t origin_limit = 0;
};

/// Number of packets a message of this length needs.
[[nodiscard]] constexpr std::uint32_t ihc_packet_count(
    std::uint32_t message_units, std::uint32_t mu) {
  if (message_units <= mu) return 1;
  return (message_units + mu - 1) / mu;
}

/// Runs the IHC all-to-all reliable broadcast on the simulator.
[[nodiscard]] AtaResult run_ihc(const Topology& topo, const IhcOptions& ihc,
                                const AtaOptions& options);

/// Whether an IHC run with this (N, mu, eta) is contention-free: the
/// initiators on a cycle are eta apart except for one wrap-around gap of
/// N mod eta, and every gap must fit a packet of mu FIFO units.  This is
/// the paper's "assuming N modulo mu = 0" precondition, generalized.
[[nodiscard]] constexpr bool eta_is_contention_free(NodeId n,
                                                    std::uint32_t mu,
                                                    std::uint32_t eta) {
  if (eta < mu || eta > n) return false;
  const std::uint32_t wrap_gap = n % eta;
  return wrap_gap == 0 || wrap_gap >= mu;
}

/// Smallest contention-free eta >= max(mu, at_least) for this network
/// size.  Always exists (eta = n trivially qualifies).
[[nodiscard]] std::uint32_t smallest_contention_free_eta(
    NodeId n, std::uint32_t mu, std::uint32_t at_least = 0);

}  // namespace ihc
