/// \file diagnosis.hpp
/// \brief Distributed diagnosis of intermittently faulty processors over
/// the ATA broadcast - the paper's third motivating application
/// (Section I; cf. Yang & Masson [25]).
///
/// Intermittent faults defeat single observations: the culprit relays
/// most packets faithfully and tampers with only some.  The diagnoser
/// accumulates evidence across rounds of IHC heartbeats: whenever the
/// gamma copies of one origin's message disagree at a receiver (or a
/// route's copy is missing outright), every interior relay of the
/// offending route becomes a suspect.  Innocent nodes appear in offending
/// routes by coincidence; the culprit appears in ALL of them - its count
/// separates over rounds, and the healthy nodes convict it by vote.
#pragma once

#include <vector>

#include "core/ata.hpp"
#include "core/ihc.hpp"
#include "topology/topology.hpp"

namespace ihc {

struct DiagnosisConfig {
  std::uint32_t rounds = 10;
  IhcOptions ihc{.eta = 2};
  std::uint64_t seed = 0xD1A6;
};

struct DiagnosisResult {
  /// votes[w] = number of healthy nodes whose top suspect is w.
  std::vector<std::uint32_t> votes;
  /// The plurality suspect.
  NodeId convicted = kInvalidNode;
  /// Aggregated per-node suspicion scores (summed over observers).
  std::vector<std::uint64_t> suspicion;
  std::uint32_t rounds_run = 0;
  SimTime network_time = 0;
};

/// Runs `config.rounds` heartbeat rounds with `faults` injected (the
/// intermittent culprits, typically FaultMode::kRandom) and returns the
/// accumulated verdicts.
[[nodiscard]] DiagnosisResult run_distributed_diagnosis(
    const Topology& topo, FaultPlan& faults, const AtaOptions& base_options,
    const DiagnosisConfig& config);

}  // namespace ihc
