/// \file analysis.hpp
/// \brief Closed-form execution-time models of Section VI: Table II
/// (dedicated network), Table IV (worst case), and the Theorem 4 lower
/// bound.
///
/// Times are returned as double picoseconds (the mesh formulas involve
/// square roots).  The same NetworkParams used by the simulator supply
/// alpha, tau_S, mu and D, so every model value is directly comparable to
/// a measured finish time.
#pragma once

#include <cstdint>

#include "sim/params.hpp"

namespace ihc {
namespace model {

/// tau_S + mu * alpha: one store-and-forward operation.
[[nodiscard]] double saf_op(const NetworkParams& p);

// --- Table II: dedicated network (rho = 0) ------------------------------

/// IHC: eta (tau_S + mu alpha + (N-2) alpha).
[[nodiscard]] double ihc_dedicated(std::uint64_t n, std::uint32_t eta,
                                   const NetworkParams& p);

/// Modified (overlapped) IHC with eta == mu: subtracts (mu-1)^2 alpha.
[[nodiscard]] double ihc_dedicated_overlapped(std::uint64_t n,
                                              const NetworkParams& p);

/// IHC under the single-link-per-node constraint (Section IV): k
/// sequential invocations, one per directed Hamiltonian cycle used.
[[nodiscard]] double ihc_single_link(std::uint64_t n, std::uint32_t eta,
                                     std::uint32_t cycles,
                                     const NetworkParams& p);

/// IHC broadcasting a message of `message_units` FIFO units per node:
/// ceil(units / mu) packet rounds (Section IV packetization).
[[nodiscard]] double ihc_message_dedicated(std::uint64_t n,
                                           std::uint32_t eta,
                                           std::uint32_t message_units,
                                           const NetworkParams& p);

/// VRS-ATA: N ((log2 N - 1)(tau_S + mu alpha) + 2 alpha).
[[nodiscard]] double vrs_ata_dedicated(std::uint64_t n,
                                       const NetworkParams& p);

/// KS-ATA: N (3 (tau_S + mu alpha) + (2 sqrt((N-1)/3) - 5) alpha).
[[nodiscard]] double ks_ata_dedicated(std::uint64_t n,
                                      const NetworkParams& p);

/// VSQ-ATA: N (3 (tau_S + mu alpha) + (2 sqrt(N) - 6) alpha).
[[nodiscard]] double vsq_ata_dedicated(std::uint64_t n,
                                       const NetworkParams& p);

/// FRS: (log2 N + 1) tau_S + (N-1) mu alpha.
[[nodiscard]] double frs_dedicated(std::uint64_t n, const NetworkParams& p);

// --- Table IV: worst case (every cut-through degraded, queueing D) ------

/// IHC: eta (N-1)(tau_S + mu alpha + D).
[[nodiscard]] double ihc_worst(std::uint64_t n, std::uint32_t eta,
                               const NetworkParams& p);

/// VRS-ATA: N (log2 N + 1)(tau_S + mu alpha + D).
[[nodiscard]] double vrs_ata_worst(std::uint64_t n, const NetworkParams& p);

/// KS-ATA: N (2 sqrt((N-1)/3) - 2)(tau_S + mu alpha + D).
[[nodiscard]] double ks_ata_worst(std::uint64_t n, const NetworkParams& p);

/// VSQ-ATA: N (2 sqrt(N) - 3)(tau_S + mu alpha + D).
[[nodiscard]] double vsq_ata_worst(std::uint64_t n, const NetworkParams& p);

/// FRS: (log2 N + 1)(tau_S + D) + (N-1) mu alpha.
[[nodiscard]] double frs_worst(std::uint64_t n, const NetworkParams& p);

// --- Section VI-A dominance conditions ------------------------------------

/// The paper: "The IHC algorithm performs better than all of the other
/// cut-through algorithms if eta <= min{log2 N - 1,
/// 2 sqrt((N-1)/3) - 2, 2 sqrt(N) - 3}."  Returns that bound.
[[nodiscard]] double ihc_vs_cut_through_eta_bound(std::uint64_t n);

/// The paper: "If, in addition, eta = mu and tau_S >= mu^2 alpha / 2, the
/// IHC algorithm is also faster than the FRS algorithm."
[[nodiscard]] bool ihc_beats_frs_condition(const NetworkParams& p);

// --- First-order load model (extension) -----------------------------------

/// Naive prediction of the IHC time under background load rho: every
/// relay independently degrades to a buffered one with probability rho,
/// paying tau_S + mu alpha plus the mean residual occupancy of the
/// blocking background packet instead of alpha.  Deliberately ignores
/// convoy formation (a buffered packet delays everything behind it), so
/// the measured time exceeds this once rho is non-trivial - quantified in
/// bench_rho_sweep.
[[nodiscard]] double ihc_first_order_load(std::uint64_t n, std::uint32_t eta,
                                          const NetworkParams& p);

// --- Theorem 4 -----------------------------------------------------------

/// Lower bound on any ATA reliable broadcast in a dedicated network:
/// tau_S + (N-1) alpha (met by IHC with eta = mu = 1).
[[nodiscard]] double optimal_lower_bound(std::uint64_t n,
                                         const NetworkParams& p);

/// Total packets sent and received: gamma N (N-1) (the paper's headline
/// "over 68.7 billion packets" for a 64K-node Q_16).
[[nodiscard]] std::uint64_t total_packets(std::uint64_t n,
                                          std::uint32_t gamma);

}  // namespace model
}  // namespace ihc
