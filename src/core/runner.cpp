#include "core/runner.hpp"

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace ihc {

void attach_observability(SimEngine& net, const AtaOptions& options) {
  if (options.tracer != nullptr) net.set_tracer(options.tracer);
  if (options.metrics != nullptr) net.set_metrics(options.metrics);
  if (options.routes != nullptr) net.set_routes(options.routes);
}

std::uint64_t honest_payload(NodeId v) {
  std::uint64_t z = v + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

FlowSpec make_flow(NodeId origin, std::uint16_t route_tag,
                   SimTime inject_time, const AtaOptions& options) {
  FlowSpec flow;
  flow.origin = origin;
  flow.route_tag = route_tag;
  flow.inject_time = inject_time;
  if (options.payload_override != nullptr) {
    const PayloadOverride& o = options.payload_override->at(origin);
    flow.payload = o.payload;
    flow.mac = o.mac;
    return flow;
  }
  std::uint64_t payload = honest_payload(origin);
  if (options.faults != nullptr)
    payload = options.faults->origin_payload(origin, payload, route_tag);
  flow.payload = payload;
  flow.mac =
      options.keys != nullptr ? options.keys->sign(origin, payload) : 0;
  return flow;
}

namespace {

AtaResult finish_result(std::string algorithm, SimEngine&& net) {
  net.flush_metrics();
  AtaResult result;
  result.algorithm = std::move(algorithm);
  result.finish = net.stats().finish_time;
  result.stats = net.stats();
  result.mean_link_utilization = net.mean_link_utilization();
  result.ledger = std::move(net.ledger());
  return result;
}

void add_broadcast(SimEngine& net, NodeId source, SimTime start,
                   const std::vector<std::vector<FlowTreeNode>>& trees,
                   const AtaOptions& options) {
  for (std::size_t copy = 0; copy < trees.size(); ++copy) {
    FlowSpec flow =
        make_flow(source, static_cast<std::uint16_t>(copy), start, options);
    flow.tree = trees[copy];
    net.add_flow(std::move(flow));
  }
}

}  // namespace

AtaResult run_sequential_tree_ata(std::string algorithm,
                                  const Topology& topo,
                                  const TreeBuilder& trees,
                                  const AtaOptions& options) {
  SimEngine net(topo.graph(), options.net, options.granularity);
  net.set_fault_plan(options.faults);
  net.set_fault_schedule(options.schedule);
  attach_observability(net, options);
  SimTime start = 0;
  for (NodeId source = 0; source < topo.node_count(); ++source) {
    add_broadcast(net, source, start, trees(source), options);
    net.run();
    const SimTime finish = net.stats().finish_time;
    if (options.tracer != nullptr)
      options.tracer->stage_span(start, finish, "broadcast", source, source);
    if (options.metrics != nullptr)
      options.metrics->observe("ata.broadcast_latency_ps",
                               static_cast<double>(finish - start));
    start = finish;
  }
  return finish_result(std::move(algorithm), std::move(net));
}

AtaResult run_single_tree_broadcast(std::string algorithm,
                                    const Topology& topo, NodeId source,
                                    const TreeBuilder& trees,
                                    const AtaOptions& options) {
  SimEngine net(topo.graph(), options.net, options.granularity);
  net.set_fault_plan(options.faults);
  net.set_fault_schedule(options.schedule);
  attach_observability(net, options);
  add_broadcast(net, source, 0, trees(source), options);
  net.run();
  return finish_result(std::move(algorithm), std::move(net));
}

}  // namespace ihc
