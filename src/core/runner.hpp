/// \file runner.hpp
/// \brief Shared machinery for the ATA algorithm drivers.
///
/// VRS-ATA, KS-ATA and VSQ-ATA all follow the same scheme from Section V:
/// each node executes a tree-shaped reliable broadcast *in turn*, the next
/// broadcast starting when the previous one finishes.  run_sequential_
/// tree_ata implements that scheme for any tree builder.
#pragma once

#include <functional>
#include <vector>

#include "core/ata.hpp"
#include "sim/engine.hpp"
#include "topology/topology.hpp"

namespace ihc {

/// Builds the dissemination trees (one per copy/route) for a broadcast
/// from `source`.
using TreeBuilder =
    std::function<std::vector<std::vector<FlowTreeNode>>(NodeId source)>;

/// Runs one reliable broadcast per node, sequentially, over the simulator.
[[nodiscard]] AtaResult run_sequential_tree_ata(std::string algorithm,
                                                const Topology& topo,
                                                const TreeBuilder& trees,
                                                const AtaOptions& options);

/// Runs a single tree broadcast (used by the pattern experiments E7).
[[nodiscard]] AtaResult run_single_tree_broadcast(
    std::string algorithm, const Topology& topo, NodeId source,
    const TreeBuilder& trees, const AtaOptions& options);

/// Creates a flow spec with payload/MAC/fault-equivocation handling shared
/// by every driver.
[[nodiscard]] FlowSpec make_flow(NodeId origin, std::uint16_t route_tag,
                                 SimTime inject_time,
                                 const AtaOptions& options);

/// Attaches the options' tracer / metrics registry (if any) to the
/// network - every driver calls this right after constructing its
/// engine.
void attach_observability(SimEngine& net, const AtaOptions& options);

}  // namespace ihc
