/// \file clock_sync.hpp
/// \brief Fault-tolerant clock synchronization over the ATA broadcast -
/// the paper's first motivating application (Section I; cf. Lamport &
/// Melliar-Smith [19], Krishna-Shin-Butler [17]).
///
/// Each round, every node broadcasts its clock reading (fixed-point
/// encoded as the packet payload) with the IHC algorithm; every healthy
/// node then applies the fault-tolerant midpoint rule: decide each
/// origin's reading by majority vote over the gamma copies, drop origins
/// whose vote fails (a two-faced clock convicts itself), sort the
/// accepted readings, discard the t smallest and t largest, and adopt the
/// mean of the rest.
///
/// Classic guarantee (N >= 3t + 1): one round at least halves the skew
/// among healthy clocks, down to the floor set by reading error - the
/// tests verify the halving and the floor.
#pragma once

#include <vector>

#include "core/ata.hpp"
#include "core/ihc.hpp"
#include "topology/topology.hpp"

namespace ihc {

/// Fixed-point encoding of clock values (picoseconds as uint64).
[[nodiscard]] std::uint64_t encode_clock(double clock_us);
[[nodiscard]] double decode_clock(std::uint64_t payload);

struct ClockSyncConfig {
  std::uint32_t fault_tolerance = 1;  ///< t of the midpoint rule
  IhcOptions ihc{.eta = 2};
};

struct ClockSyncRound {
  double spread_before_us = 0;  ///< healthy max-min before the round
  double spread_after_us = 0;   ///< after applying the midpoint rule
  SimTime network_time = 0;     ///< simulated time of the ATA broadcast
  std::size_t rejected_origins = 0;  ///< readings that failed the vote
};

class ClockSynchronizer {
 public:
  /// \param topo    host topology (must outlive the synchronizer)
  /// \param clocks  initial clock values (microseconds), one per node
  ClockSynchronizer(const Topology& topo, std::vector<double> clocks,
                    ClockSyncConfig config);

  [[nodiscard]] const std::vector<double>& clocks() const { return clocks_; }

  /// Max - min over the given healthy set (all nodes if empty).
  [[nodiscard]] double spread_us(
      const std::vector<NodeId>& exclude = {}) const;

  /// Runs one synchronization round: IHC broadcast of every clock, then
  /// the fault-tolerant midpoint at every healthy node.  Faulty nodes
  /// (from options.faults) keep arbitrary clocks.
  ClockSyncRound run_round(const AtaOptions& options);

  /// Advances every clock by `interval_us` plus its per-node drift rate
  /// (ppm-scale factors in `drift`; empty = no drift).
  void advance(double interval_us, const std::vector<double>& drift_ppm);

 private:
  const Topology* topo_;
  std::vector<double> clocks_;
  ClockSyncConfig config_;
};

}  // namespace ihc
