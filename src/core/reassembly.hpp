/// \file reassembly.hpp
/// \brief Message reconstruction from packetized broadcasts.
///
/// Long messages travel as ceil(L / mu) fixed-size packets (Section IV);
/// the receiver must reassemble them - possibly out of order (packets of
/// one origin arrive over gamma routes and several rounds), with
/// duplicates (gamma copies of every fragment), losses (silent faults)
/// and corruptions (tampered fragments disagree with their duplicates).
/// MessageReassembler implements that receive-side control logic.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "sim/packet_format.hpp"

namespace ihc {

enum class MessageState : std::uint8_t {
  kIncomplete,   ///< fragments missing
  kComplete,     ///< every fragment present and consistent
  kInconsistent, ///< duplicate fragments disagreed (tampering suspected)
};

class MessageReassembler {
 public:
  /// Feeds one received fragment.  Returns false when the header is
  /// inconsistent with earlier fragments of the same origin (different
  /// `total`), which also marks the message inconsistent.
  bool feed(const PacketHeader& header, std::uint64_t payload_unit);

  /// Convenience: decode the wire word, drop it silently if the CRC
  /// fails, feed otherwise.  Returns true when the fragment was accepted.
  bool feed_wire(std::uint64_t header_word, std::uint64_t payload_unit);

  [[nodiscard]] MessageState state(NodeId origin) const;

  /// The reassembled message (fragments in sequence order); only valid
  /// when state(origin) == kComplete.
  [[nodiscard]] std::vector<std::uint64_t> message(NodeId origin) const;

  /// Fragments still missing for an origin (empty when complete or
  /// unknown origin).
  [[nodiscard]] std::vector<std::uint16_t> missing(NodeId origin) const;

  /// Origins with at least one fragment received.
  [[nodiscard]] std::vector<NodeId> origins() const;

 private:
  struct Assembly {
    std::uint16_t total = 0;
    bool inconsistent = false;
    /// seq -> payload (first value wins; disagreement marks inconsistent).
    std::map<std::uint16_t, std::uint64_t> fragments;
  };
  std::map<NodeId, Assembly> by_origin_;
};

}  // namespace ihc
