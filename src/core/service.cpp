#include "core/service.hpp"

#include "core/runner.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace ihc {

ServiceReport run_periodic_service(const Topology& topo,
                                   const ServiceConfig& config,
                                   const AtaOptions& options) {
  require(config.period > 0, "period must be positive");
  require(config.rounds >= 1, "need at least one round");
  require(config.ihc.eta >= 1 && config.ihc.eta <= topo.node_count(),
          "eta must lie in [1, N]");

  SimEngine net(topo.graph(), options.net, options.granularity);
  net.set_fault_plan(options.faults);
  net.set_fault_schedule(options.schedule);
  attach_observability(net, options);
  const auto& cycles = topo.directed_cycles();
  const NodeId n = topo.node_count();

  ServiceReport report;
  report.all_rounds_complete = true;
  std::uint64_t deliveries_before = 0;

  for (std::uint32_t round = 0; round < config.rounds; ++round) {
    const SimTime round_start =
        static_cast<SimTime>(round) * config.period;
    // All eta stages of this round; stage s starts when stage s-1's
    // packets have drained (the usual barrier), the first at round_start.
    SimTime stage_start = round_start;
    for (std::uint32_t stage = 0; stage < config.ihc.eta; ++stage) {
      for (std::size_t j = 0; j < cycles.size(); ++j) {
        const DirectedCycle& hc = cycles[j];
        for (std::size_t pos = stage; pos < hc.length();
             pos += config.ihc.eta) {
          FlowSpec flow = make_flow(hc.at(pos),
                                    static_cast<std::uint16_t>(j),
                                    stage_start, options);
          flow.cycle_path =
              CyclePathRoute{&hc, static_cast<std::uint32_t>(pos), n - 1};
          net.add_flow(std::move(flow));
        }
      }
      net.run();
      const SimTime stage_end = net.stats().finish_time;
      if (options.tracer != nullptr)
        options.tracer->stage_span(stage_start, stage_end, "stage",
                                   round * config.ihc.eta + stage);
      if (options.metrics != nullptr)
        options.metrics->observe("ihc.stage_latency_ps",
                                 static_cast<double>(stage_end - stage_start));
      stage_start = stage_end;
    }
    const SimTime round_time = net.stats().finish_time - round_start;
    report.round_times.add(static_cast<double>(round_time));
    if (round_time > config.period) ++report.missed_deadlines;
    const std::uint64_t delivered =
        net.stats().deliveries - deliveries_before;
    deliveries_before = net.stats().deliveries;
    if (delivered != static_cast<std::uint64_t>(topo.gamma()) * n * (n - 1))
      report.all_rounds_complete = false;
  }

  net.flush_metrics();
  report.total_deliveries = deliveries_before;
  report.duty_cycle = report.round_times.mean() /
                      static_cast<double>(config.period);
  return report;
}

}  // namespace ihc
