#include "core/analysis.hpp"

#include <algorithm>
#include <cmath>

namespace ihc::model {
namespace {
double a(const NetworkParams& p) { return static_cast<double>(p.alpha); }
double ts(const NetworkParams& p) { return static_cast<double>(p.tau_s); }
double mu(const NetworkParams& p) { return static_cast<double>(p.mu); }
double d(const NetworkParams& p) {
  return static_cast<double>(p.queueing_delay);
}
double log2n(std::uint64_t n) {
  return std::log2(static_cast<double>(n));
}
}  // namespace

double saf_op(const NetworkParams& p) { return ts(p) + mu(p) * a(p); }

double ihc_dedicated(std::uint64_t n, std::uint32_t eta,
                     const NetworkParams& p) {
  return eta * (ts(p) + mu(p) * a(p) + (static_cast<double>(n) - 2) * a(p));
}

double ihc_dedicated_overlapped(std::uint64_t n, const NetworkParams& p) {
  const double save = (mu(p) - 1) * (mu(p) - 1) * a(p);
  return ihc_dedicated(n, p.mu, p) - save;
}

double ihc_single_link(std::uint64_t n, std::uint32_t eta,
                       std::uint32_t cycles, const NetworkParams& p) {
  return cycles * ihc_dedicated(n, eta, p);
}

double ihc_message_dedicated(std::uint64_t n, std::uint32_t eta,
                             std::uint32_t message_units,
                             const NetworkParams& p) {
  const std::uint32_t rounds =
      message_units <= p.mu ? 1 : (message_units + p.mu - 1) / p.mu;
  return rounds * ihc_dedicated(n, eta, p);
}

double vrs_ata_dedicated(std::uint64_t n, const NetworkParams& p) {
  return static_cast<double>(n) *
         ((log2n(n) - 1) * saf_op(p) + 2 * a(p));
}

double ks_ata_dedicated(std::uint64_t n, const NetworkParams& p) {
  const double ct_ops = 2 * std::sqrt((static_cast<double>(n) - 1) / 3) - 5;
  return static_cast<double>(n) * (3 * saf_op(p) + ct_ops * a(p));
}

double vsq_ata_dedicated(std::uint64_t n, const NetworkParams& p) {
  const double ct_ops = 2 * std::sqrt(static_cast<double>(n)) - 6;
  return static_cast<double>(n) * (3 * saf_op(p) + ct_ops * a(p));
}

double frs_dedicated(std::uint64_t n, const NetworkParams& p) {
  return (log2n(n) + 1) * ts(p) +
         (static_cast<double>(n) - 1) * mu(p) * a(p);
}

double ihc_worst(std::uint64_t n, std::uint32_t eta, const NetworkParams& p) {
  return eta * (static_cast<double>(n) - 1) * (saf_op(p) + d(p));
}

double vrs_ata_worst(std::uint64_t n, const NetworkParams& p) {
  return static_cast<double>(n) * (log2n(n) + 1) * (saf_op(p) + d(p));
}

double ks_ata_worst(std::uint64_t n, const NetworkParams& p) {
  const double ops = 2 * std::sqrt((static_cast<double>(n) - 1) / 3) - 2;
  return static_cast<double>(n) * ops * (saf_op(p) + d(p));
}

double vsq_ata_worst(std::uint64_t n, const NetworkParams& p) {
  const double ops = 2 * std::sqrt(static_cast<double>(n)) - 3;
  return static_cast<double>(n) * ops * (saf_op(p) + d(p));
}

double frs_worst(std::uint64_t n, const NetworkParams& p) {
  return (log2n(n) + 1) * (ts(p) + d(p)) +
         (static_cast<double>(n) - 1) * mu(p) * a(p);
}

double ihc_vs_cut_through_eta_bound(std::uint64_t n) {
  const double nd = static_cast<double>(n);
  const double hyper = std::log2(nd) - 1;
  const double hex = 2 * std::sqrt((nd - 1) / 3) - 2;
  const double square = 2 * std::sqrt(nd) - 3;
  return std::min(hyper, std::min(hex, square));
}

bool ihc_beats_frs_condition(const NetworkParams& p) {
  return static_cast<double>(p.tau_s) >=
         0.5 * mu(p) * mu(p) * a(p);
}

double ihc_first_order_load(std::uint64_t n, std::uint32_t eta,
                            const NetworkParams& p) {
  // Residual occupancy of the background packet blocking a relay, under a
  // memoryless arrival assumption: half its transmission time.
  const double residual =
      0.5 * static_cast<double>(p.background_mu) * a(p);
  const double degraded_extra =
      ts(p) + mu(p) * a(p) + residual - a(p);  // buffered minus cut-through
  const double per_relay = a(p) + p.rho * degraded_extra;
  return eta * (ts(p) + mu(p) * a(p) +
                (static_cast<double>(n) - 2) * per_relay);
}

double optimal_lower_bound(std::uint64_t n, const NetworkParams& p) {
  return ts(p) + (static_cast<double>(n) - 1) * a(p);
}

std::uint64_t total_packets(std::uint64_t n, std::uint32_t gamma) {
  return gamma * n * (n - 1);
}

}  // namespace ihc::model
