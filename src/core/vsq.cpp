#include "core/vsq.hpp"

#include "core/runner.hpp"
#include "util/error.hpp"

namespace ihc {

std::vector<std::vector<FlowTreeNode>> vsq_trees(const SquareMesh& mesh,
                                                 NodeId source) {
  const NodeId m = mesh.side();
  std::vector<std::vector<FlowTreeNode>> trees;
  trees.reserve(4);
  for (unsigned i = 0; i < 4; ++i) {
    std::vector<FlowTreeNode> tree;
    tree.push_back(FlowTreeNode{source, -1, false});
    const NodeId root = mesh.neighbor(source, i);
    tree.push_back(FlowTreeNode{root, 0, false});
    // Spoke: continue direction i around the full torus line (m-1 hops,
    // all cut-through), visiting root = spoke(0), ..., spoke(m-1).
    std::vector<std::int32_t> spoke_idx{1};
    for (NodeId a = 1; a < m; ++a) {
      const NodeId node = mesh.neighbor(
          tree[static_cast<std::size_t>(spoke_idx.back())].node, i);
      tree.push_back(FlowTreeNode{node, spoke_idx.back(), true});
      spoke_idx.push_back(static_cast<std::int32_t>(tree.size() - 1));
    }
    // Fills: from every spoke node, the perpendicular line (direction
    // i+1): first hop is a redirect, the rest cut through.
    for (const std::int32_t s_idx : spoke_idx) {
      std::int32_t prev = s_idx;
      for (NodeId b = 1; b < m; ++b) {
        const NodeId node = mesh.neighbor(
            tree[static_cast<std::size_t>(prev)].node, (i + 1) % 4);
        tree.push_back(FlowTreeNode{node, prev, b > 1});
        prev = static_cast<std::int32_t>(tree.size() - 1);
      }
    }
    IHC_ENSURE(tree.size() ==
                   static_cast<std::size_t>(mesh.node_count()) + 1,
               "VSQ tree must reach every node exactly once (plus source)");
    trees.push_back(std::move(tree));
  }
  return trees;
}

AtaResult run_vsq_single(const SquareMesh& mesh, NodeId source,
                         const AtaOptions& options) {
  return run_single_tree_broadcast(
      "VSQ", mesh, source, [&mesh](NodeId s) { return vsq_trees(mesh, s); },
      options);
}

AtaResult run_vsq_ata(const SquareMesh& mesh, const AtaOptions& options) {
  return run_sequential_tree_ata(
      "VSQ-ATA", mesh,
      [&mesh](NodeId s) { return vsq_trees(mesh, s); }, options);
}

}  // namespace ihc
