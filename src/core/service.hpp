/// \file service.hpp
/// \brief Periodic ATA broadcast service and duty-cycle accounting.
///
/// Section VI-A argues "it is feasible to dedicate the interconnection
/// network (or one channel on each directed link) to the ATA reliable
/// broadcast operation for this length of time."  The applications that
/// need ATA broadcast (clock sync, diagnosis) run it *periodically*, so
/// the quantitative form of that claim is a duty cycle: the fraction of
/// each period the network spends dedicated to the broadcast.  This
/// module runs an IHC round every `period` of simulated time on one
/// persistent network (background traffic keeps flowing between rounds
/// if configured) and reports per-round times, deadline misses, and the
/// duty cycle.
#pragma once

#include "core/ata.hpp"
#include "core/ihc.hpp"
#include "topology/topology.hpp"
#include "util/stats.hpp"

namespace ihc {

struct ServiceConfig {
  SimTime period = sim_ms(10);  ///< time between round starts
  std::uint32_t rounds = 5;
  IhcOptions ihc{.eta = 2};
};

struct ServiceReport {
  Summary round_times;             ///< per-round ATA completion times (ps)
  double duty_cycle = 0.0;         ///< mean round time / period
  std::uint32_t missed_deadlines = 0;  ///< rounds that overran the period
  std::uint64_t total_deliveries = 0;
  bool all_rounds_complete = false;    ///< gamma copies per pair per round
};

/// Runs the periodic service; the returned report aggregates all rounds.
[[nodiscard]] ServiceReport run_periodic_service(const Topology& topo,
                                                 const ServiceConfig& config,
                                                 const AtaOptions& options);

}  // namespace ihc
