/// \file agreement.hpp
/// \brief Signed-messages Byzantine agreement over the broadcast
/// primitives - the paper's distributed-agreement application (Section I,
/// citing Lamport-Shostak-Pease [18] and Dolev [9]).
///
/// Protocol SM(t), adapted to the library's primitives:
///
///   round 0:   the commander reliably broadcasts its signed order over
///              the gamma directed Hamiltonian cycles (run_hc_broadcast);
///   rounds 1..t: every node re-broadcasts a commander-signed value it
///              has learned (one per round) via an IHC all-to-all round;
///              receivers accept a value only if the COMMANDER's signature
///              verifies - relays cannot forge, they can only replay or
///              drop;
///   decision:  a node that accepted exactly one value chooses it; zero
///              or conflicting values convict the commander and select
///              the default order.
///
/// With <= t traitors (including possibly the commander) and t+1 rounds,
/// all loyal nodes decide identically, and on the commander's order when
/// the commander is loyal - the classic signed-messages guarantee, here
/// demonstrated on simulated cut-through networks with measured network
/// time per round.
#pragma once

#include <vector>

#include "core/ata.hpp"
#include "topology/topology.hpp"

namespace ihc {

struct AgreementConfig {
  NodeId commander = 0;
  /// Relay rounds after the commander's broadcast; 0 selects
  /// fault_count + 1 (the SM(t) prescription).
  std::uint32_t rounds = 0;
  /// Order chosen when the commander is convicted (or nothing arrives).
  std::uint64_t default_order = 0x0DEFA017;
};

struct AgreementResult {
  std::vector<std::uint64_t> decision;  ///< per node (meaningful if loyal)
  std::vector<std::uint32_t> values_seen;  ///< distinct valid values/node
  bool agreement = false;  ///< all loyal nodes decided identically
  bool validity = false;   ///< loyal commander ==> decided its order
  std::uint32_t rounds_used = 0;
  SimTime network_time = 0;  ///< summed simulated time of all rounds
};

/// Runs SM(t).  `faults` marks the traitors: kEquivocate on the commander
/// makes it sign different orders per route; traitorous lieutenants
/// corrupt/drop what they relay (transport faults) and re-broadcast
/// maximally confusing values (protocol faults).
[[nodiscard]] AgreementResult run_signed_agreement(
    const Topology& topo, const KeyRing& keys, FaultPlan& faults,
    const AtaOptions& base_options, const AgreementConfig& config);

}  // namespace ihc
