/// \file hc_broadcast.hpp
/// \brief Single-source reliable broadcast over the directed Hamiltonian
/// cycles - the "HC algorithm" baseline of Section II.
///
/// The source injects one packet on each of the gamma directed Hamiltonian
/// cycles; each packet pipelines N-1 hops, tee-delivering a copy at every
/// node.  One startup and N-2 cut-throughs per cycle, all cycles in
/// parallel: time tau_S + mu alpha + (N-2) alpha.  For a SINGLE broadcast
/// this is what Kandlur and Shin's algorithm beats (its longest path is
/// O(sqrt N) cut-throughs rather than O(N)); for ALL-TO-ALL broadcast the
/// interleaving of the IHC algorithm amortizes the cycles across all
/// sources and wins - the heart of the paper's contribution.  Having this
/// baseline lets the benches reproduce both sides of that comparison.
#pragma once

#include "core/ata.hpp"
#include "topology/topology.hpp"

namespace ihc {

/// One reliable broadcast from `source` along all gamma directed cycles.
[[nodiscard]] AtaResult run_hc_broadcast(const Topology& topo, NodeId source,
                                         const AtaOptions& options);

/// HC-ATA: each node broadcasts in turn (the naive sequential ATA built
/// on the HC broadcast; N (tau_S + mu alpha + (N-2) alpha) in dedicated
/// mode, i.e. exactly N/eta times slower than IHC).
[[nodiscard]] AtaResult run_hc_ata(const Topology& topo,
                                   const AtaOptions& options);

}  // namespace ihc
