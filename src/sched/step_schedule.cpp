#include "sched/step_schedule.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ihc {

bool ScheduleCheck::all_delivered(NodeId node_count,
                                  std::uint8_t required) const {
  IHC_ENSURE(copies.size() ==
                 static_cast<std::size_t>(node_count) * node_count,
             "copies matrix size mismatch");
  for (NodeId o = 0; o < node_count; ++o) {
    for (NodeId d = 0; d < node_count; ++d) {
      if (o == d) continue;
      if (copies[static_cast<std::size_t>(o) * node_count + d] < required)
        return false;
    }
  }
  return true;
}

ScheduleCheck check_schedule(const Graph& g,
                             const StepScheduleSource& source) {
  const NodeId n = g.node_count();
  ScheduleCheck result;
  result.copies.assign(static_cast<std::size_t>(n) * n, 0);

  // Per-step link occupancy, with a generation stamp so the vector is not
  // cleared between steps.
  std::vector<std::uint64_t> last_used(g.link_count(), ~0ull);
  // (origin, dest, route) dedup within a run: a route delivers to a node at
  // most once in the schedules we emit, so counting sends suffices; but we
  // saturate the uint8 to stay safe.
  std::vector<ScheduleSend> sends;
  const std::uint64_t steps = source.step_count();
  for (std::uint64_t step = 0; step < steps; ++step) {
    sends.clear();
    source.sends_at(step, sends);
    for (const ScheduleSend& s : sends) {
      ++result.total_sends;
      if (last_used[s.link] == step) ++result.link_conflicts;
      last_used[s.link] = step;
      const NodeId dest = g.link_target(s.link);
      auto& c = result.copies[static_cast<std::size_t>(s.origin) * n + dest];
      if (c < 255) ++c;
    }
  }
  return result;
}

}  // namespace ihc
